// Package tcor's root benchmark harness regenerates every table and figure
// of the paper's evaluation under `go test -bench`, one benchmark per
// artifact, and reports each figure's headline number as a custom metric
// (decrease percentages, speedups, capacity-parity ratios). Results across
// benchmarks share one memoized Runner, so the suite's scenes and the six
// full-system simulations per benchmark are paid for once per `go test`
// invocation; the first benchmark touching a configuration does the work.
//
// Micro-benchmarks for the hot substrates (cache accesses per policy,
// Attribute Cache operations, binning, rasterization, whole-frame
// simulation) follow the figure benches.
package tcor

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"tcor/internal/cache"
	"tcor/internal/experiments"
	"tcor/internal/geom"
	"tcor/internal/geometry"
	"tcor/internal/gpu"
	"tcor/internal/mem"
	"tcor/internal/raster"
	"tcor/internal/tcor"
	"tcor/internal/tiling"
	"tcor/internal/trace"
	"tcor/internal/workload"
)

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

// benchRunner returns the shared experiment runner (full suite, one frame
// per benchmark to keep `go test -bench=.` tractable).
func benchRunner() *experiments.Runner {
	runnerOnce.Do(func() {
		runner = experiments.NewRunner()
		runner.Frames = 1
	})
	return runner
}

// --- Policy studies: Figs. 1, 11, 12, 13 ---

func BenchmarkFig01_LRUvsOPT(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		fig, err := r.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		lru, opt := fig.Curve("LRU"), fig.Curve("OPT")
		last := len(lru.MissRatios) - 1
		b.ReportMetric(lru.MissRatios[last], "LRU-miss@160KB")
		b.ReportMetric(opt.MissRatios[last], "OPT-miss@160KB")
	}
}

func BenchmarkFig11_LowerBound(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig11(); err != nil {
			b.Fatal(err)
		}
		optKB, lruKB, ratio, err := r.OPTReachParity(0.01)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(optKB, "OPT-parity-KB")
		b.ReportMetric(lruKB, "LRU-parity-KB")
		b.ReportMetric(ratio, "capacity-ratio(paper:6.8)")
	}
}

func BenchmarkFig12_Associativity(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		figs, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		for _, pol := range []string{"LRU", "OPT"} {
			c := figs[pol].Curve("Associativity 4")
			b.ReportMetric(c.MissRatios[len(c.MissRatios)-1], pol+"-4way-miss@160KB")
		}
	}
}

func BenchmarkFig13_PolicyShootout(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		fig, err := r.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"MRU", "DRRIP (M=2)", "LRU", "OPT"} {
			c := fig.Curve(name)
			unit := strings.ReplaceAll(strings.ReplaceAll(name, " ", ""), "(M=2)", "")
			b.ReportMetric(c.MissRatios[len(c.MissRatios)-1], unit+"@160KB")
		}
	}
}

// --- Full-system traffic: Figs. 14-19 ---

func benchTraffic(b *testing.B, get func(*experiments.Runner) (*experiments.TrafficFigure, error)) {
	b.Helper()
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		fig, err := get(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*fig.Average, "%decrease(avg)")
	}
}

func BenchmarkFig14_PBtoL2_64KB(b *testing.B) {
	benchTraffic(b, (*experiments.Runner).Fig14)
}

func BenchmarkFig15_PBtoL2_128KB(b *testing.B) {
	benchTraffic(b, (*experiments.Runner).Fig15)
}

func BenchmarkFig16_PBtoMem_64KB(b *testing.B) {
	benchTraffic(b, (*experiments.Runner).Fig16)
}

func BenchmarkFig17_PBtoMem_128KB(b *testing.B) {
	benchTraffic(b, (*experiments.Runner).Fig17)
}

func BenchmarkFig18_MemTotal_64KB(b *testing.B) {
	benchTraffic(b, (*experiments.Runner).Fig18)
}

func BenchmarkFig19_MemTotal_128KB(b *testing.B) {
	benchTraffic(b, (*experiments.Runner).Fig19)
}

// --- Energy: Figs. 20-22 ---

func BenchmarkFig20_HierEnergy_64KB(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		fig, err := r.Fig20()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*fig.AvgTCOR, "%decrease-TCOR(paper:14.1)")
		b.ReportMetric(100*fig.AvgNoL2, "%decrease-noL2(paper:~9)")
	}
}

func BenchmarkFig21_HierEnergy_128KB(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		fig, err := r.Fig21()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*fig.AvgTCOR, "%decrease-TCOR(paper:13.6)")
	}
}

func BenchmarkFig22_GPUEnergy(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		fig, err := r.Fig22()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*fig.Avg64, "%decrease-64KB(paper:5.6)")
		b.ReportMetric(100*fig.Avg128, "%decrease-128KB(paper:5.3)")
	}
}

// --- Throughput: Figs. 23/24 and the headline ---

func BenchmarkFig23_Throughput_64KB(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		fig, err := r.Fig23()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.AvgSpeedup, "speedup(paper:4.7x)")
	}
}

func BenchmarkFig24_Throughput_128KB(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		fig, err := r.Fig24()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.AvgSpeedup, "speedup(paper:5.0x)")
	}
}

func BenchmarkHeadline(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		h, err := r.Headline()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*h.MemHierarchyDecrease, "%hier-energy(paper:13.8)")
		b.ReportMetric(100*h.GPUEnergyDecrease, "%gpu-energy(paper:5.5)")
		b.ReportMetric(100*h.FPSIncrease, "%fps(paper:3.7)")
		b.ReportMetric(h.TilingSpeedup, "tiling-speedup(paper:~5x)")
	}
}

// --- Tables ---

func BenchmarkTableII_Workloads(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.TableII(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks ---

func benchPolicy(b *testing.B, p cache.Policy) {
	b.Helper()
	tr := make(trace.Trace, 1<<16)
	state := uint64(88172645463325252)
	for i := range tr {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		tr[i].Key = trace.Key(state % 4096)
	}
	trace.AnnotateNextUse(tr)
	c := cache.MustNew(cache.Config{Lines: 1024, Ways: 4, WriteAllocate: true}, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(tr[i%len(tr)])
	}
}

// BenchmarkPolicySimulate covers the arena's per-cell hot path: one policy
// instance from the string registry driven over the synthetic annotated
// trace. The named sub-benchmarks are gated against BENCH_baseline.json so
// a contender cannot quietly make every race slower.
func BenchmarkPolicySimulate(b *testing.B) {
	for _, name := range []string{"LRU", "OPT", "ARC", "S3-FIFO", "Learned"} {
		b.Run(name, func(b *testing.B) {
			p, err := cache.NewPolicy(name)
			if err != nil {
				b.Fatal(err)
			}
			benchPolicy(b, p)
		})
	}
}

func BenchmarkCacheAccessLRU(b *testing.B)   { benchPolicy(b, cache.NewLRU()) }
func BenchmarkCacheAccessOPT(b *testing.B)   { benchPolicy(b, cache.NewOPT()) }
func BenchmarkCacheAccessDRRIP(b *testing.B) { benchPolicy(b, cache.NewDRRIP(1)) }
func BenchmarkCacheAccessPLRU(b *testing.B)  { benchPolicy(b, cache.NewPLRU()) }

func BenchmarkAttributeCacheReadHit(b *testing.B) {
	sink := mem.NewCounter()
	c, err := tcor.NewAttributeCache(tcor.DefaultAttrCacheConfig(48*1024), sink)
	if err != nil {
		b.Fatal(err)
	}
	blocks := []uint64{0x30000000, 0x30000040, 0x30000080}
	c.Write(7, 3, 1, 9, blocks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(7, 3, uint16(i&0xFFF), 9, blocks)
		c.Unlock(7)
	}
}

func BenchmarkBinning(b *testing.B) {
	spec, err := workload.ByAlias("TRu")
	if err != nil {
		b.Fatal(err)
	}
	spec.Frames = 1
	screen := geom.DefaultScreen()
	scene, err := workload.Generate(spec, screen)
	if err != nil {
		b.Fatal(err)
	}
	trav, err := tiling.NewTraversal(screen, tiling.OrderZ)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tiling.Bin(screen, trav, scene.Frame(0).Prims); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZOrderTraversal(b *testing.B) {
	screen := geom.DefaultScreen()
	for i := 0; i < b.N; i++ {
		if _, err := tiling.NewTraversal(screen, tiling.OrderZ); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRasterTile(b *testing.B) {
	screen := geom.DefaultScreen()
	p, err := raster.New(raster.DefaultConfig(screen, 4<<20, 12), mem.NewCounter(), mem.NewCounter())
	if err != nil {
		b.Fatal(err)
	}
	tri := &geom.Primitive{
		Pos:   [3]geom.Vec2{{X: -10, Y: -10}, {X: 100, Y: -10}, {X: -10, Y: 100}},
		Attrs: []geom.Attribute{{}},
	}
	work := []raster.TileWork{{Prim: tri}, {Prim: tri}, {Prim: tri}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RasterTile(0, i, work)
	}
}

func BenchmarkFullFrameBaseline(b *testing.B) {
	benchFullFrame(b, gpu.Baseline(64*1024))
}

func BenchmarkFullFrameTCOR(b *testing.B) {
	benchFullFrame(b, gpu.TCOR(64*1024))
}

func benchFullFrame(b *testing.B, cfg gpu.Config) {
	b.Helper()
	spec, err := workload.ByAlias("CCS")
	if err != nil {
		b.Fatal(err)
	}
	spec.Frames = 1
	scene, err := workload.Generate(spec, geom.DefaultScreen())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpu.Simulate(scene, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkFrameParallel measures the parallel frame core against serial on
// the same scene: sub-benchmarks per TileParallel level, with frames/sec as
// the headline custom metric. The differential harness proves every level
// produces identical bytes; this benchmark tracks what that buys in time
// and allocations (the CI bench gate watches its ns/op and allocs/op).
func BenchmarkFrameParallel(b *testing.B) {
	spec, err := workload.ByAlias("TRu")
	if err != nil {
		b.Fatal(err)
	}
	spec.Frames = 1
	scene, err := workload.Generate(spec, geom.DefaultScreen())
	if err != nil {
		b.Fatal(err)
	}
	levels := []int{1, 2, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, workers := range levels {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := gpu.TCOR(64 * 1024)
			cfg.TileParallel = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gpu.Simulate(scene, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// --- Benches for the beyond-the-paper studies ---

func BenchmarkRelatedWork(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		if _, err := r.RelatedWork(48); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCCS(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		a, err := r.Ablation("CCS", 64)
		if err != nil {
			b.Fatal(err)
		}
		full, base := a.Row("TCOR (full)"), a.Row("baseline")
		b.ReportMetric(float64(base.PBL2)/float64(full.PBL2), "baseline/TCOR-PB-L2")
	}
}

func BenchmarkParallelRenderers(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		p, err := r.ParallelRenderers("SoD", 64)
		if err != nil {
			b.Fatal(err)
		}
		last := p.Points[len(p.Points)-1]
		b.ReportMetric(last.TCORFPS/last.BaseFPS, "TCOR/base-FPS@64renderers")
	}
}

func BenchmarkTBRvsIMR(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		ratio, err := r.IMRRatio("SoD")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ratio, "IMR/TBR-traffic(paper:1.96x)")
	}
}

// --- Micro-benchmarks for the newer substrates ---

func BenchmarkCacheAccessShepherd(b *testing.B) { benchPolicy(b, cache.NewShepherd(1)) }
func BenchmarkCacheAccessHawkeye(b *testing.B)  { benchPolicy(b, cache.NewHawkeye(nil)) }
func BenchmarkCacheAccessSHiP(b *testing.B)     { benchPolicy(b, cache.NewSHiP(nil)) }

func BenchmarkStackDistances(b *testing.B) {
	tr := make(trace.Trace, 1<<16)
	state := uint64(2463534242)
	for i := range tr {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		tr[i].Key = trace.Key(state % 2048)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := cache.LRUStackDistances(tr)
		if p.Total != int64(len(tr)) {
			b.Fatal("bad profile")
		}
	}
}

func BenchmarkGeometryPipeline(b *testing.B) {
	scene := &geometry.Scene{
		Camera: geometry.Camera{
			Eye:    geom.Vec3{X: 6, Y: 4, Z: 10},
			Target: geom.Vec3{},
			Up:     geom.Vec3{Y: 1},
			FovY:   1.0, Aspect: 1960.0 / 768.0, Near: 0.1, Far: 100,
		},
	}
	sphere := geometry.Sphere(24, 32)
	for i := 0; i < 16; i++ {
		scene.Objects = append(scene.Objects, geometry.Object{
			Mesh:      sphere,
			Transform: geom.Translate(float32(i%4)*3-4, 0, float32(i/4)*3-4),
		})
	}
	cfg := geometry.PipelineConfig{Screen: geom.DefaultScreen(), CullBackfaces: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := geometry.Run(scene, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHilbertTraversal(b *testing.B) {
	screen := geom.DefaultScreen()
	for i := 0; i < b.N; i++ {
		if _, err := tiling.NewTraversal(screen, tiling.OrderHilbert); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sweep engine ---

// BenchmarkSweepOverhead isolates the pool's bookkeeping cost: 64 no-op
// jobs per sweep, so the time per op is pure scheduling overhead (the
// figure sweeps amortize this over multi-millisecond simulations).
func BenchmarkSweepOverhead(b *testing.B) {
	jobs := make([]func(context.Context) (int, error), 64)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i, nil }
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(ctx, 0, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPrewarm measures a cold suite prewarm (two benchmarks, six
// configurations each) at a given worker count; a fresh Runner per
// iteration keeps every simulation a memo miss.
func benchPrewarm(b *testing.B, par int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		r.Frames = 1
		r.Benchmarks = []string{"CCS", "GTr"}
		r.Parallel = par
		if err := r.Prewarm(par); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrewarmSequential(b *testing.B) { benchPrewarm(b, 1) }
func BenchmarkPrewarmParallel(b *testing.B)   { benchPrewarm(b, runtime.GOMAXPROCS(0)) }
