package tcor_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"tcor"
	"tcor/internal/geom"
	"tcor/internal/geometry"
)

// TestFacadeSweep drives the re-exported worker pool end to end: two
// benchmarks simulated concurrently with results in job order.
func TestFacadeSweep(t *testing.T) {
	ppcs, err := tcor.SweepSlice(context.Background(), 2, []string{"CCS", "GTr"},
		func(_ context.Context, alias string) (float64, error) {
			spec := tcor.BenchmarkSpec(alias)
			spec.Frames = 1
			scene, err := tcor.GenerateWorkload(spec, tcor.DefaultScreen())
			if err != nil {
				return 0, err
			}
			res, err := tcor.Simulate(scene, tcor.TCORConfig(64<<10))
			if err != nil {
				return 0, err
			}
			return res.PPC(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(ppcs) != 2 || ppcs[0] <= 0 || ppcs[1] <= 0 {
		t.Fatalf("bad sweep results: %v", ppcs)
	}

	jobs := []func(context.Context) (int, error){
		func(context.Context) (int, error) { return 1, nil },
		func(context.Context) (int, error) { return 2, nil },
	}
	got, err := tcor.Sweep(context.Background(), 0, jobs)
	if err != nil || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Sweep: %v, %v", got, err)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	spec := tcor.BenchmarkSpec("GTr")
	spec.Frames = 1
	scene, err := tcor.GenerateWorkload(spec, tcor.DefaultScreen())
	if err != nil {
		t.Fatal(err)
	}
	base, err := tcor.Simulate(scene, tcor.BaselineConfig(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := tcor.Simulate(scene, tcor.TCORConfig(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if opt.PPC() <= base.PPC() {
		t.Errorf("TCOR PPC %.3f <= baseline %.3f", opt.PPC(), base.PPC())
	}
	if len(tcor.Benchmarks()) != 10 {
		t.Error("suite size")
	}
}

func TestFacadeCacheLibrary(t *testing.T) {
	tr := tcor.Trace{{Key: 1}, {Key: 2}, {Key: 3}, {Key: 1}, {Key: 2}}
	tcor.AnnotateNextUse(tr)
	lru, err := tcor.SimulateCache(tcor.CacheConfig{Lines: 2, WriteAllocate: true}, tcor.NewLRU(), tr)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := tcor.SimulateCache(tcor.CacheConfig{Lines: 2, WriteAllocate: true}, tcor.NewOPT(), tr)
	if opt.Misses >= lru.Misses {
		t.Errorf("OPT %d >= LRU %d", opt.Misses, lru.Misses)
	}
}

func TestFacadePanicsOnUnknownBenchmark(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tcor.BenchmarkSpec("nope")
}

func TestFacadeRenderScene3D(t *testing.T) {
	scene3d := &tcor.Scene3D{
		Camera: geometry.Camera{
			Eye:    geom.Vec3{X: 3, Y: 2, Z: 6},
			Target: geom.Vec3{},
			Up:     geom.Vec3{Y: 1},
			FovY:   math.Pi / 3,
			Aspect: 1960.0 / 768.0,
			Near:   0.1, Far: 100,
		},
		Objects: []geometry.Object{
			{Mesh: geometry.Cube(), Transform: geom.ScaleUniform(2)},
		},
	}
	spec := tcor.BenchmarkSpec("CCS") // texture/shader parameters only
	scene, err := tcor.RenderScene3D(scene3d, tcor.DefaultScreen(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tcor.Simulate(scene, tcor.TCORConfig(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if res.PrimReads == 0 {
		t.Error("no primitives flowed through the pipeline")
	}
}

// The package-level example from the doc comment.
func Example() {
	spec := tcor.BenchmarkSpec("CCS")
	spec.Frames = 1
	scene, _ := tcor.GenerateWorkload(spec, tcor.DefaultScreen())
	base, _ := tcor.Simulate(scene, tcor.BaselineConfig(64<<10))
	opt, _ := tcor.Simulate(scene, tcor.TCORConfig(64<<10))
	fmt.Printf("tiling engine speedup: %.1fx\n", opt.PPC()/base.PPC())
	// Output:
	// tiling engine speedup: 5.3x
}

// TestFacadeCluster drives the re-exported cluster surface: a two-shard
// gateway built through the facade serves a simulation routed by the
// facade's ring to the shard the content address owns.
func TestFacadeCluster(t *testing.T) {
	var shards []string
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(tcor.NewServer(tcor.ServeOptions{}).Handler())
		defer srv.Close()
		shards = append(shards, srv.URL)
	}
	gw, err := tcor.NewGateway(tcor.GatewayOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	req := tcor.SimulateRequest{Benchmark: "GTr", Config: "tcor", TileCacheKB: 64, Frames: 1}
	key, err := tcor.CanonicalRequestKey(req)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := tcor.NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantShard := shards[ring.Owner(key)]

	c := tcor.NewServiceClient(gwSrv.URL, nil)
	res, how, err := c.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if how != "miss" || res.PPC <= 0 {
		t.Fatalf("gateway simulate = (how=%q, ppc=%f), want a fresh result", how, res.PPC)
	}
	// The second request hits the owning shard's cache through the ring,
	// and the response names the shard the facade's ring predicted.
	raw, how, err := c.SimulateRaw(context.Background(), req)
	if err != nil || how != "hit" {
		t.Fatalf("second gateway simulate = (how=%q, err=%v), want a cache hit", how, err)
	}
	if len(raw) == 0 {
		t.Fatal("empty body")
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(gwSrv.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Tcord-Shard"); got != wantShard {
		t.Fatalf("gateway served from %q, facade ring predicted %q", got, wantShard)
	}
}
