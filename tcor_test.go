package tcor_test

import (
	"fmt"
	"math"
	"testing"

	"tcor"
	"tcor/internal/geom"
	"tcor/internal/geometry"
)

func TestFacadeEndToEnd(t *testing.T) {
	spec := tcor.BenchmarkSpec("GTr")
	spec.Frames = 1
	scene, err := tcor.GenerateWorkload(spec, tcor.DefaultScreen())
	if err != nil {
		t.Fatal(err)
	}
	base, err := tcor.Simulate(scene, tcor.BaselineConfig(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := tcor.Simulate(scene, tcor.TCORConfig(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if opt.PPC() <= base.PPC() {
		t.Errorf("TCOR PPC %.3f <= baseline %.3f", opt.PPC(), base.PPC())
	}
	if len(tcor.Benchmarks()) != 10 {
		t.Error("suite size")
	}
}

func TestFacadeCacheLibrary(t *testing.T) {
	tr := tcor.Trace{{Key: 1}, {Key: 2}, {Key: 3}, {Key: 1}, {Key: 2}}
	tcor.AnnotateNextUse(tr)
	lru, err := tcor.SimulateCache(tcor.CacheConfig{Lines: 2, WriteAllocate: true}, tcor.NewLRU(), tr)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := tcor.SimulateCache(tcor.CacheConfig{Lines: 2, WriteAllocate: true}, tcor.NewOPT(), tr)
	if opt.Misses >= lru.Misses {
		t.Errorf("OPT %d >= LRU %d", opt.Misses, lru.Misses)
	}
}

func TestFacadePanicsOnUnknownBenchmark(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tcor.BenchmarkSpec("nope")
}

func TestFacadeRenderScene3D(t *testing.T) {
	scene3d := &tcor.Scene3D{
		Camera: geometry.Camera{
			Eye:    geom.Vec3{X: 3, Y: 2, Z: 6},
			Target: geom.Vec3{},
			Up:     geom.Vec3{Y: 1},
			FovY:   math.Pi / 3,
			Aspect: 1960.0 / 768.0,
			Near:   0.1, Far: 100,
		},
		Objects: []geometry.Object{
			{Mesh: geometry.Cube(), Transform: geom.ScaleUniform(2)},
		},
	}
	spec := tcor.BenchmarkSpec("CCS") // texture/shader parameters only
	scene, err := tcor.RenderScene3D(scene3d, tcor.DefaultScreen(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tcor.Simulate(scene, tcor.TCORConfig(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if res.PrimReads == 0 {
		t.Error("no primitives flowed through the pipeline")
	}
}

// The package-level example from the doc comment.
func Example() {
	spec := tcor.BenchmarkSpec("CCS")
	spec.Frames = 1
	scene, _ := tcor.GenerateWorkload(spec, tcor.DefaultScreen())
	base, _ := tcor.Simulate(scene, tcor.BaselineConfig(64<<10))
	opt, _ := tcor.Simulate(scene, tcor.TCORConfig(64<<10))
	fmt.Printf("tiling engine speedup: %.1fx\n", opt.PPC()/base.PPC())
	// Output:
	// tiling engine speedup: 5.3x
}
