// Package tcor is the public facade of the TCOR reproduction: a Tile Cache
// with Optimal Replacement for mobile tile-based-rendering GPUs (Joseph,
// Aragón, Parcerisa, González — HPCA 2022), together with the full TBR GPU
// model, workload suite and experiment harness the paper's evaluation
// needs.
//
// The implementation lives under internal/; this package re-exports the
// stable entry points a downstream user composes:
//
//   - workload synthesis (the Table II suite or custom JSON profiles),
//   - full-system simulation under the baseline or TCOR hierarchies,
//   - the trace-driven cache library with the OPT yardstick,
//   - the per-figure experiment harness.
//
// Quick start:
//
//	scene, _ := tcor.GenerateWorkload(tcor.BenchmarkSpec("CCS"), tcor.DefaultScreen())
//	base, _ := tcor.Simulate(scene, tcor.BaselineConfig(64<<10))
//	opt, _ := tcor.Simulate(scene, tcor.TCORConfig(64<<10))
//	fmt.Println(base.PPC(), opt.PPC())
package tcor

import (
	"context"
	"net/http"

	"tcor/internal/cache"
	"tcor/internal/cluster"
	"tcor/internal/experiments"
	"tcor/internal/geom"
	"tcor/internal/geometry"
	"tcor/internal/gpu"
	"tcor/internal/resilience"
	"tcor/internal/serve"
	"tcor/internal/serve/client"
	"tcor/internal/trace"
	"tcor/internal/workload"
)

// Re-exported core types. The aliases keep the full method sets and let
// callers mix facade calls with the internal packages' documentation.
type (
	// Screen is the render target and tile grid (Table I: 1960x768, 32x32).
	Screen = geom.Screen
	// Spec is a workload profile (Table II row or custom).
	Spec = workload.Spec
	// Scene is a generated multi-frame workload.
	Scene = workload.Scene
	// Config is a full-system GPU configuration.
	Config = gpu.Config
	// Result carries a simulation's metrics (traffic, energy, throughput).
	Result = gpu.Result
	// Trace is a cache access stream.
	Trace = trace.Trace
	// CachePolicy is a replacement policy for the trace-driven cache model.
	CachePolicy = cache.Policy
	// CacheConfig is the trace-driven cache geometry.
	CacheConfig = cache.Config
	// CacheStats is the trace-driven cache statistics.
	CacheStats = cache.Stats
	// Runner memoizes scenes and simulations across experiments.
	Runner = experiments.Runner
	// Scene3D is a 3D scene for the Geometry Pipeline front end.
	Scene3D = geometry.Scene
	// Server is the production simulation service behind cmd/tcord: the
	// versioned HTTP API with admission control, a content-addressed
	// result cache and graceful lifecycle.
	Server = serve.Server
	// ServeOptions configures a Server (workers, queue depth, cache size,
	// deadlines, request limits).
	ServeOptions = serve.Options
	// ServiceClient is the typed HTTP client for a running tcord daemon.
	ServiceClient = client.Client
	// SimulateRequest is one simulation request against a Server.
	SimulateRequest = serve.SimulateRequest
	// SweepRequest batches simulation requests through the Server's pool.
	SweepRequest = serve.SweepRequest
	// RunResult is the served form of a simulation's metrics; it encodes
	// byte-identically to a direct Simulate call's summary.
	RunResult = serve.RunResult
	// ClientOption configures a ServiceClient (retries, breaker, metrics,
	// tenant credential).
	ClientOption = client.Option
	// TenantSet is a validated multi-tenant roster (see ParseTenants and
	// ServeOptions.Tenants): API keys mapped to named tenants with
	// fair-share weights, inflight/queue quotas and cache shares.
	TenantSet = serve.TenantSet
	// TenantSpec is one tenant's identity and limits within a TenantSet.
	TenantSpec = serve.TenantSpec
	// JobRecord is one durable async job's persisted state (see
	// ServeOptions.JobsDir and ServiceClient.SweepAsync): identity, kind,
	// owning tenant, lifecycle state and cell-level progress.
	JobRecord = serve.JobRecord
	// JobState is a JobRecord lifecycle state: JobQueued, JobRunning,
	// JobDone, JobFailed or JobCancelled.
	JobState = serve.JobState
	// RetryPolicy shapes a retrying client's backoff: attempt cap, base and
	// max delay, elapsed-time budget, deterministic jitter seed.
	RetryPolicy = resilience.RetryPolicy
	// BreakerConfig shapes a circuit breaker: rolling window, failure ratio,
	// cooldown and half-open probe count.
	BreakerConfig = resilience.BreakerConfig
	// FaultPlan arms deterministic fault injection (see ParseFaultPlan and
	// ServeOptions.Chaos).
	FaultPlan = resilience.FaultPlan
	// Injector schedules deterministic faults at named sites.
	Injector = resilience.Injector
)

// DefaultScreen returns the paper's Table I screen (1960x768, 32x32 tiles).
func DefaultScreen() Screen { return geom.DefaultScreen() }

// Benchmarks returns the aliases of the Table II suite in paper order.
func Benchmarks() []string { return workload.Aliases() }

// BenchmarkSpec returns the Table II spec with the given alias, panicking
// on unknown aliases (use workload.ByAlias for the error-returning form).
func BenchmarkSpec(alias string) Spec {
	s, err := workload.ByAlias(alias)
	if err != nil {
		panic(err)
	}
	return s
}

// LoadSpec reads a workload profile from a JSON file.
func LoadSpec(path string) (Spec, error) { return workload.LoadSpec(path) }

// GenerateWorkload synthesizes the calibrated scene for a spec.
func GenerateWorkload(spec Spec, screen Screen) (*Scene, error) {
	return workload.Generate(spec, screen)
}

// BaselineConfig returns the paper's baseline GPU with the given Tile Cache
// size in bytes.
func BaselineConfig(tileCacheBytes int) Config { return gpu.Baseline(tileCacheBytes) }

// TCORConfig returns the full TCOR configuration.
func TCORConfig(tileCacheBytes int) Config { return gpu.TCOR(tileCacheBytes) }

// Simulate runs every frame of the scene through the configured GPU.
func Simulate(scene *Scene, cfg Config) (*Result, error) { return gpu.Simulate(scene, cfg) }

// NewRunner returns an experiment runner over the default screen and full
// suite; its methods regenerate each of the paper's tables and figures.
// Set Runner.Parallel to bound concurrent simulations (0 = GOMAXPROCS)
// and Runner.Ctx to cancel in-flight sweeps.
func NewRunner() *Runner { return experiments.NewRunner() }

// Sweep runs jobs through a bounded worker pool of at most par goroutines
// (par <= 0 means GOMAXPROCS) and returns their results in job order,
// regardless of completion order. The first failure cancels the jobs that
// have not started yet; the returned error is the lowest-index job error.
// All of the Runner's multi-benchmark studies are built on this primitive.
func Sweep[T any](ctx context.Context, par int, jobs []func(context.Context) (T, error)) ([]T, error) {
	return experiments.Sweep(ctx, par, jobs)
}

// SweepSlice maps fn over items through the same bounded pool as Sweep,
// preserving item order in the result slice.
func SweepSlice[In, Out any](ctx context.Context, par int, items []In, fn func(context.Context, In) (Out, error)) ([]Out, error) {
	return experiments.SweepSlice(ctx, par, items, fn)
}

// AnnotateNextUse fills the Belady next-use indices an OPT simulation needs.
func AnnotateNextUse(t Trace) { trace.AnnotateNextUse(t) }

// SimulateCache runs a trace through a cache configuration and policy.
func SimulateCache(cfg CacheConfig, policy CachePolicy, t Trace) (CacheStats, error) {
	return cache.Simulate(cfg, policy, t)
}

// Replacement policy constructors, re-exported for SimulateCache.
var (
	NewLRU  = cache.NewLRU
	NewOPT  = cache.NewOPT
	NewMRU  = cache.NewMRU
	NewFIFO = cache.NewFIFO
)

// NewServer builds the simulation service. Start it with Server.Start, or
// mount Server.Handler on an existing mux; Server.Shutdown drains in-flight
// simulations before returning.
func NewServer(opts ServeOptions) *Server { return serve.NewServer(opts) }

// NewServiceClient returns a typed client for a tcord daemon at baseURL
// (e.g. "http://localhost:8344"). A nil httpClient uses http.DefaultClient.
// Options add resilience: WithClientRetry for transparent retries of
// transient failures, WithClientBreaker to stop hammering a down daemon,
// WithClientMetrics to meter both.
func NewServiceClient(baseURL string, httpClient *http.Client, opts ...ClientOption) *ServiceClient {
	return client.New(baseURL, httpClient, opts...)
}

// Client resilience options, re-exported for NewServiceClient.
var (
	WithClientRetry         = client.WithRetry
	WithClientBreaker       = client.WithBreaker
	WithClientMetrics       = client.WithMetrics
	WithClientMetricsPrefix = client.WithMetricsPrefix
	// WithClientTenant authenticates every call as the tenant owning the
	// given API key; the credential survives retries, gateway hedges and
	// failovers alongside the request ID.
	WithClientTenant = client.WithTenant
)

// ParseTenants validates a multi-tenant roster from its JSON form (the
// -tenants file of cmd/tcord). Misconfiguration is a hard error — weights,
// quotas and cache shares are never silently clamped.
func ParseTenants(data []byte) (*TenantSet, error) { return serve.ParseTenants(data) }

// Durable job lifecycle states, re-exported for JobRecord.State.
const (
	JobQueued    = serve.JobQueued
	JobRunning   = serve.JobRunning
	JobDone      = serve.JobDone
	JobFailed    = serve.JobFailed
	JobCancelled = serve.JobCancelled
)

// Gateway fronts a set of tcord shard daemons with the single-daemon API:
// consistent-hash routing by content address, hedged slow requests,
// failover with peer cache probes, byte-identical sweep merging.
type Gateway = cluster.Gateway

// GatewayOptions configure NewGateway; Shards (the shard daemons' base
// URLs) is the only required field.
type GatewayOptions = cluster.Options

// NewGateway builds a cluster gateway over GatewayOptions.Shards. Start
// it with Gateway.Start (or mount Gateway.Handler); Gateway.Shutdown
// drains in-flight proxied requests.
func NewGateway(opts GatewayOptions) (*Gateway, error) { return cluster.NewGateway(opts) }

// NewRing builds the consistent-hash ring the gateway routes with, for
// callers that want placement without proxying (e.g. a client-side
// router): NewRing(shardURLs, 0).Owner(key) names the shard whose cache
// holds key, with key from CanonicalRequestKey.
func NewRing(nodes []string, vnodes int) (*cluster.Ring, error) {
	return cluster.NewRing(nodes, vnodes)
}

// CanonicalRequestKey resolves an API request to its content address —
// the sha256 the result caches and the cluster ring both key on.
func CanonicalRequestKey(req SimulateRequest) (string, error) { return serve.CanonicalKey(req) }

// NewFaultInjector returns a deterministic fault injector: same seed, same
// fault schedule, regardless of goroutine interleaving. Arm sites on it and
// pass it to ServeOptions.Chaos (or a context via resilience helpers).
func NewFaultInjector(seed int64) *Injector { return resilience.NewInjector(seed) }

// ParseFaultPlan parses the -chaos flag grammar
// ("rate=0.1,lat=50ms,codes=500|503,seed=7") into a plan and its seed.
func ParseFaultPlan(s string) (FaultPlan, int64, error) { return resilience.ParsePlan(s) }

// RenderScene3D pushes a 3D scene through the Geometry Pipeline and wraps
// the result as a single-frame workload ready for Simulate. The spec
// supplies the non-geometric parameters (texture footprint, shader length).
func RenderScene3D(scene *Scene3D, screen Screen, spec Spec) (*Scene, error) {
	prims, _, err := geometry.Run(scene, geometry.PipelineConfig{
		Screen:        screen,
		CullBackfaces: true,
	})
	if err != nil {
		return nil, err
	}
	return workload.NewSceneFromFrames(spec, screen, []workload.Frame{{Prims: prims}})
}
