module tcor

go 1.22
