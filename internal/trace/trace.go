// Package trace defines memory access traces and the offline annotations
// (Belady next-use indices) needed to drive optimal replacement.
//
// A trace is a slice of Access records. Keys are abstract: depending on the
// experiment they are 64-byte line addresses (block-granularity studies) or
// primitive IDs (the Attribute Cache works at primitive granularity, paper
// §III-C2). The OPT policy needs to know, for every access, when the same
// key is accessed next; AnnotateNextUse computes that in a single backward
// pass, which is the classic two-pass formulation of Belady's algorithm.
package trace

import "math"

// Key identifies a cacheable unit: a line address or a primitive ID.
type Key uint64

// Never is the next-use index meaning "this key is not accessed again".
const Never int64 = math.MaxInt64

// Access is one element of a trace.
type Access struct {
	Key   Key
	Write bool
	// NextUse is the index in the trace of the next access to the same Key,
	// or Never. Populated by AnnotateNextUse.
	NextUse int64
}

// Trace is an ordered memory access stream.
type Trace []Access

// AnnotateNextUse fills in the NextUse field of every access with the trace
// index of the following access to the same key (Never if none). It runs in
// O(n) using a single backward pass.
func AnnotateNextUse(t Trace) {
	last := make(map[Key]int64, 1024)
	for i := len(t) - 1; i >= 0; i-- {
		k := t[i].Key
		if j, ok := last[k]; ok {
			t[i].NextUse = j
		} else {
			t[i].NextUse = Never
		}
		last[k] = int64(i)
	}
}

// UniqueKeys returns the number of distinct keys in the trace.
func UniqueKeys(t Trace) int {
	seen := make(map[Key]struct{}, 1024)
	for _, a := range t {
		seen[a.Key] = struct{}{}
	}
	return len(seen)
}

// Reads returns the number of read accesses in the trace.
func Reads(t Trace) int {
	n := 0
	for _, a := range t {
		if !a.Write {
			n++
		}
	}
	return n
}

// Writes returns the number of write accesses in the trace.
func Writes(t Trace) int { return len(t) - Reads(t) }
