package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAnnotateNextUseSimple(t *testing.T) {
	tr := Trace{
		{Key: 1}, // next use at 2
		{Key: 2}, // next use at 3
		{Key: 1}, // never again
		{Key: 2}, // never again
	}
	AnnotateNextUse(tr)
	want := []int64{2, 3, Never, Never}
	for i, w := range want {
		if tr[i].NextUse != w {
			t.Errorf("acc %d: NextUse = %d, want %d", i, tr[i].NextUse, w)
		}
	}
}

func TestAnnotateNextUseEmpty(t *testing.T) {
	AnnotateNextUse(nil) // must not panic
	tr := Trace{}
	AnnotateNextUse(tr)
}

// Property: for every access i, NextUse is the smallest j > i with the same
// key, or Never.
func TestAnnotateNextUseProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := make(Trace, int(n))
		for i := range tr {
			tr[i].Key = Key(rng.Intn(8))
		}
		AnnotateNextUse(tr)
		for i := range tr {
			want := Never
			for j := i + 1; j < len(tr); j++ {
				if tr[j].Key == tr[i].Key {
					want = int64(j)
					break
				}
			}
			if tr[i].NextUse != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestCounts(t *testing.T) {
	tr := Trace{
		{Key: 1, Write: true},
		{Key: 2},
		{Key: 1},
		{Key: 3, Write: true},
	}
	if got := UniqueKeys(tr); got != 3 {
		t.Errorf("UniqueKeys = %d, want 3", got)
	}
	if got := Reads(tr); got != 2 {
		t.Errorf("Reads = %d, want 2", got)
	}
	if got := Writes(tr); got != 2 {
		t.Errorf("Writes = %d, want 2", got)
	}
}
