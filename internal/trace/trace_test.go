package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAnnotateNextUseSimple(t *testing.T) {
	tr := Trace{
		{Key: 1}, // next use at 2
		{Key: 2}, // next use at 3
		{Key: 1}, // never again
		{Key: 2}, // never again
	}
	AnnotateNextUse(tr)
	want := []int64{2, 3, Never, Never}
	for i, w := range want {
		if tr[i].NextUse != w {
			t.Errorf("acc %d: NextUse = %d, want %d", i, tr[i].NextUse, w)
		}
	}
}

func TestAnnotateNextUseEmpty(t *testing.T) {
	AnnotateNextUse(nil) // must not panic
	tr := Trace{}
	AnnotateNextUse(tr)
}

// Property: for every access i, NextUse is the smallest j > i with the same
// key, or Never.
func TestAnnotateNextUseProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := make(Trace, int(n))
		for i := range tr {
			tr[i].Key = Key(rng.Intn(8))
		}
		AnnotateNextUse(tr)
		for i := range tr {
			want := Never
			for j := i + 1; j < len(tr); j++ {
				if tr[j].Key == tr[i].Key {
					want = int64(j)
					break
				}
			}
			if tr[i].NextUse != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestCounts(t *testing.T) {
	tr := Trace{
		{Key: 1, Write: true},
		{Key: 2},
		{Key: 1},
		{Key: 3, Write: true},
	}
	if got := UniqueKeys(tr); got != 3 {
		t.Errorf("UniqueKeys = %d, want 3", got)
	}
	if got := Reads(tr); got != 2 {
		t.Errorf("Reads = %d, want 2", got)
	}
	if got := Writes(tr); got != 2 {
		t.Errorf("Writes = %d, want 2", got)
	}
}

// TestColumnsRoundTrip checks the row/columnar conversions are inverses and
// that the columnar next-use annotation matches the row-oriented one on a
// deterministic pseudo-random trace with heavy key reuse.
func TestColumnsRoundTrip(t *testing.T) {
	tr := make(Trace, 4096)
	state := uint64(1)
	for i := range tr {
		state = state*6364136223846793005 + 1442695040888963407
		tr[i] = Access{Key: Key(state % 97), Write: state%3 == 0}
	}
	cols := ColumnsOf(tr)
	if cols.Len() != len(tr) {
		t.Fatalf("len %d != %d", cols.Len(), len(tr))
	}
	AnnotateNextUse(tr)
	AnnotateNextUseColumns(cols)
	for i := range tr {
		if cols.At(i) != tr[i] {
			t.Fatalf("access %d: columnar %+v != row %+v", i, cols.At(i), tr[i])
		}
	}
	back := cols.ToTrace()
	for i := range tr {
		if back[i] != tr[i] {
			t.Fatalf("round trip diverges at %d", i)
		}
	}
}

// TestColumnsAppendReset checks the builder surface.
func TestColumnsAppendReset(t *testing.T) {
	var c Columns
	c.Append(7, false)
	c.Append(7, true)
	c.Append(9, false)
	AnnotateNextUseColumns(&c)
	if c.NextUse[0] != 1 || c.NextUse[1] != Never || c.NextUse[2] != Never {
		t.Fatalf("next-use = %v", c.NextUse)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("reset left %d accesses", c.Len())
	}
	c.Append(1, true)
	if got := c.At(0); got != (Access{Key: 1, Write: true, NextUse: Never}) {
		t.Fatalf("after reset: %+v", got)
	}
}
