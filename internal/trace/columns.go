package trace

// Columns is a trace in struct-of-arrays layout: three parallel slices
// instead of a slice of Access records. Bulk trace producers (binning
// replays, policy sweeps) append millions of accesses; the columnar form
// shrinks each record from 24 bytes (with padding) to 17 across three
// cache-friendly streams, and lets consumers that only scan keys (next-use
// annotation, working-set counts) touch a third of the memory.
type Columns struct {
	Keys    []Key
	Write   []bool
	NextUse []int64
}

// Len returns the number of accesses.
func (c *Columns) Len() int { return len(c.Keys) }

// Append adds one access with NextUse unset (Never).
func (c *Columns) Append(k Key, write bool) {
	c.Keys = append(c.Keys, k)
	c.Write = append(c.Write, write)
	c.NextUse = append(c.NextUse, Never)
}

// Reset empties the columns, keeping capacity.
func (c *Columns) Reset() {
	c.Keys = c.Keys[:0]
	c.Write = c.Write[:0]
	c.NextUse = c.NextUse[:0]
}

// At materializes the i-th access.
func (c *Columns) At(i int) Access {
	return Access{Key: c.Keys[i], Write: c.Write[i], NextUse: c.NextUse[i]}
}

// ToTrace materializes the columnar trace as a row-oriented Trace.
func (c *Columns) ToTrace() Trace {
	t := make(Trace, c.Len())
	for i := range t {
		t[i] = c.At(i)
	}
	return t
}

// ColumnsOf converts a row-oriented trace to columnar form.
func ColumnsOf(t Trace) *Columns {
	c := &Columns{
		Keys:    make([]Key, len(t)),
		Write:   make([]bool, len(t)),
		NextUse: make([]int64, len(t)),
	}
	for i, a := range t {
		c.Keys[i] = a.Key
		c.Write[i] = a.Write
		c.NextUse[i] = a.NextUse
	}
	return c
}

// AnnotateNextUseColumns fills NextUse with the index of the following
// access to the same key (Never if none): the same single backward pass as
// AnnotateNextUse, reading only the key column.
func AnnotateNextUseColumns(c *Columns) {
	last := make(map[Key]int64, 1024)
	for i := len(c.Keys) - 1; i >= 0; i-- {
		k := c.Keys[i]
		if j, ok := last[k]; ok {
			c.NextUse[i] = j
		} else {
			c.NextUse[i] = Never
		}
		last[k] = int64(i)
	}
}
