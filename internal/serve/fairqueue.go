package serve

import (
	"container/list"
	"context"
	"sort"
	"sync"

	"tcor/internal/resilience"
	"tcor/internal/stats"
)

// strideScale is the stride scheduler's numerator: a tenant's stride is
// strideScale/weight, so a weight-3 tenant's virtual pass advances a third
// as fast as a weight-1 tenant's and it is picked three times as often.
// 1<<20 keeps strides integral and distinct up to the maximum weight.
const strideScale = 1 << 20

// gate is the admission controller: a pool of worker slots fronted by
// per-tenant bounded wait queues drained in weighted fair-share order.
// Every simulation — whether it arrived through /v1/simulate or as one
// item of a sweep — must hold a slot while it runs, so the server never
// executes more than Workers simulations at once; each tenant's backlog is
// bounded by its own MaxQueued, and the excess is rejected immediately with
// errQueueFull (HTTP 429 + a Retry-After sized from that tenant's backlog)
// instead of accumulating latency.
//
// Scheduling is stride-based WFQ: each tenant queue carries a virtual pass,
// advanced by strideScale/weight per admission, and a released slot goes to
// the eligible tenant with the smallest pass (FIFO within a tenant). A
// tenant waking from idle rejoins at max(its pass, the global virtual
// time), so sleeping never banks credit and a burst cannot monopolize the
// pool — starvation-free by construction, and deterministic: admission
// order depends only on weights and arrival order, never on the clock.
//
// Slot and gauge accounting share one mutex, and a released slot is handed
// directly to the chosen waiter instead of being freed and re-claimed. The
// handoff means serve.inflight never moves during a release-to-admit
// transition: a metrics snapshot can never read the gauge below the number
// of held slots nor above Workers.
//
// The serve.queue.wait histogram observes successful admissions only —
// instant admissions observe 0 — so its count always matches serve.admitted
// at quiescence and never exceeds it mid-flight. Waiters that give up
// (context canceled or expired in the queue) meter their queue time into
// serve.queue.canceledWait instead, keeping cancellations from inflating
// the admission-wait quantiles.
type gate struct {
	workers int
	depth   int // per-tenant backlog bound for tenants with MaxQueued == 0
	clock   resilience.Clock
	tenants *TenantSet

	mu     sync.Mutex
	free   int    // unheld worker slots
	vtime  uint64 // global virtual time: the last scheduled pass
	queues map[string]*tenantQueue
	names  []string // queue names in deterministic scan order

	queueGauge    *stats.Gauge
	inflight      *stats.Gauge
	admitted      *stats.Counter
	rejectedFull  *stats.Counter
	canceledWaits *stats.Counter
	waitHist      *stats.Histogram // admission wait, successful admissions only
	canceledHist  *stats.Histogram // time spent queued by canceled waiters
}

// tenantQueue is one tenant's slice of the gate: its FIFO of waiters, its
// running count against MaxInflight, and its stride-scheduling state.
type tenantQueue struct {
	t       *TenantSpec
	waiters *list.List // *waiter, FIFO within the tenant
	running int        // slots this tenant currently holds
	pass    uint64     // virtual pass: next admission's scheduling key
	stride  uint64     // strideScale / weight

	queuedG   *stats.Gauge
	runningG  *stats.Gauge
	admittedC *stats.Counter
	rejectedC *stats.Counter
	waitH     *stats.Histogram
}

// waiter is one queued acquire. ch is closed exactly once, by the releaser
// that hands it a slot; admitted flips under gate.mu at that same moment so
// a canceled waiter can tell whether it lost a race against a handoff.
type waiter struct {
	ch       chan struct{}
	admitted bool
	elem     *list.Element
	q        *tenantQueue
}

// newGate builds a gate with workers slots, per-tenant wait queues
// defaulting to depth, and one scheduling queue per tenant in ts, metering
// into reg under "serve." and "serve.tenant.<name>.".
func newGate(workers, depth int, ts *TenantSet, clock resilience.Clock, reg *stats.Registry) *gate {
	g := &gate{
		workers:       workers,
		free:          workers,
		depth:         depth,
		clock:         clock,
		tenants:       ts,
		queues:        make(map[string]*tenantQueue),
		queueGauge:    reg.Gauge("serve.queue.depth"),
		inflight:      reg.Gauge("serve.inflight"),
		admitted:      reg.Counter("serve.admitted"),
		rejectedFull:  reg.Counter("serve.rejected.queueFull"),
		canceledWaits: reg.Counter("serve.rejected.canceledInQueue"),
		waitHist:      reg.Histogram("serve.queue.wait"),
		canceledHist:  reg.Histogram("serve.queue.canceledWait"),
	}
	for _, t := range ts.Tenants() {
		prefix := "serve.tenant." + t.Name + "."
		g.queues[t.Name] = &tenantQueue{
			t:         t,
			waiters:   list.New(),
			stride:    strideScale / uint64(t.Weight),
			queuedG:   reg.Gauge(prefix + "queued"),
			runningG:  reg.Gauge(prefix + "inflight"),
			admittedC: reg.Counter(prefix + "admitted"),
			rejectedC: reg.Counter(prefix + "rejected.queueFull"),
			waitH:     reg.Histogram(prefix + "queue.wait"),
		}
		g.names = append(g.names, t.Name)
	}
	sort.Strings(g.names)
	return g
}

// queueFor returns the scheduling queue for the request's tenant: the one
// resolved by middleware into ctx, or the default tenant's.
func (g *gate) queueFor(ctx context.Context) *tenantQueue {
	name := g.tenants.Default().Name
	if t, ok := ctx.Value(tenantSpecKey{}).(*TenantSpec); ok {
		name = t.Name
	}
	return g.queues[name]
}

// maxQueued is the tenant's backlog bound.
func (q *tenantQueue) maxQueued(gateDepth int) int {
	if q.t.MaxQueued > 0 {
		return q.t.MaxQueued
	}
	return gateDepth
}

// underCap reports whether the tenant may start one more simulation.
func (q *tenantQueue) underCap() bool {
	return q.t.MaxInflight == 0 || q.running < q.t.MaxInflight
}

// acquire claims a worker slot for the context's tenant, waiting in the
// tenant's bounded queue if none is available. It returns errQueueFull
// without waiting when that queue is already at its bound, and the context
// error if the caller gives up while queued. On success the caller must
// invoke the returned release function.
//
// Wait time is telemetered: the serve.queue.wait histogram (and the
// tenant's), the request's meta (for the access-log queueWait field) and,
// when the context carries a span, a child queue.wait span in the trace.
func (g *gate) acquire(ctx context.Context) (func(), error) {
	g.mu.Lock()
	q := g.queueFor(ctx)
	// Fast path: a slot is free, the tenant is under its concurrency cap,
	// and it has no earlier waiter of its own to honor. A free slot with
	// waiters elsewhere means those tenants are at their caps — taking the
	// slot is not queue-jumping, because they could not use it.
	if g.free > 0 && q.waiters.Len() == 0 && q.underCap() {
		g.free--
		g.admitLocked(q, false)
		g.mu.Unlock()
		g.waitHist.Observe(0)
		q.waitH.Observe(0)
		return g.releaser(q), nil
	}
	if q.waiters.Len() >= q.maxQueued(g.depth) {
		g.mu.Unlock()
		g.rejectedFull.Inc()
		q.rejectedC.Inc()
		return nil, errQueueFull
	}
	if q.waiters.Len() == 0 {
		// Idle-to-active transition: rejoin the scheduler at the current
		// virtual time. A tenant that slept does not accumulate credit it
		// could later burn in a monopolizing burst.
		if q.pass < g.vtime {
			q.pass = g.vtime
		}
	}
	w := &waiter{ch: make(chan struct{}), q: q}
	w.elem = q.waiters.PushBack(w)
	g.queueGauge.Add(1)
	q.queuedG.Add(1)
	g.mu.Unlock()

	t0 := g.clock.Now()
	sp, _ := stats.StartSpan(ctx, "queue.wait", "serve")
	select {
	case <-w.ch:
		wait := g.clock.Now().Sub(t0)
		g.waitHist.Observe(int64(wait))
		q.waitH.Observe(int64(wait))
		metaFrom(ctx).addQueueWait(wait)
		sp.End()
		return g.releaser(q), nil
	case <-ctx.Done():
		wait := g.clock.Now().Sub(t0)
		g.mu.Lock()
		if w.admitted {
			// A handoff raced the cancellation: we own a slot we will not
			// use. The grant was metered as an admission, so observe its
			// wait (keeping wait-count == admissions exact), then pass the
			// slot straight on before reporting the cancellation.
			g.waitHist.Observe(int64(wait))
			q.waitH.Observe(int64(wait))
			g.releaseLocked(q)
			g.mu.Unlock()
		} else {
			q.waiters.Remove(w.elem)
			g.queueGauge.Add(-1)
			q.queuedG.Add(-1)
			g.mu.Unlock()
			g.canceledWaits.Inc()
			g.canceledHist.Observe(int64(wait))
		}
		metaFrom(ctx).addQueueWait(wait)
		sp.End()
		return nil, ctx.Err()
	}
}

// admitLocked charges an admission to the tenant (g.mu held). handoff
// admissions inherit a slot that never became free, so the global in-flight
// gauge — already counting it — must not move; fast-path admissions claim a
// free slot and increment it.
func (g *gate) admitLocked(q *tenantQueue, handoff bool) {
	q.running++
	q.runningG.Add(1)
	if !handoff {
		g.inflight.Add(1)
	}
	g.admitted.Inc()
	q.admittedC.Inc()
}

// releaser binds a release to the queue the slot was charged to, so a
// request's slot is always returned to the right tenant's accounting no
// matter where the release happens.
func (g *gate) releaser(q *tenantQueue) func() {
	return func() {
		g.mu.Lock()
		g.releaseLocked(q)
		g.mu.Unlock()
	}
}

// releaseLocked (g.mu held) returns q's slot: handed directly to the
// fair-share scheduler's chosen waiter when one is eligible — the in-flight
// gauge is net untouched because the slot never becomes free — or, with no
// eligible waiter, freed (decrementing the gauge) in the same critical
// section.
func (g *gate) releaseLocked(q *tenantQueue) {
	q.running--
	q.runningG.Add(-1)
	if next := g.pickLocked(); next != nil {
		w := next.waiters.Remove(next.waiters.Front()).(*waiter)
		g.queueGauge.Add(-1)
		next.queuedG.Add(-1)
		g.admitLocked(next, true)
		w.admitted = true
		close(w.ch)
		return
	}
	g.free++
	g.inflight.Add(-1)
}

// pickLocked returns the eligible tenant queue with the smallest virtual
// pass (ties broken by name, which the deterministic scan order provides),
// advancing the global virtual time and the winner's pass. Nil when no
// tenant has an admittable waiter.
func (g *gate) pickLocked() *tenantQueue {
	var best *tenantQueue
	for _, name := range g.names {
		q := g.queues[name]
		if q.waiters.Len() == 0 || !q.underCap() {
			continue
		}
		if best == nil || q.pass < best.pass {
			best = q
		}
	}
	if best == nil {
		return nil
	}
	g.vtime = best.pass
	best.pass += best.stride
	return best
}

// backlog returns the live load the generic 429 Retry-After estimate is
// sized from: running simulations plus queued waiters, all tenants.
func (g *gate) backlog() int64 {
	return g.inflight.Load() + g.queueGauge.Load()
}

// tenantBacklog returns one tenant's live load: its queued waiters plus its
// running simulations.
func (g *gate) tenantBacklog(t *TenantSpec) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	q := g.queues[t.Name]
	if q == nil {
		return g.inflight.Load() + g.queueGauge.Load()
	}
	return int64(q.waiters.Len() + q.running)
}

// tenantWorkers is the slice of the worker pool a tenant can count on under
// full contention: its weight's share, at least one.
func (g *gate) tenantWorkers(t *TenantSpec) int {
	n := int(int64(g.workers) * int64(t.Weight) / g.tenants.TotalWeight())
	if t.MaxInflight > 0 && n > t.MaxInflight {
		n = t.MaxInflight
	}
	if n < 1 {
		n = 1
	}
	return n
}
