package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RequestIDHeader is the request-correlation header: honored when the client
// sends one, minted otherwise, echoed on every response, and attached to the
// access-log line and the request's spans — so a failed call reported by
// ServiceClient is greppable in the daemon's log.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds an inbound request ID so a hostile client cannot
// inflate logs; longer values are replaced with a minted one.
const maxRequestIDLen = 128

// MintRequestID returns a fresh 16-hex-char random ID.
func MintRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant at least
		// keeps requests flowing.
		return "00000000deadbeef"
	}
	return hex.EncodeToString(b[:])
}

// requestIDKey carries the request ID in the request context.
type requestIDKey struct{}

// ContextWithRequestID returns ctx carrying the request-correlation ID.
// The middleware attaches every inbound request's ID; the cluster gateway
// uses it so proxied shard calls carry the caller's ID end to end (the
// typed client forwards whatever ID its context carries).
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request's correlation ID ("" outside a request).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// requestMeta accumulates the telemetry a request gathers below the handler
// (queue wait in the admission gate, cache dispositions in the result cache)
// so the access-log line at the top of the middleware can report it. Sweep
// items run in worker goroutines, so the fields are mutex-guarded.
type requestMeta struct {
	mu        sync.Mutex
	queueWait time.Duration
	outcomes  map[outcome]int
}

// metaKey carries the *requestMeta in the request context.
type metaKey struct{}

func contextWithMeta(ctx context.Context, m *requestMeta) context.Context {
	return context.WithValue(ctx, metaKey{}, m)
}

// metaFrom returns the request's meta, or nil outside a request (every
// method on a nil *requestMeta no-ops).
func metaFrom(ctx context.Context) *requestMeta {
	m, _ := ctx.Value(metaKey{}).(*requestMeta)
	return m
}

// addQueueWait accumulates admission-gate wait time (a sweep sums its
// items' waits).
func (m *requestMeta) addQueueWait(d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.queueWait += d
	m.mu.Unlock()
}

// noteOutcome counts one cache disposition.
func (m *requestMeta) noteOutcome(o outcome) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.outcomes == nil {
		m.outcomes = make(map[outcome]int, 3)
	}
	m.outcomes[o]++
	m.mu.Unlock()
}

// snapshot returns the accumulated queue wait and the rendered cache
// disposition: "-" when the request never touched the cache, the bare
// outcome for a single simulation ("hit", "miss", "coalesced"), and a
// sorted "hit:2,miss:3" breakdown for sweeps.
func (m *requestMeta) snapshot() (time.Duration, string) {
	if m == nil {
		return 0, "-"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.outcomes) == 0 {
		return m.queueWait, "-"
	}
	if len(m.outcomes) == 1 {
		for o, n := range m.outcomes {
			if n == 1 {
				return m.queueWait, string(o)
			}
		}
	}
	parts := make([]string, 0, len(m.outcomes))
	for o, n := range m.outcomes {
		parts = append(parts, string(o)+":"+strconv.Itoa(n))
	}
	sort.Strings(parts)
	return m.queueWait, strings.Join(parts, ",")
}
