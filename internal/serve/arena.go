package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"tcor/internal/arena"
	"tcor/internal/experiments"
)

// ArenaRequest is the body of POST /v1/arena: a replacement-policy race over
// the attribute-trace suite. The zero request races the default roster over
// the full Table II suite at the paper's 48 KiB design point. The daemon
// races single-frame traces (the runner is shared and memoized, so the frame
// count is pinned), which is the same geometry `paperfig -arena -frames 1`
// reproduces — the two emit byte-identical reports.
type ArenaRequest struct {
	// Policies is the roster of registry names (GET /v1/arena is not a
	// thing; the names are cache.PolicyNames). Empty = the default roster.
	// LRU and OPT always race: they anchor the ranking's gap columns.
	Policies []string `json:"policies,omitempty"`
	// Benchmarks restricts the suite by Table II alias (empty = all ten).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// SizeKB is the headline capacity in KiB (0 = 48, the paper's point).
	SizeKB float64 `json:"sizeKB,omitempty"`
	// Ways is the associativity (0 = fully associative).
	Ways int `json:"ways,omitempty"`
	// Curves adds the Fig. 11-style miss-ratio-vs-size series per policy.
	Curves bool `json:"curves,omitempty"`
	// CurveSizesKB overrides the curve grid (empty with Curves = default).
	CurveSizesKB []float64 `json:"curveSizesKB,omitempty"`
	// TimeoutMs bounds this request's total time (admission wait included);
	// 0 uses the server default. The server clamps it to its maximum.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// maxArenaCurveSizes bounds one request's curve grid: the race costs
// (1 + curve sizes) x benchmarks x policies simulations, and the other two
// factors are already capped by the suite and the registry.
const maxArenaCurveSizes = 32

// arenaOptions maps a request onto normalized arena options. All failures
// are 400s with a precise message.
func arenaOptions(req ArenaRequest) (arena.Options, error) {
	if req.TimeoutMs < 0 {
		return arena.Options{}, badRequest("timeoutMs must be non-negative, got %d", req.TimeoutMs)
	}
	opts, err := arena.Normalize(arena.Options{
		Policies:     req.Policies,
		Benchmarks:   req.Benchmarks,
		SizeKB:       req.SizeKB,
		Ways:         req.Ways,
		Curves:       req.Curves,
		CurveSizesKB: req.CurveSizesKB,
	})
	if err != nil {
		return opts, badRequest("%v", err)
	}
	if len(opts.CurveSizesKB) > maxArenaCurveSizes {
		return opts, badRequest("curve grid has %d sizes; the server limit is %d",
			len(opts.CurveSizesKB), maxArenaCurveSizes)
	}
	return opts, nil
}

// ArenaKey resolves a request the way a server would and returns its
// normalized options plus its content address: a sha256 over the canonical
// (normalized) options, so two requests meaning the same race share one
// address no matter how they were phrased. The cluster gateway routes
// /v1/arena with it, the same way CanonicalKey routes /v1/simulate.
func ArenaKey(req ArenaRequest) (arena.Options, string, error) {
	opts, err := arenaOptions(req)
	if err != nil {
		return opts, "", err
	}
	h := sha256.New()
	json.NewEncoder(h).Encode(opts) //nolint:errcheck // writing to a hash cannot fail
	return opts, "arena:" + hex.EncodeToString(h.Sum(nil)), nil
}

// arenaRunner returns the server's lazily built arena runner: single-frame
// traces (see ArenaRequest), memo tables bounded so an open-ended request
// stream cannot grow the daemon without bound, and the sweep parallelism the
// race itself manages (the runner's own Parallel is unused by the arena).
func (s *Server) arenaRunner() *experiments.Runner {
	s.arenaOnce.Do(func() {
		r := experiments.NewRunner()
		r.Frames = 1
		r.MemoCap = 32
		s.arenaR = r
	})
	return s.arenaR
}

// handleArena serves POST /v1/arena: normalize, content-address, then run
// the race through the arena's own result cache (singleflight inside) and
// the admission gate. Like /v1/simulate, a cached report costs no worker
// slot and concurrent identical races collapse into one.
func (s *Server) handleArena(w http.ResponseWriter, r *http.Request) {
	var req ArenaRequest
	body, ok := s.beginSim(w, r, &req)
	if !ok {
		return
	}
	opts, key, err := ArenaKey(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if AsyncRequested(r) {
		s.submitJob(w, r, JobKindArena, body)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	val, how, err := s.arenaCache.get(ctx, key, nil, func() (cached, error) {
		return s.computeArena(ctx, opts)
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tcord-Cache", string(how))
	w.Write(val.body) //nolint:errcheck // client gone is its own problem
}

// computeArena is the arena cache-miss leader's work: one admission-gate
// slot for the whole race (the race parallelizes internally across the
// worker count, the way TileParallel parallelizes one simulation), then the
// canonical report encoding. Per-policy counters meter how many cells each
// roster member raced.
func (s *Server) computeArena(ctx context.Context, opts arena.Options) (cached, error) {
	rel, err := s.gate.acquire(ctx)
	if err != nil {
		if err == errQueueFull {
			qe := *errQueueFull
			qe.retryAfter = s.tenantRetryAfter(s.tenantFrom(ctx))
			return cached{}, &qe
		}
		return cached{}, err
	}
	defer rel()
	if err := ctx.Err(); err != nil {
		return cached{}, err
	}
	return s.raceArena(ctx, s.arenaRunner(), opts)
}

// raceArena runs one arena race on the given runner and encodes the
// canonical report. Sync requests pass the shared memoized runner;
// background arena jobs pass a private runner wired to the job's
// checkpoint journal so the race resumes across restarts.
func (s *Server) raceArena(ctx context.Context, runner *experiments.Runner, opts arena.Options) (cached, error) {
	cells := int64(len(opts.Benchmarks) * (1 + len(opts.CurveSizesKB)))
	for _, p := range opts.Policies {
		s.reg.Counter("serve.arena.policy." + strings.ToLower(p) + ".races").Inc()
		s.reg.Counter("serve.arena.policy." + strings.ToLower(p) + ".cells").Add(cells)
	}

	opts.Parallel = s.opts.Workers
	t0 := time.Now()
	rep, err := arena.Race(ctx, runner, opts)
	s.arenaDur.ObserveSince(t0)
	if err != nil {
		s.arenaFailed.Inc()
		return cached{}, err
	}
	body, err := rep.Encode()
	if err != nil {
		s.arenaFailed.Inc()
		return cached{}, err
	}
	s.arenaOK.Inc()
	return cached{body: body}, nil
}
