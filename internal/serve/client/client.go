// Package client is the typed Go client of the tcord simulation service.
// It speaks the same request/response types the server defines in
// internal/serve, so a program can move a workload between a direct library
// call, an in-process serve.Server and a remote daemon without changing
// shapes. The facade re-exports it as tcor.ServiceClient.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"tcor/internal/buildinfo"
	"tcor/internal/serve"
)

// Client talks to one tcord server. The zero value is not usable; call New.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the server at baseURL (e.g. "http://127.0.0.1:8344").
// httpClient may be nil for http.DefaultClient; pass a client with a Timeout
// (or use per-call contexts) in production.
func New(baseURL string, httpClient *http.Client) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: baseURL, http: httpClient}
}

// APIError is a non-2xx response, carrying the server's machine-readable
// code, the correlation ID echoed in X-Request-Id (greppable in the
// daemon's access log) and, for 429s, the parsed Retry-After hint.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RequestID  string
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("tcord: %s (HTTP %d, %s, request %s)", e.Message, e.Status, e.Code, e.RequestID)
	}
	return fmt.Sprintf("tcord: %s (HTTP %d, %s)", e.Message, e.Status, e.Code)
}

// IsRetryable reports whether the request can be retried as-is after
// waiting (admission rejections and drain refusals are; 4xx are not).
func (e *APIError) IsRetryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// do issues one request and decodes error envelopes.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, http.Header, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.Header, err
	}
	if resp.StatusCode/100 != 2 {
		ae := &APIError{Status: resp.StatusCode,
			RequestID: resp.Header.Get(serve.RequestIDHeader)}
		var envelope serve.ErrorBody
		if json.Unmarshal(data, &envelope) == nil && envelope.Error.Code != "" {
			ae.Code = envelope.Error.Code
			ae.Message = envelope.Error.Message
		} else {
			ae.Code = "http_error"
			ae.Message = http.StatusText(resp.StatusCode)
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
		return nil, resp.Header, ae
	}
	return data, resp.Header, nil
}

// Healthy reports whether the server process answers at all.
func (c *Client) Healthy(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	return err
}

// Ready reports whether the server accepts new simulations (false while
// draining).
func (c *Client) Ready(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/readyz", nil)
	return err
}

// Version fetches the server's build identity.
func (c *Client) Version(ctx context.Context) (buildinfo.Info, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/v1/version", nil)
	if err != nil {
		return buildinfo.Info{}, err
	}
	var info buildinfo.Info
	return info, json.Unmarshal(data, &info)
}

// Benchmarks lists the server's built-in suite in paper order.
func (c *Client) Benchmarks(ctx context.Context) ([]serve.BenchmarkInfo, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/v1/benchmarks", nil)
	if err != nil {
		return nil, err
	}
	var out []serve.BenchmarkInfo
	return out, json.Unmarshal(data, &out)
}

// Stats fetches the serving-layer metrics snapshot (queue depth, cache
// hit/miss/eviction counts, in-flight gauge, rejections).
func (c *Client) Stats(ctx context.Context) (map[string]int64, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	var out map[string]int64
	return out, json.Unmarshal(data, &out)
}

// CacheOutcome says how a simulation was served: "hit" (result cache),
// "coalesced" (collapsed onto a concurrent identical request) or "miss"
// (freshly simulated).
type CacheOutcome string

// Simulate runs one simulation, returning the decoded result and how the
// cache served it. The raw response body is available via SimulateRaw.
func (c *Client) Simulate(ctx context.Context, req serve.SimulateRequest) (serve.RunResult, CacheOutcome, error) {
	data, how, err := c.SimulateRaw(ctx, req)
	if err != nil {
		return serve.RunResult{}, how, err
	}
	var rr serve.RunResult
	return rr, how, json.Unmarshal(data, &rr)
}

// SimulateRaw is Simulate returning the exact served bytes — the form the
// golden tests compare against a direct library call.
func (c *Client) SimulateRaw(ctx context.Context, req serve.SimulateRequest) ([]byte, CacheOutcome, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, "", err
	}
	data, hdr, err := c.do(ctx, http.MethodPost, "/v1/simulate", body)
	return data, CacheOutcome(hdr.Get("X-Tcord-Cache")), err
}

// Sweep runs a batch of simulations through the server's worker pool and
// returns the decoded results in item order.
func (c *Client) Sweep(ctx context.Context, req serve.SweepRequest) ([]serve.RunResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	data, _, err := c.do(ctx, http.MethodPost, "/v1/sweep", body)
	if err != nil {
		return nil, err
	}
	var resp serve.SweepResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, err
	}
	out := make([]serve.RunResult, len(resp.Runs))
	for i, raw := range resp.Runs {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("tcord: decoding run %d: %w", i, err)
		}
	}
	return out, nil
}
