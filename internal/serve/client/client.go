// Package client is the typed Go client of the tcord simulation service.
// It speaks the same request/response types the server defines in
// internal/serve, so a program can move a workload between a direct library
// call, an in-process serve.Server and a remote daemon without changing
// shapes. The facade re-exports it as tcor.ServiceClient.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"tcor/internal/arena"
	"tcor/internal/buildinfo"
	"tcor/internal/resilience"
	"tcor/internal/serve"
	"tcor/internal/stats"
)

// Client talks to one tcord server. The zero value is not usable; call New.
type Client struct {
	base   string
	http   *http.Client
	tenant string // credential sent as serve.TenantHeader ("" = anonymous)

	retry   *resilience.RetryPolicy // nil = single attempt (the default)
	breaker *resilience.Breaker     // nil = no client-side breaker

	attempts *stats.Counter   // requests issued, retries included
	retries  *stats.Counter   // re-issues after a retryable failure
	giveups  *stats.Counter   // calls that exhausted their retry budget
	delay    *stats.Histogram // backoff slept per scheduled retry, ns
}

// Option configures a Client.
type Option func(*Client)

// WithRetry makes every idempotent call retry transient failures (transport
// errors, 429s, 5xxs) under p: capped exponential backoff with full jitter,
// honoring the server's Retry-After hint and the call's context deadline.
// The policy's Retryable and RetryAfter classifiers are supplied by the
// client; setting them on p has no effect. Retries are off without this
// option — the historical single-attempt behavior.
func WithRetry(p resilience.RetryPolicy) Option {
	return func(c *Client) { c.retry = &p }
}

// WithBreaker adds a client-side circuit breaker: repeated transport
// failures or 5xxs open it, and while open, calls fail fast with an error
// matching resilience.ErrOpen instead of hammering a down server. Combined
// with WithRetry, an open-breaker rejection is itself retryable — the retry
// loop waits out the cooldown.
func WithBreaker(cfg resilience.BreakerConfig) Option {
	return func(c *Client) { c.breaker = resilience.NewBreaker(cfg) }
}

// WithTenant authenticates every call as the tenant owning key: the
// credential rides serve.TenantHeader on each attempt — retries, hedges and
// gateway failovers included — so quota, fair-share weight and cache
// accounting follow the caller wherever the request lands. A per-call
// credential placed on the context with serve.ContextWithTenantKey takes
// precedence; the empty key leaves the client anonymous.
func WithTenant(key string) Option {
	return func(c *Client) { c.tenant = key }
}

// WithMetrics meters the client's retry behavior into reg:
// client.attempts, client.retries, client.giveups and the
// client.retry.delay histogram.
func WithMetrics(reg *stats.Registry) Option {
	return WithMetricsPrefix(reg, "client")
}

// WithMetricsPrefix is WithMetrics under a caller-chosen metric prefix
// ("<prefix>.attempts" and friends), so several clients — the cluster
// gateway keeps one per shard — can meter into one registry without
// aliasing each other's counters.
func WithMetricsPrefix(reg *stats.Registry, prefix string) Option {
	return func(c *Client) {
		c.attempts = reg.Counter(prefix + ".attempts")
		c.retries = reg.Counter(prefix + ".retries")
		c.giveups = reg.Counter(prefix + ".giveups")
		c.delay = reg.Histogram(prefix + ".retry.delay")
	}
}

// New returns a client for the server at baseURL (e.g. "http://127.0.0.1:8344").
// httpClient may be nil for http.DefaultClient; pass a client with a Timeout
// (or use per-call contexts) in production.
func New(baseURL string, httpClient *http.Client, opts ...Option) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: baseURL, http: httpClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the server address the client was built with, trailing
// slashes trimmed — the cluster gateway uses it to name shards in logs and
// errors.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx response, carrying the server's machine-readable
// code, the correlation ID echoed in X-Request-Id (greppable in the
// daemon's access log) and the parsed Retry-After hint when the server sent
// one.
type APIError struct {
	Status    int
	Code      string
	Message   string
	RequestID string
	// RetryAfter is the server's parsed Retry-After hint; meaningful only
	// when HasRetryAfter is true. The pair distinguishes "no hint" from an
	// explicit zero-second hint.
	RetryAfter    time.Duration
	HasRetryAfter bool
}

// Error implements error.
func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("tcord: %s (HTTP %d, %s, request %s)", e.Message, e.Status, e.Code, e.RequestID)
	}
	return fmt.Sprintf("tcord: %s (HTTP %d, %s)", e.Message, e.Status, e.Code)
}

// IsRetryable reports whether the request can be retried as-is after
// waiting. Admission rejections (429), drain/breaker refusals (503) and
// transient server-side failures (500, 502, 504) are; 4xx are not. The
// service is deterministic — a request that genuinely cannot succeed is
// rejected with a 4xx, so a 5xx always means "the path, not the request".
func (e *APIError) IsRetryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryable classifies any error from one attempt: APIErrors answer for
// themselves; everything else — an open client breaker worth waiting out, a
// transport-level failure — retries. Context errors never reach here (the
// retry loop returns them before classifying).
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.IsRetryable()
	}
	return true
}

// retryAfterHint surfaces the server's Retry-After (or an open breaker's
// cooldown remainder) to the retry policy.
func retryAfterHint(err error) (time.Duration, bool) {
	var ae *APIError
	if errors.As(err, &ae) && ae.HasRetryAfter {
		return ae.RetryAfter, true
	}
	var oe *resilience.OpenError
	if errors.As(err, &oe) && oe.RetryIn > 0 {
		return oe.RetryIn, true
	}
	return 0, false
}

// breakerOutcome classifies one attempt's result for the client breaker:
// transport errors and 5xxs are path failures; 4xx mean the server is
// healthy enough to reject precisely; 429s and cancellations are neutral.
func breakerOutcome(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return resilience.Ignore
	}
	var ae *APIError
	if errors.As(err, &ae) {
		switch {
		case ae.Status == http.StatusTooManyRequests:
			return resilience.Ignore
		case ae.Status < 500:
			return nil
		}
	}
	return err
}

// do issues one logical request — a single attempt without WithRetry, a
// budgeted retry loop with it — through the client breaker when configured.
// extra headers (nil for none) are set on every attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte, extra http.Header) ([]byte, http.Header, error) {
	data, hdr, _, err := c.doFull(ctx, method, path, body, extra)
	return data, hdr, err
}

// doFull is do also reporting the HTTP status of the final attempt — the
// job-submission path distinguishes 202 (created) from 200 (idempotent
// resubmission), both of which are successes.
func (c *Client) doFull(ctx context.Context, method, path string, body []byte, extra http.Header) ([]byte, http.Header, int, error) {
	if c.retry == nil {
		return c.doOnce(ctx, method, path, body, extra)
	}
	p := *c.retry
	p.Retryable = retryable
	p.RetryAfter = retryAfterHint
	userHook := c.retry.OnRetry
	p.OnRetry = func(attempt int, delay time.Duration, err error) {
		c.retries.Inc()
		c.delay.Observe(int64(delay))
		if userHook != nil {
			userHook(attempt, delay, err)
		}
	}
	type reply struct {
		data   []byte
		hdr    http.Header
		status int
	}
	r, err := resilience.Do(ctx, p, func(ctx context.Context) (reply, error) {
		data, hdr, status, err := c.doOnce(ctx, method, path, body, extra)
		return reply{data, hdr, status}, err
	})
	if err != nil {
		c.giveups.Inc()
	}
	return r.data, r.hdr, r.status, err
}

// doOnce issues one HTTP request and decodes error envelopes.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, extra http.Header) ([]byte, http.Header, int, error) {
	done, allowErr := c.breaker.Allow()
	if allowErr != nil {
		return nil, nil, 0, allowErr
	}
	committed := false
	defer func() {
		if !committed {
			done(errors.New("client: attempt panicked"))
		}
	}()
	data, hdr, status, err := c.attempt(ctx, method, path, body, extra)
	committed = true
	done(breakerOutcome(err))
	return data, hdr, status, err
}

// attempt is one wire round trip.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, extra http.Header) ([]byte, http.Header, int, error) {
	c.attempts.Inc()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, nil, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range extra {
		req.Header[k] = vs
	}
	// Forward the caller's correlation ID so a request proxied through the
	// cluster gateway is greppable under one ID in every shard's log.
	if id := serve.RequestIDFrom(ctx); id != "" {
		req.Header.Set(serve.RequestIDHeader, id)
	}
	// The tenant credential is re-applied on every attempt, so it survives
	// retries the same way the request ID does. A context-scoped credential
	// (the gateway forwarding its caller's identity) outranks the client's.
	if key := serve.TenantKeyFrom(ctx); key != "" {
		req.Header.Set(serve.TenantHeader, key)
	} else if c.tenant != "" {
		req.Header.Set(serve.TenantHeader, c.tenant)
	}
	// Propagate the active span's trace identity: the receiving daemon's
	// middleware joins this trace and links its root span back to the span
	// that issued the call. With tracing off the context is invalid and
	// nothing is injected.
	stats.InjectTraceparent(req.Header, stats.SpanFrom(ctx).Context())
	resp, err := c.http.Do(req)
	if err != nil {
		// http.Client wraps the context error in a *url.Error; unwrap-aware
		// callers (the retry loop) need errors.Is to see through it, which
		// url.Error supports.
		return nil, nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.Header, resp.StatusCode, err
	}
	if resp.StatusCode/100 != 2 {
		ae := &APIError{Status: resp.StatusCode,
			RequestID: resp.Header.Get(serve.RequestIDHeader)}
		var envelope serve.ErrorBody
		if json.Unmarshal(data, &envelope) == nil && envelope.Error.Code != "" {
			ae.Code = envelope.Error.Code
			ae.Message = envelope.Error.Message
		} else {
			ae.Code = "http_error"
			ae.Message = http.StatusText(resp.StatusCode)
		}
		if hint := resp.Header.Get("Retry-After"); hint != "" {
			if secs, err := strconv.Atoi(hint); err == nil && secs >= 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
				ae.HasRetryAfter = true
			}
		}
		return nil, resp.Header, resp.StatusCode, ae
	}
	return data, resp.Header, resp.StatusCode, nil
}

// Healthy reports whether the server process answers at all.
func (c *Client) Healthy(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/healthz", nil, nil)
	return err
}

// Ready reports whether the server accepts new simulations (false while
// draining or degraded behind an open breaker).
func (c *Client) Ready(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/readyz", nil, nil)
	return err
}

// Version fetches the server's build identity.
func (c *Client) Version(ctx context.Context) (buildinfo.Info, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/v1/version", nil, nil)
	if err != nil {
		return buildinfo.Info{}, err
	}
	var info buildinfo.Info
	return info, json.Unmarshal(data, &info)
}

// Benchmarks lists the server's built-in suite in paper order.
func (c *Client) Benchmarks(ctx context.Context) ([]serve.BenchmarkInfo, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/v1/benchmarks", nil, nil)
	if err != nil {
		return nil, err
	}
	var out []serve.BenchmarkInfo
	return out, json.Unmarshal(data, &out)
}

// Stats fetches the serving-layer metrics snapshot (queue depth, cache
// hit/miss/eviction counts, in-flight gauge, rejections).
func (c *Client) Stats(ctx context.Context) (map[string]int64, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/v1/stats", nil, nil)
	if err != nil {
		return nil, err
	}
	var out map[string]int64
	return out, json.Unmarshal(data, &out)
}

// MetricsText fetches the server's Prometheus exposition page verbatim.
// The cluster gateway's /v1/cluster/metrics rollup scrapes shards with it.
func (c *Client) MetricsText(ctx context.Context) ([]byte, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/metrics", nil, nil)
	return data, err
}

// TraceSpans pulls the server's recorded spans for one trace ID — the
// /debug/trace?trace= path the gateway's trace collector stitches from.
func (c *Client) TraceSpans(ctx context.Context, id stats.TraceID) (stats.TraceSet, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/debug/trace?trace="+id.String(), nil, nil)
	if err != nil {
		return stats.TraceSet{}, err
	}
	var ts stats.TraceSet
	return ts, json.Unmarshal(data, &ts)
}

// CacheOutcome says how a simulation was served: "hit" (result cache),
// "coalesced" (collapsed onto a concurrent identical request), "miss"
// (freshly simulated) or "stale" (an expired entry served while the
// server's simulate path is degraded).
type CacheOutcome string

// Simulate runs one simulation, returning the decoded result and how the
// cache served it. The raw response body is available via SimulateRaw.
func (c *Client) Simulate(ctx context.Context, req serve.SimulateRequest) (serve.RunResult, CacheOutcome, error) {
	data, how, err := c.SimulateRaw(ctx, req)
	if err != nil {
		return serve.RunResult{}, how, err
	}
	var rr serve.RunResult
	return rr, how, json.Unmarshal(data, &rr)
}

// SimulateRaw is Simulate returning the exact served bytes — the form the
// golden tests compare against a direct library call.
func (c *Client) SimulateRaw(ctx context.Context, req serve.SimulateRequest) ([]byte, CacheOutcome, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, "", err
	}
	data, hdr, err := c.do(ctx, http.MethodPost, "/v1/simulate", body, nil)
	return data, CacheOutcome(hdr.Get("X-Tcord-Cache")), err
}

// Sweep runs a batch of simulations through the server's worker pool and
// returns the decoded results in item order.
func (c *Client) Sweep(ctx context.Context, req serve.SweepRequest) ([]serve.RunResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	data, _, err := c.do(ctx, http.MethodPost, "/v1/sweep", body, nil)
	if err != nil {
		return nil, err
	}
	var resp serve.SweepResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, err
	}
	out := make([]serve.RunResult, len(resp.Runs))
	for i, raw := range resp.Runs {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("tcord: decoding run %d: %w", i, err)
		}
	}
	return out, nil
}

// CacheProbe asks the server whether it already holds req's result, without
// letting it compute one: the request carries serve.CacheOnlyHeader, which
// the daemon answers from its result cache (fresh or within maxStale) or
// rejects with 404 cache_miss. A miss is not an error — it returns
// (nil, "", false, nil) — so the cluster gateway can probe a key's owning
// shard before allowing a failover shard to simulate from scratch.
func (c *Client) CacheProbe(ctx context.Context, req serve.SimulateRequest) ([]byte, CacheOutcome, bool, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, "", false, err
	}
	extra := http.Header{serve.CacheOnlyHeader: []string{"1"}}
	data, hdr, err := c.do(ctx, http.MethodPost, "/v1/simulate", body, extra)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound && ae.Code == "cache_miss" {
			return nil, "", false, nil
		}
		return nil, "", false, err
	}
	return data, CacheOutcome(hdr.Get("X-Tcord-Cache")), true, nil
}

// Arena runs a replacement-policy race on the server and returns the decoded
// ranked report plus how the arena cache served it.
func (c *Client) Arena(ctx context.Context, req serve.ArenaRequest) (arena.Report, CacheOutcome, error) {
	data, how, err := c.ArenaRaw(ctx, req)
	if err != nil {
		return arena.Report{}, how, err
	}
	var rep arena.Report
	return rep, how, json.Unmarshal(data, &rep)
}

// ArenaRaw is Arena returning the exact served bytes — the canonical report
// encoding, byte-identical to `paperfig -arena -frames 1` over the same
// roster, suite and capacity. The cluster gateway proxies with it.
func (c *Client) ArenaRaw(ctx context.Context, req serve.ArenaRequest) ([]byte, CacheOutcome, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, "", err
	}
	data, hdr, err := c.do(ctx, http.MethodPost, "/v1/arena", body, nil)
	return data, CacheOutcome(hdr.Get("X-Tcord-Cache")), err
}

// SweepAsync submits a sweep as a durable background job and returns its
// record immediately. Poll Job (or call WaitJob) until State is terminal,
// then fetch JobResult — the stored bytes are identical to what the
// synchronous Sweep response would have been. Resubmitting the same body
// under the same credential returns the same job.
func (c *Client) SweepAsync(ctx context.Context, req serve.SweepRequest) (serve.JobRecord, error) {
	return c.submitAsync(ctx, "/v1/sweep?async=1", req)
}

// ArenaAsync submits an arena race as a durable background job; see
// SweepAsync for the lifecycle.
func (c *Client) ArenaAsync(ctx context.Context, req serve.ArenaRequest) (serve.JobRecord, error) {
	return c.submitAsync(ctx, "/v1/arena?async=1", req)
}

func (c *Client) submitAsync(ctx context.Context, path string, req any) (serve.JobRecord, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobRecord{}, err
	}
	data, _, err := c.do(ctx, http.MethodPost, path, body, nil)
	if err != nil {
		return serve.JobRecord{}, err
	}
	var jr serve.JobResponse
	return jr.Job, json.Unmarshal(data, &jr)
}

// Job fetches one job's current record.
func (c *Client) Job(ctx context.Context, id string) (serve.JobRecord, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil)
	if err != nil {
		return serve.JobRecord{}, err
	}
	var jr serve.JobResponse
	return jr.Job, json.Unmarshal(data, &jr)
}

// Jobs lists the calling tenant's jobs, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]serve.JobRecord, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, nil)
	if err != nil {
		return nil, err
	}
	var jr serve.JobsResponse
	return jr.Jobs, json.Unmarshal(data, &jr)
}

// CancelJob cancels a queued or running job and returns its record. A job
// already in a terminal state is a 409 APIError.
func (c *Client) CancelJob(ctx context.Context, id string) (serve.JobRecord, error) {
	data, _, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
	if err != nil {
		return serve.JobRecord{}, err
	}
	var jr serve.JobResponse
	return jr.Job, json.Unmarshal(data, &jr)
}

// JobResult fetches a done job's stored result bytes. A job that is not
// done yet — or failed, or was cancelled — is a 409 APIError.
func (c *Client) JobResult(ctx context.Context, id string) ([]byte, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, nil)
	return data, err
}

// SubmitJobRaw posts one ?async=1 submission body verbatim to path (e.g.
// "/v1/sweep?async=1") and returns the server's exact response bytes plus
// the HTTP status — 202 for a freshly created job, 200 for an idempotent
// resubmission. The cluster gateway forwards raw bodies with it so the
// shard's JobID, computed over the exact bytes it receives, matches the
// content address the gateway routed by.
func (c *Client) SubmitJobRaw(ctx context.Context, path string, body []byte) ([]byte, int, error) {
	data, _, status, err := c.doFull(ctx, http.MethodPost, path, body, nil)
	return data, status, err
}

// JobRaw fetches one job's record as the server's exact served bytes.
func (c *Client) JobRaw(ctx context.Context, id string) ([]byte, error) {
	data, _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil)
	return data, err
}

// CancelJobRaw cancels a job and returns the server's exact response bytes.
func (c *Client) CancelJobRaw(ctx context.Context, id string) ([]byte, error) {
	data, _, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
	return data, err
}

// WaitJob polls a job until it reaches a terminal state (or ctx ends),
// returning the final record. poll <= 0 defaults to 200ms.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (serve.JobRecord, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		rec, err := c.Job(ctx, id)
		if err != nil {
			return rec, err
		}
		switch rec.State {
		case serve.JobDone, serve.JobFailed, serve.JobCancelled:
			return rec, nil
		}
		select {
		case <-ctx.Done():
			return rec, ctx.Err()
		case <-t.C:
		}
	}
}

// SweepRaw is Sweep returning each run's exact served bytes, undecoded,
// plus the response headers (the Warning header flags stale items). The
// cluster gateway merges shard sub-sweeps with these so the assembled
// response is byte-identical to a single node serving the whole sweep.
func (c *Client) SweepRaw(ctx context.Context, req serve.SweepRequest) ([]json.RawMessage, http.Header, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	data, hdr, err := c.do(ctx, http.MethodPost, "/v1/sweep", body, nil)
	if err != nil {
		return nil, hdr, err
	}
	var resp serve.SweepResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, hdr, err
	}
	return resp.Runs, hdr, nil
}
