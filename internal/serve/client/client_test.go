package client

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcor/internal/geom"
	"tcor/internal/gpu"
	"tcor/internal/serve"
	"tcor/internal/stats"
	"tcor/internal/workload"
)

// newTestServer starts a real serving stack (default simulator, full
// middleware) and a client pointed at it.
func newTestServer(t *testing.T, opts serve.Options) (*serve.Server, *Client) {
	t.Helper()
	s := serve.NewServer(opts)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, New(srv.URL, srv.Client())
}

// TestGoldenServedEqualsDirect is the serving layer's fidelity contract:
// the body of a /v1/simulate response — through admission, the worker pool
// and the result cache — is byte-identical to encoding a direct library
// call with the same spec and configuration.
func TestGoldenServedEqualsDirect(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	req := serve.SimulateRequest{Benchmark: "GTr", Config: "tcor", TileCacheKB: 64, Frames: 1}
	served, how, err := c.SimulateRaw(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if how != "miss" {
		t.Fatalf("first request served as %q, want miss", how)
	}

	spec, err := workload.ByAlias("GTr")
	if err != nil {
		t.Fatal(err)
	}
	spec.Frames = 1
	scene, err := workload.Generate(spec, geom.DefaultScreen())
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpu.Simulate(scene, gpu.TCOR(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := serve.EncodeRunResult(serve.BuildRunResult("GTr", "tcor", 64, res))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, direct) {
		t.Fatalf("served body differs from the direct library encoding:\nserved: %s\ndirect: %s",
			served, direct)
	}

	// The cached replay serves the same bytes.
	cachedBody, how, err := c.SimulateRaw(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if how != "hit" {
		t.Fatalf("second identical request served as %q, want hit", how)
	}
	if !bytes.Equal(cachedBody, direct) {
		t.Fatal("cache hit served different bytes than the direct encoding")
	}
}

func TestSimulateWithInvariantCheck(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	rr, _, err := c.Simulate(context.Background(),
		serve.SimulateRequest{Benchmark: "GTr", Frames: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Benchmark != "GTr" || rr.Config != "tcor" || rr.Frames != 1 {
		t.Fatalf("result header = %s/%s/%d frames, want GTr/tcor/1", rr.Benchmark, rr.Config, rr.Frames)
	}
	if len(rr.Counters) == 0 {
		t.Fatal("result carries no hierarchy counters")
	}
	if rr.Counters["sim.frames"] != 1 {
		t.Fatalf("sim.frames counter = %d, want 1", rr.Counters["sim.frames"])
	}
}

func TestSimulateInlineSpec(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	rr, _, err := c.Simulate(context.Background(), serve.SimulateRequest{
		Spec: []byte(`{"name":"My Game","alias":"MyG","pbFootprintMiB":0.2,
			"avgPrimReuse":4.0,"textureMiB":1.0,"shaderInstrPerPixel":5,"frames":1}`),
		Config: "baseline",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Benchmark != "MyG" || rr.Config != "baseline" {
		t.Fatalf("result header = %s/%s, want MyG/baseline", rr.Benchmark, rr.Config)
	}
}

func TestSweepMatchesSimulate(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	items := []serve.SimulateRequest{
		{Benchmark: "GTr", Config: "baseline", Frames: 1},
		{Benchmark: "GTr", Config: "tcor", Frames: 1},
	}
	runs, err := c.Sweep(context.Background(), serve.SweepRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("sweep returned %d runs, want 2", len(runs))
	}
	for i, item := range items {
		single, _, err := c.Simulate(context.Background(), item)
		if err != nil {
			t.Fatal(err)
		}
		if runs[i].Config != item.Config {
			t.Fatalf("run %d is %s, want item order preserved (%s)", i, runs[i].Config, item.Config)
		}
		if runs[i].MemReads != single.MemReads || runs[i].PPC != single.PPC {
			t.Fatalf("sweep run %d differs from the equivalent simulate call", i)
		}
	}
}

func TestClientPlumbing(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	ctx := context.Background()
	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("Healthy: %v", err)
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("Ready: %v", err)
	}
	info, err := c.Version(ctx)
	if err != nil {
		t.Fatalf("Version: %v", err)
	}
	if info.Version == "" || info.GoVersion == "" {
		t.Fatalf("Version returned an incomplete identity: %+v", info)
	}
	bms, err := c.Benchmarks(ctx)
	if err != nil {
		t.Fatalf("Benchmarks: %v", err)
	}
	if len(bms) != 10 || bms[0].Alias != "CCS" {
		t.Fatalf("Benchmarks returned %d entries starting with %q, want the Table II suite", len(bms), bms[0].Alias)
	}
	if _, _, err := c.Simulate(ctx, serve.SimulateRequest{Benchmark: "GTr", Frames: 1}); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if snap["serve.cache.misses"] != 1 {
		t.Fatalf("serve.cache.misses = %d, want 1", snap["serve.cache.misses"])
	}
}

func TestClientErrorMapping(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	_, _, err := c.Simulate(context.Background(), serve.SimulateRequest{Benchmark: "nope"})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error = %T %v, want *APIError", err, err)
	}
	if ae.Status != http.StatusBadRequest || ae.Code != "invalid_request" {
		t.Fatalf("APIError = %+v, want 400 invalid_request", ae)
	}
	if ae.IsRetryable() {
		t.Fatal("a validation error must not be retryable")
	}
}

func TestAPIErrorCarriesRequestID(t *testing.T) {
	// The server mints an X-Request-Id for every response; a failed call
	// must surface it so the client's error is greppable in the daemon log.
	_, c := newTestServer(t, serve.Options{})
	_, _, err := c.Simulate(context.Background(), serve.SimulateRequest{Benchmark: "nope"})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error = %T %v, want *APIError", err, err)
	}
	if ae.RequestID == "" {
		t.Fatal("APIError.RequestID is empty")
	}
	if !strings.Contains(ae.Error(), ae.RequestID) {
		t.Fatalf("Error() %q does not mention request ID %q", ae.Error(), ae.RequestID)
	}
}

// TestCacheProbe pins the peer-aware lookup contract: a probe never makes
// the server compute — an uncached key answers (found=false, err=nil) — and
// a cached key returns the exact served bytes.
func TestCacheProbe(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	req := serve.SimulateRequest{Benchmark: "GTr", Config: "tcor", TileCacheKB: 64, Frames: 1}

	body, how, found, err := c.CacheProbe(context.Background(), req)
	if err != nil {
		t.Fatalf("probe of an uncached key errored: %v", err)
	}
	if found || body != nil || how != "" {
		t.Fatalf("probe of an uncached key = (%q, %q, %v), want a clean miss", body, how, found)
	}

	served, _, err := c.SimulateRaw(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	body, how, found, err = c.CacheProbe(context.Background(), req)
	if err != nil || !found {
		t.Fatalf("probe after a simulate = (found=%v, err=%v), want a hit", found, err)
	}
	if how != "hit" {
		t.Fatalf("probe outcome %q, want hit", how)
	}
	if !bytes.Equal(body, served) {
		t.Fatalf("probe body differs from the served body:\nprobe:  %s\nserved: %s", body, served)
	}
}

// TestSweepRawRoundTrips pins the merge primitive the gateway is built on:
// SweepRaw's elements re-assembled into a SweepResponse encode to the same
// bytes the decoded-and-compared Sweep method observes item by item.
func TestSweepRawRoundTrips(t *testing.T) {
	_, c := newTestServer(t, serve.Options{})
	req := serve.SweepRequest{Items: []serve.SimulateRequest{
		{Benchmark: "GTr", Config: "tcor", TileCacheKB: 32, Frames: 1},
		{Benchmark: "GTr", Config: "baseline", TileCacheKB: 32, Frames: 1},
	}}
	raws, _, err := c.SweepRaw(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(raws) != 2 {
		t.Fatalf("SweepRaw returned %d runs, want 2", len(raws))
	}
	for i, raw := range raws {
		var rr serve.RunResult
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatalf("run %d does not decode: %v", i, err)
		}
		if rr.Benchmark != "GTr" {
			t.Fatalf("run %d benchmark %q, want GTr", i, rr.Benchmark)
		}
	}
}

// TestClientForwardsRequestID: a context carrying a correlation ID (as the
// gateway's proxied calls do) reaches the origin server's handler intact.
func TestClientForwardsRequestID(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(serve.RequestIDHeader)
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()
	c := New(srv.URL, srv.Client())
	ctx := serve.ContextWithRequestID(context.Background(), "gw-abc123")
	if err := c.Healthy(ctx); err != nil {
		t.Fatal(err)
	}
	if got != "gw-abc123" {
		t.Fatalf("server saw request ID %q, want the context's gw-abc123", got)
	}
}

// TestClientInjectsTraceparent: the active span's trace identity rides
// every outbound request, and without a live span no header is set.
func TestClientInjectsTraceparent(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(stats.TraceparentHeader)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	c := New(srv.URL, srv.Client())

	if err := c.Healthy(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != "" {
		t.Fatalf("no-span request carried traceparent %q", got)
	}

	tr := stats.NewTracer(8)
	sp := tr.Begin("caller", "test")
	defer sp.End()
	ctx := stats.ContextWithSpan(context.Background(), sp)
	if err := c.Healthy(ctx); err != nil {
		t.Fatal(err)
	}
	tc, err := stats.ParseTraceparent(got)
	if err != nil {
		t.Fatalf("injected traceparent %q: %v", got, err)
	}
	if want := sp.Context(); tc != want {
		t.Fatalf("injected context %+v, want the span's %+v", tc, want)
	}
}

// TestWithMetricsPrefix: per-shard client instrumentation lands under the
// caller's prefix so a gateway can meter each upstream separately.
func TestWithMetricsPrefix(t *testing.T) {
	reg := stats.NewRegistry()
	_, c := newTestServer(t, serve.Options{})
	c = New(c.BaseURL(), nil, WithMetricsPrefix(reg, "shard0"))
	if err := c.Healthy(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Get("shard0.attempts"); got != 1 {
		t.Fatalf("shard0.attempts = %d, want 1", got)
	}
	if got := snap.Get("shard0.retries"); got != 0 {
		t.Fatalf("shard0.retries = %d, want 0", got)
	}
}
