package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tcor/internal/resilience"
	"tcor/internal/serve"
	"tcor/internal/stats"
)

// flakyHandler answers the scripted status codes in order, then 200s with a
// minimal version body (the client's cheapest decodable endpoint).
func flakyHandler(codes []int, hdr map[string]string) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n < len(codes) {
			for k, v := range hdr {
				w.Header().Set(k, v)
			}
			w.WriteHeader(codes[n])
			w.Write([]byte(`{"error":{"code":"scripted","message":"scripted failure"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"version":"test","goVersion":"test","revision":"","dirty":false}`))
	})
	return httptest.NewServer(h), &calls
}

// TestRetryRecoversFromTransientFailures drives the full retry loop: two
// scripted 500s, then success — one logical call, three attempts, metered.
func TestRetryRecoversFromTransientFailures(t *testing.T) {
	srv, calls := flakyHandler([]int{500, 503}, nil)
	defer srv.Close()

	reg := stats.NewRegistry()
	c := New(srv.URL, srv.Client(),
		WithRetry(resilience.RetryPolicy{
			MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		}),
		WithMetrics(reg))
	if _, err := c.Version(context.Background()); err != nil {
		t.Fatalf("Version with retries = %v, want success after 2 transient failures", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	snap := reg.Snapshot()
	if got := snap.Get("client.attempts"); got != 3 {
		t.Fatalf("client.attempts = %d, want 3", got)
	}
	if got := snap.Get("client.retries"); got != 2 {
		t.Fatalf("client.retries = %d, want 2", got)
	}
	if got := snap.Get("client.giveups"); got != 0 {
		t.Fatalf("client.giveups = %d, want 0", got)
	}
	if got := snap.Get("client.retry.delay.count"); got != 2 {
		t.Fatalf("client.retry.delay observations = %d, want 2", got)
	}
}

// TestRetryStopsOnNonRetryable asserts a 4xx is terminal: deterministic
// service, precise rejection — retrying the same bytes cannot help.
func TestRetryStopsOnNonRetryable(t *testing.T) {
	srv, calls := flakyHandler([]int{400}, nil)
	defer srv.Close()

	c := New(srv.URL, srv.Client(),
		WithRetry(resilience.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	_, err := c.Version(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("err = %v, want the 400 APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1", got)
	}
}

// TestRetryExhaustionSurfacesLastError asserts the budget is honored and
// the giveup is metered.
func TestRetryExhaustionSurfacesLastError(t *testing.T) {
	srv, calls := flakyHandler([]int{500, 500, 500, 500, 500, 500}, nil)
	defer srv.Close()

	reg := stats.NewRegistry()
	c := New(srv.URL, srv.Client(),
		WithRetry(resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}),
		WithMetrics(reg))
	_, err := c.Version(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 500 {
		t.Fatalf("err = %v, want the final 500 APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want the MaxAttempts budget of 3", got)
	}
	if got := reg.Snapshot().Get("client.giveups"); got != 1 {
		t.Fatalf("client.giveups = %d, want 1", got)
	}
}

// TestRetryHonorsRetryAfterHeader asserts the server hint beats the
// jittered backoff when larger: a 2s Retry-After on a fake clock means the
// retry sleeps at least 2 virtual seconds.
func TestRetryHonorsRetryAfterHeader(t *testing.T) {
	srv, _ := flakyHandler([]int{503}, map[string]string{"Retry-After": "2"})
	defer srv.Close()

	fc := resilience.NewFakeClock(time.Unix(0, 0))
	c := New(srv.URL, srv.Client(),
		WithRetry(resilience.RetryPolicy{
			MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Clock: fc,
		}))
	if _, err := c.Version(context.Background()); err != nil {
		t.Fatalf("Version = %v, want success on the second attempt", err)
	}
	if got := fc.Slept(); got < 2*time.Second {
		t.Fatalf("retry slept %v, want at least the server's 2s hint", got)
	}
}

// TestRetryAfterZeroVersusAbsent pins the fixed ambiguity: an explicit
// "Retry-After: 0" and no header at all used to be indistinguishable.
func TestRetryAfterZeroVersusAbsent(t *testing.T) {
	apiErrFrom := func(hdr map[string]string) *APIError {
		srv, _ := flakyHandler([]int{503}, hdr)
		defer srv.Close()
		_, err := New(srv.URL, srv.Client()).Version(context.Background())
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Fatalf("err = %v, want an APIError", err)
		}
		return ae
	}
	withZero := apiErrFrom(map[string]string{"Retry-After": "0"})
	if !withZero.HasRetryAfter || withZero.RetryAfter != 0 {
		t.Fatalf("explicit zero hint parsed as (has=%v, d=%v), want (true, 0)",
			withZero.HasRetryAfter, withZero.RetryAfter)
	}
	without := apiErrFrom(nil)
	if without.HasRetryAfter {
		t.Fatalf("absent header parsed as a hint of %v", without.RetryAfter)
	}
}

// TestClientBreakerOpensOnStreak asserts repeated 5xxs open the client-side
// breaker and later calls fail fast with ErrOpen — without touching the
// server.
func TestClientBreakerOpensOnStreak(t *testing.T) {
	srv, calls := flakyHandler([]int{500, 500, 500, 500}, nil)
	defer srv.Close()

	c := New(srv.URL, srv.Client(),
		WithBreaker(resilience.BreakerConfig{
			Window: 4, MinSamples: 2, FailureRatio: 0.5, Cooldown: time.Hour,
		}))
	for i := 0; i < 2; i++ {
		if _, err := c.Version(context.Background()); err == nil {
			t.Fatalf("call %d succeeded against an all-500 server", i)
		}
	}
	before := calls.Load()
	_, err := c.Version(context.Background())
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("err = %v, want an open-breaker rejection", err)
	}
	if got := calls.Load(); got != before {
		t.Fatalf("an open breaker still issued a request (%d -> %d)", before, got)
	}
}

// TestRetryRidesOutChaos is the end-to-end drill in miniature: a real
// serving stack armed with a 30% injected-fault rate, a retry-enabled
// client, a run of sequential simulate calls — zero surfaced errors, and
// every repeat of a request serves byte-identical bodies (injected faults
// never corrupt or cache a wrong result).
func TestRetryRidesOutChaos(t *testing.T) {
	reg := stats.NewRegistry()
	inj := resilience.NewInjector(7).Meter(reg)
	inj.Arm(resilience.SiteHTTP, resilience.FaultPlan{Rate: 0.3, Codes: []int{500, 503}})
	s := serve.NewServer(serve.Options{Workers: 2, Registry: reg, Chaos: inj})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	metrics := stats.NewRegistry()
	c := New(srv.URL, srv.Client(),
		WithRetry(resilience.RetryPolicy{
			MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
		}),
		WithMetrics(metrics))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	bodies := make(map[string][]byte)
	for i := 0; i < 30; i++ {
		req := serve.SimulateRequest{Benchmark: "GTr", Config: "tcor", TileCacheKB: 64, Frames: 1 + i%2}
		key := string(rune('0' + i%2))
		body, _, err := c.SimulateRaw(ctx, req)
		if err != nil {
			t.Fatalf("call %d surfaced an error through the retry layer: %v", i, err)
		}
		if prev, ok := bodies[key]; ok && string(prev) != string(body) {
			t.Fatalf("call %d: response bytes changed under chaos", i)
		}
		bodies[key] = body
	}
	if got := reg.Snapshot().Get("chaos.serve.http.injected"); got == 0 {
		t.Fatal("the chaos injector never fired; the drill exercised nothing")
	}
	if got := metrics.Snapshot().Get("client.retries"); got == 0 {
		t.Fatal("the client never retried; the drill exercised nothing")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("serving-layer invariants after the drill: %v", err)
	}
}

// TestTenantSurvivesRetries pins WithTenant's delivery contract: the
// credential is re-applied on every attempt of a retried call, and a
// context-scoped credential outranks the client-wide one.
func TestTenantSurvivesRetries(t *testing.T) {
	var calls atomic.Int64
	var keys []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get(serve.TenantHeader))
		if calls.Add(1) == 1 {
			w.WriteHeader(500)
			w.Write([]byte(`{"error":{"code":"scripted","message":"scripted failure"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"version":"test","goVersion":"test","revision":"","dirty":false}`))
	}))
	defer srv.Close()

	c := New(srv.URL, srv.Client(),
		WithTenant("key-acme"),
		WithRetry(resilience.RetryPolicy{
			MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		}))
	if _, err := c.Version(context.Background()); err != nil {
		t.Fatalf("Version = %v", err)
	}
	if len(keys) != 2 || keys[0] != "key-acme" || keys[1] != "key-acme" {
		t.Fatalf("tenant header across attempts = %v, want key-acme on both", keys)
	}

	// A context credential (the gateway forwarding its caller) wins.
	keys = nil
	calls.Store(1) // no scripted failure this time
	ctx := serve.ContextWithTenantKey(context.Background(), "key-edge")
	if _, err := c.Version(ctx); err != nil {
		t.Fatalf("Version with ctx tenant = %v", err)
	}
	if len(keys) != 1 || keys[0] != "key-edge" {
		t.Fatalf("ctx tenant header = %v, want key-edge", keys)
	}
}
