package serve

import (
	"container/list"
	"context"
	"sync"
	"time"

	"tcor/internal/stats"
)

// gate is the admission controller: a pool of worker slots fronted by a
// bounded FIFO wait queue. Every simulation — whether it arrived through
// /v1/simulate or as one item of a sweep — must hold a slot while it runs,
// so the server never executes more than Workers simulations at once and
// never queues more than QueueDepth callers behind them; the excess is
// rejected immediately with errQueueFull (HTTP 429 + Retry-After) instead
// of accumulating latency.
//
// Slot and gauge accounting share one mutex, and a released slot is handed
// directly to the longest-waiting queued request instead of being freed and
// re-claimed. The handoff means serve.inflight never moves during a
// release-to-admit transition: a metrics snapshot can never read the gauge
// below the number of held slots (the historical decrement-before-free
// ordering could) nor above Workers.
//
// The serve.queue.wait histogram observes successful admissions only —
// instant admissions observe 0 — so its count always matches serve.admitted
// at quiescence and never exceeds it mid-flight. Waiters that give up
// (context canceled or expired in the queue) meter their queue time into
// serve.queue.canceledWait instead, keeping cancellations from inflating
// the admission-wait quantiles.
type gate struct {
	depth int

	mu      sync.Mutex
	free    int        // unheld worker slots
	waiters *list.List // *waiter, FIFO

	queueGauge    *stats.Gauge
	inflight      *stats.Gauge
	admitted      *stats.Counter
	rejectedFull  *stats.Counter
	canceledWaits *stats.Counter
	waitHist      *stats.Histogram // admission wait, successful admissions only
	canceledHist  *stats.Histogram // time spent queued by canceled waiters
}

// waiter is one queued acquire. ch is closed exactly once, by the releaser
// that hands it a slot; admitted flips under gate.mu at that same moment so
// a canceled waiter can tell whether it lost a race against a handoff.
type waiter struct {
	ch       chan struct{}
	admitted bool
	elem     *list.Element
}

// newGate builds a gate with workers slots and a wait queue of depth,
// metering into reg under the "serve." prefix.
func newGate(workers, depth int, reg *stats.Registry) *gate {
	return &gate{
		free:          workers,
		depth:         depth,
		waiters:       list.New(),
		queueGauge:    reg.Gauge("serve.queue.depth"),
		inflight:      reg.Gauge("serve.inflight"),
		admitted:      reg.Counter("serve.admitted"),
		rejectedFull:  reg.Counter("serve.rejected.queueFull"),
		canceledWaits: reg.Counter("serve.rejected.canceledInQueue"),
		waitHist:      reg.Histogram("serve.queue.wait"),
		canceledHist:  reg.Histogram("serve.queue.canceledWait"),
	}
}

// acquire claims a worker slot, waiting in the bounded queue if none is
// free. It returns errQueueFull without waiting when the queue is already
// at depth, and the context error if the caller gives up while queued.
// On success the caller must release().
//
// Wait time is telemetered three ways: the serve.queue.wait histogram, the
// request's meta (for the access-log queueWait field) and, when the context
// carries a span, a child queue.wait span in the trace.
func (g *gate) acquire(ctx context.Context) error {
	g.mu.Lock()
	if g.free > 0 {
		g.free--
		g.inflight.Add(1)
		g.admitted.Inc()
		g.mu.Unlock()
		g.waitHist.Observe(0)
		return nil
	}
	if g.waiters.Len() >= g.depth {
		g.mu.Unlock()
		g.rejectedFull.Inc()
		return errQueueFull
	}
	w := &waiter{ch: make(chan struct{})}
	w.elem = g.waiters.PushBack(w)
	g.queueGauge.Add(1)
	g.mu.Unlock()

	t0 := time.Now()
	sp, _ := stats.StartSpan(ctx, "queue.wait", "serve")
	select {
	case <-w.ch:
		wait := time.Since(t0)
		g.waitHist.Observe(int64(wait))
		metaFrom(ctx).addQueueWait(wait)
		sp.End()
		return nil
	case <-ctx.Done():
		wait := time.Since(t0)
		g.mu.Lock()
		if w.admitted {
			// A handoff raced the cancellation: we own a slot we will not
			// use. The grant was metered as an admission, so observe its
			// wait (keeping wait-count == admissions exact), then pass the
			// slot straight on before reporting the cancellation.
			g.waitHist.Observe(int64(wait))
			g.releaseLocked()
			g.mu.Unlock()
		} else {
			g.waiters.Remove(w.elem)
			g.queueGauge.Add(-1)
			g.mu.Unlock()
			g.canceledWaits.Inc()
			g.canceledHist.Observe(int64(wait))
		}
		metaFrom(ctx).addQueueWait(wait)
		sp.End()
		return ctx.Err()
	}
}

// release returns a worker slot: handed directly to the longest-waiting
// queued request when one exists, freed otherwise.
func (g *gate) release() {
	g.mu.Lock()
	g.releaseLocked()
	g.mu.Unlock()
}

// releaseLocked (g.mu held) hands the caller's slot to the queue's front
// waiter — the in-flight gauge is untouched because the slot never becomes
// free — or, with an empty queue, frees the slot and decrements the gauge
// in the same critical section.
func (g *gate) releaseLocked() {
	if e := g.waiters.Front(); e != nil {
		w := g.waiters.Remove(e).(*waiter)
		g.queueGauge.Add(-1)
		w.admitted = true
		g.admitted.Inc()
		close(w.ch)
		return
	}
	g.free++
	g.inflight.Add(-1)
}

// backlog returns the live load the 429 Retry-After estimate is sized from:
// running simulations plus queued waiters.
func (g *gate) backlog() int64 {
	return g.inflight.Load() + g.queueGauge.Load()
}
