package serve

import (
	"context"
	"sync/atomic"
	"time"

	"tcor/internal/stats"
)

// gate is the admission controller: a semaphore of worker slots fronted by
// a bounded wait queue. Every simulation — whether it arrived through
// /v1/simulate or as one item of a sweep — must hold a slot while it runs,
// so the server never executes more than Workers simulations at once and
// never queues more than QueueDepth callers behind them; the excess is
// rejected immediately with errQueueFull (HTTP 429 + Retry-After) instead
// of accumulating latency.
type gate struct {
	slots  chan struct{}
	queued atomic.Int64
	depth  int64

	queueGauge    *stats.Gauge
	inflight      *stats.Gauge
	admitted      *stats.Counter
	rejectedFull  *stats.Counter
	canceledWaits *stats.Counter
	// waitHist is the queue-wait latency distribution in nanoseconds;
	// instant admissions observe 0 so the count matches admissions.
	waitHist *stats.Histogram
}

// newGate builds a gate with workers slots and a wait queue of depth,
// metering into reg under the "serve." prefix.
func newGate(workers, depth int, reg *stats.Registry) *gate {
	g := &gate{
		slots:         make(chan struct{}, workers),
		depth:         int64(depth),
		queueGauge:    reg.Gauge("serve.queue.depth"),
		inflight:      reg.Gauge("serve.inflight"),
		admitted:      reg.Counter("serve.admitted"),
		rejectedFull:  reg.Counter("serve.rejected.queueFull"),
		canceledWaits: reg.Counter("serve.rejected.canceledInQueue"),
		waitHist:      reg.Histogram("serve.queue.wait"),
	}
	return g
}

// acquire claims a worker slot, waiting in the bounded queue if none is
// free. It returns errQueueFull without waiting when the queue is already
// at depth, and the context error if the caller gives up while queued.
// On success the caller must release().
//
// Wait time is telemetered three ways: the serve.queue.wait histogram, the
// request's meta (for the access-log queueWait field) and, when the context
// carries a span, a child queue.wait span in the trace.
func (g *gate) acquire(ctx context.Context) error {
	// Fast path: a free slot admits without queueing.
	select {
	case g.slots <- struct{}{}:
		g.admitted.Inc()
		g.inflight.Add(1)
		g.waitHist.Observe(0)
		return nil
	default:
	}
	// Slow path: join the bounded queue. The increment reserves a queue
	// position atomically; over-subscribers back out before waiting.
	if g.queued.Add(1) > g.depth {
		g.queued.Add(-1)
		g.rejectedFull.Inc()
		return errQueueFull
	}
	t0 := time.Now()
	sp, _ := stats.StartSpan(ctx, "queue.wait", "serve")
	// The gauge moves only for callers that actually wait, after the bound
	// check admitted them, so a snapshot never reads more than depth.
	g.queueGauge.Add(1)
	defer func() {
		g.queueGauge.Add(-1)
		g.queued.Add(-1)
		wait := time.Since(t0)
		g.waitHist.Observe(int64(wait))
		metaFrom(ctx).addQueueWait(wait)
		sp.End()
	}()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Inc()
		g.inflight.Add(1)
		return nil
	case <-ctx.Done():
		g.canceledWaits.Inc()
		return ctx.Err()
	}
}

// release returns a worker slot.
func (g *gate) release() {
	g.inflight.Add(-1)
	<-g.slots
}
