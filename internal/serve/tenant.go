package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"strings"
)

// TenantHeader carries the tenant credential on every request. The typed
// client's WithTenant option sets it, and the cluster gateway forwards it
// through hedges and failovers; "Authorization: Bearer <key>" is accepted
// as an equivalent spelling.
const TenantHeader = "X-Tcord-Tenant"

// AnonKey is the config key that customizes the built-in anonymous tenant —
// the bucket all uncredentialed traffic lands in.
const AnonKey = "*"

// DefaultTenantName is the anonymous tenant's name, reserved for it: no
// configured tenant may claim it.
const DefaultTenantName = "default"

const (
	maxTenants       = 64
	maxTenantWeight  = 1_000_000
	maxTenantLimit   = 1_000_000
	maxTenantKeyLen  = 128
	maxTenantNameLen = 32
)

var tenantNameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]*$`)

// TenantSpec is one tenant's admission contract: its share of the worker
// pool (Weight, relative to the other tenants), hard concurrency and
// backlog caps, and its slice of the result cache.
type TenantSpec struct {
	// Key is the credential presented in TenantHeader; AnonKey for the
	// anonymous tenant. Never logged or exported — Name is the public
	// identity.
	Key string `json:"-"`

	// Name labels the tenant in metrics (serve.tenant.<name>.*), spans,
	// and logs. Metric-safe: lowercase alphanumerics plus '-' and '_'.
	Name string `json:"name"`

	// Weight is the tenant's fair-share weight: under contention a tenant
	// with weight 3 completes three cells for every one a weight-1 tenant
	// does. Required, 1..1e6.
	Weight int `json:"weight"`

	// MaxInflight caps the tenant's concurrently executing requests.
	// 0 means no per-tenant cap (the global worker pool still bounds it).
	MaxInflight int `json:"maxInflight"`

	// MaxQueued bounds the tenant's admission backlog; the tenant's
	// requests 429 beyond it. 0 means the server's QueueDepth.
	MaxQueued int `json:"maxQueued"`

	// CacheShare is the fraction of result-cache entries this tenant may
	// hold before its own entries become preferred eviction victims.
	// 0 means weight-proportional (weight / total weight).
	CacheShare float64 `json:"cacheShare"`
}

// TenantSet is a validated, immutable tenant roster: every configured
// tenant plus the anonymous default, resolvable by credential.
type TenantSet struct {
	byKey map[string]*TenantSpec
	def   *TenantSpec
	list  []*TenantSpec // sorted by name; includes the default
	total int64         // sum of weights
}

// DefaultTenants is the roster used when no -tenants config is given: a
// single anonymous tenant holding the whole machine, which reproduces the
// untenanted server exactly.
func DefaultTenants() *TenantSet {
	def := &TenantSpec{Key: AnonKey, Name: DefaultTenantName, Weight: 1, CacheShare: 1}
	return &TenantSet{
		byKey: map[string]*TenantSpec{},
		def:   def,
		list:  []*TenantSpec{def},
		total: 1,
	}
}

// ParseTenants parses and validates a tenants config: a JSON object mapping
// API key to tenant spec, e.g.
//
//	{"k-acme": {"name":"acme","weight":3,"maxQueued":32,"cacheShare":0.5},
//	 "k-edge": {"name":"edge","weight":1},
//	 "*":      {"name":"default","weight":1}}
//
// The "*" entry customizes the anonymous tenant; if absent, anonymous
// traffic gets weight 1 and no caps. Every violation is a hard error —
// duplicate keys, duplicate names, zero or negative weights, absurd limits,
// unknown fields — never a silent clamp, matching the cache.Config policy.
func ParseTenants(data []byte) (*TenantSet, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("tenants config: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fmt.Errorf("tenants config: top level must be a JSON object, got %v", tok)
	}

	// Token-walk the object: encoding/json silently keeps only the last
	// value for a duplicated key, and two specs fighting over one
	// credential is exactly the misconfiguration that must not parse.
	byKey := make(map[string]*TenantSpec)
	names := make(map[string]string) // name -> key that claimed it
	var order []string
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("tenants config: %w", err)
		}
		key := keyTok.(string)
		if key == "" {
			return nil, fmt.Errorf("tenants config: empty API key")
		}
		if len(key) > maxTenantKeyLen {
			return nil, fmt.Errorf("tenants config: API key longer than %d bytes", maxTenantKeyLen)
		}
		if strings.ContainsAny(key, " \t\r\n") {
			return nil, fmt.Errorf("tenants config: API key %q contains whitespace", key)
		}
		if _, dup := byKey[key]; dup {
			return nil, fmt.Errorf("tenants config: duplicate API key %q", key)
		}
		// Pull the value as raw bytes through the outer decoder (keeping
		// its offset aligned), then re-decode strictly so typo'd fields
		// stay hard errors.
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("tenants config: tenant %q: %w", key, err)
		}
		spec := new(TenantSpec)
		specDec := json.NewDecoder(bytes.NewReader(raw))
		specDec.DisallowUnknownFields()
		if err := specDec.Decode(spec); err != nil {
			return nil, fmt.Errorf("tenants config: tenant %q: %w", key, err)
		}
		spec.Key = key
		if err := validateTenant(spec); err != nil {
			return nil, fmt.Errorf("tenants config: tenant %q: %w", key, err)
		}
		if key == AnonKey {
			if spec.Name != DefaultTenantName {
				return nil, fmt.Errorf("tenants config: the %q entry must be named %q, got %q", AnonKey, DefaultTenantName, spec.Name)
			}
		} else if spec.Name == DefaultTenantName {
			return nil, fmt.Errorf("tenants config: name %q is reserved for the anonymous tenant (key %q)", DefaultTenantName, AnonKey)
		}
		if prev, dup := names[spec.Name]; dup {
			return nil, fmt.Errorf("tenants config: name %q claimed by both key %q and key %q", spec.Name, prev, key)
		}
		names[spec.Name] = key
		byKey[key] = spec
		order = append(order, key)
		if len(byKey) > maxTenants {
			return nil, fmt.Errorf("tenants config: more than %d tenants", maxTenants)
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return nil, fmt.Errorf("tenants config: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("tenants config: trailing data after the tenant object")
	}

	ts := &TenantSet{byKey: byKey}
	if def, ok := byKey[AnonKey]; ok {
		ts.def = def
		delete(byKey, AnonKey)
	} else {
		ts.def = &TenantSpec{Key: AnonKey, Name: DefaultTenantName, Weight: 1}
	}
	ts.list = append(ts.list, ts.def)
	for _, k := range order {
		if k != AnonKey {
			ts.list = append(ts.list, byKey[k])
		}
	}
	sort.Slice(ts.list, func(i, j int) bool { return ts.list[i].Name < ts.list[j].Name })
	for _, t := range ts.list {
		ts.total += int64(t.Weight)
	}
	// Unset cache shares default to weight-proportional, so the roster's
	// implicit shares always sum to at most 1.
	for _, t := range ts.list {
		if t.CacheShare == 0 {
			t.CacheShare = float64(t.Weight) / float64(ts.total)
		}
	}
	return ts, nil
}

func validateTenant(t *TenantSpec) error {
	if t.Name == "" {
		return fmt.Errorf("name is required")
	}
	if len(t.Name) > maxTenantNameLen {
		return fmt.Errorf("name %q longer than %d characters", t.Name, maxTenantNameLen)
	}
	if !tenantNameRE.MatchString(t.Name) {
		return fmt.Errorf("name %q is not metric-safe (want lowercase alphanumerics, '-', '_')", t.Name)
	}
	if t.Weight <= 0 {
		return fmt.Errorf("weight %d must be positive", t.Weight)
	}
	if t.Weight > maxTenantWeight {
		return fmt.Errorf("weight %d exceeds the maximum %d", t.Weight, maxTenantWeight)
	}
	if t.MaxInflight < 0 || t.MaxInflight > maxTenantLimit {
		return fmt.Errorf("maxInflight %d out of range [0, %d]", t.MaxInflight, maxTenantLimit)
	}
	if t.MaxQueued < 0 || t.MaxQueued > maxTenantLimit {
		return fmt.Errorf("maxQueued %d out of range [0, %d]", t.MaxQueued, maxTenantLimit)
	}
	if t.CacheShare < 0 || t.CacheShare > 1 {
		return fmt.Errorf("cacheShare %g out of range [0, 1]", t.CacheShare)
	}
	return nil
}

// Tenants returns the roster sorted by name, the anonymous tenant included.
func (ts *TenantSet) Tenants() []*TenantSpec { return ts.list }

// Default returns the anonymous tenant.
func (ts *TenantSet) Default() *TenantSpec { return ts.def }

// byName returns the tenant with the given public name, or nil. Durable job
// records store the name (never the credential); a resumed job resolves its
// owner through this.
func (ts *TenantSet) byName(name string) *TenantSpec {
	for _, t := range ts.list {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// TotalWeight returns the sum of all tenant weights.
func (ts *TenantSet) TotalWeight() int64 { return ts.total }

// Resolve maps a presented credential to its tenant: the empty credential
// is the anonymous tenant, and an unknown one is an error (the caller turns
// it into a 401 — a typo'd key silently sharing the default tenant's quota
// would be a misconfiguration nobody notices until a noisy neighbor does).
func (ts *TenantSet) Resolve(key string) (*TenantSpec, error) {
	if key == "" {
		return ts.def, nil
	}
	if t, ok := ts.byKey[key]; ok {
		return t, nil
	}
	return nil, errUnknownTenant
}

// tenantKeyKey carries the tenant credential through a context; the
// exported helpers below are the only way in or out.
type tenantKeyKey struct{}

// ContextWithTenantKey returns a context carrying a tenant credential. The
// typed client forwards it on every attempt, and the gateway stamps it into
// shard calls so tenancy survives hedges and failovers.
func ContextWithTenantKey(ctx context.Context, key string) context.Context {
	if key == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKeyKey{}, key)
}

// TenantKeyFrom extracts the tenant credential from a context, if any.
func TenantKeyFrom(ctx context.Context) string {
	key, _ := ctx.Value(tenantKeyKey{}).(string)
	return key
}

// TenantKeyFromRequest extracts the presented credential from a request:
// TenantHeader first, then "Authorization: Bearer <key>". Empty means
// anonymous.
func TenantKeyFromRequest(r *http.Request) string {
	if key := r.Header.Get(TenantHeader); key != "" {
		return key
	}
	if auth := r.Header.Get("Authorization"); len(auth) > 7 && strings.EqualFold(auth[:7], "Bearer ") {
		return strings.TrimSpace(auth[7:])
	}
	return ""
}

// tenantKey carries the resolved *TenantSpec through the request context.
type tenantSpecKey struct{}

func contextWithTenant(ctx context.Context, t *TenantSpec) context.Context {
	return context.WithValue(ctx, tenantSpecKey{}, t)
}

// tenantFrom returns the resolved tenant for a request context, or the
// default tenant when middleware did not run (direct handler tests).
func (s *Server) tenantFrom(ctx context.Context) *TenantSpec {
	if t, ok := ctx.Value(tenantSpecKey{}).(*TenantSpec); ok {
		return t
	}
	return s.tenants.Default()
}
