// Package serve exposes the simulator as a long-running network service:
// a versioned JSON HTTP API over the same workload/configuration types the
// library uses, an admission-control layer that bounds concurrent
// simulations behind a finite queue, a content-addressed result cache with
// singleflight collapse of concurrent identical requests, and a graceful
// lifecycle (drain on shutdown, per-request deadlines, panic isolation).
//
// The serving layer is deliberately a thin shell over the library: a served
// response body is byte-identical to what EncodeRunResult produces from a
// direct gpu.Simulate call with the same spec and configuration, so moving
// a workload between the CLI, the library and the daemon never changes a
// number.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"tcor/internal/gpu"
	"tcor/internal/stats"
	"tcor/internal/workload"
)

// Configuration names accepted by the API, mapping onto the library's
// constructors (cmd/tcorsim accepts the same set).
const (
	ConfigBaseline = "baseline"
	ConfigTCOR     = "tcor"
	ConfigTCORNoL2 = "tcor-nol2"
)

// SimulateRequest is the body of POST /v1/simulate and one item of a
// sweep. Exactly one of Benchmark (a Table II alias) and Spec (an inline
// workload profile, the same JSON shape workload.ParseSpec accepts) selects
// the workload. Unknown fields are rejected.
type SimulateRequest struct {
	// Benchmark is a suite alias (see GET /v1/benchmarks).
	Benchmark string `json:"benchmark,omitempty"`
	// Spec is an inline workload profile; it conflicts with Benchmark.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Config selects the hierarchy: baseline, tcor or tcor-nol2
	// (default tcor).
	Config string `json:"config,omitempty"`
	// TileCacheKB is the total Tile Cache budget in KiB (default 64).
	TileCacheKB int `json:"tileCacheKB,omitempty"`
	// Frames overrides the spec's frame count when positive.
	Frames int `json:"frames,omitempty"`
	// TimeoutMs bounds this request's total time (admission wait included);
	// 0 uses the server default. The server clamps it to its maximum.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// Check verifies the hierarchy-wide stats invariants on the result and
	// fails the request on any violation (the HTTP form of tcorsim -check).
	// It does not change the response body of a passing run.
	Check bool `json:"check,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a batch of simulations that
// runs through the server's bounded worker pool. Results come back in item
// order regardless of completion order.
type SweepRequest struct {
	Items []SimulateRequest `json:"items"`
}

// SweepResponse is the body of a successful sweep. Each element is the
// exact byte sequence /v1/simulate would have served for the item.
type SweepResponse struct {
	Runs []json.RawMessage `json:"runs"`
}

// RunResult is the wire shape of one simulation: the tcorsim -json summary
// scalars plus the full hierarchy counter snapshot (sorted keys, stable
// schema across configurations — see gpu.Result.PublishStats).
type RunResult struct {
	Benchmark     string         `json:"benchmark"`
	Config        string         `json:"config"`
	TileCacheKB   int            `json:"tileCacheKB"`
	Frames        int            `json:"frames"`
	PPC           float64        `json:"primitivesPerCycle"`
	FPS           float64        `json:"fps"`
	MemReads      int64          `json:"memReads"`
	MemWrites     int64          `json:"memWrites"`
	HierEnergyMJ  float64        `json:"memHierarchyEnergyMJ"`
	TotalEnergyMJ float64        `json:"totalGPUEnergyMJ"`
	FrameCycles   int64          `json:"frameCycles"`
	Counters      stats.Snapshot `json:"counters"`
}

// BenchmarkInfo is one row of GET /v1/benchmarks.
type BenchmarkInfo struct {
	Alias          string  `json:"alias"`
	Name           string  `json:"name"`
	Genre          string  `json:"genre"`
	ThreeD         bool    `json:"threeD"`
	PBFootprintMiB float64 `json:"pbFootprintMiB"`
	AvgPrimReuse   float64 `json:"avgPrimReuse"`
	Frames         int     `json:"frames"`
}

// CacheOnlyHeader, set truthy on POST /v1/simulate, turns the request into
// a cache probe: a fresh (or, in degraded paths, bounded-stale) completed
// entry is served exactly as a hit would be, and anything else — absent
// key, expired entry, in-flight recompute — answers 404 with code
// "cache_miss" without consuming a worker slot or starting a simulation.
// The cluster gateway uses it for peer-aware lookup: before a failover
// shard simulates a key it does not own, the owner's cache is asked first.
const CacheOnlyHeader = "X-Tcord-Cache-Only"

// ShardHeader is set by the cluster gateway on proxied responses, naming
// the shard that served the request (diagnostics only; bodies are
// byte-identical no matter which shard answers).
const ShardHeader = "X-Tcord-Shard"

// Benchmarks returns the GET /v1/benchmarks rows for the built-in Table II
// suite, in paper order. The server handler and the cluster gateway share
// it so both serve byte-identical listings.
func Benchmarks() []BenchmarkInfo {
	suite := workload.Suite()
	out := make([]BenchmarkInfo, len(suite))
	for i, spec := range suite {
		out[i] = BenchmarkInfo{
			Alias: spec.Alias, Name: spec.Name, Genre: spec.Genre,
			ThreeD: spec.ThreeD, PBFootprintMiB: spec.PBFootprintMiB,
			AvgPrimReuse: spec.AvgPrimReuse, Frames: spec.Frames,
		}
	}
	return out
}

// ErrorBody is the JSON shape of every non-2xx response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable error code and the human text.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiError is an error with an HTTP mapping. Handlers return it from the
// resolve/run path; writeError renders anything else as a 500.
type apiError struct {
	status int
	code   string
	msg    string
	// retryAfter, when positive, becomes the response's Retry-After header
	// (rounded up to whole seconds). 429s without one get the server's
	// load-derived estimate.
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: "invalid_request",
		msg: fmt.Sprintf(format, args...)}
}

// errQueueFull is returned by admission when the wait queue is saturated;
// the handler maps it to 429 + Retry-After.
var errQueueFull = &apiError{status: http.StatusTooManyRequests,
	code: "queue_full", msg: "simulation queue is full; retry later"}

// errDraining is returned while the server is shutting down.
var errDraining = &apiError{status: http.StatusServiceUnavailable,
	code: "draining", msg: "server is draining; not accepting new simulations"}

// errUnknownTenant is returned when a request presents a credential the
// tenant roster does not know. Unknown keys never fall back to the
// anonymous tenant: a typo'd key silently sharing the default quota is a
// noisy-neighbor incident waiting to be misdiagnosed.
var errUnknownTenant = &apiError{status: http.StatusUnauthorized,
	code: "unknown_tenant", msg: "unknown tenant credential"}

// job is a fully resolved, validated simulation: the canonical form every
// API request reduces to before touching the cache or the worker pool.
type job struct {
	spec    workload.Spec
	cfgName string
	cfg     gpu.Config
	check   bool
	// key is the content address: a hash over the resolved spec and the
	// full configuration, so two requests that would simulate the same
	// thing collapse no matter how they were phrased.
	key string
}

// resolve validates a request against the server limits and maps it onto
// the library types. All failures are 400s with a precise message.
func (s *Server) resolve(req SimulateRequest) (job, error) {
	return resolveRequest(req, resolveLimits{
		maxFrames:    s.opts.MaxFrames,
		tileParallel: s.opts.TileParallel,
	})
}

// resolveLimits are the server-specific knobs resolution depends on.
// maxFrames <= 0 means unlimited; tileParallel is excluded from config JSON
// (and therefore from the content key), so two servers with different
// values still resolve a request to the same address.
type resolveLimits struct {
	maxFrames    int
	tileParallel int
}

// CanonicalKey resolves a request the way a server would and returns its
// content address — the sha256 over the resolved spec and configuration
// that the result cache and the cluster's consistent-hash ring both key
// on. A gateway uses it to route a request to the shard whose cache owns
// it; because per-server limits never enter the hash, the gateway and
// every shard agree on the address.
func CanonicalKey(req SimulateRequest) (string, error) {
	j, err := resolveRequest(req, resolveLimits{})
	if err != nil {
		return "", err
	}
	return j.key, nil
}

// resolveRequest validates a request and maps it onto the library types.
// All failures are 400s with a precise message.
func resolveRequest(req SimulateRequest, lim resolveLimits) (job, error) {
	var j job
	switch {
	case req.Benchmark != "" && len(req.Spec) > 0:
		return j, badRequest("benchmark and spec are mutually exclusive")
	case req.Benchmark != "":
		spec, err := workload.ByAlias(req.Benchmark)
		if err != nil {
			return j, badRequest("%v", err)
		}
		j.spec = spec
	case len(req.Spec) > 0:
		spec, err := workload.ParseSpec(req.Spec)
		if err != nil {
			return j, badRequest("%v", err)
		}
		j.spec = spec
	default:
		return j, badRequest("one of benchmark or spec is required")
	}

	if req.Frames < 0 {
		return j, badRequest("frames must be non-negative, got %d", req.Frames)
	}
	if req.Frames > 0 {
		j.spec.Frames = req.Frames
	}
	if max := lim.maxFrames; max > 0 && j.spec.Frames > max {
		return j, badRequest("frames %d exceeds the server limit %d", j.spec.Frames, max)
	}
	if req.TimeoutMs < 0 {
		return j, badRequest("timeoutMs must be non-negative, got %d", req.TimeoutMs)
	}

	sizeKB := req.TileCacheKB
	if sizeKB == 0 {
		sizeKB = 64
	}
	if sizeKB < 0 {
		return j, badRequest("tileCacheKB must be positive, got %d", req.TileCacheKB)
	}
	name := req.Config
	if name == "" {
		name = ConfigTCOR
	}
	switch name {
	case ConfigBaseline:
		j.cfg = gpu.Baseline(sizeKB * 1024)
	case ConfigTCOR:
		j.cfg = gpu.TCOR(sizeKB * 1024)
	case ConfigTCORNoL2:
		j.cfg = gpu.TCORNoL2(sizeKB * 1024)
	default:
		return j, badRequest("unknown config %q (baseline, tcor, tcor-nol2)", name)
	}
	j.cfgName = name
	j.cfg.TileParallel = lim.tileParallel
	if err := j.cfg.Validate(); err != nil {
		return j, badRequest("%v", err)
	}
	j.check = req.Check
	j.key = contentKey(j.spec, j.cfgName, j.cfg)
	return j, nil
}

// contentKey hashes the resolved spec and configuration into the cache
// address. Both types are plain data, so their JSON encodings (fixed field
// order) are canonical.
func contentKey(spec workload.Spec, cfgName string, cfg gpu.Config) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	enc.Encode(spec)    //nolint:errcheck // writing to a hash cannot fail
	enc.Encode(cfgName) //nolint:errcheck
	enc.Encode(cfg)     //nolint:errcheck
	return hex.EncodeToString(h.Sum(nil))
}

// BuildRunResult converts a finished simulation into the wire shape.
// The daemon and the golden tests share it: a served /v1/simulate body is
// exactly EncodeRunResult(BuildRunResult(...)) over a direct library call.
func BuildRunResult(alias, cfgName string, tileCacheKB int, res *gpu.Result) RunResult {
	return RunResult{
		Benchmark:     alias,
		Config:        cfgName,
		TileCacheKB:   tileCacheKB,
		Frames:        res.Frames,
		PPC:           res.PPC(),
		FPS:           res.FPS(600e6),
		MemReads:      res.DRAM.Reads,
		MemWrites:     res.DRAM.Writes,
		HierEnergyMJ:  res.MemHierarchyPJ / 1e9,
		TotalEnergyMJ: res.TotalPJ / 1e9,
		FrameCycles:   res.FrameCycles / int64(max(res.Frames, 1)),
		Counters:      res.StatsRegistry().Snapshot(),
	}
}

// EncodeRunResult is the canonical serialization of a RunResult: compact
// JSON plus a trailing newline. Cache entries store these bytes, so hits,
// coalesced waiters and fresh runs all serve the identical body.
func EncodeRunResult(rr RunResult) ([]byte, error) {
	blob, err := json.Marshal(rr)
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// decodeStrict decodes JSON rejecting unknown fields and trailing content.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("decoding request: %v", err)
	}
	if dec.More() {
		return badRequest("request body has trailing content")
	}
	return nil
}
