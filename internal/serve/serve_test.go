package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tcor/internal/gpu"
	"tcor/internal/workload"
)

// postJSON drives one request through the full middleware stack.
func postJSON(h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func getPath(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// blockingSim returns a simulate hook that parks every call on release and
// signals each arrival on started.
func blockingSim(started chan string, release chan struct{}) func(context.Context, *workload.Scene, gpu.Config) (*gpu.Result, error) {
	return func(ctx context.Context, scene *workload.Scene, cfg gpu.Config) (*gpu.Result, error) {
		started <- scene.Spec.Alias
		select {
		case <-release:
			return &gpu.Result{Benchmark: scene.Spec.Alias, Frames: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestValidationErrors(t *testing.T) {
	s := NewServer(Options{})
	h := s.Handler()
	cases := []struct {
		name, body string
		wantStatus int
		wantIn     string
	}{
		{"no workload", `{}`, 400, "one of benchmark or spec"},
		{"both workloads", `{"benchmark":"CCS","spec":{"alias":"X"}}`, 400, "mutually exclusive"},
		{"unknown benchmark", `{"benchmark":"nope"}`, 400, "unknown benchmark"},
		{"unknown config", `{"benchmark":"CCS","config":"fast"}`, 400, "unknown config"},
		{"unknown field", `{"benchmark":"CCS","turbo":true}`, 400, "unknown field"},
		{"negative frames", `{"benchmark":"CCS","frames":-1}`, 400, "frames"},
		{"negative size", `{"benchmark":"CCS","tileCacheKB":-4}`, 400, "tileCacheKB"},
		{"over frame limit", `{"benchmark":"CCS","frames":1000}`, 400, "server limit"},
		{"trailing garbage", `{"benchmark":"CCS"} {}`, 400, "trailing"},
		{"not json", `hello`, 400, "decoding request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(h, "/v1/simulate", tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body)
			}
			var eb ErrorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
				t.Fatalf("error body is not the JSON envelope: %v", err)
			}
			if !strings.Contains(eb.Error.Message, tc.wantIn) {
				t.Fatalf("error %q does not mention %q", eb.Error.Message, tc.wantIn)
			}
		})
	}
}

func TestRequestSizeLimit(t *testing.T) {
	s := NewServer(Options{MaxBodyBytes: 64})
	rec := postJSON(s.Handler(), "/v1/simulate",
		`{"benchmark":"CCS","spec":`+strings.Repeat(" ", 100)+`}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := NewServer(Options{Workers: 1, QueueDepth: 1})
	s.simulate = blockingSim(started, release)
	h := s.Handler()

	var wg sync.WaitGroup
	codes := make([]int, 2)
	// Distinct sizes give distinct content keys, so nothing coalesces.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postJSON(h, "/v1/simulate",
				fmt.Sprintf(`{"benchmark":"CCS","tileCacheKB":%d}`, 64+i))
			codes[i] = rec.Code
		}(i)
	}
	<-started // the first request holds the only worker
	// Wait until exactly one request is queued behind it.
	waitFor(t, func() bool {
		return s.reg.Snapshot().Get("serve.queue.depth") == 1
	})

	// Worker busy, queue full: the next distinct request must bounce.
	rec := postJSON(h, "/v1/simulate", `{"benchmark":"CCS","tileCacheKB":128}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 response is missing Retry-After")
	}
	var eb ErrorBody
	if json.Unmarshal(rec.Body.Bytes(), &eb) != nil || eb.Error.Code != "queue_full" {
		t.Fatalf("error code = %q, want queue_full", eb.Error.Code)
	}

	close(release)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted request %d finished with %d, want 200", i, code)
		}
	}
	snap := s.reg.Snapshot()
	if got := snap.Get("serve.rejected.queueFull"); got != 1 {
		t.Fatalf("serve.rejected.queueFull = %d, want 1", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("serving-layer invariants: %v", err)
	}
}

func TestSingleflightCollapsesIdenticalRequests(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := NewServer(Options{Workers: 4, QueueDepth: 16})
	s.simulate = blockingSim(started, release)
	h := s.Handler()

	const n = 6
	var wg sync.WaitGroup
	bodies := make([]string, n)
	outcomes := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postJSON(h, "/v1/simulate", `{"benchmark":"GTr","frames":1}`)
			if rec.Code != http.StatusOK {
				t.Errorf("request %d: status %d (body %s)", i, rec.Code, rec.Body)
			}
			bodies[i] = rec.Body.String()
			outcomes[i] = rec.Header().Get("X-Tcord-Cache")
		}(i)
	}
	<-started // one leader is simulating...
	waitFor(t, func() bool {
		return s.reg.Snapshot().Get("serve.cache.coalesced") == n-1
	})
	select {
	case alias := <-started:
		t.Fatalf("a second simulation of %s started; identical requests must collapse", alias)
	default:
	}
	close(release)
	wg.Wait()

	miss, hits := 0, 0
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatal("coalesced requests served different bodies")
		}
	}
	for _, o := range outcomes {
		switch o {
		case "miss":
			miss++
		case "coalesced":
			hits++
		}
	}
	if miss != 1 || hits != n-1 {
		t.Fatalf("outcomes = %v, want 1 miss and %d coalesced", outcomes, n-1)
	}
	snap := s.reg.Snapshot()
	if got := snap.Get("serve.simulations.completed"); got != 1 {
		t.Fatalf("serve.simulations.completed = %d, want 1 (singleflight)", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("serving-layer invariants: %v", err)
	}
}

func TestCancellationPropagatesToSimulationContext(t *testing.T) {
	simCtxDone := make(chan error, 1)
	s := NewServer(Options{Workers: 1})
	s.simulate = func(ctx context.Context, _ *workload.Scene, _ gpu.Config) (*gpu.Result, error) {
		<-ctx.Done() // park until the request context ends
		simCtxDone <- ctx.Err()
		return nil, ctx.Err()
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/simulate",
		strings.NewReader(`{"benchmark":"GTr","frames":1}`))
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	waitFor(t, func() bool {
		return s.reg.Snapshot().Get("serve.inflight") == 1
	})
	cancel()
	select {
	case err := <-simCtxDone:
		if err != context.Canceled {
			t.Fatalf("simulation context ended with %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceling the request did not cancel the simulation context")
	}
	if err := <-errCh; err == nil {
		t.Fatal("client call succeeded despite cancellation")
	}
	// A canceled run must not be cached.
	if got := s.cache.len(); got != 0 {
		t.Fatalf("cache holds %d entries after a canceled run, want 0", got)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s := NewServer(Options{Workers: 1})
	s.simulate = blockingSim(started, release)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	respCh := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/simulate", "application/json",
			strings.NewReader(`{"benchmark":"GTr","frames":1}`))
		if err != nil {
			t.Error(err)
			respCh <- nil
			return
		}
		respCh <- resp
	}()
	<-started // the request is inside the simulator

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return s.draining.Load() })
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a simulation was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release) // let the drain finish
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v, want a clean drain", err)
	}
	resp := <-respCh
	if resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request was not drained to completion: %+v", resp)
	}
	resp.Body.Close()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("serving-layer invariants after drain: %v", err)
	}
}

func TestDrainingRefusesNewSimulations(t *testing.T) {
	s := NewServer(Options{})
	// Handler-only server: Shutdown just flips the drain flag.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := getPath(h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d while draining, want 503", rec.Code)
	}
	if rec := getPath(h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d while draining, want 200 (the process is alive)", rec.Code)
	}
	rec := postJSON(h, "/v1/simulate", `{"benchmark":"GTr"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("simulate while draining = %d, want 503", rec.Code)
	}
}

func TestPanicIsolation(t *testing.T) {
	s := NewServer(Options{Workers: 1})
	s.simulate = func(_ context.Context, scene *workload.Scene, _ gpu.Config) (*gpu.Result, error) {
		if scene.Spec.Alias == "CCS" {
			panic("boom")
		}
		return &gpu.Result{Benchmark: scene.Spec.Alias, Frames: 1}, nil
	}
	h := s.Handler()
	rec := postJSON(h, "/v1/simulate", `{"benchmark":"CCS","frames":1}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request = %d, want 500", rec.Code)
	}
	if got := s.reg.Snapshot().Get("serve.panics"); got != 1 {
		t.Fatalf("serve.panics = %d, want 1", got)
	}
	// The daemon survives: the next request (different key) is served.
	rec = postJSON(h, "/v1/simulate", `{"benchmark":"GTr","frames":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("request after a panic = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
	// The panicked key is not cached poisoned: retrying still fails afresh
	// rather than serving a stale error or hanging.
	rec = postJSON(h, "/v1/simulate", `{"benchmark":"CCS","frames":1}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("retried panicking request = %d, want 500", rec.Code)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	s := NewServer(Options{Workers: 2, CacheEntries: 1})
	s.simulate = func(_ context.Context, scene *workload.Scene, _ gpu.Config) (*gpu.Result, error) {
		return &gpu.Result{Benchmark: scene.Spec.Alias, Frames: 1}, nil
	}
	h := s.Handler()
	post := func(kb int, wantOutcome string) {
		t.Helper()
		rec := postJSON(h, "/v1/simulate", fmt.Sprintf(`{"benchmark":"GTr","tileCacheKB":%d}`, kb))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
		}
		if got := rec.Header().Get("X-Tcord-Cache"); got != wantOutcome {
			t.Fatalf("tileCacheKB=%d served as %q, want %q", kb, got, wantOutcome)
		}
	}
	post(64, "miss")
	post(64, "hit")
	post(128, "miss") // capacity 1: evicts the 64 KiB entry
	post(64, "miss")  // ...so it recomputes
	snap := s.reg.Snapshot()
	if got := snap.Get("serve.cache.evictions"); got != 2 {
		t.Fatalf("serve.cache.evictions = %d, want 2", got)
	}
	if got := snap.Get("serve.cache.size"); got != 1 {
		t.Fatalf("serve.cache.size = %d, want the capacity bound 1", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("serving-layer invariants: %v", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
