package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"tcor/internal/resilience"
	"tcor/internal/stats"
)

// cacheFixture builds a TTL'd result cache on a FakeClock.
func cacheFixture(capacity int, ttl, maxStale time.Duration) (*resultCache, *resilience.FakeClock, *stats.Registry) {
	clock := resilience.NewFakeClock(time.Unix(1000, 0))
	reg := stats.NewRegistry()
	return newResultCache(capacity, ttl, maxStale, clock, DefaultTenants(), reg, "serve.cache"), clock, reg
}

func mustGet(t *testing.T, c *resultCache, key string, allowStale func() bool, compute func() (cached, error)) (cached, outcome) {
	t.Helper()
	val, how, err := c.get(context.Background(), key, allowStale, compute)
	if err != nil {
		t.Fatalf("get(%s): %v", key, err)
	}
	return val, how
}

func always() bool { return true }

// TestExpiredEntryRetainedAcrossFailedRecompute is the regression test for
// the lost-last-good-value bug: get used to delete a TTL-expired entry
// before recomputing, so a failed recompute (a chaos fault, a breaker
// probe) dropped the value that maxStale degraded serving should still have
// offered. The old entry must survive until a replacement lands.
func TestExpiredEntryRetainedAcrossFailedRecompute(t *testing.T) {
	c, clock, reg := cacheFixture(8, time.Second, time.Hour)

	v1 := cached{body: []byte("v1\n")}
	if _, how := mustGet(t, c, "k", nil, func() (cached, error) { return v1, nil }); how != outcomeMiss {
		t.Fatalf("first get served %q, want miss", how)
	}

	// Expire it, then fail the recompute the way a chaos fault would.
	clock.Advance(2 * time.Second)
	boom := errors.New("injected")
	if _, _, err := c.get(context.Background(), "k", nil, func() (cached, error) {
		return cached{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("failed recompute returned %v, want the compute error", err)
	}

	// Degraded serving must still find the last-good value — without
	// running compute at all.
	val, how, err := c.get(context.Background(), "k", always, func() (cached, error) {
		t.Fatal("degraded get must not recompute when a retained entry is servable")
		return cached{}, nil
	})
	if err != nil || how != outcomeStale || string(val.body) != "v1\n" {
		t.Fatalf("degraded get = (%q, %q, %v), want the retained v1 as stale", val.body, how, err)
	}

	snap := reg.Snapshot()
	if got := snap.Get("serve.cache.retained"); got != 1 {
		t.Fatalf("serve.cache.retained = %d, want 1", got)
	}
	if ret, exp := snap.Get("serve.cache.retained"), snap.Get("serve.cache.expired"); ret > exp {
		t.Fatalf("retained %d > expired %d", ret, exp)
	}

	// A successful recompute replaces the retained entry for good.
	clock.Advance(2 * time.Second)
	v2 := cached{body: []byte("v2\n")}
	if _, how := mustGet(t, c, "k", nil, func() (cached, error) { return v2, nil }); how != outcomeMiss {
		t.Fatalf("recompute served %q, want miss", how)
	}
	if val, how := mustGet(t, c, "k", nil, nil); how != outcomeHit || string(val.body) != "v2\n" {
		t.Fatalf("after successful recompute: (%q, %q), want fresh v2 hit", val.body, how)
	}
	if got := c.len(); got != 1 {
		t.Fatalf("cache holds %d completed entries, want 1 (the predecessor must not leak)", got)
	}
}

// TestRetainedEntryServedWhileRecomputeInFlight: a degraded caller arriving
// while the expired key's recompute is still running gets the retained
// last-good value immediately instead of blocking on a leader that is
// likely failing behind an open breaker.
func TestRetainedEntryServedWhileRecomputeInFlight(t *testing.T) {
	c, clock, reg := cacheFixture(8, time.Second, time.Hour)

	v1 := cached{body: []byte("v1\n")}
	mustGet(t, c, "k", nil, func() (cached, error) { return v1, nil })
	clock.Advance(2 * time.Second)

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := c.get(context.Background(), "k", nil, func() (cached, error) {
			close(entered)
			<-release
			return cached{}, errors.New("slow failure")
		})
		done <- err
	}()
	<-entered

	val, how, err := c.get(context.Background(), "k", always, nil)
	if err != nil || how != outcomeStale || string(val.body) != "v1\n" {
		t.Fatalf("in-flight degraded get = (%q, %q, %v), want retained v1 as stale", val.body, how, err)
	}

	// A non-degraded concurrent caller still coalesces onto the leader.
	coalesced := make(chan outcome, 1)
	go func() {
		_, how, _ := c.get(context.Background(), "k", nil, func() (cached, error) {
			t.Error("coalescing caller must not become a leader")
			return cached{}, nil
		})
		coalesced <- how
	}()
	// Only release the leader once the second caller has attached to it.
	waitFor(t, func() bool {
		return reg.Snapshot().Get("serve.cache.coalesced") == 1
	})
	close(release)
	if err := <-done; err == nil {
		t.Fatal("leader should have failed")
	}
	if how := <-coalesced; how != outcomeCoalesced {
		t.Fatalf("concurrent non-degraded get served %q, want coalesced", how)
	}
}

// TestExpiredEntryStillRecomputesFresh pins the non-degraded path: expiry
// with a healthy compute yields a fresh value, and the retained predecessor
// never resurfaces.
func TestExpiredEntryStillRecomputesFresh(t *testing.T) {
	c, clock, reg := cacheFixture(8, time.Second, time.Hour)
	mustGet(t, c, "k", nil, func() (cached, error) { return cached{body: []byte("v1\n")}, nil })
	clock.Advance(2 * time.Second)
	val, how := mustGet(t, c, "k", nil, func() (cached, error) { return cached{body: []byte("v2\n")}, nil })
	if how != outcomeMiss || string(val.body) != "v2\n" {
		t.Fatalf("recompute = (%q, %q), want fresh v2 miss", val.body, how)
	}
	if got := reg.Snapshot().Get("serve.cache.retained"); got != 0 {
		t.Fatalf("serve.cache.retained = %d, want 0 on the healthy path", got)
	}
}

// TestPeek covers the cache-only probe the gateway's peer-aware lookup
// uses: fresh entries hit, within-maxStale entries serve stale, and absent,
// expired-beyond-stale or in-flight keys miss without waiting.
func TestPeek(t *testing.T) {
	c, clock, _ := cacheFixture(8, time.Second, time.Minute)

	if _, _, ok := c.peek("k"); ok {
		t.Fatal("peek hit an absent key")
	}
	mustGet(t, c, "k", nil, func() (cached, error) { return cached{body: []byte("v\n")}, nil })
	if val, how, ok := c.peek("k"); !ok || how != outcomeHit || string(val.body) != "v\n" {
		t.Fatalf("fresh peek = (%q, %q, %v), want a hit", val.body, how, ok)
	}
	clock.Advance(30 * time.Second) // expired, within maxStale
	if _, how, ok := c.peek("k"); !ok || how != outcomeStale {
		t.Fatalf("within-maxStale peek = (%q, %v), want stale", how, ok)
	}
	clock.Advance(10 * time.Minute) // beyond ttl+maxStale
	if _, _, ok := c.peek("k"); ok {
		t.Fatal("peek served an entry beyond ttl+maxStale")
	}

	// In-flight keys never make a probe wait.
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.get(context.Background(), "k2", nil, func() (cached, error) {
			close(entered)
			<-release
			return cached{body: []byte("x\n")}, nil
		})
	}()
	<-entered
	if _, _, ok := c.peek("k2"); ok {
		t.Fatal("peek returned an in-flight entry")
	}
	close(release)
}
