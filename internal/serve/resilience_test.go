package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"tcor/internal/gpu"
	"tcor/internal/resilience"
	"tcor/internal/stats"
	"tcor/internal/workload"
)

// chaosServer builds a server with an armed injector and a fast fake
// simulator, so chaos tests measure the resilience machinery, not the GPU
// model.
func chaosServer(seed int64, site string, plan resilience.FaultPlan, opts Options) *Server {
	opts.Registry = stats.NewRegistry()
	inj := resilience.NewInjector(seed).Meter(opts.Registry)
	inj.Arm(site, plan)
	opts.Chaos = inj
	s := NewServer(opts)
	s.simulate = func(_ context.Context, scene *workload.Scene, _ gpu.Config) (*gpu.Result, error) {
		return &gpu.Result{Benchmark: scene.Spec.Alias, Frames: 1}, nil
	}
	return s
}

// TestChaosScheduleDeterministic drives the same request stream through two
// servers armed with the same seed and asserts the injected-fault schedule —
// observed as the HTTP status sequence — is identical, and that a different
// seed produces a different schedule.
func TestChaosScheduleDeterministic(t *testing.T) {
	plan := resilience.FaultPlan{Rate: 0.5, Codes: []int{500, 503}}
	drive := func(seed int64) []int {
		s := chaosServer(seed, resilience.SiteHTTP, plan, Options{Workers: 2})
		h := s.Handler()
		codes := make([]int, 40)
		for i := range codes {
			codes[i] = postJSON(h, "/v1/simulate", `{"benchmark":"GTr","frames":1}`).Code
		}
		return codes
	}
	a, b := drive(7), drive(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different fault schedules:\n%v\n%v", a, b)
	}
	if c := drive(8); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced the same 40-request schedule: %v", a)
	}
}

// TestChaosFaultsNeverCorruptCache asserts the core chaos-mode safety
// property: injected HTTP faults answer before the handler, so however many
// faults a request stream absorbs, the cache computes each key once and
// every successful response serves identical bytes.
func TestChaosFaultsNeverCorruptCache(t *testing.T) {
	s := chaosServer(7, resilience.SiteHTTP,
		resilience.FaultPlan{Rate: 0.5, Codes: []int{500, 503}}, Options{Workers: 2})
	h := s.Handler()

	var okBody string
	oks, faults := 0, 0
	for i := 0; i < 40; i++ {
		rec := postJSON(h, "/v1/simulate", `{"benchmark":"GTr","frames":1}`)
		switch rec.Code {
		case http.StatusOK:
			oks++
			if okBody == "" {
				okBody = rec.Body.String()
			} else if rec.Body.String() != okBody {
				t.Fatalf("request %d: successful body changed under chaos", i)
			}
		default:
			faults++
			var eb ErrorBody
			if json.Unmarshal(rec.Body.Bytes(), &eb) != nil || eb.Error.Code != "injected_fault" {
				t.Fatalf("request %d: non-200 is not an injected fault: %d %s", i, rec.Code, rec.Body)
			}
		}
	}
	if oks == 0 || faults == 0 {
		t.Fatalf("rate 0.5 over 40 requests gave %d oks, %d faults; the test exercised nothing", oks, faults)
	}
	snap := s.reg.Snapshot()
	if got := snap.Get("serve.cache.misses"); got != 1 {
		t.Fatalf("serve.cache.misses = %d, want 1 (faults must not reach the cache)", got)
	}
	if got := snap.Get("chaos.serve.http.injected"); got != int64(faults) {
		t.Fatalf("chaos.serve.http.injected = %d, want %d", got, faults)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("serving-layer invariants: %v", err)
	}
}

// TestChaosExemptsObservability asserts the drill can always be measured:
// with every request faulted (rate 1), the health, readiness, metrics,
// stats and debug endpoints still answer normally, tick no chaos counters,
// and do not advance the seeded schedule — the Nth API request sees the
// same fault decision no matter how many probes were interleaved.
func TestChaosExemptsObservability(t *testing.T) {
	plan := resilience.FaultPlan{Rate: 1, Codes: []int{500}}
	s := chaosServer(7, resilience.SiteHTTP, plan, Options{Workers: 1})
	h := s.Handler()

	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/v1/stats", "/debug/trace"} {
		if rec := getPath(h, path); rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d under rate-1 chaos, want 200 (exempt)", path, rec.Code)
		}
	}
	snap := s.reg.Snapshot()
	if got := snap.Get("chaos.serve.http.injected"); got != 0 {
		t.Fatalf("chaos.serve.http.injected = %d after exempt-only traffic, want 0", got)
	}
	if got := snap.Get("chaos.serve.http.evaluations"); got != 0 {
		t.Fatalf("chaos.serve.http.evaluations = %d; exempt paths must not advance the schedule", got)
	}
	if rec := postJSON(h, "/v1/simulate", `{"benchmark":"GTr","frames":1}`); rec.Code != http.StatusInternalServerError {
		t.Fatalf("POST /v1/simulate = %d under rate-1 chaos, want the injected 500", rec.Code)
	}

	// Schedule invariance: a probe-free server and a probe-heavy server see
	// the same status sequence on the API path.
	drive := func(probes int) []int {
		s := chaosServer(7, resilience.SiteHTTP,
			resilience.FaultPlan{Rate: 0.5, Codes: []int{500, 503}}, Options{Workers: 1})
		h := s.Handler()
		codes := make([]int, 20)
		for i := range codes {
			for p := 0; p < probes; p++ {
				getPath(h, "/healthz")
			}
			codes[i] = postJSON(h, "/v1/simulate", `{"benchmark":"GTr","frames":1}`).Code
		}
		return codes
	}
	if a, b := drive(0), drive(3); fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("interleaved probes shifted the fault schedule:\n%v\n%v", a, b)
	}
}

// TestInjectedPanicInSingleflightLeader arms a scripted panic at the
// simulate site — inside the cache's singleflight leader — while a second
// identical request is coalesced onto it. The panic must answer both
// requests with 500s, count once, leave the key unpoisoned and leave the
// daemon serving.
func TestInjectedPanicInSingleflightLeader(t *testing.T) {
	inj := resilience.NewInjector(1)
	inj.Arm(resilience.SiteSimulate, resilience.FaultPlan{
		Seq:     []resilience.FaultKind{resilience.KindPanic},
		Latency: 500 * time.Millisecond, // holds the leader so the waiter provably coalesces
	})
	s := NewServer(Options{Workers: 1, Chaos: inj, Breaker: &resilience.BreakerConfig{}})
	s.simulate = func(_ context.Context, scene *workload.Scene, _ gpu.Config) (*gpu.Result, error) {
		return &gpu.Result{Benchmark: scene.Spec.Alias, Frames: 1}, nil
	}
	h := s.Handler()
	const body = `{"benchmark":"GTr","frames":1}`

	var wg sync.WaitGroup
	codes := make([]int, 2)
	errCodes := make([]string, 2)
	post := func(i int) {
		defer wg.Done()
		rec := postJSON(h, "/v1/simulate", body)
		codes[i] = rec.Code
		var eb ErrorBody
		if json.Unmarshal(rec.Body.Bytes(), &eb) == nil {
			errCodes[i] = eb.Error.Code
		}
	}
	wg.Add(1)
	go post(0)
	waitFor(t, func() bool { return s.reg.Snapshot().Get("serve.cache.misses") == 1 })
	wg.Add(1)
	go post(1)
	waitFor(t, func() bool { return s.reg.Snapshot().Get("serve.cache.coalesced") == 1 })
	wg.Wait()

	for i := range codes {
		if codes[i] != http.StatusInternalServerError || errCodes[i] != "internal_panic" {
			t.Fatalf("request %d = %d %q, want 500 internal_panic", i, codes[i], errCodes[i])
		}
	}
	if got := s.reg.Snapshot().Get("serve.panics"); got != 1 {
		t.Fatalf("serve.panics = %d, want 1 (the waiter observes the leader's panic, not its own)", got)
	}
	// The sequence is exhausted: the key recomputes cleanly, proving the
	// panicked cell was dropped rather than cached poisoned.
	if rec := postJSON(h, "/v1/simulate", body); rec.Code != http.StatusOK {
		t.Fatalf("request after the injected panic = %d (body %s), want 200", rec.Code, rec.Body)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("serving-layer invariants: %v", err)
	}
}

// TestBreakerOpensAndServesStale walks the degradation path end to end on a
// fake clock: compute failures trip the breaker, /readyz degrades, the
// breaker short-circuits new compute, an expired cache entry is served
// stale with the Warning header, and a successful probe after the cooldown
// closes the breaker again.
func TestBreakerOpensAndServesStale(t *testing.T) {
	fc := resilience.NewFakeClock(time.Unix(1000, 0))
	var failing sync.Map // alias -> bool
	s := NewServer(Options{
		Workers:  1,
		CacheTTL: time.Minute,
		MaxStale: time.Hour,
		Clock:    fc,
		// The healthy warm-up run below counts as a window success, so two
		// failures make 2/3 >= 0.6 at the 3-sample minimum: trip.
		Breaker: &resilience.BreakerConfig{
			Window: 4, MinSamples: 3, FailureRatio: 0.6,
			Cooldown: 5 * time.Minute, ProbeSuccesses: 1,
		},
	})
	s.simulate = func(_ context.Context, scene *workload.Scene, _ gpu.Config) (*gpu.Result, error) {
		if v, ok := failing.Load(scene.Spec.Alias); ok && v.(bool) {
			return nil, errors.New("simulator down")
		}
		return &gpu.Result{Benchmark: scene.Spec.Alias, Frames: 1}, nil
	}
	h := s.Handler()

	// A healthy run fills the cache.
	good := postJSON(h, "/v1/simulate", `{"benchmark":"GTr","frames":1}`)
	if good.Code != http.StatusOK {
		t.Fatalf("healthy request = %d (body %s)", good.Code, good.Body)
	}

	// Two compute failures reach the 2-sample window's 0.5 ratio: trip.
	failing.Store("CCS", true)
	for i := 0; i < 2; i++ {
		if rec := postJSON(h, "/v1/simulate", `{"benchmark":"CCS","frames":1}`); rec.Code != http.StatusInternalServerError {
			t.Fatalf("failing request %d = %d, want 500", i, rec.Code)
		}
	}
	if st := s.brk.State(); st != resilience.Open {
		t.Fatalf("breaker = %v after the failure streak, want Open", st)
	}
	if rec := getPath(h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d with the breaker open, want 503 degraded", rec.Code)
	}

	// Open breaker: new compute short-circuits with a cooldown hint.
	rec := postJSON(h, "/v1/simulate", `{"benchmark":"CCS","frames":1}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("short-circuited request = %d, want 503", rec.Code)
	}
	var eb ErrorBody
	if json.Unmarshal(rec.Body.Bytes(), &eb) != nil || eb.Error.Code != "breaker_open" {
		t.Fatalf("short-circuit error code = %q, want breaker_open", eb.Error.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "300" {
		t.Fatalf("Retry-After = %q, want the 5m cooldown as 300", ra)
	}
	if got := s.reg.Snapshot().Get("serve.breaker.shortCircuits"); got != 1 {
		t.Fatalf("serve.breaker.shortCircuits = %d, want 1", got)
	}

	// The cached entry expires; with the breaker open it is served stale.
	fc.Advance(2 * time.Minute)
	rec = postJSON(h, "/v1/simulate", `{"benchmark":"GTr","frames":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("stale-eligible request = %d (body %s), want 200", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Tcord-Cache"); got != "stale" {
		t.Fatalf("X-Tcord-Cache = %q, want stale", got)
	}
	if w := rec.Header().Get("Warning"); w == "" {
		t.Fatal("stale response is missing the Warning header")
	}
	if rec.Body.String() != good.Body.String() {
		t.Fatal("stale response bytes differ from the original cached response")
	}
	if got := s.reg.Snapshot().Get("serve.cache.staleServes"); got != 1 {
		t.Fatalf("serve.cache.staleServes = %d, want 1", got)
	}

	// Cooldown elapses, the dependency recovers: one successful probe
	// closes the breaker and readiness returns.
	failing.Store("CCS", false)
	fc.Advance(5 * time.Minute)
	if rec := postJSON(h, "/v1/simulate", `{"benchmark":"CCS","frames":1}`); rec.Code != http.StatusOK {
		t.Fatalf("probe request = %d (body %s), want 200", rec.Code, rec.Body)
	}
	if st := s.brk.State(); st != resilience.Closed {
		t.Fatalf("breaker = %v after a successful probe, want Closed", st)
	}
	if rec := getPath(h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz = %d after recovery, want 200", rec.Code)
	}
	if got := s.reg.Snapshot().Get("serve.breaker.transitions"); got != 3 {
		t.Fatalf("serve.breaker.transitions = %d, want 3 (closed->open->half-open->closed)", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("serving-layer invariants: %v", err)
	}
}

// TestRetryAfterEstimateFromLoad pins the 429 hint to the documented
// formula: with one worker busy, one request queued and an empty duration
// histogram (p50 floored at 1s), the rejected caller is three pool
// turnovers out.
func TestRetryAfterEstimateFromLoad(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := NewServer(Options{Workers: 1, QueueDepth: 1})
	s.simulate = blockingSim(started, release)
	h := s.Handler()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJSON(h, "/v1/simulate", fmt.Sprintf(`{"benchmark":"CCS","tileCacheKB":%d}`, 64+i))
		}(i)
	}
	<-started
	waitFor(t, func() bool { return s.reg.Snapshot().Get("serve.queue.depth") == 1 })

	rec := postJSON(h, "/v1/simulate", `{"benchmark":"CCS","tileCacheKB":128}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want 3 (backlog 3 / 1 worker x 1s p50 floor)", ra)
	}
	close(release)
	wg.Wait()
}
