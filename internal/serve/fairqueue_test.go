package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcor/internal/resilience"
	"tcor/internal/stats"
)

// testGate builds a single-tenant gate with the legacy global semantics.
func testGate(workers, depth int, reg *stats.Registry) *gate {
	return newGate(workers, depth, DefaultTenants(), resilience.Wall(), reg)
}

// TestQueueWaitObservesAdmissionsOnly is the regression test for the
// canceled-waiter accounting bug: gate.acquire used to observe every
// waiter's queue time into serve.queue.wait through a deferred Observe,
// cancellations included, breaking the documented count-matches-admissions
// property and inflating the wait quantiles with give-up times. Canceled
// waits must meter serve.queue.canceledWait instead.
func TestQueueWaitObservesAdmissionsOnly(t *testing.T) {
	reg := stats.NewRegistry()
	g := testGate(1, 4, reg)

	rel, err := g.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Queue a waiter, then make it give up.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.acquire(ctx)
		errc <- err
	}()
	waitFor(t, func() bool { return reg.Snapshot().Get("serve.queue.depth") == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled waiter returned %v, want context.Canceled", err)
	}
	rel()

	snap := reg.Snapshot()
	if adm, obs := snap.Get("serve.admitted"), snap.Get("serve.queue.wait.count"); adm != 1 || obs != adm {
		t.Fatalf("admitted=%d queue.wait.count=%d, want both 1: a canceled waiter leaked into the admission-wait histogram", adm, obs)
	}
	if got := snap.Get("serve.rejected.canceledInQueue"); got != 1 {
		t.Fatalf("serve.rejected.canceledInQueue = %d, want 1", got)
	}
	if got := snap.Get("serve.queue.canceledWait.count"); got != 1 {
		t.Fatalf("serve.queue.canceledWait.count = %d, want 1: canceled waits must be metered separately", got)
	}
	if got := snap.Get("serve.queue.depth"); got != 0 {
		t.Fatalf("serve.queue.depth = %d after cancellation, want 0", got)
	}
}

// TestQueueWaitCountNeverExceedsAdmissions hammers the gate with a mix of
// admitted and canceled waiters under -race and asserts the invariant at
// every quiescent point and at the end.
func TestQueueWaitCountNeverExceedsAdmissions(t *testing.T) {
	reg := stats.NewRegistry()
	g := testGate(2, 8, reg)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			if i%3 == 0 {
				// A third of the callers give up almost immediately.
				time.AfterFunc(time.Duration(i%5)*100*time.Microsecond, cancel)
			}
			defer cancel()
			rel, err := g.acquire(ctx)
			if err != nil {
				return
			}
			time.Sleep(50 * time.Microsecond)
			rel()
		}(i)
	}
	wg.Wait()
	snap := reg.Snapshot()
	adm, obs := snap.Get("serve.admitted"), snap.Get("serve.queue.wait.count")
	if obs != adm {
		t.Fatalf("queue.wait.count=%d admitted=%d, want equal at quiescence", obs, adm)
	}
	if got := snap.Get("serve.inflight"); got != 0 {
		t.Fatalf("serve.inflight = %d at quiescence, want 0", got)
	}
	if got := snap.Get("serve.queue.depth"); got != 0 {
		t.Fatalf("serve.queue.depth = %d at quiescence, want 0", got)
	}
}

// TestInflightNeverDipsDuringHandoff is the regression test for the
// release-ordering bug: release used to decrement serve.inflight before
// freeing the slot, so while a queued waiter was being admitted a metrics
// snapshot could read the gauge below the number of held slots (zero, with
// one worker and a full pipeline). Slot handoff now leaves the gauge
// untouched, so with a continuously busy single-worker gate a concurrent
// sampler must never read inflight outside {1} mid-chain, and never outside
// [0, workers] at all.
func TestInflightNeverDipsDuringHandoff(t *testing.T) {
	reg := stats.NewRegistry()
	g := testGate(1, 8, reg)
	inflight := reg.Snapshot // re-snapshot each probe

	// Sampler: record the minimum gauge value observed while the chain runs.
	stop := make(chan struct{})
	var minSeen atomic.Int64
	minSeen.Store(1 << 40)
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := inflight().Get("serve.inflight")
			for {
				cur := minSeen.Load()
				if v >= cur || minSeen.CompareAndSwap(cur, v) {
					break
				}
			}
		}
	}()

	// Build an unbroken handoff chain: the next acquirer is always queued
	// before the current holder releases, so a correctly-accounted gauge
	// holds the value 1 for the chain's whole lifetime.
	const handoffs = 60
	cur, err := g.acquire(context.Background())
	if err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	for i := 0; i < handoffs; i++ {
		acquired := make(chan func(), 1)
		errs := make(chan error, 1)
		go func() {
			rel, err := g.acquire(context.Background())
			errs <- err
			acquired <- rel
		}()
		waitFor(t, func() bool { return reg.Snapshot().Get("serve.queue.depth") == 1 })
		cur() // handoff: the queued waiter now holds the slot
		if err := <-errs; err != nil {
			t.Fatalf("handoff %d: %v", i, err)
		}
		cur = <-acquired
	}
	close(stop)
	sampler.Wait()
	cur()

	if got := minSeen.Load(); got < 1 {
		t.Fatalf("serve.inflight read %d during an unbroken handoff chain; the gauge dipped below the held-slot count", got)
	}
	if got := reg.Snapshot().Get("serve.inflight"); got != 0 {
		t.Fatalf("serve.inflight = %d after final release, want 0", got)
	}
	if err := reg.Check(); err != nil {
		t.Fatalf("registry invariants: %v", err)
	}
}

// TestGateHandoffIsFIFO pins the queue discipline within one tenant:
// released slots go to the tenant's longest-waiting request, and a
// late-arriving caller cannot jump the queue through the fast path while
// waiters exist.
func TestGateHandoffIsFIFO(t *testing.T) {
	reg := stats.NewRegistry()
	g := testGate(1, 8, reg)
	seedRel, err := g.acquire(context.Background())
	if err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	const n = 4
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		ready := make(chan struct{})
		go func() {
			close(ready)
			if rel, err := g.acquire(context.Background()); err == nil {
				order <- i
				rel()
			}
		}()
		<-ready
		waitFor(t, func() bool {
			return reg.Snapshot().Get("serve.queue.depth") == int64(i+1)
		})
	}
	seedRel()
	for want := 0; want < n; want++ {
		if got := <-order; got != want {
			t.Fatalf("admission order: got waiter %d in position %d, want FIFO", got, want)
		}
	}
}

// twoTenantGate builds a gate over tenants alpha (weight wa) and beta
// (weight wb) plus the implicit default.
func twoTenantGate(t *testing.T, workers, depth, wa, wb int, reg *stats.Registry) (*gate, context.Context, context.Context) {
	t.Helper()
	ts, err := ParseTenants([]byte(`{
		"key-alpha": {"name":"alpha","weight":` + itoa(wa) + `},
		"key-beta":  {"name":"beta","weight":` + itoa(wb) + `}}`))
	if err != nil {
		t.Fatal(err)
	}
	g := newGate(workers, depth, ts, resilience.Wall(), reg)
	alpha, err := ts.Resolve("key-alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := ts.Resolve("key-beta")
	if err != nil {
		t.Fatal(err)
	}
	return g,
		contextWithTenant(context.Background(), alpha),
		contextWithTenant(context.Background(), beta)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n = n / 10
	}
	return string(b[i:])
}

// saturateAndDrain seeds the single worker slot, parks per-tenant waiters
// behind it, then releases the seed and records the tenant name of each
// admission in order. Admissions serialize through the one slot, so the
// recorded order is exactly the scheduler's.
func saturateAndDrain(t *testing.T, g *gate, reg *stats.Registry, perTenant int, ctxs map[string]context.Context) []string {
	t.Helper()
	seedRel, err := g.acquire(context.Background())
	if err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	names := make([]string, 0, len(ctxs))
	for name := range ctxs {
		names = append(names, name)
	}
	total := perTenant * len(names)
	order := make(chan string, total)
	var wg sync.WaitGroup
	queued := 0
	for _, name := range names {
		name, ctx := name, ctxs[name]
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rel, err := g.acquire(ctx)
				if err != nil {
					t.Errorf("tenant %s acquire: %v", name, err)
					return
				}
				order <- name
				rel()
			}()
			queued++
			waitFor(t, func() bool {
				return reg.Snapshot().Get("serve.queue.depth") == int64(queued)
			})
		}
	}
	seedRel()
	wg.Wait()
	close(order)
	got := make([]string, 0, total)
	for name := range order {
		got = append(got, name)
	}
	return got
}

// TestFairShareEqualWeights is the admission-fairness regression test: two
// tenants with equal weight saturating a single worker must each receive at
// least 40% of the admissions over the contended window — the old global
// FIFO's convoy behavior (whoever enqueued their burst first drains it
// entirely) would give one tenant 100% of the head of the window.
func TestFairShareEqualWeights(t *testing.T) {
	reg := stats.NewRegistry()
	g, alphaCtx, betaCtx := twoTenantGate(t, 1, 64, 1, 1, reg)
	const per = 20
	order := saturateAndDrain(t, g, reg, per, map[string]context.Context{
		"alpha": alphaCtx, "beta": betaCtx,
	})

	// The contended window is the head of the drain, while both tenants
	// still have queued work. Count shares over the first 2*min(...) = all
	// admissions before either queue empties; with equal backlogs that is
	// everything, but judge the first half to be strict about interleaving.
	window := order[:per]
	counts := map[string]int{}
	for _, name := range window {
		counts[name]++
	}
	for _, name := range []string{"alpha", "beta"} {
		if min := (len(window) * 40) / 100; counts[name] < min {
			t.Fatalf("tenant %s got %d of the first %d admissions, want >= %d (40%%); full order: %v",
				name, counts[name], len(window), min, order)
		}
	}
}

// TestFairShareWeighted pins the stride math: weights 3:1 must yield
// completion shares within 10 percentage points of 75%/25% over the
// contended window.
func TestFairShareWeighted(t *testing.T) {
	reg := stats.NewRegistry()
	g, alphaCtx, betaCtx := twoTenantGate(t, 1, 64, 3, 1, reg)
	const per = 24
	order := saturateAndDrain(t, g, reg, per, map[string]context.Context{
		"alpha": alphaCtx, "beta": betaCtx,
	})

	// Alpha drains three cells per beta cell, so the window where both
	// compete ends when alpha's 24 are done: after 24 + 24/3 = 32 slots.
	window := order[:32]
	alpha := 0
	for _, name := range window {
		if name == "alpha" {
			alpha++
		}
	}
	share := float64(alpha) / float64(len(window))
	if share < 0.65 || share > 0.85 {
		t.Fatalf("alpha (weight 3) got %.0f%% of the contended window, want 75%% +/- 10; full order: %v",
			share*100, order)
	}

	snap := reg.Snapshot()
	if got := snap.Get("serve.tenant.alpha.admitted"); got != per {
		t.Fatalf("serve.tenant.alpha.admitted = %d, want %d", got, per)
	}
	if got := snap.Get("serve.tenant.beta.admitted"); got != per {
		t.Fatalf("serve.tenant.beta.admitted = %d, want %d", got, per)
	}
}

// TestTenantMaxInflightCap pins the per-tenant concurrency cap: a tenant
// capped at one in-flight request queues its second even while worker slots
// sit free, and an uncapped tenant can still claim those slots.
func TestTenantMaxInflightCap(t *testing.T) {
	reg := stats.NewRegistry()
	ts, err := ParseTenants([]byte(`{
		"key-capped": {"name":"capped","weight":1,"maxInflight":1},
		"key-open":   {"name":"open","weight":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	g := newGate(2, 8, ts, resilience.Wall(), reg)
	capped, _ := ts.Resolve("key-capped")
	open, _ := ts.Resolve("key-open")
	cappedCtx := contextWithTenant(context.Background(), capped)
	openCtx := contextWithTenant(context.Background(), open)

	rel1, err := g.acquire(cappedCtx)
	if err != nil {
		t.Fatalf("capped first acquire: %v", err)
	}
	// Second capped acquire must queue despite a free slot.
	done := make(chan func(), 1)
	go func() {
		rel, err := g.acquire(cappedCtx)
		if err != nil {
			t.Errorf("capped second acquire: %v", err)
		}
		done <- rel
	}()
	waitFor(t, func() bool {
		return reg.Snapshot().Get("serve.tenant.capped.queued") == 1
	})
	// The open tenant takes the free slot the capped tenant cannot use.
	rel2, err := g.acquire(openCtx)
	if err != nil {
		t.Fatalf("open acquire should bypass the capped tenant's blocked waiter: %v", err)
	}
	if got := reg.Snapshot().Get("serve.inflight"); got != 2 {
		t.Fatalf("serve.inflight = %d, want 2", got)
	}
	rel1() // frees the capped tenant's cap; its waiter is admitted
	rel3 := <-done
	rel3()
	rel2()
	if got := reg.Snapshot().Get("serve.inflight"); got != 0 {
		t.Fatalf("serve.inflight = %d at quiescence, want 0", got)
	}
}

// TestTenantQueueBoundIsPerTenant pins backlog isolation: one tenant
// filling its own queue bound gets 429s while the other tenant still
// queues freely.
func TestTenantQueueBoundIsPerTenant(t *testing.T) {
	reg := stats.NewRegistry()
	ts, err := ParseTenants([]byte(`{
		"key-heavy": {"name":"heavy","weight":1,"maxQueued":1},
		"key-light": {"name":"light","weight":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	g := newGate(1, 8, ts, resilience.Wall(), reg)
	heavy, _ := ts.Resolve("key-heavy")
	light, _ := ts.Resolve("key-light")
	heavyCtx := contextWithTenant(context.Background(), heavy)
	lightCtx := contextWithTenant(context.Background(), light)

	seedRel, err := g.acquire(heavyCtx)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if rel, err := g.acquire(heavyCtx); err == nil {
			rel()
		}
	}()
	waitFor(t, func() bool {
		return reg.Snapshot().Get("serve.tenant.heavy.queued") == 1
	})
	// Heavy's queue (bound 1) is full: the next heavy caller bounces...
	if _, err := g.acquire(heavyCtx); err != errQueueFull {
		t.Fatalf("heavy over-bound acquire = %v, want errQueueFull", err)
	}
	// ...while light still queues.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if rel, err := g.acquire(lightCtx); err != nil {
			t.Errorf("light acquire: %v", err)
		} else {
			rel()
		}
	}()
	waitFor(t, func() bool {
		return reg.Snapshot().Get("serve.tenant.light.queued") == 1
	})
	seedRel()
	wg.Wait()
	snap := reg.Snapshot()
	if got := snap.Get("serve.tenant.heavy.rejected.queueFull"); got != 1 {
		t.Fatalf("serve.tenant.heavy.rejected.queueFull = %d, want 1", got)
	}
	if got := snap.Get("serve.rejected.queueFull"); got != 1 {
		t.Fatalf("serve.rejected.queueFull = %d, want 1", got)
	}
}
