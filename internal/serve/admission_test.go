package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcor/internal/stats"
)

// TestQueueWaitObservesAdmissionsOnly is the regression test for the
// canceled-waiter accounting bug: gate.acquire used to observe every
// waiter's queue time into serve.queue.wait through a deferred Observe,
// cancellations included, breaking the documented count-matches-admissions
// property and inflating the wait quantiles with give-up times. Canceled
// waits must meter serve.queue.canceledWait instead.
func TestQueueWaitObservesAdmissionsOnly(t *testing.T) {
	reg := stats.NewRegistry()
	g := newGate(1, 4, reg)

	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Queue a waiter, then make it give up.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- g.acquire(ctx) }()
	waitFor(t, func() bool { return reg.Snapshot().Get("serve.queue.depth") == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled waiter returned %v, want context.Canceled", err)
	}
	g.release()

	snap := reg.Snapshot()
	if adm, obs := snap.Get("serve.admitted"), snap.Get("serve.queue.wait.count"); adm != 1 || obs != adm {
		t.Fatalf("admitted=%d queue.wait.count=%d, want both 1: a canceled waiter leaked into the admission-wait histogram", adm, obs)
	}
	if got := snap.Get("serve.rejected.canceledInQueue"); got != 1 {
		t.Fatalf("serve.rejected.canceledInQueue = %d, want 1", got)
	}
	if got := snap.Get("serve.queue.canceledWait.count"); got != 1 {
		t.Fatalf("serve.queue.canceledWait.count = %d, want 1: canceled waits must be metered separately", got)
	}
	if got := snap.Get("serve.queue.depth"); got != 0 {
		t.Fatalf("serve.queue.depth = %d after cancellation, want 0", got)
	}
}

// TestQueueWaitCountNeverExceedsAdmissions hammers the gate with a mix of
// admitted and canceled waiters under -race and asserts the invariant at
// every quiescent point and at the end.
func TestQueueWaitCountNeverExceedsAdmissions(t *testing.T) {
	reg := stats.NewRegistry()
	g := newGate(2, 8, reg)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			if i%3 == 0 {
				// A third of the callers give up almost immediately.
				time.AfterFunc(time.Duration(i%5)*100*time.Microsecond, cancel)
			}
			defer cancel()
			if err := g.acquire(ctx); err != nil {
				return
			}
			time.Sleep(50 * time.Microsecond)
			g.release()
		}(i)
	}
	wg.Wait()
	snap := reg.Snapshot()
	adm, obs := snap.Get("serve.admitted"), snap.Get("serve.queue.wait.count")
	if obs != adm {
		t.Fatalf("queue.wait.count=%d admitted=%d, want equal at quiescence", obs, adm)
	}
	if got := snap.Get("serve.inflight"); got != 0 {
		t.Fatalf("serve.inflight = %d at quiescence, want 0", got)
	}
	if got := snap.Get("serve.queue.depth"); got != 0 {
		t.Fatalf("serve.queue.depth = %d at quiescence, want 0", got)
	}
}

// TestInflightNeverDipsDuringHandoff is the regression test for the
// release-ordering bug: release used to decrement serve.inflight before
// freeing the slot, so while a queued waiter was being admitted a metrics
// snapshot could read the gauge below the number of held slots (zero, with
// one worker and a full pipeline). Slot handoff now leaves the gauge
// untouched, so with a continuously busy single-worker gate a concurrent
// sampler must never read inflight outside {1} mid-chain, and never outside
// [0, workers] at all.
func TestInflightNeverDipsDuringHandoff(t *testing.T) {
	reg := stats.NewRegistry()
	g := newGate(1, 8, reg)
	inflight := reg.Snapshot // re-snapshot each probe

	// Sampler: record the minimum gauge value observed while the chain runs.
	stop := make(chan struct{})
	var minSeen atomic.Int64
	minSeen.Store(1 << 40)
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := inflight().Get("serve.inflight")
			for {
				cur := minSeen.Load()
				if v >= cur || minSeen.CompareAndSwap(cur, v) {
					break
				}
			}
		}
	}()

	// Build an unbroken handoff chain: the next acquirer is always queued
	// before the current holder releases, so a correctly-accounted gauge
	// holds the value 1 for the chain's whole lifetime.
	const handoffs = 60
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	for i := 0; i < handoffs; i++ {
		acquired := make(chan error, 1)
		go func() { acquired <- g.acquire(context.Background()) }()
		waitFor(t, func() bool { return reg.Snapshot().Get("serve.queue.depth") == 1 })
		g.release() // handoff: the queued waiter now holds the slot
		if err := <-acquired; err != nil {
			t.Fatalf("handoff %d: %v", i, err)
		}
	}
	close(stop)
	sampler.Wait()
	g.release()

	if got := minSeen.Load(); got < 1 {
		t.Fatalf("serve.inflight read %d during an unbroken handoff chain; the gauge dipped below the held-slot count", got)
	}
	if got := reg.Snapshot().Get("serve.inflight"); got != 0 {
		t.Fatalf("serve.inflight = %d after final release, want 0", got)
	}
	if err := reg.Check(); err != nil {
		t.Fatalf("registry invariants: %v", err)
	}
}

// TestGateHandoffIsFIFO pins the queue discipline: released slots go to the
// longest-waiting queued request, and a late-arriving caller cannot jump
// the queue through the fast path while waiters exist.
func TestGateHandoffIsFIFO(t *testing.T) {
	reg := stats.NewRegistry()
	g := newGate(1, 8, reg)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	const n = 4
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		ready := make(chan struct{})
		go func() {
			close(ready)
			if err := g.acquire(context.Background()); err == nil {
				order <- i
				g.release()
			}
		}()
		<-ready
		waitFor(t, func() bool {
			return reg.Snapshot().Get("serve.queue.depth") == int64(i+1)
		})
	}
	g.release()
	for want := 0; want < n; want++ {
		if got := <-order; got != want {
			t.Fatalf("admission order: got waiter %d in position %d, want FIFO", got, want)
		}
	}
}
