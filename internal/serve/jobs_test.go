package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tcor/internal/gpu"
	"tcor/internal/workload"
)

// fastSim (telemetry_test.go) is deterministic, so sync and async runs of
// the same request must produce byte-identical bodies.

const sweepBody = `{"items":[{"benchmark":"CCS","tileCacheKB":48},{"benchmark":"CCS","tileCacheKB":64}]}`

// pollJob polls the job API until the job reaches a terminal state.
func pollJob(t *testing.T, h http.Handler, key, id string) JobRecord {
	t.Helper()
	var rec JobRecord
	waitFor(t, func() bool {
		res := tenantHeaderReq(h, http.MethodGet, "/v1/jobs/"+id, "", key)
		if res.Code != 200 {
			t.Fatalf("GET job: %d %s", res.Code, res.Body)
		}
		var jr JobResponse
		if err := json.Unmarshal(res.Body.Bytes(), &jr); err != nil {
			t.Fatal(err)
		}
		rec = jr.Job
		return rec.State.terminal()
	})
	return rec
}

func submitAsync(t *testing.T, h http.Handler, path, body, key string, wantStatus int) JobRecord {
	t.Helper()
	res := tenantHeaderReq(h, http.MethodPost, path, body, key)
	if res.Code != wantStatus {
		t.Fatalf("POST %s = %d, want %d (body %s)", path, res.Code, wantStatus, res.Body)
	}
	var jr JobResponse
	if err := json.Unmarshal(res.Body.Bytes(), &jr); err != nil {
		t.Fatal(err)
	}
	return jr.Job
}

// TestAsyncSweepMatchesSync proves the tentpole equivalence: an async sweep's
// stored result is byte-identical to the synchronous response for the same
// body, submission is idempotent, and the job shows up in the tenant's list.
func TestAsyncSweepMatchesSync(t *testing.T) {
	s := NewServer(Options{JobsDir: t.TempDir()})
	s.simulate = fastSim
	h := s.Handler()

	syncRes := postJSON(h, "/v1/sweep", sweepBody)
	if syncRes.Code != 200 {
		t.Fatalf("sync sweep: %d %s", syncRes.Code, syncRes.Body)
	}

	job := submitAsync(t, h, "/v1/sweep?async=1", sweepBody, "", http.StatusAccepted)
	if job.ID == "" || job.Kind != JobKindSweep || job.TotalCells != 2 {
		t.Fatalf("job record = %+v", job)
	}
	if job.Tenant != DefaultTenantName {
		t.Fatalf("anonymous job charged to %q", job.Tenant)
	}

	// Idempotent resubmission: same credential + body = same job, 200.
	again := submitAsync(t, h, "/v1/sweep?async=1", sweepBody, "", http.StatusOK)
	if again.ID != job.ID {
		t.Fatalf("resubmission minted a new job %s (want %s)", again.ID, job.ID)
	}

	final := pollJob(t, h, "", job.ID)
	if final.State != JobDone || final.DoneCells != 2 {
		t.Fatalf("final record = %+v", final)
	}

	resultRes := getPath(h, "/v1/jobs/"+job.ID+"/result")
	if resultRes.Code != 200 {
		t.Fatalf("GET result: %d %s", resultRes.Code, resultRes.Body)
	}
	if !bytes.Equal(resultRes.Body.Bytes(), syncRes.Body.Bytes()) {
		t.Fatalf("async result differs from sync:\nasync: %s\nsync:  %s",
			resultRes.Body, syncRes.Body)
	}

	listRes := getPath(h, "/v1/jobs")
	var list JobsResponse
	if err := json.Unmarshal(listRes.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Fatalf("job list = %+v", list.Jobs)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestAsyncWithoutJobsDir(t *testing.T) {
	s := NewServer(Options{})
	s.simulate = fastSim
	rec := postJSON(s.Handler(), "/v1/sweep?async=1", sweepBody)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "jobs directory") {
		t.Fatalf("async without JobsDir: %d %s", rec.Code, rec.Body)
	}
}

// TestJobSurvivesRestart is the crash-resume drill at the package level: run
// one cell of a two-cell sweep, stop the server the hard way (Shutdown
// persists nothing — the on-disk state is exactly what a SIGKILL leaves:
// job.json says "running", the journal holds the completed cell), then start
// a fresh server on the same directory and watch the job finish with the
// first cell restored, not re-executed. CI repeats this with a literal
// SIGKILL of the tcord process.
func TestJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	var mu sync.Mutex
	computed := []string{}
	gateCh := make(chan struct{}) // blocks the second cell
	started := make(chan struct{}, 4)
	blockAfter := 1
	simA := func(ctx context.Context, scene *workload.Scene, cfg gpu.Config) (*gpu.Result, error) {
		mu.Lock()
		n := len(computed)
		computed = append(computed, fmt.Sprintf("%s/%d", scene.Spec.Alias, cfg.TileCacheBytes/1024))
		mu.Unlock()
		started <- struct{}{}
		if n >= blockAfter {
			select {
			case <-gateCh:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return fastSim(ctx, scene, cfg)
	}

	a := NewServer(Options{JobsDir: dir, JobWorkers: 1})
	a.simulate = simA
	ha := a.Handler()
	job := submitAsync(t, ha, "/v1/sweep?async=1", sweepBody, "", http.StatusAccepted)

	<-started // cell 1 computing
	<-started // cell 2 parked on gateCh => cell 1 journaled
	waitFor(t, func() bool {
		res := getPath(ha, "/v1/jobs/"+job.ID)
		var jr JobResponse
		if err := json.Unmarshal(res.Body.Bytes(), &jr); err != nil {
			t.Fatal(err)
		}
		return jr.Job.DoneCells == 1
	})
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Server B on the same store: the job must resume, restore cell 1 from
	// the journal and execute only cell 2.
	var muB sync.Mutex
	computedB := []string{}
	b := NewServer(Options{JobsDir: dir, JobWorkers: 1})
	b.simulate = func(ctx context.Context, scene *workload.Scene, cfg gpu.Config) (*gpu.Result, error) {
		muB.Lock()
		computedB = append(computedB, fmt.Sprintf("%s/%d", scene.Spec.Alias, cfg.TileCacheBytes/1024))
		muB.Unlock()
		return fastSim(ctx, scene, cfg)
	}
	hb := b.Handler()

	final := pollJob(t, hb, "", job.ID)
	if final.State != JobDone {
		t.Fatalf("resumed job ended %s (%+v)", final.State, final)
	}
	if final.RestoredCells != 1 || final.DoneCells != 2 {
		t.Fatalf("resume accounting = %+v, want 1 restored of 2", final)
	}
	muB.Lock()
	ran := append([]string(nil), computedB...)
	muB.Unlock()
	if len(ran) != 1 || ran[0] != "CCS/64" {
		t.Fatalf("server B re-executed %v, want only the unjournaled cell CCS/64", ran)
	}

	// Byte-identity across the crash: the resumed result equals what a
	// fresh synchronous run of the same body produces.
	syncRes := postJSON(hb, "/v1/sweep", sweepBody)
	resultRes := getPath(hb, "/v1/jobs/"+job.ID+"/result")
	if !bytes.Equal(resultRes.Body.Bytes(), syncRes.Body.Bytes()) {
		t.Fatalf("resumed result differs from sync:\nasync: %s\nsync:  %s",
			resultRes.Body, syncRes.Body)
	}
	if got := b.Registry().Snapshot().Get("serve.jobs.resumed"); got != 1 {
		t.Fatalf("serve.jobs.resumed = %d, want 1", got)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if err := b.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestJobCancel(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	defer close(release)

	s := NewServer(Options{JobsDir: t.TempDir(), JobWorkers: 1})
	s.simulate = blockingSim(started, release)
	h := s.Handler()

	job := submitAsync(t, h, "/v1/sweep?async=1", sweepBody, "", http.StatusAccepted)
	<-started // first cell is running

	del := httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+job.ID, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, del)
	if rec.Code != 200 {
		t.Fatalf("DELETE: %d %s", rec.Code, rec.Body)
	}

	final := pollJob(t, h, "", job.ID)
	if final.State != JobCancelled {
		t.Fatalf("state after cancel = %s", final.State)
	}

	// Cancelling a terminal job is a conflict, and its result never exists.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+job.ID, nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("second DELETE: %d", rec.Code)
	}
	if res := getPath(h, "/v1/jobs/"+job.ID+"/result"); res.Code != http.StatusConflict {
		t.Fatalf("result of cancelled job: %d", res.Code)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestJobTenantScoping pins the isolation wall: a job is visible only to the
// tenant that submitted it — other tenants see a uniform 404 and their own
// empty listings.
func TestJobTenantScoping(t *testing.T) {
	s := NewServer(Options{JobsDir: t.TempDir(), Tenants: testTenants(t)})
	s.simulate = fastSim
	h := s.Handler()

	job := submitAsync(t, h, "/v1/sweep?async=1", sweepBody, "key-alpha", http.StatusAccepted)
	if job.Tenant != "alpha" {
		t.Fatalf("job tenant = %q", job.Tenant)
	}
	pollJob(t, h, "key-alpha", job.ID)

	if res := tenantHeaderReq(h, http.MethodGet, "/v1/jobs/"+job.ID, "", "key-beta"); res.Code != 404 {
		t.Fatalf("cross-tenant GET: %d", res.Code)
	}
	if res := tenantHeaderReq(h, http.MethodDelete, "/v1/jobs/"+job.ID, "", "key-beta"); res.Code != 404 {
		t.Fatalf("cross-tenant DELETE: %d", res.Code)
	}
	if res := tenantHeaderReq(h, http.MethodGet, "/v1/jobs/"+job.ID+"/result", "", "key-beta"); res.Code != 404 {
		t.Fatalf("cross-tenant result: %d", res.Code)
	}
	var list JobsResponse
	res := tenantHeaderReq(h, http.MethodGet, "/v1/jobs", "", "key-beta")
	if err := json.Unmarshal(res.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 0 {
		t.Fatalf("beta sees alpha's jobs: %+v", list.Jobs)
	}

	// The same body under a different credential is a different job — async
	// results never leak across tenants through the content address.
	other := submitAsync(t, h, "/v1/sweep?async=1", sweepBody, "key-beta", http.StatusAccepted)
	if other.ID == job.ID {
		t.Fatal("two tenants share one job ID for the same body")
	}
}

// TestAsyncArenaJob runs the arena kind end to end on the real simulator
// but the smallest possible race (one benchmark, LRU only, tiny frame).
func TestAsyncArenaJob(t *testing.T) {
	if testing.Short() {
		t.Skip("arena race on the real simulator")
	}
	s := NewServer(Options{JobsDir: t.TempDir()})
	h := s.Handler()
	body := `{"policies":["LRU"],"benchmarks":["CCS"],"sizeKB":48}`

	job := submitAsync(t, h, "/v1/arena?async=1", body, "", http.StatusAccepted)
	if job.Kind != JobKindArena {
		t.Fatalf("job kind = %q", job.Kind)
	}
	final := pollJob(t, h, "", job.ID)
	if final.State != JobDone {
		t.Fatalf("arena job ended %s: %s", final.State, final.Error)
	}

	syncRes := postJSON(h, "/v1/arena", body)
	if syncRes.Code != 200 {
		t.Fatalf("sync arena: %d %s", syncRes.Code, syncRes.Body)
	}
	resultRes := getPath(h, "/v1/jobs/"+job.ID+"/result")
	if !bytes.Equal(resultRes.Body.Bytes(), syncRes.Body.Bytes()) {
		t.Fatal("async arena result differs from sync")
	}
}

// TestJobIDStability pins the content address the gateway recomputes for
// routing: kind, credential and compacted body, nothing else.
func TestJobIDStability(t *testing.T) {
	id := JobID(JobKindSweep, "key-alpha", []byte(sweepBody))
	if id != JobID(JobKindSweep, "key-alpha", []byte(sweepBody)) {
		t.Fatal("JobID is not deterministic")
	}
	spaced := strings.ReplaceAll(sweepBody, ",", " ,")
	if id != JobID(JobKindSweep, "key-alpha", []byte(spaced)) {
		t.Fatal("JobID is not whitespace-insensitive")
	}
	if id == JobID(JobKindSweep, "key-beta", []byte(sweepBody)) {
		t.Fatal("JobID ignores the credential")
	}
	if id == JobID(JobKindArena, "key-alpha", []byte(sweepBody)) {
		t.Fatal("JobID ignores the kind")
	}
	if len(id) != 32 {
		t.Fatalf("JobID length %d, want 32", len(id))
	}
}
