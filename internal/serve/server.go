package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tcor/internal/buildinfo"
	"tcor/internal/experiments"
	"tcor/internal/geom"
	"tcor/internal/gpu"
	"tcor/internal/resilience"
	"tcor/internal/stats"
	"tcor/internal/workload"
)

// Options configures a Server. The zero value is production-usable: every
// limit falls back to the default documented on its field.
type Options struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker slot; the excess is
	// rejected with 429 + Retry-After (0 = 64, negative = no queue).
	QueueDepth int
	// CacheEntries bounds the result cache in entries, evicted LRU
	// (0 = 256, negative = unbounded).
	CacheEntries int
	// DefaultTimeout is the per-request deadline when the request does not
	// carry one (0 = 60s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied deadlines (0 = 10m).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies; larger ones get 413 (0 = 1 MiB).
	MaxBodyBytes int64
	// MaxFrames bounds the frames one simulation may run (0 = 32).
	MaxFrames int
	// MaxSweepItems bounds the items of one /v1/sweep (0 = 64).
	MaxSweepItems int
	// Registry receives every serving-layer metric (queue depth, in-flight
	// gauge, cache hit/miss/eviction counts, rejections, panics, latency
	// histograms); nil means a private registry, readable via
	// Server.Registry. Pass it to stats.PublishExpvar to surface the daemon
	// on the debug server; GET /metrics always serves it as Prometheus text.
	Registry *stats.Registry
	// Logger receives the structured access log (one line per request with
	// request ID, queue wait, cache disposition, status and duration) and
	// lifecycle events. Nil falls back to a bridge over Logf when that is
	// set, else logs are discarded.
	Logger *slog.Logger
	// Logf, when non-nil, receives one line per lifecycle event. Deprecated
	// in favor of Logger; kept so existing callers keep their output.
	Logf func(format string, args ...any)
	// TraceCapacity bounds the in-memory span trace behind GET /debug/trace
	// (0 = 4096 spans, negative = tracing disabled). Once full, further
	// spans are dropped, never blocking a request.
	TraceCapacity int
	// Chaos, when non-nil, is a fault injector the serving stack evaluates
	// at its well-known sites (resilience.SiteHTTP once per request,
	// resilience.SiteSimulate inside the compute path). Arm sites on it
	// before passing it in; nil disables injection with zero cost.
	Chaos *resilience.Injector
	// Breaker, when non-nil, guards the simulation path with a circuit
	// breaker: repeated compute failures open it, open-state requests are
	// answered 503 (code "breaker_open") or served bounded-stale from the
	// cache, and /readyz reports degraded. Nil disables the breaker.
	Breaker *resilience.BreakerConfig
	// CacheTTL bounds a cached result's freshness; an expired entry is
	// recomputed on next use (0 = entries stay fresh forever, the historical
	// behavior).
	CacheTTL time.Duration
	// MaxStale bounds how far past CacheTTL an expired entry may still be
	// served while the breaker is open (0 = never serve stale). Stale
	// responses carry X-Tcord-Cache: stale and a Warning header.
	MaxStale time.Duration
	// Clock is the time source for cache expiry and breaker cooldowns
	// (nil = wall clock). Tests pass a resilience.FakeClock.
	Clock resilience.Clock
	// TileParallel, when >1, runs each simulation's per-tile raster
	// planning on that many workers (gpu.Config.TileParallel). Results are
	// byte-identical at every level and the field is excluded from config
	// JSON, so cache keys are unaffected: a daemon restarted with a
	// different value keeps hitting the same entries.
	TileParallel int
	// Tenants is the multi-tenant roster (see ParseTenants). Nil means a
	// single anonymous tenant owning the whole machine — the untenanted
	// server's exact behavior.
	Tenants *TenantSet
	// JobsDir, when non-empty, enables the durable async job API
	// (POST /v1/sweep?async=1, /v1/arena?async=1, GET/DELETE /v1/jobs/...):
	// each job persists its progress under JobsDir/<id>/ through the
	// experiments checkpoint journal, and a restarted daemon rescans the
	// directory and resumes incomplete jobs. Empty disables async requests
	// (they answer 400).
	JobsDir string
	// JobWorkers bounds concurrently executing background jobs
	// (0 = max(1, Workers/2), negative = 1). Jobs run off the sync
	// admission path, so a saturated job pool never starves interactive
	// requests of worker slots.
	JobWorkers int
}

// withDefaults resolves the zero values.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case o.QueueDepth == 0:
		o.QueueDepth = 64
	case o.QueueDepth < 0:
		o.QueueDepth = 0
	}
	switch {
	case o.CacheEntries == 0:
		o.CacheEntries = 256
	case o.CacheEntries < 0:
		o.CacheEntries = 0 // unbounded
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 10 * time.Minute
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxFrames == 0 {
		o.MaxFrames = 32
	}
	if o.MaxSweepItems == 0 {
		o.MaxSweepItems = 64
	}
	if o.Registry == nil {
		o.Registry = stats.NewRegistry()
	}
	if o.Logger == nil {
		if o.Logf != nil {
			o.Logger = slog.New(logfHandler{logf: o.Logf})
		} else {
			o.Logger = slog.New(slog.DiscardHandler)
		}
	}
	switch {
	case o.TraceCapacity == 0:
		o.TraceCapacity = 4096
	case o.TraceCapacity < 0:
		o.TraceCapacity = 0 // disabled; NewTracer returns the nil no-op
	}
	if o.Clock == nil {
		o.Clock = resilience.Wall()
	}
	if o.Tenants == nil {
		o.Tenants = DefaultTenants()
	}
	switch {
	case o.JobWorkers == 0:
		o.JobWorkers = max(1, o.Workers/2)
	case o.JobWorkers < 0:
		o.JobWorkers = 1
	}
	return o
}

// logfHandler adapts a legacy Logf sink into a slog.Handler: message first,
// then space-separated key=value attrs. It keeps pre-slog callers readable
// without duplicating log paths.
type logfHandler struct {
	logf func(format string, args ...any)
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h logfHandler) WithGroup(string) slog.Handler      { return h }

// Server is the simulation service: an http.Handler plus the admission
// gate, result cache and lifecycle state behind it. Create with NewServer;
// either mount Handler on an existing server or call Start/Shutdown.
type Server struct {
	opts    Options
	reg     *stats.Registry
	gate    *gate
	cache   *resultCache
	mux     *http.ServeMux
	logger  *slog.Logger
	tracer  *stats.Tracer // nil when TraceCapacity < 0
	chaos   *resilience.Injector
	brk     *resilience.Breaker // nil when Options.Breaker is nil
	clock   resilience.Clock
	tenants *TenantSet
	jobs    *jobManager // nil when JobsDir is empty
	jobsErr error       // a failed job-store init; async requests answer it

	draining atomic.Bool
	httpSrv  *http.Server

	// The arena endpoint's state: its own content-addressed report cache
	// (never sharing entries with the simulate cache — the value shapes
	// differ) and a lazily built, memo-bounded experiment runner.
	arenaCache *resultCache
	arenaOnce  sync.Once
	arenaR     *experiments.Runner

	requests  *stats.Counter
	responses map[int]*stats.Counter // status class -> counter (2,4,5)
	panics    *stats.Counter
	simOK     *stats.Counter
	simFailed *stats.Counter
	latency   *stats.Histogram // whole-request wall time, ns
	simDur    *stats.Histogram // simulation compute time, ns
	encodeDur *stats.Histogram // result-encoding time, ns

	arenaOK     *stats.Counter
	arenaFailed *stats.Counter
	arenaDur    *stats.Histogram // arena race compute time, ns

	brkState *stats.Gauge   // breaker position (0 closed, 1 open, 2 half-open)
	brkTrans *stats.Counter // breaker state transitions
	brkShort *stats.Counter // calls short-circuited by an open breaker

	// simulate is the compute the worker pool runs; tests swap it to make
	// duration and cancellation observable. The default is gpu.Simulate,
	// which is ctx-blind: cancellation takes effect in the queue and
	// between sweep items, never mid-frame.
	simulate func(ctx context.Context, scene *workload.Scene, cfg gpu.Config) (*gpu.Result, error)
}

// NewServer builds a Server from opts.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	reg := opts.Registry
	s := &Server{
		opts:  opts,
		reg:   reg,
		gate:  newGate(opts.Workers, opts.QueueDepth, opts.Tenants, opts.Clock, reg),
		cache: newResultCache(opts.CacheEntries, opts.CacheTTL, opts.MaxStale, opts.Clock, opts.Tenants, reg, "serve.cache"),
		// Arena reports are a few KiB each and deterministic, so entries
		// stay fresh forever under the same LRU bound as the simulate cache.
		arenaCache: newResultCache(opts.CacheEntries, 0, 0, opts.Clock, opts.Tenants, reg, "serve.arena.cache"),
		logger:     opts.Logger,
		tracer:     stats.NewTracer(opts.TraceCapacity),
		chaos:      opts.Chaos,
		clock:      opts.Clock,
		tenants:    opts.Tenants,

		requests: reg.Counter("serve.http.requests"),
		responses: map[int]*stats.Counter{
			2: reg.Counter("serve.http.responses.2xx"),
			4: reg.Counter("serve.http.responses.4xx"),
			5: reg.Counter("serve.http.responses.5xx"),
		},
		panics:    reg.Counter("serve.panics"),
		simOK:     reg.Counter("serve.simulations.completed"),
		simFailed: reg.Counter("serve.simulations.failed"),
		latency:   reg.Histogram("serve.http.latency"),
		simDur:    reg.Histogram("serve.sim.duration"),
		encodeDur: reg.Histogram("serve.encode.duration"),

		arenaOK:     reg.Counter("serve.arena.races.completed"),
		arenaFailed: reg.Counter("serve.arena.races.failed"),
		arenaDur:    reg.Histogram("serve.arena.duration"),

		brkState: reg.Gauge("serve.breaker.state"),
		brkTrans: reg.Counter("serve.breaker.transitions"),
		brkShort: reg.Counter("serve.breaker.shortCircuits"),
		simulate: func(_ context.Context, scene *workload.Scene, cfg gpu.Config) (*gpu.Result, error) {
			return gpu.Simulate(scene, cfg)
		},
	}
	if opts.Breaker != nil {
		// Chain the caller's observer behind the server's metering: the
		// state gauge and transition counter move on every change, and the
		// transition lands in the structured log.
		cfg := *opts.Breaker
		if cfg.Clock == nil {
			cfg.Clock = opts.Clock
		}
		prev := cfg.OnTransition
		cfg.OnTransition = func(from, to resilience.BreakerState) {
			s.brkState.Set(int64(to))
			s.brkTrans.Inc()
			s.logger.Warn("breaker transition", "from", from.String(), "to", to.String())
			if prev != nil {
				prev(from, to)
			}
		}
		s.brk = resilience.NewBreaker(cfg)
	}
	// Buffer overflow in the bounded tracer is silent at the Tracer level;
	// publish it so a fleet scrape can see span loss per process.
	s.tracer.MeterDropped(reg.Counter("trace.dropped"))
	if opts.JobsDir != "" {
		jm, err := newJobManager(s, opts.JobsDir, opts.JobWorkers)
		if err != nil {
			// The daemon stays up (the sync API is unaffected); async
			// submissions answer the stored error. cmd/tcord checks
			// JobsInitError at startup and refuses to run this degraded.
			s.jobsErr = err
			s.logger.Error("job store init failed", "dir", opts.JobsDir, "err", err)
		} else {
			s.jobs = jm
		}
	}
	s.registerInvariants()

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/version", s.handleVersion)
	mux.HandleFunc("/v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/simulate", s.handleSimulate)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/arena", s.handleArena)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.Handle("/metrics", stats.MetricsHandler("tcord", reg))
	mux.HandleFunc("/debug/trace", s.handleDebugTrace)
	s.mux = mux
	if s.jobs != nil {
		// Resume incomplete jobs only after the mux is live: a resumed job
		// runs through the same compute path a fresh one does.
		s.jobs.resumeLoaded()
	}
	return s
}

// JobsInitError reports a failed durable-job-store initialization (an
// unreadable JobsDir, a torn job file that could not be quarantined). The
// server still serves the sync API; callers that require durable jobs
// should treat this as fatal.
func (s *Server) JobsInitError() error { return s.jobsErr }

// registerInvariants wires the serving-layer accounting identities into the
// registry. They are all inequalities over single atomic words, so a
// snapshot taken mid-request cannot trip them spuriously.
func (s *Server) registerInvariants() {
	workers, queue, cacheCap := int64(s.opts.Workers), int64(s.opts.QueueDepth), int64(s.opts.CacheEntries)
	s.reg.RegisterInvariant("serve.inflightBounded", func(snap stats.Snapshot) error {
		if got := snap.Get("serve.inflight"); got < 0 || got > workers {
			return fmt.Errorf("in-flight simulations %d outside [0,%d]", got, workers)
		}
		return nil
	})
	// The global queue bound is the sum of the per-tenant bounds: each
	// tenant queues at most its own MaxQueued (QueueDepth when unset).
	var queueTotal int64
	for _, t := range s.tenants.Tenants() {
		if t.MaxQueued > 0 {
			queueTotal += int64(t.MaxQueued)
		} else {
			queueTotal += queue
		}
	}
	s.reg.RegisterInvariant("serve.queueBounded", func(snap stats.Snapshot) error {
		if got := snap.Get("serve.queue.depth"); got < 0 || got > queueTotal {
			return fmt.Errorf("queue depth %d outside [0,%d]", got, queueTotal)
		}
		return nil
	})
	for _, t := range s.tenants.Tenants() {
		t := t
		prefix := "serve.tenant." + t.Name + "."
		s.reg.RegisterInvariant(prefix+"admissionsBounded", func(snap stats.Snapshot) error {
			// A tenant's admissions are a subset of the gate's.
			if ten, all := snap.Get(prefix+"admitted"), snap.Get("serve.admitted"); ten > all {
				return fmt.Errorf("tenant admissions %d exceed total %d", ten, all)
			}
			return nil
		})
		if t.MaxInflight > 0 {
			capT := int64(t.MaxInflight)
			s.reg.RegisterInvariant(prefix+"inflightCapped", func(snap stats.Snapshot) error {
				if got := snap.Get(prefix + "inflight"); got < 0 || got > capT {
					return fmt.Errorf("tenant in-flight %d outside [0,%d]", got, capT)
				}
				return nil
			})
		}
	}
	// Per-tenant cache charges partition the cache: their sum is the total
	// size. Both sides mutate under the cache mutex and Check runs at
	// quiescent points (shutdown post-drain, test ends), so equality holds.
	for _, prefix := range []string{"serve.cache", "serve.arena.cache"} {
		prefix := prefix
		s.reg.RegisterInvariant(prefix+".tenantChargesSum", func(snap stats.Snapshot) error {
			var sum int64
			for _, t := range s.tenants.Tenants() {
				sum += snap.Get(prefix + ".tenant." + t.Name + ".size")
			}
			if total := snap.Get(prefix + ".size"); sum != total {
				return fmt.Errorf("per-tenant cache charges sum to %d, total size is %d", sum, total)
			}
			return nil
		})
	}
	if s.jobs != nil {
		s.reg.RegisterInvariant("serve.jobs.conservation", func(snap stats.Snapshot) error {
			// Every created job is in exactly one state; Check runs at
			// quiescent points, so the partition is exact.
			sum := snap.Get("serve.jobs.queued") + snap.Get("serve.jobs.running") +
				snap.Get("serve.jobs.done") + snap.Get("serve.jobs.failed") +
				snap.Get("serve.jobs.cancelled")
			if created := snap.Get("serve.jobs.created"); sum != created {
				return fmt.Errorf("job states sum to %d, created is %d", sum, created)
			}
			return nil
		})
	}
	s.reg.RegisterInvariant("serve.cacheBounded", func(snap stats.Snapshot) error {
		if got := snap.Get("serve.cache.size"); got < 0 || (cacheCap > 0 && got > cacheCap) {
			return fmt.Errorf("cache size %d outside [0,%d]", got, cacheCap)
		}
		return nil
	})
	s.reg.RegisterInvariant("serve.cacheEvictionsBounded", func(snap stats.Snapshot) error {
		// Every eviction displaced an entry some miss inserted.
		if ev, miss := snap.Get("serve.cache.evictions"), snap.Get("serve.cache.misses"); ev > miss {
			return fmt.Errorf("cache evictions %d exceed misses %d", ev, miss)
		}
		return nil
	})
	s.reg.RegisterInvariant("serve.arenaCacheBounded", func(snap stats.Snapshot) error {
		if got := snap.Get("serve.arena.cache.size"); got < 0 || (cacheCap > 0 && got > cacheCap) {
			return fmt.Errorf("arena cache size %d outside [0,%d]", got, cacheCap)
		}
		return nil
	})
	s.reg.RegisterInvariant("serve.arenaRacesBounded", func(snap stats.Snapshot) error {
		// Every race outcome followed an arena-cache miss that led the
		// compute (hits and coalesced waiters never race).
		done := snap.Get("serve.arena.races.completed") + snap.Get("serve.arena.races.failed")
		if miss := snap.Get("serve.arena.cache.misses"); done > miss {
			return fmt.Errorf("arena race outcomes %d exceed cache misses %d", done, miss)
		}
		return nil
	})
	s.reg.RegisterInvariant("serve.simulationsBounded", func(snap stats.Snapshot) error {
		// Completions and failures are subsets of simulation starts: gate
		// admissions for sync requests, cell-simulation starts for
		// background jobs (both increment before either outcome).
		done := snap.Get("serve.simulations.completed") + snap.Get("serve.simulations.failed")
		started := snap.Get("serve.admitted") + snap.Get("serve.jobs.cells.simulations")
		if done > started {
			return fmt.Errorf("simulation outcomes %d exceed starts %d", done, started)
		}
		return nil
	})
	s.reg.RegisterInvariant("serve.breakerState", func(snap stats.Snapshot) error {
		if got := snap.Get("serve.breaker.state"); got < 0 || got > 2 {
			return fmt.Errorf("breaker state %d outside [0,2]", got)
		}
		return nil
	})
	s.reg.RegisterInvariant("serve.staleServesNeedHits", func(snap stats.Snapshot) error {
		// Every stale serve re-reads an entry some miss once completed; a
		// cache that was never filled cannot serve stale.
		if stale, miss := snap.Get("serve.cache.staleServes"), snap.Get("serve.cache.misses"); stale > 0 && miss == 0 {
			return fmt.Errorf("stale serves %d with zero misses", stale)
		}
		return nil
	})
	s.reg.RegisterInvariant("serve.queueWaitMatchesAdmissions", func(snap stats.Snapshot) error {
		// The admission-wait histogram observes successful admissions only
		// (canceled waiters meter serve.queue.canceledWait instead), and the
		// admitted counter always moves before the observation: a snapshot
		// can read fewer observations than admissions, never more.
		if obs, adm := snap.Get("serve.queue.wait.count"), snap.Get("serve.admitted"); obs > adm {
			return fmt.Errorf("queue-wait observations %d exceed admissions %d", obs, adm)
		}
		return nil
	})
	s.reg.RegisterInvariant("serve.cacheRetainedBounded", func(snap stats.Snapshot) error {
		// Every retention restores an entry that a TTL expiry dropped for
		// recompute moments earlier.
		if ret, exp := snap.Get("serve.cache.retained"), snap.Get("serve.cache.expired"); ret > exp {
			return fmt.Errorf("cache retentions %d exceed expiries %d", ret, exp)
		}
		return nil
	})
	s.reg.RegisterInvariant("serve.latencyObservations", func(snap stats.Snapshot) error {
		// Every finished request observes the latency histogram exactly
		// once, after the request counter moved; a mid-request snapshot can
		// only see fewer observations than requests.
		if obs, req := snap.Get("serve.http.latency.count"), snap.Get("serve.http.requests"); obs > req {
			return fmt.Errorf("latency observations %d exceed requests %d", obs, req)
		}
		return nil
	})
}

// Registry returns the serving-layer metrics registry.
func (s *Server) Registry() *stats.Registry { return s.reg }

// CheckInvariants verifies the serving-layer accounting identities.
func (s *Server) CheckInvariants() error { return s.reg.Check() }

// Handler returns the service's root handler with the panic-isolation and
// metering middleware applied. Mount it anywhere an http.Handler goes
// (httptest servers, an existing mux) — lifecycle then belongs to the host.
func (s *Server) Handler() http.Handler { return s.middleware(s.mux) }

// Start listens on addr (host:port; ":0" picks a free port) and serves in
// the background, returning the bound address. Pair with Shutdown.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Shutdown
	s.logger.Info("listening", "addr", ln.Addr().String())
	return ln.Addr().String(), nil
}

// Shutdown drains the server gracefully: readiness flips to 503, new
// simulations are refused, and in-flight requests (including queued ones)
// run to completion before Shutdown returns. ctx bounds the drain; its
// expiry abandons the stragglers and returns their error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.logger.Info("draining")
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	if s.jobs != nil {
		// Interrupted jobs stay "running" on disk; the next start resumes
		// them from their checkpoint journals.
		s.jobs.stop()
	}
	s.logger.Info("drained")
	return err
}

// statusRecorder captures the response status for the metering middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// middleware is the telemetry and safety shell around every request: it
// isolates handler panics (a panicking request answers 500 and increments
// serve.panics; the daemon keeps serving), meters request and response
// class counters plus the latency histogram, mints or honors the
// X-Request-Id header (echoed on the response and propagated through the
// request context into spans and the admission gate), records a root span
// per request, and emits one structured access-log line carrying request
// ID, method, path, status, duration, queue wait and cache disposition.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.requests.Inc()

		id := r.Header.Get(RequestIDHeader)
		if id == "" || len(id) > maxRequestIDLen {
			id = MintRequestID()
		}
		w.Header().Set(RequestIDHeader, id)

		meta := &requestMeta{}
		// Join the caller's trace when a valid traceparent arrived (the
		// gateway or typed client injects one per hop); otherwise this
		// process is the trace root. The response echoes the request's own
		// trace context so callers — and CI — can fetch the stitched trace
		// for a request they just made.
		var sp *stats.Span
		if parent, ok := stats.ExtractTraceparent(r.Header); ok {
			sp = s.tracer.BeginRemote("http.request", "serve", parent)
		} else {
			sp = s.tracer.Begin("http.request", "serve")
		}
		stats.InjectTraceparent(w.Header(), sp.Context())
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		sp.SetAttr("requestId", id)

		// Resolve the caller's tenant before anything can queue or cache:
		// an unknown credential is a hard 401 (never a silent fallback to
		// the default tenant's quota), and the resolved tenant rides the
		// context into the admission gate, the result cache and the span.
		tenant, tenantErr := s.tenants.Resolve(TenantKeyFromRequest(r))
		if tenant == nil {
			tenant = s.tenants.Default() // for the log line only
		}
		sp.SetAttr("tenant", tenant.Name)

		ctx := ContextWithRequestID(r.Context(), id)
		ctx = contextWithMeta(ctx, meta)
		ctx = stats.ContextWithTracer(ctx, s.tracer)
		ctx = stats.ContextWithSpan(ctx, sp)
		ctx = contextWithTenant(ctx, tenant)
		r = r.WithContext(ctx)

		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				s.panics.Inc()
				s.logger.Error("panic", "id", id, "method", r.Method,
					"path", r.URL.Path, "panic", fmt.Sprint(p))
				if rec.status == 0 {
					s.writeError(rec, &apiError{status: http.StatusInternalServerError,
						code: "internal_panic", msg: "internal error"})
				}
			}
			if rec.status == 0 {
				// The handler wrote nothing (e.g. a body-less 200).
				rec.status = http.StatusOK
			}
			if c := s.responses[rec.status/100]; c != nil {
				c.Inc()
			}
			dur := time.Since(t0)
			s.latency.Observe(int64(dur))
			wait, disposition := meta.snapshot()
			sp.SetAttr("status", strconv.Itoa(rec.status))
			sp.SetAttr("cache", disposition)
			sp.End()
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("id", id),
				slog.String("tenant", tenant.Name),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Duration("dur", dur),
				slog.Duration("queueWait", wait),
				slog.String("cache", disposition))
		}()

		if tenantErr != nil {
			s.reg.Counter("serve.rejected.unknownTenant").Inc()
			s.writeError(rec, tenantErr)
			return
		}
		s.reg.Counter("serve.tenant." + tenant.Name + ".requests").Inc()

		// Chaos hook: with SiteHTTP armed, a request may absorb injected
		// latency, answer an injected status, or panic into the recovery
		// above — all before the handler, so an injected fault can never
		// reach the result cache. The nil injector costs one branch.
		// Health, metrics, stats and debug endpoints are exempt — checked
		// before Evaluate so they neither consume a slot in the seeded
		// schedule nor tick the injected counter: a drill needs a
		// fault-free observability surface to be measurable, and a faulted
		// /readyz would flap load balancers rather than exercise the API
		// path under test.
		if f := s.chaosEvaluate(r.URL.Path); f.Inject {
			if f.Latency > 0 {
				if err := s.clock.Sleep(ctx, f.Latency); err != nil {
					s.writeError(rec, err) // client gone mid-injected-latency
					return
				}
			}
			if f.Panic {
				panic("resilience: injected panic at " + resilience.SiteHTTP)
			}
			if f.Err != nil {
				status := f.Code
				if status == 0 {
					status = http.StatusInternalServerError
				}
				s.writeError(rec, &apiError{status: status, code: "injected_fault",
					msg: "injected fault (chaos mode)"})
				return
			}
			// Latency-only: fall through to the real handler.
		}
		next.ServeHTTP(rec, r)
	})
}

// chaosEvaluate draws the next SiteHTTP fault decision for a request to
// path, exempting the observability surface (health, readiness, metrics,
// stats, debug). Exempt paths never reach the injector, so they do not
// advance the seeded fault schedule: the Nth API request sees the same
// decision regardless of how many probes were interleaved.
func (s *Server) chaosEvaluate(path string) resilience.Fault {
	switch path {
	case "/healthz", "/readyz", "/metrics", "/v1/stats":
		return resilience.Fault{}
	}
	if strings.HasPrefix(path, "/debug/") {
		return resilience.Fault{}
	}
	return s.chaos.Evaluate(resilience.SiteHTTP)
}

// handleDebugTrace serves the daemon's span trace. Without parameters it
// renders the whole buffer as Chrome trace_event JSON (chrome://tracing,
// Perfetto) — the historical shape CI pins. With ?trace=<32-hex-id> it
// serves the raw span records of that one trace as a stats.TraceSet, the
// pull path the gateway's cluster collector stitches from. With tracing
// disabled both shapes are empty rather than errors, so scrapers need no
// config knowledge.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, methodNotAllowed(http.MethodGet))
		return
	}
	if q := r.URL.Query().Get("trace"); q != "" {
		id, err := stats.ParseTraceID(q)
		if err != nil {
			s.writeError(w, badRequest("trace parameter: %v", err))
			return
		}
		s.writeJSON(w, s.tracer.TraceSet("", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.tracer.WriteChromeTrace(w); err != nil {
		s.logger.Error("trace export", "err", err)
	}
}

// Tracer returns the server's span tracer (nil when tracing is disabled).
func (s *Server) Tracer() *stats.Tracer { return s.tracer }

// --- plumbing endpoints ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	if s.brk.State() == resilience.Open {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "degraded: circuit open\n")
		return
	}
	io.WriteString(w, "ready\n")
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, methodNotAllowed(http.MethodGet))
		return
	}
	s.writeJSON(w, buildinfo.Get())
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, methodNotAllowed(http.MethodGet))
		return
	}
	s.writeJSON(w, Benchmarks())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, methodNotAllowed(http.MethodGet))
		return
	}
	s.writeJSON(w, s.reg.Snapshot())
}

// --- simulation endpoints ---

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if _, ok := s.beginSim(w, r, &req); !ok {
		return
	}

	j, err := s.resolve(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if r.Header.Get(CacheOnlyHeader) != "" {
		// Peer probe: answer from the completed cache or not at all. No
		// admission, no simulation — a probing gateway must never turn a
		// cheap lookup into a second copy of the owner's work.
		val, how, ok := s.cache.peek(j.key)
		if !ok {
			s.writeError(w, &apiError{status: http.StatusNotFound,
				code: "cache_miss", msg: "result not cached"})
			return
		}
		metaFrom(r.Context()).noteOutcome(how)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Tcord-Cache", string(how))
		if how == outcomeStale {
			w.Header().Set("Warning", `110 tcord "response is stale"`)
		}
		w.Write(val.body)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	val, how, err := s.runJob(ctx, j)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if j.check {
		if err := val.res.CheckInvariants(); err != nil {
			s.writeError(w, &apiError{status: http.StatusInternalServerError,
				code: "invariant_violation", msg: err.Error()})
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tcord-Cache", string(how))
	if how == outcomeStale {
		w.Header().Set("Warning", `110 tcord "response is stale"`)
	}
	w.Write(val.body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	body, ok := s.beginSim(w, r, &req)
	if !ok {
		return
	}

	if len(req.Items) == 0 {
		s.writeError(w, badRequest("sweep needs at least one item"))
		return
	}
	if len(req.Items) > s.opts.MaxSweepItems {
		s.writeError(w, badRequest("sweep has %d items; the server limit is %d",
			len(req.Items), s.opts.MaxSweepItems))
		return
	}
	jobs := make([]job, len(req.Items))
	var timeoutMs int
	for i, item := range req.Items {
		j, err := s.resolve(item)
		if err != nil {
			s.writeError(w, badRequest("item %d: %v", i, err))
			return
		}
		jobs[i] = j
		if item.TimeoutMs > timeoutMs {
			timeoutMs = item.TimeoutMs
		}
	}
	if AsyncRequested(r) {
		// The request is fully validated; hand it to the durable job
		// subsystem and answer with the job record immediately.
		s.submitJob(w, r, JobKindSweep, body)
		return
	}
	ctx, cancel := s.requestContext(r, timeoutMs)
	defer cancel()

	// The items fan out through the same bounded pool the experiment
	// harness uses; each one still passes the admission gate and the
	// result cache, so a sweep is exactly N simulate calls with shared
	// scheduling and deterministic (item-order) results.
	var anyStale atomic.Bool
	runs, err := experiments.SweepSlice(ctx, s.opts.Workers, jobs,
		func(ctx context.Context, j job) (json.RawMessage, error) {
			val, how, err := s.runJob(ctx, j)
			if err != nil {
				return nil, err
			}
			if how == outcomeStale {
				anyStale.Store(true)
			}
			if j.check {
				if err := val.res.CheckInvariants(); err != nil {
					return nil, &apiError{status: http.StatusInternalServerError,
						code: "invariant_violation", msg: err.Error()}
				}
			}
			// Trim the canonical trailing newline: the bodies embed into
			// the runs array, where encoding/json would compact it anyway.
			return json.RawMessage(string(val.body[:len(val.body)-1])), nil
		})
	if err != nil {
		s.writeError(w, err)
		return
	}
	if anyStale.Load() {
		w.Header().Set("Warning", `110 tcord "response includes stale items"`)
	}
	s.writeJSON(w, SweepResponse{Runs: runs})
}

// beginSim is the shared front door of the simulation endpoints: method
// check, drain check, bounded body read, strict decode. It returns the raw
// body (the async job path content-addresses it) and false after writing
// the error response itself.
func (s *Server) beginSim(w http.ResponseWriter, r *http.Request, into any) ([]byte, bool) {
	if r.Method != http.MethodPost {
		s.writeError(w, methodNotAllowed(http.MethodPost))
		return nil, false
	}
	if s.draining.Load() {
		s.writeError(w, errDraining)
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, &apiError{status: http.StatusRequestEntityTooLarge,
				code: "body_too_large",
				msg:  fmt.Sprintf("request body exceeds %d bytes", s.opts.MaxBodyBytes)})
		} else {
			s.writeError(w, badRequest("reading request body: %v", err))
		}
		return nil, false
	}
	if err := decodeStrict(body, into); err != nil {
		s.writeError(w, err)
		return nil, false
	}
	return body, true
}

// AsyncRequested reports whether the request asked for the durable-job
// path (?async=1 or ?async=true). Exported so the cluster gateway applies
// the exact same test before routing a submission to a shard.
func AsyncRequested(r *http.Request) bool {
	switch r.URL.Query().Get("async") {
	case "1", "true":
		return true
	}
	return false
}

// requestContext derives the per-request deadline: the request-supplied
// timeout clamped to MaxTimeout, falling back to DefaultTimeout.
func (s *Server) requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// runJob serves one resolved simulation through the cache, the singleflight
// table and the admission gate, in that order: a cached result costs no
// worker slot, a coalesced waiter rides the leader's slot, and only a true
// miss enters the queue. The compute path is guarded by the circuit
// breaker (when configured): an open breaker short-circuits to 503 before
// a worker slot is consumed, and the cache may then serve bounded-stale
// entries instead. The cache disposition is noted on the request's meta
// for the access log.
func (s *Server) runJob(ctx context.Context, j job) (cached, outcome, error) {
	val, how, err := s.cache.get(ctx, j.key, s.breakerOpen, func() (cached, error) {
		done, allowErr := s.brk.Allow()
		if allowErr != nil {
			s.brkShort.Inc()
			ae := &apiError{status: http.StatusServiceUnavailable, code: "breaker_open",
				msg: "simulation path unavailable (circuit open); retry later"}
			var oe *resilience.OpenError
			if errors.As(allowErr, &oe) {
				ae.retryAfter = oe.RetryIn
			}
			return cached{}, ae
		}
		// The breaker must observe exactly one outcome per admitted call,
		// panics included: an escaping panic (an injected one, or a bug in
		// the simulator) records as a failure on the way out; the normal
		// path commits first and records its classified outcome.
		committed := false
		defer func() {
			if !committed {
				done(errComputePanicked)
			}
		}()
		val, err := s.computeJob(ctx, j)
		committed = true
		done(breakerOutcome(err))
		return val, err
	})
	if err == nil {
		metaFrom(ctx).noteOutcome(how)
	}
	return val, how, err
}

// breakerOpen reports whether the simulate path's breaker is open — the
// cache's license to serve bounded-stale entries.
func (s *Server) breakerOpen() bool { return s.brk.State() == resilience.Open }

// breakerOutcome classifies a compute error for the circuit breaker. Only
// failures of the simulation path itself count against it: cancellations
// and client-attributable rejections (4xx, including queue-full 429s, which
// admission already handles) say nothing about the path's health.
func breakerOutcome(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return resilience.Ignore
	}
	var ae *apiError
	if errors.As(err, &ae) && ae.status < 500 {
		return resilience.Ignore
	}
	return err
}

// computeJob is the cache-miss leader's work: admission through the
// fair-share gate, then the ungated cell compute. A queue-full rejection is
// decorated with the caller tenant's own Retry-After — sized from that
// tenant's backlog, not the whole machine's.
func (s *Server) computeJob(ctx context.Context, j job) (cached, error) {
	rel, err := s.gate.acquire(ctx)
	if err != nil {
		if err == errQueueFull {
			qe := *errQueueFull
			qe.retryAfter = s.tenantRetryAfter(s.tenantFrom(ctx))
			return cached{}, &qe
		}
		return cached{}, err
	}
	defer rel()
	if err := ctx.Err(); err != nil {
		// The deadline or the client beat the queue; don't start.
		return cached{}, err
	}
	return s.computeCell(ctx, j)
}

// computeCell is the admission-free compute core: workload generation, the
// simulation itself and the canonical encoding, split into sim and encode
// spans feeding the serve.sim.duration and serve.encode.duration
// histograms. Sync requests reach it through computeJob's gate; background
// jobs call it directly — their concurrency is bounded by the job pool, off
// the sync admission path. With SiteSimulate armed, the chaos injector runs
// first — injected errors surface like simulator failures and are never
// cached.
func (s *Server) computeCell(ctx context.Context, j job) (cached, error) {
	if err := s.chaos.Inject(ctx, resilience.SiteSimulate); err != nil {
		s.simFailed.Inc()
		return cached{}, err
	}
	scene, err := workload.Generate(j.spec, geom.DefaultScreen())
	if err != nil {
		s.simFailed.Inc()
		return cached{}, badRequest("generating workload: %v", err)
	}
	simT0 := time.Now()
	sp, sctx := stats.StartSpan(ctx, "simulate", "serve")
	sp.SetAttr("benchmark", j.spec.Alias)
	sp.SetAttr("config", j.cfgName)
	cfg := j.cfg
	cfg.Tracer = s.tracer // json:"-", so the cache key is unaffected
	cfg.TraceParent = sp  // frame/phase spans join the request's trace
	res, err := s.simulate(sctx, scene, cfg)
	sp.End()
	s.simDur.ObserveSince(simT0)
	if err != nil {
		s.simFailed.Inc()
		return cached{}, err
	}
	encT0 := time.Now()
	esp, _ := stats.StartSpan(ctx, "encode", "serve")
	body, err := EncodeRunResult(BuildRunResult(j.spec.Alias, j.cfgName, j.cfg.TileCacheBytes/1024, res))
	esp.End()
	s.encodeDur.ObserveSince(encT0)
	if err != nil {
		s.simFailed.Inc()
		return cached{}, err
	}
	s.simOK.Inc()
	return cached{res: res, body: body}, nil
}

// --- response helpers ---

func methodNotAllowed(allow string) *apiError {
	return &apiError{status: http.StatusMethodNotAllowed, code: "method_not_allowed",
		msg: "use " + allow}
}

// writeError renders any error as the JSON error envelope. Context errors
// map to timeout/cancellation statuses; unknown errors are opaque 500s.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	var ie *resilience.InjectedError
	switch {
	case errors.As(err, &ae):
	case errors.As(err, &ie):
		status := ie.Code
		if status < 400 || status > 599 {
			status = http.StatusInternalServerError
		}
		ae = &apiError{status: status, code: "injected_fault", msg: ie.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		ae = &apiError{status: http.StatusGatewayTimeout, code: "deadline_exceeded",
			msg: "request deadline exceeded"}
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is for the log/metrics only.
		ae = &apiError{status: 499, code: "canceled", msg: "request canceled"}
	default:
		ae = &apiError{status: http.StatusInternalServerError, code: "internal",
			msg: err.Error()}
	}
	retryAfter := ae.retryAfter
	if ae.status == http.StatusTooManyRequests && retryAfter <= 0 {
		retryAfter = s.retryAfterEstimate()
	}
	if retryAfter > 0 {
		secs := int((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.status)
	json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{Code: ae.code, Message: ae.msg}}) //nolint:errcheck
}

// retryAfterEstimate sizes the 429 hint from live load instead of a
// constant: the backlog (in-flight plus queued plus the rejected caller)
// amounts to ceil(backlog/workers) worker-pool turnovers, each costing
// about the observed p50 simulation time (floored at a second while the
// histogram is empty or the suite is fast). Clamped to [1s, 60s] so a cold
// histogram or a pathological backlog cannot produce a useless hint.
func (s *Server) retryAfterEstimate() time.Duration {
	return s.retryAfterFor(s.gate.backlog()+1, int64(s.opts.Workers))
}

// tenantRetryAfter sizes a tenant's 429 hint from that tenant's own backlog
// over its fair share of the worker pool: a light tenant behind a heavy
// neighbor is told to come back soon, not to wait out a machine-wide queue
// it will never stand in.
func (s *Server) tenantRetryAfter(t *TenantSpec) time.Duration {
	return s.retryAfterFor(s.gate.tenantBacklog(t)+1, int64(s.gate.tenantWorkers(t)))
}

func (s *Server) retryAfterFor(backlog, workers int64) time.Duration {
	waves := (backlog + workers - 1) / workers
	p50 := time.Duration(s.simDur.Quantile(0.5))
	if p50 < time.Second {
		p50 = time.Second
	}
	d := time.Duration(waves) * p50
	if d < time.Second {
		d = time.Second
	}
	if d > 60*time.Second {
		d = 60 * time.Second
	}
	return d
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.logger.Error("encoding response", "err", err)
	}
}
