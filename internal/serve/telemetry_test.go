package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"tcor/internal/gpu"
	"tcor/internal/stats"
	"tcor/internal/workload"
)

// fastSim is an instant simulate hook, so telemetry tests exercise the full
// request path without paying for a real simulation.
func fastSim(ctx context.Context, scene *workload.Scene, cfg gpu.Config) (*gpu.Result, error) {
	return &gpu.Result{Benchmark: scene.Spec.Alias, Frames: 1}, nil
}

// syncBuffer is a goroutine-safe log sink (slog handlers may be driven from
// concurrent requests).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRequestIDMintedAndEchoed(t *testing.T) {
	s := NewServer(Options{})
	h := s.Handler()

	// No inbound ID: the server mints a 16-hex-char one.
	rec := getPath(h, "/healthz")
	minted := rec.Header().Get(RequestIDHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(minted) {
		t.Errorf("minted ID %q is not 16 hex chars", minted)
	}

	// A client-supplied ID is honored and echoed verbatim.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(RequestIDHeader, "my-correlation-id")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if got := rec2.Header().Get(RequestIDHeader); got != "my-correlation-id" {
		t.Errorf("echoed ID = %q, want the inbound one", got)
	}

	// An oversized ID is replaced, not reflected.
	req3 := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	long := strings.Repeat("x", maxRequestIDLen+1)
	req3.Header.Set(RequestIDHeader, long)
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req3)
	if got := rec3.Header().Get(RequestIDHeader); got == long || got == "" {
		t.Errorf("oversized inbound ID must be replaced with a minted one, got %q", got)
	}
}

func TestAccessLogCarriesTelemetry(t *testing.T) {
	var buf syncBuffer
	s := NewServer(Options{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	s.simulate = fastSim
	h := s.Handler()

	rec := postJSON(h, "/v1/simulate", `{"benchmark":"CCS","frames":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate status = %d: %s", rec.Code, rec.Body)
	}
	id := rec.Header().Get(RequestIDHeader)

	var line map[string]any
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l map[string]any
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("log line is not JSON: %q", raw)
		}
		if l["msg"] == "request" {
			line = l
		}
	}
	if line == nil {
		t.Fatalf("no access-log line in %q", buf.String())
	}
	if line["id"] != id {
		t.Errorf("log id = %v, want the echoed header %q", line["id"], id)
	}
	if line["method"] != "POST" || line["path"] != "/v1/simulate" {
		t.Errorf("log method/path = %v/%v", line["method"], line["path"])
	}
	if line["status"] != float64(http.StatusOK) {
		t.Errorf("log status = %v, want 200", line["status"])
	}
	if line["cache"] != "miss" {
		t.Errorf("log cache = %v, want miss", line["cache"])
	}
	if _, ok := line["queueWait"]; !ok {
		t.Error("log line is missing queueWait")
	}
	if dur, ok := line["dur"].(float64); !ok || dur <= 0 {
		t.Errorf("log dur = %v, want a positive duration", line["dur"])
	}

	// A repeat of the same request logs the cache hit.
	postJSON(h, "/v1/simulate", `{"benchmark":"CCS","frames":1}`)
	if !strings.Contains(buf.String(), `"cache":"hit"`) {
		t.Errorf("second request did not log a cache hit: %s", buf.String())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := NewServer(Options{})
	s.simulate = fastSim
	h := s.Handler()
	if rec := postJSON(h, "/v1/simulate", `{"benchmark":"CCS","frames":1}`); rec.Code != http.StatusOK {
		t.Fatalf("simulate status = %d: %s", rec.Code, rec.Body)
	}

	rec := getPath(h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE tcord_serve_http_latency histogram",
		"tcord_serve_http_latency_bucket{le=",
		"tcord_serve_http_latency_count",
		"tcord_serve_queue_wait_count",
		"tcord_serve_sim_duration_count 1",
		"tcord_serve_admitted 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	s := NewServer(Options{})
	s.simulate = fastSim
	h := s.Handler()
	if rec := postJSON(h, "/v1/simulate", `{"benchmark":"CCS","frames":1}`); rec.Code != http.StatusOK {
		t.Fatalf("simulate status = %d: %s", rec.Code, rec.Body)
	}

	rec := getPath(h, "/debug/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d", rec.Code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/trace is not JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		seen[e.Name] = true
		if e.Name == "http.request" && e.Args["requestId"] == "" {
			t.Error("http.request span is missing the requestId attr")
		}
	}
	for _, want := range []string{"http.request", "simulate", "encode"} {
		if !seen[want] {
			t.Errorf("trace is missing a %q span (have %v)", want, seen)
		}
	}
}

// TestTraceparentPropagation pins the middleware's join-or-mint contract:
// a valid inbound traceparent is adopted (same trace, remote parent link),
// anything else mints a fresh root — and the response always echoes the
// request's own trace context.
func TestTraceparentPropagation(t *testing.T) {
	s := NewServer(Options{})
	h := s.Handler()

	// No inbound context: a root trace is minted and echoed.
	rec := getPath(h, "/healthz")
	minted, err := stats.ParseTraceparent(rec.Header().Get(stats.TraceparentHeader))
	if err != nil {
		t.Fatalf("response traceparent: %v", err)
	}

	// A valid inbound context is joined: same trace ID, new span ID,
	// remote-parent link recorded on the span.
	parent := stats.TraceContext{TraceID: stats.NewTraceID(), SpanID: stats.NewSpanID(), Flags: 1}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	stats.InjectTraceparent(req.Header, parent)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	echoed, err := stats.ParseTraceparent(rec2.Header().Get(stats.TraceparentHeader))
	if err != nil {
		t.Fatalf("response traceparent: %v", err)
	}
	if echoed.TraceID != parent.TraceID {
		t.Errorf("joined trace ID = %s, want the inbound %s", echoed.TraceID, parent.TraceID)
	}
	if echoed.SpanID == parent.SpanID {
		t.Error("server echoed the caller's span ID instead of minting its own")
	}
	if echoed.TraceID == minted.TraceID {
		t.Error("two unrelated requests shared a trace ID")
	}
	spans := s.Tracer().TraceSpans(parent.TraceID)
	if len(spans) != 1 {
		t.Fatalf("joined trace has %d spans, want 1", len(spans))
	}
	if !spans[0].Remote || spans[0].ParentSpan != parent.SpanID {
		t.Errorf("span did not record the remote parent: %+v", spans[0])
	}

	// A malformed inbound header degrades to a fresh root, not an error.
	req3 := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req3.Header.Set(stats.TraceparentHeader, "garbage")
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req3)
	if rec3.Code != http.StatusOK {
		t.Fatalf("malformed traceparent broke the request: %d", rec3.Code)
	}
	fresh, err := stats.ParseTraceparent(rec3.Header().Get(stats.TraceparentHeader))
	if err != nil {
		t.Fatalf("response traceparent after malformed inbound: %v", err)
	}
	if fresh.TraceID == parent.TraceID {
		t.Error("malformed inbound header was adopted")
	}
}

// TestDebugTraceByID pins the pull path the gateway collector stitches
// from: ?trace=<id> returns that trace's spans as a TraceSet.
func TestDebugTraceByID(t *testing.T) {
	s := NewServer(Options{})
	s.simulate = fastSim
	h := s.Handler()

	parent := stats.TraceContext{TraceID: stats.NewTraceID(), SpanID: stats.NewSpanID(), Flags: 1}
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate",
		strings.NewReader(`{"benchmark":"CCS","frames":1}`))
	req.Header.Set("Content-Type", "application/json")
	stats.InjectTraceparent(req.Header, parent)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate status = %d: %s", rec.Code, rec.Body)
	}

	dump := getPath(h, "/debug/trace?trace="+parent.TraceID.String())
	if dump.Code != http.StatusOK {
		t.Fatalf("/debug/trace?trace= status = %d: %s", dump.Code, dump.Body)
	}
	var ts stats.TraceSet
	if err := json.Unmarshal(dump.Body.Bytes(), &ts); err != nil {
		t.Fatalf("trace dump is not a TraceSet: %v", err)
	}
	names := map[string]bool{}
	for _, sp := range ts.Spans {
		if sp.TraceID != parent.TraceID {
			t.Errorf("span %q carries trace %s, want %s", sp.Name, sp.TraceID, parent.TraceID)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"http.request", "simulate", "encode"} {
		if !names[want] {
			t.Errorf("trace dump is missing a %q span (have %v)", want, names)
		}
	}

	// An unrelated trace ID returns the empty set, not an error.
	other := getPath(h, "/debug/trace?trace="+stats.NewTraceID().String())
	if strings.TrimSpace(other.Body.String()) != `{"spans":[]}` {
		t.Errorf("unknown trace dump = %q, want the empty set", other.Body.String())
	}

	// A malformed ID is a 400, not a panic or an empty 200.
	if bad := getPath(h, "/debug/trace?trace=nope"); bad.Code != http.StatusBadRequest {
		t.Errorf("malformed trace ID status = %d, want 400", bad.Code)
	}
}

func TestTracingDisabled(t *testing.T) {
	s := NewServer(Options{TraceCapacity: -1})
	s.simulate = fastSim
	h := s.Handler()
	if s.Tracer() != nil {
		t.Fatal("TraceCapacity<0 must disable the tracer")
	}
	if rec := postJSON(h, "/v1/simulate", `{"benchmark":"CCS","frames":1}`); rec.Code != http.StatusOK {
		t.Fatalf("simulate status = %d: %s", rec.Code, rec.Body)
	}
	rec := getPath(h, "/debug/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d", rec.Code)
	}
	if strings.TrimSpace(rec.Body.String()) != `{"traceEvents":[]}` {
		t.Errorf("disabled trace = %q, want the empty document", rec.Body.String())
	}
	// Disabled tracing propagates nothing: no response traceparent, and the
	// by-ID pull path answers the empty set.
	if got := rec.Header().Get(stats.TraceparentHeader); got != "" {
		t.Errorf("disabled tracing echoed a traceparent %q", got)
	}
	byID := getPath(h, "/debug/trace?trace="+stats.NewTraceID().String())
	if strings.TrimSpace(byID.Body.String()) != `{"spans":[]}` {
		t.Errorf("disabled by-ID dump = %q, want the empty set", byID.Body.String())
	}
}
