package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"tcor/internal/experiments"
	"tcor/internal/stats"
)

// jobManager owns the durable async jobs: the on-disk store under JobsDir,
// the bounded background executor pool, and the in-memory index the job API
// serves from. Jobs run OFF the sync admission path — a saturated job pool
// never holds a fair-share worker slot — and every completed cell lands in
// the job's checkpoint journal before the next one starts, so a SIGKILL at
// any point loses at most the cell in flight.
type jobManager struct {
	s   *Server
	dir string

	mu   sync.Mutex
	jobs map[string]*jobEntry

	sem    chan struct{} // executor slots (JobWorkers)
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc

	created    *stats.Counter // jobs ever indexed by this process
	resumed    *stats.Counter // non-terminal jobs re-enqueued at startup
	queuedG    *stats.Gauge
	runningG   *stats.Gauge
	doneC      *stats.Counter
	failedC    *stats.Counter
	cancelledC *stats.Counter
	cellsRun   *stats.Counter // cells executed to completion by this process
	cellsRest  *stats.Counter // cells served from a checkpoint journal
	cellsSim   *stats.Counter // cell simulations started (outcome not yet known)
}

// jobNotFound answers lookups of unknown jobs and of other tenants' jobs
// identically: a job ID must not leak across tenants even as an existence
// bit.
var jobNotFound = &apiError{status: http.StatusNotFound, code: "job_not_found",
	msg: "no such job"}

// newJobManager builds the manager and loads the store; resumeLoaded (called
// once the server's compute paths are wired) re-enqueues incomplete jobs.
func newJobManager(s *Server, dir string, workers int) (*jobManager, error) {
	reg := s.reg
	m := &jobManager{
		s:   s,
		dir: dir,
		sem: make(chan struct{}, workers),

		created:    reg.Counter("serve.jobs.created"),
		resumed:    reg.Counter("serve.jobs.resumed"),
		queuedG:    reg.Gauge("serve.jobs.queued"),
		runningG:   reg.Gauge("serve.jobs.running"),
		doneC:      reg.Counter("serve.jobs.done"),
		failedC:    reg.Counter("serve.jobs.failed"),
		cancelledC: reg.Counter("serve.jobs.cancelled"),
		cellsRun:   reg.Counter("serve.jobs.cells.computed"),
		cellsRest:  reg.Counter("serve.jobs.cells.restored"),
		cellsSim:   reg.Counter("serve.jobs.cells.simulations"),
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())
	jobs, err := loadJobs(dir, func(id string, err error) {
		s.logger.Warn("skipping unreadable job", "id", id, "err", err)
	})
	if err != nil {
		return nil, err
	}
	m.jobs = jobs
	// Re-meter the loaded population so the conservation invariant
	// (queued + running + done + failed + cancelled == created) holds
	// per-process, terminal history included.
	for _, e := range jobs {
		m.created.Inc()
		switch e.rec.State {
		case JobDone:
			m.doneC.Inc()
		case JobFailed:
			m.failedC.Inc()
		case JobCancelled:
			m.cancelledC.Inc()
		default:
			m.queuedG.Add(1)
		}
	}
	return m, nil
}

// resumeLoaded re-enqueues every non-terminal loaded job, oldest first. Each
// one re-runs through the same executor a fresh submission uses; its
// checkpoint journal turns already-completed cells into restores.
func (m *jobManager) resumeLoaded() {
	m.mu.Lock()
	var pending []*jobEntry
	for _, e := range m.jobs {
		if !e.rec.State.terminal() {
			pending = append(pending, e)
		}
	}
	m.mu.Unlock()
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].rec.CreatedAtMs != pending[j].rec.CreatedAtMs {
			return pending[i].rec.CreatedAtMs < pending[j].rec.CreatedAtMs
		}
		return pending[i].rec.ID < pending[j].rec.ID
	})
	for _, e := range pending {
		m.resumed.Inc()
		m.s.logger.Info("resuming job", "id", e.rec.ID, "kind", e.rec.Kind,
			"tenant", e.rec.Tenant)
		m.start(e)
	}
}

// stop cancels every running job and waits for the executors to unwind.
// Interrupted jobs keep their on-disk "running"/"queued" records — that is
// the resume contract, not a leak.
func (m *jobManager) stop() {
	m.cancel()
	m.wg.Wait()
}

func (m *jobManager) now() int64 { return m.s.clock.Now().UnixMilli() }

// persistLocked writes the entry's job.json, logging (not propagating) a
// failure: the in-memory record is still authoritative for this process, and
// the worst a lost persist costs is re-execution after a restart.
func (m *jobManager) persistLocked(e *jobEntry) {
	if err := persistJob(e); err != nil {
		m.s.logger.Error("persisting job", "id", e.rec.ID, "err", err)
	}
}

// submit indexes (or finds) the job for a validated request body and returns
// its record plus whether this call created it. Submission is idempotent by
// construction: the ID hashes kind, credential and body, so retrying a
// submission — directly or through a gateway hedge — lands on the same job.
func (m *jobManager) submit(kind, tenantKey string, t *TenantSpec, body []byte) (JobRecord, bool, error) {
	total, err := m.countCells(kind, body)
	if err != nil {
		return JobRecord{}, false, err
	}
	id := JobID(kind, tenantKey, body)
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.jobs[id]; ok {
		if e.rec.Tenant != t.Name {
			// Unreachable while IDs hash the credential; keep the tenant wall
			// anyway in case a future ID scheme loosens that.
			return JobRecord{}, false, jobNotFound
		}
		return e.rec, false, nil
	}
	if m.ctx.Err() != nil {
		return JobRecord{}, false, errDraining
	}
	jdir := filepath.Join(m.dir, id)
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		return JobRecord{}, false, fmt.Errorf("creating job dir: %w", err)
	}
	now := m.now()
	e := &jobEntry{
		rec: JobRecord{ID: id, Kind: kind, Tenant: t.Name, State: JobQueued,
			TotalCells: total, CreatedAtMs: now, UpdatedAtMs: now},
		body: append([]byte(nil), body...),
		dir:  jdir,
		done: make(chan struct{}),
	}
	// The job must be durable before it is acknowledged: a submission the
	// store cannot record is refused, not half-accepted.
	if err := persistJob(e); err != nil {
		return JobRecord{}, false, fmt.Errorf("persisting job: %w", err)
	}
	m.jobs[id] = e
	m.created.Inc()
	m.queuedG.Add(1)
	m.start(e)
	return e.rec, true, nil
}

// countCells pre-computes a job's TotalCells from its (already validated)
// body, so progress is meaningful from the first status poll.
func (m *jobManager) countCells(kind string, body []byte) (int, error) {
	switch kind {
	case JobKindSweep:
		var req SweepRequest
		if err := decodeStrict(body, &req); err != nil {
			return 0, err
		}
		return len(req.Items), nil
	case JobKindArena:
		var req ArenaRequest
		if err := decodeStrict(body, &req); err != nil {
			return 0, err
		}
		opts, _, err := ArenaKey(req)
		if err != nil {
			return 0, err
		}
		return len(opts.Policies) * len(opts.Benchmarks) * (1 + len(opts.CurveSizesKB)), nil
	}
	return 0, badRequest("unknown job kind %q", kind)
}

// start hands the entry to the executor pool.
func (m *jobManager) start(e *jobEntry) {
	m.wg.Add(1)
	go m.run(e)
}

// run is one job's executor: wait for a pool slot, transition to running,
// execute the kind-specific work, and commit the terminal state. A shutdown
// mid-run leaves the job resumable; a DELETE turns it cancelled.
func (m *jobManager) run(e *jobEntry) {
	defer m.wg.Done()
	select {
	case m.sem <- struct{}{}:
	case <-m.ctx.Done():
		return // still queued on disk; the next start resumes it
	}
	defer func() { <-m.sem }()

	ctx, cancel := context.WithCancel(m.ctx)
	defer cancel()

	m.mu.Lock()
	if e.rec.State.terminal() {
		// Cancelled while queued.
		m.mu.Unlock()
		return
	}
	e.cancel = cancel
	e.rec.State = JobRunning
	// The run recounts every cell (journal restores included), so progress
	// from a previous interrupted run resets rather than double-counts.
	e.rec.DoneCells, e.rec.RestoredCells = 0, 0
	e.rec.UpdatedAtMs = m.now()
	m.queuedG.Add(-1)
	m.runningG.Add(1)
	m.persistLocked(e)
	tenantName := e.rec.Tenant
	m.mu.Unlock()

	// The job runs under its owner's identity: cache charges, span attrs and
	// metrics attribute to the stored tenant name even across a restart.
	tenant := m.s.tenants.byName(tenantName)
	if tenant == nil {
		tenant = m.s.tenants.Default() // roster changed across a restart
	}
	ctx = contextWithTenant(ctx, tenant)
	sp := m.s.tracer.Begin("job."+e.rec.Kind, "serve")
	sp.SetAttr("job", e.rec.ID)
	sp.SetAttr("tenant", tenant.Name)
	ctx = stats.ContextWithTracer(ctx, m.s.tracer)
	ctx = stats.ContextWithSpan(ctx, sp)
	defer sp.End()

	var result []byte
	var err error
	switch e.rec.Kind {
	case JobKindSweep:
		result, err = m.runSweep(ctx, e)
	case JobKindArena:
		result, err = m.runArena(ctx, e)
	default:
		err = fmt.Errorf("unknown job kind %q", e.rec.Kind)
	}
	m.finish(e, result, err)
}

// finish commits a run's outcome. The result file is written before the
// "done" record: a crash between the two re-runs the job (every cell a
// journal restore) rather than ever serving a missing result.
func (m *jobManager) finish(e *jobEntry, result []byte, err error) {
	if err == nil {
		err = atomicWrite(e.resultPath(), result)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e.cancel = nil
	m.runningG.Add(-1)
	e.rec.UpdatedAtMs = m.now()
	switch {
	case err == nil:
		e.rec.State = JobDone
		e.rec.DoneCells = e.rec.TotalCells
		m.doneC.Inc()
	case e.userCancel:
		e.rec.State = JobCancelled
		m.cancelledC.Inc()
	case m.ctx.Err() != nil:
		// Shutdown interrupted the run (whatever error it surfaced as). The
		// on-disk record stays "running" — the resume contract — and the
		// in-memory state returns to queued so the gauges keep partitioning.
		e.rec.State = JobQueued
		m.queuedG.Add(1)
		return
	default:
		e.rec.State = JobFailed
		e.rec.Error = err.Error()
		m.failedC.Inc()
	}
	m.persistLocked(e)
	close(e.done)
}

// noteCell records one completed cell's progress, durably, so a status poll
// (or a restart) sees it.
func (m *jobManager) noteCell(e *jobEntry, restored bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e.rec.DoneCells++
	if restored {
		e.rec.RestoredCells++
		m.cellsRest.Inc()
	} else {
		m.cellsRun.Inc()
	}
	e.rec.UpdatedAtMs = m.now()
	m.persistLocked(e)
}

// runSweep executes a sweep job cell by cell. Each computed cell journals
// before the next starts; a resumed run serves journaled cells byte-for-byte
// (the journal stores the exact trimmed /v1/simulate body the sync path
// embeds), so the final result is identical whether or not the job was ever
// interrupted.
func (m *jobManager) runSweep(ctx context.Context, e *jobEntry) ([]byte, error) {
	var req SweepRequest
	if err := decodeStrict(e.body, &req); err != nil {
		return nil, err
	}
	jobs := make([]job, len(req.Items))
	for i, item := range req.Items {
		j, err := m.s.resolve(item)
		if err != nil {
			return nil, badRequest("item %d: %v", i, err)
		}
		jobs[i] = j
	}
	cp, _, err := experiments.OpenJournal(e.journalPath(), e.rec.ID, nil)
	if err != nil {
		return nil, err
	}
	defer cp.Close()

	runs := make([]json.RawMessage, len(jobs))
	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if raw, ok := cp.Lookup(j.key, ""); ok {
			runs[i] = raw
			m.noteCell(e, true)
			continue
		}
		// Cells ride the shared result cache (charged to the job's tenant)
		// but reach computeCell directly — no admission gate; the job pool
		// is the concurrency bound.
		val, _, err := m.s.cache.get(ctx, j.key, nil, func() (cached, error) {
			m.cellsSim.Inc() // before the outcome, like serve.admitted
			return m.s.computeCell(ctx, j)
		})
		if err != nil {
			return nil, err
		}
		body := json.RawMessage(string(val.body[:len(val.body)-1]))
		if err := cp.Journal(j.key, "", body); err != nil {
			return nil, err
		}
		runs[i] = body
		m.noteCell(e, false)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(SweepResponse{Runs: runs}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runArena executes an arena job on a private runner wired to the job's own
// checkpoint journal: the race's per-policy cells journal as they finish and
// restore on resume, exactly like `paperfig -arena -checkpoint`.
func (m *jobManager) runArena(ctx context.Context, e *jobEntry) ([]byte, error) {
	var req ArenaRequest
	if err := decodeStrict(e.body, &req); err != nil {
		return nil, err
	}
	opts, _, err := ArenaKey(req)
	if err != nil {
		return nil, err
	}
	runner := experiments.NewRunner()
	runner.Frames = 1
	runner.MemoCap = 32
	restored, err := runner.OpenCheckpoint(e.journalPath())
	if err != nil {
		return nil, err
	}
	defer runner.Checkpoint.Close()
	if restored > 0 {
		m.mu.Lock()
		e.rec.RestoredCells = restored
		e.rec.DoneCells = restored
		m.cellsRest.Add(int64(restored))
		m.persistLocked(e)
		m.mu.Unlock()
	}
	val, err := m.s.raceArena(ctx, runner, opts)
	if err != nil {
		return nil, err
	}
	return val.body, nil
}

// get returns a tenant's view of one job.
func (m *jobManager) get(id, tenantName string) (JobRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	if !ok || e.rec.Tenant != tenantName {
		return JobRecord{}, false
	}
	return e.rec, true
}

// list returns a tenant's jobs, oldest first (ID breaks ties).
func (m *jobManager) list(tenantName string) []JobRecord {
	m.mu.Lock()
	recs := make([]JobRecord, 0, len(m.jobs))
	for _, e := range m.jobs {
		if e.rec.Tenant == tenantName {
			recs = append(recs, e.rec)
		}
	}
	m.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].CreatedAtMs != recs[j].CreatedAtMs {
			return recs[i].CreatedAtMs < recs[j].CreatedAtMs
		}
		return recs[i].ID < recs[j].ID
	})
	return recs
}

// cancelJob cancels a tenant's job: a queued one turns terminal here, a
// running one is interrupted and its executor commits the cancelled state.
func (m *jobManager) cancelJob(id, tenantName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	if !ok || e.rec.Tenant != tenantName {
		return jobNotFound
	}
	if e.rec.State.terminal() {
		return &apiError{status: http.StatusConflict, code: "job_terminal",
			msg: fmt.Sprintf("job is already %s", e.rec.State)}
	}
	e.userCancel = true
	if e.cancel != nil {
		e.cancel()
		return nil
	}
	e.rec.State = JobCancelled
	e.rec.UpdatedAtMs = m.now()
	m.queuedG.Add(-1)
	m.cancelledC.Inc()
	m.persistLocked(e)
	close(e.done)
	return nil
}

// result returns a done job's stored result body.
func (m *jobManager) result(id, tenantName string) ([]byte, error) {
	m.mu.Lock()
	e, ok := m.jobs[id]
	var state JobState
	var jobErr string
	if ok && e.rec.Tenant == tenantName {
		state, jobErr = e.rec.State, e.rec.Error
	} else {
		ok = false
	}
	m.mu.Unlock()
	if !ok {
		return nil, jobNotFound
	}
	switch state {
	case JobDone:
	case JobFailed:
		return nil, &apiError{status: http.StatusConflict, code: "job_failed", msg: jobErr}
	default:
		return nil, &apiError{status: http.StatusConflict, code: "job_not_done",
			msg: fmt.Sprintf("job is %s", state)}
	}
	return os.ReadFile(e.resultPath())
}

// --- HTTP surface ---

// jobsReady gates the job endpoints on a live store, answering the
// appropriate error itself when there is none.
func (s *Server) jobsReady(w http.ResponseWriter) bool {
	if s.jobsErr != nil {
		s.writeError(w, &apiError{status: http.StatusServiceUnavailable,
			code: "jobs_unavailable", msg: s.jobsErr.Error()})
		return false
	}
	if s.jobs == nil {
		s.writeError(w, badRequest("async jobs need the daemon started with a jobs directory (-jobs-dir)"))
		return false
	}
	return true
}

// submitJob answers an ?async=1 submission: 202 with the new job record, or
// 200 with the existing one when the identical submission already landed.
func (s *Server) submitJob(w http.ResponseWriter, r *http.Request, kind string, body []byte) {
	if !s.jobsReady(w) {
		return
	}
	t := s.tenantFrom(r.Context())
	rec, created, err := s.jobs.submit(kind, TenantKeyFromRequest(r), t, body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(JobResponse{Job: rec}) //nolint:errcheck // client gone is its own problem
}

// handleJobs serves GET /v1/jobs: the calling tenant's jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, methodNotAllowed(http.MethodGet))
		return
	}
	if !s.jobsReady(w) {
		return
	}
	t := s.tenantFrom(r.Context())
	s.writeJSON(w, JobsResponse{Jobs: s.jobs.list(t.Name)})
}

// handleJob serves GET /v1/jobs/{id}, GET /v1/jobs/{id}/result and
// DELETE /v1/jobs/{id}, all tenant-scoped: another tenant's job — or a
// malformed path — is uniformly a 404.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, sub, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/v1/jobs/"), "/")
	if id == "" {
		s.writeError(w, jobNotFound)
		return
	}
	if !s.jobsReady(w) {
		return
	}
	t := s.tenantFrom(r.Context())
	switch {
	case sub == "" && r.Method == http.MethodGet:
		rec, ok := s.jobs.get(id, t.Name)
		if !ok {
			s.writeError(w, jobNotFound)
			return
		}
		s.writeJSON(w, JobResponse{Job: rec})
	case sub == "" && r.Method == http.MethodDelete:
		if err := s.jobs.cancelJob(id, t.Name); err != nil {
			s.writeError(w, err)
			return
		}
		rec, _ := s.jobs.get(id, t.Name)
		s.writeJSON(w, JobResponse{Job: rec})
	case sub == "result" && r.Method == http.MethodGet:
		body, err := s.jobs.result(id, t.Name)
		if err != nil {
			s.writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body) //nolint:errcheck // client gone is its own problem
	default:
		s.writeError(w, methodNotAllowed("GET or DELETE"))
	}
}
