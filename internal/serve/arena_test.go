package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"tcor/internal/arena"
	"tcor/internal/experiments"
)

func TestArenaValidation(t *testing.T) {
	s := NewServer(Options{})
	h := s.Handler()
	cases := []struct {
		name, body string
		wantStatus int
		wantIn     string
	}{
		{"unknown policy", `{"policies":["nope"]}`, 400, "unknown policy"},
		{"unknown benchmark", `{"benchmarks":["nope"]}`, 400, "unknown benchmark"},
		{"absurd size", `{"sizeKB":1048576}`, 400, "out of range"},
		{"plru without pow2 ways", `{"policies":["PLRU"]}`, 400, "power-of-two"},
		{"negative timeout", `{"timeoutMs":-1}`, 400, "timeoutMs"},
		{"unknown field", `{"turbo":true}`, 400, "unknown field"},
		{"oversized curve grid", func() string {
			sizes := make([]float64, maxArenaCurveSizes+1)
			for i := range sizes {
				sizes[i] = float64(i + 1)
			}
			b, _ := json.Marshal(ArenaRequest{Curves: true, CurveSizesKB: sizes})
			return string(b)
		}(), 400, "server limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(h, "/v1/arena", tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body)
			}
			if !bytes.Contains(rec.Body.Bytes(), []byte(tc.wantIn)) {
				t.Errorf("body %s does not mention %q", rec.Body, tc.wantIn)
			}
		})
	}
	if rec := getPath(h, "/v1/arena"); rec.Code != 405 {
		t.Errorf("GET /v1/arena = %d, want 405", rec.Code)
	}
}

func TestArenaKeyNormalizes(t *testing.T) {
	// Two phrasings of the same race must share one content address: case
	// and aliases canonicalize, anchors append, defaults materialize.
	_, k1, err := ArenaKey(ArenaRequest{Policies: []string{"arc", "lru"}, Benchmarks: []string{"CCS"}})
	if err != nil {
		t.Fatal(err)
	}
	_, k2, err := ArenaKey(ArenaRequest{Policies: []string{"ARC", "LRU", "opt"}, Benchmarks: []string{"CCS"}, SizeKB: 48})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("equivalent requests got distinct keys %s vs %s", k1, k2)
	}
	_, k3, err := ArenaKey(ArenaRequest{Policies: []string{"ARC"}, Benchmarks: []string{"CCS"}, SizeKB: 32})
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different capacities share a key")
	}
}

// TestArenaServesCachesAndMatchesLibrary is the endpoint's end-to-end
// contract: a served report is byte-identical to a direct arena.Race over a
// single-frame runner, a repeat is a cache hit with the same bytes, and the
// serving-layer invariants hold afterwards.
func TestArenaServesCachesAndMatchesLibrary(t *testing.T) {
	s := NewServer(Options{})
	h := s.Handler()
	body := `{"policies":["LRU","OPT"],"benchmarks":["CCS"],"sizeKB":16}`

	rec := postJSON(h, "/v1/arena", body)
	if rec.Code != 200 {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Tcord-Cache"); got != "miss" {
		t.Errorf("first race cache disposition = %q, want miss", got)
	}

	r := experiments.NewRunner()
	r.Frames = 1
	rep, err := arena.Race(context.Background(), r, arena.Options{
		Policies: []string{"LRU", "OPT"}, Benchmarks: []string{"CCS"}, SizeKB: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Errorf("served report diverges from direct library race\ngot:  %s\nwant: %s",
			rec.Body.Bytes(), want)
	}

	rec2 := postJSON(h, "/v1/arena", body)
	if rec2.Code != 200 {
		t.Fatalf("repeat status = %d", rec2.Code)
	}
	if got := rec2.Header().Get("X-Tcord-Cache"); got != "hit" {
		t.Errorf("repeat cache disposition = %q, want hit", got)
	}
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Error("cache hit served different bytes than the miss")
	}

	var decoded arena.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("served report is not a Report: %v", err)
	}
	if decoded.Ranking[0].Policy != "OPT" {
		t.Errorf("OPT not ranked first: %+v", decoded.Ranking)
	}
	if decoded.Frames != 1 {
		t.Errorf("daemon races frames=%d, want the pinned single frame", decoded.Frames)
	}

	snap := s.Registry().Snapshot()
	if got := snap.Get("serve.arena.races.completed"); got != 1 {
		t.Errorf("serve.arena.races.completed = %d, want 1 (hit must not race)", got)
	}
	if got := snap.Get("serve.arena.policy.lru.races"); got != 1 {
		t.Errorf("serve.arena.policy.lru.races = %d, want 1", got)
	}
	if got := snap.Get("serve.arena.policy.opt.cells"); got != 1 {
		t.Errorf("serve.arena.policy.opt.cells = %d, want 1", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("invariants after arena traffic: %v", err)
	}
}
