package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tcor/internal/resilience"
	"tcor/internal/stats"
)

func TestParseTenantsValid(t *testing.T) {
	ts, err := ParseTenants([]byte(`{
		"key-alpha": {"name": "alpha", "weight": 3, "maxInflight": 2, "maxQueued": 8, "cacheShare": 0.5},
		"key-beta":  {"name": "beta",  "weight": 1},
		"*":         {"name": "default", "weight": 4}
	}`))
	if err != nil {
		t.Fatalf("ParseTenants: %v", err)
	}
	if got := ts.TotalWeight(); got != 8 {
		t.Fatalf("total weight = %d, want 8", got)
	}
	alpha, err := ts.Resolve("key-alpha")
	if err != nil || alpha.Name != "alpha" {
		t.Fatalf("Resolve(key-alpha) = %v, %v", alpha, err)
	}
	if alpha.CacheShare != 0.5 || alpha.MaxInflight != 2 || alpha.MaxQueued != 8 {
		t.Fatalf("alpha limits = %+v", alpha)
	}
	beta, _ := ts.Resolve("key-beta")
	if want := 1.0 / 8.0; beta.CacheShare != want {
		t.Fatalf("unset cacheShare = %g, want weight share %g", beta.CacheShare, want)
	}
	if def, err := ts.Resolve(""); err != nil || def.Name != DefaultTenantName {
		t.Fatalf("anonymous resolve = %v, %v", def, err)
	}
	if _, err := ts.Resolve("key-nope"); err == nil {
		t.Fatal("unknown credential resolved")
	}
	names := make([]string, 0, 3)
	for _, tn := range ts.Tenants() {
		names = append(names, tn.Name)
	}
	if strings.Join(names, ",") != "alpha,beta,default" {
		t.Fatalf("roster order = %v, want name-sorted", names)
	}
}

// TestParseTenantsRejects pins the hard-error contract: a misconfigured
// roster refuses to load — nothing is silently clamped or dropped.
func TestParseTenantsRejects(t *testing.T) {
	cases := []struct {
		name, cfg, wantIn string
	}{
		{"not json", `hello`, "tenants config"},
		{"not an object", `[1]`, "tenants config"},
		{"trailing garbage", `{"k":{"name":"a","weight":1}} {}`, "trailing"},
		{"duplicate key", `{"k":{"name":"a","weight":1},"k":{"name":"b","weight":1}}`, "duplicate"},
		{"duplicate name", `{"k1":{"name":"a","weight":1},"k2":{"name":"a","weight":1}}`, "claimed by both"},
		{"zero weight", `{"k":{"name":"a","weight":0}}`, "weight"},
		{"negative weight", `{"k":{"name":"a","weight":-2}}`, "weight"},
		{"absurd weight", `{"k":{"name":"a","weight":1000001}}`, "weight"},
		{"negative inflight", `{"k":{"name":"a","weight":1,"maxInflight":-1}}`, "maxInflight"},
		{"absurd inflight", `{"k":{"name":"a","weight":1,"maxInflight":1000001}}`, "maxInflight"},
		{"negative queued", `{"k":{"name":"a","weight":1,"maxQueued":-1}}`, "maxQueued"},
		{"share over one", `{"k":{"name":"a","weight":1,"cacheShare":1.5}}`, "cacheShare"},
		{"negative share", `{"k":{"name":"a","weight":1,"cacheShare":-0.1}}`, "cacheShare"},
		{"missing name", `{"k":{"weight":1}}`, "name"},
		{"bad name", `{"k":{"name":"Not Valid","weight":1}}`, "name"},
		{"reserved name", `{"k":{"name":"default","weight":1}}`, "reserved"},
		{"anon not default", `{"*":{"name":"anon","weight":1}}`, "default"},
		{"unknown field", `{"k":{"name":"a","weight":1,"turbo":true}}`, "unknown field"},
		{"empty key", `{"":{"name":"a","weight":1}}`, "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTenants([]byte(tc.cfg))
			if err == nil {
				t.Fatalf("config %s parsed", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.wantIn) {
				t.Fatalf("error %q does not mention %q", err, tc.wantIn)
			}
		})
	}
}

// FuzzParseTenants hammers the config parser: it must never panic, and an
// accepted roster must satisfy every invariant the server later relies on
// (resolvable keys, unique valid names, in-range weights and shares).
func FuzzParseTenants(f *testing.F) {
	f.Add([]byte(`{"k":{"name":"a","weight":1}}`))
	f.Add([]byte(`{"*":{"name":"default","weight":2,"cacheShare":0.25}}`))
	f.Add([]byte(`{"k":{"name":"a","weight":1},"k":{"name":"b","weight":1}}`))
	f.Add([]byte(`{"k":{"name":"a","weight":-1}}`))
	f.Add([]byte(`{"k":{"name":"a","weight":1000000000000}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := ParseTenants(data)
		if err != nil {
			return
		}
		var total int64
		seen := map[string]bool{}
		for _, tn := range ts.Tenants() {
			if tn.Weight < 1 || tn.Weight > maxTenantWeight {
				t.Fatalf("accepted weight %d", tn.Weight)
			}
			if tn.CacheShare <= 0 || tn.CacheShare > 1 {
				t.Fatalf("accepted cacheShare %g", tn.CacheShare)
			}
			if tn.MaxInflight < 0 || tn.MaxQueued < 0 {
				t.Fatalf("accepted negative limits %+v", tn)
			}
			if tn.Name != DefaultTenantName && !tenantNameRE.MatchString(tn.Name) {
				t.Fatalf("accepted name %q", tn.Name)
			}
			if seen[tn.Name] {
				t.Fatalf("duplicate name %q survived", tn.Name)
			}
			seen[tn.Name] = true
			if tn.Key != AnonKey {
				got, err := ts.Resolve(tn.Key)
				if err != nil || got != tn {
					t.Fatalf("roster key %q does not resolve to its tenant", tn.Key)
				}
			}
			total += int64(tn.Weight)
		}
		if ts.TotalWeight() != total {
			t.Fatalf("TotalWeight %d != sum %d", ts.TotalWeight(), total)
		}
		if ts.Default() == nil {
			t.Fatal("no default tenant")
		}
	})
}

func testTenants(t *testing.T) *TenantSet {
	t.Helper()
	ts, err := ParseTenants([]byte(`{
		"key-alpha": {"name": "alpha", "weight": 1, "cacheShare": 0.5},
		"key-beta":  {"name": "beta",  "weight": 1, "cacheShare": 0.5}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// tenantHeaderReq drives one request with a tenant credential header.
func tenantHeaderReq(h http.Handler, method, path, body, key string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if key != "" {
		req.Header.Set(TenantHeader, key)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestUnknownTenantRejected(t *testing.T) {
	s := NewServer(Options{Tenants: testTenants(t)})
	h := s.Handler()
	rec := tenantHeaderReq(h, http.MethodPost, "/v1/simulate", `{"benchmark":"CCS"}`, "key-nope")
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("unknown tenant status = %d, want 401 (body %s)", rec.Code, rec.Body)
	}
	var eb ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code != "unknown_tenant" {
		t.Fatalf("error envelope = %s", rec.Body)
	}
	if got := s.Registry().Snapshot().Get("serve.rejected.unknownTenant"); got != 1 {
		t.Fatalf("serve.rejected.unknownTenant = %d, want 1", got)
	}
	// The rejection must not count against any tenant's request meter.
	for _, name := range []string{"alpha", "beta"} {
		if got := s.Registry().Snapshot().Get("serve.tenant." + name + ".requests"); got != 0 {
			t.Fatalf("tenant %s charged %d requests for a 401", name, got)
		}
	}
}

func TestTenantCredentialSources(t *testing.T) {
	s := NewServer(Options{Tenants: testTenants(t)})
	h := s.Handler()

	if rec := tenantHeaderReq(h, http.MethodGet, "/v1/version", "", "key-alpha"); rec.Code != 200 {
		t.Fatalf("header credential: %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/version", nil)
	req.Header.Set("Authorization", "Bearer key-beta")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("bearer credential: %d", rec.Code)
	}
	if rec := getPath(h, "/v1/version"); rec.Code != 200 {
		t.Fatalf("anonymous: %d", rec.Code)
	}

	snap := s.Registry().Snapshot()
	for name, want := range map[string]int64{"alpha": 1, "beta": 1, "default": 1} {
		if got := snap.Get("serve.tenant." + name + ".requests"); got != want {
			t.Fatalf("serve.tenant.%s.requests = %d, want %d", name, got, want)
		}
	}
}

// TestPerTenantCacheEviction pins proportional-share eviction: when the
// cache is full, the victim is the coldest entry of a tenant over its share,
// not the globally coldest entry — a heavy tenant cannot wash out a light
// one's working set.
func TestPerTenantCacheEviction(t *testing.T) {
	ts := testTenants(t)
	reg := stats.NewRegistry()
	c := newResultCache(4, 0, 0, resilience.NewFakeClock(time.Unix(1000, 0)), ts, reg, "serve.cache")

	alpha, _ := ts.Resolve("key-alpha")
	beta, _ := ts.Resolve("key-beta")
	ctxA := contextWithTenant(context.Background(), alpha)
	ctxB := contextWithTenant(context.Background(), beta)

	fill := func(ctx context.Context, key string) {
		t.Helper()
		_, _, err := c.get(ctx, key, nil, func() (cached, error) {
			return cached{body: []byte("{}\n")}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Beta fills its share first (coldest entries overall), then alpha
	// fills its own and goes one over.
	fill(ctxB, "b1")
	fill(ctxB, "b2")
	fill(ctxA, "a1")
	fill(ctxA, "a2")
	fill(ctxA, "a3") // alpha now over its 2-entry share; b1 is globally coldest

	if _, _, ok := c.peek("b1"); !ok {
		t.Fatal("beta's cold entry was evicted by alpha's overflow")
	}
	if _, _, ok := c.peek("a1"); ok {
		t.Fatal("alpha's own coldest entry survived its overflow")
	}
	snap := reg.Snapshot()
	if got := snap.Get("serve.cache.tenant.alpha.evictions"); got != 1 {
		t.Fatalf("alpha evictions = %d, want 1", got)
	}
	if got := snap.Get("serve.cache.tenant.alpha.size"); got != 2 {
		t.Fatalf("alpha charge = %d, want 2", got)
	}
	if got := snap.Get("serve.cache.tenant.beta.size"); got != 2 {
		t.Fatalf("beta charge = %d, want 2", got)
	}
	if err := reg.Check(); err != nil {
		t.Fatalf("invariants: %v", err)
	}

	// Beta overflowing its own share evicts beta's coldest entry. (The
	// peeks above promoted b1 to the hot end, so the victim is b2.)
	fill(ctxB, "b3")
	if _, _, ok := c.peek("b2"); ok {
		t.Fatal("beta's overflow did not evict beta's own coldest entry")
	}
	if _, _, ok := c.peek("b1"); !ok {
		t.Fatal("beta's hot entry went missing")
	}
}
