package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// JobState is a durable job's position in its state machine:
//
//	queued -> running -> done | failed | cancelled
//
// queued and running survive a crash as "resume me"; the three terminal
// states are immutable. A daemon killed mid-run restarts the job from its
// checkpoint journal, re-executing only un-journaled cells.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (st JobState) terminal() bool {
	return st == JobDone || st == JobFailed || st == JobCancelled
}

// Job kinds: which endpoint's work a durable job carries.
const (
	JobKindSweep = "sweep"
	JobKindArena = "arena"
)

// JobRecord is the public face of one durable job: what GET /v1/jobs/{id}
// serves and what the submission response carries. Tenant is the owning
// tenant's public name (never the credential).
type JobRecord struct {
	ID     string   `json:"id"`
	Kind   string   `json:"kind"`
	Tenant string   `json:"tenant"`
	State  JobState `json:"state"`
	// TotalCells is the job's cell count (sweep items; arena
	// policy x benchmark x size cells). DoneCells counts completed ones,
	// RestoredCells the subset served from the checkpoint journal after a
	// restart instead of being re-executed.
	TotalCells    int    `json:"totalCells"`
	DoneCells     int    `json:"doneCells"`
	RestoredCells int    `json:"restoredCells,omitempty"`
	Error         string `json:"error,omitempty"`
	CreatedAtMs   int64  `json:"createdAtMs"`
	UpdatedAtMs   int64  `json:"updatedAtMs"`
}

// JobResponse wraps a single job record (submission and status responses).
type JobResponse struct {
	Job JobRecord `json:"job"`
}

// JobsResponse is the GET /v1/jobs listing.
type JobsResponse struct {
	Jobs []JobRecord `json:"jobs"`
}

// JobID content-addresses a job: a hash over the kind, the submitting
// tenant's credential and the compacted request body. The gateway computes
// the same address from the same inputs, so job routing (ring owner by ID)
// and idempotent resubmission need no coordination. Byte-different bodies
// meaning the same request get different IDs — the same trade CanonicalKey
// avoids is accepted here because a job resubmission is normally a retry of
// the identical client call.
func JobID(kind, tenantKey string, body []byte) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, body); err != nil {
		buf.Reset()
		buf.Write(body)
	}
	h := sha256.New()
	io.WriteString(h, "tcor-job\x00"+kind+"\x00"+tenantKey+"\x00")
	h.Write(buf.Bytes())
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// jobFile is the on-disk shape of <jobsDir>/<id>/job.json: the public
// record plus the original request body, which a restarted daemon re-runs.
type jobFile struct {
	Record  JobRecord       `json:"record"`
	Request json.RawMessage `json:"request"`
}

// jobEntry is one job's live state. rec and userCancel are guarded by the
// manager's mutex; body and paths are immutable after creation.
type jobEntry struct {
	rec        JobRecord
	body       []byte
	dir        string
	cancel     func() // non-nil while running
	userCancel bool   // DELETE requested the cancellation (vs a shutdown)
	done       chan struct{}
}

func (e *jobEntry) journalPath() string { return filepath.Join(e.dir, "cells.journal") }
func (e *jobEntry) resultPath() string  { return filepath.Join(e.dir, "result.json") }

// persistJob atomically rewrites the job's job.json (write-temp + rename,
// so a crash mid-update leaves the previous intact version).
func persistJob(e *jobEntry) error {
	blob, err := json.Marshal(jobFile{Record: e.rec, Request: e.body})
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(e.dir, "job.json"), append(blob, '\n'))
}

// atomicWrite writes data to path via a temp file and rename.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadJobs scans a jobs directory and rebuilds the entries from their
// job.json files. Unreadable or torn job files are skipped with a warning
// through report — one corrupt job must not take the store (or the daemon)
// down. Jobs found queued or running on disk are returned in state queued:
// the manager re-enqueues them and their checkpoint journals make the
// re-run cheap.
func loadJobs(dir string, report func(id string, err error)) (map[string]*jobEntry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	jobs := make(map[string]*jobEntry)
	for _, d := range names {
		if !d.IsDir() {
			continue
		}
		id := d.Name()
		jdir := filepath.Join(dir, id)
		blob, err := os.ReadFile(filepath.Join(jdir, "job.json"))
		if err != nil {
			report(id, err)
			continue
		}
		var jf jobFile
		if err := json.Unmarshal(blob, &jf); err != nil {
			report(id, fmt.Errorf("corrupt job.json: %w", err))
			continue
		}
		if jf.Record.ID != id {
			report(id, fmt.Errorf("job.json claims id %q", jf.Record.ID))
			continue
		}
		e := &jobEntry{rec: jf.Record, body: jf.Request, dir: jdir, done: make(chan struct{})}
		if !e.rec.State.terminal() {
			e.rec.State = JobQueued
		} else {
			close(e.done)
		}
		jobs[id] = e
	}
	return jobs, nil
}
