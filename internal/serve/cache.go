package serve

import (
	"container/list"
	"context"
	"sync"
	"time"

	"tcor/internal/gpu"
	"tcor/internal/resilience"
	"tcor/internal/stats"
)

// cached is one finished simulation as the cache stores it: the result
// itself (so a later request can re-verify invariants without re-running)
// and its canonical encoding (so hits, coalesced waiters and fresh runs all
// serve the identical bytes).
type cached struct {
	res  *gpu.Result
	body []byte
}

// resultCache is the serving-layer mirror of the paper's replacement-policy
// theme: a content-addressed store of finished simulations (spec+config
// hash -> gpu.Result) with a bounded LRU eviction policy, fused with a
// singleflight table so concurrent identical requests collapse into one
// simulation. The design mirrors experiments/memo.go — an in-flight entry
// is a cell with a done channel; waiters block on the cell, not on a lock —
// but completed entries are bounded and recency-ordered instead of cached
// forever: a daemon's keyspace is open-ended where the Runner's grid is
// finite.
//
// Error results are never cached: a failure (queue-full, deadline, a
// panicking simulation) is not a deterministic function of the key, so the
// entry is dropped and the next request retries.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // completed entries, front = most recently used
	m   map[string]*cacheEntry

	// ttl bounds an entry's freshness (0 = fresh forever); maxStale bounds
	// how far past the TTL an entry may still be served when the caller asks
	// for graceful degradation (0 = never). clock makes expiry testable.
	ttl, maxStale time.Duration
	clock         resilience.Clock

	// byTenant charges every resident entry to the tenant whose miss
	// computed it. Eviction prefers entries of tenants over their
	// configured CacheShare, so one tenant's burst evicts its own tail
	// before touching anyone else's entries.
	byTenant map[string]*tenantCharge
	defName  string // the anonymous tenant's name, the fallback charge

	hits, misses, coalesced, evictions *stats.Counter
	expired, staleServes, retained     *stats.Counter
	size                               *stats.Gauge
}

// tenantCharge is one tenant's slice of a cache: its live entry count (the
// gauge mirrors it for /metrics) and the share-derived limit beyond which
// its entries become the preferred eviction victims (0 = cap unbounded, no
// preference).
type tenantCharge struct {
	limit     int
	count     int
	size      *stats.Gauge
	evictions *stats.Counter
}

// cacheEntry is one key's cell. done is closed exactly once, after which
// val/err/completedAt are immutable; elem is non-nil only while the
// completed entry sits in the LRU list (both guarded by resultCache.mu).
//
// prev, on an in-flight recompute of a TTL-expired key, is the expired
// entry being replaced: it is held aside until the recompute resolves, so
// a failed recompute (a chaos fault, a breaker probe, a simulator error)
// restores the last-good value instead of losing it — exactly the entry
// maxStale degraded serving exists to offer.
type cacheEntry struct {
	key         string
	tenant      string // tenant name charged for the entry (the miss leader's)
	elem        *list.Element
	done        chan struct{}
	val         cached
	err         error
	completedAt time.Time
	prev        *cacheEntry
}

// newResultCache builds a cache bounded to capacity entries (capacity <= 0
// means unbounded) whose entries stay fresh for ttl (0 = forever) and may be
// served up to maxStale past that on request, metering into reg under the
// given prefix ("serve.cache" for the simulate cache, "serve.arena.cache"
// for the arena's — two instances on one registry must not alias counters).
func newResultCache(capacity int, ttl, maxStale time.Duration, clock resilience.Clock, ts *TenantSet, reg *stats.Registry, prefix string) *resultCache {
	if clock == nil {
		clock = resilience.Wall()
	}
	if ts == nil {
		ts = DefaultTenants()
	}
	c := &resultCache{
		cap:         capacity,
		ttl:         ttl,
		maxStale:    maxStale,
		clock:       clock,
		ll:          list.New(),
		m:           make(map[string]*cacheEntry),
		byTenant:    make(map[string]*tenantCharge),
		defName:     ts.Default().Name,
		hits:        reg.Counter(prefix + ".hits"),
		misses:      reg.Counter(prefix + ".misses"),
		coalesced:   reg.Counter(prefix + ".coalesced"),
		evictions:   reg.Counter(prefix + ".evictions"),
		expired:     reg.Counter(prefix + ".expired"),
		staleServes: reg.Counter(prefix + ".staleServes"),
		retained:    reg.Counter(prefix + ".retained"),
		size:        reg.Gauge(prefix + ".size"),
	}
	for _, t := range ts.Tenants() {
		tc := &tenantCharge{
			size:      reg.Gauge(prefix + ".tenant." + t.Name + ".size"),
			evictions: reg.Counter(prefix + ".tenant." + t.Name + ".evictions"),
		}
		if capacity > 0 {
			// The share-derived limit, at least one entry: a tenant with a
			// tiny share must still be able to keep its latest result warm.
			tc.limit = int(t.CacheShare * float64(capacity))
			if tc.limit < 1 {
				tc.limit = 1
			}
		}
		c.byTenant[t.Name] = tc
	}
	return c
}

// chargeFor resolves a tenant name to its charge account, falling back to
// the anonymous tenant's for names outside the roster (a job resumed under
// a changed config).
func (c *resultCache) chargeFor(name string) *tenantCharge {
	if tc, ok := c.byTenant[name]; ok {
		return tc
	}
	return c.byTenant[c.defName]
}

// chargeLocked adds an LRU-resident entry to its tenant's account (c.mu held).
func (c *resultCache) chargeLocked(e *cacheEntry) {
	tc := c.chargeFor(e.tenant)
	tc.count++
	tc.size.Add(1)
}

// unchargeLocked removes a no-longer-resident entry from its tenant's
// account (c.mu held).
func (c *resultCache) unchargeLocked(e *cacheEntry) {
	tc := c.chargeFor(e.tenant)
	tc.count--
	tc.size.Add(-1)
}

// tenantNameFrom names the tenant a computed entry is charged to: the
// resolved tenant on the request context, else the anonymous tenant.
func (c *resultCache) tenantNameFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantSpecKey{}).(*TenantSpec); ok {
		return t.Name
	}
	return c.defName
}

// outcome classifies how a get was served, for the X-Tcord-Cache header.
type outcome string

const (
	outcomeHit       outcome = "hit"
	outcomeMiss      outcome = "miss"
	outcomeCoalesced outcome = "coalesced"
	// outcomeStale marks an expired entry served anyway because the caller
	// allowed degradation (the simulate path's circuit breaker is open) and
	// the entry is within the maxStale bound. Responses carry a Warning
	// header alongside it.
	outcomeStale outcome = "stale"
)

// get returns the cached value for key, computing it at most once across
// concurrent callers. The first caller of an absent key becomes the leader
// and runs compute; everyone else waits for the leader's outcome (or their
// own context, whichever ends first). compute runs outside the cache lock.
//
// With a TTL set, a completed entry older than it is normally dropped and
// recomputed — unless allowStale (nil = never) says the caller prefers
// degradation and the entry is within maxStale past the TTL, in which case
// the expired bytes are served as outcomeStale.
func (c *resultCache) get(ctx context.Context, key string, allowStale func() bool, compute func() (cached, error)) (cached, outcome, error) {
	var prev *cacheEntry
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		select {
		case <-e.done: // completed
			age := c.clock.Now().Sub(e.completedAt)
			switch {
			case c.ttl <= 0 || age <= c.ttl: // fresh: a pure cache hit
				c.ll.MoveToFront(e.elem)
				c.mu.Unlock()
				c.hits.Inc()
				return e.val, outcomeHit, e.err
			case allowStale != nil && allowStale() && age <= c.ttl+c.maxStale:
				// Expired, but a degraded answer beats none. Keep the LRU
				// position: stale serving must not pin a dying entry hot.
				c.mu.Unlock()
				c.staleServes.Inc()
				return e.val, outcomeStale, e.err
			default:
				// Expired: recompute as the leader below, holding the old
				// entry aside until the replacement lands. A failed
				// recompute restores it — the last-good value is exactly
				// what maxStale degraded serving should still offer.
				c.ll.Remove(e.elem)
				e.elem = nil
				delete(c.m, e.key)
				c.unchargeLocked(e)
				c.size.Set(int64(c.ll.Len()))
				c.expired.Inc()
				prev = e
			}
		default: // in flight
			if p := e.prev; p != nil && allowStale != nil && allowStale() &&
				c.clock.Now().Sub(p.completedAt) <= c.ttl+c.maxStale {
				// A recompute is running but the caller prefers degradation:
				// serve the retained last-good value instead of blocking on
				// a leader that is likely failing behind an open breaker.
				c.mu.Unlock()
				c.staleServes.Inc()
				return p.val, outcomeStale, p.err
			}
			// Collapse onto the leader.
			c.mu.Unlock()
			c.coalesced.Inc()
			select {
			case <-e.done:
				return e.val, outcomeCoalesced, e.err
			case <-ctx.Done():
				return cached{}, outcomeCoalesced, ctx.Err()
			}
		}
	}
	e := &cacheEntry{key: key, tenant: c.tenantNameFrom(ctx), done: make(chan struct{}), prev: prev}
	c.m[key] = e
	c.mu.Unlock()
	c.misses.Inc()

	// If compute panics, the panic keeps unwinding (the handler middleware
	// counts and answers it) but the cell must still resolve: waiters get
	// the error and the key is dropped so a retry recomputes instead of
	// hanging on a cell that will never close.
	completed := false
	defer func() {
		if !completed {
			e.err = errComputePanicked
			c.complete(e)
		}
	}()
	e.val, e.err = compute()
	completed = true
	c.complete(e)
	return e.val, outcomeMiss, e.err
}

// errComputePanicked is what coalesced waiters observe when the leader's
// simulation panicked out from under them.
var errComputePanicked = &apiError{status: 500, code: "internal_panic",
	msg: "simulation panicked"}

// complete publishes the leader's outcome: successes enter the LRU (evicting
// the least recently used completed entries beyond capacity), failures are
// forgotten so later requests retry. Waiters already holding the entry still
// observe val/err through the closed channel either way.
//
// A failed recompute of an expired key restores the retained predecessor at
// the cold end of the LRU (retention must not make a dying entry hot), so a
// later degraded-mode get can still serve the last-good value; a successful
// recompute drops it.
func (c *resultCache) complete(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.completedAt = c.clock.Now()
	close(e.done)
	if e.err != nil {
		delete(c.m, e.key)
		if p := e.prev; p != nil {
			c.m[p.key] = p
			p.elem = c.ll.PushBack(p)
			c.chargeLocked(p)
			c.retained.Inc()
			c.evictLocked()
		}
		return
	}
	e.prev = nil
	e.elem = c.ll.PushFront(e)
	c.chargeLocked(e)
	c.evictLocked()
}

// evictLocked trims the LRU to capacity and republishes the size gauge
// (c.mu held). Victim selection is proportional-share aware: the least
// recently used entry of a tenant over its CacheShare limit goes first, so
// a flooding tenant consumes its own tail; only when no tenant is over its
// share does plain LRU apply.
func (c *resultCache) evictLocked() {
	for c.cap > 0 && c.ll.Len() > c.cap {
		oldest := c.victimLocked()
		victim := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.m, victim.key)
		c.unchargeLocked(victim)
		c.evictions.Inc()
		c.chargeFor(victim.tenant).evictions.Inc()
	}
	c.size.Set(int64(c.ll.Len()))
}

// victimLocked picks the eviction victim: scanning from the cold end, the
// first entry whose tenant is over its share limit; the coldest entry when
// every tenant is within its share.
func (c *resultCache) victimLocked() *list.Element {
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if tc := c.chargeFor(e.tenant); tc.limit > 0 && tc.count > tc.limit {
			return el
		}
	}
	return c.ll.Back()
}

// peek reports whether key has a completed entry servable right now without
// computing: fresh entries are hits, expired-but-within-maxStale entries are
// stale serves (the peer-probe caller is by definition in a degraded path).
// In-flight recomputes and absent keys are misses — a probe never waits.
func (c *resultCache) peek(key string) (cached, outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return cached{}, outcomeMiss, false
	}
	select {
	case <-e.done:
	default:
		return cached{}, outcomeMiss, false
	}
	if e.err != nil {
		return cached{}, outcomeMiss, false
	}
	age := c.clock.Now().Sub(e.completedAt)
	switch {
	case c.ttl <= 0 || age <= c.ttl:
		c.ll.MoveToFront(e.elem)
		c.hits.Inc()
		return e.val, outcomeHit, true
	case c.maxStale > 0 && age <= c.ttl+c.maxStale:
		c.staleServes.Inc()
		return e.val, outcomeStale, true
	}
	return cached{}, outcomeMiss, false
}

// len returns the number of completed entries (tests).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
