package arena

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tcor/internal/cache"
	"tcor/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testRunner(benchmarks ...string) *experiments.Runner {
	r := experiments.NewRunner()
	r.Frames = 1
	if len(benchmarks) > 0 {
		r.Benchmarks = benchmarks
	}
	return r
}

func TestNormalize(t *testing.T) {
	got, err := Normalize(Options{Policies: []string{"arc", "s3fifo", "ARC"}, Benchmarks: []string{"Mze", "CCS"}})
	if err != nil {
		t.Fatal(err)
	}
	wantPol := []string{"ARC", "S3-FIFO", "LRU", "OPT"}
	if len(got.Policies) != len(wantPol) {
		t.Fatalf("policies = %v, want %v", got.Policies, wantPol)
	}
	for i := range wantPol {
		if got.Policies[i] != wantPol[i] {
			t.Fatalf("policies = %v, want %v", got.Policies, wantPol)
		}
	}
	// Benchmarks normalize to suite order: CCS precedes Mze.
	if got.Benchmarks[0] != "CCS" || got.Benchmarks[1] != "Mze" {
		t.Errorf("benchmarks = %v, want suite order [CCS Mze]", got.Benchmarks)
	}
	if got.SizeKB != DefaultSizeKB {
		t.Errorf("sizeKB default = %g", got.SizeKB)
	}

	if _, err := Normalize(Options{Policies: []string{"nope"}}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Normalize(Options{Benchmarks: []string{"nope"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Normalize(Options{SizeKB: 1 << 20}); err == nil {
		t.Error("absurd size accepted")
	}
	if _, err := Normalize(Options{Policies: []string{"PLRU"}}); err == nil {
		t.Error("PLRU without power-of-two ways accepted")
	}
	if _, err := Normalize(Options{Policies: []string{"PLRU"}, Ways: 4}); err != nil {
		t.Errorf("PLRU with ways=4 rejected: %v", err)
	}
}

func TestDefaultRosterExcludesPLRUOnly(t *testing.T) {
	names := cache.PolicyNames()
	roster := DefaultRoster()
	if len(roster) != len(names)-1 {
		t.Fatalf("roster %d entries, registry %d", len(roster), len(names))
	}
	for _, p := range roster {
		if p == "PLRU" {
			t.Fatal("PLRU in default roster")
		}
	}
}

// TestRaceByteIdenticalAcrossParallelism is the tentpole's reproducibility
// claim at the engine level: the canonical encoding must not depend on the
// sweep's parallelism or on memo warm-up state.
func TestRaceByteIdenticalAcrossParallelism(t *testing.T) {
	opts := Options{
		Policies:     []string{"LRU", "OPT", "ARC", "Learned"},
		Benchmarks:   []string{"CCS", "Mze"},
		SizeKB:       32,
		Curves:       true,
		CurveSizesKB: []float64{24, 48},
	}
	var first []byte
	for _, par := range []int{1, 4, 8} {
		r := testRunner("CCS", "Mze") // fresh runner: no memo reuse across levels
		o := opts
		o.Parallel = par
		rep, err := Race(context.Background(), r, o)
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		enc, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = enc
		} else if !bytes.Equal(first, enc) {
			t.Fatalf("parallel=%d: report bytes diverge", par)
		}
	}
	if len(first) == 0 || first[len(first)-1] != '\n' {
		t.Fatal("canonical encoding must end in newline")
	}
}

// TestLRUFastPathMatchesSimulator cross-validates the arena's stack-profile
// fast path for fully-associative LRU rows against the event-driven
// simulator it replaces.
func TestLRUFastPathMatchesSimulator(t *testing.T) {
	r := testRunner("CCS")
	rep, err := Race(context.Background(), r, Options{
		Policies:   []string{"LRU", "OPT"},
		Benchmarks: []string{"CCS"},
		SizeKB:     32,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.AttributeTrace("CCS")
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.CacheCfgFor(experiments.CapacityPrims(32), 0)
	st, err := cache.Simulate(cfg, cache.NewLRU(), tr)
	if err != nil {
		t.Fatal(err)
	}
	var lruRow *Row
	for i := range rep.PerBench[0].Rows {
		if rep.PerBench[0].Rows[i].Policy == "LRU" {
			lruRow = &rep.PerBench[0].Rows[i]
		}
	}
	if lruRow == nil {
		t.Fatal("no LRU row")
	}
	if lruRow.Misses != st.Misses || lruRow.Compulsory != st.Compulsory {
		t.Errorf("fast path diverges from simulator: row %+v, sim misses=%d compulsory=%d",
			lruRow, st.Misses, st.Compulsory)
	}
	if lruRow.Conflict != 0 {
		t.Errorf("fully-associative LRU reported %d conflict misses", lruRow.Conflict)
	}
	if sum := lruRow.Compulsory + lruRow.Capacity + lruRow.Conflict; sum != lruRow.Misses {
		t.Errorf("3C components sum to %d, want %d", sum, lruRow.Misses)
	}
}

// TestRaceRankingInvariants checks structural properties on a real race:
// OPT ranks first (it is optimal), every benchmark's OPT row lower-bounds
// the others, components sum to totals, and winners exclude OPT.
func TestRaceRankingInvariants(t *testing.T) {
	r := testRunner("CCS", "SoD")
	rep, err := Race(context.Background(), r, Options{
		Policies:   []string{"LRU", "FIFO", "OPT", "SRRIP"},
		Benchmarks: []string{"CCS", "SoD"},
		SizeKB:     24,
		Ways:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranking[0].Policy != "OPT" {
		t.Errorf("OPT not ranked first: %+v", rep.Ranking)
	}
	if opt := rep.StandingFor("OPT"); opt == nil || opt.GapClosed < 0.999 {
		t.Errorf("OPT gapClosed should be 1: %+v", opt)
	}
	if lru := rep.StandingFor("LRU"); lru == nil || lru.GapToOPT < 0 {
		t.Errorf("LRU cannot beat OPT: %+v", lru)
	}
	for _, br := range rep.PerBench {
		if br.Winner == "OPT" || br.Winner == "" {
			t.Errorf("%s: winner %q must be an online policy", br.Benchmark, br.Winner)
		}
		var optMisses int64 = -1
		for _, row := range br.Rows {
			if row.Policy == "OPT" {
				optMisses = row.Misses
			}
			if sum := row.Compulsory + row.Capacity + row.Conflict; sum != row.Misses {
				t.Errorf("%s/%s: 3C sums to %d, want %d", br.Benchmark, row.Policy, sum, row.Misses)
			}
		}
		for _, row := range br.Rows {
			if row.Misses < optMisses {
				t.Errorf("%s: %s misses %d beat OPT's %d", br.Benchmark, row.Policy, row.Misses, optMisses)
			}
		}
		if br.Reuse.Cold == 0 {
			t.Errorf("%s: reuse summary missing cold count", br.Benchmark)
		}
	}
}

// TestLearnedBetweenLRUAndOPTOnSuite is the acceptance criterion: across
// the full Table II suite at the paper's design point, the learned policy
// must land in the [OPT, LRU] miss band on at least 7 of the 10 benchmarks.
func TestLearnedBetweenLRUAndOPTOnSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite race")
	}
	r := testRunner()
	rep, err := Race(context.Background(), r, Options{
		Policies: []string{"LRU", "OPT", "Learned"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerBench) != 10 {
		t.Fatalf("expected 10 benchmarks, got %d", len(rep.PerBench))
	}
	between := 0
	for _, br := range rep.PerBench {
		var lru, opt, learned int64 = -1, -1, -1
		for _, row := range br.Rows {
			switch row.Policy {
			case "LRU":
				lru = row.Misses
			case "OPT":
				opt = row.Misses
			case "Learned":
				learned = row.Misses
			}
		}
		if learned < opt {
			t.Errorf("%s: Learned %d beats OPT %d — simulator bug", br.Benchmark, learned, opt)
		}
		if opt <= learned && learned <= lru {
			between++
		} else {
			t.Logf("%s: outside band (OPT %d, Learned %d, LRU %d)", br.Benchmark, opt, learned, lru)
		}
	}
	if between < 7 {
		t.Errorf("Learned lands between LRU and OPT on only %d/10 benchmarks, need >= 7", between)
	}
}

// TestRaceResumesFromCheckpoint kills nothing but proves the journal path:
// a second race over a fresh runner sharing the journal restores every cell
// instead of recomputing, with byte-identical output.
func TestRaceResumesFromCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.ckpt")
	opts := Options{
		Policies:   []string{"LRU", "OPT", "S3-FIFO"},
		Benchmarks: []string{"CCS"},
		SizeKB:     16,
	}

	r1 := testRunner("CCS")
	if _, err := r1.OpenCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	rep1, err := Race(context.Background(), r1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Checkpoint.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := testRunner("CCS")
	restored, err := r2.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 3 { // one journaled cell per (benchmark, policy)
		t.Fatalf("restored %d cells, want 3", restored)
	}
	rep2, err := Race(context.Background(), r2, opts)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := rep1.Encode()
	b2, _ := rep2.Encode()
	if !bytes.Equal(b1, b2) {
		t.Error("resumed race diverged from original")
	}
	snap := r2.Metrics().Snapshot()
	if got := snap.Get("checkpoint.restored"); got != 3 {
		t.Errorf("checkpoint.restored = %d, want 3", got)
	}
}

// TestGoldenReport pins the CI arena roster's ranked report. Regenerate
// with: go test ./internal/arena/ -run TestGoldenReport -update
func TestGoldenReport(t *testing.T) {
	r := testRunner("CCS", "Mze")
	rep, err := Race(context.Background(), r, Options{
		Policies:   []string{"LRU", "OPT", "ARC", "Learned"},
		Benchmarks: []string{"CCS", "Mze"},
		SizeKB:     32,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_report.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("ranked report drifted from golden file (regenerate with -update if intended)\ngot:  %s\nwant: %s", got, want)
	}
}
