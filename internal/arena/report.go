package arena

import (
	"encoding/json"
	"fmt"
	"sort"

	"tcor/internal/cache"
	"tcor/internal/experiments"
	"tcor/internal/stats"
)

// Row is one (benchmark, policy) result in the report.
type Row struct {
	Policy     string  `json:"policy"`
	Misses     int64   `json:"misses"`
	MissRatio  float64 `json:"missRatio"`
	Compulsory int64   `json:"compulsory"`
	Capacity   int64   `json:"capacity"`
	Conflict   int64   `json:"conflict"`
	// GapToOPT is this row's miss ratio minus OPT's on the same benchmark:
	// how much of the access stream the policy loses to the oracle.
	GapToOPT float64 `json:"gapToOPT"`
}

// BenchmarkResult is one benchmark's slice of the race.
type BenchmarkResult struct {
	Benchmark string `json:"benchmark"`
	Accesses  int64  `json:"accesses"`
	// Winner is the best online policy (OPT excluded — it wins by
	// definition); ties break to the lexicographically smaller name.
	Winner string `json:"winner"`
	// Rows lists every policy's result in roster order.
	Rows []Row `json:"rows"`
	// Reuse is the benchmark's reuse-distance summary: the distribution
	// shape that explains the winner.
	Reuse stats.ReuseDistSummary `json:"reuse"`
}

// Standing is one policy's aggregate over all raced benchmarks, ranked.
type Standing struct {
	Rank       int     `json:"rank"`
	Policy     string  `json:"policy"`
	Misses     int64   `json:"misses"`
	Accesses   int64   `json:"accesses"`
	MissRatio  float64 `json:"missRatio"` // misses/accesses, access-weighted
	Compulsory int64   `json:"compulsory"`
	Capacity   int64   `json:"capacity"`
	Conflict   int64   `json:"conflict"`
	// GapToOPT is the aggregate miss-ratio distance to OPT; GapClosed is
	// the share of the LRU-to-OPT gap the policy closes (0 = LRU, 1 = OPT).
	GapToOPT  float64 `json:"gapToOPT"`
	GapClosed float64 `json:"gapClosed"`
	// Wins counts benchmarks where this policy is the online winner.
	Wins int `json:"wins"`
}

// Curve is one policy's miss-ratio-vs-size series (suite average), the
// Fig. 11 shape extended to the whole roster.
type Curve struct {
	Policy     string    `json:"policy"`
	SizesKB    []float64 `json:"sizesKB"`
	MissRatios []float64 `json:"missRatios"`
}

// Report is the arena's ranked result. Its canonical encoding (Encode) is
// shared verbatim by paperfig -arena and POST /v1/arena.
type Report struct {
	SizeKB     float64  `json:"sizeKB"`
	Ways       int      `json:"ways"` // as requested; 0 = fully associative
	Lines      int      `json:"lines"`
	Frames     int      `json:"frames"` // runner frame override (0 = spec default)
	Policies   []string `json:"policies"`
	Benchmarks []string `json:"benchmarks"`

	Ranking  []Standing        `json:"ranking"`
	PerBench []BenchmarkResult `json:"perBenchmark"`
	Curves   []Curve           `json:"curves,omitempty"`
}

// Encode renders the report's canonical bytes: compact JSON plus a trailing
// newline, the same convention as the daemon's run results. Byte equality
// of two encoded reports means the races agreed exactly.
func (rep *Report) Encode() ([]byte, error) {
	body, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// Standing lookup by policy name (nil if absent).
func (rep *Report) StandingFor(policy string) *Standing {
	for i := range rep.Ranking {
		if rep.Ranking[i].Policy == policy {
			return &rep.Ranking[i]
		}
	}
	return nil
}

// buildReport aggregates the headline cells (benchmark-major order matching
// the job layout) into the ranked report. Everything here is sequential and
// order-fixed, so the output is identical at any sweep parallelism.
func buildReport(opts Options, cfg cache.Config, frames int, cells []cellPayload, reuse map[string]stats.ReuseDistSummary) *Report {
	nPol := len(opts.Policies)
	rep := &Report{
		SizeKB:     opts.SizeKB,
		Ways:       opts.Ways,
		Lines:      cfg.Lines,
		Frames:     frames,
		Policies:   opts.Policies,
		Benchmarks: opts.Benchmarks,
	}

	agg := make(map[string]*Standing, nPol)
	for _, p := range opts.Policies {
		agg[p] = &Standing{Policy: p}
	}

	for bi, alias := range opts.Benchmarks {
		base := bi * nPol
		var optRatio float64
		for pi, p := range opts.Policies {
			if p == "OPT" {
				c := cells[base+pi]
				optRatio = ratio(c.Misses, c.Accesses)
			}
		}
		br := BenchmarkResult{Benchmark: alias, Reuse: reuse[alias]}
		winnerMisses := int64(-1)
		for pi, p := range opts.Policies {
			c := cells[base+pi]
			br.Accesses = c.Accesses
			row := Row{
				Policy:     p,
				Misses:     c.Misses,
				MissRatio:  ratio(c.Misses, c.Accesses),
				Compulsory: c.Compulsory,
				Capacity:   c.Capacity,
				Conflict:   c.Conflict,
			}
			row.GapToOPT = row.MissRatio - optRatio
			br.Rows = append(br.Rows, row)
			if p != "OPT" && (winnerMisses < 0 || c.Misses < winnerMisses ||
				(c.Misses == winnerMisses && p < br.Winner)) {
				winnerMisses = c.Misses
				br.Winner = p
			}
			a := agg[p]
			a.Misses += c.Misses
			a.Accesses += c.Accesses
			a.Compulsory += c.Compulsory
			a.Capacity += c.Capacity
			a.Conflict += c.Conflict
		}
		rep.PerBench = append(rep.PerBench, br)
		if w := agg[br.Winner]; w != nil {
			w.Wins++
		}
	}

	var optRatio, lruRatio float64
	for _, p := range opts.Policies {
		a := agg[p]
		a.MissRatio = ratio(a.Misses, a.Accesses)
		switch p {
		case "OPT":
			optRatio = a.MissRatio
		case "LRU":
			lruRatio = a.MissRatio
		}
	}
	gap := lruRatio - optRatio
	for _, p := range opts.Policies {
		a := agg[p]
		a.GapToOPT = a.MissRatio - optRatio
		if gap > 1e-12 {
			a.GapClosed = (lruRatio - a.MissRatio) / gap
		}
		rep.Ranking = append(rep.Ranking, *a)
	}
	sort.SliceStable(rep.Ranking, func(i, j int) bool {
		if rep.Ranking[i].Misses != rep.Ranking[j].Misses {
			return rep.Ranking[i].Misses < rep.Ranking[j].Misses
		}
		return rep.Ranking[i].Policy < rep.Ranking[j].Policy
	})
	for i := range rep.Ranking {
		rep.Ranking[i].Rank = i + 1
	}
	return rep
}

// buildCurves aggregates the curve cells (size-major, then benchmark, then
// policy — matching the job layout) into suite-average series per policy.
func buildCurves(opts Options, cells []cellPayload) []Curve {
	nPol := len(opts.Policies)
	nBench := len(opts.Benchmarks)
	curves := make([]Curve, nPol)
	for pi, p := range opts.Policies {
		curves[pi] = Curve{Policy: p, SizesKB: opts.CurveSizesKB}
	}
	for si := range opts.CurveSizesKB {
		base := si * nBench * nPol
		for pi := range opts.Policies {
			var sum float64
			for bi := 0; bi < nBench; bi++ {
				c := cells[base+bi*nPol+pi]
				sum += ratio(c.Misses, c.Accesses)
			}
			curves[pi].MissRatios = append(curves[pi].MissRatios, sum/float64(nBench))
		}
	}
	return curves
}

func ratio(misses, accesses int64) float64 {
	if accesses == 0 {
		return 0
	}
	return float64(misses) / float64(accesses)
}

// Tables renders the report for humans: the ranking, the per-benchmark
// matrix with winners and reuse summaries, and the curve grid if raced.
func (rep *Report) Tables() []*experiments.Table {
	rank := &experiments.Table{
		Title: fmt.Sprintf("Policy arena: %g KiB, %s, %d benchmarks",
			rep.SizeKB, waysLabel(rep.Ways), len(rep.Benchmarks)),
		Note:   "Gap closed = share of the LRU-to-OPT miss gap recovered (0 = LRU, 1 = OPT).",
		Header: []string{"Rank", "Policy", "Misses", "MissRatio", "Compulsory", "Capacity", "Conflict", "GapToOPT", "GapClosed", "Wins"},
	}
	for _, s := range rep.Ranking {
		rank.AddRow(
			fmt.Sprintf("%d", s.Rank), s.Policy,
			fmt.Sprintf("%d", s.Misses),
			fmt.Sprintf("%.4f", s.MissRatio),
			fmt.Sprintf("%d", s.Compulsory),
			fmt.Sprintf("%d", s.Capacity),
			fmt.Sprintf("%d", s.Conflict),
			fmt.Sprintf("%+.4f", s.GapToOPT),
			fmt.Sprintf("%.2f", s.GapClosed),
			fmt.Sprintf("%d", s.Wins),
		)
	}

	bench := &experiments.Table{
		Title:  "Per-benchmark miss ratios and winners",
		Note:   "Reuse columns: share of cold first touches and median finite reuse distance (log-2 estimate).",
		Header: append(append([]string{"Benchmark"}, rep.Policies...), "Winner", "ColdShare", "ReuseP50"),
	}
	for _, br := range rep.PerBench {
		row := []string{br.Benchmark}
		for _, r := range br.Rows {
			row = append(row, fmt.Sprintf("%.4f", r.MissRatio))
		}
		row = append(row, br.Winner,
			fmt.Sprintf("%.3f", br.Reuse.ColdShare),
			fmt.Sprintf("%.0f", br.Reuse.P50))
		bench.AddRow(row...)
	}

	out := []*experiments.Table{rank, bench}
	if len(rep.Curves) > 0 {
		curve := &experiments.Table{
			Title:  "Miss ratio vs cache size (suite average)",
			Header: []string{"Size(KB)"},
		}
		for _, c := range rep.Curves {
			curve.Header = append(curve.Header, c.Policy)
		}
		for si, sz := range rep.Curves[0].SizesKB {
			row := []string{fmt.Sprintf("%.0f", sz)}
			for _, c := range rep.Curves {
				row = append(row, fmt.Sprintf("%.4f", c.MissRatios[si]))
			}
			curve.AddRow(row...)
		}
		out = append(out, curve)
	}
	return out
}

func waysLabel(ways int) string {
	if ways <= 0 {
		return "fully associative"
	}
	return fmt.Sprintf("%d-way", ways)
}
