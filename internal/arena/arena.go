// Package arena races an arbitrary roster of replacement policies over the
// Table II benchmarks and emits a ranked, reproducible report: misses, miss
// ratios, 3C breakdowns, distance to OPT and per-benchmark winners, plus an
// optional Fig. 11-style miss-ratio curve for every policy.
//
// The design goal is reproducibility end to end. The engine fans out
// through experiments.Sweep (results land in job order, so aggregates are
// byte-identical at any parallelism), policies come from the internal/cache
// registry (fixed seeds, proven deterministic by the cache package's
// double-run test), benchmarks are normalized to suite order, and the
// report's canonical encoding is what both `paperfig -arena` and the
// daemon's POST /v1/arena emit — the two are required to agree
// byte-for-byte.
//
// Fully-associative LRU rows never run the event simulator: they read the
// runner's memoized Mattson stack profile (StackProfile.MissesAt), which
// the cache tests prove exact. The same profile supplies every row's
// fully-associative reference for the 3C decomposition and the report's
// per-benchmark reuse-distance summaries (via stats.SummarizeReuseDist).
// Cells completed before a crash restore from the runner's checkpoint
// journal, so a killed race resumes where it died.
package arena

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"tcor/internal/cache"
	"tcor/internal/experiments"
	"tcor/internal/stats"
	"tcor/internal/workload"
)

// DefaultSizeKB is the headline capacity when the caller does not pick one:
// the paper's 48 KiB Attribute Cache design point.
const DefaultSizeKB = 48

// Options selects what to race. The zero value races the default roster
// over the full suite at the default capacity, fully associative.
type Options struct {
	// Policies is the roster of registry names (internal/cache.PolicyNames).
	// Empty means DefaultRoster. LRU and OPT are always raced: they anchor
	// the report's gap-closed and distance-to-OPT columns.
	Policies []string `json:"policies"`
	// Benchmarks restricts the suite by alias; empty means all ten. The
	// report always lists them in paper order regardless of request order.
	Benchmarks []string `json:"benchmarks"`
	// SizeKB is the headline capacity in KiB (0 = DefaultSizeKB).
	SizeKB float64 `json:"sizeKB"`
	// Ways is the associativity (0 = fully associative).
	Ways int `json:"ways"`
	// Curves adds the Fig. 11-style miss-ratio-vs-size series per policy.
	Curves bool `json:"curves"`
	// CurveSizesKB overrides the curve's size grid (sorted ascending,
	// deduplicated). Empty with Curves set uses DefaultCurveSizesKB.
	CurveSizesKB []float64 `json:"curveSizesKB,omitempty"`
	// Parallel bounds the sweep workers (0 = GOMAXPROCS). It never affects
	// report bytes, so it is excluded from content addressing.
	Parallel int `json:"-"`
}

// DefaultRoster returns the standard arena roster: every registered policy
// except PLRU, whose power-of-two-associativity constraint would restrict
// the geometry of the whole race (add it explicitly with Ways set to a
// power of two).
func DefaultRoster() []string {
	var out []string
	for _, name := range cache.PolicyNames() {
		if name != "PLRU" {
			out = append(out, name)
		}
	}
	return out
}

// DefaultCurveSizesKB is the curve grid used when Curves is requested
// without an explicit one: 16..160 KiB in 16 KiB steps, bracketing the
// paper's 48 KiB design point.
func DefaultCurveSizesKB() []float64 {
	var out []float64
	for s := 16.0; s <= 160; s += 16 {
		out = append(out, s)
	}
	return out
}

// Normalize canonicalizes options: policy names resolve to registry
// spelling and deduplicate (first occurrence wins, LRU and OPT appended if
// absent), benchmarks resolve to suite order, defaults apply. Two requests
// meaning the same race normalize to identical Options — which is what the
// serving layer content-addresses. Errors name the offending input.
func Normalize(opts Options) (Options, error) {
	out := opts
	if out.SizeKB == 0 {
		out.SizeKB = DefaultSizeKB
	}
	if out.SizeKB < 1 || out.SizeKB > 4096 {
		return out, fmt.Errorf("arena: sizeKB %g out of range [1, 4096]", out.SizeKB)
	}
	if out.Ways < 0 {
		return out, fmt.Errorf("arena: negative ways %d", out.Ways)
	}

	roster := out.Policies
	if len(roster) == 0 {
		roster = DefaultRoster()
	}
	seen := make(map[string]bool, len(roster))
	canon := make([]string, 0, len(roster)+2)
	for _, name := range roster {
		c, err := cache.CanonicalPolicyName(name)
		if err != nil {
			return out, fmt.Errorf("arena: %w", err)
		}
		if !seen[c] {
			seen[c] = true
			canon = append(canon, c)
		}
	}
	for _, anchor := range []string{"LRU", "OPT"} {
		if !seen[anchor] {
			canon = append(canon, anchor)
		}
	}
	out.Policies = canon
	if seen["PLRU"] && !isPow2(out.Ways) {
		return out, fmt.Errorf("arena: PLRU needs a power-of-two associativity; set ways explicitly (got %d)", out.Ways)
	}

	suite := workload.Suite()
	if len(out.Benchmarks) == 0 {
		out.Benchmarks = make([]string, len(suite))
		for i, s := range suite {
			out.Benchmarks[i] = s.Alias
		}
	} else {
		want := make(map[string]bool, len(out.Benchmarks))
		for _, alias := range out.Benchmarks {
			if _, err := workload.ByAlias(alias); err != nil {
				return out, fmt.Errorf("arena: %w", err)
			}
			want[alias] = true
		}
		ordered := make([]string, 0, len(want))
		for _, s := range suite {
			if want[s.Alias] {
				ordered = append(ordered, s.Alias)
			}
		}
		out.Benchmarks = ordered
	}

	if out.Curves {
		if len(out.CurveSizesKB) == 0 {
			out.CurveSizesKB = DefaultCurveSizesKB()
		}
		for _, s := range out.CurveSizesKB {
			if s < 1 || s > 4096 {
				return out, fmt.Errorf("arena: curve size %g KiB out of range [1, 4096]", s)
			}
		}
	} else {
		out.CurveSizesKB = nil
	}
	return out, nil
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// cellPayload is the checkpoint-journal shape of one completed cell.
type cellPayload struct {
	Misses     int64 `json:"misses"`
	Accesses   int64 `json:"accesses"`
	Compulsory int64 `json:"compulsory"`
	Capacity   int64 `json:"capacity"`
	Conflict   int64 `json:"conflict"`
}

// cellSHA pins the geometry a journaled cell was measured under, the way
// cfgFingerprint pins a gpu.Config: the journal key names (benchmark,
// policy), this hash pins what the name meant.
func cellSHA(cfg cache.Config) string {
	b, _ := json.Marshal(struct {
		Lines int `json:"lines"`
		Ways  int `json:"ways"`
	}{cfg.Lines, cfg.Ways})
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// raceCell measures one (benchmark, policy, capacity) cell. Fully
// associative LRU reads the stack profile; everything else runs the event
// simulator against a fresh registry instance. Either way the 3C
// decomposition's fully-associative reference comes from the profile, and
// completed cells round-trip through the checkpoint journal when one is
// attached to the runner.
func raceCell(r *experiments.Runner, alias, policy string, cp, ways int) (cellPayload, error) {
	cfg := experiments.CacheCfgFor(cp, ways)
	journalKey := "arena/" + alias + "/" + policy
	sha := cellSHA(cfg)
	if raw, ok := r.Checkpoint.Lookup(journalKey, sha); ok {
		var cell cellPayload
		if err := json.Unmarshal(raw, &cell); err == nil {
			return cell, nil
		}
	}

	prof, err := r.LRUProfile(alias)
	if err != nil {
		return cellPayload{}, err
	}
	fullyAssoc := ways <= 0
	var cell cellPayload
	if policy == "LRU" && fullyAssoc {
		misses := prof.MissesAt(cfg.Lines)
		cell = cellPayload{
			Misses:     misses,
			Accesses:   prof.Total,
			Compulsory: prof.Cold,
			Capacity:   misses - prof.Cold,
			Conflict:   0,
		}
	} else {
		tr, err := r.AttributeTrace(alias)
		if err != nil {
			return cellPayload{}, err
		}
		p, err := cache.NewPolicy(policy)
		if err != nil {
			return cellPayload{}, err
		}
		st, err := cache.Simulate(cfg, p, tr)
		if err != nil {
			return cellPayload{}, fmt.Errorf("arena: %s under %s: %w", alias, policy, err)
		}
		// The fully-associative LRU reference at the same line count comes
		// from the one-pass profile instead of a second simulation.
		c3 := cache.Classify3CFromCounts(st, prof.MissesAt(cfg.Lines), prof.Cold)
		cell = cellPayload{
			Misses:     st.Misses,
			Accesses:   st.Accesses,
			Compulsory: c3.Compulsory,
			Capacity:   c3.Capacity,
			Conflict:   c3.Conflict,
		}
	}
	if err := r.Checkpoint.Journal(journalKey, sha, cell); err != nil {
		return cellPayload{}, fmt.Errorf("arena: journaling %s: %w", journalKey, err)
	}
	return cell, nil
}

// Race runs the arena: every roster policy over every selected benchmark at
// the headline capacity (plus the curve grid when requested), fanned out
// through the experiments sweep pool, then ranked. The report's bytes are
// independent of opts.Parallel and of prior memoization state.
func Race(ctx context.Context, r *experiments.Runner, opts Options) (*Report, error) {
	opts, err := Normalize(opts)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	cp := experiments.CapacityPrims(opts.SizeKB)
	headlineCfg := experiments.CacheCfgFor(cp, opts.Ways)

	// One job per (benchmark, policy) pair, benchmarks outermost so the
	// flat result slice groups by benchmark.
	type cellJob struct {
		alias, policy string
		cp            int
	}
	var jobs []cellJob
	for _, alias := range opts.Benchmarks {
		for _, policy := range opts.Policies {
			jobs = append(jobs, cellJob{alias, policy, cp})
		}
	}
	curveBase := len(jobs)
	for _, sz := range opts.CurveSizesKB {
		for _, alias := range opts.Benchmarks {
			for _, policy := range opts.Policies {
				jobs = append(jobs, cellJob{alias, policy, experiments.CapacityPrims(sz)})
			}
		}
	}

	cells, err := experiments.SweepSlice(ctx, opts.Parallel, jobs,
		func(_ context.Context, j cellJob) (cellPayload, error) {
			return raceCell(r, j.alias, j.policy, j.cp, opts.Ways)
		})
	if err != nil {
		return nil, err
	}

	// Per-benchmark reuse-distance summaries come from the same memoized
	// profiles the cells used; by now every profile is a memo hit.
	reuse := make(map[string]stats.ReuseDistSummary, len(opts.Benchmarks))
	for _, alias := range opts.Benchmarks {
		prof, err := r.LRUProfile(alias)
		if err != nil {
			return nil, err
		}
		reuse[alias] = stats.SummarizeReuseDist(prof.Distances, prof.Cold)
	}

	rep := buildReport(opts, headlineCfg, r.Frames, cells[:curveBase], reuse)
	if opts.Curves {
		rep.Curves = buildCurves(opts, cells[curveBase:])
	}
	return rep, nil
}
