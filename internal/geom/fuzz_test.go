package geom

import "testing"

// FuzzTriangleRectOverlap cross-checks the separating-axis overlap test
// against a point-sampling oracle: whenever the SAT test reports no
// overlap, no sampled point of the rectangle may be inside the triangle
// (sampling can prove overlap but never absence, so the check is
// one-sided).
func FuzzTriangleRectOverlap(f *testing.F) {
	f.Add(float32(0), float32(0), float32(10), float32(0), float32(0), float32(10))
	f.Add(float32(50), float32(20), float32(20), float32(50), float32(70), float32(70))
	f.Add(float32(-5), float32(-5), float32(40), float32(-5), float32(-5), float32(40))
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy float32) {
		bound := func(v float32) float32 {
			if v != v || v > 1e6 || v < -1e6 { // NaN/huge inputs: clamp
				return 0
			}
			return v
		}
		a := Vec2{bound(ax), bound(ay)}
		b := Vec2{bound(bx), bound(by)}
		c := Vec2{bound(cx), bound(cy)}
		r := Rect{Min: Vec2{8, 8}, Max: Vec2{24, 24}}
		if TriangleRectOverlap(a, b, c, r) {
			return
		}
		for x := r.Min.X; x <= r.Max.X; x += 1.5 {
			for y := r.Min.Y; y <= r.Max.Y; y += 1.5 {
				if PointInTriangle(Vec2{x, y}, a, b, c) {
					t.Fatalf("SAT says no overlap but (%v,%v) is inside triangle (%v %v %v)",
						x, y, a, b, c)
				}
			}
		}
	})
}
