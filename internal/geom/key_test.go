package geom

import (
	"math/rand"
	"sort"
	"testing"
)

func TestTileCodeRoundTrip(t *testing.T) {
	cases := []struct {
		tile TileID
		pos  uint16
		prim uint32
	}{
		{0, 0, 0},
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
		{0xFFFF, 0, 0},
		{0, 0xFFFF, 0},
		{0, 0, 0xFFFFFFFF},
		{0xFFFF, 0xFFFF, 0xFFFFFFFF},
		{1487, 1487, 123456}, // last tile of the default 1960x768 screen
		{0xAAAA, 0x5555, 0xDEADBEEF},
	}
	for _, c := range cases {
		code := PackTileCode(c.tile, c.pos, c.prim)
		if got := code.Tile(); got != c.tile {
			t.Errorf("PackTileCode(%d,%d,%d).Tile() = %d", c.tile, c.pos, c.prim, got)
		}
		if got := code.Pos(); got != c.pos {
			t.Errorf("PackTileCode(%d,%d,%d).Pos() = %d", c.tile, c.pos, c.prim, got)
		}
		if got := code.Prim(); got != c.prim {
			t.Errorf("PackTileCode(%d,%d,%d).Prim() = %d", c.tile, c.pos, c.prim, got)
		}
	}
}

// FuzzTileCode drives the pack/unpack round trip over arbitrary field
// values: every field must come back exactly, and setting one field to an
// extreme must not bleed into its neighbors' bit ranges.
func FuzzTileCode(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint32(0))
	f.Add(uint16(0xFFFF), uint16(0xFFFF), uint32(0xFFFFFFFF))
	f.Add(uint16(1487), uint16(42), uint32(7))
	f.Add(uint16(1), uint16(2), uint32(3))
	f.Fuzz(func(t *testing.T, tile uint16, pos uint16, prim uint32) {
		code := PackTileCode(TileID(tile), pos, prim)
		if code.Tile() != TileID(tile) || code.Pos() != pos || code.Prim() != prim {
			t.Fatalf("round trip (%d,%d,%d) -> %#x -> (%d,%d,%d)",
				tile, pos, prim, uint64(code), code.Tile(), code.Pos(), code.Prim())
		}
		// No bleed: zeroing one input must zero exactly that field.
		if c := PackTileCode(TileID(tile), pos, 0); c.Prim() != 0 || c.Tile() != TileID(tile) || c.Pos() != pos {
			t.Fatalf("prim=0 bleed: %#x", uint64(c))
		}
		if c := PackTileCode(0, pos, prim); c.Tile() != 0 || c.Pos() != pos || c.Prim() != prim {
			t.Fatalf("tile=0 bleed: %#x", uint64(c))
		}
		if c := PackTileCode(TileID(tile), 0, prim); c.Pos() != 0 || c.Tile() != TileID(tile) || c.Prim() != prim {
			t.Fatalf("pos=0 bleed: %#x", uint64(c))
		}
	})
}

// TestPackedKeyMapOrderIndependence is the property behind the parallel
// frame core's use of packed keys: when per-tile records keyed by TileCode
// pass through a Go map (whose iteration order is deliberately random),
// recovering the traversal order by sorting on the packed position field
// must yield the same commit sequence — and therefore the same stats — no
// matter the insertion order. A digest over the recovered sequence stands
// in for the simulator's stats fold.
func TestPackedKeyMapOrderIndependence(t *testing.T) {
	const n = 1489 // more tiles than the default screen, not a power of two
	codes := make([]TileCode, n)
	for i := range codes {
		codes[i] = PackTileCode(TileID(i%1488), uint16(i), uint32(i*2654435761))
	}
	digest := func(insertion []TileCode) uint64 {
		m := make(map[TileCode]uint64, len(insertion))
		for _, c := range insertion {
			m[c] = uint64(c.Prim()) + uint64(c.Tile())
		}
		keys := make([]TileCode, 0, len(m))
		for c := range m {
			keys = append(keys, c)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a].Pos() < keys[b].Pos() })
		var h uint64 = 14695981039346656037
		for _, c := range keys {
			h = (h ^ uint64(c)) * 1099511628211
			h = (h ^ m[c]) * 1099511628211
		}
		return h
	}
	want := digest(codes)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		shuffled := append([]TileCode(nil), codes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := digest(shuffled); got != want {
			t.Fatalf("trial %d: insertion order leaked into the commit digest: %#x != %#x", trial, got, want)
		}
	}
}
