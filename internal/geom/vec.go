// Package geom provides the small linear-algebra and screen-space geometry
// kernel used by the TBR GPU model: vectors, 4x4 matrices, triangles,
// bounding boxes and triangle-tile overlap tests.
//
// Coordinates follow the usual graphics convention: the Geometry Pipeline
// works in clip space, and after the viewport transform primitives live in
// screen space with the origin at the top-left corner, x growing right and
// y growing down, both measured in pixels.
package geom

import "math"

// Vec2 is a 2-component single-precision vector (screen-space positions).
type Vec2 struct {
	X, Y float32
}

// Vec3 is a 3-component single-precision vector.
type Vec3 struct {
	X, Y, Z float32
}

// Vec4 is a 4-component single-precision vector. It doubles as the storage
// unit for one vertex worth of one attribute (16 bytes, matching the paper's
// attribute layout: 48 bytes per attribute = 16 bytes x 3 vertices).
type Vec4 struct {
	X, Y, Z, W float32
}

// Add returns a+b.
func (a Vec2) Add(b Vec2) Vec2 { return Vec2{a.X + b.X, a.Y + b.Y} }

// Sub returns a-b.
func (a Vec2) Sub(b Vec2) Vec2 { return Vec2{a.X - b.X, a.Y - b.Y} }

// Scale returns a*s.
func (a Vec2) Scale(s float32) Vec2 { return Vec2{a.X * s, a.Y * s} }

// Dot returns the dot product of a and b.
func (a Vec2) Dot(b Vec2) float32 { return a.X*b.X + a.Y*b.Y }

// Cross returns the z component of the 3D cross product of a and b
// interpreted as vectors in the z=0 plane. Its sign gives the orientation of
// the turn from a to b.
func (a Vec2) Cross(b Vec2) float32 { return a.X*b.Y - a.Y*b.X }

// Len returns the Euclidean length of a.
func (a Vec2) Len() float32 {
	return float32(math.Sqrt(float64(a.Dot(a))))
}

// Add returns a+b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a-b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a*s.
func (a Vec3) Scale(s float32) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product of a and b.
func (a Vec3) Dot(b Vec3) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product of a and b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean length of a.
func (a Vec3) Len() float32 {
	return float32(math.Sqrt(float64(a.Dot(a))))
}

// Normalize returns a unit-length vector in the direction of a, or the zero
// vector when a has zero length.
func (a Vec3) Normalize() Vec3 {
	l := a.Len()
	if l == 0 {
		return Vec3{}
	}
	return a.Scale(1 / l)
}

// Add returns a+b.
func (a Vec4) Add(b Vec4) Vec4 {
	return Vec4{a.X + b.X, a.Y + b.Y, a.Z + b.Z, a.W + b.W}
}

// Sub returns a-b.
func (a Vec4) Sub(b Vec4) Vec4 {
	return Vec4{a.X - b.X, a.Y - b.Y, a.Z - b.Z, a.W - b.W}
}

// Scale returns a*s.
func (a Vec4) Scale(s float32) Vec4 {
	return Vec4{a.X * s, a.Y * s, a.Z * s, a.W * s}
}

// Dot returns the dot product of a and b.
func (a Vec4) Dot(b Vec4) float32 {
	return a.X*b.X + a.Y*b.Y + a.Z*b.Z + a.W*b.W
}

// XY returns the first two components of a as a Vec2.
func (a Vec4) XY() Vec2 { return Vec2{a.X, a.Y} }

// XYZ returns the first three components of a as a Vec3.
func (a Vec4) XYZ() Vec3 { return Vec3{a.X, a.Y, a.Z} }

// PerspectiveDivide returns a scaled by 1/W with W preserved. For W==0 the
// vector is returned unchanged (degenerate clip-space point).
func (a Vec4) PerspectiveDivide() Vec4 {
	if a.W == 0 {
		return a
	}
	inv := 1 / a.W
	return Vec4{a.X * inv, a.Y * inv, a.Z * inv, a.W}
}
