package geom

import "fmt"

// Screen describes the render target and its partition into square tiles.
// The paper's configuration (Table I) is 1960x768 pixels with 32x32 tiles.
type Screen struct {
	Width, Height int // pixels
	TileSize      int // pixels per tile edge
}

// DefaultScreen returns the Table I configuration.
func DefaultScreen() Screen {
	return Screen{Width: 1960, Height: 768, TileSize: 32}
}

// TilesX returns the number of tile columns.
func (s Screen) TilesX() int { return (s.Width + s.TileSize - 1) / s.TileSize }

// TilesY returns the number of tile rows.
func (s Screen) TilesY() int { return (s.Height + s.TileSize - 1) / s.TileSize }

// NumTiles returns the total number of tiles on the screen.
func (s Screen) NumTiles() int { return s.TilesX() * s.TilesY() }

// Validate reports whether the screen configuration is usable.
func (s Screen) Validate() error {
	if s.Width <= 0 || s.Height <= 0 {
		return fmt.Errorf("geom: screen %dx%d must be positive", s.Width, s.Height)
	}
	if s.TileSize <= 0 {
		return fmt.Errorf("geom: tile size %d must be positive", s.TileSize)
	}
	if s.NumTiles() > 1<<12 {
		// Tile IDs travel in 12-bit PMD/L2 fields (paper Figs. 6, 8).
		return fmt.Errorf("geom: %d tiles exceed the 12-bit tile ID space", s.NumTiles())
	}
	return nil
}

// TileID identifies a tile by its row-major index on the screen.
type TileID uint16

// InvalidTile is the sentinel for "no tile" / "never accessed again". It is
// the all-ones value of the 12-bit OPT Number field.
const InvalidTile TileID = 0xFFF

// TileAt returns the tile containing pixel (x, y). The caller must pass
// coordinates within the screen.
func (s Screen) TileAt(x, y int) TileID {
	return TileID(y/s.TileSize*s.TilesX() + x/s.TileSize)
}

// TileCoord returns the column and row of tile t.
func (s Screen) TileCoord(t TileID) (tx, ty int) {
	return int(t) % s.TilesX(), int(t) / s.TilesX()
}

// TileRect returns the screen-space rectangle of tile t, clipped to the
// screen edge for partial boundary tiles.
func (s Screen) TileRect(t TileID) Rect {
	tx, ty := s.TileCoord(t)
	r := Rect{
		Min: Vec2{float32(tx * s.TileSize), float32(ty * s.TileSize)},
		Max: Vec2{float32((tx + 1) * s.TileSize), float32((ty + 1) * s.TileSize)},
	}
	if r.Max.X > float32(s.Width) {
		r.Max.X = float32(s.Width)
	}
	if r.Max.Y > float32(s.Height) {
		r.Max.Y = float32(s.Height)
	}
	return r
}

// OverlappedTilesBBox appends the IDs of all tiles the primitive's
// *bounding box* covers — the cheap conservative test simple binners use.
// Thin or diagonal primitives produce false overlaps: tiles whose lists
// carry a primitive the Rasterizer will discard (the overhead studied by
// Antochi et al. [2] and Yang et al. [39]; see the FalseOverlap
// experiment).
func (s Screen) OverlappedTilesBBox(p *Primitive, dst []TileID) []TileID {
	bb := p.BBox()
	if bb.Max.X < 0 || bb.Max.Y < 0 ||
		bb.Min.X > float32(s.Width) || bb.Min.Y > float32(s.Height) {
		return dst
	}
	x0 := clampInt(int(bb.Min.X)/s.TileSize, 0, s.TilesX()-1)
	x1 := clampInt(int(bb.Max.X)/s.TileSize, 0, s.TilesX()-1)
	y0 := clampInt(int(bb.Min.Y)/s.TileSize, 0, s.TilesY()-1)
	y1 := clampInt(int(bb.Max.Y)/s.TileSize, 0, s.TilesY()-1)
	for ty := y0; ty <= y1; ty++ {
		for tx := x0; tx <= x1; tx++ {
			dst = append(dst, TileID(ty*s.TilesX()+tx))
		}
	}
	return dst
}

// OverlappedTiles appends to dst the IDs of all tiles the primitive
// overlaps, in row-major order, using the exact triangle-rectangle test over
// the tiles covered by the primitive's bounding box. It returns the extended
// slice.
func (s Screen) OverlappedTiles(p *Primitive, dst []TileID) []TileID {
	bb := p.BBox()
	// Clip the bbox to the screen.
	if bb.Max.X < 0 || bb.Max.Y < 0 ||
		bb.Min.X > float32(s.Width) || bb.Min.Y > float32(s.Height) {
		return dst
	}
	x0 := clampInt(int(bb.Min.X)/s.TileSize, 0, s.TilesX()-1)
	x1 := clampInt(int(bb.Max.X)/s.TileSize, 0, s.TilesX()-1)
	y0 := clampInt(int(bb.Min.Y)/s.TileSize, 0, s.TilesY()-1)
	y1 := clampInt(int(bb.Max.Y)/s.TileSize, 0, s.TilesY()-1)
	for ty := y0; ty <= y1; ty++ {
		for tx := x0; tx <= x1; tx++ {
			t := TileID(ty*s.TilesX() + tx)
			if TriangleRectOverlap(p.Pos[0], p.Pos[1], p.Pos[2], s.TileRect(t)) {
				dst = append(dst, t)
			}
		}
	}
	return dst
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
