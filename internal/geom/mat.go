package geom

import "math"

// Mat4 is a 4x4 row-major single-precision matrix.
type Mat4 [16]float32

// Identity returns the identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Mul returns the matrix product m*n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float32
			for k := 0; k < 4; k++ {
				s += m[i*4+k] * n[k*4+j]
			}
			r[i*4+j] = s
		}
	}
	return r
}

// Apply returns m*v treating v as a column vector.
func (m Mat4) Apply(v Vec4) Vec4 {
	return Vec4{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]*v.W,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]*v.W,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]*v.W,
		m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]*v.W,
	}
}

// Translate returns a translation matrix.
func Translate(x, y, z float32) Mat4 {
	m := Identity()
	m[3], m[7], m[11] = x, y, z
	return m
}

// ScaleUniform returns a uniform scaling matrix.
func ScaleUniform(s float32) Mat4 {
	m := Identity()
	m[0], m[5], m[10] = s, s, s
	return m
}

// RotateZ returns a rotation matrix about the z axis by angle radians.
func RotateZ(angle float32) Mat4 {
	s := float32(math.Sin(float64(angle)))
	c := float32(math.Cos(float64(angle)))
	m := Identity()
	m[0], m[1] = c, -s
	m[4], m[5] = s, c
	return m
}
