package geom

// TileCode packs a tile identity — the tile ID, its traversal position and
// the primitive being processed — into one uint64 bitfield, the same trick
// hardware tile caches use for tag words (a struct key would be hashed and
// compared field-wise in a map; one word compares in a single instruction
// and indexes arrays directly):
//
//	bits 63..32  prim  (program-order primitive index, 32 bits)
//	bits 31..16  pos   (traversal position, 16 bits)
//	bits 15..0   tile  (row-major TileID, 16 bits)
//
// The zero TileCode is tile 0 / position 0 / primitive 0; there is no
// sentinel inside the code itself — callers that need "no code" use an
// out-of-band flag or a separate validity bit.
type TileCode uint64

// Field widths and shifts of the TileCode layout. TileID and traversal
// positions are uint16 throughout the repo (the screen is capped at 65536
// tiles), so 16 bits each lose nothing; primitives get the remaining 32.
const (
	tileCodeTileBits = 16
	tileCodePosBits  = 16
	tileCodePosShift = tileCodeTileBits
	tileCodePrimShift = tileCodeTileBits + tileCodePosBits

	tileCodeTileMask = 1<<tileCodeTileBits - 1
	tileCodePosMask  = 1<<tileCodePosBits - 1
)

// PackTileCode packs (tile, traversal position, primitive) into a TileCode.
func PackTileCode(tile TileID, pos uint16, prim uint32) TileCode {
	return TileCode(uint64(tile)) |
		TileCode(uint64(pos))<<tileCodePosShift |
		TileCode(uint64(prim))<<tileCodePrimShift
}

// Tile returns the packed TileID.
func (c TileCode) Tile() TileID { return TileID(c & tileCodeTileMask) }

// Pos returns the packed traversal position.
func (c TileCode) Pos() uint16 { return uint16(c >> tileCodePosShift & tileCodePosMask) }

// Prim returns the packed primitive index.
func (c TileCode) Prim() uint32 { return uint32(c >> tileCodePrimShift) }
