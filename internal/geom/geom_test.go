package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVec2Ops(t *testing.T) {
	a := Vec2{1, 2}
	b := Vec2{3, -4}
	if got := a.Add(b); got != (Vec2{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec2{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != 1*(-4)-2*3 {
		t.Errorf("Cross = %v", got)
	}
	if got := (Vec2{3, 4}).Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if got := a.Cross(b); got != (Vec3{0, 0, 1}) {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("Add/Sub roundtrip = %v", got)
	}
	n := (Vec3{0, 0, 5}).Normalize()
	if n != (Vec3{0, 0, 1}) {
		t.Errorf("Normalize = %v", n)
	}
	if (Vec3{}).Normalize() != (Vec3{}) {
		t.Error("Normalize of zero vector should be zero")
	}
}

func TestVec4PerspectiveDivide(t *testing.T) {
	v := Vec4{2, 4, 6, 2}
	got := v.PerspectiveDivide()
	want := Vec4{1, 2, 3, 2}
	if got != want {
		t.Errorf("PerspectiveDivide = %v, want %v", got, want)
	}
	z := Vec4{1, 2, 3, 0}
	if z.PerspectiveDivide() != z {
		t.Error("PerspectiveDivide with W=0 should be identity")
	}
}

func TestMat4Identity(t *testing.T) {
	v := Vec4{1, 2, 3, 4}
	if got := Identity().Apply(v); got != v {
		t.Errorf("Identity.Apply = %v", got)
	}
	m := Translate(10, 20, 30)
	got := m.Apply(Vec4{1, 1, 1, 1})
	want := Vec4{11, 21, 31, 1}
	if got != want {
		t.Errorf("Translate.Apply = %v, want %v", got, want)
	}
}

func TestMat4MulAssociatesWithApply(t *testing.T) {
	m := Translate(1, 2, 3)
	n := ScaleUniform(2)
	v := Vec4{1, 1, 1, 1}
	// (m*n)(v) == m(n(v))
	lhs := m.Mul(n).Apply(v)
	rhs := m.Apply(n.Apply(v))
	if lhs != rhs {
		t.Errorf("(m*n)(v)=%v, m(n(v))=%v", lhs, rhs)
	}
}

func TestRotateZ(t *testing.T) {
	m := RotateZ(math.Pi / 2)
	got := m.Apply(Vec4{1, 0, 0, 1})
	if math.Abs(float64(got.X)) > 1e-6 || math.Abs(float64(got.Y-1)) > 1e-6 {
		t.Errorf("RotateZ(pi/2)(1,0) = %v, want (0,1)", got)
	}
}

func TestPrimitiveBBoxAndArea(t *testing.T) {
	p := &Primitive{
		Pos: [3]Vec2{{0, 0}, {10, 0}, {0, 10}},
	}
	bb := p.BBox()
	if bb.Min != (Vec2{0, 0}) || bb.Max != (Vec2{10, 10}) {
		t.Errorf("BBox = %v", bb)
	}
	if got := p.Area(); got != 50 {
		t.Errorf("Area = %v, want 50", got)
	}
	// Reverse winding must give the same positive area.
	q := &Primitive{Pos: [3]Vec2{{0, 0}, {0, 10}, {10, 0}}}
	if got := q.Area(); got != 50 {
		t.Errorf("Area (reverse winding) = %v, want 50", got)
	}
}

func TestPrimitiveValidate(t *testing.T) {
	p := &Primitive{ID: 1}
	if err := p.Validate(); err == nil {
		t.Error("expected error for 0 attributes")
	}
	p.Attrs = make([]Attribute, MaxAttributes+1)
	if err := p.Validate(); err == nil {
		t.Error("expected error for too many attributes")
	}
	p.Attrs = make([]Attribute, 3)
	if err := p.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestTriangleRectOverlapBasic(t *testing.T) {
	r := Rect{Min: Vec2{0, 0}, Max: Vec2{32, 32}}
	cases := []struct {
		name    string
		a, b, c Vec2
		want    bool
	}{
		{"inside", Vec2{5, 5}, Vec2{10, 5}, Vec2{5, 10}, true},
		{"covering", Vec2{-100, -100}, Vec2{200, -100}, Vec2{-100, 200}, true},
		{"outside right", Vec2{50, 5}, Vec2{60, 5}, Vec2{50, 15}, false},
		{"bbox overlaps but triangle misses corner", Vec2{50, 20}, Vec2{20, 50}, Vec2{70, 70}, false},
		{"edge touches", Vec2{32, 0}, Vec2{64, 0}, Vec2{32, 32}, true},
		{"degenerate inside", Vec2{5, 5}, Vec2{10, 10}, Vec2{15, 15}, true},
	}
	for _, c := range cases {
		if got := TriangleRectOverlap(c.a, c.b, c.c, r); got != c.want {
			t.Errorf("%s: overlap = %v, want %v", c.name, got, c.want)
		}
	}
}

// Property: the exact overlap test never reports overlap when bboxes are
// disjoint, and always reports overlap when a triangle vertex is inside the
// rectangle.
func TestTriangleRectOverlapProperties(t *testing.T) {
	r := Rect{Min: Vec2{10, 10}, Max: Vec2{20, 20}}
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Vec2{float32(ax), float32(ay)}
		b := Vec2{float32(bx), float32(by)}
		c := Vec2{float32(cx), float32(cy)}
		got := TriangleRectOverlap(a, b, c, r)
		tri := &Primitive{Pos: [3]Vec2{a, b, c}}
		if !tri.BBox().Intersects(r) && got {
			return false // overlap without bbox intersection: impossible
		}
		vertexInside := r.Contains(a) || r.Contains(b) || r.Contains(c)
		if vertexInside && !got {
			return false // vertex in rect must overlap
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: overlap agrees with a dense point-sampling oracle for
// non-degenerate triangles (sampling can only prove overlap, never absence,
// so we check one direction).
func TestTriangleRectOverlapSamplingOracle(t *testing.T) {
	r := Rect{Min: Vec2{8, 8}, Max: Vec2{24, 24}}
	f := func(ax, ay, bx, by, cx, cy uint8) bool {
		a := Vec2{float32(ax % 40), float32(ay % 40)}
		b := Vec2{float32(bx % 40), float32(by % 40)}
		c := Vec2{float32(cx % 40), float32(cy % 40)}
		got := TriangleRectOverlap(a, b, c, r)
		if got {
			return true // cannot disprove by sampling
		}
		// If the test says no overlap, no sampled rect point may be inside
		// the triangle.
		for x := r.Min.X; x <= r.Max.X; x += 2 {
			for y := r.Min.Y; y <= r.Max.Y; y += 2 {
				if PointInTriangle(Vec2{x, y}, a, b, c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestScreenTiles(t *testing.T) {
	s := DefaultScreen()
	if err := s.Validate(); err != nil {
		t.Fatalf("default screen invalid: %v", err)
	}
	if s.TilesX() != 62 { // ceil(1960/32) = 62
		t.Errorf("TilesX = %d, want 62", s.TilesX())
	}
	if s.TilesY() != 24 {
		t.Errorf("TilesY = %d, want 24", s.TilesY())
	}
	if s.NumTiles() != 62*24 {
		t.Errorf("NumTiles = %d", s.NumTiles())
	}
	if got := s.TileAt(0, 0); got != 0 {
		t.Errorf("TileAt(0,0) = %d", got)
	}
	if got := s.TileAt(33, 33); got != TileID(62+1) {
		t.Errorf("TileAt(33,33) = %d, want %d", got, 62+1)
	}
	tx, ty := s.TileCoord(TileID(63))
	if tx != 1 || ty != 1 {
		t.Errorf("TileCoord(63) = (%d,%d)", tx, ty)
	}
	// Boundary tile rect is clipped to the screen.
	last := TileID(s.NumTiles() - 1)
	r := s.TileRect(last)
	if r.Max.X != float32(s.Width) || r.Max.Y != float32(s.Height) {
		t.Errorf("last tile rect %v should clip to screen", r)
	}
}

func TestScreenValidate(t *testing.T) {
	bad := []Screen{
		{Width: 0, Height: 100, TileSize: 32},
		{Width: 100, Height: 0, TileSize: 32},
		{Width: 100, Height: 100, TileSize: 0},
		{Width: 1 << 14, Height: 1 << 14, TileSize: 8}, // too many tiles for 12-bit IDs
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestOverlappedTiles(t *testing.T) {
	s := Screen{Width: 96, Height: 96, TileSize: 32} // 3x3 tiles
	// A triangle fully inside tile 4 (center).
	p := &Primitive{Pos: [3]Vec2{{40, 40}, {50, 40}, {40, 50}}}
	got := s.OverlappedTiles(p, nil)
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("OverlappedTiles = %v, want [4]", got)
	}
	// A triangle covering the whole screen overlaps all 9 tiles.
	q := &Primitive{Pos: [3]Vec2{{-200, -200}, {500, -200}, {-200, 500}}}
	got = s.OverlappedTiles(q, nil)
	if len(got) != 9 {
		t.Errorf("full-screen triangle overlaps %d tiles, want 9", len(got))
	}
	// Row-major ordering.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("tiles not in row-major order: %v", got)
		}
	}
	// Off-screen triangle overlaps nothing.
	o := &Primitive{Pos: [3]Vec2{{-50, -50}, {-10, -50}, {-50, -10}}}
	if got := s.OverlappedTiles(o, nil); len(got) != 0 {
		t.Errorf("off-screen triangle overlaps %v", got)
	}
}

// Property: every tile reported by OverlappedTiles intersects the
// primitive's bounding box, and the tile containing each on-screen vertex is
// reported.
func TestOverlappedTilesProperty(t *testing.T) {
	s := Screen{Width: 128, Height: 128, TileSize: 32}
	f := func(ax, ay, bx, by, cx, cy uint8) bool {
		a := Vec2{float32(ax % 128), float32(ay % 128)}
		b := Vec2{float32(bx % 128), float32(by % 128)}
		c := Vec2{float32(cx % 128), float32(cy % 128)}
		p := &Primitive{Pos: [3]Vec2{a, b, c}}
		tiles := s.OverlappedTiles(p, nil)
		set := map[TileID]bool{}
		bb := p.BBox()
		for _, id := range tiles {
			set[id] = true
			if !s.TileRect(id).Intersects(bb) {
				return false
			}
		}
		for _, v := range p.Pos {
			// Clamp vertices on the far edge into the last tile.
			x := clampInt(int(v.X), 0, s.Width-1)
			y := clampInt(int(v.Y), 0, s.Height-1)
			if !set[s.TileAt(x, y)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
