package geom

// TriangleRectOverlap reports whether the triangle (a, b, c) overlaps the
// rectangle r. It is an exact test built from the separating axis theorem:
// the triangle and the rectangle are disjoint iff one of the rectangle's two
// axes or one of the triangle's three edge normals separates them.
//
// This is the "accurate bounding-box overlap test" the Polygon List Builder
// needs so that primitives are only binned into tiles they truly touch
// (cf. Antochi et al., cited as [2] in the paper).
func TriangleRectOverlap(a, b, c Vec2, r Rect) bool {
	// Fast reject: bounding boxes.
	minX, maxX := min3(a.X, b.X, c.X), max3(a.X, b.X, c.X)
	if maxX < r.Min.X || minX > r.Max.X {
		return false
	}
	minY, maxY := min3(a.Y, b.Y, c.Y), max3(a.Y, b.Y, c.Y)
	if maxY < r.Min.Y || minY > r.Max.Y {
		return false
	}

	// Degenerate (zero-area) triangles: the bbox test above is exact enough
	// for binning purposes; treat as overlapping if bboxes intersect.
	area := b.Sub(a).Cross(c.Sub(a))
	if area == 0 {
		return true
	}

	// Triangle edge normals as separating axes. All three triangle vertices
	// are on one side by construction; check whether the whole rectangle is
	// strictly on the other side.
	edges := [3][2]Vec2{{a, b}, {b, c}, {c, a}}
	for _, e := range edges {
		// Inward normal depends on winding; orient with the triangle area.
		n := Vec2{e[0].Y - e[1].Y, e[1].X - e[0].X}
		if area < 0 {
			n = n.Scale(-1)
		}
		// Rectangle corner most aligned with n. If even that corner is
		// outside (negative half-plane), the edge separates.
		corner := Vec2{r.Min.X, r.Min.Y}
		if n.X > 0 {
			corner.X = r.Max.X
		}
		if n.Y > 0 {
			corner.Y = r.Max.Y
		}
		if n.Dot(corner.Sub(e[0])) < 0 {
			return false
		}
	}
	return true
}

// PointInTriangle reports whether point p lies inside (or on the border of)
// triangle (a, b, c). Degenerate (zero-area) triangles make the half-plane
// tests vacuous — one of them is identically zero — so the bounding box
// check keeps the function conservative for them: points outside the
// triangle's bbox are never "inside".
func PointInTriangle(p, a, b, c Vec2) bool {
	if p.X < min3(a.X, b.X, c.X) || p.X > max3(a.X, b.X, c.X) ||
		p.Y < min3(a.Y, b.Y, c.Y) || p.Y > max3(a.Y, b.Y, c.Y) {
		return false
	}
	d1 := sign(p, a, b)
	d2 := sign(p, b, c)
	d3 := sign(p, c, a)
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	return !(hasNeg && hasPos)
}

func sign(p, a, b Vec2) float32 {
	return (p.X-b.X)*(a.Y-b.Y) - (a.X-b.X)*(p.Y-b.Y)
}

func min3(a, b, c float32) float32 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func max3(a, b, c float32) float32 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}
