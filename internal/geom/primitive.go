package geom

import "fmt"

// MaxAttributes is the largest number of attributes a primitive may carry.
// The PMD encodes the attribute count in 4 bits (paper Fig. 3/6), so the
// count is limited to 15.
const MaxAttributes = 15

// AttrBytesPerVertex is the storage for one vertex worth of one attribute.
const AttrBytesPerVertex = 16

// AttrBytes is the storage for one attribute of one primitive: 16 bytes per
// vertex x 3 vertices = 48 bytes (paper Fig. 4).
const AttrBytes = 3 * AttrBytesPerVertex

// Attribute holds one interpolatable quantity (color, normal, texture
// coordinates, ...) for the three vertices of a triangle. 48 bytes of
// payload, exactly the paper's PB-Attributes record.
type Attribute struct {
	V [3]Vec4
}

// Primitive is an assembled triangle as it leaves the Primitive Assembly
// stage and enters the Tiling Engine. ID is assigned in program order and is
// also used (scaled) as the address of its first attribute in PB-Attributes.
type Primitive struct {
	ID    uint32
	Pos   [3]Vec2 // screen-space vertex positions, pixels
	Depth [3]float32
	Attrs []Attribute
}

// NumAttrs returns the number of attributes of the primitive.
func (p *Primitive) NumAttrs() int { return len(p.Attrs) }

// Validate reports whether the primitive satisfies the hardware encoding
// limits (non-zero attribute count that fits the 4-bit PMD field).
func (p *Primitive) Validate() error {
	if len(p.Attrs) == 0 {
		return fmt.Errorf("geom: primitive %d has no attributes", p.ID)
	}
	if len(p.Attrs) > MaxAttributes {
		return fmt.Errorf("geom: primitive %d has %d attributes, max %d",
			p.ID, len(p.Attrs), MaxAttributes)
	}
	return nil
}

// BBox returns the screen-space bounding box of the primitive.
func (p *Primitive) BBox() Rect {
	r := Rect{
		Min: p.Pos[0],
		Max: p.Pos[0],
	}
	for _, v := range p.Pos[1:] {
		if v.X < r.Min.X {
			r.Min.X = v.X
		}
		if v.Y < r.Min.Y {
			r.Min.Y = v.Y
		}
		if v.X > r.Max.X {
			r.Max.X = v.X
		}
		if v.Y > r.Max.Y {
			r.Max.Y = v.Y
		}
	}
	return r
}

// Area returns the (positive) screen-space area of the triangle in pixels².
func (p *Primitive) Area() float32 {
	a := p.Pos[1].Sub(p.Pos[0])
	b := p.Pos[2].Sub(p.Pos[0])
	c := a.Cross(b) / 2
	if c < 0 {
		return -c
	}
	return c
}

// Rect is an axis-aligned rectangle, Min inclusive, Max exclusive for
// coverage purposes.
type Rect struct {
	Min, Max Vec2
}

// Intersects reports whether r and s overlap with non-zero area or touch.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Contains reports whether point v lies inside r (Min inclusive, Max
// inclusive; tiles clip exactly at their borders).
func (r Rect) Contains(v Vec2) bool {
	return v.X >= r.Min.X && v.X <= r.Max.X && v.Y >= r.Min.Y && v.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float32 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float32 { return r.Max.Y - r.Min.Y }
