package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func fakeClock() *FakeClock {
	return NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
}

// --- Injector ---

// schedule drains n decisions from one site as a compact string.
func schedule(in *Injector, site string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		f := in.Evaluate(site)
		switch {
		case !f.Inject:
			out += "."
		case f.Panic:
			out += "P"
		case f.Err != nil:
			out += "E"
		default:
			out += "L"
		}
	}
	return out
}

func TestInjectorDeterministicSchedule(t *testing.T) {
	plan := FaultPlan{Rate: 0.3, PanicRate: 0.1, Codes: []int{500, 503}}
	mk := func(seed int64) *Injector {
		in := NewInjector(seed).WithClock(fakeClock())
		in.Arm(SiteHTTP, plan)
		in.Arm(SiteSimulate, plan)
		return in
	}
	a, b := mk(42), mk(42)
	if got, want := schedule(a, SiteHTTP, 200), schedule(b, SiteHTTP, 200); got != want {
		t.Fatalf("same seed, different schedules:\n%s\n%s", got, want)
	}
	// Per-site streams are independent: interleaving evaluations of another
	// site must not perturb a site's schedule.
	c := mk(42)
	var interleaved string
	for i := 0; i < 200; i++ {
		c.Evaluate(SiteSimulate)
		interleaved += schedule(c, SiteHTTP, 1)
	}
	if want := schedule(mk(42), SiteHTTP, 200); interleaved != want {
		t.Fatalf("interleaved site evaluations perturbed the schedule")
	}
	// A different seed gives a different schedule.
	if schedule(mk(42), SiteHTTP, 200) == schedule(mk(43), SiteHTTP, 200) {
		t.Fatalf("seeds 42 and 43 yielded identical 200-step schedules")
	}
}

func TestInjectorSequence(t *testing.T) {
	in := NewInjector(1).WithClock(fakeClock())
	in.Arm("site", FaultPlan{
		Seq:     []FaultKind{KindError, KindNone, KindPanic, KindLatency},
		Latency: 5 * time.Millisecond,
		Codes:   []int{503},
	})
	if got := schedule(in, "site", 5); got != "E.PL." {
		t.Fatalf("scripted schedule = %q, want E.PL. (rate 0 after Seq)", got)
	}
}

func TestInjectorInject(t *testing.T) {
	clk := fakeClock()
	in := NewInjector(1).WithClock(clk)
	in.Arm("s", FaultPlan{Seq: []FaultKind{KindLatency, KindError, KindPanic}, Latency: 50 * time.Millisecond, Codes: []int{500}})

	if err := in.Inject(context.Background(), "s"); err != nil {
		t.Fatalf("latency-only fault returned error: %v", err)
	}
	if clk.Slept() != 50*time.Millisecond {
		t.Fatalf("slept %v, want 50ms", clk.Slept())
	}
	err := in.Inject(context.Background(), "s")
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Code != 500 {
		t.Fatalf("error fault = %v, want InjectedError code 500", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("panic fault did not panic")
			}
		}()
		in.Inject(context.Background(), "s") //nolint:errcheck // panics
	}()

	// Unarmed site and nil injector are no-ops.
	if err := in.Inject(context.Background(), "other"); err != nil {
		t.Fatalf("unarmed site injected: %v", err)
	}
	var nilInj *Injector
	if f := nilInj.Evaluate("s"); f.Inject {
		t.Fatalf("nil injector injected")
	}
	if err := nilInj.Inject(context.Background(), "s"); err != nil {
		t.Fatalf("nil injector Inject = %v", err)
	}
}

func TestInjectorMetrics(t *testing.T) {
	in := NewInjector(1).WithClock(fakeClock())
	in.Arm("s", FaultPlan{Seq: []FaultKind{KindError, KindNone}, Codes: []int{500}})
	schedule(in, "s", 2)
	snap := in.Metrics().Snapshot()
	if got := snap.Get("chaos.s.evaluations"); got != 2 {
		t.Fatalf("evaluations = %d, want 2", got)
	}
	if got := snap.Get("chaos.s.injected"); got != 1 {
		t.Fatalf("injected = %d, want 1", got)
	}
}

func TestInjectorContext(t *testing.T) {
	in := NewInjector(1)
	ctx := ContextWithInjector(context.Background(), in)
	if InjectorFrom(ctx) != in {
		t.Fatalf("InjectorFrom did not round-trip")
	}
	if InjectorFrom(context.Background()) != nil {
		t.Fatalf("InjectorFrom(empty ctx) != nil")
	}
}

func TestParsePlan(t *testing.T) {
	plan, seed, err := ParsePlan("rate=0.2, lat=50ms, codes=500|503, panic=0.01, seed=7")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if plan.Rate != 0.2 || plan.PanicRate != 0.01 || plan.Latency != 50*time.Millisecond || seed != 7 {
		t.Fatalf("plan = %+v seed %d", plan, seed)
	}
	if len(plan.Codes) != 2 || plan.Codes[0] != 500 || plan.Codes[1] != 503 {
		t.Fatalf("codes = %v", plan.Codes)
	}
	if _, seed, err := ParsePlan("rate=1"); err != nil || seed != 1 {
		t.Fatalf("default seed = %d err %v, want 1 <nil>", seed, err)
	}
	for _, bad := range []string{
		"rate=2", "rate=x", "lat=-1s", "codes=99", "codes=abc",
		"seed=x", "unknown=1", "rate", "rate=0.6,panic=0.6",
	} {
		if _, _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// --- Retry ---

func TestRetrySucceedsAfterFailures(t *testing.T) {
	clk := fakeClock()
	calls := 0
	got, err := Do(context.Background(), RetryPolicy{MaxAttempts: 5, Clock: clk},
		func(context.Context) (int, error) {
			calls++
			if calls < 3 {
				return 0, fmt.Errorf("transient %d", calls)
			}
			return 99, nil
		})
	if err != nil || got != 99 || calls != 3 {
		t.Fatalf("got %d err %v calls %d", got, err, calls)
	}
	if clk.Slept() <= 0 {
		t.Fatalf("no backoff slept")
	}
}

func TestRetryNonRetryableStopsImmediately(t *testing.T) {
	calls := 0
	fatal := errors.New("fatal")
	err := Retry(context.Background(), RetryPolicy{
		MaxAttempts: 5, Clock: fakeClock(),
		Retryable: func(err error) bool { return !errors.Is(err, fatal) },
	}, func(context.Context) error { calls++; return fatal })
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("err %v calls %d, want fatal after 1 call", err, calls)
	}
}

func TestRetryAttemptsExhausted(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := Retry(context.Background(), RetryPolicy{MaxAttempts: 3, Clock: fakeClock()},
		func(context.Context) error { calls++; return boom })
	if calls != 3 || !errors.Is(err, boom) {
		t.Fatalf("calls %d err %v, want 3 attempts wrapping boom", calls, err)
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	clk := fakeClock()
	hint := 3 * time.Second
	calls := 0
	err := Retry(context.Background(), RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Clock: clk,
		RetryAfter: func(error) (time.Duration, bool) { return hint, true },
	}, func(context.Context) error {
		calls++
		if calls == 1 {
			return errors.New("throttled")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if clk.Slept() < hint {
		t.Fatalf("slept %v, want >= %v (the server hint)", clk.Slept(), hint)
	}
}

func TestRetryTimeBudget(t *testing.T) {
	clk := fakeClock()
	calls := 0
	err := Retry(context.Background(), RetryPolicy{
		MaxAttempts: 100, BaseDelay: time.Second, MaxDelay: time.Second,
		MaxElapsed: 2500 * time.Millisecond, Clock: clk,
		RetryAfter: func(error) (time.Duration, bool) { return time.Second, true },
	}, func(context.Context) error { calls++; return errors.New("always") })
	if err == nil || calls >= 100 {
		t.Fatalf("budget did not stop the loop (calls %d err %v)", calls, err)
	}
}

func TestRetryContextCanceledDuringSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	calls := 0
	// The wall clock sleeps for real here; cancel mid-sleep and require a
	// prompt return carrying both the last error and the context error.
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := Retry(ctx, RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second,
		RetryAfter: func(error) (time.Duration, bool) { return 10 * time.Second, true }},
		func(context.Context) error { calls++; return boom })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation did not interrupt the sleep (%v)", elapsed)
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want both context.Canceled and boom", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestRetryContextErrorNotRetried(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{MaxAttempts: 5, Clock: fakeClock()},
		func(context.Context) error { calls++; return context.DeadlineExceeded })
	if calls != 1 || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("calls %d err %v, want 1 call", calls, err)
	}
}

func TestRetryDeterministicDelays(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		var out []time.Duration
		Retry(context.Background(), RetryPolicy{ //nolint:errcheck
			MaxAttempts: 6, Seed: seed, Clock: fakeClock(),
			OnRetry: func(_ int, d time.Duration, _ error) { out = append(out, d) },
		}, func(context.Context) error { return errors.New("x") })
		return out
	}
	a, b := delays(9), delays(9)
	if len(a) != 5 || fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different delays: %v vs %v", a, b)
	}
}

// --- Breaker ---

func newTestBreaker(clk Clock, transitions *[]string) *Breaker {
	return NewBreaker(BreakerConfig{
		Window: 8, MinSamples: 4, FailureRatio: 0.5,
		Cooldown: 10 * time.Second, ProbeSuccesses: 2, Clock: clk,
		OnTransition: func(from, to BreakerState) {
			*transitions = append(*transitions, fmt.Sprintf("%s->%s", from, to))
		},
	})
}

func record(t *testing.T, b *Breaker, outcome error) {
	t.Helper()
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow rejected while %v: %v", b.State(), err)
	}
	done(outcome)
}

func TestBreakerLifecycle(t *testing.T) {
	clk := fakeClock()
	var trans []string
	b := newTestBreaker(clk, &trans)
	boom := errors.New("boom")

	// Failures below MinSamples keep it closed; crossing the ratio trips.
	record(t, b, boom)
	record(t, b, boom)
	record(t, b, nil)
	if b.State() != Closed {
		t.Fatalf("tripped below MinSamples")
	}
	record(t, b, boom)
	if b.State() != Open {
		t.Fatalf("state = %v, want open at 3/4 failures", b.State())
	}

	// Open: rejected with ErrOpen and a retry hint.
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker admitted (err %v)", err)
	}
	var oe *OpenError
	_, err := b.Allow()
	if !errors.As(err, &oe) || oe.RetryIn <= 0 {
		t.Fatalf("rejection carries no retry hint: %v", err)
	}

	// After cooldown: one probe at a time.
	clk.Advance(10 * time.Second)
	done1, err := b.Allow()
	if err != nil {
		t.Fatalf("post-cooldown probe rejected: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe admitted")
	}
	// Probe failure reopens and restarts the cooldown.
	done1(boom)
	if b.State() != Open {
		t.Fatalf("probe failure did not reopen")
	}

	// Next window: two probe successes close it.
	clk.Advance(10 * time.Second)
	record(t, b, nil)
	if b.State() != HalfOpen {
		t.Fatalf("one probe success closed early")
	}
	record(t, b, nil)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after %d probe successes", b.State(), 2)
	}

	want := "closed->open open->half-open half-open->open open->half-open half-open->closed"
	if got := fmt.Sprint(trans); got != "["+want+"]" {
		t.Fatalf("transitions = %v, want %s", trans, want)
	}

	// The window was reset on close: old failures are forgotten.
	record(t, b, boom)
	record(t, b, boom)
	record(t, b, nil)
	if b.State() != Closed {
		t.Fatalf("window not reset after close")
	}
}

func TestBreakerIgnoreOutcome(t *testing.T) {
	clk := fakeClock()
	var trans []string
	b := newTestBreaker(clk, &trans)
	// Ignored outcomes never trip the breaker.
	for i := 0; i < 20; i++ {
		record(t, b, Ignore)
	}
	if b.State() != Closed {
		t.Fatalf("ignored outcomes tripped the breaker")
	}
	// An ignored probe releases the probe slot without closing or reopening.
	boom := errors.New("boom")
	for i := 0; i < 4; i++ {
		record(t, b, boom)
	}
	clk.Advance(10 * time.Second)
	record(t, b, Ignore)
	if b.State() != HalfOpen {
		t.Fatalf("ignored probe changed state to %v", b.State())
	}
	record(t, b, nil)
	record(t, b, nil)
	if b.State() != Closed {
		t.Fatalf("probes after an ignored probe did not close")
	}
}

func TestBreakerStragglerAfterTrip(t *testing.T) {
	clk := fakeClock()
	var trans []string
	b := newTestBreaker(clk, &trans)
	boom := errors.New("boom")
	// Admit a call while closed, then trip, then let the straggler finish:
	// its outcome must not pollute the half-open probe accounting.
	doneStraggler, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow: %v", err)
	}
	for i := 0; i < 4; i++ {
		record(t, b, boom)
	}
	if b.State() != Open {
		t.Fatalf("not open")
	}
	clk.Advance(10 * time.Second)
	doneProbe, err := b.Allow()
	if err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	doneStraggler(boom) // must be ignored, not treated as the probe failing
	if b.State() != HalfOpen {
		t.Fatalf("straggler outcome moved state to %v", b.State())
	}
	doneProbe(nil)
	record(t, b, nil)
	if b.State() != Closed {
		t.Fatalf("probe successes did not close (state %v)", b.State())
	}
}

func TestBreakerNilAndDoneIdempotent(t *testing.T) {
	var b *Breaker
	done, err := b.Allow()
	if err != nil || b.State() != Closed {
		t.Fatalf("nil breaker rejected")
	}
	done(errors.New("x")) // no-op

	clk := fakeClock()
	var trans []string
	real := newTestBreaker(clk, &trans)
	d, err := real.Allow()
	if err != nil {
		t.Fatalf("Allow: %v", err)
	}
	boom := errors.New("boom")
	d(boom)
	d(boom) // second call must not double-count
	d(boom)
	for i := 0; i < 2; i++ {
		record(t, real, nil)
	}
	record(t, real, boom)
	// 2 failures / 4 outcomes = exactly the 0.5 ratio -> trips; had done()
	// triple-counted, it would have tripped earlier with 3/3.
	if real.State() != Open {
		t.Fatalf("state = %v, want open at ratio threshold", real.State())
	}
}
