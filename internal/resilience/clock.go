// Package resilience provides the failure-handling building blocks of the
// serving stack: a deterministic, seeded fault injector (chaos testing), a
// retrying executor with capped exponential backoff and full jitter, and a
// three-state circuit breaker with a sliding failure window.
//
// Every primitive takes an injectable Clock and a fixed seed, so two runs
// with the same seed produce identical fault schedules, retry delays and
// breaker transitions — resilience behavior is testable the same way the
// simulator's replacement policies are: byte-for-byte reproducible. No
// wall-clock reading or randomness ever flows into a computed result; time
// and chance only decide *whether* and *when* work runs, never what it
// produces.
package resilience

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the resilience primitives. Production code uses
// Wall(); deterministic tests use a FakeClock, which advances virtual time
// instantly instead of sleeping.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, whichever comes first,
	// returning ctx's error when the context won (nil after a full sleep).
	Sleep(ctx context.Context, d time.Duration) error
}

// Wall returns the real, process-wide clock.
func Wall() Clock { return wallClock{} }

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FakeClock is a manual clock for deterministic tests: Now returns virtual
// time, Sleep advances it immediately (recording the total slept) and
// Advance moves it without a sleep. Safe for concurrent use.
//
// Mixing a FakeClock with real context deadlines is incoherent (the
// deadline is wall time); tests pairing the two should use plain
// cancellation instead.
type FakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept time.Duration
}

// NewFakeClock returns a FakeClock starting at start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{now: start} }

func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves virtual time forward without recording a sleep.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.slept += d
	c.mu.Unlock()
	return nil
}

// Slept returns the total virtual time spent in Sleep.
func (c *FakeClock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}
