package resilience

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"math/rand/v2"

	"tcor/internal/stats"
)

// Well-known injection sites. A site is just a name the code under test
// evaluates at a failure-prone point; these constants keep the serving
// stack and its tests from drifting apart.
const (
	// SiteHTTP is evaluated by the serve middleware once per request,
	// before the handler runs (tcord -chaos arms it).
	SiteHTTP = "serve.http"
	// SiteSimulate is evaluated inside the result cache's singleflight
	// leader, after admission, just before the simulation runs.
	SiteSimulate = "serve.sim"
	// SiteSweep is evaluated by the experiments.Sweep worker pool once per
	// dispatched job.
	SiteSweep = "experiments.sweep"
	// SiteProxy is evaluated by the cluster gateway once per upstream
	// attempt, before the shard call leaves the process — an injected
	// fault looks exactly like a shard failure and must be absorbed by
	// hedging and failover.
	SiteProxy = "gw.proxy"
)

// FaultKind is one entry of an explicit fault sequence.
type FaultKind int

const (
	// KindNone injects nothing.
	KindNone FaultKind = iota
	// KindError injects the plan's error (or code) plus its latency.
	KindError
	// KindPanic injects a panic plus the plan's latency.
	KindPanic
	// KindLatency injects the plan's latency only.
	KindLatency
)

// FaultPlan says what one armed site injects. Probabilities draw from the
// site's seeded stream; an explicit Seq overrides them until exhausted.
type FaultPlan struct {
	// Rate is the probability of injecting a fault per evaluation: an
	// error fault when Codes or Err is set, a latency-only fault otherwise.
	Rate float64
	// PanicRate is the probability of injecting a panic (evaluated before
	// Rate; the two must sum to at most 1).
	PanicRate float64
	// Latency is added to every injected fault (and is the whole fault for
	// latency-only injections).
	Latency time.Duration
	// Codes are HTTP-ish status codes; an error fault picks one from the
	// site's seeded stream.
	Codes []int
	// Err overrides the default *InjectedError for error faults.
	Err error
	// Seq, when non-empty, is an explicit schedule: evaluation i gets
	// Seq[i] until the sequence is exhausted, after which the
	// probabilistic fields take over. Tests use it to script exact
	// failure orders.
	Seq []FaultKind
}

// Fault is one evaluation's decision.
type Fault struct {
	Inject  bool
	Latency time.Duration
	Code    int
	Err     error
	Panic   bool
	Site    string
}

// InjectedError is the default error of an error fault.
type InjectedError struct {
	Site string
	Code int
}

func (e *InjectedError) Error() string {
	if e.Code != 0 {
		return fmt.Sprintf("resilience: injected fault at %s (code %d)", e.Site, e.Code)
	}
	return "resilience: injected fault at " + e.Site
}

// Injector is a deterministic fault injector: each armed site gets its own
// PRNG stream seeded from (injector seed, site name), so per-site fault
// schedules are reproducible regardless of how sites interleave under
// concurrency. A nil *Injector is a valid no-op, so instrumentation points
// stay unconditional.
type Injector struct {
	seed  int64
	clock Clock
	reg   *stats.Registry

	mu    sync.Mutex
	sites map[string]*siteState
}

type siteState struct {
	mu       sync.Mutex
	plan     FaultPlan
	rng      *rand.Rand
	seqIdx   int
	evals    *stats.Counter
	injected *stats.Counter
}

// NewInjector returns an injector whose fault schedules derive from seed.
// The same seed always yields the same per-site schedules.
func NewInjector(seed int64) *Injector {
	return &Injector{
		seed:  seed,
		clock: Wall(),
		reg:   stats.NewRegistry(),
		sites: make(map[string]*siteState),
	}
}

// WithClock sets the clock used for latency injection (tests pass a
// FakeClock so injected latency is virtual). Call before arming sites.
func (in *Injector) WithClock(c Clock) *Injector {
	in.clock = c
	return in
}

// Meter redirects the injector's per-site counters
// ("chaos.<site>.evaluations" / ".injected") into reg. Call before arming
// sites; a private registry meters otherwise (readable via Metrics).
func (in *Injector) Meter(reg *stats.Registry) *Injector {
	in.reg = reg
	return in
}

// Metrics returns the registry holding the injector's counters.
func (in *Injector) Metrics() *stats.Registry { return in.reg }

// Clock returns the injector's clock.
func (in *Injector) Clock() Clock {
	if in == nil {
		return Wall()
	}
	return in.clock
}

// Arm configures what site injects, replacing any previous plan and
// restarting the site's seeded stream and sequence position.
func (in *Injector) Arm(site string, plan FaultPlan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sites[site] = &siteState{
		plan:     plan,
		rng:      rand.New(rand.NewPCG(uint64(in.seed), fnv64(site))),
		evals:    in.reg.Counter("chaos." + site + ".evaluations"),
		injected: in.reg.Counter("chaos." + site + ".injected"),
	}
}

// Evaluate draws the next decision for site. Unarmed sites (and a nil
// injector) never inject.
func (in *Injector) Evaluate(site string) Fault {
	if in == nil {
		return Fault{}
	}
	in.mu.Lock()
	st := in.sites[site]
	in.mu.Unlock()
	if st == nil {
		return Fault{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evals.Inc()

	kind := KindNone
	if st.seqIdx < len(st.plan.Seq) {
		kind = st.plan.Seq[st.seqIdx]
		st.seqIdx++
	} else if st.plan.PanicRate > 0 || st.plan.Rate > 0 {
		switch u := st.rng.Float64(); {
		case u < st.plan.PanicRate:
			kind = KindPanic
		case u < st.plan.PanicRate+st.plan.Rate:
			if len(st.plan.Codes) > 0 || st.plan.Err != nil {
				kind = KindError
			} else {
				kind = KindLatency
			}
		}
	}
	if kind == KindNone {
		return Fault{}
	}
	st.injected.Inc()
	f := Fault{Inject: true, Latency: st.plan.Latency, Site: site}
	switch kind {
	case KindPanic:
		f.Panic = true
	case KindError:
		f.Err = st.plan.Err
		if len(st.plan.Codes) > 0 {
			f.Code = st.plan.Codes[st.rng.IntN(len(st.plan.Codes))]
		}
		if f.Err == nil {
			f.Err = &InjectedError{Site: site, Code: f.Code}
		}
	}
	return f
}

// Inject evaluates site and applies the decision in place: it sleeps the
// injected latency on the injector's clock (aborting on ctx), panics for a
// panic fault, and returns the fault error for an error fault. It returns
// nil when nothing was injected or for latency-only faults.
func (in *Injector) Inject(ctx context.Context, site string) error {
	f := in.Evaluate(site)
	if !f.Inject {
		return nil
	}
	if f.Latency > 0 {
		if err := in.Clock().Sleep(ctx, f.Latency); err != nil {
			return err
		}
	}
	if f.Panic {
		panic("resilience: injected panic at " + site)
	}
	return f.Err
}

// fnv64 is FNV-1a over s, mixing the site name into its stream seed.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// injectorKey carries an *Injector in a context.
type injectorKey struct{}

// ContextWithInjector returns ctx carrying in, for layers (the experiments
// sweep pool) that are reached through a context rather than a config.
func ContextWithInjector(ctx context.Context, in *Injector) context.Context {
	return context.WithValue(ctx, injectorKey{}, in)
}

// InjectorFrom returns the context's injector, or nil (a valid no-op
// injector) when absent.
func InjectorFrom(ctx context.Context) *Injector {
	in, _ := ctx.Value(injectorKey{}).(*Injector)
	return in
}

// ParsePlan parses the -chaos flag grammar: comma-separated key=value
// pairs, e.g. "rate=0.2,lat=50ms,codes=500|503,panic=0.01,seed=42".
//
//	rate=F    probability of an error fault per evaluation (0..1)
//	panic=F   probability of an injected panic per evaluation (0..1)
//	lat=D     latency added to every injected fault (Go duration)
//	codes=C|C HTTP status codes error faults pick from (100..599)
//	seed=N    fault-schedule seed (default 1; same seed = same schedule)
//
// It returns the plan and the seed.
func ParsePlan(s string) (FaultPlan, int64, error) {
	var p FaultPlan
	seed := int64(1)
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return p, 0, fmt.Errorf("chaos: %q is not key=value", kv)
		}
		switch k {
		case "rate", "panic":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return p, 0, fmt.Errorf("chaos: %s must be a probability in [0,1], got %q", k, v)
			}
			if k == "rate" {
				p.Rate = f
			} else {
				p.PanicRate = f
			}
		case "lat":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return p, 0, fmt.Errorf("chaos: lat must be a non-negative duration, got %q", v)
			}
			p.Latency = d
		case "codes":
			for _, c := range strings.Split(v, "|") {
				n, err := strconv.Atoi(c)
				if err != nil || n < 100 || n > 599 {
					return p, 0, fmt.Errorf("chaos: codes must be HTTP statuses (100..599), got %q", c)
				}
				p.Codes = append(p.Codes, n)
			}
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return p, 0, fmt.Errorf("chaos: seed must be an integer, got %q", v)
			}
			seed = n
		default:
			return p, 0, fmt.Errorf("chaos: unknown key %q (rate, panic, lat, codes, seed)", k)
		}
	}
	if p.Rate+p.PanicRate > 1 {
		return p, 0, fmt.Errorf("chaos: rate+panic exceed 1 (%g)", p.Rate+p.PanicRate)
	}
	return p, seed, nil
}
