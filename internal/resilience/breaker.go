package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// Closed passes every call through, recording outcomes in the window.
	Closed BreakerState = iota
	// Open fails every call fast until the cooldown elapses.
	Open
	// HalfOpen admits one probe at a time; enough consecutive probe
	// successes close the breaker, any probe failure reopens it.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig configures a Breaker. The zero value is usable; every
// field falls back to the default documented on it.
type BreakerConfig struct {
	// Window is the sliding outcome window: the last Window recorded
	// outcomes decide the failure ratio (default 20).
	Window int
	// MinSamples is the minimum number of outcomes in the window before
	// the breaker may trip (default 5).
	MinSamples int
	// FailureRatio trips the breaker when failures/outcomes reaches it
	// (default 0.5).
	FailureRatio float64
	// Cooldown is how long an open breaker rejects before probing
	// (default 5s).
	Cooldown time.Duration
	// ProbeSuccesses is how many consecutive half-open probe successes
	// close the breaker (default 2).
	ProbeSuccesses int
	// Clock is the time source (nil = wall clock).
	Clock Clock
	// OnTransition observes every state change (nil = none). Called
	// under the breaker lock; keep it non-blocking.
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.FailureRatio <= 0 {
		c.FailureRatio = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	if c.Clock == nil {
		c.Clock = Wall()
	}
	return c
}

// ErrOpen is the sentinel every breaker rejection matches via errors.Is.
var ErrOpen = errors.New("resilience: circuit breaker is open")

// OpenError is a breaker rejection carrying how long until the next probe
// window. errors.Is(err, ErrOpen) matches it.
type OpenError struct{ RetryIn time.Duration }

func (e *OpenError) Error() string {
	if e.RetryIn > 0 {
		return fmt.Sprintf("resilience: circuit breaker is open (retry in %v)", e.RetryIn)
	}
	return "resilience: circuit breaker is open"
}

func (e *OpenError) Is(target error) bool { return target == ErrOpen }

// Ignore, passed to a breaker done callback, releases the call without
// counting it as a success or a failure — for outcomes that say nothing
// about dependency health (cancellations, admission rejections).
var Ignore = errors.New("resilience: ignore outcome")

// Breaker is a three-state circuit breaker over a sliding window of the
// last N outcomes. A nil *Breaker is a valid no-op that admits everything.
type Breaker struct {
	cfg BreakerConfig

	mu            sync.Mutex
	state         BreakerState
	window        []bool // ring of outcomes, true = failure
	count, head   int
	failures      int
	openedAt      time.Time
	probeInFlight bool
	probeOK       int
}

// NewBreaker builds a breaker from cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// State returns the breaker's current position. An open breaker whose
// cooldown has elapsed still reports Open until the next Allow probes it.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow asks to run one call. A nil error admits it, and the returned done
// callback must then be called exactly once with the call's outcome (nil =
// success, Ignore = don't count, anything else = failure); calling it more
// than once is a no-op. A non-nil error (an *OpenError matching ErrOpen)
// means the call must not run.
func (b *Breaker) Allow() (done func(error), err error) {
	if b == nil {
		return func(error) {}, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	probe := false
	switch b.state {
	case Open:
		rem := b.cfg.Cooldown - b.cfg.Clock.Now().Sub(b.openedAt)
		if rem > 0 {
			return nil, &OpenError{RetryIn: rem}
		}
		b.transition(HalfOpen)
		b.probeOK = 0
		b.probeInFlight = false
		fallthrough
	case HalfOpen:
		if b.probeInFlight {
			// One probe at a time; others back off a fraction of the
			// cooldown rather than piling onto the recovering dependency.
			return nil, &OpenError{RetryIn: b.cfg.Cooldown / 4}
		}
		b.probeInFlight = true
		probe = true
	}
	var once sync.Once
	return func(outcome error) {
		once.Do(func() { b.record(probe, outcome) })
	}, nil
}

// record files one admitted call's outcome.
func (b *Breaker) record(probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ignore := errors.Is(err, Ignore)
	if probe {
		if b.state != HalfOpen {
			return
		}
		b.probeInFlight = false
		switch {
		case ignore:
			// The probe said nothing; the next Allow probes again.
		case err != nil:
			b.trip()
		default:
			b.probeOK++
			if b.probeOK >= b.cfg.ProbeSuccesses {
				b.transition(Closed)
				b.reset()
			}
		}
		return
	}
	if b.state != Closed || ignore {
		// A straggler admitted before a trip, or a neutral outcome:
		// neither says anything the window should remember.
		return
	}
	b.push(err != nil)
	if b.count >= b.cfg.MinSamples &&
		float64(b.failures) >= b.cfg.FailureRatio*float64(b.count) {
		b.trip()
	}
}

// push files one outcome into the sliding window (b.mu held).
func (b *Breaker) push(fail bool) {
	if b.count == len(b.window) {
		if b.window[b.head] {
			b.failures--
		}
	} else {
		b.count++
	}
	b.window[b.head] = fail
	if fail {
		b.failures++
	}
	b.head = (b.head + 1) % len(b.window)
}

// trip opens the breaker and starts the cooldown (b.mu held).
func (b *Breaker) trip() {
	b.transition(Open)
	b.openedAt = b.cfg.Clock.Now()
}

// reset clears the window after a close (b.mu held).
func (b *Breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.count, b.head, b.failures = 0, 0, 0
}

// transition moves state, notifying the observer (b.mu held).
func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}
