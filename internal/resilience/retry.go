package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"math/rand/v2"
)

// RetryPolicy configures Do/Retry: capped exponential backoff with full
// jitter, an optional Retry-After hint, and per-call attempt and time
// budgets. The zero value is usable; every field falls back to the default
// documented on it.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, the first included
	// (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt k sleeps a uniform
	// random duration in [0, min(MaxDelay, BaseDelay*2^(k-1))] — "full
	// jitter" (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 5s).
	MaxDelay time.Duration
	// MaxElapsed bounds the whole call, sleeps included: a retry whose
	// sleep would cross the budget is abandoned (0 = no time budget).
	MaxElapsed time.Duration
	// Seed fixes the jitter stream so retry schedules are reproducible
	// (default 1).
	Seed int64
	// Clock is the time source (nil = wall clock).
	Clock Clock
	// Retryable classifies errors; a false verdict stops immediately
	// (nil = every non-context error retries).
	Retryable func(error) bool
	// RetryAfter extracts a server backoff hint from an error (a parsed
	// Retry-After header); when present and larger than the jittered
	// delay, the hint wins (nil = no hints).
	RetryAfter func(error) (time.Duration, bool)
	// OnRetry observes each scheduled retry: the attempt that just
	// failed (1-based), the sleep about to happen and the error. Metrics
	// hooks go here (nil = none).
	OnRetry func(attempt int, delay time.Duration, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Clock == nil {
		p.Clock = Wall()
	}
	return p
}

// Do runs fn until it succeeds, the policy's attempt or time budget runs
// out, the error is classified non-retryable, or ctx ends. Context errors
// never retry; when the context dies during a backoff sleep, the returned
// error joins the last fn error with the context error, so callers can
// errors.Is against either.
func Do[T any](ctx context.Context, p RetryPolicy, fn func(ctx context.Context) (T, error)) (T, error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewPCG(uint64(p.Seed), 0x9e3779b97f4a7c15))
	start := p.Clock.Now()
	var zero T
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return zero, errors.Join(lastErr, err)
			}
			return zero, err
		}
		v, err := fn(ctx)
		if err == nil {
			return v, nil
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return zero, lastErr
		}
		if p.Retryable != nil && !p.Retryable(err) {
			return zero, lastErr
		}
		if attempt >= p.MaxAttempts {
			return zero, fmt.Errorf("resilience: %d attempts exhausted: %w", attempt, lastErr)
		}

		// Full jitter over the exponential cap; a server hint, when
		// present and longer, wins.
		cap := p.BaseDelay << (attempt - 1)
		if cap <= 0 || cap > p.MaxDelay {
			cap = p.MaxDelay
		}
		delay := time.Duration(rng.Int64N(int64(cap) + 1))
		if p.RetryAfter != nil {
			if hint, ok := p.RetryAfter(err); ok && hint > delay {
				delay = hint
			}
		}
		// Never start a sleep the budgets cannot cover: the per-call time
		// budget and the context deadline both bound the schedule.
		now := p.Clock.Now()
		if p.MaxElapsed > 0 && now.Add(delay).Sub(start) > p.MaxElapsed {
			return zero, fmt.Errorf("resilience: retry time budget %v exhausted after %d attempts: %w",
				p.MaxElapsed, attempt, lastErr)
		}
		if dl, ok := ctx.Deadline(); ok && now.Add(delay).After(dl) {
			return zero, fmt.Errorf("resilience: context deadline precedes next retry (attempt %d): %w",
				attempt, lastErr)
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, delay, err)
		}
		if err := p.Clock.Sleep(ctx, delay); err != nil {
			return zero, errors.Join(lastErr, err)
		}
	}
}

// Retry is Do for functions without a value.
func Retry(ctx context.Context, p RetryPolicy, fn func(ctx context.Context) error) error {
	_, err := Do(ctx, p, func(ctx context.Context) (struct{}, error) {
		return struct{}{}, fn(ctx)
	})
	return err
}
