package memmap

import "testing"

func TestRegionOf(t *testing.T) {
	cases := []struct {
		addr uint64
		want Region
	}{
		{0, RegionOther},
		{InputGeometryBase, RegionInputGeometry},
		{PBListsBase, RegionPBLists},
		{PBListsBase + 1<<20, RegionPBLists},
		{PBAttributesBase, RegionPBAttributes},
		{TexturesBase + 12345, RegionTextures},
		{FrameBufferBase, RegionFrameBuffer},
		{VertexShaderInstrBase, RegionVertexShaderInstr},
		{FragShaderInstrBase, RegionFragShaderInstr},
		{1 << 62, RegionOther},
	}
	for _, c := range cases {
		if got := RegionOf(c.addr); got != c.want {
			t.Errorf("RegionOf(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestBlockRoundTrip(t *testing.T) {
	if Block(127) != 1 {
		t.Errorf("Block(127) = %d", Block(127))
	}
	if BlockAddr(Block(PBListsBase+640)) != PBListsBase+640 {
		t.Error("block addr round trip failed for aligned address")
	}
}

func TestRegionString(t *testing.T) {
	for r := RegionOther; r <= RegionFragShaderInstr; r++ {
		if r.String() == "" {
			t.Errorf("region %d has empty name", r)
		}
	}
	if RegionOther.String() != "Other" || RegionPBLists.String() != "PB-Lists" {
		t.Error("unexpected region names")
	}
}

func TestIsParameterBuffer(t *testing.T) {
	if !RegionPBLists.IsParameterBuffer() || !RegionPBAttributes.IsParameterBuffer() {
		t.Error("PB regions must report IsParameterBuffer")
	}
	if RegionTextures.IsParameterBuffer() || RegionOther.IsParameterBuffer() {
		t.Error("non-PB regions must not report IsParameterBuffer")
	}
}
