// Package memmap defines the simulated physical address space of the GPU
// (paper Fig. 5): where input geometry, the two Parameter Buffer sections,
// textures, shader instructions and the frame buffer live, and how to
// classify an address back into a region. The L2 enhancements need exactly
// this classification (a 2-bit "belongs to PB-Lists / PB-Attributes /
// neither" tag per line, §III-D1).
package memmap

// BlockBytes is the memory block / cache line size used throughout the
// hierarchy (Table I: 64-byte lines).
const BlockBytes = 64

// Region identifies one of the memory regions of Fig. 5.
type Region uint8

// The memory regions of a graphics application.
const (
	RegionOther Region = iota
	RegionInputGeometry
	RegionPBLists
	RegionPBAttributes
	RegionTextures
	RegionFrameBuffer
	RegionVertexShaderInstr
	RegionFragShaderInstr

	// NumRegions sizes dense per-region arrays (RegionOf clamps unknown
	// addresses into RegionOther, so every Region value is below this).
	NumRegions = int(RegionFragShaderInstr) + 1
)

// Region base addresses. Each region is 256 MiB, far larger than any
// simulated footprint, so regions never collide.
const (
	regionShift = 28 // 256 MiB per region

	InputGeometryBase     = uint64(RegionInputGeometry) << regionShift
	PBListsBase           = uint64(RegionPBLists) << regionShift
	PBAttributesBase      = uint64(RegionPBAttributes) << regionShift
	TexturesBase          = uint64(RegionTextures) << regionShift
	FrameBufferBase       = uint64(RegionFrameBuffer) << regionShift
	VertexShaderInstrBase = uint64(RegionVertexShaderInstr) << regionShift
	FragShaderInstrBase   = uint64(RegionFragShaderInstr) << regionShift
)

// RegionOf classifies a byte address.
func RegionOf(addr uint64) Region {
	r := Region(addr >> regionShift)
	if r > RegionFragShaderInstr {
		return RegionOther
	}
	return r
}

// Block returns the block (line) index of a byte address; block indices are
// the keys used by the cache models.
func Block(addr uint64) uint64 { return addr / BlockBytes }

// BlockAddr returns the byte address of a block index.
func BlockAddr(block uint64) uint64 { return block * BlockBytes }

// String returns the region name.
func (r Region) String() string {
	switch r {
	case RegionInputGeometry:
		return "InputGeometry"
	case RegionPBLists:
		return "PB-Lists"
	case RegionPBAttributes:
		return "PB-Attributes"
	case RegionTextures:
		return "Textures"
	case RegionFrameBuffer:
		return "FrameBuffer"
	case RegionVertexShaderInstr:
		return "VertexShaderInstr"
	case RegionFragShaderInstr:
		return "FragShaderInstr"
	default:
		return "Other"
	}
}

// IsParameterBuffer reports whether the region is one of the two Parameter
// Buffer sections.
func (r Region) IsParameterBuffer() bool {
	return r == RegionPBLists || r == RegionPBAttributes
}
