package tcor

import (
	"testing"

	"tcor/internal/mem"
)

// FuzzAttributeCacheInvariants drives the Attribute Cache with an arbitrary
// operation stream decoded from the fuzz input and checks the structural
// invariants (free-list accounting, lookup-map consistency, attribute-chain
// lengths) after every few operations.
func FuzzAttributeCacheInvariants(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x87, 0x10, 0xFF, 0x03})
	f.Add([]byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x00, 0x11, 0x22})
	f.Fuzz(func(t *testing.T, ops []byte) {
		sink := mem.NewCounter()
		c, err := NewAttributeCache(AttrCacheConfig{
			AttrEntries: 24, PrimEntries: 8, Ways: 4,
			XORIndex: true, WriteBypass: true,
		}, sink)
		if err != nil {
			t.Fatal(err)
		}
		var locked []uint32
		unlockAll := func() {
			for _, p := range locked {
				c.Unlock(p)
			}
			locked = locked[:0]
		}
		for i := 0; i+2 < len(ops); i += 3 {
			op, a, b := ops[i], ops[i+1], ops[i+2]
			prim := uint32(a % 32)
			n := int(b%3) + 1
			blocks := attrBlocks(prim*4, n)
			switch op % 8 {
			case 0, 1:
				c.Write(prim, uint8(n), uint16(a), uint16(b), blocks)
			case 7:
				unlockAll()
			case 6:
				if op&0x80 != 0 {
					c.EndFrame()
					locked = locked[:0]
				} else {
					c.Unlock(prim) // unlocking arbitrary prims must be safe
				}
			default:
				res := c.Read(prim, uint8(n), uint16(a), uint16(b), blocks)
				if res.Stalled {
					unlockAll()
				} else {
					locked = append(locked, prim)
				}
			}
			if i%15 == 0 {
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
