package tcor

import (
	"fmt"

	"tcor/internal/cache"
	"tcor/internal/mem"
	"tcor/internal/memmap"
	"tcor/internal/stats"
	"tcor/internal/trace"
)

// ListCacheConfig sizes the Primitive List Cache (§III-C1): a conventional
// set-associative LRU cache in front of PB-Lists.
type ListCacheConfig struct {
	SizeBytes int
	Ways      int
	// TagLastUse controls whether requests to the L2 carry the owning
	// tile's traversal position for the dead-line logic (on in TCOR, off in
	// ablations without L2 enhancements).
	TagLastUse bool
}

// DefaultListCacheConfig returns the paper's 16 KiB, 4-way configuration.
func DefaultListCacheConfig() ListCacheConfig {
	return ListCacheConfig{SizeBytes: 16 * 1024, Ways: 4, TagLastUse: true}
}

// ListStats counts Primitive List Cache events.
type ListStats struct {
	Reads, Writes, Hits, Misses int64
	Writebacks                  int64
	L2Reads, L2Writes           int64
}

// Publish stores the counters into a stats registry under prefix.
func (s ListStats) Publish(r *stats.Registry, prefix string) {
	r.Counter(prefix + ".reads").Store(s.Reads)
	r.Counter(prefix + ".writes").Store(s.Writes)
	r.Counter(prefix + ".hits").Store(s.Hits)
	r.Counter(prefix + ".misses").Store(s.Misses)
	r.Counter(prefix + ".writebacks").Store(s.Writebacks)
	r.Counter(prefix + ".l2Reads").Store(s.L2Reads)
	r.Counter(prefix + ".l2Writes").Store(s.L2Writes)
}

// RegisterListStatsInvariants registers the Primitive List Cache
// consistency checks: every access is a hit or a miss, and L2 traffic is
// bounded by misses (fetches) plus write-backs.
func RegisterListStatsInvariants(r *stats.Registry, prefix string) {
	r.RegisterInvariant(prefix+".hits+misses==accesses", func(s stats.Snapshot) error {
		if h, m, a := s.Get(prefix+".hits"), s.Get(prefix+".misses"), s.Get(prefix+".reads")+s.Get(prefix+".writes"); h+m != a {
			return fmt.Errorf("%d hits + %d misses != %d accesses", h, m, a)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".l2Reads<=misses", func(s stats.Snapshot) error {
		if lr, m := s.Get(prefix+".l2Reads"), s.Get(prefix+".misses"); lr > m {
			return fmt.Errorf("%d L2 fetches exceed %d misses", lr, m)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".l2Writes==writebacks", func(s stats.Snapshot) error {
		if lw, wb := s.Get(prefix+".l2Writes"), s.Get(prefix+".writebacks"); lw != wb {
			return fmt.Errorf("%d L2 writes != %d write-backs", lw, wb)
		}
		return nil
	})
}

// PrimitiveListCache caches PB-Lists blocks with LRU replacement. Writes
// allocate (the PLB appends PMDs one at a time, and 16 PMDs share a block,
// so write-allocate captures the spatial reuse of list building).
type PrimitiveListCache struct {
	cfg     ListCacheConfig
	c       *cache.Cache
	next    mem.Sink
	stats   ListStats
	lastUse map[trace.Key]uint16 // block -> owning tile traversal position
}

// NewPrimitiveListCache builds the cache; next receives L2 traffic.
func NewPrimitiveListCache(cfg ListCacheConfig, next mem.Sink) (*PrimitiveListCache, error) {
	if next == nil {
		return nil, fmt.Errorf("tcor: list cache needs a next-level sink")
	}
	lines := cache.LinesFor(cfg.SizeBytes, memmap.BlockBytes)
	c, err := cache.New(cache.Config{
		Lines:         lines,
		Ways:          cfg.Ways,
		WriteAllocate: true,
	}, cache.NewLRU())
	if err != nil {
		return nil, fmt.Errorf("tcor: list cache: %w", err)
	}
	return &PrimitiveListCache{
		cfg:     cfg,
		c:       c,
		next:    next,
		lastUse: make(map[trace.Key]uint16, lines*4),
	}, nil
}

// Stats returns a copy of the statistics.
func (p *PrimitiveListCache) Stats() ListStats { return p.stats }

// Access services one PB-Lists access at byte address addr for the given
// tile at traversal position tilePos.
func (p *PrimitiveListCache) Access(addr uint64, write bool, tilePos uint16) {
	key := trace.Key(memmap.Block(addr))
	p.lastUse[key] = tilePos
	if write {
		p.stats.Writes++
	} else {
		p.stats.Reads++
	}
	res := p.c.Access(trace.Access{Key: key, Write: write})
	if res.Hit {
		p.stats.Hits++
		return
	}
	p.stats.Misses++
	if res.Evicted && res.VictimDirty {
		p.stats.Writebacks++
		p.emit(res.Victim, true)
	}
	// Read misses fetch the block. Write misses fetch only when the PMD
	// lands mid-block: appending to a block that was evicted part-way
	// through filling must merge with the PMDs already written, whereas the
	// first PMD of a block (64-byte-aligned address) starts a fresh block
	// and allocates without a fetch.
	if !write || addr%memmap.BlockBytes != 0 {
		p.emit(key, false)
	}
}

func (p *PrimitiveListCache) emit(key trace.Key, write bool) {
	last, ok := p.lastUse[key]
	r := mem.Request{Addr: memmap.BlockAddr(uint64(key)), Write: write}
	if p.cfg.TagLastUse && ok {
		r.LastUse = last
		r.HasLastUse = true
	}
	if write {
		p.stats.L2Writes++
	} else {
		p.stats.L2Reads++
	}
	p.next.Access(r)
}

// EndFrame invalidates the cache without write-back (the PB is recycled).
func (p *PrimitiveListCache) EndFrame() {
	for _, k := range p.c.FlushAll() {
		_ = k // dirty PB-Lists data is dead at frame end: dropped
	}
	clear(p.lastUse)
}

// TileCache bundles the two split L1 caches plus plumbing so the Tiling
// Engine can drive them through the tiling.Handler interface.
type TileCache struct {
	Lists *PrimitiveListCache
	Attrs *AttributeCache
}

// NewTileCache builds the split Tile Cache of Fig. 7 from a total byte
// budget, using the paper's partition: 16 KiB Primitive List Cache and the
// remainder for the Attribute Cache (48 KiB of 64 KiB; 112 KiB of 128 KiB).
func NewTileCache(totalBytes int, next mem.Sink) (*TileCache, error) {
	lcfg := DefaultListCacheConfig()
	if lcfg.SizeBytes >= totalBytes {
		return nil, fmt.Errorf("tcor: total tile cache %d bytes below the %d-byte list cache", totalBytes, lcfg.SizeBytes)
	}
	lists, err := NewPrimitiveListCache(lcfg, next)
	if err != nil {
		return nil, err
	}
	attrs, err := NewAttributeCache(DefaultAttrCacheConfig(totalBytes-lcfg.SizeBytes), next)
	if err != nil {
		return nil, err
	}
	return &TileCache{Lists: lists, Attrs: attrs}, nil
}

// EndFrame recycles both caches.
func (t *TileCache) EndFrame() {
	t.Lists.EndFrame()
	t.Attrs.EndFrame()
}
