// Package tcor implements the paper's primary contribution: the split Tile
// Cache of §III-C. The Attribute Cache caches PB-Attributes at primitive
// granularity with the practical OPT replacement policy driven by the OPT
// Numbers the Polygon List Builder embedded in the PMDs; the Primitive List
// Cache is a conventional LRU cache for PB-Lists.
package tcor

import (
	"fmt"

	"tcor/internal/cache"
	"tcor/internal/mem"
	"tcor/internal/stats"
	"tcor/internal/trace"
)

// AttrCacheConfig sizes the Attribute Cache (Fig. 8).
type AttrCacheConfig struct {
	// AttrEntries is the number of Attribute Buffer entries; each holds one
	// 48-byte attribute (one PB-Attributes block). SizeToAttrEntries
	// derives it from a byte budget.
	AttrEntries int
	// PrimEntries is the number of Primitive Buffer lines. Zero derives a
	// default of AttrEntries/3 rounded so the set count is a power of two
	// (one line per average-sized primitive of ~3 attributes).
	PrimEntries int
	// Ways is the Primitive Buffer associativity (Table I: 4).
	Ways int
	// XORIndex selects the XOR-based set mapping of §III-C2 (default in
	// TCOR; disable for the ablation).
	XORIndex bool
	// WriteBypass enables the PLB write bypass policy of §III-C4 (default
	// in TCOR; disable for the ablation).
	WriteBypass bool
}

// SizeToAttrEntries converts a byte budget into Attribute Buffer entries.
// Each entry stores one block-aligned 48-byte attribute, so it accounts for
// one 64-byte block like the baseline cache it replaces.
func SizeToAttrEntries(sizeBytes int) int { return sizeBytes / 64 }

// DefaultAttrCacheConfig returns the paper's configuration for a given
// Attribute Cache byte budget (48 KiB in the 64 KiB Tile Cache experiments,
// 112 KiB in the 128 KiB ones).
func DefaultAttrCacheConfig(sizeBytes int) AttrCacheConfig {
	return AttrCacheConfig{
		AttrEntries: SizeToAttrEntries(sizeBytes),
		Ways:        4,
		XORIndex:    true,
		WriteBypass: true,
	}
}

func (c AttrCacheConfig) withDefaults() (AttrCacheConfig, error) {
	if c.AttrEntries <= 0 {
		return c, fmt.Errorf("tcor: attribute buffer needs entries, got %d", c.AttrEntries)
	}
	if c.Ways <= 0 {
		c.Ways = 4
	}
	if c.PrimEntries == 0 {
		c.PrimEntries = roundToPow2Sets(c.AttrEntries/3, c.Ways)
	}
	if c.PrimEntries < c.Ways {
		c.PrimEntries = c.Ways
	}
	if c.PrimEntries%c.Ways != 0 {
		return c, fmt.Errorf("tcor: %d primitive lines not divisible by %d ways", c.PrimEntries, c.Ways)
	}
	sets := c.PrimEntries / c.Ways
	if sets&(sets-1) != 0 {
		return c, fmt.Errorf("tcor: %d primitive-buffer sets is not a power of two", sets)
	}
	return c, nil
}

// roundToPow2Sets rounds entries down so that entries/ways is a power of
// two (at least one set).
func roundToPow2Sets(entries, ways int) int {
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return p * ways
}

// primLine is one Primitive Buffer line (Fig. 8): valid, lock and dirty
// bits, the tag (primitive ID), the OPT Number, and the Attribute Buffer
// Pointer to the first attribute of the primitive.
type primLine struct {
	valid, lock, dirty bool
	prim               uint32
	optNum             uint16
	lastUse            uint16
	numAttrs           uint8
	abp                int32
	stamp              int64 // LRU stamp for tie-breaking among equal OPT Numbers
}

// attrEntry is one Attribute Buffer entry: an attribute slot with a valid
// bit, a lock bit and the linked-list next pointer (-1 terminates; free
// entries are chained through the same pointer).
type attrEntry struct {
	valid, lock bool
	next        int32
	blockAddr   uint64 // the PB-Attributes block this entry caches
}

// AttrStats counts Attribute Cache events.
type AttrStats struct {
	Reads, ReadHits, ReadMisses int64
	Writes, WriteInserts        int64
	WriteBypasses               int64
	Evictions, DirtyEvictions   int64
	// L2AttrReads/Writes are the PB-Attributes block transfers this cache
	// generated toward the L2.
	L2AttrReads, L2AttrWrites int64
	// Stalls counts reads that found every candidate line locked and had to
	// wait for the Rasterizer to drain (the model retries after unlocks).
	Stalls int64
	// BufReads/BufWrites count Attribute Buffer entry touches (the
	// Rasterizer reading attributes through the ABP, and fills/inserts
	// writing them), for the energy model.
	BufReads, BufWrites int64
	// ProbeAccesses counts Primitive Buffer lookups (tag probes), for the
	// energy model.
	ProbeAccesses int64
}

// Publish stores the counters into a stats registry under prefix.
func (s AttrStats) Publish(r *stats.Registry, prefix string) {
	r.Counter(prefix + ".reads").Store(s.Reads)
	r.Counter(prefix + ".readHits").Store(s.ReadHits)
	r.Counter(prefix + ".readMisses").Store(s.ReadMisses)
	r.Counter(prefix + ".writes").Store(s.Writes)
	r.Counter(prefix + ".writeInserts").Store(s.WriteInserts)
	r.Counter(prefix + ".writeBypasses").Store(s.WriteBypasses)
	r.Counter(prefix + ".evictions").Store(s.Evictions)
	r.Counter(prefix + ".dirtyEvictions").Store(s.DirtyEvictions)
	r.Counter(prefix + ".l2AttrReads").Store(s.L2AttrReads)
	r.Counter(prefix + ".l2AttrWrites").Store(s.L2AttrWrites)
	r.Counter(prefix + ".stalls").Store(s.Stalls)
	r.Counter(prefix + ".bufReads").Store(s.BufReads)
	r.Counter(prefix + ".bufWrites").Store(s.BufWrites)
	r.Counter(prefix + ".probeAccesses").Store(s.ProbeAccesses)
}

// RegisterAttrStatsInvariants registers the Attribute Cache consistency
// checks: the read hit/miss split covers every read, and every counted
// write either inserted or bypassed (in-place refreshes of a resident
// primitive touch neither, so the sum is an upper bound only in theory — a
// well-formed frame writes each primitive once, but the model tolerates
// re-writes).
func RegisterAttrStatsInvariants(r *stats.Registry, prefix string) {
	r.RegisterInvariant(prefix+".readHits+readMisses==reads", func(s stats.Snapshot) error {
		if h, m, a := s.Get(prefix+".readHits"), s.Get(prefix+".readMisses"), s.Get(prefix+".reads"); h+m != a {
			return fmt.Errorf("%d read hits + %d read misses != %d reads", h, m, a)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".writeInserts+writeBypasses<=writes", func(s stats.Snapshot) error {
		if i, b, w := s.Get(prefix+".writeInserts"), s.Get(prefix+".writeBypasses"), s.Get(prefix+".writes"); i+b > w {
			return fmt.Errorf("%d inserts + %d bypasses exceed %d writes", i, b, w)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".dirtyEvictions<=evictions", func(s stats.Snapshot) error {
		if d, e := s.Get(prefix+".dirtyEvictions"), s.Get(prefix+".evictions"); d > e {
			return fmt.Errorf("%d dirty evictions exceed %d evictions", d, e)
		}
		return nil
	})
}

// AttributeCache is the primitive-granularity PB-Attributes cache of
// §III-C2 with OPT replacement (§III-C6) and write bypass (§III-C4).
type AttributeCache struct {
	cfg   AttrCacheConfig
	sets  [][]primLine
	where map[uint32]int32 // prim -> set*ways+way, the tag lookup
	attrs []attrEntry
	free  int32 // head of the free list
	nfree int
	clock int64
	stats AttrStats
	next  mem.Sink
}

// NewAttributeCache builds the cache; next receives the L2 traffic.
func NewAttributeCache(cfg AttrCacheConfig, next mem.Sink) (*AttributeCache, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("tcor: attribute cache needs a next-level sink")
	}
	sets := cfg.PrimEntries / cfg.Ways
	c := &AttributeCache{
		cfg:   cfg,
		sets:  make([][]primLine, sets),
		where: make(map[uint32]int32, cfg.PrimEntries),
		attrs: make([]attrEntry, cfg.AttrEntries),
		next:  next,
	}
	backing := make([]primLine, cfg.PrimEntries)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	c.initFreeList()
	return c, nil
}

func (c *AttributeCache) initFreeList() {
	for i := range c.attrs {
		c.attrs[i] = attrEntry{next: int32(i) + 1}
	}
	c.attrs[len(c.attrs)-1].next = -1
	c.free = 0
	c.nfree = len(c.attrs)
}

// Config returns the normalized configuration.
func (c *AttributeCache) Config() AttrCacheConfig { return c.cfg }

// Stats returns a copy of the statistics.
func (c *AttributeCache) Stats() AttrStats { return c.stats }

// FreeAttrEntries returns the current number of free Attribute Buffer
// entries (for tests and invariant checks).
func (c *AttributeCache) FreeAttrEntries() int { return c.nfree }

// Contains reports whether a primitive is resident.
func (c *AttributeCache) Contains(prim uint32) bool {
	_, ok := c.where[prim]
	return ok
}

func (c *AttributeCache) setIndex(prim uint32) int {
	if c.cfg.XORIndex {
		return cache.XORIndex(trace.Key(prim), len(c.sets))
	}
	return cache.ModuloIndex(trace.Key(prim), len(c.sets))
}

func (c *AttributeCache) lookup(prim uint32) (set, way int, ok bool) {
	loc, ok := c.where[prim]
	if !ok {
		return c.setIndex(prim), -1, false
	}
	return int(loc) / c.cfg.Ways, int(loc) % c.cfg.Ways, true
}

// allocAttrs takes n entries off the free list and links them; returns the
// ABP (index of the first). Caller must have checked nfree.
func (c *AttributeCache) allocAttrs(blocks []uint64) int32 {
	c.stats.BufWrites += int64(len(blocks))
	head := int32(-1)
	tail := int32(-1)
	for _, b := range blocks {
		e := c.free
		c.free = c.attrs[e].next
		c.nfree--
		c.attrs[e] = attrEntry{valid: true, next: -1, blockAddr: b}
		if head < 0 {
			head = e
		} else {
			c.attrs[tail].next = e
		}
		tail = e
	}
	return head
}

// releaseAttrs walks a primitive's attribute list back onto the free list.
func (c *AttributeCache) releaseAttrs(abp int32) {
	for e := abp; e >= 0; {
		nxt := c.attrs[e].next
		c.attrs[e] = attrEntry{next: c.free}
		c.free = e
		c.nfree++
		e = nxt
	}
}

// evictLine removes the line at (set, way), releasing its attributes and
// writing them back to the L2 if dirty (§III-C5).
func (c *AttributeCache) evictLine(set, way int) {
	l := &c.sets[set][way]
	c.stats.Evictions++
	if l.dirty {
		c.stats.DirtyEvictions++
		for e := l.abp; e >= 0; e = c.attrs[e].next {
			c.next.Access(mem.Request{
				Addr:       c.attrs[e].blockAddr,
				Write:      true,
				LastUse:    l.lastUse,
				HasLastUse: true,
			})
			c.stats.L2AttrWrites++
		}
	}
	c.releaseAttrs(l.abp)
	delete(c.where, l.prim)
	*l = primLine{}
}

// victim returns the way of the unlocked line with the greatest OPT Number
// in the set (§III-C6), -1 if every line is locked. Invalid lines win
// immediately. Ties break toward the least recently used line.
func (c *AttributeCache) victim(set int) int {
	lines := c.sets[set]
	best := -1
	for w := range lines {
		if !lines[w].valid {
			return w
		}
		if lines[w].lock || c.attrLocked(lines[w].abp) {
			continue
		}
		if best < 0 ||
			lines[w].optNum > lines[best].optNum ||
			(lines[w].optNum == lines[best].optNum && lines[w].stamp < lines[best].stamp) {
			best = w
		}
	}
	return best
}

// attrLocked reports whether the first attribute of a list is locked; the
// paper locks only the first entry since the rest are chained (§III-C3).
func (c *AttributeCache) attrLocked(abp int32) bool {
	return abp >= 0 && c.attrs[abp].lock
}

// ensureAttrSpace frees Attribute Buffer entries until n are available, by
// evicting additional primitives with OPT (§III-C3 "In case of a dearth of
// space"). It may not touch the protected line (the one just reserved).
// Returns false if locks prevent making space.
func (c *AttributeCache) ensureAttrSpace(n, protectSet, protectWay int) bool {
	for c.nfree < n {
		// Globally pick the unlocked line with the max OPT Number.
		bs, bw := -1, -1
		for s := range c.sets {
			for w := range c.sets[s] {
				l := &c.sets[s][w]
				if !l.valid || l.lock || c.attrLocked(l.abp) {
					continue
				}
				if s == protectSet && w == protectWay {
					continue
				}
				if bs < 0 {
					bs, bw = s, w
					continue
				}
				b := &c.sets[bs][bw]
				if l.optNum > b.optNum ||
					(l.optNum == b.optNum && l.stamp < b.stamp) {
					bs, bw = s, w
				}
			}
		}
		if bs < 0 {
			return false
		}
		c.evictLine(bs, bw)
	}
	return true
}

// Write handles a Polygon List Builder write of a whole primitive
// (§III-C4). firstUse is the request's OPT Number (traversal position of
// the first tile that will read the primitive); lastUse tags the blocks for
// the L2 dead-line logic; blocks are the primitive's PB-Attributes block
// addresses.
func (c *AttributeCache) Write(prim uint32, numAttrs uint8, firstUse, lastUse uint16, blocks []uint64) {
	c.clock++
	c.stats.Writes++
	c.stats.ProbeAccesses++
	if int(numAttrs) != len(blocks) {
		panic(fmt.Sprintf("tcor: write of prim %d: %d attrs but %d blocks", prim, numAttrs, len(blocks)))
	}
	// Re-write of a resident primitive (cannot happen in a well-formed
	// frame, where the PLB writes each primitive exactly once, but keep the
	// structure consistent): refresh the metadata in place.
	if s, w, ok := c.lookup(prim); ok {
		l := &c.sets[s][w]
		l.optNum = firstUse
		l.lastUse = lastUse
		l.dirty = true
		l.stamp = c.clock
		return
	}
	set := c.setIndex(prim)

	insert := func(way int) {
		if !c.ensureAttrSpace(len(blocks), set, way) {
			// Cannot make room (locks); fall back to bypass.
			c.bypass(lastUse, blocks)
			return
		}
		abp := c.allocAttrs(blocks)
		c.sets[set][way] = primLine{
			valid: true, dirty: true,
			prim: prim, optNum: firstUse, lastUse: lastUse,
			numAttrs: numAttrs, abp: abp, stamp: c.clock,
		}
		c.where[prim] = int32(set*c.cfg.Ways + way)
		c.stats.WriteInserts++
	}

	// Free line available?
	for w := range c.sets[set] {
		if !c.sets[set][w].valid {
			insert(w)
			return
		}
	}

	if !c.cfg.WriteBypass {
		// Ablation: always evict with OPT, never bypass.
		w := c.victim(set)
		if w < 0 {
			c.bypass(lastUse, blocks)
			return
		}
		c.evictLine(set, w)
		insert(w)
		return
	}

	// §III-C4: compare the max OPT Number in the set with the request's.
	// If the resident max is greater (that primitive is read later than
	// this one), evict it; otherwise (including ties) bypass to the L2.
	w := c.victim(set)
	if w >= 0 && c.sets[set][w].valid && c.sets[set][w].optNum > firstUse {
		c.evictLine(set, w)
		insert(w)
		return
	}
	c.bypass(lastUse, blocks)
}

// bypass writes the primitive's attribute blocks straight to the L2.
func (c *AttributeCache) bypass(lastUse uint16, blocks []uint64) {
	c.stats.WriteBypasses++
	for _, b := range blocks {
		c.next.Access(mem.Request{Addr: b, Write: true, LastUse: lastUse, HasLastUse: true})
		c.stats.L2AttrWrites++
	}
}

// ReadResult describes the outcome of a Tile Fetcher read.
type ReadResult struct {
	Hit bool
	// ABP is the Attribute Buffer Pointer pushed to the output queue for
	// the Rasterizer.
	ABP int32
	// Stalled reports that no victim could be found because of locks; the
	// caller must drain the Rasterizer queue (unlocking primitives) and
	// retry.
	Stalled bool
}

// Read handles a Tile Fetcher read request carrying the PMD fields
// (§III-C3): the primitive ID, its attribute count and the OPT Number for
// this occurrence. On a hit the line's OPT Number is updated from the
// request and the line is locked until the Rasterizer consumes it. On a
// miss the victim line is reserved and the attributes are fetched from L2.
func (c *AttributeCache) Read(prim uint32, numAttrs uint8, optNum, lastUse uint16, blocks []uint64) ReadResult {
	c.clock++
	c.stats.Reads++
	c.stats.ProbeAccesses++
	// The Rasterizer will read every attribute of the primitive through
	// the ABP regardless of hit or miss.
	c.stats.BufReads += int64(numAttrs)
	if int(numAttrs) != len(blocks) {
		panic(fmt.Sprintf("tcor: read of prim %d: %d attrs but %d blocks", prim, numAttrs, len(blocks)))
	}
	set, way, ok := c.lookup(prim)
	if ok {
		c.stats.ReadHits++
		l := &c.sets[set][way]
		l.optNum = optNum
		l.stamp = c.clock
		l.lock = true
		if l.abp >= 0 {
			c.attrs[l.abp].lock = true
		}
		return ReadResult{Hit: true, ABP: l.abp}
	}

	c.stats.ReadMisses++
	w := c.victim(set)
	if w < 0 {
		c.stats.Reads--
		c.stats.ReadMisses--
		c.stats.Stalls++
		return ReadResult{Stalled: true}
	}
	if c.sets[set][w].valid {
		c.evictLine(set, w)
	}
	// Reserve and lock the line for the in-flight miss (§III-C3 Miss).
	c.sets[set][w] = primLine{
		valid: true, lock: true,
		prim: prim, optNum: optNum, lastUse: lastUse,
		numAttrs: numAttrs, stamp: c.clock, abp: -1,
	}
	c.where[prim] = int32(set*c.cfg.Ways + w)

	if !c.ensureAttrSpace(len(blocks), set, w) {
		// Roll the reservation back and stall.
		delete(c.where, prim)
		c.sets[set][w] = primLine{}
		c.stats.Reads--
		c.stats.ReadMisses--
		c.stats.Stalls++
		return ReadResult{Stalled: true}
	}
	for _, b := range blocks {
		c.next.Access(mem.Request{Addr: b, LastUse: lastUse, HasLastUse: true})
		c.stats.L2AttrReads++
	}
	abp := c.allocAttrs(blocks)
	l := &c.sets[set][w]
	l.abp = abp
	c.attrs[abp].lock = true
	return ReadResult{Hit: false, ABP: abp}
}

// Unlock releases the lock the Rasterizer held on a primitive (§III-C3
// Rasterizer Read: after accessing the attributes through the ABP, the
// entries are unlocked).
func (c *AttributeCache) Unlock(prim uint32) {
	set, way, ok := c.lookup(prim)
	if !ok {
		return
	}
	l := &c.sets[set][way]
	l.lock = false
	if l.abp >= 0 {
		c.attrs[l.abp].lock = false
	}
}

// EndFrame recycles the cache at a frame boundary: the Parameter Buffer is
// rebuilt from scratch, so resident lines are invalidated without
// write-back (the driver reclaims the buffer).
func (c *AttributeCache) EndFrame() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = primLine{}
		}
	}
	clear(c.where)
	c.initFreeList()
}

// CheckInvariants validates internal consistency (free-list accounting,
// where-map agreement). Tests call it; it returns an error rather than
// panicking so property tests can report failures.
func (c *AttributeCache) CheckInvariants() error {
	// Count free entries by walking the list.
	n := 0
	for e := c.free; e >= 0; e = c.attrs[e].next {
		if c.attrs[e].valid {
			return fmt.Errorf("tcor: free entry %d marked valid", e)
		}
		n++
		if n > len(c.attrs) {
			return fmt.Errorf("tcor: free list cycle")
		}
	}
	if n != c.nfree {
		return fmt.Errorf("tcor: free list has %d entries, counter says %d", n, c.nfree)
	}
	used := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if !l.valid {
				continue
			}
			if loc, ok := c.where[l.prim]; !ok || int(loc) != s*c.cfg.Ways+w {
				return fmt.Errorf("tcor: where-map inconsistent for prim %d", l.prim)
			}
			cnt := 0
			for e := l.abp; e >= 0; e = c.attrs[e].next {
				if !c.attrs[e].valid {
					return fmt.Errorf("tcor: prim %d links invalid attr entry %d", l.prim, e)
				}
				cnt++
			}
			if l.abp >= 0 && cnt != int(l.numAttrs) {
				return fmt.Errorf("tcor: prim %d links %d attrs, wants %d", l.prim, cnt, l.numAttrs)
			}
			used += cnt
		}
	}
	if used+c.nfree != len(c.attrs) {
		return fmt.Errorf("tcor: %d used + %d free != %d entries", used, c.nfree, len(c.attrs))
	}
	return nil
}
