package tcor_test

import (
	"fmt"

	"tcor/internal/mem"
	"tcor/internal/tcor"
)

// Drive the Attribute Cache by hand through the paper's write-bypass rule
// (§III-C4): two residents with early first-use, then a write whose
// primitive is needed later than both — it bypasses to the L2 instead of
// evicting.
func ExampleAttributeCache() {
	l2 := mem.NewCounter()
	c, _ := tcor.NewAttributeCache(tcor.AttrCacheConfig{
		AttrEntries: 8, PrimEntries: 2, Ways: 2, WriteBypass: true,
	}, l2)

	blocks := func(base uint64) []uint64 { return []uint64{0x30000000 + base*64} }
	c.Write(0, 1, 3, 3, blocks(0)) // first used by tile 3
	c.Write(1, 1, 4, 4, blocks(1)) // first used by tile 4
	c.Write(2, 1, 9, 9, blocks(2)) // first used by tile 9: later than both

	st := c.Stats()
	fmt.Printf("inserted: %d, bypassed: %d, L2 writes: %d\n",
		st.WriteInserts, st.WriteBypasses, l2.Writes)
	fmt.Printf("prim 2 resident: %v\n", c.Contains(2))
	// Output:
	// inserted: 2, bypassed: 1, L2 writes: 1
	// prim 2 resident: false
}
