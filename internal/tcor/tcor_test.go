package tcor

import (
	"math/rand"
	"testing"

	"tcor/internal/mem"
	"tcor/internal/memmap"
	"tcor/internal/pbuffer"
)

// attrBlocks builds n attribute block addresses for a primitive with the
// given attribute base index.
func attrBlocks(base uint32, n int) []uint64 {
	l := pbuffer.NewAttrLayout()
	out := make([]uint64, n)
	for i := range out {
		out[i] = l.AttrAddr(base, i)
	}
	return out
}

func newTestAttrCache(t *testing.T, attrEntries, primEntries, ways int) (*AttributeCache, *mem.Counter) {
	t.Helper()
	sink := mem.NewCounter()
	c, err := NewAttributeCache(AttrCacheConfig{
		AttrEntries: attrEntries,
		PrimEntries: primEntries,
		Ways:        ways,
		XORIndex:    false, // deterministic sets for targeted tests
		WriteBypass: true,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	return c, sink
}

func TestAttrCacheConfigDefaults(t *testing.T) {
	cfg := DefaultAttrCacheConfig(48 * 1024)
	if cfg.AttrEntries != 768 {
		t.Errorf("48KiB -> %d entries, want 768", cfg.AttrEntries)
	}
	norm, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if norm.PrimEntries%norm.Ways != 0 {
		t.Error("prim entries not divisible by ways")
	}
	sets := norm.PrimEntries / norm.Ways
	if sets&(sets-1) != 0 {
		t.Errorf("sets = %d not a power of two", sets)
	}
	if _, err := NewAttributeCache(AttrCacheConfig{}, mem.NewCounter()); err == nil {
		t.Error("expected error for zero entries")
	}
	if _, err := NewAttributeCache(DefaultAttrCacheConfig(1024), nil); err == nil {
		t.Error("expected error for nil sink")
	}
	if _, err := NewAttributeCache(AttrCacheConfig{AttrEntries: 64, PrimEntries: 7, Ways: 2}, mem.NewCounter()); err == nil {
		t.Error("expected error for indivisible prim entries")
	}
	if _, err := NewAttributeCache(AttrCacheConfig{AttrEntries: 64, PrimEntries: 24, Ways: 2}, mem.NewCounter()); err == nil {
		t.Error("expected error for non-pow2 sets")
	}
}

func TestAttrCacheWriteInsertAndReadHit(t *testing.T) {
	c, sink := newTestAttrCache(t, 16, 4, 4)
	c.Write(1, 2, 5, 9, attrBlocks(0, 2))
	if got := c.Stats().WriteInserts; got != 1 {
		t.Fatalf("write inserts = %d", got)
	}
	if sink.Total() != 0 {
		t.Fatalf("insert should not touch L2, saw %d accesses", sink.Total())
	}
	res := c.Read(1, 2, 7, 9, attrBlocks(0, 2))
	if !res.Hit {
		t.Fatal("expected read hit after insert")
	}
	if sink.Total() != 0 {
		t.Error("hit should not touch L2")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAttrCacheReadMissFetchesFromL2(t *testing.T) {
	c, sink := newTestAttrCache(t, 16, 4, 4)
	res := c.Read(42, 3, 7, 9, attrBlocks(10, 3))
	if res.Hit || res.Stalled {
		t.Fatalf("expected plain miss, got %+v", res)
	}
	if sink.Reads != 3 {
		t.Errorf("L2 reads = %d, want 3 (one per attribute)", sink.Reads)
	}
	if got := sink.Region(memmap.RegionPBAttributes).Reads; got != 3 {
		t.Errorf("PB-Attributes region reads = %d", got)
	}
	// Second read hits.
	if res := c.Read(42, 3, 8, 9, attrBlocks(10, 3)); !res.Hit {
		t.Error("expected hit on refetch")
	}
}

func TestAttrCacheWriteBypassPolicy(t *testing.T) {
	// 1-set cache with 2 ways: fill with two prims whose first use is
	// early, then write one with a *later* first use: per §III-C4 the
	// request must bypass (all residents are read before it).
	c, sink := newTestAttrCache(t, 8, 2, 2)
	c.Write(0, 1, 3, 3, attrBlocks(0, 1))
	c.Write(1, 1, 4, 4, attrBlocks(1, 1))
	c.Write(2, 1, 9, 9, attrBlocks(2, 1)) // later than both -> bypass
	st := c.Stats()
	if st.WriteBypasses != 1 {
		t.Fatalf("bypasses = %d, want 1", st.WriteBypasses)
	}
	if sink.Writes != 1 {
		t.Fatalf("L2 writes = %d, want 1 (the bypassed attribute)", sink.Writes)
	}
	if c.Contains(2) {
		t.Error("bypassed primitive must not be resident")
	}
	// Now write one with an *earlier* first use than the resident max:
	// the resident with the greatest OPT number (prim 1, first use 4) is
	// evicted dirty.
	c.Write(3, 1, 2, 2, attrBlocks(3, 1))
	st = c.Stats()
	if st.WriteInserts != 3 {
		t.Errorf("write inserts = %d, want 3", st.WriteInserts)
	}
	if st.DirtyEvictions != 1 {
		t.Errorf("dirty evictions = %d, want 1", st.DirtyEvictions)
	}
	if c.Contains(1) {
		t.Error("prim 1 (max OPT number) should have been evicted")
	}
	if !c.Contains(0) || !c.Contains(3) {
		t.Error("prims 0 and 3 should be resident")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAttrCacheWriteBypassOnTie(t *testing.T) {
	// Equal OPT numbers (same first tile) must bypass, not evict (§III-C4).
	c, _ := newTestAttrCache(t, 8, 2, 2)
	c.Write(0, 1, 5, 5, attrBlocks(0, 1))
	c.Write(1, 1, 5, 5, attrBlocks(1, 1))
	c.Write(2, 1, 5, 5, attrBlocks(2, 1))
	if c.Stats().WriteBypasses != 1 {
		t.Errorf("bypasses = %d, want 1 on tie", c.Stats().WriteBypasses)
	}
}

func TestAttrCacheOPTReplacementOnReadMiss(t *testing.T) {
	// Single set, 2 ways. Resident prims with OPT numbers 10 and 20.
	// A read miss must evict the one with the greater OPT number (20).
	c, _ := newTestAttrCache(t, 8, 2, 2)
	c.Write(0, 1, 10, 10, attrBlocks(0, 1))
	c.Write(1, 1, 20, 20, attrBlocks(1, 1))
	res := c.Read(2, 1, 15, 15, attrBlocks(2, 1))
	if res.Hit {
		t.Fatal("expected miss")
	}
	c.Unlock(2)
	if c.Contains(1) {
		t.Error("prim 1 (OPT 20) should have been evicted")
	}
	if !c.Contains(0) || !c.Contains(2) {
		t.Error("prims 0 and 2 should be resident")
	}
}

func TestAttrCacheLocksPreventEviction(t *testing.T) {
	c, _ := newTestAttrCache(t, 8, 2, 2)
	c.Write(0, 1, 10, 10, attrBlocks(0, 1))
	c.Write(1, 1, 20, 20, attrBlocks(1, 1))
	// Read both: both locked (awaiting the Rasterizer).
	c.Read(0, 1, 30, 30, attrBlocks(0, 1))
	c.Read(1, 1, 40, 40, attrBlocks(1, 1))
	res := c.Read(2, 1, 5, 5, attrBlocks(2, 1))
	if !res.Stalled {
		t.Fatal("expected stall with all lines locked")
	}
	if c.Stats().Stalls != 1 {
		t.Errorf("stalls = %d", c.Stats().Stalls)
	}
	// Rasterizer consumes prim 1 -> retry succeeds and evicts prim 1.
	c.Unlock(1)
	res = c.Read(2, 1, 5, 5, attrBlocks(2, 1))
	if res.Stalled || res.Hit {
		t.Fatalf("expected successful miss after unlock, got %+v", res)
	}
	if c.Contains(1) {
		t.Error("unlocked prim 1 should have been the victim")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAttrCacheHitUpdatesOPTNumber(t *testing.T) {
	// After a hit updates the OPT number, replacement must use the new
	// value (§III-C3 Hit).
	c, _ := newTestAttrCache(t, 8, 2, 2)
	c.Write(0, 1, 10, 10, attrBlocks(0, 1))
	c.Write(1, 1, 8, 8, attrBlocks(1, 1))
	// Hit prim 0 with a *small* new OPT number; prim 1 keeps 8.
	c.Read(0, 1, 2, 10, attrBlocks(0, 1))
	c.Unlock(0)
	// Miss: victim must now be prim 1 (OPT 8 > 2).
	c.Read(2, 1, 5, 5, attrBlocks(2, 1))
	if c.Contains(1) || !c.Contains(0) {
		t.Error("replacement ignored the updated OPT number")
	}
}

func TestAttrCacheAttrSpacePressureEvictsMore(t *testing.T) {
	// Attribute buffer with 4 entries; two resident prims with 2 attrs
	// each fill it. Inserting a 2-attr prim into a *different* set must
	// still evict someone to make attribute space (§III-C3).
	sink := mem.NewCounter()
	c, err := NewAttributeCache(AttrCacheConfig{
		AttrEntries: 4, PrimEntries: 4, Ways: 2,
		WriteBypass: true,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Prims 0 and 2 map to set 0 (modulo 2 sets), prim 1 to set 1.
	c.Write(0, 2, 10, 10, attrBlocks(0, 2))
	c.Write(1, 2, 20, 20, attrBlocks(2, 2))
	if c.FreeAttrEntries() != 0 {
		t.Fatalf("free = %d, want 0", c.FreeAttrEntries())
	}
	// Read miss for prim 2 (set 0): set 0 still has a free way, but the
	// Attribute Buffer is full, so the cache must evict a primitive with
	// the greatest OPT number globally — prim 1 (OPT 20) — to free entries.
	res := c.Read(2, 2, 5, 5, attrBlocks(4, 2))
	if res.Hit || res.Stalled {
		t.Fatalf("unexpected %+v", res)
	}
	if c.Contains(1) {
		t.Error("prim 1 (max OPT number) should have been evicted for attribute space")
	}
	if !c.Contains(0) {
		t.Error("prim 0 should still be resident")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Dirty eviction of prim 0 wrote its 2 attributes to L2.
	if sink.Writes != 2 {
		t.Errorf("L2 writes = %d, want 2", sink.Writes)
	}
}

func TestAttrCacheEndFrameResets(t *testing.T) {
	c, sink := newTestAttrCache(t, 16, 4, 4)
	c.Write(0, 3, 1, 1, attrBlocks(0, 3))
	c.Write(1, 2, 2, 2, attrBlocks(3, 2))
	before := sink.Writes
	c.EndFrame()
	if sink.Writes != before {
		t.Error("EndFrame must not write back (PB recycled by driver)")
	}
	if c.Contains(0) || c.Contains(1) {
		t.Error("cache not empty after EndFrame")
	}
	if c.FreeAttrEntries() != 16 {
		t.Errorf("free = %d after EndFrame", c.FreeAttrEntries())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Randomized invariant test: a stream of writes, reads, unlocks and frame
// boundaries never corrupts the free list or the lookup map.
func TestAttrCacheInvariantsUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sink := mem.NewCounter()
	c, err := NewAttributeCache(AttrCacheConfig{
		AttrEntries: 32, PrimEntries: 16, Ways: 4,
		XORIndex: true, WriteBypass: true,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	var locked []uint32
	for i := 0; i < 20000; i++ {
		prim := uint32(rng.Intn(64))
		n := 1 + rng.Intn(3)
		blocks := attrBlocks(prim*4, n)
		switch rng.Intn(10) {
		case 0, 1, 2:
			c.Write(prim, uint8(n), uint16(rng.Intn(100)), uint16(rng.Intn(100)), blocks)
		case 9:
			if len(locked) > 8 {
				for _, p := range locked {
					c.Unlock(p)
				}
				locked = locked[:0]
			}
			if rng.Intn(50) == 0 {
				c.EndFrame()
				locked = locked[:0]
			}
		default:
			res := c.Read(prim, uint8(n), uint16(rng.Intn(100)), uint16(rng.Intn(100)), blocks)
			if res.Stalled {
				for _, p := range locked {
					c.Unlock(p)
				}
				locked = locked[:0]
			} else {
				locked = append(locked, prim)
			}
		}
		if i%500 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ReadHits == 0 || st.ReadMisses == 0 || st.WriteBypasses == 0 {
		t.Errorf("degenerate run: %+v", st)
	}
}

func TestPrimitiveListCache(t *testing.T) {
	sink := mem.NewCounter()
	p, err := NewPrimitiveListCache(ListCacheConfig{SizeBytes: 1024, Ways: 2, TagLastUse: true}, sink)
	if err != nil {
		t.Fatal(err)
	}
	base := memmap.PBListsBase
	// Write 16 PMDs of one block: 1 miss, 15 hits, no L2 traffic (write
	// allocate without fetch).
	for i := 0; i < 16; i++ {
		p.Access(base+uint64(i*4), true, 3)
	}
	st := p.Stats()
	if st.Misses != 1 || st.Hits != 15 {
		t.Errorf("misses/hits = %d/%d", st.Misses, st.Hits)
	}
	if sink.Total() != 0 {
		t.Errorf("writes allocated locally should not reach L2, got %d", sink.Total())
	}
	// Read the same block: hit.
	p.Access(base, false, 3)
	if p.Stats().Hits != 16 {
		t.Error("read after write should hit")
	}
	// Read a far block: miss -> L2 read tagged with the tile position.
	p.Access(base+1<<20, false, 7)
	if sink.Reads != 1 {
		t.Errorf("L2 reads = %d", sink.Reads)
	}
	if sink.Region(memmap.RegionPBLists).Reads != 1 {
		t.Error("region classification")
	}
}

func TestPrimitiveListCacheWritebackOnEviction(t *testing.T) {
	sink := mem.NewCounter()
	// Tiny cache: 2 lines, direct... 2 ways 1 set.
	p, err := NewPrimitiveListCache(ListCacheConfig{SizeBytes: 128, Ways: 2, TagLastUse: true}, sink)
	if err != nil {
		t.Fatal(err)
	}
	base := memmap.PBListsBase
	p.Access(base, true, 1)      // dirty block A
	p.Access(base+64, true, 2)   // dirty block B
	p.Access(base+128, false, 3) // evicts A -> writeback + fetch
	if st := p.Stats(); st.Writebacks != 1 {
		t.Errorf("writebacks = %d", st.Writebacks)
	}
	if sink.Writes != 1 || sink.Reads != 1 {
		t.Errorf("L2 = %d reads %d writes, want 1/1", sink.Reads, sink.Writes)
	}
	p.EndFrame()
	// EndFrame drops dirty lines without L2 writes.
	if sink.Writes != 1 {
		t.Error("EndFrame must not write back")
	}
}

func TestNewTileCache(t *testing.T) {
	sink := mem.NewCounter()
	tc, err := NewTileCache(64*1024, sink)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Attrs.Config().AttrEntries != SizeToAttrEntries(48*1024) {
		t.Errorf("attr entries = %d", tc.Attrs.Config().AttrEntries)
	}
	if _, err := NewTileCache(8*1024, sink); err == nil {
		t.Error("expected error for budget below list cache size")
	}
	tc.Attrs.Write(0, 1, 1, 1, attrBlocks(0, 1))
	tc.EndFrame()
	if tc.Attrs.Contains(0) {
		t.Error("EndFrame should clear the attribute cache")
	}
}
