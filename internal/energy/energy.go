// Package energy provides the analytic energy model that stands in for
// McPAT in the paper's toolchain. Energy is accounted the way the paper
// reports it: every access to every SRAM structure costs a per-access energy
// that grows with the structure's size and associativity (a CACTI-style
// scaling law), DRAM accesses cost orders of magnitude more, and the
// "memory hierarchy energy" of Figs. 20/21 is the sum over all caches plus
// DRAM. Total GPU energy adds the datapath (shader ALUs, rasterizer,
// fixed-function) cost, which is identical between baseline and TCOR — the
// paper's total-GPU numbers (Fig. 22) are the hierarchy savings diluted by
// that constant.
package energy

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Model holds the energy constants, in picojoules. The defaults are
// representative of a 32 nm mobile SoC (Table I's technology node):
// a 64 KiB 4-way SRAM read lands near 12 pJ, the 1 MiB L2 near 55 pJ, and a
// 64-byte LPDDR access near 3 nJ.
type Model struct {
	// SRAMBase and SRAMScale parameterize the per-access energy of an SRAM
	// structure: E = SRAMBase + SRAMScale*sqrt(KiB)*(1 + AssocFactor*ways).
	SRAMBase    float64
	SRAMScale   float64
	AssocFactor float64
	// WriteFactor scales write energy relative to reads.
	WriteFactor float64
	// DRAMRead and DRAMWrite are per-64-byte-access energies.
	DRAMRead, DRAMWrite float64
	// OpEnergy is the per-executed-shader-instruction datapath energy used
	// for the total-GPU aggregation. It covers the whole execution pipe —
	// fetch, decode, operand delivery, register file, ALU and scheduling —
	// around 70 pJ per instruction at 32 nm; the datapaths put the memory
	// hierarchy at roughly 40% of total GPU energy, the share the paper's
	// McPAT model implies (a 13.8% hierarchy saving dilutes to 5.5% of the
	// whole GPU).
	OpEnergy float64
	// FixedFunction is the per-fragment fixed-function datapath energy
	// (rasterization, attribute interpolation, early-Z, blending).
	FixedFunction float64
	// LeakagePJPerKBCycle is the static (leakage) energy of SRAM per KB per
	// clock cycle. Zero disables leakage accounting (the default: the
	// figures are calibrated on dynamic energy; turn it on via
	// gpu.Config.IncludeLeakage for sensitivity studies). A 32 nm SRAM
	// leaks on the order of 20 mW/MiB, i.e. ~0.03 pJ/KB/cycle at 600 MHz.
	LeakagePJPerKBCycle float64
}

// DefaultModel returns the 32 nm constants described above.
func DefaultModel() Model {
	return Model{
		SRAMBase:            1.5,
		SRAMScale:           0.95,
		AssocFactor:         0.10,
		WriteFactor:         1.1,
		DRAMRead:            3000,
		DRAMWrite:           3300,
		OpEnergy:            70,
		FixedFunction:       140,
		LeakagePJPerKBCycle: 0.033,
	}
}

// SRAMRead returns the read energy (pJ) of a structure of sizeBytes
// organized with the given associativity (ways<=1 treated as direct
// mapped/SRAM array).
func (m Model) SRAMRead(sizeBytes, ways int) float64 {
	if sizeBytes <= 0 {
		return 0
	}
	if ways < 1 {
		ways = 1
	}
	kib := float64(sizeBytes) / 1024
	return m.SRAMBase + m.SRAMScale*math.Sqrt(kib)*(1+m.AssocFactor*float64(ways))
}

// SRAMWrite returns the write energy (pJ).
func (m Model) SRAMWrite(sizeBytes, ways int) float64 {
	return m.SRAMRead(sizeBytes, ways) * m.WriteFactor
}

// Leakage returns the static energy (pJ) a structure of sizeBytes leaks
// over the given number of cycles.
func (m Model) Leakage(sizeBytes int, cycles int64) float64 {
	return m.LeakagePJPerKBCycle * float64(sizeBytes) / 1024 * float64(cycles)
}

// Tally accumulates energy by named component.
type Tally struct {
	entries map[string]*Entry
}

// Entry is one component's accumulated accesses and energy.
type Entry struct {
	Accesses int64
	PJ       float64
}

// NewTally returns an empty tally.
func NewTally() *Tally {
	return &Tally{entries: make(map[string]*Entry)}
}

// Add charges n accesses of perAccess pJ to the named component.
func (t *Tally) Add(component string, n int64, perAccess float64) {
	e := t.entries[component]
	if e == nil {
		e = &Entry{}
		t.entries[component] = e
	}
	e.Accesses += n
	e.PJ += float64(n) * perAccess
}

// AddEnergy charges a raw energy amount (pJ) without access accounting.
func (t *Tally) AddEnergy(component string, pj float64) {
	e := t.entries[component]
	if e == nil {
		e = &Entry{}
		t.entries[component] = e
	}
	e.PJ += pj
}

// Get returns a component's entry (zero if absent).
func (t *Tally) Get(component string) Entry {
	if e := t.entries[component]; e != nil {
		return *e
	}
	return Entry{}
}

// Total returns the summed energy in pJ. Components are summed in sorted
// order so the result is bit-for-bit deterministic (float addition is not
// associative; map iteration order would leak into the last bits).
func (t *Tally) Total() float64 {
	var s float64
	for _, k := range t.Components() {
		s += t.entries[k].PJ
	}
	return s
}

// Components returns the component names in sorted order.
func (t *Tally) Components() []string {
	out := make([]string, 0, len(t.entries))
	for k := range t.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MarshalJSON encodes the tally as a plain component→entry object.
// encoding/json sorts object keys, so the encoding is deterministic; the
// sweep checkpoint journal relies on that to make record hashes stable.
func (t *Tally) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.entries)
}

// UnmarshalJSON restores a tally encoded by MarshalJSON. The receiver's
// previous contents are discarded.
func (t *Tally) UnmarshalJSON(b []byte) error {
	m := make(map[string]*Entry)
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	t.entries = m
	return nil
}

// Merge adds the other tally into t.
func (t *Tally) Merge(other *Tally) {
	for k, e := range other.entries {
		t.Add(k, e.Accesses, 0)
		t.AddEnergy(k, e.PJ)
	}
}

// String formats the tally for reports.
func (t *Tally) String() string {
	s := ""
	for _, k := range t.Components() {
		e := t.entries[k]
		s += fmt.Sprintf("%-22s %12d accesses %14.1f pJ\n", k, e.Accesses, e.PJ)
	}
	s += fmt.Sprintf("%-22s %27.1f pJ (%.3f mJ)\n", "TOTAL", t.Total(), t.Total()/1e9)
	return s
}
