package energy

import (
	"strings"
	"testing"
)

func TestSRAMScaling(t *testing.T) {
	m := DefaultModel()
	small := m.SRAMRead(16*1024, 4)
	big := m.SRAMRead(64*1024, 4)
	huge := m.SRAMRead(1<<20, 8)
	if !(small < big && big < huge) {
		t.Errorf("energy must grow with size: %v %v %v", small, big, huge)
	}
	// Associativity costs energy.
	if m.SRAMRead(64*1024, 8) <= m.SRAMRead(64*1024, 1) {
		t.Error("higher associativity must cost more")
	}
	// Sanity magnitudes: L1 ~ 10pJ, L2 ~ tens of pJ, DRAM ~ nJ.
	if big < 5 || big > 30 {
		t.Errorf("64KiB L1 read = %v pJ, out of plausible range", big)
	}
	if huge < 25 || huge > 150 {
		t.Errorf("1MiB L2 read = %v pJ, out of plausible range", huge)
	}
	if m.DRAMRead < 20*huge {
		t.Error("DRAM must dominate SRAM per access")
	}
	if m.SRAMWrite(64*1024, 4) <= m.SRAMRead(64*1024, 4) {
		t.Error("writes cost more than reads")
	}
	if m.SRAMRead(0, 4) != 0 {
		t.Error("zero-size structure costs nothing")
	}
	if m.SRAMRead(1024, 0) != m.SRAMRead(1024, 1) {
		t.Error("ways<1 should clamp to 1")
	}
}

func TestTally(t *testing.T) {
	ta := NewTally()
	ta.Add("l1", 100, 2.0)
	ta.Add("l1", 50, 2.0)
	ta.Add("dram", 10, 3000)
	e := ta.Get("l1")
	if e.Accesses != 150 || e.PJ != 300 {
		t.Errorf("l1 entry = %+v", e)
	}
	if ta.Total() != 300+30000 {
		t.Errorf("total = %v", ta.Total())
	}
	if ta.Get("absent").Accesses != 0 {
		t.Error("absent component should be zero")
	}
	comps := ta.Components()
	if len(comps) != 2 || comps[0] != "dram" || comps[1] != "l1" {
		t.Errorf("components = %v", comps)
	}
	ta.AddEnergy("static", 42)
	if ta.Get("static").PJ != 42 {
		t.Error("AddEnergy")
	}
	out := ta.String()
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "dram") {
		t.Errorf("String output:\n%s", out)
	}
}

func TestTallyMerge(t *testing.T) {
	a := NewTally()
	a.Add("x", 10, 1)
	b := NewTally()
	b.Add("x", 5, 2)
	b.Add("y", 1, 7)
	a.Merge(b)
	if got := a.Get("x"); got.Accesses != 15 || got.PJ != 20 {
		t.Errorf("merged x = %+v", got)
	}
	if got := a.Get("y"); got.PJ != 7 {
		t.Errorf("merged y = %+v", got)
	}
}
