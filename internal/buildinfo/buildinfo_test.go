package buildinfo

import (
	"strings"
	"testing"
)

func TestGetNeverEmpty(t *testing.T) {
	i := Get()
	if i.Version == "" {
		t.Fatal("Get returned an empty version")
	}
	if i.GoVersion == "" {
		t.Fatal("Get returned an empty Go version")
	}
}

func TestStringShape(t *testing.T) {
	i := Info{Version: "v1.2.3", GoVersion: "go1.22.0",
		Revision: "0123456789abcdef0123", Modified: true}
	s := i.String()
	for _, want := range []string{"tcor v1.2.3", "0123456789ab+dirty", "go1.22.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "0123456789abc") {
		t.Errorf("String() = %q: revision not truncated to 12 chars", s)
	}
}

func TestStringNoVCS(t *testing.T) {
	s := Info{Version: "unknown", GoVersion: "go1.22.0"}.String()
	if !strings.Contains(s, "no vcs") {
		t.Errorf("String() = %q, want a 'no vcs' marker", s)
	}
}

func TestLdflagsOverride(t *testing.T) {
	old := Version
	defer func() { Version = old }()
	Version = "v9.9.9-test"
	if got := Get().Version; got != "v9.9.9-test" {
		t.Fatalf("Get().Version = %q, want the ldflags override", got)
	}
}
