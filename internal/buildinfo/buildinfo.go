// Package buildinfo exposes one identity for every binary in the module:
// the module version, the VCS revision the binary was built from, and the
// Go toolchain, all read from the build metadata the linker already embeds
// (debug.ReadBuildInfo). Every CLI's -version flag and the service's
// GET /v1/version endpoint render the same Info, so a served response can
// always be traced back to the exact build that produced it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version can be overridden at link time
// (go build -ldflags "-X tcor/internal/buildinfo.Version=v1.2.3"); when
// empty, the module version recorded by the toolchain is used.
var Version string

// Info identifies one build of the module.
type Info struct {
	// Version is the release version: the -ldflags override when set,
	// otherwise the module version ("(devel)" for plain `go build`).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"goVersion"`
	// Revision is the VCS commit hash, when the build had VCS metadata.
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit time (RFC 3339), when available.
	Time string `json:"time,omitempty"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

// Get assembles the build identity of the running binary. It never fails:
// binaries built without module support fall back to "unknown".
func Get() Info {
	info := Info{Version: Version, GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		if info.Version == "" {
			info.Version = "unknown"
		}
		return info
	}
	if info.Version == "" {
		info.Version = bi.Main.Version
	}
	if info.Version == "" {
		info.Version = "unknown"
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the identity on one line, the shape every CLI's -version
// flag prints: "tcor <version> (<rev>[+dirty]) <go version>".
func (i Info) String() string {
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "no vcs"
	}
	if i.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("tcor %s (%s) %s", i.Version, rev, i.GoVersion)
}
