package geometry

import (
	"math"
	"strings"
	"testing"

	"tcor/internal/geom"
)

const objCubeSrc = `
# a unit quad and a triangle
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
vt 0 0
vt 1 0
vt 1 1
vt 0 1
f 1/1 2/2 3/3 4/4
f 1 2 4
`

func TestParseOBJBasic(t *testing.T) {
	m, err := ParseOBJ(strings.NewReader(objCubeSrc))
	if err != nil {
		t.Fatal(err)
	}
	// The quad fan-triangulates into 2, plus the bare triangle = 3.
	if m.NumTriangles() != 3 {
		t.Errorf("triangles = %d, want 3", m.NumTriangles())
	}
	// Position-only and position/uv references of vertex 1 are distinct
	// unified vertices (different UV), so 4 (with uv) + up to 3 (without).
	if len(m.Vertices) < 4 {
		t.Errorf("vertices = %d", len(m.Vertices))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// UVs survived.
	if m.Vertices[2].Attrs[1].X != 1 || m.Vertices[2].Attrs[1].Y != 1 {
		t.Errorf("uv of third vertex = %+v", m.Vertices[2].Attrs[1])
	}
}

func TestParseOBJNegativeIndices(t *testing.T) {
	src := "v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n"
	m, err := ParseOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTriangles() != 1 {
		t.Errorf("triangles = %d", m.NumTriangles())
	}
}

func TestParseOBJIgnoresNormalsAndGroups(t *testing.T) {
	src := `
o thing
g part
s off
usemtl steel
mtllib things.mtl
v 0 0 0
v 1 0 0
v 0 1 0
vn 0 0 1
f 1//1 2//1 3//1
`
	m, err := ParseOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTriangles() != 1 {
		t.Errorf("triangles = %d", m.NumTriangles())
	}
}

func TestParseOBJErrors(t *testing.T) {
	cases := []string{
		"v 1 2\n",            // short vertex
		"vt 1\n",             // short texcoord
		"f 1 2\n",            // short face
		"v 0 0 0\nf 1 2 3\n", // out-of-range index
		"v a b c\n",          // bad float
		"banana 1 2 3\n",     // unknown record
		"v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/9 2/9 3/9\n", // bad uv index
	}
	for i, src := range cases {
		if _, err := ParseOBJ(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseOBJRoundTripThroughPipeline(t *testing.T) {
	m, err := ParseOBJ(strings.NewReader(objCubeSrc))
	if err != nil {
		t.Fatal(err)
	}
	scene := &Scene{
		Camera: testCamera(),
		Objects: []Object{
			{Mesh: m, Transform: geom.Translate(-0.5, -0.5, 0)},
		},
	}
	prims, _, err := Run(scene, PipelineConfig{Screen: geom.DefaultScreen()})
	if err != nil {
		t.Fatal(err)
	}
	if len(prims) == 0 {
		t.Fatal("OBJ mesh produced no primitives")
	}
}

func TestSphere(t *testing.T) {
	s := Sphere(8, 12)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumTriangles() != 8*12*2 {
		t.Errorf("triangles = %d, want %d", s.NumTriangles(), 8*12*2)
	}
	// All vertices on the unit sphere.
	for i, v := range s.Vertices {
		r := math.Sqrt(float64(v.Pos.X*v.Pos.X + v.Pos.Y*v.Pos.Y + v.Pos.Z*v.Pos.Z))
		if math.Abs(r-1) > 1e-5 {
			t.Fatalf("vertex %d at radius %v", i, r)
		}
	}
	// Degenerate parameters clamp instead of failing.
	tiny := Sphere(0, 0)
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
	// Closed mesh through the pipeline: roughly half the triangles face
	// away (poles give some slack).
	scene := &Scene{
		Camera:  testCamera(),
		Objects: []Object{{Mesh: Sphere(12, 16), Transform: geom.ScaleUniform(1.5)}},
	}
	prims, st, err := Run(scene, PipelineConfig{Screen: geom.DefaultScreen(), CullBackfaces: true})
	if err != nil {
		t.Fatal(err)
	}
	// Roughly half the triangles face away; pole-degenerate and
	// silhouette (edge-on, zero projected area) triangles of a coarse
	// sphere are culled too, pushing the fraction above 1/2.
	frac := float64(st.CulledBackfacing) / float64(st.TrianglesIn)
	if frac < 0.45 || frac > 0.8 {
		t.Errorf("backface-culled fraction = %.2f, want roughly half plus silhouette", frac)
	}
	if len(prims) == 0 {
		t.Fatal("sphere invisible")
	}
}
