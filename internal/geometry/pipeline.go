package geometry

import (
	"fmt"

	"tcor/internal/geom"
)

// PipelineConfig controls the Geometry Pipeline stages.
type PipelineConfig struct {
	Screen geom.Screen
	// CullBackfaces drops screen-space clockwise triangles (the usual
	// default for closed meshes).
	CullBackfaces bool
}

// PipelineStats counts what happened to the submitted geometry.
type PipelineStats struct {
	TrianglesIn      int
	CulledFrustum    int // rejected entirely outside the view volume
	CulledBackfacing int
	CulledDegenerate int
	Clipped          int // triangles that intersected a clip plane
	TrianglesOut     int
}

// clipVertex is a vertex in clip space with its attribute payload, as it
// flows between the vertex stage and primitive assembly.
type clipVertex struct {
	pos   geom.Vec4
	attrs []geom.Vec4
}

// Run pushes a scene through the Geometry Pipeline and returns the
// screen-space primitives in emission order (IDs assigned 0..n-1, the
// program order the Tiling Engine requires) together with the stage
// statistics.
func Run(scene *Scene, cfg PipelineConfig) ([]geom.Primitive, PipelineStats, error) {
	var st PipelineStats
	if err := scene.Camera.Validate(); err != nil {
		return nil, st, err
	}
	if err := cfg.Screen.Validate(); err != nil {
		return nil, st, err
	}
	vp := scene.Camera.ViewProjection()

	var out []geom.Primitive
	for oi := range scene.Objects {
		obj := &scene.Objects[oi]
		if obj.Mesh == nil {
			return nil, st, fmt.Errorf("geometry: object %d has no mesh", oi)
		}
		if err := obj.Mesh.Validate(); err != nil {
			return nil, st, err
		}
		mvp := vp.Mul(obj.Transform)

		// Vertex Stage: transform every vertex once (the Vertex Cache in
		// the full GPU model makes this a fetch-once operation too).
		clipVerts := make([]clipVertex, len(obj.Mesh.Vertices))
		for i, v := range obj.Mesh.Vertices {
			clipVerts[i] = clipVertex{
				pos:   mvp.Apply(geom.Vec4{X: v.Pos.X, Y: v.Pos.Y, Z: v.Pos.Z, W: 1}),
				attrs: v.Attrs,
			}
		}

		// Primitive Assembly + clip + viewport.
		idx := obj.Mesh.Indices
		for t := 0; t+2 < len(idx); t += 3 {
			st.TrianglesIn++
			tri := [3]clipVertex{clipVerts[idx[t]], clipVerts[idx[t+1]], clipVerts[idx[t+2]]}
			poly, touched := clipTriangle(tri)
			if len(poly) < 3 {
				st.CulledFrustum++
				continue
			}
			if touched {
				st.Clipped++
			}
			// Triangulate the clipped polygon as a fan and emit.
			for k := 1; k+1 < len(poly); k++ {
				p, ok := toScreen([3]clipVertex{poly[0], poly[k], poly[k+1]}, cfg.Screen)
				if !ok {
					st.CulledDegenerate++
					continue
				}
				if cfg.CullBackfaces && signedArea(p) >= 0 {
					st.CulledBackfacing++
					continue
				}
				p.ID = uint32(len(out))
				out = append(out, p)
				st.TrianglesOut++
			}
		}
	}
	return out, st, nil
}

// clipPlane identifies one of the six clip-space half-spaces via a signed
// distance function that is positive inside.
type clipPlane func(v geom.Vec4) float32

var clipPlanes = [6]clipPlane{
	func(v geom.Vec4) float32 { return v.W - v.X }, // x <= w
	func(v geom.Vec4) float32 { return v.W + v.X }, // x >= -w
	func(v geom.Vec4) float32 { return v.W - v.Y }, // y <= w
	func(v geom.Vec4) float32 { return v.W + v.Y }, // y >= -w
	func(v geom.Vec4) float32 { return v.W - v.Z }, // z <= w
	func(v geom.Vec4) float32 { return v.W + v.Z }, // z >= -w (near plane)
}

// clipTriangle clips a clip-space triangle against the view volume with
// Sutherland–Hodgman, interpolating attributes. It returns the clipped
// polygon (empty when fully outside) and whether any plane actually cut it.
func clipTriangle(tri [3]clipVertex) ([]clipVertex, bool) {
	poly := tri[:]
	touched := false
	for _, plane := range clipPlanes {
		if len(poly) == 0 {
			break
		}
		var next []clipVertex
		for i := range poly {
			cur := poly[i]
			prev := poly[(i+len(poly)-1)%len(poly)]
			dc, dp := plane(cur.pos), plane(prev.pos)
			inC, inP := dc >= 0, dp >= 0
			if inP != inC {
				touched = true
				next = append(next, lerpVertex(prev, cur, dp/(dp-dc)))
			}
			if inC {
				next = append(next, cur)
			}
		}
		poly = next
	}
	return poly, touched
}

// lerpVertex interpolates position and attributes at parameter t in [0,1]
// from a toward b.
func lerpVertex(a, b clipVertex, t float32) clipVertex {
	v := clipVertex{
		pos:   a.pos.Add(b.pos.Sub(a.pos).Scale(t)),
		attrs: make([]geom.Vec4, len(a.attrs)),
	}
	for i := range a.attrs {
		v.attrs[i] = a.attrs[i].Add(b.attrs[i].Sub(a.attrs[i]).Scale(t))
	}
	return v
}

// toScreen performs the perspective divide and viewport transform, packing
// the per-vertex attributes into the PB-Attributes record shape
// (geom.Attribute: one attribute = three vertices' worth).
func toScreen(tri [3]clipVertex, screen geom.Screen) (geom.Primitive, bool) {
	var p geom.Primitive
	nAttrs := len(tri[0].attrs)
	p.Attrs = make([]geom.Attribute, nAttrs)
	for i, cv := range tri {
		if cv.pos.W <= 0 {
			return p, false // behind the eye even after clipping: degenerate
		}
		ndc := cv.pos.PerspectiveDivide()
		p.Pos[i] = geom.Vec2{
			X: (ndc.X*0.5 + 0.5) * float32(screen.Width),
			Y: (1 - (ndc.Y*0.5 + 0.5)) * float32(screen.Height),
		}
		p.Depth[i] = ndc.Z*0.5 + 0.5
		for a := 0; a < nAttrs; a++ {
			p.Attrs[a].V[i] = cv.attrs[a]
		}
	}
	return p, true
}

// signedArea returns twice the signed screen-space area. Screen
// coordinates grow downward, so triangles with counter-clockwise
// object-space winding viewed from their front project to a *negative*
// value; back-facing and edge-on triangles are >= 0.
func signedArea(p geom.Primitive) float32 {
	a := p.Pos[1].Sub(p.Pos[0])
	b := p.Pos[2].Sub(p.Pos[0])
	return a.Cross(b)
}
