package geometry_test

import (
	"fmt"
	"math"

	"tcor/internal/geom"
	"tcor/internal/geometry"
)

// Render a cube through the full Geometry Pipeline: transform, clip, cull,
// viewport-map. The emitted primitives are bin-ready for the Tiling Engine.
func ExampleRun() {
	scene := &geometry.Scene{
		Camera: geometry.Camera{
			Eye:    geom.Vec3{X: 3, Y: 2.5, Z: 5},
			Target: geom.Vec3{},
			Up:     geom.Vec3{Y: 1},
			FovY:   math.Pi / 3,
			Aspect: 1960.0 / 768.0,
			Near:   0.1, Far: 100,
		},
		Objects: []geometry.Object{
			{Mesh: geometry.Cube(), Transform: geom.Identity()},
		},
	}
	prims, stats, _ := geometry.Run(scene, geometry.PipelineConfig{
		Screen:        geom.DefaultScreen(),
		CullBackfaces: true,
	})
	fmt.Printf("triangles: %d in, %d out, %d backface-culled\n",
		stats.TrianglesIn, len(prims), stats.CulledBackfacing)
	// Output:
	// triangles: 12 in, 6 out, 6 backface-culled
}
