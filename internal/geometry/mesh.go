package geometry

import (
	"fmt"

	"tcor/internal/geom"
)

// Vertex is one input vertex: an object-space position plus the attribute
// payload that will be interpolated by the Raster Pipeline (colors, normals,
// texture coordinates — each a Vec4, 16 bytes, matching the paper's
// PB-Attributes layout).
type Vertex struct {
	Pos   geom.Vec3
	Attrs []geom.Vec4
}

// Mesh is an indexed triangle mesh.
type Mesh struct {
	Vertices []Vertex
	// Indices holds vertex indices, three per triangle.
	Indices []uint32
}

// Validate checks the mesh's structural invariants.
func (m *Mesh) Validate() error {
	if len(m.Indices)%3 != 0 {
		return fmt.Errorf("geometry: %d indices is not a multiple of 3", len(m.Indices))
	}
	nAttrs := -1
	for i, v := range m.Vertices {
		if nAttrs == -1 {
			nAttrs = len(v.Attrs)
		} else if len(v.Attrs) != nAttrs {
			return fmt.Errorf("geometry: vertex %d has %d attrs, mesh uses %d", i, len(v.Attrs), nAttrs)
		}
	}
	if nAttrs == 0 {
		return fmt.Errorf("geometry: mesh vertices need at least one attribute")
	}
	if nAttrs > geom.MaxAttributes {
		return fmt.Errorf("geometry: %d attributes exceed the PMD limit %d", nAttrs, geom.MaxAttributes)
	}
	for i, idx := range m.Indices {
		if int(idx) >= len(m.Vertices) {
			return fmt.Errorf("geometry: index %d at %d out of range", idx, i)
		}
	}
	return nil
}

// NumTriangles returns the triangle count.
func (m *Mesh) NumTriangles() int { return len(m.Indices) / 3 }

// Object places a mesh in the world.
type Object struct {
	Mesh      *Mesh
	Transform geom.Mat4 // model matrix
}

// Scene is a 3D scene: a camera plus objects in submission (draw) order.
type Scene struct {
	Camera  Camera
	Objects []Object
}

// Cube returns a unit cube mesh centered at the origin with one color
// attribute and one texture-coordinate attribute per vertex.
func Cube() *Mesh {
	corner := func(x, y, z float32) Vertex {
		return Vertex{
			Pos: geom.Vec3{X: x, Y: y, Z: z},
			Attrs: []geom.Vec4{
				{X: (x + 1) / 2, Y: (y + 1) / 2, Z: (z + 1) / 2, W: 1}, // color
				{X: (x + 1) / 2, Y: (y + 1) / 2},                       // uv
			},
		}
	}
	m := &Mesh{}
	for _, z := range []float32{-0.5, 0.5} {
		for _, y := range []float32{-0.5, 0.5} {
			for _, x := range []float32{-0.5, 0.5} {
				m.Vertices = append(m.Vertices, corner(x*2, y*2, z*2))
			}
		}
	}
	// 12 triangles; vertex order gives outward-facing CCW winding.
	m.Indices = []uint32{
		0, 2, 1, 1, 2, 3, // z = -1 face
		4, 5, 6, 5, 7, 6, // z = +1 face
		0, 1, 4, 1, 5, 4, // y = -1
		2, 6, 3, 3, 6, 7, // y = +1
		0, 4, 2, 2, 4, 6, // x = -1
		1, 3, 5, 3, 7, 5, // x = +1
	}
	return m
}

// Plane returns a two-triangle rectangle in the XZ plane (a ground plane)
// spanning [-size/2, size/2] on X and Z at the given Y.
func Plane(size, y float32) *Mesh {
	h := size / 2
	mk := func(x, z float32) Vertex {
		return Vertex{
			Pos: geom.Vec3{X: x, Y: y, Z: z},
			Attrs: []geom.Vec4{
				{X: 0.4, Y: 0.5, Z: 0.4, W: 1},
				{X: (x + h) / size, Y: (z + h) / size},
			},
		}
	}
	return &Mesh{
		Vertices: []Vertex{mk(-h, -h), mk(h, -h), mk(h, h), mk(-h, h)},
		Indices:  []uint32{0, 1, 2, 0, 2, 3},
	}
}
