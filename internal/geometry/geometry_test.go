package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tcor/internal/geom"
)

func testCamera() Camera {
	return Camera{
		Eye:    geom.Vec3{X: 0, Y: 0, Z: 5},
		Target: geom.Vec3{X: 0, Y: 0, Z: 0},
		Up:     geom.Vec3{X: 0, Y: 1, Z: 0},
		FovY:   math.Pi / 3,
		Aspect: 1960.0 / 768.0,
		Near:   0.1,
		Far:    100,
	}
}

func TestCameraValidate(t *testing.T) {
	good := testCamera()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Camera){
		func(c *Camera) { c.FovY = 0 },
		func(c *Camera) { c.FovY = math.Pi },
		func(c *Camera) { c.Aspect = 0 },
		func(c *Camera) { c.Near = 0 },
		func(c *Camera) { c.Far = c.Near },
		func(c *Camera) { c.Target = c.Eye },
	}
	for i, mutate := range cases {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestViewMatrixMapsEyeToOrigin(t *testing.T) {
	c := testCamera()
	v := c.View().Apply(geom.Vec4{X: c.Eye.X, Y: c.Eye.Y, Z: c.Eye.Z, W: 1})
	if math.Abs(float64(v.X)) > 1e-5 || math.Abs(float64(v.Y)) > 1e-5 || math.Abs(float64(v.Z)) > 1e-5 {
		t.Errorf("eye maps to %v, want origin", v)
	}
	// The target lies straight ahead (negative z in camera space).
	tv := c.View().Apply(geom.Vec4{W: 1})
	if tv.Z >= 0 {
		t.Errorf("target at camera-space z %v, want negative (ahead)", tv.Z)
	}
}

func TestProjectionCenterAndDepthRange(t *testing.T) {
	c := testCamera()
	vp := c.ViewProjection()
	// A point straight ahead projects to the NDC center.
	p := vp.Apply(geom.Vec4{X: 0, Y: 0, Z: 0, W: 1}).PerspectiveDivide()
	if math.Abs(float64(p.X)) > 1e-5 || math.Abs(float64(p.Y)) > 1e-5 {
		t.Errorf("center point at NDC (%v, %v)", p.X, p.Y)
	}
	// Near-plane points map to NDC z=-1, far-plane to z=+1.
	near := c.Projection().Apply(geom.Vec4{Z: -c.Near, W: 1}).PerspectiveDivide()
	far := c.Projection().Apply(geom.Vec4{Z: -c.Far, W: 1}).PerspectiveDivide()
	if math.Abs(float64(near.Z+1)) > 1e-4 || math.Abs(float64(far.Z-1)) > 1e-4 {
		t.Errorf("depth range: near %v far %v, want -1/+1", near.Z, far.Z)
	}
}

func TestMeshValidate(t *testing.T) {
	cube := Cube()
	if err := cube.Validate(); err != nil {
		t.Fatal(err)
	}
	if cube.NumTriangles() != 12 {
		t.Errorf("cube has %d triangles", cube.NumTriangles())
	}
	bad := &Mesh{Vertices: cube.Vertices, Indices: []uint32{0, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("non-multiple-of-3 indices must fail")
	}
	bad = &Mesh{Vertices: cube.Vertices, Indices: []uint32{0, 1, 99}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range index must fail")
	}
	bad = &Mesh{
		Vertices: []Vertex{{}, {}, {}},
		Indices:  []uint32{0, 1, 2},
	}
	if err := bad.Validate(); err == nil {
		t.Error("attribute-less vertices must fail")
	}
	mixed := &Mesh{
		Vertices: []Vertex{
			{Attrs: []geom.Vec4{{}}},
			{Attrs: []geom.Vec4{{}, {}}},
			{Attrs: []geom.Vec4{{}}},
		},
		Indices: []uint32{0, 1, 2},
	}
	if err := mixed.Validate(); err == nil {
		t.Error("mixed attribute counts must fail")
	}
}

func TestRunCubeScene(t *testing.T) {
	// View the cube from an oblique angle so that exactly three faces
	// (six triangles) face the camera and six are back-facing.
	cam := testCamera()
	cam.Eye = geom.Vec3{X: 3, Y: 2.5, Z: 5}
	scene := &Scene{
		Camera: cam,
		Objects: []Object{
			{Mesh: Cube(), Transform: geom.Identity()},
		},
	}
	screen := geom.DefaultScreen()
	prims, st, err := Run(scene, PipelineConfig{Screen: screen, CullBackfaces: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.TrianglesIn != 12 {
		t.Errorf("triangles in = %d", st.TrianglesIn)
	}
	if st.CulledBackfacing != 6 {
		t.Errorf("backface culled = %d, want 6 (three hidden faces)", st.CulledBackfacing)
	}
	if st.TrianglesOut != 6 {
		t.Errorf("triangles out = %d, want 6 (three visible faces)", st.TrianglesOut)
	}
	if len(prims) == 0 {
		t.Fatal("no primitives emitted")
	}
	for i, p := range prims {
		if p.ID != uint32(i) {
			t.Fatalf("prim %d has ID %d; emission order required", i, p.ID)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("prim %d: %v", i, err)
		}
		// The cube is fully inside the frustum: every vertex on screen.
		for _, v := range p.Pos {
			if v.X < -0.5 || v.X > float32(screen.Width)+0.5 ||
				v.Y < -0.5 || v.Y > float32(screen.Height)+0.5 {
				t.Fatalf("prim %d vertex %v off screen", i, v)
			}
		}
		for _, d := range p.Depth {
			if d < 0 || d > 1 {
				t.Fatalf("prim %d depth %v outside [0,1]", i, d)
			}
		}
	}
}

func TestRunCullsBehindCamera(t *testing.T) {
	scene := &Scene{
		Camera: testCamera(), // looking down -z from z=5
		Objects: []Object{
			{Mesh: Cube(), Transform: geom.Translate(0, 0, 50)}, // behind the eye
		},
	}
	prims, st, err := Run(scene, PipelineConfig{Screen: geom.DefaultScreen()})
	if err != nil {
		t.Fatal(err)
	}
	if len(prims) != 0 {
		t.Errorf("emitted %d primitives for geometry behind the camera", len(prims))
	}
	if st.CulledFrustum != 12 {
		t.Errorf("frustum culled = %d, want 12", st.CulledFrustum)
	}
}

func TestRunClipsStraddlingGeometry(t *testing.T) {
	// A huge ground plane extends behind the camera: it must be clipped,
	// not dropped, and all emitted vertices must be on screen.
	scene := &Scene{
		Camera: Camera{
			Eye:    geom.Vec3{X: 0, Y: 2, Z: 5},
			Target: geom.Vec3{X: 0, Y: 0, Z: 0},
			Up:     geom.Vec3{X: 0, Y: 1, Z: 0},
			FovY:   math.Pi / 3,
			Aspect: 1960.0 / 768.0,
			Near:   0.1, Far: 100,
		},
		Objects: []Object{
			{Mesh: Plane(1000, 0), Transform: geom.Identity()},
		},
	}
	screen := geom.DefaultScreen()
	prims, st, err := Run(scene, PipelineConfig{Screen: screen})
	if err != nil {
		t.Fatal(err)
	}
	if st.Clipped == 0 {
		t.Error("expected clipping on a screen-straddling plane")
	}
	if len(prims) == 0 {
		t.Fatal("plane fully culled")
	}
	const slack = 1.0 // float rounding at the borders
	for i, p := range prims {
		for _, v := range p.Pos {
			if v.X < -slack || v.X > float32(screen.Width)+slack ||
				v.Y < -slack || v.Y > float32(screen.Height)+slack {
				t.Fatalf("prim %d vertex %v escapes the viewport after clipping", i, v)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	scene := &Scene{Camera: testCamera()}
	if _, _, err := Run(scene, PipelineConfig{}); err == nil {
		t.Error("invalid screen must fail")
	}
	scene.Camera.Near = 0
	if _, _, err := Run(scene, PipelineConfig{Screen: geom.DefaultScreen()}); err == nil {
		t.Error("invalid camera must fail")
	}
	scene = &Scene{Camera: testCamera(), Objects: []Object{{}}}
	if _, _, err := Run(scene, PipelineConfig{Screen: geom.DefaultScreen()}); err == nil {
		t.Error("object without mesh must fail")
	}
}

// Property: clipping never produces vertices outside the view volume (all
// six plane distances non-negative up to epsilon) and fully-inside
// triangles pass through untouched.
func TestClipTriangleProperties(t *testing.T) {
	f := func(coords [9]int8, wRaw uint8) bool {
		w := float32(wRaw%20) + 1
		var tri [3]clipVertex
		for i := 0; i < 3; i++ {
			tri[i] = clipVertex{
				pos: geom.Vec4{
					X: float32(coords[i*3]) / 16 * w,
					Y: float32(coords[i*3+1]) / 16 * w,
					Z: float32(coords[i*3+2]) / 16 * w,
					W: w,
				},
				attrs: []geom.Vec4{{X: float32(i)}},
			}
		}
		poly, touched := clipTriangle(tri)
		const eps = 1e-3
		for _, v := range poly {
			for _, plane := range clipPlanes {
				if plane(v.pos) < -eps*w {
					return false
				}
			}
		}
		// Inside triangles (|coord| <= w/2 guarantees inside) are identity.
		allInside := true
		for i := 0; i < 9; i++ {
			if coords[i] < -16 || coords[i] > 16 {
				allInside = false
			}
		}
		if allInside && (touched || len(poly) != 3) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: attribute interpolation stays within the convex hull of the
// input attribute values.
func TestLerpVertexBounds(t *testing.T) {
	f := func(aRaw, bRaw int8, tRaw uint8) bool {
		a := clipVertex{attrs: []geom.Vec4{{X: float32(aRaw)}}}
		b := clipVertex{attrs: []geom.Vec4{{X: float32(bRaw)}}}
		tt := float32(tRaw) / 255
		v := lerpVertex(a, b, tt)
		lo, hi := float32(aRaw), float32(bRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		return v.attrs[0].X >= lo-1e-4 && v.attrs[0].X <= hi+1e-4
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestBackfaceCullingIsWindingSensitive(t *testing.T) {
	// One triangle facing the camera, its mirror facing away.
	front := &Mesh{
		Vertices: []Vertex{
			{Pos: geom.Vec3{X: -1, Y: -1}, Attrs: []geom.Vec4{{}}},
			{Pos: geom.Vec3{X: 1, Y: -1}, Attrs: []geom.Vec4{{}}},
			{Pos: geom.Vec3{X: 0, Y: 1}, Attrs: []geom.Vec4{{}}},
		},
		Indices: []uint32{0, 1, 2},
	}
	back := &Mesh{Vertices: front.Vertices, Indices: []uint32{0, 2, 1}}
	scene := &Scene{
		Camera: testCamera(),
		Objects: []Object{
			{Mesh: front, Transform: geom.Identity()},
			{Mesh: back, Transform: geom.Identity()},
		},
	}
	prims, st, err := Run(scene, PipelineConfig{Screen: geom.DefaultScreen(), CullBackfaces: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(prims) != 1 || st.CulledBackfacing != 1 {
		t.Errorf("emitted %d prims, backface-culled %d; want 1/1", len(prims), st.CulledBackfacing)
	}
}

func TestPipelineFeedsTiling(t *testing.T) {
	// End-to-end sanity: the pipeline's output is bin-ready (validated by
	// tiling.Bin's own checks indirectly through prim.Validate and IDs).
	scene := &Scene{
		Camera: testCamera(),
		Objects: []Object{
			{Mesh: Cube(), Transform: geom.ScaleUniform(2)},
			{Mesh: Plane(20, -1.5), Transform: geom.Identity()},
		},
	}
	prims, _, err := Run(scene, PipelineConfig{Screen: geom.DefaultScreen(), CullBackfaces: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(prims) < 3 {
		t.Fatalf("scene produced only %d primitives", len(prims))
	}
	var buf []geom.TileID
	total := 0
	screen := geom.DefaultScreen()
	for i := range prims {
		buf = screen.OverlappedTiles(&prims[i], buf[:0])
		total += len(buf)
	}
	if total == 0 {
		t.Error("no tile overlaps from the 3D scene")
	}
}
