// Package geometry implements the Geometry Pipeline of paper Fig. 2 as a
// functional front end: vertex fetch, vertex shading (model-view-projection
// transform), primitive assembly from indexed meshes, frustum culling,
// polygon clipping against the view volume, back-face culling, perspective
// divide and the viewport transform. Its output is the stream of
// screen-space primitives (geom.Primitive) the Tiling Engine bins.
//
// The synthetic workloads of internal/workload generate screen-space
// geometry directly for calibration control; this package exists so the
// system can also consume real 3D scenes end to end (see examples/scene3d).
package geometry

import (
	"fmt"
	"math"

	"tcor/internal/geom"
)

// Camera is a pinhole camera with a perspective projection.
type Camera struct {
	Eye, Target, Up geom.Vec3
	// FovY is the vertical field of view in radians.
	FovY float32
	// Aspect is width/height.
	Aspect float32
	// Near and Far are the positive distances to the clip planes.
	Near, Far float32
}

// Validate reports whether the camera parameters are usable.
func (c Camera) Validate() error {
	if c.FovY <= 0 || c.FovY >= math.Pi {
		return fmt.Errorf("geometry: field of view %v out of (0, pi)", c.FovY)
	}
	if c.Aspect <= 0 {
		return fmt.Errorf("geometry: aspect %v must be positive", c.Aspect)
	}
	if c.Near <= 0 || c.Far <= c.Near {
		return fmt.Errorf("geometry: near/far %v/%v must satisfy 0 < near < far", c.Near, c.Far)
	}
	if c.Eye == c.Target {
		return fmt.Errorf("geometry: eye and target coincide")
	}
	return nil
}

// View returns the world-to-camera matrix (right-handed look-at).
func (c Camera) View() geom.Mat4 {
	f := c.Target.Sub(c.Eye).Normalize()
	s := f.Cross(c.Up.Normalize()).Normalize()
	u := s.Cross(f)
	return geom.Mat4{
		s.X, s.Y, s.Z, -s.Dot(c.Eye),
		u.X, u.Y, u.Z, -u.Dot(c.Eye),
		-f.X, -f.Y, -f.Z, f.Dot(c.Eye),
		0, 0, 0, 1,
	}
}

// Projection returns the perspective projection matrix mapping the view
// frustum into clip space (-w..w on every axis, OpenGL convention).
func (c Camera) Projection() geom.Mat4 {
	t := float32(math.Tan(float64(c.FovY) / 2))
	return geom.Mat4{
		1 / (c.Aspect * t), 0, 0, 0,
		0, 1 / t, 0, 0,
		0, 0, -(c.Far + c.Near) / (c.Far - c.Near), -2 * c.Far * c.Near / (c.Far - c.Near),
		0, 0, -1, 0,
	}
}

// ViewProjection returns Projection() * View().
func (c Camera) ViewProjection() geom.Mat4 {
	return c.Projection().Mul(c.View())
}
