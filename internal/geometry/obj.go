package geometry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"tcor/internal/geom"
)

// ParseOBJ reads the subset of the Wavefront OBJ format real assets use for
// plain geometry: `v x y z` vertex positions, `vt u v` texture coordinates,
// and `f` faces referencing them (v, v/vt, v/vt/vn or v//vn forms; faces
// with more than three vertices are fan-triangulated). Normals are parsed
// and ignored — the pipeline carries positions plus a color and a UV
// attribute. Indices may be negative (relative), as the spec allows.
func ParseOBJ(r io.Reader) (*Mesh, error) {
	var positions []geom.Vec3
	var uvs []geom.Vec2
	m := &Mesh{}
	// OBJ faces index positions and UVs independently; the Mesh format
	// wants unified vertices, so deduplicate (pos, uv) pairs.
	vertexOf := make(map[[2]int]uint32)

	resolve := func(idx, n int) (int, error) {
		if idx > 0 && idx <= n {
			return idx - 1, nil
		}
		if idx < 0 && -idx <= n {
			return n + idx, nil
		}
		return 0, fmt.Errorf("geometry: OBJ index %d out of range (have %d)", idx, n)
	}

	unified := func(vi, ti int) uint32 {
		key := [2]int{vi, ti}
		if id, ok := vertexOf[key]; ok {
			return id
		}
		v := Vertex{Pos: positions[vi]}
		uv := geom.Vec2{}
		if ti >= 0 {
			uv = uvs[ti]
		}
		v.Attrs = []geom.Vec4{
			{X: 0.7, Y: 0.7, Z: 0.7, W: 1}, // default material color
			{X: uv.X, Y: uv.Y},
		}
		id := uint32(len(m.Vertices))
		m.Vertices = append(m.Vertices, v)
		vertexOf[key] = id
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "v":
			if len(fields) < 4 {
				return nil, fmt.Errorf("geometry: OBJ line %d: short vertex", lineNo)
			}
			var xyz [3]float64
			for i := 0; i < 3; i++ {
				f, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("geometry: OBJ line %d: %v", lineNo, err)
				}
				xyz[i] = f
			}
			positions = append(positions, geom.Vec3{
				X: float32(xyz[0]), Y: float32(xyz[1]), Z: float32(xyz[2])})
		case "vt":
			if len(fields) < 3 {
				return nil, fmt.Errorf("geometry: OBJ line %d: short texcoord", lineNo)
			}
			u, err1 := strconv.ParseFloat(fields[1], 64)
			v, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("geometry: OBJ line %d: bad texcoord", lineNo)
			}
			uvs = append(uvs, geom.Vec2{X: float32(u), Y: float32(v)})
		case "f":
			if len(fields) < 4 {
				return nil, fmt.Errorf("geometry: OBJ line %d: face needs 3+ vertices", lineNo)
			}
			var ids []uint32
			for _, ref := range fields[1:] {
				parts := strings.Split(ref, "/")
				vi64, err := strconv.Atoi(parts[0])
				if err != nil {
					return nil, fmt.Errorf("geometry: OBJ line %d: %v", lineNo, err)
				}
				vi, err := resolve(vi64, len(positions))
				if err != nil {
					return nil, fmt.Errorf("geometry: OBJ line %d: %v", lineNo, err)
				}
				ti := -1
				if len(parts) > 1 && parts[1] != "" {
					ti64, err := strconv.Atoi(parts[1])
					if err != nil {
						return nil, fmt.Errorf("geometry: OBJ line %d: %v", lineNo, err)
					}
					if ti, err = resolve(ti64, len(uvs)); err != nil {
						return nil, fmt.Errorf("geometry: OBJ line %d: %v", lineNo, err)
					}
				}
				ids = append(ids, unified(vi, ti))
			}
			// Fan-triangulate.
			for k := 1; k+1 < len(ids); k++ {
				m.Indices = append(m.Indices, ids[0], ids[k], ids[k+1])
			}
		case "vn", "g", "o", "s", "usemtl", "mtllib":
			// Parsed-and-ignored: normals, groups, materials.
		default:
			return nil, fmt.Errorf("geometry: OBJ line %d: unsupported record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Sphere returns a UV-sphere mesh with the given subdivision (stacks x
// slices), radius 1, one color and one UV attribute per vertex.
func Sphere(stacks, slices int) *Mesh {
	if stacks < 2 {
		stacks = 2
	}
	if slices < 3 {
		slices = 3
	}
	m := &Mesh{}
	for i := 0; i <= stacks; i++ {
		phi := math.Pi * float64(i) / float64(stacks)
		for j := 0; j <= slices; j++ {
			theta := 2 * math.Pi * float64(j) / float64(slices)
			x := float32(math.Sin(phi) * math.Cos(theta))
			y := float32(math.Cos(phi))
			z := float32(math.Sin(phi) * math.Sin(theta))
			m.Vertices = append(m.Vertices, Vertex{
				Pos: geom.Vec3{X: x, Y: y, Z: z},
				Attrs: []geom.Vec4{
					{X: (x + 1) / 2, Y: (y + 1) / 2, Z: (z + 1) / 2, W: 1},
					{X: float32(j) / float32(slices), Y: float32(i) / float32(stacks)},
				},
			})
		}
	}
	cols := uint32(slices + 1)
	for i := 0; i < stacks; i++ {
		for j := 0; j < slices; j++ {
			a := uint32(i)*cols + uint32(j)
			b := a + cols
			// Two CCW triangles per quad (outward winding).
			m.Indices = append(m.Indices, a, a+1, b, a+1, b+1, b)
		}
	}
	return m
}
