package gpu

import (
	"fmt"

	"tcor/internal/cache"
	"tcor/internal/dram"
	"tcor/internal/l2"
	"tcor/internal/mem"
	"tcor/internal/raster"
	"tcor/internal/stats"
	"tcor/internal/tcor"
)

// Hierarchy-wide observability: a Result knows how to publish every level's
// counters into one stats.Registry under stable prefixes, and how to
// register the cross-level traffic-conservation identities on top of each
// level's self-consistency checks. The registry is built from the final
// Result, never threaded through the hot simulation path, so enabling stats
// cannot perturb a run: golden figure output is byte-identical either way.
//
// Prefixes (stable — the -stats JSON schema of cmd/tcorsim depends on them):
//
//	l1.list    Primitive List Cache (TCOR; zero under baseline)
//	l1.attr    Attribute Cache (TCOR; zero under baseline)
//	l1.tile    unified Tile Cache (baseline; zero under TCOR)
//	l1.vertex  Vertex Cache
//	instr      shader-program streaming fills
//	raster     Raster Pipeline
//	l2         the shared L2
//	l2.in      L2 ingress tee (per-region request counts)
//	dram       DRAM device
//	dram.in    DRAM ingress (per-region request counts)
//	sim        whole-run scalars (frames, primReads, cycles)

// PublishStats stores every level's counters into reg. Counters for the L1
// organization the run did not use are published as zeros, so the schema is
// identical across baseline and TCOR runs.
func (r *Result) PublishStats(reg *stats.Registry) {
	r.ListStats.Publish(reg, "l1.list")
	r.AttrStats.Publish(reg, "l1.attr")
	r.TileStats.Publish(reg, "l1.tile")
	reg.Counter("l1.tile.l2Reads").Store(r.TileL2Reads)
	reg.Counter("l1.tile.l2Writes").Store(r.TileL2Writes)
	r.VertexStats.Publish(reg, "l1.vertex")
	reg.Counter("l1.vertex.l2Reads").Store(r.VertexL2Reads)
	reg.Counter("instr.l2Reads").Store(r.InstrL2Reads)
	r.RasterStats.Publish(reg, "raster")
	r.L2Stats.Publish(reg, "l2")
	if r.L2In != nil {
		r.L2In.Publish(reg, "l2.in")
	}
	r.DRAM.Publish(reg, "dram")
	if r.DRAMIn != nil {
		r.DRAMIn.Publish(reg, "dram.in")
	}
	reg.Counter("sim.frames").Store(int64(r.Frames))
	reg.Counter("sim.primReads").Store(r.PrimReads)
	reg.Counter("sim.tfCycles").Store(r.TFCycles)
	reg.Counter("sim.frameCycles").Store(r.FrameCycles)
}

// RegisterInvariants registers every per-level self-consistency check plus
// the cross-level traffic-conservation identities (requests cannot appear
// or vanish between hierarchy levels). The identities are written against
// the published counter names, so they hold for both L1 organizations: the
// unused organization's counters are all zero and drop out of the sums.
func (r *Result) RegisterInvariants(reg *stats.Registry) {
	tcor.RegisterListStatsInvariants(reg, "l1.list")
	tcor.RegisterAttrStatsInvariants(reg, "l1.attr")
	cache.RegisterStatsInvariants(reg, "l1.tile")
	cache.RegisterStatsInvariants(reg, "l1.vertex")
	raster.RegisterStatsInvariants(reg, "raster")
	l2.RegisterStatsInvariants(reg, "l2", r.L2Enhanced)
	if r.L2In != nil {
		mem.RegisterStatsInvariants(reg, "l2.in")
	}
	dram.RegisterStatsInvariants(reg, "dram")
	if r.DRAMIn != nil {
		mem.RegisterStatsInvariants(reg, "dram.in")
	}

	// L2 ingress reads == the sum of every L1's fill/fetch requests.
	reg.RegisterInvariant("gpu.l2IngressReadsConserved", func(s stats.Snapshot) error {
		want := s.Get("l1.list.l2Reads") + s.Get("l1.attr.l2AttrReads") +
			s.Get("l1.tile.l2Reads") + s.Get("l1.vertex.l2Reads") +
			s.Get("raster.texMisses") + s.Get("instr.l2Reads")
		if got := s.Get("l2.in.reads"); got != want {
			return fmt.Errorf("L2 ingress reads %d != sum of L1 fill requests %d", got, want)
		}
		return nil
	})
	// L2 ingress writes == the sum of every L1's write-backs/bypasses.
	reg.RegisterInvariant("gpu.l2IngressWritesConserved", func(s stats.Snapshot) error {
		want := s.Get("l1.list.l2Writes") + s.Get("l1.attr.l2AttrWrites") +
			s.Get("l1.tile.l2Writes")
		if got := s.Get("l2.in.writes"); got != want {
			return fmt.Errorf("L2 ingress writes %d != sum of L1 write-backs %d", got, want)
		}
		return nil
	})
	// The L2 services exactly the ingress stream.
	reg.RegisterInvariant("gpu.l2SeesIngress", func(s stats.Snapshot) error {
		if s.Get("l2.reads") != s.Get("l2.in.reads") || s.Get("l2.writes") != s.Get("l2.in.writes") {
			return fmt.Errorf("L2 accesses (%d/%d) != ingress (%d/%d)",
				s.Get("l2.reads"), s.Get("l2.writes"), s.Get("l2.in.reads"), s.Get("l2.in.writes"))
		}
		return nil
	})
	// DRAM reads are exactly the L2's fills.
	reg.RegisterInvariant("gpu.dramReadsConserved", func(s stats.Snapshot) error {
		if dr, mr := s.Get("dram.reads"), s.Get("l2.memReads"); dr != mr {
			return fmt.Errorf("DRAM reads %d != L2 memory fills %d", dr, mr)
		}
		return nil
	})
	// DRAM writes are L2 write-backs plus the Color Buffer flush, which
	// bypasses the L2 (§II-A: the flush streams whole tiles).
	reg.RegisterInvariant("gpu.dramWritesConserved", func(s stats.Snapshot) error {
		want := s.Get("l2.writebacks") + s.Get("raster.fbBlocksFlushed")
		if got := s.Get("dram.writes"); got != want {
			return fmt.Errorf("DRAM writes %d != L2 writebacks + FB flush %d", got, want)
		}
		return nil
	})
}

// StatsRegistry builds a fresh registry holding this run's counters and
// invariants — the unit behind `tcorsim -stats` and `-check`.
func (r *Result) StatsRegistry() *stats.Registry {
	reg := stats.NewRegistry()
	r.PublishStats(reg)
	r.RegisterInvariants(reg)
	return reg
}

// CheckInvariants verifies every per-level and cross-level identity against
// this run's counters, returning all violations joined (nil when clean).
func (r *Result) CheckInvariants() error {
	return r.StatsRegistry().Check()
}
