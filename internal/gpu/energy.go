package gpu

import (
	"tcor/internal/energy"
	"tcor/internal/tcor"
)

// computeEnergy aggregates the run's access counts into the energy tallies
// the paper reports: the memory-hierarchy energy of Figs. 20/21 (all caches
// plus DRAM) and the total GPU energy of Fig. 22 (hierarchy plus the shader
// and fixed-function datapaths, which are identical across configurations).
func (s *sim) computeEnergy(r *Result) {
	m := energy.DefaultModel()
	t := energy.NewTally()
	cfg := s.cfg

	// Vertex cache.
	vs := r.VertexStats
	t.Add("vertex-cache", vs.Accesses, m.SRAMRead(cfg.VertexCacheBytes, cfg.VertexCacheWays))

	// Tiling Engine L1s.
	switch cfg.Kind {
	case KindBaseline:
		per := m.SRAMRead(cfg.TileCacheBytes, cfg.TileCacheWays)
		t.Add("tile-cache", s.tileStats.reads, per)
		t.Add("tile-cache", s.tileStats.writes, per*m.WriteFactor)
	case KindTCOR:
		lcfg := tcor.DefaultListCacheConfig()
		ls := r.ListStats
		perL := m.SRAMRead(lcfg.SizeBytes, lcfg.Ways)
		t.Add("prim-list-cache", ls.Reads, perL)
		t.Add("prim-list-cache", ls.Writes, perL*m.WriteFactor)

		acfg := s.attrs.Config()
		as := r.AttrStats
		// Primitive Buffer lines are ~8 bytes (tag + control + OPT Number
		// + ABP, Fig. 8).
		probePJ := m.SRAMRead(acfg.PrimEntries*8, acfg.Ways)
		t.Add("attr-prim-buffer", as.ProbeAccesses, probePJ)
		// Attribute Buffer entries are 64-byte slots, direct addressed via
		// the ABP chain.
		bufPJ := m.SRAMRead(acfg.AttrEntries*64, 1)
		t.Add("attr-buffer", as.BufReads, bufPJ)
		t.Add("attr-buffer", as.BufWrites, bufPJ*m.WriteFactor)
	}

	// Texture caches (per-cache sizing).
	tex := s.rasterPipe.TexCacheStats()
	t.Add("texture-caches", tex.Accesses, m.SRAMRead(64*1024, 4))

	// Instruction caches: fetches happen once per 4 instructions (64-bit
	// fetch groups of 16-byte instructions are amortized by the fetch
	// width), hitting essentially always; modeled arithmetically.
	instrFetches := (r.RasterStats.InstrExecuted + 3) / 4
	vertexInstr := int64(len(s.scene.Frame(0).Prims)) * 3 * int64(cfg.Timing.VertexInstr) * int64(r.Frames)
	t.Add("instr-caches", instrFetches+(vertexInstr+3)/4, m.SRAMRead(16*1024, 2))

	// On-chip Color and Z buffers (tile-sized SRAMs, Fig. 2): every shaded
	// quad writes color and tests depth; blended quads also read the color
	// buffer back.
	tileBuf := cfg.Screen.TileSize * cfg.Screen.TileSize * 4
	perBuf := m.SRAMRead(tileBuf, 1)
	rs := r.RasterStats
	t.Add("color-buffer", rs.QuadsShaded+rs.BlendedQuads, perBuf*m.WriteFactor)
	t.Add("color-buffer", rs.BlendedQuads, perBuf) // blend read-back
	t.Add("z-buffer", rs.Quads, perBuf)            // depth test reads
	t.Add("z-buffer", rs.QuadsShaded, perBuf*m.WriteFactor)

	// L2.
	perL2 := m.SRAMRead(cfg.L2.SizeBytes, cfg.L2.Ways)
	t.Add("l2", r.L2Stats.Reads, perL2)
	t.Add("l2", r.L2Stats.Writes, perL2*m.WriteFactor)

	// DRAM.
	t.Add("dram", r.DRAM.Reads, m.DRAMRead)
	t.Add("dram", r.DRAM.Writes, m.DRAMWrite)

	// Static energy: every SRAM leaks for the whole frame when enabled.
	if cfg.IncludeLeakage {
		cycles := r.FrameCycles + r.GeomCycles + r.PLBCycles // finish() adds these later; here FrameCycles holds the tile phase
		sramBytes := cfg.VertexCacheBytes + cfg.TileCacheBytes +
			4*64*1024 /* texture caches */ + 16*1024 /* icaches */ +
			cfg.L2.SizeBytes
		t.Add("leakage", 0, 0)
		t.AddEnergy("leakage", m.Leakage(sramBytes, cycles))
	}

	r.MemHierarchyPJ = t.Total()

	// Datapaths (identical across configurations): shader ALUs and
	// fixed-function rasterization/Z/blending.
	t.Add("frag-datapath", r.RasterStats.InstrExecuted, m.OpEnergy)
	t.Add("vertex-datapath", vertexInstr, m.OpEnergy)
	t.Add("fixed-function", r.RasterStats.Fragments, m.FixedFunction)

	r.Tally = t
	r.TotalPJ = t.Total()
}
