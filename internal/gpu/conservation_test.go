package gpu

import (
	"testing"

	"tcor/internal/memmap"
)

// Traffic-conservation invariants: requests cannot appear or vanish between
// levels of the hierarchy. These cross-validate the independent counters
// kept by the L1 caches, the L2 ingress tee, the L2 itself and the DRAM
// model — an accounting bug anywhere breaks one of the identities.

// instrFillBlocks mirrors sim.instrFills' per-frame block counts for the
// CCS benchmark these tests use (fragment shader of 4 instructions).
func instrFillBlocks(res *Result, cfg Config) int64 {
	const fragInstr = 4 // CCS, Table II
	fragBlocks := (fragInstr*16 + memmap.BlockBytes - 1) / memmap.BlockBytes
	vblocks := int64(cfg.Timing.VertexInstr)*16/memmap.BlockBytes + 1
	return (int64(fragBlocks) + vblocks) * int64(res.Frames)
}

func TestTrafficConservationTCOR(t *testing.T) {
	sc := smallScene(t, "CCS", 2)
	cfg := TCOR(64 * 1024)
	res, err := Simulate(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// L2 ingress reads must equal the sum of every L1's fill/fetch
	// requests.
	wantReads := res.ListStats.L2Reads +
		res.AttrStats.L2AttrReads +
		res.VertexL2Reads +
		res.RasterStats.TexMisses +
		instrFillBlocks(res, cfg)
	if res.L2In.Reads != wantReads {
		t.Errorf("L2 ingress reads %d != sum of L1 requests %d", res.L2In.Reads, wantReads)
	}

	// L2 ingress writes: list write-backs + attribute write-backs/bypasses.
	wantWrites := res.ListStats.L2Writes + res.AttrStats.L2AttrWrites
	if res.L2In.Writes != wantWrites {
		t.Errorf("L2 ingress writes %d != sum of L1 write-backs %d", res.L2In.Writes, wantWrites)
	}

	// The L2 sees exactly the ingress stream.
	if res.L2Stats.Reads != res.L2In.Reads || res.L2Stats.Writes != res.L2In.Writes {
		t.Errorf("L2 stats (%d/%d) != ingress (%d/%d)",
			res.L2Stats.Reads, res.L2Stats.Writes, res.L2In.Reads, res.L2In.Writes)
	}

	// DRAM reads are exactly the L2's fills; DRAM writes are L2 write-backs
	// plus the Color Buffer flush (which bypasses the L2).
	if res.DRAM.Reads != res.L2Stats.MemReads {
		t.Errorf("DRAM reads %d != L2 fills %d", res.DRAM.Reads, res.L2Stats.MemReads)
	}
	wantDRAMWrites := res.L2Stats.Writebacks + res.RasterStats.FBBlocksFlushed
	if res.DRAM.Writes != wantDRAMWrites {
		t.Errorf("DRAM writes %d != L2 writebacks %d + FB flush %d",
			res.DRAM.Writes, res.L2Stats.Writebacks, res.RasterStats.FBBlocksFlushed)
	}

	// Hits + misses account for every access at both cache levels.
	if res.L2Stats.Hits+res.L2Stats.Misses != res.L2Stats.Reads+res.L2Stats.Writes {
		t.Error("L2 hits+misses != accesses")
	}
	as := res.AttrStats
	if as.ReadHits+as.ReadMisses != as.Reads {
		t.Error("attribute cache read accounting broken")
	}
	if as.WriteInserts+as.WriteBypasses > as.Writes {
		t.Error("attribute cache write accounting broken")
	}
}

func TestTrafficConservationBaseline(t *testing.T) {
	sc := smallScene(t, "CCS", 2)
	cfg := Baseline(64 * 1024)
	res, err := Simulate(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}

	wantReads := res.TileL2Reads +
		res.VertexL2Reads +
		res.RasterStats.TexMisses +
		instrFillBlocks(res, cfg)
	if res.L2In.Reads != wantReads {
		t.Errorf("L2 ingress reads %d != sum of L1 requests %d", res.L2In.Reads, wantReads)
	}
	if res.L2In.Writes != res.TileL2Writes {
		t.Errorf("L2 ingress writes %d != tile cache write-backs %d",
			res.L2In.Writes, res.TileL2Writes)
	}
	if res.DRAM.Reads != res.L2Stats.MemReads {
		t.Errorf("DRAM reads %d != L2 fills %d", res.DRAM.Reads, res.L2Stats.MemReads)
	}
	if res.DRAM.Writes != res.L2Stats.Writebacks+res.RasterStats.FBBlocksFlushed {
		t.Error("DRAM write conservation broken")
	}
	// The baseline L2 must never drop write-backs (no dead-line logic).
	if res.L2Stats.DroppedWritebacks != 0 || res.L2Stats.DeadEvictions != 0 {
		t.Error("baseline L2 used dead-line machinery")
	}
}

func TestRegionSeparation(t *testing.T) {
	// Frame buffer traffic must bypass the L2; Parameter Buffer traffic
	// must never appear at the frame-buffer counter; texture traffic is
	// read-only everywhere.
	sc := smallScene(t, "SWa", 1)
	for _, cfg := range []Config{Baseline(64 * 1024), TCOR(64 * 1024)} {
		res, err := Simulate(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.L2In.Region(memmap.RegionFrameBuffer); got.Reads+got.Writes != 0 {
			t.Errorf("%v: frame-buffer traffic through the L2: %+v", cfg.Kind, got)
		}
		if got := res.DRAMIn.Region(memmap.RegionFrameBuffer); got.Writes == 0 || got.Reads != 0 {
			t.Errorf("%v: frame-buffer DRAM traffic wrong: %+v", cfg.Kind, got)
		}
		if got := res.L2In.Region(memmap.RegionTextures); got.Writes != 0 {
			t.Errorf("%v: texture writes are impossible: %+v", cfg.Kind, got)
		}
		if got := res.DRAMIn.Region(memmap.RegionInputGeometry); got.Writes != 0 {
			t.Errorf("%v: input geometry is read-only: %+v", cfg.Kind, got)
		}
	}
}

func TestOutputQueueDepthAffectsOnlyLocks(t *testing.T) {
	// A deeper output queue holds locks longer; traffic may shift slightly
	// (locked lines cannot be victims) but conservation and determinism
	// must hold at any depth.
	sc := smallScene(t, "GTr", 1)
	for _, depth := range []int{1, 8, 128} {
		cfg := TCOR(64 * 1024)
		cfg.OutputQueueDepth = depth
		res, err := Simulate(sc, cfg)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if res.AttrStats.Reads == 0 {
			t.Fatalf("depth %d: no reads", depth)
		}
		wantWrites := res.ListStats.L2Writes + res.AttrStats.L2AttrWrites
		if res.L2In.Writes != wantWrites {
			t.Errorf("depth %d: write conservation broken", depth)
		}
	}
}
