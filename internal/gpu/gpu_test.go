package gpu

import (
	"testing"

	"tcor/internal/geom"
	"tcor/internal/memmap"
	"tcor/internal/workload"
)

// smallScene generates a reduced benchmark for fast tests.
func smallScene(t *testing.T, alias string, frames int) *workload.Scene {
	t.Helper()
	spec, err := workload.ByAlias(alias)
	if err != nil {
		t.Fatal(err)
	}
	spec.Frames = frames
	sc, err := workload.Generate(spec, geom.DefaultScreen())
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestConfigConstructors(t *testing.T) {
	b := Baseline(64 * 1024)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Kind != KindBaseline || b.L2Enhanced || b.InterleavedLists {
		t.Errorf("baseline config wrong: %+v", b)
	}
	c := TCOR(64 * 1024)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Kind != KindTCOR || !c.L2Enhanced || !c.InterleavedLists || !c.WriteBypass {
		t.Errorf("tcor config wrong: %+v", c)
	}
	n := TCORNoL2(64 * 1024)
	if n.L2Enhanced || !n.InterleavedLists {
		t.Errorf("tcor-no-l2 config wrong: %+v", n)
	}
	if KindBaseline.String() != "baseline" || KindTCOR.String() != "TCOR" {
		t.Error("kind names")
	}
	bad := Baseline(0)
	if err := bad.Validate(); err == nil {
		t.Error("zero tile cache must fail validation")
	}
}

func TestSimulateBaselineRuns(t *testing.T) {
	sc := smallScene(t, "CCS", 1)
	res, err := Simulate(sc, Baseline(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 1 {
		t.Errorf("frames = %d", res.Frames)
	}
	if res.PrimReads == 0 || res.TFCycles == 0 {
		t.Error("no tile fetcher activity")
	}
	if res.L2In.PB().Reads == 0 {
		t.Error("no PB reads reached the L2")
	}
	if res.RasterStats.Fragments == 0 {
		t.Error("no fragments shaded")
	}
	if res.DRAMIn.Region(memmap.RegionFrameBuffer).Writes == 0 {
		t.Error("no frame buffer flush traffic")
	}
	if res.MemHierarchyPJ <= 0 || res.TotalPJ <= res.MemHierarchyPJ {
		t.Errorf("energy accounting: hierarchy=%v total=%v", res.MemHierarchyPJ, res.TotalPJ)
	}
	if ppc := res.PPC(); ppc <= 0 || ppc > 1 {
		t.Errorf("baseline PPC = %v, want (0, 1]", ppc)
	}
	if res.FPS(600e6) <= 0 {
		t.Error("FPS must be positive")
	}
}

func TestSimulateTCORRuns(t *testing.T) {
	sc := smallScene(t, "CCS", 1)
	res, err := Simulate(sc, TCOR(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	if res.AttrStats.Reads == 0 || res.AttrStats.Writes == 0 {
		t.Error("attribute cache unused")
	}
	if res.ListStats.Reads == 0 {
		t.Error("list cache unused")
	}
	if res.AttrStats.ReadHits == 0 {
		t.Error("OPT attribute cache should hit sometimes")
	}
}

// The headline qualitative claims of the paper, on one benchmark:
// TCOR cuts PB traffic to the L2, nearly eliminates PB traffic to main
// memory, consumes less memory-hierarchy energy, and speeds up the Tile
// Fetcher severalfold.
func TestTCORBeatsBaselineOnPaperMetrics(t *testing.T) {
	sc := smallScene(t, "SoD", 2) // high-reuse benchmark, strong TCOR case
	base, err := Simulate(sc, Baseline(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	tc, err := Simulate(sc, TCOR(64*1024))
	if err != nil {
		t.Fatal(err)
	}

	bPB := base.L2In.PB()
	tPB := tc.L2In.PB()
	if tPB.Reads+tPB.Writes >= bPB.Reads+bPB.Writes {
		t.Errorf("PB accesses to L2: TCOR %d >= baseline %d",
			tPB.Reads+tPB.Writes, bPB.Reads+bPB.Writes)
	}

	bMem := base.DRAMIn.PB()
	tMem := tc.DRAMIn.PB()
	if tMem.Reads+tMem.Writes > (bMem.Reads+bMem.Writes)/2 {
		t.Errorf("PB accesses to memory: TCOR %d, baseline %d — expected a large reduction",
			tMem.Reads+tMem.Writes, bMem.Reads+bMem.Writes)
	}

	if tc.MemHierarchyPJ >= base.MemHierarchyPJ {
		t.Errorf("memory hierarchy energy: TCOR %.0f >= baseline %.0f",
			tc.MemHierarchyPJ, base.MemHierarchyPJ)
	}
	if tc.TotalPJ >= base.TotalPJ {
		t.Errorf("total energy: TCOR %.0f >= baseline %.0f", tc.TotalPJ, base.TotalPJ)
	}

	speedup := tc.PPC() / base.PPC()
	if speedup < 1.5 {
		t.Errorf("tile fetcher speedup = %.2fx, want clearly above 1", speedup)
	}
	if tc.FPS(600e6) <= base.FPS(600e6) {
		t.Errorf("FPS: TCOR %.2f <= baseline %.2f", tc.FPS(600e6), base.FPS(600e6))
	}
}

func TestDeterminism(t *testing.T) {
	sc := smallScene(t, "GTr", 1)
	a, err := Simulate(sc, TCOR(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(sc, TCOR(64*1024))
	if a.PrimReads != b.PrimReads || a.TFCycles != b.TFCycles ||
		a.MemHierarchyPJ != b.MemHierarchyPJ ||
		a.DRAM.Reads != b.DRAM.Reads {
		t.Error("simulation is not deterministic")
	}
}

func TestL2EnhancementReducesPBMemoryTraffic(t *testing.T) {
	sc := smallScene(t, "CRa", 1) // larger PB: L2 pressure matters
	noL2, err := Simulate(sc, TCORNoL2(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Simulate(sc, TCOR(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	nPB := noL2.DRAMIn.PB()
	fPB := full.DRAMIn.PB()
	if fPB.Reads+fPB.Writes > nPB.Reads+nPB.Writes {
		t.Errorf("L2 enhancements increased PB memory traffic: %d vs %d",
			fPB.Reads+fPB.Writes, nPB.Reads+nPB.Writes)
	}
	if full.MemHierarchyPJ > noL2.MemHierarchyPJ {
		t.Errorf("L2 enhancements increased energy: %.0f vs %.0f",
			full.MemHierarchyPJ, noL2.MemHierarchyPJ)
	}
}

func TestLeakageAccounting(t *testing.T) {
	sc := smallScene(t, "GTr", 1)
	off, err := Simulate(sc, TCOR(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	cfg := TCOR(64 * 1024)
	cfg.IncludeLeakage = true
	on, err := Simulate(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.MemHierarchyPJ <= off.MemHierarchyPJ {
		t.Error("leakage must add energy")
	}
	if on.Tally.Get("leakage").PJ <= 0 {
		t.Error("leakage component missing")
	}
	// Leakage is a minor correction, not a rebalancing of the model.
	if on.Tally.Get("leakage").PJ > 0.25*on.MemHierarchyPJ {
		t.Errorf("leakage %.0f pJ dominates the hierarchy energy %.0f",
			on.Tally.Get("leakage").PJ, on.MemHierarchyPJ)
	}
}

func TestPerFrameStats(t *testing.T) {
	sc := smallScene(t, "CCS", 3)
	res, err := Simulate(sc, TCOR(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFrame) != 3 {
		t.Fatalf("per-frame entries = %d, want 3", len(res.PerFrame))
	}
	var prims, tf, tile, dr, dw int64
	for i, fs := range res.PerFrame {
		if fs.Frame != i {
			t.Errorf("frame index %d at slot %d", fs.Frame, i)
		}
		if fs.PrimReads == 0 || fs.TFCycles == 0 || fs.TileCycles < fs.TFCycles {
			t.Errorf("frame %d degenerate: %+v", i, fs)
		}
		prims += fs.PrimReads
		tf += fs.TFCycles
		tile += fs.TileCycles
		dr += fs.DRAMReads
		dw += fs.DRAMWrites
	}
	// Per-frame slices must sum to the run totals.
	if prims != res.PrimReads {
		t.Errorf("per-frame prim reads %d != total %d", prims, res.PrimReads)
	}
	if tf != res.TFCycles {
		t.Errorf("per-frame TF cycles %d != total %d", tf, res.TFCycles)
	}
	if dr != res.DRAM.Reads || dw != res.DRAM.Writes {
		t.Errorf("per-frame DRAM %d/%d != totals %d/%d", dr, dw, res.DRAM.Reads, res.DRAM.Writes)
	}
	if tile != res.FrameCycles-res.GeomCycles-res.PLBCycles && tile > res.FrameCycles {
		t.Errorf("tile cycles %d inconsistent with frame cycles %d", tile, res.FrameCycles)
	}
}
