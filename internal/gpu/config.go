// Package gpu ties the substrates into the full TBR GPU model of paper
// Fig. 2 and runs whole frames of a workload through it: Geometry Pipeline
// (vertex fetch through the Vertex Cache, vertex shading), Tiling Engine
// (Polygon List Builder and Tile Fetcher through the Tile Cache), Raster
// Pipeline (rasterization, Early-Z, fragment shading with texture caches,
// blending, frame-buffer flush), the shared L2, and DRAM. It reports the
// metrics the paper evaluates: Parameter Buffer traffic at each level,
// total main-memory accesses, memory-hierarchy and total GPU energy, Tile
// Fetcher throughput and frames per second.
package gpu

import (
	"fmt"

	"tcor/internal/dram"
	"tcor/internal/geom"
	"tcor/internal/l2"
	"tcor/internal/stats"
	"tcor/internal/tiling"
)

// TileCacheKind selects the Tiling Engine's L1 organization.
type TileCacheKind int

const (
	// KindBaseline is the single 4-way LRU block-granularity Tile Cache of
	// §II-C with the contiguous PB-Lists layout of Fig. 3.
	KindBaseline TileCacheKind = iota
	// KindTCOR is the split Primitive List Cache + Attribute Cache of
	// §III-C with the interleaved layout of Fig. 6.
	KindTCOR
)

// String names the kind.
func (k TileCacheKind) String() string {
	if k == KindTCOR {
		return "TCOR"
	}
	return "baseline"
}

// Timing groups the latency parameters of Table I plus the microarchitental
// knobs of the throughput model.
type Timing struct {
	ClockHz  float64
	L1Cycles int // L1 hit latency
	L2Cycles int // L2 hit latency
	// MSHROverlap divides miss penalties to model overlapping in-flight
	// misses in the Tile Fetcher.
	MSHROverlap int
	// VertexInstr and geometry throughput: shader instructions per vertex.
	VertexInstr int
}

// DefaultTiming returns the Table I timing (600 MHz, 1-cycle L1s, 12-cycle
// L2, DRAM timing lives in the DRAM config).
func DefaultTiming() Timing {
	return Timing{
		ClockHz:     600e6,
		L1Cycles:    1,
		L2Cycles:    12,
		MSHROverlap: 2,
		VertexInstr: 8,
	}
}

// Config is a full-system configuration.
type Config struct {
	Screen geom.Screen
	Order  tiling.Order

	Kind TileCacheKind
	// TileCacheBytes is the total Tiling Engine L1 budget (64 KiB baseline
	// experiment, 128 KiB for the larger one). TCOR splits it 16 KiB lists
	// + remainder attributes, matching §V-B.
	TileCacheBytes int
	TileCacheWays  int

	// InterleavedLists selects the PB-Lists layout of Fig. 6 (TCOR default
	// on, baseline off; exposed separately for the ablation).
	InterleavedLists bool
	// XORIndex / WriteBypass configure the Attribute Cache (TCOR ablations).
	XORIndex    bool
	WriteBypass bool
	// L2Enhanced turns on the dead-line L2 replacement (§III-D); "TCOR
	// without L2 enhancements" in Figs. 20/21 runs with this off.
	L2Enhanced bool
	// L2TraceDepth, when positive, attaches a bounded eviction trace to the
	// L2: the last N evictions with their replacement class, set, tile and
	// write-back disposition land in Result.L2Trace. Zero disables tracing
	// (no overhead on the hot path beyond one nil check).
	L2TraceDepth int
	// Tracer, when non-nil, records frame/phase/tile spans of the run into a
	// bounded in-memory trace (export with stats.Tracer.WriteChromeTrace —
	// `tcorsim -trace out.json` on the CLI). Nil disables tracing at the cost
	// of one branch per phase; it never affects simulation results. Excluded
	// from JSON so the serving layer's content-addressed result cache ignores
	// it.
	Tracer *stats.Tracer `json:"-"`
	// TraceParent, when non-nil, parents the run's frame spans under an
	// existing span instead of minting a fresh root trace per frame — the
	// serving layer threads its per-request "simulate" span through here so
	// the simulator's phase spans join the request's distributed trace.
	// Excluded from JSON like Tracer.
	TraceParent *stats.Span `json:"-"`
	// TraceTiles additionally records one span per tile under each frame's
	// "tiles" span. At the Table I screen that is ~1500 spans per frame —
	// the right resolution for single-run analysis (`tcorsim -trace`), far
	// too noisy for a serving process's bounded trace buffer, where one
	// sweep would flood the buffer and evict the request spans a
	// distributed trace is stitched from. Opt-in for that reason.
	TraceTiles bool `json:"-"`
	// IncludeLeakage adds per-structure static energy (leakage x frame
	// cycles) to the tallies. Off by default: the paper-matching
	// calibration is dynamic-energy based, and leakage rewards the faster
	// configuration, so it is a sensitivity knob rather than part of the
	// headline numbers.
	IncludeLeakage bool

	// OutputQueueDepth is the Tile Fetcher output queue capacity in
	// primitives: the window during which Attribute Cache lines stay
	// locked before the Rasterizer consumes them.
	OutputQueueDepth int

	// TileParallel bounds the worker goroutines that pre-compute per-tile
	// raster plans within one frame (docs/MODEL.md §12). 0 or 1 runs the
	// frame serially; higher values speed the simulator up without
	// changing a single output byte — plans are pure and their access
	// streams are committed to the shared hierarchy in traversal order.
	// Excluded from JSON (like Tracer) so content-addressed result caches
	// and checkpoint fingerprints treat all parallelism levels as the same
	// simulation, which they are.
	TileParallel int `json:"-"`

	VertexCacheBytes int
	VertexCacheWays  int

	L2     l2.Config
	DRAM   dram.Config
	Timing Timing
}

// Baseline returns the paper's baseline GPU with the given Tile Cache size.
func Baseline(tileCacheBytes int) Config {
	return Config{
		Screen:           geom.DefaultScreen(),
		Order:            tiling.OrderZ,
		Kind:             KindBaseline,
		TileCacheBytes:   tileCacheBytes,
		TileCacheWays:    4,
		InterleavedLists: false,
		L2Enhanced:       false,
		OutputQueueDepth: 32,
		TileParallel:     1,
		VertexCacheBytes: 64 * 1024,
		VertexCacheWays:  4,
		L2:               l2.DefaultConfig(false),
		DRAM:             dram.DefaultConfig(),
		Timing:           DefaultTiming(),
	}
}

// TCOR returns the full TCOR configuration with the given total Tile Cache
// size.
func TCOR(tileCacheBytes int) Config {
	c := Baseline(tileCacheBytes)
	c.Kind = KindTCOR
	c.InterleavedLists = true
	c.XORIndex = true
	c.WriteBypass = true
	c.L2Enhanced = true
	c.L2 = l2.DefaultConfig(true)
	return c
}

// TCORNoL2 returns TCOR without the L2 enhancements (the middle bars of
// Figs. 20/21).
func TCORNoL2(tileCacheBytes int) Config {
	c := TCOR(tileCacheBytes)
	c.L2Enhanced = false
	c.L2 = l2.DefaultConfig(false)
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Screen.Validate(); err != nil {
		return err
	}
	if c.TileCacheBytes <= 0 {
		return fmt.Errorf("gpu: tile cache size must be positive")
	}
	if c.OutputQueueDepth <= 0 {
		return fmt.Errorf("gpu: output queue depth must be positive")
	}
	if c.Timing.MSHROverlap <= 0 {
		return fmt.Errorf("gpu: MSHR overlap must be positive")
	}
	if c.TileParallel < 0 {
		return fmt.Errorf("gpu: tile parallelism must be non-negative, got %d", c.TileParallel)
	}
	return nil
}
