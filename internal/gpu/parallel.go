package gpu

import (
	"sync"
	"sync/atomic"

	"tcor/internal/geom"
	"tcor/internal/raster"
	"tcor/internal/tiling"
)

// The parallel frame core (docs/MODEL.md §12).
//
// Within one frame, per-tile raster work splits into a pure planning half
// (coverage, Early-Z, texture/frame-buffer address generation — a function
// of the binning and the configuration only) and a stateful commit half
// (replaying the planned access stream through the shared texture caches,
// L2 and DRAM). Planning carries essentially all of the arithmetic, so the
// planEngine fans it out over a bounded worker pool while the single
// committer — the frameHandler driven by tiling.Replay — consumes plans in
// strict traversal order. Because workers never touch shared hierarchy
// state and the committer replays streams in exactly the serial order, the
// simulation output is byte-for-byte identical at every TileParallel level;
// only wall-clock time changes.

// planChunk is a contiguous run of traversal positions planned as a unit,
// so the ready-signal and claim costs amortize over many tiles.
type planChunk struct {
	lo, hi int // traversal positions [lo, hi)
	ready  chan struct{}
}

// planEngine runs per-tile raster planning for one frame on a worker pool.
type planEngine struct {
	sim     *sim
	binning *tiling.Binning
	prims   []geom.Primitive
	frame   int

	chunks    []planChunk
	chunkSize int
	next      atomic.Int64 // claim cursor over chunks

	// sem bounds the claimed-but-uncommitted chunks, which bounds the
	// plan memory the engine can run ahead of the committer.
	sem   chan struct{}
	plans []*raster.TilePlan // per traversal position, filled by workers
	wg    sync.WaitGroup
}

// startPlanEngine launches workers planning every tile of the frame. The
// caller must consume every traversal position via planFor/donePlan in
// ascending order, then call wait.
func (s *sim) startPlanEngine(binning *tiling.Binning, prims []geom.Primitive, frame, workers int) *planEngine {
	n := binning.Traversal.NumTiles()
	if workers > n {
		workers = n
	}
	e := &planEngine{
		sim:     s,
		binning: binning,
		prims:   prims,
		frame:   frame,
		sem:     make(chan struct{}, 2*workers),
	}
	// Aim for several chunks per worker so the tail stays balanced, while
	// keeping per-chunk overhead negligible for the committer.
	e.chunkSize = n / (workers * 8)
	if e.chunkSize < 1 {
		e.chunkSize = 1
	}
	if s.plans == nil || len(s.plans) < n {
		s.plans = make([]*raster.TilePlan, n)
	}
	e.plans = s.plans[:n]
	for lo := 0; lo < n; lo += e.chunkSize {
		hi := lo + e.chunkSize
		if hi > n {
			hi = n
		}
		e.chunks = append(e.chunks, planChunk{lo: lo, hi: hi, ready: make(chan struct{})})
	}
	e.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go e.worker()
	}
	return e
}

// worker claims chunks in ascending order and plans their tiles into
// pooled buffers. The semaphore is acquired before claiming, so the lowest
// unplanned chunk always belongs to a worker holding a slot — the committer
// can never be starved by run-ahead.
func (e *planEngine) worker() {
	defer e.wg.Done()
	s := e.sim
	scratch := s.scratchPool.Get().(*raster.PlanScratch)
	defer s.scratchPool.Put(scratch)
	var work []raster.TileWork
	for {
		e.sem <- struct{}{}
		ci := int(e.next.Add(1) - 1)
		if ci >= len(e.chunks) {
			<-e.sem
			return
		}
		c := e.chunks[ci]
		for pos := c.lo; pos < c.hi; pos++ {
			tile := e.binning.Traversal.Seq[pos]
			work = work[:0]
			for _, entry := range e.binning.Lists[tile] {
				work = append(work, raster.TileWork{Prim: &e.prims[entry.Prim]})
			}
			plan := s.planPool.Get().(*raster.TilePlan)
			s.rasterPipe.PlanTile(tile, e.frame, work, scratch, plan)
			e.plans[pos] = plan
		}
		close(c.ready)
	}
}

// planFor returns the plan for a traversal position, blocking until its
// chunk is planned. Positions must be consumed in ascending order.
func (e *planEngine) planFor(pos int) *raster.TilePlan {
	<-e.chunks[pos/e.chunkSize].ready
	return e.plans[pos]
}

// donePlan recycles a committed plan and, at a chunk boundary, releases the
// worker pool to run one chunk further ahead.
func (e *planEngine) donePlan(pos int, plan *raster.TilePlan) {
	e.plans[pos] = nil
	e.sim.planPool.Put(plan)
	if c := e.chunks[pos/e.chunkSize]; pos == c.hi-1 {
		<-e.sem
	}
}

// wait blocks until every worker has exited; the committer must have
// consumed all positions first.
func (e *planEngine) wait() { e.wg.Wait() }
