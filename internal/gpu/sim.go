package gpu

import (
	"fmt"
	"strconv"
	"sync"

	"tcor/internal/cache"
	"tcor/internal/dram"
	"tcor/internal/energy"
	"tcor/internal/geom"
	"tcor/internal/l2"
	"tcor/internal/mem"
	"tcor/internal/memmap"
	"tcor/internal/pbuffer"
	"tcor/internal/raster"
	"tcor/internal/stats"
	"tcor/internal/tcor"
	"tcor/internal/tiling"
	"tcor/internal/trace"
	"tcor/internal/workload"
)

// Result carries everything the paper's figures report for one run.
type Result struct {
	Benchmark string
	Kind      TileCacheKind
	Frames    int

	// L2In counts requests arriving at the L2 from all the L1 caches, by
	// region (Figs. 14/15 use the Parameter Buffer slice).
	L2In *mem.Counter
	// DRAMCounts counts main-memory accesses by region, including the
	// Color Buffer flush traffic that bypasses the L2 (Figs. 16-19).
	DRAM      dram.Stats
	DRAMIn    *mem.Counter
	L2Stats   l2.Stats
	AttrStats tcor.AttrStats
	ListStats tcor.ListStats
	TileStats cache.Stats // baseline tile cache
	// TileL2Reads/Writes are the L2 requests the baseline tile cache
	// issued (fetches and write-backs).
	TileL2Reads, TileL2Writes int64
	VertexStats               cache.Stats
	// VertexL2Reads counts the Vertex Cache's fill requests to the L2.
	VertexL2Reads int64
	RasterStats   raster.Stats
	// InstrL2Reads counts the per-frame shader-program streaming fills into
	// the instruction caches (the only L2 ingress not owned by a counted L1).
	InstrL2Reads int64
	// L2Enhanced records whether the run used the dead-line L2 replacement,
	// so invariant checks on a bare Result know which identities apply.
	L2Enhanced bool
	// L2Trace holds the last Config.L2TraceDepth L2 evictions (nil when the
	// trace is off).
	L2Trace *stats.Ring

	// Tiling Engine throughput (Figs. 23/24): primitive reads issued by
	// the Tile Fetcher over the cycles it spent, with an unlimited output
	// queue (the Rasterizer never back-pressures it in this measurement).
	TFCycles  int64
	PrimReads int64

	// Whole-frame timing.
	GeomCycles, PLBCycles, RasterCycles int64
	FrameCycles                         int64

	// PerFrame breaks the run down frame by frame (animation makes frames
	// differ; FPS stability studies need the distribution, not the mean).
	PerFrame []FrameStats

	// Energy (picojoules, summed over frames).
	Tally          *energy.Tally
	MemHierarchyPJ float64
	TotalPJ        float64
}

// FrameStats is the per-frame slice of the run.
type FrameStats struct {
	Frame      int
	PrimReads  int64
	TFCycles   int64
	TileCycles int64 // sum over tiles of max(fetch, raster)
	DRAMReads  int64
	DRAMWrites int64
}

// PPC returns the Tile Fetcher's primitives per cycle.
func (r *Result) PPC() float64 {
	if r.TFCycles == 0 {
		return 0
	}
	return float64(r.PrimReads) / float64(r.TFCycles)
}

// FPS returns frames per second under the Table I clock.
func (r *Result) FPS(clockHz float64) float64 {
	if r.FrameCycles == 0 {
		return 0
	}
	return clockHz / (float64(r.FrameCycles) / float64(r.Frames))
}

// Simulate runs every frame of the scene through the configured GPU.
func Simulate(scene *workload.Scene, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := newSim(scene, cfg)
	if err != nil {
		return nil, err
	}
	for f := 0; f < scene.NumFrames(); f++ {
		if err := s.runFrame(f); err != nil {
			return nil, err
		}
	}
	return s.finish()
}

// teeSink counts requests by region and forwards them.
type teeSink struct {
	*mem.Counter
	next mem.Sink
}

func newTee(next mem.Sink) *teeSink {
	return &teeSink{Counter: mem.NewCounter(), next: next}
}

func (t *teeSink) Access(r mem.Request) {
	t.Counter.Access(r)
	t.next.Access(r)
}

func (t *teeSink) TileRetired(pos uint16, tile geom.TileID) { t.next.TileRetired(pos, tile) }
func (t *teeSink) EndFrame()                                { t.next.EndFrame() }

// sim is the wired-up machine.
type sim struct {
	cfg    Config
	scene  *workload.Scene
	trav   *tiling.Traversal
	tracer *stats.Tracer // nil when span tracing is off

	dramDev *dram.DRAM
	l2c     *l2.Cache
	l2in    *teeSink    // in front of the L2: counts all L1->L2 traffic
	l2trace *stats.Ring // bounded L2 eviction trace (nil when off)

	// Tiling Engine L1s: exactly one of (tile) or (lists, attrs) is set.
	tile      *cache.Cache // baseline unified Tile Cache
	tileStats struct {
		reads, writes, l2Reads, l2Writes int64
	}
	lists *tcor.PrimitiveListCache
	attrs *tcor.AttributeCache

	vertex        *cache.Cache
	vertexL2Reads int64

	rasterPipe *raster.Pipeline

	listLayout pbuffer.ListLayout
	attrLayout pbuffer.AttrLayout

	// framePrimReads is the per-frame bookkeeping cursor for PerFrame.
	framePrimReads int64

	// Per-frame buffers reused across frames (arena-style: reset, never
	// reallocated once warm) and the pools feeding the plan workers.
	tileTF, tileRaster []int64
	work               []raster.TileWork
	plans              []*raster.TilePlan
	planPool           sync.Pool // *raster.TilePlan
	scratchPool        sync.Pool // *raster.PlanScratch

	res Result
}

func newSim(scene *workload.Scene, cfg Config) (*sim, error) {
	s := &sim{cfg: cfg, scene: scene, tracer: cfg.Tracer}
	var err error
	s.trav, err = tiling.NewTraversal(cfg.Screen, cfg.Order)
	if err != nil {
		return nil, err
	}
	s.dramDev, err = dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	s.l2c, err = l2.New(cfg.L2, s.dramDev)
	if err != nil {
		return nil, err
	}
	s.l2in = newTee(s.l2c)
	if cfg.L2TraceDepth > 0 {
		s.l2trace = stats.NewRing(cfg.L2TraceDepth)
		s.l2c.SetEvictionTrace(s.l2trace)
	}

	switch cfg.Kind {
	case KindBaseline:
		s.tile, err = cache.New(cache.Config{
			Lines:         cache.LinesFor(cfg.TileCacheBytes, memmap.BlockBytes),
			Ways:          cfg.TileCacheWays,
			WriteAllocate: true,
		}, cache.NewLRU())
		if err != nil {
			return nil, fmt.Errorf("gpu: tile cache: %w", err)
		}
	case KindTCOR:
		lcfg := tcor.DefaultListCacheConfig()
		lcfg.TagLastUse = cfg.L2Enhanced
		s.lists, err = tcor.NewPrimitiveListCache(lcfg, s.l2in)
		if err != nil {
			return nil, err
		}
		acfg := tcor.DefaultAttrCacheConfig(cfg.TileCacheBytes - lcfg.SizeBytes)
		acfg.XORIndex = cfg.XORIndex
		acfg.WriteBypass = cfg.WriteBypass
		s.attrs, err = tcor.NewAttributeCache(acfg, s.l2in)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("gpu: unknown tile cache kind %d", cfg.Kind)
	}

	s.vertex, err = cache.New(cache.Config{
		Lines:         cache.LinesFor(cfg.VertexCacheBytes, memmap.BlockBytes),
		Ways:          cfg.VertexCacheWays,
		WriteAllocate: true,
	}, cache.NewLRU())
	if err != nil {
		return nil, fmt.Errorf("gpu: vertex cache: %w", err)
	}

	spec := scene.Spec
	rcfg := raster.DefaultConfig(cfg.Screen, int64(spec.TextureMiB*1024*1024), spec.ShaderInstrPerPixel)
	// 3D titles carry some alpha-blended effects (particles, glass, UI
	// overlays); a modest deterministic share exercises the Blending unit.
	if spec.ThreeD {
		rcfg.TranslucentFraction = 0.05
	}
	s.rasterPipe, err = raster.New(rcfg, s.l2in, s.dramDev)
	if err != nil {
		return nil, err
	}
	s.planPool.New = func() any { return new(raster.TilePlan) }
	s.scratchPool.New = func() any { return s.rasterPipe.NewScratch() }

	if cfg.InterleavedLists {
		s.listLayout = pbuffer.NewInterleavedListLayout(cfg.Screen.NumTiles())
	} else {
		s.listLayout = pbuffer.NewBaselineListLayout(cfg.Screen.NumTiles())
	}
	s.attrLayout = pbuffer.NewAttrLayout()

	s.res.Benchmark = spec.Alias
	s.res.Kind = cfg.Kind
	return s, nil
}

// penalty measures the stall cycles incurred by the last L1 operation from
// the L2/DRAM traffic it generated, scaled by the MSHR overlap factor.
type penaltyProbe struct {
	l2Reads, dramReadCycles int64
}

func (s *sim) snap() penaltyProbe {
	return penaltyProbe{
		l2Reads:        s.l2in.Reads,
		dramReadCycles: s.dramDev.Stats().ReadCycles,
	}
}

func (s *sim) penaltySince(p penaltyProbe) int64 {
	l2 := (s.l2in.Reads - p.l2Reads) * int64(s.cfg.Timing.L2Cycles)
	dr := s.dramDev.Stats().ReadCycles - p.dramReadCycles
	return (l2 + dr) / int64(s.cfg.Timing.MSHROverlap)
}

// beginFrameSpan opens one frame's top span: a child of cfg.TraceParent
// when the caller threaded one through (the frame then joins the caller's
// trace), else a fresh root trace. Nil-safe — with tracing off it returns
// the nil span.
func (s *sim) beginFrameSpan() *stats.Span {
	if p := s.cfg.TraceParent; p != nil {
		return p.Child("frame", "gpu")
	}
	return s.tracer.Begin("frame", "gpu")
}

// runFrame pushes one frame through the whole pipeline. When a tracer is
// configured the frame emits a span tree — frame > {geometry, binning,
// tiles > tile...} — whose wall-clock durations attribute simulator time to
// pipeline phases (the trace never feeds back into simulated cycles).
func (s *sim) runFrame(f int) error {
	fsp := s.beginFrameSpan()
	fsp.SetAttr("frame", strconv.Itoa(f))
	defer fsp.End()

	dramBefore := s.dramDev.Stats()
	frame := s.scene.Frame(f)
	prims := frame.Prims

	// --- Geometry Pipeline: vertex fetch + vertex shading. ---
	gsp := fsp.Child("geometry", "gpu")
	s.res.GeomCycles += s.geometry(prims)
	gsp.SetAttr("prims", strconv.Itoa(len(prims)))
	gsp.End()

	// --- Tiling Engine, phase 1: Polygon List Builder. ---
	bsp := fsp.Child("binning", "gpu")
	binning, err := tiling.Bin(s.cfg.Screen, s.trav, prims)
	bsp.End()
	if err != nil {
		return err
	}
	tsp := fsp.Child("tiles", "gpu")
	h := &frameHandler{sim: s, binning: binning, frame: f, prims: prims, tilesSpan: tsp}
	h.tileTF, h.tileRaster = s.tileTF[:0], s.tileRaster[:0]
	if workers := s.cfg.TileParallel; workers > 1 {
		// Plan every tile's raster access stream on a worker pool while the
		// replay below commits them in traversal order (docs/MODEL.md §12).
		h.engine = s.startPlanEngine(binning, prims, f, workers)
	}
	tiling.Replay(binning, s.listLayout, s.attrLayout, h)
	h.drainQueue()
	if h.engine != nil {
		h.engine.wait()
	}
	s.tileTF, s.tileRaster = h.tileTF, h.tileRaster
	tsp.End()

	// Per-tile overlap of Tile Fetcher and Raster Pipeline: the stages are
	// decoupled by the output queue, so the frame pays the slower of the
	// two per tile.
	fs := FrameStats{Frame: f}
	for i := range h.tileTF {
		tf, rs := h.tileTF[i], h.tileRaster[i]
		if tf > rs {
			fs.TileCycles += tf
		} else {
			fs.TileCycles += rs
		}
		fs.TFCycles += tf
		s.res.RasterCycles += rs
	}
	s.res.FrameCycles += fs.TileCycles

	// Shader program fills: each frame streams the vertex and fragment
	// programs into the instruction caches once.
	s.instrFills()

	// --- Frame boundary: recycle the Parameter Buffer. ---
	switch s.cfg.Kind {
	case KindBaseline:
		s.tile.FlushAll() // PB-only cache; drop without write-back
	case KindTCOR:
		s.lists.EndFrame()
		s.attrs.EndFrame()
	}
	s.l2in.EndFrame()
	s.rasterPipe.EndFrame()
	dramAfter := s.dramDev.Stats()
	fs.PrimReads = s.res.PrimReads - s.framePrimReads
	s.framePrimReads = s.res.PrimReads
	fs.DRAMReads = dramAfter.Reads - dramBefore.Reads
	fs.DRAMWrites = dramAfter.Writes - dramBefore.Writes
	s.res.PerFrame = append(s.res.PerFrame, fs)
	s.res.Frames++
	return nil
}

// geometry models the Vertex Fetcher and Vertex Stage: each primitive
// fetches three 16-byte vertices from the input geometry stream through the
// Vertex Cache, then runs the vertex program.
func (s *sim) geometry(prims []geom.Primitive) int64 {
	var cycles int64
	for i := range prims {
		for v := 0; v < 3; v++ {
			addr := memmap.InputGeometryBase + uint64(i*3+v)*16
			p := s.snap()
			res := s.vertex.Access(trace.Access{Key: trace.Key(memmap.Block(addr))})
			if !res.Hit {
				s.vertexL2Reads++
				s.l2in.Access(mem.Request{Addr: addr &^ (memmap.BlockBytes - 1)})
			}
			cycles += int64(s.cfg.Timing.L1Cycles) + s.penaltySince(p)
		}
		cycles += int64(s.cfg.Timing.VertexInstr) * 3 / 4 // 4-lane vertex shading
	}
	return cycles
}

// instrFills charges the per-frame shader-program streaming into the
// instruction caches from the L2.
func (s *sim) instrFills() {
	for b := int64(0); b < s.rasterPipe.InstrFootprintBlocks(); b++ {
		s.res.InstrL2Reads++
		s.l2in.Access(mem.Request{Addr: memmap.FragShaderInstrBase + uint64(b)*memmap.BlockBytes})
	}
	vblocks := int64(s.cfg.Timing.VertexInstr) * 16 / memmap.BlockBytes
	for b := int64(0); b <= vblocks; b++ {
		s.res.InstrL2Reads++
		s.l2in.Access(mem.Request{Addr: memmap.VertexShaderInstrBase + uint64(b)*memmap.BlockBytes})
	}
}

// frameHandler adapts the Tiling Engine event stream onto the configured
// cache organization and accumulates the timing.
type frameHandler struct {
	sim     *sim
	binning *tiling.Binning
	frame   int
	prims   []geom.Primitive

	plbCycles int64
	// Per-traversal-position Tile Fetcher and Raster cycles (backed by the
	// sim's frame-to-frame buffers).
	tileTF     []int64
	tileRaster []int64
	curTF      int64

	// engine, when non-nil, pre-computes raster plans on a worker pool;
	// TileDone then commits them in traversal order instead of
	// rasterizing inline.
	engine *planEngine

	// tilesSpan parents the per-tile spans; tileSpan is the span of the tile
	// currently streaming through the Tile Fetcher (begun lazily at its first
	// fetch event, ended in TileDone). Both nil when tracing is off.
	tilesSpan *stats.Span
	tileSpan  *stats.Span

	// TCOR output queue: primitives locked until the Rasterizer consumes
	// them.
	queue []uint32
}

// tileAccess routes one block-granularity Tiling Engine access to the
// correct L1 and returns the stall penalty.
func (h *frameHandler) tileAccess(addr uint64, write bool, tilePos uint16) int64 {
	s := h.sim
	p := s.snap()
	switch s.cfg.Kind {
	case KindBaseline:
		if write {
			s.tileStats.writes++
		} else {
			s.tileStats.reads++
		}
		res := s.tile.Access(trace.Access{Key: trace.Key(memmap.Block(addr)), Write: write})
		if res.Evicted && res.VictimDirty {
			s.tileStats.l2Writes++
			s.l2in.Access(mem.Request{Addr: memmap.BlockAddr(uint64(res.Victim)), Write: true})
		}
		// Read misses fetch. Write misses fetch when the write is partial:
		// a PMD appended mid-block must merge with the PMDs already there,
		// and a 48-byte attribute store into a 64-byte line is partial by
		// construction (Fig. 4) — this fetch-on-attribute-write is
		// precisely the overhead TCOR's primitive-granularity Attribute
		// Buffer avoids. Only first-PMD writes (block-aligned PB-Lists
		// addresses) allocate without a fetch.
		partial := addr%memmap.BlockBytes != 0 ||
			memmap.RegionOf(addr) == memmap.RegionPBAttributes
		if !res.Hit && (!write || partial) {
			s.tileStats.l2Reads++
			s.l2in.Access(mem.Request{Addr: addr &^ (memmap.BlockBytes - 1)})
		}
	case KindTCOR:
		s.lists.Access(addr, write, tilePos)
	}
	return int64(s.cfg.Timing.L1Cycles) + s.penaltySince(p)
}

// ListWrite implements tiling.Handler.
func (h *frameHandler) ListWrite(addr uint64, tile geom.TileID) {
	pos := h.binning.Traversal.Pos[tile]
	// Binning work: overlap test + append (~2 cycles per PMD) plus the L1
	// write. Writes drain through a write buffer, so miss handling is
	// off the critical path; only write-buffer pressure (an eighth of the
	// miss penalty) throttles the builder.
	penalty := h.tileAccess(addr, true, pos)
	h.plbCycles += 2 + int64(h.sim.cfg.Timing.L1Cycles) + (penalty-int64(h.sim.cfg.Timing.L1Cycles))/8
}

// AttrWrite implements tiling.Handler.
func (h *frameHandler) AttrWrite(prim uint32, numAttrs uint8, firstUse, lastUse uint16, blocks []uint64) {
	s := h.sim
	switch s.cfg.Kind {
	case KindBaseline:
		for _, b := range blocks {
			penalty := h.tileAccess(b, true, lastUse)
			h.plbCycles += int64(s.cfg.Timing.L1Cycles) + (penalty-int64(s.cfg.Timing.L1Cycles))/8
		}
	case KindTCOR:
		p := s.snap()
		s.attrs.Write(prim, numAttrs, firstUse, lastUse, blocks)
		h.plbCycles += int64(s.cfg.Timing.L1Cycles) + s.penaltySince(p)/8
	}
}

// beginTileSpan lazily opens the current tile's span at its first Tile
// Fetcher event. Per-tile spans are gated on cfg.TraceTiles (see the knob's
// doc for why); the tracer-nil check keeps the disabled path to one branch.
func (h *frameHandler) beginTileSpan() {
	if h.sim.tracer != nil && h.sim.cfg.TraceTiles && h.tileSpan == nil {
		h.tileSpan = h.tilesSpan.Child("tile", "gpu")
	}
}

// ListRead implements tiling.Handler.
func (h *frameHandler) ListRead(addr uint64, tile geom.TileID) {
	h.beginTileSpan()
	pos := h.binning.Traversal.Pos[tile]
	h.curTF += h.tileAccess(addr, false, pos)
}

// PrimRead implements tiling.Handler.
func (h *frameHandler) PrimRead(prim uint32, numAttrs uint8, optNum, lastUse uint16, blocks []uint64, tile geom.TileID) {
	h.beginTileSpan()
	s := h.sim
	s.res.PrimReads++
	pos := h.binning.Traversal.Pos[tile]
	switch s.cfg.Kind {
	case KindBaseline:
		// The baseline Tile Fetcher reads each attribute block through the
		// Tile Cache and copies the attributes out.
		for _, b := range blocks {
			h.curTF += h.tileAccess(b, false, pos)
		}
	case KindTCOR:
		p := s.snap()
		res := s.attrs.Read(prim, numAttrs, optNum, lastUse, blocks)
		for res.Stalled {
			if len(h.queue) == 0 {
				return // cannot happen: queue empty means nothing locked
			}
			// Rasterizer consumes the oldest in-flight primitive.
			s.attrs.Unlock(h.queue[0])
			h.queue = h.queue[1:]
			h.curTF++ // one-cycle drain step
			res = s.attrs.Read(prim, numAttrs, optNum, lastUse, blocks)
		}
		h.queue = append(h.queue, prim)
		if len(h.queue) > s.cfg.OutputQueueDepth {
			s.attrs.Unlock(h.queue[0])
			h.queue = h.queue[1:]
		}
		h.curTF += int64(s.cfg.Timing.L1Cycles) + s.penaltySince(p)
	}
}

// TileDone implements tiling.Handler: close out the tile's Tile Fetcher
// cycle count, rasterize the tile, and signal retirement to the L2.
func (h *frameHandler) TileDone(tile geom.TileID, pos uint16) {
	h.beginTileSpan() // an empty tile still gets a (zero-fetch) span
	s := h.sim
	var rc int64
	if h.engine != nil {
		// Ordered merge: block until the worker pool has planned this
		// tile, then commit its access stream — the serial point through
		// which all shared-hierarchy traffic flows in traversal order.
		plan := h.engine.planFor(int(pos))
		rc = s.rasterPipe.CommitPlan(plan)
		h.engine.donePlan(int(pos), plan)
	} else {
		work := s.work[:0]
		for _, e := range h.binning.Lists[tile] {
			work = append(work, raster.TileWork{Prim: &h.prims[e.Prim]})
		}
		s.work = work
		rc = s.rasterPipe.RasterTile(tile, h.frame, work)
	}
	h.tileTF = append(h.tileTF, h.curTF)
	h.tileRaster = append(h.tileRaster, rc)
	s.res.TFCycles += h.curTF
	if sp := h.tileSpan; sp != nil {
		sp.SetAttr("tile", strconv.Itoa(int(tile)))
		sp.SetAttr("prims", strconv.Itoa(len(h.binning.Lists[tile])))
		sp.SetAttr("tfCycles", strconv.FormatInt(h.curTF, 10))
		sp.SetAttr("rasterCycles", strconv.FormatInt(rc, 10))
		sp.End()
		h.tileSpan = nil
	}
	h.curTF = 0
	s.l2in.TileRetired(pos, tile)
}

// drainQueue unlocks any primitives still in the output queue at frame end.
func (h *frameHandler) drainQueue() {
	if h.sim.cfg.Kind != KindTCOR {
		h.sim.res.PLBCycles += h.plbCycles
		return
	}
	for _, p := range h.queue {
		h.sim.attrs.Unlock(p)
	}
	h.queue = h.queue[:0]
	h.sim.res.PLBCycles += h.plbCycles
}

// finish collects stats and computes energy.
func (s *sim) finish() (*Result, error) {
	r := &s.res
	r.L2In = s.l2in.Counter
	r.L2Stats = s.l2c.Stats()
	r.L2Enhanced = s.cfg.L2Enhanced
	r.L2Trace = s.l2trace
	r.DRAM = s.dramDev.Stats()
	r.DRAMIn = s.dramDev.Counter
	r.VertexStats = s.vertex.Stats()
	r.VertexL2Reads = s.vertexL2Reads
	r.RasterStats = s.rasterPipe.Stats()
	if s.cfg.Kind == KindTCOR {
		r.AttrStats = s.attrs.Stats()
		r.ListStats = s.lists.Stats()
	} else {
		r.TileStats = s.tile.Stats()
		r.TileL2Reads = s.tileStats.l2Reads
		r.TileL2Writes = s.tileStats.l2Writes
	}
	r.FrameCycles += r.GeomCycles + r.PLBCycles
	// Bandwidth bound: the frame cannot retire before the DRAM bus has
	// transferred everything it owed.
	if busy := r.DRAM.BusyCycles; busy > r.FrameCycles {
		r.FrameCycles = busy
	}
	s.computeEnergy(r)
	return r, nil
}
