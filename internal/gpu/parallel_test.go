package gpu

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"tcor/internal/geom"
	"tcor/internal/tiling"
	"tcor/internal/workload"
)

// parallelLevels are the TileParallel settings the differential harness
// exercises against serial: an even split, a prime that never divides the
// tile count evenly (ragged final chunks), and whatever the host offers.
func parallelLevels() []int {
	return []int{2, 7, runtime.GOMAXPROCS(0)}
}

// resultBytes runs one simulation and returns the JSON-marshaled Result —
// every counter, energy tally, histogram and L2 eviction ring — so a single
// byte of drift anywhere in the model fails the comparison.
func resultBytes(t testing.TB, sc *workload.Scene, cfg Config) []byte {
	t.Helper()
	res, err := Simulate(sc, cfg)
	if err != nil {
		t.Fatalf("simulate (parallel=%d): %v", cfg.TileParallel, err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return data
}

// diffAgainstSerial asserts that every parallelism level reproduces the
// serial run byte-for-byte.
func diffAgainstSerial(t *testing.T, sc *workload.Scene, cfg Config) {
	t.Helper()
	cfg.TileParallel = 1
	want := resultBytes(t, sc, cfg)
	for _, workers := range parallelLevels() {
		cfg.TileParallel = workers
		got := resultBytes(t, sc, cfg)
		if string(got) != string(want) {
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			lo, hi := i-40, i+40
			if lo < 0 {
				lo = 0
			}
			if hi > len(want) {
				hi = len(want)
			}
			gotHi := hi
			if gotHi > len(got) {
				gotHi = len(got)
			}
			t.Fatalf("TileParallel=%d drifts from serial at byte %d:\nserial:   ...%s...\nparallel: ...%s...",
				workers, i, want[lo:hi], got[lo:gotHi])
		}
	}
}

// TestParallelDifferential_TableII is the differential golden harness for
// the parallel frame core: every Table II benchmark, at each parallelism
// level, must produce a gpu.Result that is byte-identical to the serial
// run once JSON-marshaled — including the bounded L2 eviction trace, whose
// entry order would expose any reordering of the commit stream. Run under
// -race in CI so the ordered merge is also exercised for data races.
func TestParallelDifferential_TableII(t *testing.T) {
	aliases := workload.Aliases()
	screen := geom.DefaultScreen()
	for i, alias := range aliases {
		// Rotate through the three paper configurations so baseline,
		// TCOR and the no-L2 ablation all get differential coverage
		// without tripling the run time.
		var cfg Config
		switch i % 3 {
		case 0:
			cfg = Baseline(64 * 1024)
		case 1:
			cfg = TCOR(64 * 1024)
		default:
			cfg = TCORNoL2(64 * 1024)
		}
		cfg.L2TraceDepth = 32
		t.Run(fmt.Sprintf("%s/%s", alias, cfg.Kind), func(t *testing.T) {
			spec, err := workload.ByAlias(alias)
			if err != nil {
				t.Fatal(err)
			}
			spec.Frames = 1 // one frame keeps the full-suite sweep tractable
			sc, err := workload.Generate(spec, screen)
			if err != nil {
				t.Fatal(err)
			}
			diffAgainstSerial(t, sc, cfg)
		})
	}
}

// TestParallelDifferential_RandomConfigs drives the harness with seeded
// random configurations — screen and tile geometry, traversal order, cache
// kind and sizes, raster knobs — so the ordered merge is exercised on shapes
// the curated suite never hits (tiny screens, huge tiles, Hilbert order,
// bilinear filtering, translucency).
func TestParallelDifferential_RandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7c02))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			screen := geom.Screen{
				Width:    256 + rng.Intn(8)*128,
				Height:   256 + rng.Intn(6)*128,
				TileSize: []int{16, 32, 64}[rng.Intn(3)],
			}
			spec := workload.Suite()[rng.Intn(len(workload.Suite()))]
			spec.Frames = 1
			spec.Seed = int64(1000 + trial)
			sc, err := workload.Generate(spec, screen)
			if err != nil {
				t.Fatal(err)
			}
			var cfg Config
			if rng.Intn(2) == 0 {
				cfg = Baseline(32 * 1024)
			} else {
				cfg = TCOR(64 * 1024)
			}
			cfg.Screen = screen
			cfg.Order = []tiling.Order{tiling.OrderScanline, tiling.OrderZ, tiling.OrderHilbert}[rng.Intn(3)]
			cfg.L2TraceDepth = 1 + rng.Intn(64)
			cfg.IncludeLeakage = rng.Intn(2) == 0
			t.Logf("screen=%dx%d/%d order=%v kind=%v trace=%d leakage=%v workload=%s",
				screen.Width, screen.Height, screen.TileSize, cfg.Order, cfg.Kind,
				cfg.L2TraceDepth, cfg.IncludeLeakage, spec.Alias)
			diffAgainstSerial(t, sc, cfg)
		})
	}
}

// TestTileParallelValidate pins the config contract: negative parallelism is
// rejected, zero and one mean serial, and the field stays out of the JSON
// fingerprint so content-addressed result caches keep collapsing runs that
// differ only in worker count.
func TestTileParallelValidate(t *testing.T) {
	cfg := Baseline(64 * 1024)
	cfg.TileParallel = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative TileParallel validated")
	}
	cfg.TileParallel = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero TileParallel rejected: %v", err)
	}
	a, _ := json.Marshal(Baseline(64 * 1024))
	par := Baseline(64 * 1024)
	par.TileParallel = 8
	b, _ := json.Marshal(par)
	if string(a) != string(b) {
		t.Fatal("TileParallel leaks into the config JSON fingerprint")
	}
}

