package gpu_test

import (
	"fmt"

	"tcor/internal/geom"
	"tcor/internal/gpu"
	"tcor/internal/workload"
)

// Run one benchmark under baseline and TCOR and compare Parameter Buffer
// traffic to main memory — the paper's Fig. 16 metric for one workload.
func ExampleSimulate() {
	spec, _ := workload.ByAlias("GTr")
	spec.Frames = 1
	scene, _ := workload.Generate(spec, geom.DefaultScreen())

	base, _ := gpu.Simulate(scene, gpu.Baseline(64*1024))
	tc, _ := gpu.Simulate(scene, gpu.TCOR(64*1024))

	b := base.DRAMIn.PB()
	t := tc.DRAMIn.PB()
	fmt.Printf("baseline PB->memory accesses > 0: %v\n", b.Reads+b.Writes > 0)
	fmt.Printf("TCOR PB->memory accesses: %d\n", t.Reads+t.Writes)
	// Output:
	// baseline PB->memory accesses > 0: true
	// TCOR PB->memory accesses: 0
}
