package gpu

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCheckInvariantsAllConfigs runs every full-system configuration and
// demands that all per-level and cross-level identities hold — the
// programmatic form of the conservation tests, exercised through the
// public stats surface that cmd/tcorsim's -check flag uses.
func TestCheckInvariantsAllConfigs(t *testing.T) {
	sc := smallScene(t, "CCS", 2)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"baseline64", Baseline(64 * 1024)},
		{"tcor64", TCOR(64 * 1024)},
		{"nol2-64", TCORNoL2(64 * 1024)},
	} {
		res, err := Simulate(sc, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := res.CheckInvariants(); err != nil {
			t.Errorf("%s: invariants violated:\n%v", tc.name, err)
		}
	}
}

// TestCheckInvariantsDetectsCorruption proves the checks have teeth: a
// corrupted counter must fail the cross-level conservation identity.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	sc := smallScene(t, "CCS", 1)
	res, err := Simulate(sc, TCOR(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	res.VertexL2Reads++ // phantom request: appears at no other level
	err = res.CheckInvariants()
	if err == nil {
		t.Fatal("corrupted counter passed the invariant check")
	}
	if !strings.Contains(err.Error(), "l2IngressReadsConserved") {
		t.Errorf("wrong violation reported: %v", err)
	}
}

// TestStatsSchemaStableAcrossKinds checks that baseline and TCOR runs
// publish the identical counter-name set (the unused L1 organization shows
// up as zeros), so -stats JSON is schema-stable across configurations.
func TestStatsSchemaStableAcrossKinds(t *testing.T) {
	sc := smallScene(t, "CCS", 1)
	names := make(map[string][]string)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"baseline", Baseline(64 * 1024)},
		{"tcor", TCOR(64 * 1024)},
	} {
		res, err := Simulate(sc, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res.StatsRegistry().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]int64
		if err := json.Unmarshal(blob, &m); err != nil {
			t.Fatal(err)
		}
		for k := range m {
			names[tc.name] = append(names[tc.name], k)
		}
		for _, want := range []string{"l1.list.hits", "l1.attr.reads", "l1.tile.accesses",
			"l1.vertex.accesses", "l2.reads", "dram.reads", "raster.fragments"} {
			if _, ok := m[want]; !ok {
				t.Errorf("%s: counter %q missing from snapshot", tc.name, want)
			}
		}
	}
	if len(names["baseline"]) != len(names["tcor"]) {
		t.Errorf("schema differs: baseline has %d counters, tcor %d",
			len(names["baseline"]), len(names["tcor"]))
	}
}

// TestL2TraceRing wires the bounded eviction trace through a full run and
// checks depth bounding plus event plausibility.
func TestL2TraceRing(t *testing.T) {
	sc := smallScene(t, "CCS", 1)
	cfg := TCOR(64 * 1024)
	cfg.L2TraceDepth = 16
	res, err := Simulate(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.L2Trace == nil {
		t.Fatal("L2TraceDepth set but Result.L2Trace is nil")
	}
	evs := res.L2Trace.Events()
	if len(evs) > 16 {
		t.Fatalf("ring returned %d events, depth is 16", len(evs))
	}
	if res.L2Stats.Evictions > 0 && len(evs) == 0 {
		t.Fatal("L2 evicted lines but the trace recorded nothing")
	}
	if res.L2Trace.Total() != res.L2Stats.Evictions {
		t.Errorf("trace total %d != L2 evictions %d", res.L2Trace.Total(), res.L2Stats.Evictions)
	}
	for _, e := range evs {
		if e.Kind != "evict" {
			t.Errorf("unexpected event kind %q", e.Kind)
		}
		if e.Class != "dead" && e.Class != "non-PB" && e.Class != "live-PB" {
			t.Errorf("unexpected class %q", e.Class)
		}
		if e.Dropped && !e.Dirty {
			t.Errorf("clean line reported a dropped write-back: %+v", e)
		}
	}

	// Tracing must not perturb the simulation.
	plain, err := Simulate(sc, TCOR(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	if plain.L2Stats != res.L2Stats || plain.FrameCycles != res.FrameCycles {
		t.Error("enabling the L2 trace changed simulation results")
	}
}
