package experiments

import (
	"fmt"

	"tcor/internal/gpu"
	"tcor/internal/mem"
	"tcor/internal/workload"
)

// tileCacheBytes maps the two experiment sizes of §V-B.
func tileCacheBytes(sizeKB int) int { return sizeKB * 1024 }

// run helpers for the six configurations behind Figs. 14-24.
func (r *Runner) baseline(alias string, sizeKB int) (*gpu.Result, error) {
	return r.Run(alias, fmt.Sprintf("base%d", sizeKB), gpu.Baseline(tileCacheBytes(sizeKB)))
}

func (r *Runner) tcorFull(alias string, sizeKB int) (*gpu.Result, error) {
	return r.Run(alias, fmt.Sprintf("tcor%d", sizeKB), gpu.TCOR(tileCacheBytes(sizeKB)))
}

func (r *Runner) tcorNoL2(alias string, sizeKB int) (*gpu.Result, error) {
	return r.Run(alias, fmt.Sprintf("nol2-%d", sizeKB), gpu.TCORNoL2(tileCacheBytes(sizeKB)))
}

// TrafficRow is one benchmark's bar of a normalized traffic figure: reads
// and writes for baseline and TCOR, both normalized to the baseline total.
type TrafficRow struct {
	Alias                 string
	BaseReads, BaseWrites int64
	TCORReads, TCORWrites int64
	Decrease              float64 // 1 - (TCOR total / baseline total)
}

// TrafficFigure is the result of Figs. 14-19.
type TrafficFigure struct {
	Fig     int
	SizeKB  int
	Metric  string
	Rows    []TrafficRow
	Average float64 // average of per-benchmark decreases
}

// Table renders the figure.
func (f *TrafficFigure) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure %d: %s, normalized to baseline (%d KiB Tile Cache)",
			f.Fig, f.Metric, f.SizeKB),
		Header: []string{"Benchmark", "BaseRd", "BaseWr", "TCORRd", "TCORWr", "Decrease"},
	}
	for _, row := range f.Rows {
		base := float64(row.BaseReads + row.BaseWrites)
		norm := func(v int64) string {
			if base == 0 {
				return "-"
			}
			return f3(float64(v) / base)
		}
		t.AddRow(row.Alias, norm(row.BaseReads), norm(row.BaseWrites),
			norm(row.TCORReads), norm(row.TCORWrites), pct(row.Decrease))
	}
	t.AddRow("average", "", "", "", "", pct(f.Average))
	return t
}

// trafficFigure builds Figs. 14-19 from a per-result counter extractor. The
// per-benchmark rows come back from the sweep pool in suite order, so the
// aggregation below is identical at every parallelism level.
func (r *Runner) trafficFigure(fig, sizeKB int, metric string,
	get func(*gpu.Result) mem.RegionCounts) (*TrafficFigure, error) {
	rows, err := forSuite(r, func(spec workload.Spec) (TrafficRow, error) {
		base, err := r.baseline(spec.Alias, sizeKB)
		if err != nil {
			return TrafficRow{}, err
		}
		tc, err := r.tcorFull(spec.Alias, sizeKB)
		if err != nil {
			return TrafficRow{}, err
		}
		b, tcc := get(base), get(tc)
		row := TrafficRow{
			Alias:     spec.Alias,
			BaseReads: b.Reads, BaseWrites: b.Writes,
			TCORReads: tcc.Reads, TCORWrites: tcc.Writes,
		}
		if tot := b.Reads + b.Writes; tot > 0 {
			row.Decrease = 1 - float64(tcc.Reads+tcc.Writes)/float64(tot)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	f := &TrafficFigure{Fig: fig, SizeKB: sizeKB, Metric: metric, Rows: rows}
	var sum float64
	for _, row := range rows {
		sum += row.Decrease
	}
	if len(rows) > 0 {
		f.Average = sum / float64(len(rows))
	}
	return f, nil
}

// Fig14 and Fig15: Parameter Buffer accesses to the L2, for the 64 KiB and
// 128 KiB Tile Caches.
func (r *Runner) Fig14() (*TrafficFigure, error) { return r.figPBL2(14, 64) }

// Fig15 is the 128 KiB variant of Fig14.
func (r *Runner) Fig15() (*TrafficFigure, error) { return r.figPBL2(15, 128) }

func (r *Runner) figPBL2(fig, sizeKB int) (*TrafficFigure, error) {
	return r.trafficFigure(fig, sizeKB, "PB accesses to L2",
		func(res *gpu.Result) mem.RegionCounts { return res.L2In.PB() })
}

// Fig16 and Fig17: Parameter Buffer accesses to Main Memory.
func (r *Runner) Fig16() (*TrafficFigure, error) { return r.figPBMem(16, 64) }

// Fig17 is the 128 KiB variant of Fig16.
func (r *Runner) Fig17() (*TrafficFigure, error) { return r.figPBMem(17, 128) }

func (r *Runner) figPBMem(fig, sizeKB int) (*TrafficFigure, error) {
	return r.trafficFigure(fig, sizeKB, "PB accesses to Main Memory",
		func(res *gpu.Result) mem.RegionCounts { return res.DRAMIn.PB() })
}

// Fig18 and Fig19: total Main Memory accesses (all regions, including the
// Color Buffer flush).
func (r *Runner) Fig18() (*TrafficFigure, error) { return r.figMemTotal(18, 64) }

// Fig19 is the 128 KiB variant of Fig18.
func (r *Runner) Fig19() (*TrafficFigure, error) { return r.figMemTotal(19, 128) }

func (r *Runner) figMemTotal(fig, sizeKB int) (*TrafficFigure, error) {
	return r.trafficFigure(fig, sizeKB, "total Main Memory accesses",
		func(res *gpu.Result) mem.RegionCounts {
			return mem.RegionCounts{Reads: res.DRAM.Reads, Writes: res.DRAM.Writes}
		})
}

// EnergyRow is one benchmark's bars of Figs. 20/21.
type EnergyRow struct {
	Alias        string
	BasePJ       float64
	NoL2PJ       float64
	TCORPJ       float64
	DecreaseNoL2 float64 // 1 - NoL2/Base
	DecreaseTCOR float64 // 1 - TCOR/Base
}

// EnergyFigure is the result of Figs. 20/21.
type EnergyFigure struct {
	Fig     int
	SizeKB  int
	Rows    []EnergyRow
	AvgNoL2 float64
	AvgTCOR float64
}

// Table renders the figure.
func (f *EnergyFigure) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure %d: Memory hierarchy energy, normalized to baseline (%d KiB Tile Cache)",
			f.Fig, f.SizeKB),
		Header: []string{"Benchmark", "Baseline", "TCOR-noL2", "TCOR", "Dec(noL2)", "Dec(TCOR)"},
	}
	for _, row := range f.Rows {
		t.AddRow(row.Alias, "1.000", f3(row.NoL2PJ/row.BasePJ), f3(row.TCORPJ/row.BasePJ),
			pct(row.DecreaseNoL2), pct(row.DecreaseTCOR))
	}
	t.AddRow("average", "", "", "", pct(f.AvgNoL2), pct(f.AvgTCOR))
	return t
}

// Fig20 and Fig21: memory-hierarchy energy for baseline, TCOR without the
// L2 enhancements, and full TCOR.
func (r *Runner) Fig20() (*EnergyFigure, error) { return r.figEnergy(20, 64) }

// Fig21 is the 128 KiB variant of Fig20.
func (r *Runner) Fig21() (*EnergyFigure, error) { return r.figEnergy(21, 128) }

func (r *Runner) figEnergy(fig, sizeKB int) (*EnergyFigure, error) {
	rows, err := forSuite(r, func(spec workload.Spec) (EnergyRow, error) {
		base, err := r.baseline(spec.Alias, sizeKB)
		if err != nil {
			return EnergyRow{}, err
		}
		noL2, err := r.tcorNoL2(spec.Alias, sizeKB)
		if err != nil {
			return EnergyRow{}, err
		}
		tc, err := r.tcorFull(spec.Alias, sizeKB)
		if err != nil {
			return EnergyRow{}, err
		}
		row := EnergyRow{
			Alias:  spec.Alias,
			BasePJ: base.MemHierarchyPJ,
			NoL2PJ: noL2.MemHierarchyPJ,
			TCORPJ: tc.MemHierarchyPJ,
		}
		row.DecreaseNoL2 = 1 - row.NoL2PJ/row.BasePJ
		row.DecreaseTCOR = 1 - row.TCORPJ/row.BasePJ
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	f := &EnergyFigure{Fig: fig, SizeKB: sizeKB, Rows: rows}
	var sumN, sumT float64
	for _, row := range rows {
		sumN += row.DecreaseNoL2
		sumT += row.DecreaseTCOR
	}
	if len(rows) > 0 {
		f.AvgNoL2 = sumN / float64(len(rows))
		f.AvgTCOR = sumT / float64(len(rows))
	}
	return f, nil
}

// GPUEnergyRow is one benchmark of Fig. 22.
type GPUEnergyRow struct {
	Alias       string
	Decrease64  float64
	Decrease128 float64
}

// GPUEnergyFigure is the result of Fig. 22.
type GPUEnergyFigure struct {
	Rows          []GPUEnergyRow
	Avg64, Avg128 float64
}

// Table renders the figure.
func (f *GPUEnergyFigure) Table() *Table {
	t := &Table{
		Title:  "Figure 22: Decrease in total GPU energy wrt the baseline",
		Header: []string{"Benchmark", "64KB Tile Cache", "128KB Tile Cache"},
	}
	for _, row := range f.Rows {
		t.AddRow(row.Alias, pct(row.Decrease64), pct(row.Decrease128))
	}
	t.AddRow("average", pct(f.Avg64), pct(f.Avg128))
	return t
}

// Fig22 reproduces Figure 22: per-benchmark decrease in total GPU energy
// for both Tile Cache sizes.
func (r *Runner) Fig22() (*GPUEnergyFigure, error) {
	rows, err := forSuite(r, func(spec workload.Spec) (GPUEnergyRow, error) {
		row := GPUEnergyRow{Alias: spec.Alias}
		for _, sizeKB := range []int{64, 128} {
			base, err := r.baseline(spec.Alias, sizeKB)
			if err != nil {
				return row, err
			}
			tc, err := r.tcorFull(spec.Alias, sizeKB)
			if err != nil {
				return row, err
			}
			dec := 1 - tc.TotalPJ/base.TotalPJ
			if sizeKB == 64 {
				row.Decrease64 = dec
			} else {
				row.Decrease128 = dec
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	f := &GPUEnergyFigure{Rows: rows}
	var s64, s128 float64
	for _, row := range rows {
		s64 += row.Decrease64
		s128 += row.Decrease128
	}
	if n := float64(len(rows)); n > 0 {
		f.Avg64, f.Avg128 = s64/n, s128/n
	}
	return f, nil
}

// ThroughputRow is one benchmark of Figs. 23/24.
type ThroughputRow struct {
	Alias   string
	BasePPC float64
	TCORPPC float64
	Speedup float64
}

// ThroughputFigure is the result of Figs. 23/24.
type ThroughputFigure struct {
	Fig        int
	SizeKB     int
	Rows       []ThroughputRow
	AvgSpeedup float64
}

// Table renders the figure.
func (f *ThroughputFigure) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure %d: Primitives output per cycle by the Tile Fetcher (%d KiB Tile Cache)",
			f.Fig, f.SizeKB),
		Header: []string{"Benchmark", "Baseline PPC", "TCOR PPC", "Speedup"},
	}
	for _, row := range f.Rows {
		t.AddRow(row.Alias, f3(row.BasePPC), f3(row.TCORPPC), fmt.Sprintf("%.1fx", row.Speedup))
	}
	t.AddRow("average", "", "", fmt.Sprintf("%.1fx", f.AvgSpeedup))
	return t
}

// Fig23 and Fig24: Tile Fetcher throughput (primitives per cycle) with an
// unbounded output queue.
func (r *Runner) Fig23() (*ThroughputFigure, error) { return r.figThroughput(23, 64) }

// Fig24 is the 128 KiB variant of Fig23.
func (r *Runner) Fig24() (*ThroughputFigure, error) { return r.figThroughput(24, 128) }

func (r *Runner) figThroughput(fig, sizeKB int) (*ThroughputFigure, error) {
	rows, err := forSuite(r, func(spec workload.Spec) (ThroughputRow, error) {
		base, err := r.baseline(spec.Alias, sizeKB)
		if err != nil {
			return ThroughputRow{}, err
		}
		tc, err := r.tcorFull(spec.Alias, sizeKB)
		if err != nil {
			return ThroughputRow{}, err
		}
		row := ThroughputRow{Alias: spec.Alias, BasePPC: base.PPC(), TCORPPC: tc.PPC()}
		if row.BasePPC > 0 {
			row.Speedup = row.TCORPPC / row.BasePPC
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	f := &ThroughputFigure{Fig: fig, SizeKB: sizeKB, Rows: rows}
	var sum float64
	for _, row := range rows {
		sum += row.Speedup
	}
	if len(rows) > 0 {
		f.AvgSpeedup = sum / float64(len(rows))
	}
	return f, nil
}

// Headline aggregates the paper's abstract-level claims: 13.8% memory
// hierarchy energy decrease, 5.5% total GPU energy decrease, 3.7% FPS
// increase, ~5x Tiling Engine speedup.
type Headline struct {
	MemHierarchyDecrease float64
	GPUEnergyDecrease    float64
	FPSIncrease          float64
	TilingSpeedup        float64
}

// Table renders the headline numbers.
func (h Headline) Table() *Table {
	t := &Table{
		Title:  "Headline results (suite average, 64 KiB Tile Cache)",
		Header: []string{"Metric", "This repro", "Paper"},
	}
	t.AddRow("Memory hierarchy energy decrease", pct(h.MemHierarchyDecrease), "13.8%")
	t.AddRow("Total GPU energy decrease", pct(h.GPUEnergyDecrease), "5.5%")
	t.AddRow("FPS increase", pct(h.FPSIncrease), "3.7%")
	t.AddRow("Tiling Engine speedup", fmt.Sprintf("%.1fx", h.TilingSpeedup), "~5x")
	return t
}

// Headline computes the abstract-level aggregate over the suite at 64 KiB.
func (r *Runner) Headline() (Headline, error) {
	const clock = 600e6
	parts, err := forSuite(r, func(spec workload.Spec) (Headline, error) {
		base, err := r.baseline(spec.Alias, 64)
		if err != nil {
			return Headline{}, err
		}
		tc, err := r.tcorFull(spec.Alias, 64)
		if err != nil {
			return Headline{}, err
		}
		p := Headline{
			MemHierarchyDecrease: 1 - tc.MemHierarchyPJ/base.MemHierarchyPJ,
			GPUEnergyDecrease:    1 - tc.TotalPJ/base.TotalPJ,
			FPSIncrease:          tc.FPS(clock)/base.FPS(clock) - 1,
		}
		if base.PPC() > 0 {
			p.TilingSpeedup = tc.PPC() / base.PPC()
		}
		return p, nil
	})
	if err != nil {
		return Headline{}, err
	}
	// Sum the per-benchmark partials in suite order — float addition is not
	// associative, so a fixed order keeps the averages bit-identical.
	var h Headline
	for _, p := range parts {
		h.MemHierarchyDecrease += p.MemHierarchyDecrease
		h.GPUEnergyDecrease += p.GPUEnergyDecrease
		h.FPSIncrease += p.FPSIncrease
		h.TilingSpeedup += p.TilingSpeedup
	}
	if n := float64(len(parts)); n > 0 {
		h.MemHierarchyDecrease /= n
		h.GPUEnergyDecrease /= n
		h.FPSIncrease /= n
		h.TilingSpeedup /= n
	}
	return h, nil
}

// TableI renders the simulation parameters of Table I.
func TableI() *Table {
	t := &Table{
		Title:  "Table I: GPU simulation parameters",
		Header: []string{"Parameter", "Value"},
	}
	t.AddRow("Tech Specs", "600MHz, 1V, 32nm")
	t.AddRow("Screen Resolution", "1960x768")
	t.AddRow("Tile Size", "32x32")
	t.AddRow("Tile Traversal Order", "Z-order")
	t.AddRow("Main Memory Latency", "50-100 cycles")
	t.AddRow("Main Memory Size", "1GiB")
	t.AddRow("Vertex Cache", "64-bytes/line, 64KiB, 4-way, 1 cycle")
	t.AddRow("Texture Caches (4x)", "64-bytes/line, 64KiB, 4-way, 1 cycle")
	t.AddRow("Tile Cache", "64-bytes/line, 64KiB, 4-way, 1 cycle")
	t.AddRow("L2 Cache", "64-bytes/line, 1MiB, 8-way, 12 cycles")
	return t
}

// TableII renders the benchmark suite with both the published targets and
// the realized statistics of the generated scenes.
func (r *Runner) TableII() (*Table, error) {
	t := &Table{
		Title: "Table II: Evaluated benchmarks (synthetic scenes calibrated to the published statistics)",
		Header: []string{"Benchmark", "Alias", "Installs(M)", "Genre", "Type",
			"PB MiB (target)", "PB MiB (measured)", "Reuse (target)", "Reuse (measured)", "Prims", "Prims/Tile"},
	}
	rows, err := forSuite(r, func(spec workload.Spec) ([]string, error) {
		sc, err := r.Scene(spec.Alias)
		if err != nil {
			return nil, err
		}
		st := sc.Stats()
		typ := "2D"
		if spec.ThreeD {
			typ = "3D"
		}
		return []string{spec.Name, spec.Alias, fmt.Sprintf("%d", spec.Installs), spec.Genre, typ,
			fmt.Sprintf("%.2f", spec.PBFootprintMiB),
			fmt.Sprintf("%.2f", float64(st.PBFootprint)/(1024*1024)),
			fmt.Sprintf("%.2f", spec.AvgPrimReuse),
			fmt.Sprintf("%.2f", st.AvgPrimReuse),
			fmt.Sprintf("%d", st.Primitives),
			fmt.Sprintf("%.1f", st.AvgPrimsTile)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}
