package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"tcor/internal/resilience"
	"tcor/internal/stats"
	"tcor/internal/workload"
)

// Sweep runs jobs through a bounded worker pool and returns their results
// with deterministic ordering: results[i] is jobs[i]'s value regardless of
// completion order, so aggregation over the result slice is reproducible at
// any parallelism level.
//
// par bounds the number of concurrently running jobs; par <= 0 means
// GOMAXPROCS. The context cancels the sweep: jobs not yet started when ctx
// is done are skipped, and the first job failure cancels the remainder.
// The returned error is the lowest-index job error that is not a
// cancellation, falling back to the first cancellation error; nil means
// every job ran and succeeded. Skipped jobs leave the zero value in their
// result slot.
//
// Every multi-benchmark and multi-size study of the harness routes through
// this pool (via forSuite and SweepSlice), which is what makes
// `paperfig -all -parallel N` scale while producing byte-identical tables.
func Sweep[T any](ctx context.Context, par int, jobs []func(context.Context) (T, error)) ([]T, error) {
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(jobs) {
		par = len(jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				// When the caller's context carries a stats.Tracer (or a
				// parent span), each job gets a span attributing its wall
				// time to its slot — how `paperfig -trace` shows where a
				// sweep spends its schedule. With no tracer this is two
				// context lookups per job, each of which is a simulation.
				sp, jctx := stats.StartSpan(ctx, "sweep.job", "experiments")
				sp.SetAttr("index", strconv.Itoa(i))
				sp.SetAttr("worker", strconv.Itoa(worker))
				results[i], errs[i] = runSweepJob(jctx, i, jobs[i])
				if errs[i] != nil {
					sp.SetAttr("error", errs[i].Error())
					cancel()
				}
				sp.End()
			}
		}(w)
	}
	// Workers drain the channel even after cancellation (recording ctx.Err
	// for the skipped indices), so this feed loop never blocks forever.
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return results, err
	}
	return results, cancelErr
}

// runSweepJob runs one job under the pool's safety shell. When the context
// carries a resilience.Injector, the SiteSweep hook evaluates before the job
// — how chaos tests and the checkpoint kill-window test inject latency or
// failures into individual cells without touching the jobs themselves. A
// panicking job (a simulator bug, an injected panic escaping a lower layer)
// is converted into that slot's error instead of crashing the pool's host:
// one poisoned cell fails one sweep, not the whole daemon.
func runSweepJob[T any](ctx context.Context, i int, job func(context.Context) (T, error)) (val T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiments: sweep job %d panicked: %v", i, p)
		}
	}()
	if err := resilience.InjectorFrom(ctx).Inject(ctx, resilience.SiteSweep); err != nil {
		return val, err
	}
	return job(ctx)
}

// SweepSlice maps fn over items through the Sweep pool, preserving item
// order in the result slice.
func SweepSlice[In, Out any](ctx context.Context, par int, items []In,
	fn func(context.Context, In) (Out, error)) ([]Out, error) {
	jobs := make([]func(context.Context) (Out, error), len(items))
	for i := range items {
		item := items[i]
		jobs[i] = func(ctx context.Context) (Out, error) { return fn(ctx, item) }
	}
	return Sweep(ctx, par, jobs)
}

// forSuite evaluates fn for every benchmark of the runner's suite through
// the worker pool and returns the per-benchmark values in suite order. The
// figure builders aggregate over the ordered slice afterwards, so averages
// and table rows are identical at every parallelism level.
func forSuite[T any](r *Runner, fn func(spec workload.Spec) (T, error)) ([]T, error) {
	return SweepSlice(r.baseCtx(), r.Parallel, r.Suite(),
		func(_ context.Context, spec workload.Spec) (T, error) { return fn(spec) })
}
