package experiments

import (
	"sync"

	"tcor/internal/stats"
)

// memo is a per-key, singleflight-style memoization table. The first caller
// of a key computes the value while holding only that key's cell; every
// other caller — of the same key or any other — proceeds without touching
// it. Concurrent callers of the same key block until the first compute
// finishes and then share its result, so each key is computed exactly once
// even under contention. Results (including errors, which are deterministic
// functions of the key here) are cached forever: the Runner's keyspace is
// the benchmark/configuration grid, which is finite and re-read many times.
//
// This replaces the Runner's original single coarse mutex, which serialized
// scene generation and full-system simulation of *different* benchmarks
// behind one lock.
type memo[V any] struct {
	mu sync.Mutex
	m  map[string]*memoCell[V]
}

type memoCell[V any] struct {
	done chan struct{} // closed once val/err are final
	val  V
	err  error
}

// get returns the memoized value for key, running compute at most once per
// key. compute runs outside the map lock, so distinct keys compute
// concurrently. hits/misses, when non-nil, meter the table: a miss is the
// one call that computes; coalesced waiters count as hits (they reuse the
// result).
func (m *memo[V]) get(key string, hits, misses *stats.Counter, compute func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[string]*memoCell[V])
	}
	if c, ok := m.m[key]; ok {
		m.mu.Unlock()
		hits.Inc()
		<-c.done
		return c.val, c.err
	}
	c := &memoCell[V]{done: make(chan struct{})}
	m.m[key] = c
	m.mu.Unlock()
	misses.Inc()

	c.val, c.err = compute()
	close(c.done)
	return c.val, c.err
}
