package experiments

import (
	"sync"

	"tcor/internal/stats"
)

// memo is a per-key, singleflight-style memoization table. The first caller
// of a key computes the value while holding only that key's cell; every
// other caller — of the same key or any other — proceeds without touching
// it. Concurrent callers of the same key block until the first compute
// finishes and then share its result, so each key is computed exactly once
// even under contention.
//
// By default results (including errors, which are deterministic functions
// of the key here) are cached forever: the figure harness's keyspace is the
// benchmark/configuration grid, which is finite and re-read many times. A
// long-running host (the tcord daemon, a sweep service) passes a positive
// capacity instead, which bounds the table to that many completed entries
// with least-recently-used eviction, or calls purge between batches.
// In-flight cells are never evicted — waiters hold them by pointer and the
// leader still publishes into them — and eviction only drops the table's
// reference, so an evicted-then-re-requested key simply recomputes.
//
// This replaces the Runner's original single coarse mutex, which serialized
// scene generation and full-system simulation of *different* benchmarks
// behind one lock.
type memo[V any] struct {
	mu    sync.Mutex
	m     map[string]*memoCell[V]
	clock int64 // logical access time, guarded by mu
}

type memoCell[V any] struct {
	done    chan struct{} // closed once val/err are final
	val     V
	err     error
	lastUse int64 // guarded by memo.mu
}

// completed reports whether the cell's compute has finished (memo.mu held
// or not — the channel close is the synchronization point).
func (c *memoCell[V]) completed() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// get returns the memoized value for key, running compute at most once per
// live key. compute runs outside the map lock, so distinct keys compute
// concurrently. capacity, when positive, bounds the table to that many
// entries by evicting the least recently used completed cells at insert
// time. hits/misses/evictions, when non-nil, meter the table: a miss is the
// one call that computes; coalesced waiters count as hits (they reuse the
// result); evictions count capacity-displaced and purged entries.
func (m *memo[V]) get(key string, capacity int, hits, misses, evictions *stats.Counter, compute func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[string]*memoCell[V])
	}
	m.clock++
	if c, ok := m.m[key]; ok {
		c.lastUse = m.clock
		m.mu.Unlock()
		hits.Inc()
		<-c.done
		return c.val, c.err
	}
	c := &memoCell[V]{done: make(chan struct{}), lastUse: m.clock}
	if capacity > 0 {
		for len(m.m) >= capacity {
			if !m.evictLRULocked(c) {
				break // everything else is in flight; admit over capacity
			}
			evictions.Inc()
		}
	}
	m.m[key] = c
	m.mu.Unlock()
	misses.Inc()

	c.val, c.err = compute()
	close(c.done)
	return c.val, c.err
}

// evictLRULocked drops the least recently used completed cell other than
// keep, reporting whether one existed. Callers hold m.mu.
func (m *memo[V]) evictLRULocked(keep *memoCell[V]) bool {
	var victimKey string
	var victim *memoCell[V]
	for k, c := range m.m {
		if c == keep || !c.completed() {
			continue
		}
		if victim == nil || c.lastUse < victim.lastUse {
			victimKey, victim = k, c
		}
	}
	if victim == nil {
		return false
	}
	delete(m.m, victimKey)
	return true
}

// purge drops every completed entry, counting them into evictions, and
// returns how many were dropped. In-flight computes keep their cells (their
// waiters still resolve) and re-register nothing: the cell stays mapped
// until evicted or purged later.
func (m *memo[V]) purge(evictions *stats.Counter) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for k, c := range m.m {
		if c.completed() {
			delete(m.m, k)
			n++
		}
	}
	evictions.Add(int64(n))
	return n
}

// size returns the number of mapped cells, in flight included (tests).
func (m *memo[V]) size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
