package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tcor/internal/gpu"
	"tcor/internal/resilience"
)

// checkpointChildEnv tells the re-executed test binary to act as the
// kill-and-resume child instead of running the test suite.
const checkpointChildEnv = "TCOR_CHECKPOINT_CHILD"

func TestMain(m *testing.M) {
	if path := os.Getenv(checkpointChildEnv); path != "" {
		checkpointChild(path)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// checkpointChild is the victim process of TestCheckpointKillAndResume: a
// prewarm sweep journaling into path, with injected per-job latency so the
// parent has a wide window to SIGKILL it mid-run.
func checkpointChild(path string) {
	inj := resilience.NewInjector(1)
	inj.Arm(resilience.SiteSweep, resilience.FaultPlan{Rate: 1, Latency: 500 * time.Millisecond})
	ctx := resilience.ContextWithInjector(context.Background(), inj)

	r := NewRunner()
	r.Frames = 1
	r.Benchmarks = []string{"CCS"}
	if _, err := r.OpenCheckpoint(path); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	if err := r.PrewarmContext(ctx, 1); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
}

// checkpointRunner returns a single-benchmark, single-frame runner — the
// smallest grid the prewarm sweep covers (six configurations).
func checkpointRunner() *Runner {
	r := NewRunner()
	r.Frames = 1
	r.Benchmarks = []string{"CCS"}
	return r
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")

	r1 := checkpointRunner()
	if n, err := r1.OpenCheckpoint(path); err != nil || n != 0 {
		t.Fatalf("OpenCheckpoint on a fresh path = (%d, %v), want (0, nil)", n, err)
	}
	res1, err := r1.Run("CCS", "tcor64", gpu.TCOR(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Checkpoint.Close(); err != nil {
		t.Fatal(err)
	}
	if got := r1.Metrics().Snapshot().Get("checkpoint.journaled"); got != 1 {
		t.Fatalf("checkpoint.journaled = %d, want 1", got)
	}

	r2 := checkpointRunner()
	n, err := r2.OpenCheckpoint(path)
	if err != nil || n != 1 {
		t.Fatalf("reopening = (%d, %v), want (1, nil)", n, err)
	}
	res2, err := r2.Run("CCS", "tcor64", gpu.TCOR(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(res1)
	b2, _ := json.Marshal(res2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("restored result is not byte-identical to the original")
	}
	snap := r2.Metrics().Snapshot()
	if got := snap.Get("checkpoint.restored"); got != 1 {
		t.Fatalf("checkpoint.restored = %d, want 1", got)
	}
	if got := snap.Get("checkpoint.journaled"); got != 0 {
		t.Fatalf("checkpoint.journaled = %d on a fully restored run, want 0", got)
	}
}

// TestCheckpointTornAndCorruptTail asserts crash safety: a torn final line
// (no newline) and a record whose content hash does not match are both
// truncated away on open, keeping every intact record before them.
func TestCheckpointTornAndCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	r := checkpointRunner()
	if _, err := r.OpenCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run("CCS", "tcor64", gpu.TCOR(64<<10)); err != nil {
		t.Fatal(err)
	}
	r.Checkpoint.Close()

	intact, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A full line with a lying hash, then a torn half-written line.
	f.WriteString(`{"key":"CCS/evil","cfgSHA":"x","sha":"deadbeef","result":{}}` + "\n")
	f.WriteString(`{"key":"CCS/torn","cfg`)
	f.Close()

	r2 := checkpointRunner()
	n, err := r2.OpenCheckpoint(path)
	if err != nil || n != 1 {
		t.Fatalf("reopening past corruption = (%d, %v), want (1, nil)", n, err)
	}
	r2.Checkpoint.Close()
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != intact.Size() {
		t.Fatalf("journal is %d bytes after reopen, want truncation back to %d", after.Size(), intact.Size())
	}
}

func TestCheckpointFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	r := checkpointRunner()
	if _, err := r.OpenCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	r.Checkpoint.Close()

	other := checkpointRunner()
	other.Frames = 2
	if _, err := other.OpenCheckpoint(path); err == nil ||
		!strings.Contains(err.Error(), "frames=1") {
		t.Fatalf("opening under a different fingerprint = %v, want a frames mismatch error", err)
	}

	if err := os.WriteFile(path, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := checkpointRunner().OpenCheckpoint(path); err == nil ||
		!strings.Contains(err.Error(), "not a "+checkpointFormat+" journal") {
		t.Fatalf("opening a non-journal = %v, want a format error", err)
	}
}

// TestCheckpointMidFileCorruption asserts the record hash covers the whole
// triple, not just the payload: flipping a byte inside a mid-file record's
// key — leaving the line valid JSON and its result bytes untouched — must
// truncate the journal from that record onward, keeping only the records
// before it.
func TestCheckpointMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	r := checkpointRunner()
	if _, err := r.OpenCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	for _, kb := range []int{64, 128, 256} {
		if _, err := r.Run("CCS", fmt.Sprintf("tcor%d", kb), gpu.TCOR(kb<<10)); err != nil {
			t.Fatal(err)
		}
	}
	r.Checkpoint.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n")) // [header, rec1, rec2, rec3, ""]
	if len(lines) < 4 {
		t.Fatalf("journal has %d lines, want header + 3 records", len(lines)-1)
	}
	// Rewrite the middle record's key to a different but equally valid name.
	// The line stays parseable JSON and the payload bytes are untouched, so
	// only the full-triple hash can catch it.
	var rec checkpointRecord
	if err := json.Unmarshal(lines[2], &rec); err != nil {
		t.Fatal(err)
	}
	tampered, err := json.Marshal(checkpointRecord{
		Key: rec.Key + "X", CfgSHA: rec.CfgSHA, SHA: rec.SHA, Result: rec.Result,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	out = append(out, lines[0]...)
	out = append(out, lines[1]...)
	out = append(out, tampered...)
	out = append(out, '\n')
	out = append(out, lines[3]...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := checkpointRunner()
	n, err := r2.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d cells past a corrupt middle record, want only the 1 before it", n)
	}
	r2.Checkpoint.Close()
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := len(lines[0]) + len(lines[1])
	if len(after) != want {
		t.Fatalf("journal is %d bytes after reopen, want truncation to %d (header + first record)", len(after), want)
	}
}

// TestCheckpointCfgChangeDefeatsRestore asserts the config hash pins what a
// memo key meant: reusing a journaled key name with a different
// configuration must recompute, never restore the old answer.
func TestCheckpointCfgChangeDefeatsRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	r := checkpointRunner()
	if _, err := r.OpenCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run("CCS", "tc", gpu.TCOR(64<<10)); err != nil {
		t.Fatal(err)
	}
	r.Checkpoint.Close()

	r2 := checkpointRunner()
	if n, err := r2.OpenCheckpoint(path); err != nil || n != 1 {
		t.Fatalf("reopening = (%d, %v), want (1, nil)", n, err)
	}
	if _, err := r2.Run("CCS", "tc", gpu.TCOR(128<<10)); err != nil {
		t.Fatal(err)
	}
	r2.Checkpoint.Close()
	snap := r2.Metrics().Snapshot()
	if got := snap.Get("checkpoint.restored"); got != 0 {
		t.Fatalf("checkpoint.restored = %d for a changed config, want 0", got)
	}
	if got := snap.Get("checkpoint.journaled"); got != 1 {
		t.Fatalf("checkpoint.journaled = %d, want the recomputed cell journaled", got)
	}
}

// TestCheckpointKillAndResume is the crash-recovery contract end to end: a
// child process sweeps the prewarm grid journaling each cell, the parent
// SIGKILLs it mid-run, and a resumed runner completes the grid — restoring
// the journaled cells, re-executing only the missing ones, with final
// results byte-identical to an uninterrupted run.
func TestCheckpointKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary and runs a multi-simulation sweep")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cp.jsonl")

	cmd := exec.Command(exe, "-test.run", "^$")
	cmd.Env = append(os.Environ(), checkpointChildEnv+"="+path)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill as soon as two cells are journaled (header + 2 record lines).
	// The injected 500ms per-job latency guarantees the third cell is at
	// least half a second away, so the kill lands mid-grid.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("child never journaled two cells within 2m")
		}
		data, _ := os.ReadFile(path)
		if bytes.Count(data, []byte("\n")) >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reaps the SIGKILLed child; its error is the point

	const cells = 6 // one benchmark x the six prewarm configurations
	resumed := checkpointRunner()
	restored, err := resumed.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored < 2 || restored >= cells {
		t.Fatalf("restored %d cells, want at least the 2 observed and fewer than all %d (the kill must land mid-run)", restored, cells)
	}
	if err := resumed.Prewarm(2); err != nil {
		t.Fatal(err)
	}
	snap := resumed.Metrics().Snapshot()
	if got := snap.Get("checkpoint.restored"); got != int64(restored) {
		t.Fatalf("checkpoint.restored = %d, want every one of the %d journaled cells", got, restored)
	}
	if got := snap.Get("checkpoint.journaled"); got != int64(cells-restored) {
		t.Fatalf("checkpoint.journaled = %d, want only the %d un-checkpointed cells re-executed", got, cells-restored)
	}

	// Byte-identity against an uninterrupted run, cell by cell.
	clean := checkpointRunner()
	for _, j := range prewarmConfigs("CCS") {
		want, err := clean.Run(j.alias, j.name, j.cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := resumed.Run(j.alias, j.name, j.cfg)
		if err != nil {
			t.Fatal(err)
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if !bytes.Equal(wb, gb) {
			t.Fatalf("cell %s/%s differs between the resumed and the uninterrupted run", j.alias, j.name)
		}
	}
}
