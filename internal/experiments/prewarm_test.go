package experiments

import "testing"

func TestPrewarmParallelMatchesSequential(t *testing.T) {
	a := fastRunner("CCS", "GTr")
	if err := a.Prewarm(8); err != nil {
		t.Fatal(err)
	}
	figA, err := a.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	b := fastRunner("CCS", "GTr")
	figB, err := b.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for i := range figA.Rows {
		if figA.Rows[i] != figB.Rows[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, figA.Rows[i], figB.Rows[i])
		}
	}
}
