package experiments

import (
	"context"
	"fmt"

	"tcor/internal/geom"
	"tcor/internal/gpu"
	"tcor/internal/workload"
)

// TileSizeRow is one tile-size point of the sensitivity study.
type TileSizeRow struct {
	TileSize    int
	Tiles       int
	AvgReuse    float64 // measured primitive re-use at this tile size
	BasePBL2    int64
	TCORPBL2    int64
	Decrease    float64
	TCORSpeedup float64
	TCORHierPJ  float64
}

// TileSizeSweep varies the tile edge around Table I's 32x32 and re-runs
// baseline and TCOR. Tile size is the TBR architecture's fundamental
// trade-off (§II): smaller tiles shrink the on-chip buffers but multiply
// primitive re-use (each primitive overlaps more tiles), growing the
// Parameter Buffer and amplifying what the replacement policy can win or
// lose. Scenes are regenerated per tile size from the same spec, so the
// *workload* is held fixed while the binning granularity changes.
func (r *Runner) TileSizeSweep(alias string) (*Table, []TileSizeRow, error) {
	spec, err := workload.ByAlias(alias)
	if err != nil {
		return nil, nil, err
	}
	if r.Frames > 0 {
		spec.Frames = r.Frames
	}

	// Generate the geometry ONCE at the canonical 32-pixel tiles, then
	// re-bin the identical primitives at each tile size — the workload is
	// held fixed while only the binning granularity changes (re-generating
	// would recalibrate primitive sizes to the Table II re-use target and
	// hide the effect under study).
	canonical, err := r.Scene(alias)
	if err != nil {
		return nil, nil, err
	}
	frames := make([]workload.Frame, canonical.NumFrames())
	for f := range frames {
		frames[f] = *canonical.Frame(f)
	}

	t := &Table{
		Title:  fmt.Sprintf("Tile-size sensitivity, %s: the TBR trade-off around Table I's 32x32", alias),
		Header: []string{"Tile", "Tiles", "Re-use", "Base PB->L2", "TCOR PB->L2", "Decrease", "TF speedup"},
	}
	// 16-pixel tiles would need 5,904 tile IDs at this resolution —
	// beyond the 12-bit OPT Number/last-tile fields the paper's hardware
	// encodes (Figs. 6, 8) — so the sweep's lower end is 24 pixels.
	rows, err := SweepSlice(r.baseCtx(), r.Parallel, []int{24, 32, 48, 64},
		func(_ context.Context, ts int) (TileSizeRow, error) {
			screen := geom.Screen{Width: r.Screen.Width, Height: r.Screen.Height, TileSize: ts}
			if err := screen.Validate(); err != nil {
				return TileSizeRow{}, err
			}
			scene, err := workload.NewSceneFromFrames(spec, screen, frames)
			if err != nil {
				return TileSizeRow{}, err
			}
			mk := func(c gpu.Config) gpu.Config {
				c.Screen = screen
				return c
			}
			base, err := gpu.Simulate(scene, mk(gpu.Baseline(64*1024)))
			if err != nil {
				return TileSizeRow{}, err
			}
			tc, err := gpu.Simulate(scene, mk(gpu.TCOR(64*1024)))
			if err != nil {
				return TileSizeRow{}, err
			}
			bPB, tPB := base.L2In.PB(), tc.L2In.PB()
			row := TileSizeRow{
				TileSize:   ts,
				Tiles:      screen.NumTiles(),
				AvgReuse:   scene.Stats().AvgPrimReuse,
				BasePBL2:   bPB.Reads + bPB.Writes,
				TCORPBL2:   tPB.Reads + tPB.Writes,
				TCORHierPJ: tc.MemHierarchyPJ,
			}
			if row.BasePBL2 > 0 {
				row.Decrease = 1 - float64(row.TCORPBL2)/float64(row.BasePBL2)
			}
			if b := base.PPC(); b > 0 {
				row.TCORSpeedup = tc.PPC() / b
			}
			return row, nil
		})
	if err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		t.AddRow(fmt.Sprintf("%dx%d", row.TileSize, row.TileSize), fmt.Sprintf("%d", row.Tiles),
			fmt.Sprintf("%.2f", row.AvgReuse),
			fmt.Sprintf("%d", row.BasePBL2), fmt.Sprintf("%d", row.TCORPBL2),
			pct(row.Decrease), fmt.Sprintf("%.1fx", row.TCORSpeedup))
	}
	return t, rows, nil
}
