package experiments

import (
	"context"
	"fmt"
	"sort"

	"tcor/internal/cache"
	"tcor/internal/trace"
)

// RelatedWork extends Fig. 13 with the practical policies the paper's §VI
// discusses: the insertion family (LIP/BIP/DIP), NRU, SRRIP/DRRIP and the
// Shepherd Cache (the prior OPT-emulation approach), all against LRU, OPT
// and the analytic lower bound on the PB-Attributes stream in a 4-way
// cache. The punchline is the paper's: on this access stream none of the
// history-based policies approaches OPT — exact future knowledge is what
// closes the gap, and TCOR gets it for free from the Polygon List Builder.
func (r *Runner) RelatedWork(sizeKB int) (*Table, error) {
	policies := []policySpec{
		policyByName("MRU"),
		{"NRU", cache.NewNRU},
		{"LIP", cache.NewLIP},
		{"BIP", func() cache.Policy { return cache.NewBIP(1) }},
		{"DIP", func() cache.Policy { return cache.NewDIP(1) }},
		policyByName("SRRIP"),
		policyByName("DRRIP"),
		{"Shepherd", func() cache.Policy { return cache.NewShepherd(1) }},
		{"Hawkeye", func() cache.Policy { return cache.NewHawkeye(nil) }},
		{"SHiP", func() cache.Policy { return cache.NewSHiP(nil) }},
		policyByName("LRU"),
		policyByName("OPT"),
	}
	cp := CapacityPrims(float64(sizeKB))

	type row struct {
		name string
		miss float64
	}
	// One sweep job per policy; each job fans the suite out through the same
	// pool via missRatioAvg, and rows come back in declaration order.
	rows, err := SweepSlice(r.baseCtx(), r.Parallel, policies,
		func(_ context.Context, ps policySpec) (row, error) {
			mr, err := r.missRatioAvg(ps, cp, 4)
			if err != nil {
				return row{}, err
			}
			return row{ps.label, mr}, nil
		})
	if err != nil {
		return nil, err
	}
	lb, err := r.lowerBoundAvg(cp)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].miss > rows[j].miss })

	t := &Table{
		Title:  fmt.Sprintf("Related-work policy comparison (§VI): %d KiB 4-way Attribute stream, suite average", sizeKB),
		Note:   "gap closed = share of the LRU-OPT miss gap the policy bridges (negative = worse than LRU)",
		Header: []string{"Policy", "Miss ratio", "Gap closed"},
	}
	var lruMiss, optMiss float64
	for _, rw := range rows {
		switch rw.name {
		case "LRU":
			lruMiss = rw.miss
		case "OPT":
			optMiss = rw.miss
		}
	}
	for _, rw := range rows {
		gap := ""
		if denom := lruMiss - optMiss; denom > 0 && rw.name != "LRU" && rw.name != "OPT" {
			gap = pct((lruMiss - rw.miss) / denom)
		}
		t.AddRow(rw.name, f3(rw.miss), gap)
	}
	t.AddRow("Lower Bound", f3(lb), "")
	return t, nil
}

// ReuseProfile characterizes the PB-Attributes access stream of a
// benchmark: the distribution of reuse intervals (distance in accesses
// between consecutive uses of a primitive), which determines how much any
// history-based replacement policy can achieve and where OPT's advantage
// comes from.
func (r *Runner) ReuseProfile(alias string) (*Table, error) {
	tr, err := r.AttributeTrace(alias)
	if err != nil {
		return nil, err
	}
	last := make(map[trace.Key]int, 4096)
	var intervals []int
	for i, a := range tr {
		if a.Write {
			continue
		}
		if lp, ok := last[a.Key]; ok {
			intervals = append(intervals, i-lp)
		}
		last[a.Key] = i
	}
	sort.Ints(intervals)

	t := &Table{
		Title:  fmt.Sprintf("Reuse-interval profile of %s (PB-Attributes read stream)", alias),
		Header: []string{"Statistic", "Value"},
	}
	t.AddRow("accesses", fmt.Sprintf("%d", len(tr)))
	t.AddRow("primitives", fmt.Sprintf("%d", trace.UniqueKeys(tr)))
	t.AddRow("reuse events", fmt.Sprintf("%d", len(intervals)))
	if len(intervals) == 0 {
		return t, nil
	}
	q := func(f float64) int { return intervals[int(f*float64(len(intervals)-1))] }
	for _, p := range []struct {
		name string
		f    float64
	}{{"p25", 0.25}, {"p50", 0.50}, {"p75", 0.75}, {"p90", 0.90}, {"p99", 0.99}} {
		t.AddRow("interval "+p.name, fmt.Sprintf("%d", q(p.f)))
	}
	// Share of reuses beyond the 48 KiB Attribute Cache capacity — the
	// OPT-vs-LRU battleground.
	cp := CapacityPrims(48)
	beyond := 0
	for _, v := range intervals {
		if v > cp {
			beyond++
		}
	}
	t.AddRow(fmt.Sprintf("intervals > CP(48KB)=%d prims", cp),
		pct(float64(beyond)/float64(len(intervals))))
	return t, nil
}
