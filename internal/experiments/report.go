package experiments

import (
	"fmt"
	"io"
	"time"
)

// WriteReport regenerates a complete markdown results report — the
// machine-written companion to EXPERIMENTS.md — with fresh numbers from
// this runner: headline, every figure's summary statistic, Tables I/II and
// the beyond-the-paper studies. Intended for `paperfig -report out.md`.
func (r *Runner) WriteReport(w io.Writer, generatedAt time.Time) error {
	fmt.Fprintf(w, "# TCOR reproduction results\n\n")
	fmt.Fprintf(w, "Generated %s by `paperfig -report`. All numbers are deterministic.\n\n",
		generatedAt.Format("2006-01-02 15:04 MST"))

	h, err := r.Headline()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Headline (paper: 13.8%% / 5.5%% / 3.7%% / ~5x)\n\n")
	fmt.Fprintf(w, "- memory hierarchy energy decrease: **%.1f%%**\n", 100*h.MemHierarchyDecrease)
	fmt.Fprintf(w, "- total GPU energy decrease: **%.1f%%**\n", 100*h.GPUEnergyDecrease)
	fmt.Fprintf(w, "- FPS increase: **%.1f%%**\n", 100*h.FPSIncrease)
	fmt.Fprintf(w, "- tiling engine speedup: **%.1fx**\n\n", h.TilingSpeedup)

	type figure struct {
		name  string
		run   func() (string, error)
		paper string
	}
	figs := []figure{
		{"Fig. 14 PB→L2 (64 KiB)", func() (string, error) {
			f, err := r.Fig14()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("−%.1f%% average", 100*f.Average), nil
		}, "−33.5%"},
		{"Fig. 15 PB→L2 (128 KiB)", func() (string, error) {
			f, err := r.Fig15()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("−%.1f%% average", 100*f.Average), nil
		}, "−37.1%"},
		{"Fig. 16 PB→memory (64 KiB)", func() (string, error) {
			f, err := r.Fig16()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("−%.1f%% average", 100*f.Average), nil
		}, "−93.0%"},
		{"Fig. 17 PB→memory (128 KiB)", func() (string, error) {
			f, err := r.Fig17()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("−%.1f%% average", 100*f.Average), nil
		}, "−94.1%"},
		{"Fig. 18 memory total (64 KiB)", func() (string, error) {
			f, err := r.Fig18()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("−%.1f%% average", 100*f.Average), nil
		}, "−13.9%"},
		{"Fig. 19 memory total (128 KiB)", func() (string, error) {
			f, err := r.Fig19()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("−%.1f%% average", 100*f.Average), nil
		}, "−13.3%"},
		{"Fig. 20 hierarchy energy (64 KiB)", func() (string, error) {
			f, err := r.Fig20()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("−%.1f%% TCOR, −%.1f%% without L2 enh.", 100*f.AvgTCOR, 100*f.AvgNoL2), nil
		}, "−14.1% / −8.7%"},
		{"Fig. 21 hierarchy energy (128 KiB)", func() (string, error) {
			f, err := r.Fig21()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("−%.1f%% TCOR, −%.1f%% without L2 enh.", 100*f.AvgTCOR, 100*f.AvgNoL2), nil
		}, "−13.6% / −9.3%"},
		{"Fig. 22 total GPU energy", func() (string, error) {
			f, err := r.Fig22()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("−%.1f%% (64 KiB), −%.1f%% (128 KiB)", 100*f.Avg64, 100*f.Avg128), nil
		}, "−5.6% / −5.3%"},
		{"Fig. 23 tiling throughput (64 KiB)", func() (string, error) {
			f, err := r.Fig23()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%.1fx average speedup", f.AvgSpeedup), nil
		}, "4.7x"},
		{"Fig. 24 tiling throughput (128 KiB)", func() (string, error) {
			f, err := r.Fig24()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%.1fx average speedup", f.AvgSpeedup), nil
		}, "5.0x"},
	}
	fmt.Fprintf(w, "## Figures\n\n| Figure | Paper | This run |\n|---|---|---|\n")
	for _, f := range figs {
		val, err := f.run()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %s | %s | %s |\n", f.name, f.paper, val)
	}
	fmt.Fprintln(w)

	t2, err := r.TableII()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Workloads\n\n```\n%s```\n\n", t2.String())

	rel, err := r.RelatedWork(48)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Related-work policies on the PB stream\n\n```\n%s```\n", rel.String())
	return nil
}
