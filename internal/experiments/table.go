// Package experiments regenerates every table and figure of the paper's
// evaluation (§I Fig. 1, §V Figs. 11–24, Tables I–II) from the simulator.
// Each experiment returns a Table — the same rows/series the paper plots —
// so the cmd/paperfig binary, the benchmark harness and the tests all share
// one implementation.
package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Table is a printable experiment result: a title, a header and rows of
// cells. Numeric series used by tests are exposed by the individual
// experiment result types; Table is the presentation layer.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 CSV (header row first); the title and
// note travel as comment lines.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "# %s\n", t.Note)
	}
	w := csv.NewWriter(&b)
	_ = w.Write(t.Header)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// pct formats a ratio as a percentage string.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
