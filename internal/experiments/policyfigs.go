package experiments

import (
	"fmt"

	"tcor/internal/cache"
	"tcor/internal/workload"
)

// MissCurve is one series of a policy study: miss ratio (suite average)
// against cache size.
type MissCurve struct {
	Label      string
	SizesKB    []float64
	MissRatios []float64
}

// PolicyFigure is the result of one of Figs. 1, 11, 12, 13.
type PolicyFigure struct {
	Fig    int
	Curves []MissCurve
}

// Curve returns the series with the given label, or nil.
func (p *PolicyFigure) Curve(label string) *MissCurve {
	for i := range p.Curves {
		if p.Curves[i].Label == label {
			return &p.Curves[i]
		}
	}
	return nil
}

// Table renders the figure as columns of miss ratios per size.
func (p *PolicyFigure) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure %d: miss ratio vs cache size (suite average)", p.Fig),
		Header: []string{"Size(KB)"},
	}
	for _, c := range p.Curves {
		t.Header = append(t.Header, c.Label)
	}
	if len(p.Curves) == 0 {
		return t
	}
	for i, sz := range p.Curves[0].SizesKB {
		row := []string{fmt.Sprintf("%.0f", sz)}
		for _, c := range p.Curves {
			row = append(row, f3(c.MissRatios[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// policySpec names a replacement policy and how to build a fresh instance.
type policySpec struct {
	label string
	make  func() cache.Policy
}

func policyByName(name string) policySpec {
	switch name {
	case "LRU":
		return policySpec{"LRU", cache.NewLRU}
	case "MRU":
		return policySpec{"MRU", cache.NewMRU}
	case "FIFO":
		return policySpec{"FIFO", cache.NewFIFO}
	case "OPT":
		return policySpec{"OPT", cache.NewOPT}
	case "DRRIP":
		return policySpec{"DRRIP (M=2)", func() cache.Policy { return cache.NewDRRIP(1) }}
	case "SRRIP":
		return policySpec{"SRRIP", cache.NewSRRIP}
	case "PLRU":
		return policySpec{"PLRU", cache.NewPLRU}
	default:
		panic("experiments: unknown policy " + name)
	}
}

// CacheCfgFor builds a primitive-granularity cache geometry for a capacity
// of cp primitives and the requested associativity (ways<=0 means fully
// associative). The line count is rounded down to a multiple of the ways.
// The policy figures and the arena share this so "48 KiB, 4-way" means the
// same geometry everywhere.
func CacheCfgFor(cp, ways int) cache.Config {
	if ways <= 0 {
		return cache.Config{Lines: cp, WriteAllocate: true}
	}
	lines := cp / ways * ways
	if lines < ways {
		lines = ways
	}
	return cache.Config{Lines: lines, Ways: ways, WriteAllocate: true}
}

// missRatioAvg simulates the policy over every benchmark's attribute trace
// and returns the suite-average miss ratio. Fully associative LRU takes the
// one-pass Mattson stack-distance path (exact — the cache tests prove the
// two agree to the access); everything else is event-driven.
func (r *Runner) missRatioAvg(ps policySpec, cp, ways int) (float64, error) {
	ratios, err := forSuite(r, func(spec workload.Spec) (float64, error) {
		if ps.label == "LRU" && ways <= 0 {
			p, err := r.LRUProfile(spec.Alias)
			if err != nil {
				return 0, err
			}
			return p.MissRatioAt(cp), nil
		}
		tr, err := r.AttributeTrace(spec.Alias)
		if err != nil {
			return 0, err
		}
		// ps.make() runs inside the sweep job: every benchmark simulates
		// against a fresh policy instance, so no state is shared.
		st, err := cache.Simulate(CacheCfgFor(cp, ways), ps.make(), tr)
		if err != nil {
			return 0, err
		}
		return st.MissRatio(), nil
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, mr := range ratios {
		sum += mr
	}
	return sum / float64(len(ratios)), nil
}

// lowerBoundAvg returns the suite-average lower-bound miss ratio for a
// capacity of cp primitives (§V-A).
func (r *Runner) lowerBoundAvg(cp int) (float64, error) {
	bounds, err := forSuite(r, func(spec workload.Spec) (float64, error) {
		tr, err := r.AttributeTrace(spec.Alias)
		if err != nil {
			return 0, err
		}
		return cache.TraceLowerBoundMissRatio(tr, cp), nil
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, lb := range bounds {
		sum += lb
	}
	return sum / float64(len(bounds)), nil
}

// sweep runs one policy/associativity over the given sizes.
func (r *Runner) sweep(label string, ps policySpec, sizesKB []float64, ways int) (MissCurve, error) {
	c := MissCurve{Label: label, SizesKB: sizesKB}
	for _, sz := range sizesKB {
		mr, err := r.missRatioAvg(ps, CapacityPrims(sz), ways)
		if err != nil {
			return c, err
		}
		c.MissRatios = append(c.MissRatios, mr)
	}
	return c, nil
}

// lbCurve builds the lower-bound series.
func (r *Runner) lbCurve(sizesKB []float64) (MissCurve, error) {
	c := MissCurve{Label: "Lower Bound", SizesKB: sizesKB}
	for _, sz := range sizesKB {
		lb, err := r.lowerBoundAvg(CapacityPrims(sz))
		if err != nil {
			return c, err
		}
		c.MissRatios = append(c.MissRatios, lb)
	}
	return c, nil
}

func sizesRange(from, to, step float64) []float64 {
	var out []float64
	for s := from; s <= to+1e-9; s += step {
		out = append(out, s)
	}
	return out
}

// Fig1 reproduces Figure 1: LRU and OPT miss ratios in a fully associative
// L1 Attribute Cache for increasing cache size.
func (r *Runner) Fig1() (*PolicyFigure, error) {
	sizes := sizesRange(8, 160, 8)
	fig := &PolicyFigure{Fig: 1}
	for _, name := range []string{"LRU", "OPT"} {
		c, err := r.sweep(name, policyByName(name), sizes, 0)
		if err != nil {
			return nil, err
		}
		fig.Curves = append(fig.Curves, c)
	}
	return fig, nil
}

// Fig11 reproduces Figure 11: LRU and OPT against the lower bound, fully
// associative, out to 450 KB. OPT reaches the bound at a fraction of the
// capacity LRU needs (the paper quotes 55 KiB vs 375 KiB, a factor 6.8).
func (r *Runner) Fig11() (*PolicyFigure, error) {
	sizes := sizesRange(10, 450, 20)
	fig := &PolicyFigure{Fig: 11}
	lb, err := r.lbCurve(sizes)
	if err != nil {
		return nil, err
	}
	fig.Curves = append(fig.Curves, lb)
	for _, name := range []string{"LRU", "OPT"} {
		c, err := r.sweep(name, policyByName(name), sizes, 0)
		if err != nil {
			return nil, err
		}
		fig.Curves = append(fig.Curves, c)
	}
	return fig, nil
}

// Fig12 reproduces Figure 12: LRU and OPT for direct-mapped, 2/4/8-way and
// fully associative caches across sizes, against the lower bound.
func (r *Runner) Fig12() (map[string]*PolicyFigure, error) {
	sizes := sizesRange(8, 160, 8)
	assocs := []struct {
		label string
		ways  int
	}{
		{"Direct Mapped", 1},
		{"Associativity 2", 2},
		{"Associativity 4", 4},
		{"Associativity 8", 8},
		{"Fully Associative", 0},
	}
	out := make(map[string]*PolicyFigure, 2)
	for _, polName := range []string{"LRU", "OPT"} {
		fig := &PolicyFigure{Fig: 12}
		lb, err := r.lbCurve(sizes)
		if err != nil {
			return nil, err
		}
		fig.Curves = append(fig.Curves, lb)
		for _, a := range assocs {
			c, err := r.sweep(a.label, policyByName(polName), sizes, a.ways)
			if err != nil {
				return nil, err
			}
			fig.Curves = append(fig.Curves, c)
		}
		out[polName] = fig
	}
	return out, nil
}

// Fig13 reproduces Figure 13: LRU, MRU, DRRIP (M=2) and OPT in a 4-way
// cache against the lower bound.
func (r *Runner) Fig13() (*PolicyFigure, error) {
	sizes := sizesRange(40, 160, 8)
	fig := &PolicyFigure{Fig: 13}
	lb, err := r.lbCurve(sizes)
	if err != nil {
		return nil, err
	}
	fig.Curves = append(fig.Curves, lb)
	for _, name := range []string{"MRU", "DRRIP", "LRU", "OPT"} {
		c, err := r.sweep(policyByName(name).label, policyByName(name), sizes, 4)
		if err != nil {
			return nil, err
		}
		fig.Curves = append(fig.Curves, c)
	}
	return fig, nil
}

// OPTReachParity quantifies the Fig. 11 headline: the smallest simulated
// sizes at which OPT and LRU come within tol of the lower bound, and their
// ratio (the paper reports 6.8x).
func (r *Runner) OPTReachParity(tol float64) (optKB, lruKB, ratio float64, err error) {
	sizes := sizesRange(10, 1200, 10)
	find := func(name string) (float64, error) {
		ps := policyByName(name)
		for _, sz := range sizes {
			cp := CapacityPrims(sz)
			mr, err := r.missRatioAvg(ps, cp, 0)
			if err != nil {
				return 0, err
			}
			lb, err := r.lowerBoundAvg(cp)
			if err != nil {
				return 0, err
			}
			if mr-lb <= tol {
				return sz, nil
			}
		}
		return sizes[len(sizes)-1], nil
	}
	if optKB, err = find("OPT"); err != nil {
		return
	}
	if lruKB, err = find("LRU"); err != nil {
		return
	}
	ratio = lruKB / optKB
	return
}
