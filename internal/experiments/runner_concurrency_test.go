package experiments

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcor/internal/workload"
)

// TestDistinctSceneCallsOverlap is the regression test for the coarse-mutex
// design, where one Runner-wide lock serialized every memoized product:
// two Scene calls for different benchmarks must be in flight at the same
// time. Under the old design the second caller blocks outside the hook and
// this test times out.
func TestDistinctSceneCallsOverlap(t *testing.T) {
	r := fastRunner("CCS", "GTr")
	var entered sync.WaitGroup
	entered.Add(2)
	release := make(chan struct{})
	r.testSceneHook = func(string) {
		entered.Done()
		<-release
	}

	done := make(chan error, 2)
	for _, alias := range []string{"CCS", "GTr"} {
		alias := alias
		go func() {
			_, err := r.Scene(alias)
			done <- err
		}()
	}

	both := make(chan struct{})
	go func() {
		entered.Wait()
		close(both)
	}()
	select {
	case <-both:
		// Both generations are inside the hook simultaneously: the keys
		// lock independently.
	case <-time.After(30 * time.Second):
		t.Fatal("Scene(CCS) and Scene(GTr) never overlapped: scene generation is serialized")
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSceneSingleflight proves the other half of the memo contract:
// concurrent requests for the SAME key coalesce into one computation and
// share its result.
func TestSceneSingleflight(t *testing.T) {
	r := fastRunner("GTr")
	var computes atomic.Int32
	r.testSceneHook = func(string) {
		computes.Add(1)
		// Hold the computation open long enough for the other callers to
		// arrive and park on the memo cell.
		time.Sleep(10 * time.Millisecond)
	}

	const callers = 8
	scenes := make([]*workload.Scene, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc, err := r.Scene("GTr")
			if err != nil {
				t.Error(err)
				return
			}
			scenes[i] = sc
		}()
	}
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Errorf("scene computed %d times for one key, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if scenes[i] != scenes[0] {
			t.Errorf("caller %d got a different *Scene than caller 0", i)
		}
	}
}

// TestRunSingleflightDistinctConfigs checks that runs memoize per
// (benchmark, config) key: the same key coalesces, different keys don't
// share results.
func TestRunSingleflightDistinctConfigs(t *testing.T) {
	r := fastRunner("GTr")
	cfgA := prewarmConfigs("GTr")[0]
	cfgB := prewarmConfigs("GTr")[1]

	var wg sync.WaitGroup
	results := make([]interface{}, 4)
	for i := 0; i < 4; i++ {
		i := i
		j := cfgA
		if i >= 2 {
			j = cfgB
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Run(j.alias, j.name, j.cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()

	if results[0] != results[1] {
		t.Error("same-key Run calls returned distinct results")
	}
	if results[2] != results[3] {
		t.Error("same-key Run calls returned distinct results")
	}
	if results[0] == results[2] {
		t.Error("distinct-config Run calls shared one result")
	}
}
