package experiments

import (
	"context"
	"fmt"

	"tcor/internal/gpu"
	"tcor/internal/tiling"
)

// AblationRow is one configuration of the ablation study.
type AblationRow struct {
	Name string
	// PBL2 is Parameter Buffer accesses to the L2; PBMem to main memory.
	PBL2, PBMem int64
	// HierPJ is memory-hierarchy energy.
	HierPJ float64
	// PPC is Tile Fetcher throughput.
	PPC float64
}

// AblationResult is the full ablation over one benchmark.
type AblationResult struct {
	Benchmark string
	SizeKB    int
	Rows      []AblationRow
}

// Row returns the named row, or nil.
func (a *AblationResult) Row(name string) *AblationRow {
	for i := range a.Rows {
		if a.Rows[i].Name == name {
			return &a.Rows[i]
		}
	}
	return nil
}

// Table renders the ablation.
func (a *AblationResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Ablation study (%s, %d KiB Tile Cache): each TCOR mechanism removed in isolation",
			a.Benchmark, a.SizeKB),
		Header: []string{"Configuration", "PB->L2", "PB->Mem", "Hier. energy (mJ)", "TF PPC"},
	}
	for _, r := range a.Rows {
		t.AddRow(r.Name, fmt.Sprintf("%d", r.PBL2), fmt.Sprintf("%d", r.PBMem),
			fmt.Sprintf("%.3f", r.HierPJ/1e9), f3(r.PPC))
	}
	return t
}

// Ablation runs the design-choice studies DESIGN.md calls out on one
// benchmark: full TCOR, then TCOR with each mechanism disabled in turn
// (interleaved PB-Lists layout, XOR indexing, write bypass, L2
// enhancements), plus a scanline-traversal variant and the baseline.
func (r *Runner) Ablation(alias string, sizeKB int) (*AblationResult, error) {
	bytes := tileCacheBytes(sizeKB)
	configs := []struct {
		name string
		cfg  gpu.Config
	}{
		{"TCOR (full)", gpu.TCOR(bytes)},
		{"no interleaved layout", func() gpu.Config {
			c := gpu.TCOR(bytes)
			c.InterleavedLists = false
			return c
		}()},
		{"no XOR indexing", func() gpu.Config {
			c := gpu.TCOR(bytes)
			c.XORIndex = false
			return c
		}()},
		{"no write bypass", func() gpu.Config {
			c := gpu.TCOR(bytes)
			c.WriteBypass = false
			return c
		}()},
		{"no L2 enhancements", gpu.TCORNoL2(bytes)},
		{"scanline traversal", func() gpu.Config {
			c := gpu.TCOR(bytes)
			c.Order = tiling.OrderScanline
			return c
		}()},
		{"hilbert traversal", func() gpu.Config {
			c := gpu.TCOR(bytes)
			c.Order = tiling.OrderHilbert
			return c
		}()},
		{"baseline", gpu.Baseline(bytes)},
	}
	rows, err := SweepSlice(r.baseCtx(), r.Parallel, configs,
		func(_ context.Context, c struct {
			name string
			cfg  gpu.Config
		}) (AblationRow, error) {
			res, err := r.Run(alias, fmt.Sprintf("abl-%s-%d", c.name, sizeKB), c.cfg)
			if err != nil {
				return AblationRow{}, err
			}
			pb := res.L2In.PB()
			pbm := res.DRAMIn.PB()
			return AblationRow{
				Name:   c.name,
				PBL2:   pb.Reads + pb.Writes,
				PBMem:  pbm.Reads + pbm.Writes,
				HierPJ: res.MemHierarchyPJ,
				PPC:    res.PPC(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Benchmark: alias, SizeKB: sizeKB, Rows: rows}, nil
}
