package experiments

import (
	"strings"
	"testing"
	"time"
)

// fastRunner restricts the suite and frame count to keep tests quick.
func fastRunner(benchmarks ...string) *Runner {
	r := NewRunner()
	r.Frames = 1
	if len(benchmarks) > 0 {
		r.Benchmarks = benchmarks
	}
	return r
}

func TestFig1OPTNeverWorseThanLRU(t *testing.T) {
	r := fastRunner("CCS", "DDS", "SoD")
	fig, err := r.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	lru, opt := fig.Curve("LRU"), fig.Curve("OPT")
	if lru == nil || opt == nil {
		t.Fatal("missing curves")
	}
	for i := range lru.SizesKB {
		if opt.MissRatios[i] > lru.MissRatios[i]+1e-9 {
			t.Errorf("size %.0fKB: OPT %.3f > LRU %.3f",
				lru.SizesKB[i], opt.MissRatios[i], lru.MissRatios[i])
		}
	}
	// Bigger caches never miss more (fully associative LRU inclusion).
	for i := 1; i < len(lru.MissRatios); i++ {
		if lru.MissRatios[i] > lru.MissRatios[i-1]+1e-9 {
			t.Errorf("LRU miss ratio increased with size at %.0fKB", lru.SizesKB[i])
		}
	}
	// Table renders.
	tab := fig.Table()
	if len(tab.Rows) != len(lru.SizesKB) || !strings.Contains(tab.String(), "OPT") {
		t.Error("figure table malformed")
	}
}

func TestFig11RespectsLowerBound(t *testing.T) {
	r := fastRunner("CCS", "GTr")
	fig, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	lb, lru, opt := fig.Curve("Lower Bound"), fig.Curve("LRU"), fig.Curve("OPT")
	for i := range lb.SizesKB {
		if opt.MissRatios[i] < lb.MissRatios[i]-1e-9 {
			t.Errorf("size %.0f: OPT %.4f below the lower bound %.4f",
				lb.SizesKB[i], opt.MissRatios[i], lb.MissRatios[i])
		}
		if lru.MissRatios[i] < opt.MissRatios[i]-1e-9 {
			t.Errorf("size %.0f: LRU beats OPT", lb.SizesKB[i])
		}
	}
}

func TestOPTReachParity(t *testing.T) {
	r := fastRunner("CCS", "GTr", "SoD")
	optKB, lruKB, ratio, err := r.OPTReachParity(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if optKB >= lruKB {
		t.Errorf("OPT reaches the bound at %.0fKB, LRU at %.0fKB — OPT must be earlier", optKB, lruKB)
	}
	if ratio < 1.5 {
		t.Errorf("LRU/OPT capacity ratio = %.1f, want clearly above 1 (paper: 6.8)", ratio)
	}
}

func TestFig12AssociativityOrdering(t *testing.T) {
	r := fastRunner("CCS", "DDS")
	figs, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"LRU", "OPT"} {
		fig := figs[pol]
		dm := fig.Curve("Direct Mapped")
		fa := fig.Curve("Fully Associative")
		lb := fig.Curve("Lower Bound")
		if dm == nil || fa == nil || lb == nil {
			t.Fatalf("%s: missing curves", pol)
		}
		worse, n := 0, len(dm.MissRatios)
		for i := 0; i < n; i++ {
			if fa.MissRatios[i] > dm.MissRatios[i]+1e-9 {
				worse++
			}
			if fa.MissRatios[i] < lb.MissRatios[i]-1e-9 {
				t.Errorf("%s: fully associative beats the lower bound at %.0fKB", pol, dm.SizesKB[i])
			}
		}
		// Full associativity should essentially never lose to direct mapped.
		if worse > n/10 {
			t.Errorf("%s: fully associative worse than direct mapped at %d/%d sizes", pol, worse, n)
		}
	}
}

func TestFig13PolicyOrdering(t *testing.T) {
	r := fastRunner("CCS", "SoD", "DDS")
	fig, err := r.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	mru := fig.Curve("MRU")
	lru := fig.Curve("LRU")
	opt := fig.Curve("OPT")
	// Average over sizes: the paper's ordering MRU worst, OPT best.
	avg := func(c *MissCurve) float64 {
		var s float64
		for _, v := range c.MissRatios {
			s += v
		}
		return s / float64(len(c.MissRatios))
	}
	if !(avg(opt) < avg(lru) && avg(lru) < avg(mru)) {
		t.Errorf("policy ordering broken: OPT %.3f LRU %.3f MRU %.3f",
			avg(opt), avg(lru), avg(mru))
	}
}

func TestFig14TCORReducesPBL2(t *testing.T) {
	r := fastRunner("CCS", "DDS")
	fig, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		if row.Decrease <= 0 {
			t.Errorf("%s: decrease %.2f%%, want positive", row.Alias, 100*row.Decrease)
		}
	}
	if fig.Average <= 0.05 {
		t.Errorf("average decrease %.2f%% too small", 100*fig.Average)
	}
	if !strings.Contains(fig.Table().String(), "Figure 14") {
		t.Error("table title")
	}
}

func TestFig16NearlyEliminatesPBMemTraffic(t *testing.T) {
	r := fastRunner("CCS", "DDS")
	fig, err := r.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		switch row.Alias {
		case "CCS": // small PB: complete elimination, as in the paper
			if row.TCORReads+row.TCORWrites != 0 {
				t.Errorf("CCS: PB memory traffic %d, want 0", row.TCORReads+row.TCORWrites)
			}
		case "DDS": // PB larger than the L2: partial, but still a big cut
			if row.Decrease < 0.3 {
				t.Errorf("DDS: decrease %.1f%%, want substantial", 100*row.Decrease)
			}
		}
	}
}

func TestFig20EnergyOrdering(t *testing.T) {
	r := fastRunner("CCS", "DDS")
	fig, err := r.Fig20()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		if !(row.TCORPJ <= row.NoL2PJ && row.NoL2PJ <= row.BasePJ) {
			t.Errorf("%s: energy ordering broken: base %.0f noL2 %.0f tcor %.0f",
				row.Alias, row.BasePJ, row.NoL2PJ, row.TCORPJ)
		}
	}
	if fig.AvgTCOR < fig.AvgNoL2 {
		t.Error("full TCOR average saving below the no-L2 variant")
	}
}

func TestFig22And23Positive(t *testing.T) {
	r := fastRunner("CCS")
	g, err := r.Fig22()
	if err != nil {
		t.Fatal(err)
	}
	if g.Avg64 <= 0 || g.Avg128 <= 0 {
		t.Errorf("GPU energy decreases = %.2f%%/%.2f%%", 100*g.Avg64, 100*g.Avg128)
	}
	th, err := r.Fig23()
	if err != nil {
		t.Fatal(err)
	}
	if th.AvgSpeedup < 1.5 {
		t.Errorf("tile fetcher speedup %.2fx, want > 1.5", th.AvgSpeedup)
	}
	for _, row := range th.Rows {
		if row.TCORPPC > 1 || row.BasePPC > 1 {
			t.Errorf("%s: PPC above 1 primitive/cycle", row.Alias)
		}
	}
}

func TestHeadlineShape(t *testing.T) {
	r := fastRunner("CCS", "SoD")
	h, err := r.Headline()
	if err != nil {
		t.Fatal(err)
	}
	if h.MemHierarchyDecrease <= 0 || h.GPUEnergyDecrease <= 0 ||
		h.FPSIncrease <= 0 || h.TilingSpeedup <= 1 {
		t.Errorf("headline not in the paper's direction: %+v", h)
	}
	if h.GPUEnergyDecrease >= h.MemHierarchyDecrease {
		t.Error("total GPU saving must be diluted relative to hierarchy saving")
	}
	if !strings.Contains(h.Table().String(), "13.8%") {
		t.Error("headline table should cite the paper numbers")
	}
}

func TestFig910Example(t *testing.T) {
	lru, opt, err := Fig910Totals()
	if err != nil {
		t.Fatal(err)
	}
	if opt >= lru {
		t.Errorf("example: OPT L2 accesses %d >= LRU %d", opt, lru)
	}
	tab, err := Fig910()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	// The paper's narrative: the third write bypasses under OPT.
	if !strings.Contains(out, "byp.") {
		t.Error("expected a bypass in the example")
	}
	if len(tab.Rows) != 13 { // 3 writes + 9 reads + totals
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestTableIAndII(t *testing.T) {
	t1 := TableI()
	if !strings.Contains(t1.String(), "Z-order") {
		t.Error("Table I content")
	}
	r := fastRunner()
	t2, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 10 {
		t.Errorf("Table II rows = %d", len(t2.Rows))
	}
	if !strings.Contains(t2.String(), "Candy Crush Saga") {
		t.Error("Table II content")
	}
}

func TestAblation(t *testing.T) {
	r := fastRunner("CCS")
	a, err := r.Ablation("CCS", 64)
	if err != nil {
		t.Fatal(err)
	}
	full := a.Row("TCOR (full)")
	base := a.Row("baseline")
	noLayout := a.Row("no interleaved layout")
	noL2 := a.Row("no L2 enhancements")
	if full == nil || base == nil || noLayout == nil || noL2 == nil {
		t.Fatal("missing ablation rows")
	}
	if full.PBL2 >= base.PBL2 {
		t.Error("full TCOR should beat the baseline on PB L2 traffic")
	}
	if full.PBL2 >= noLayout.PBL2 {
		t.Error("removing the interleaved layout should hurt PB L2 traffic")
	}
	if full.PBMem > noL2.PBMem {
		t.Error("removing the L2 enhancements should not reduce PB memory traffic")
	}
	if full.PPC <= base.PPC {
		t.Error("full TCOR should out-throughput the baseline")
	}
	if !strings.Contains(a.Table().String(), "Ablation") {
		t.Error("ablation table")
	}
}

func TestRunnerMemoization(t *testing.T) {
	r := fastRunner("CCS")
	a, err := r.Scene("CCS")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.Scene("CCS")
	if a != b {
		t.Error("scenes not memoized")
	}
	tr1, err := r.AttributeTrace("CCS")
	if err != nil {
		t.Fatal(err)
	}
	tr2, _ := r.AttributeTrace("CCS")
	if &tr1[0] != &tr2[0] {
		t.Error("traces not memoized")
	}
	if _, err := r.Scene("nope"); err == nil {
		t.Error("unknown alias must fail")
	}
}

func TestCapacityPrims(t *testing.T) {
	if CapacityPrims(48) != 48*1024/192 {
		t.Errorf("CapacityPrims(48) = %d", CapacityPrims(48))
	}
	if CapacityPrims(0.01) != 1 {
		t.Error("capacity floor is one primitive")
	}
}

func TestParallelRenderers(t *testing.T) {
	r := fastRunner("SoD")
	p, err := r.ParallelRenderers("SoD", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Points) < 5 {
		t.Fatalf("points = %d", len(p.Points))
	}
	// FPS is non-decreasing in renderer count for both configurations.
	for i := 1; i < len(p.Points); i++ {
		if p.Points[i].BaseFPS < p.Points[i-1].BaseFPS-1e-9 ||
			p.Points[i].TCORFPS < p.Points[i-1].TCORFPS-1e-9 {
			t.Fatalf("FPS regressed with more renderers at point %d", i)
		}
	}
	// TCOR keeps scaling past the baseline's knee (the paper's §VII
	// motivation: the faster Tiling Engine feeds more renderers).
	if p.TCORKnee <= p.BaseKnee {
		t.Errorf("TCOR knee %d <= baseline knee %d", p.TCORKnee, p.BaseKnee)
	}
	last := p.Points[len(p.Points)-1]
	if last.TCORFPS <= last.BaseFPS {
		t.Error("TCOR must outscale the baseline at high renderer counts")
	}
	if got := p.Table().String(); got == "" {
		t.Error("empty table")
	}
}

func TestRelatedWorkComparison(t *testing.T) {
	r := fastRunner("CCS", "SoD")
	tab, err := r.RelatedWork(48)
	if err != nil {
		t.Fatal(err)
	}
	// Rows are sorted worst-first; OPT must be the best policy (last
	// before the lower bound) and MRU the worst (first).
	if tab.Rows[0][0] != "MRU" {
		t.Errorf("worst policy = %s, want MRU", tab.Rows[0][0])
	}
	n := len(tab.Rows)
	if tab.Rows[n-1][0] != "Lower Bound" || tab.Rows[n-2][0] != "OPT" {
		t.Errorf("best rows = %v / %v, want OPT then Lower Bound",
			tab.Rows[n-2][0], tab.Rows[n-1][0])
	}
	if !strings.Contains(tab.String(), "Shepherd") {
		t.Error("shepherd missing from the comparison")
	}
}

func TestReuseProfile(t *testing.T) {
	r := fastRunner("TRu")
	tab, err := r.ReuseProfile("TRu")
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"p50", "p99", "reuse events", "intervals >"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile missing %q", want)
		}
	}
	if _, err := r.ReuseProfile("nope"); err == nil {
		t.Error("unknown alias must fail")
	}
}

func TestTBRvsIMR(t *testing.T) {
	r := fastRunner("SoD")
	ratio, err := r.IMRRatio("SoD")
	if err != nil {
		t.Fatal(err)
	}
	// The §II background claim: TBR roughly halves external traffic
	// (Antochi et al.: 1.96x). Accept anything clearly above parity.
	if ratio < 1.3 {
		t.Errorf("IMR/TBR traffic ratio = %.2fx, want clearly above 1 (paper cites ~1.96x)", ratio)
	}
	tab, err := r.TBRvsIMR("SoD")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "traffic ratio") {
		t.Error("table malformed")
	}
}

func TestSizeSweep(t *testing.T) {
	r := fastRunner("GTr")
	tab, rows, err := r.SizeSweep("GTr")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 || len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The baseline's PB L2 traffic decreases monotonically with cache size.
	for i := 1; i < len(rows); i++ {
		if rows[i].BasePBL2 > rows[i-1].BasePBL2 {
			t.Errorf("baseline PB traffic grew from %d to %d KiB",
				rows[i-1].SizeKB, rows[i].SizeKB)
		}
	}
	// TCOR wins at the paper's sizes.
	for _, row := range rows {
		if row.SizeKB <= 128 && row.Decrease <= 0 {
			t.Errorf("%d KiB: no decrease", row.SizeKB)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Title:  "t",
		Note:   "n",
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "with,comma")
	out := tab.CSV()
	want := "# t\n# n\na,b\n1,\"with,comma\"\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestFalseOverlap(t *testing.T) {
	r := fastRunner("TRu") // sliver-heavy: bbox binning hurts
	infl, err := r.FalseOverlapInflation("TRu")
	if err != nil {
		t.Fatal(err)
	}
	if infl <= 1 {
		t.Errorf("bbox binning inflation = %.2fx, must exceed exact binning", infl)
	}
	tab, err := r.FalseOverlap("TRu")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestStackProfilePathMatchesSimulation(t *testing.T) {
	// The fast LRU path (Mattson stack distances) must agree with the
	// event-driven simulator the other policies use.
	r := fastRunner("GTr")
	tr, err := r.AttributeTrace("GTr")
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.LRUProfile("GTr")
	if err != nil {
		t.Fatal(err)
	}
	for _, sizeKB := range []float64{16, 48, 96} {
		cp := CapacityPrims(sizeKB)
		st, err := cacheSimLRU(cp, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.MissesAt(cp); got != st {
			t.Errorf("%vKB: profile %d misses, simulator %d", sizeKB, got, st)
		}
	}
}

func TestWriteReport(t *testing.T) {
	r := fastRunner("CCS")
	var b strings.Builder
	if err := r.WriteReport(&b, time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TCOR reproduction results", "Headline", "Fig. 16", "Related-work", "2026-07-04",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestTileSizeSweep(t *testing.T) {
	r := fastRunner("GTr")
	tab, rows, err := r.TileSizeSweep("GTr")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Smaller tiles mean more tiles and more re-use for the SAME geometry.
	for i := 1; i < len(rows); i++ {
		if rows[i].Tiles >= rows[i-1].Tiles {
			t.Errorf("tile count must shrink with larger tiles: %+v", rows)
		}
		if rows[i].AvgReuse > rows[i-1].AvgReuse+1e-9 {
			t.Errorf("re-use must not grow with larger tiles: %.2f -> %.2f",
				rows[i-1].AvgReuse, rows[i].AvgReuse)
		}
	}
	// TCOR wins at every granularity.
	for _, row := range rows {
		if row.Decrease <= 0 {
			t.Errorf("%dpx tiles: no decrease", row.TileSize)
		}
	}
}
