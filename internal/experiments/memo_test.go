package experiments

import (
	"fmt"
	"sync"
	"testing"

	"tcor/internal/stats"
)

// meters builds a counter triple for direct memo tests.
func meters() (hits, misses, evictions *stats.Counter) {
	return &stats.Counter{}, &stats.Counter{}, &stats.Counter{}
}

func TestMemoCapacityBoundsTable(t *testing.T) {
	var m memo[int]
	hits, misses, ev := meters()
	for i := 0; i < 10; i++ {
		v, err := m.get(fmt.Sprintf("k%d", i), 3, hits, misses, ev, func() (int, error) { return i, nil })
		if err != nil || v != i {
			t.Fatalf("get(k%d) = %d, %v", i, v, err)
		}
	}
	if got := m.size(); got != 3 {
		t.Fatalf("table holds %d entries, want capacity 3", got)
	}
	if got := ev.Load(); got != 7 {
		t.Fatalf("evictions = %d, want 7 (10 inserts into capacity 3)", got)
	}
	if hits.Load() != 0 || misses.Load() != 10 {
		t.Fatalf("hits/misses = %d/%d, want 0/10", hits.Load(), misses.Load())
	}
}

func TestMemoEvictsLeastRecentlyUsed(t *testing.T) {
	var m memo[string]
	hits, misses, ev := meters()
	get := func(key string) {
		t.Helper()
		if _, err := m.get(key, 2, hits, misses, ev, func() (string, error) { return key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // touch a: b becomes the LRU victim
	get("c") // evicts b
	missesBefore := misses.Load()
	get("a") // still cached
	if misses.Load() != missesBefore {
		t.Fatal("a was evicted; want b (the least recently used)")
	}
	get("b") // recomputes
	if misses.Load() != missesBefore+1 {
		t.Fatal("b still cached; want it evicted as the LRU entry")
	}
}

func TestMemoNeverEvictsInFlight(t *testing.T) {
	var m memo[int]
	hits, misses, ev := meters()
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.get("slow", 1, hits, misses, ev, func() (int, error) { //nolint:errcheck
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started
	// The table is at capacity with only an in-flight cell: new keys must
	// be admitted over capacity rather than evicting it.
	if v, err := m.get("other", 1, hits, misses, ev, func() (int, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("get(other) = %d, %v", v, err)
	}
	close(release)
	wg.Wait()
	// The slow cell survived: a second get is a hit, not a recompute.
	missesBefore := misses.Load()
	if v, err := m.get("slow", 1, hits, misses, ev, func() (int, error) { return -1, nil }); err != nil || v != 42 {
		t.Fatalf("get(slow) = %d, %v; want the original 42", v, err)
	}
	if misses.Load() != missesBefore {
		t.Fatal("slow was recomputed; the in-flight cell must not be evicted")
	}
}

func TestMemoPurge(t *testing.T) {
	var m memo[int]
	hits, misses, ev := meters()
	for i := 0; i < 4; i++ {
		m.get(fmt.Sprintf("k%d", i), 0, hits, misses, ev, func() (int, error) { return i, nil }) //nolint:errcheck
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.get("inflight", 0, hits, misses, ev, func() (int, error) { //nolint:errcheck
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	if n := m.purge(ev); n != 4 {
		t.Fatalf("purge dropped %d entries, want 4 (the in-flight cell survives)", n)
	}
	if got := ev.Load(); got != 4 {
		t.Fatalf("evictions = %d, want 4 after purge", got)
	}
	if got := m.size(); got != 1 {
		t.Fatalf("table holds %d entries after purge, want the 1 in-flight cell", got)
	}
	close(release)
	wg.Wait()
}

func TestMemoBoundedConcurrency(t *testing.T) {
	// Hammer a tiny capacity from many goroutines: no races (run under
	// -race), no lost results, and the bound holds afterwards.
	var m memo[int]
	hits, misses, ev := meters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g+i)%10)
				want := (g + i) % 10
				v, err := m.get(key, 4, hits, misses, ev, func() (int, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("get(%s) = %d, %v; want %d", key, v, err, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := m.size(); got > 4 {
		t.Fatalf("table holds %d entries, want <= capacity 4", got)
	}
	if hits.Load()+misses.Load() != 400 {
		t.Fatalf("hits+misses = %d, want 400", hits.Load()+misses.Load())
	}
}

func TestRunnerPurgeMemoAndMetering(t *testing.T) {
	r := NewRunner()
	r.Frames = 1
	if _, err := r.Scene("CCS"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Binning("CCS"); err != nil {
		t.Fatal(err)
	}
	if n := r.PurgeMemo(); n != 2 {
		t.Fatalf("PurgeMemo dropped %d entries, want 2 (scene + binning)", n)
	}
	snap := r.Metrics().Snapshot()
	if got := snap.Get("memo.scenes.evictions"); got != 1 {
		t.Fatalf("memo.scenes.evictions = %d, want 1", got)
	}
	if got := snap.Get("memo.bins.evictions"); got != 1 {
		t.Fatalf("memo.bins.evictions = %d, want 1", got)
	}
	// The purged scene recomputes on next use.
	missesBefore := r.Metrics().Snapshot().Get("memo.scenes.misses")
	if _, err := r.Scene("CCS"); err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics().Snapshot().Get("memo.scenes.misses"); got != missesBefore+1 {
		t.Fatalf("memo.scenes.misses = %d after purge+reuse, want %d", got, missesBefore+1)
	}
}
