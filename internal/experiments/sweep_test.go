package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSweepPreservesJobOrder(t *testing.T) {
	// Jobs finish in reverse submission order (later jobs sleep less), yet
	// results must land at their submission index.
	const n = 16
	jobs := make([]func(context.Context) (int, error), n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return i * i, nil
		}
	}
	got, err := Sweep(context.Background(), 8, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestSweepBoundsConcurrency(t *testing.T) {
	const par, n = 3, 20
	var inFlight, peak atomic.Int32
	jobs := make([]func(context.Context) (int, error), n)
	for i := range jobs {
		jobs[i] = func(context.Context) (int, error) {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			return 0, nil
		}
	}
	if _, err := Sweep(context.Background(), par, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > par {
		t.Errorf("observed %d concurrent jobs, want <= %d", p, par)
	}
}

func TestSweepDefaultParallelism(t *testing.T) {
	// par <= 0 must still run every job (GOMAXPROCS workers).
	for _, par := range []int{0, -1} {
		got, err := Sweep(context.Background(), par,
			[]func(context.Context) (string, error){
				func(context.Context) (string, error) { return "a", nil },
				func(context.Context) (string, error) { return "b", nil },
			})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if got[0] != "a" || got[1] != "b" {
			t.Fatalf("par=%d: got %v", par, got)
		}
	}
}

func TestSweepFirstErrorCancelsRemainder(t *testing.T) {
	errBoom := errors.New("boom")
	var ran atomic.Int32
	jobs := make([]func(context.Context) (int, error), 10)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			ran.Add(1)
			if i == 1 {
				return 0, errBoom
			}
			return i, nil
		}
	}
	// par=1 makes the schedule deterministic: job 1 fails, jobs 2.. are
	// skipped by the cancelled context.
	results, err := Sweep(context.Background(), 1, jobs)
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want the job error, not a cancellation", err)
	}
	if results[0] != 0 {
		t.Errorf("results[0] = %d", results[0])
	}
	if n := ran.Load(); n != 2 {
		t.Errorf("%d jobs ran, want 2 (job 0, then the failing job 1)", n)
	}
	for i := 2; i < 10; i++ {
		if results[i] != 0 {
			t.Errorf("skipped job %d left a non-zero result %d", i, results[i])
		}
	}
}

func TestSweepPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	jobs := []func(context.Context) (int, error){
		func(context.Context) (int, error) { ran.Add(1); return 1, nil },
		func(context.Context) (int, error) { ran.Add(1); return 2, nil },
	}
	_, err := Sweep(ctx, 2, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d jobs ran under a cancelled context", ran.Load())
	}
}

func TestSweepEmptyAndNilContext(t *testing.T) {
	got, err := Sweep[int](nil, 4, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: %v, %v", got, err)
	}
	one, err := Sweep(nil, 4, []func(context.Context) (int, error){
		func(context.Context) (int, error) { return 7, nil },
	})
	if err != nil || one[0] != 7 {
		t.Fatalf("nil-ctx sweep: %v, %v", one, err)
	}
}

func TestSweepSliceMapsInOrder(t *testing.T) {
	items := []int{5, 3, 9, 1}
	got, err := SweepSlice(context.Background(), 4, items,
		func(_ context.Context, v int) (string, error) {
			return fmt.Sprintf("v%d", v), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"v5", "v3", "v9", "v1"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSweepResultIndependentOfParallelism(t *testing.T) {
	// The same job set must produce an identical result slice at every
	// parallelism level — the property the figure builders rely on.
	run := func(par int) []int {
		jobs := make([]func(context.Context) (int, error), 12)
		for i := range jobs {
			i := i
			jobs[i] = func(context.Context) (int, error) { return 3*i + 1, nil }
		}
		got, err := Sweep(context.Background(), par, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	want := run(1)
	for _, par := range []int{2, 4, 8} {
		got := run(par)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("par=%d: results[%d] = %d, want %d", par, i, got[i], want[i])
			}
		}
	}
}

func TestSweepConcurrentSweepsShareNothing(t *testing.T) {
	// Two sweeps over the same pool primitive must not interfere.
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs := make([]func(context.Context) (int, error), 8)
			for i := range jobs {
				i := i
				jobs[i] = func(context.Context) (int, error) { return s*100 + i, nil }
			}
			got, err := Sweep(context.Background(), 3, jobs)
			if err != nil {
				t.Error(err)
				return
			}
			for i, v := range got {
				if v != s*100+i {
					t.Errorf("sweep %d: results[%d] = %d", s, i, v)
				}
			}
		}()
	}
	wg.Wait()
}
