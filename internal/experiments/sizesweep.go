package experiments

import (
	"context"
	"fmt"

	"tcor/internal/gpu"
)

// SizeSweepRow is one Tile Cache size point.
type SizeSweepRow struct {
	SizeKB      int
	BasePBL2    int64
	TCORPBL2    int64
	Decrease    float64
	TCORHierPJ  float64
	TCORSpeedup float64
}

// SizeSweep extends the paper's two-point (64/128 KiB) evaluation into a
// Tile Cache size sweep, showing where TCOR's advantage saturates: once the
// Attribute Cache holds the working set, bigger caches stop paying.
func (r *Runner) SizeSweep(alias string) (*Table, []SizeSweepRow, error) {
	t := &Table{
		Title:  fmt.Sprintf("Tile Cache size sweep, %s: beyond the paper's 64/128 KiB points", alias),
		Header: []string{"Size(KiB)", "Base PB->L2", "TCOR PB->L2", "Decrease", "TCOR hier (mJ)", "TF speedup"},
	}
	rows, err := SweepSlice(r.baseCtx(), r.Parallel, []int{32, 48, 64, 96, 128, 192, 256},
		func(_ context.Context, sizeKB int) (SizeSweepRow, error) {
			base, err := r.Run(alias, fmt.Sprintf("sw-base-%d", sizeKB), gpu.Baseline(sizeKB*1024))
			if err != nil {
				return SizeSweepRow{}, err
			}
			tc, err := r.Run(alias, fmt.Sprintf("sw-tcor-%d", sizeKB), gpu.TCOR(sizeKB*1024))
			if err != nil {
				return SizeSweepRow{}, err
			}
			bPB := base.L2In.PB()
			tPB := tc.L2In.PB()
			row := SizeSweepRow{
				SizeKB:     sizeKB,
				BasePBL2:   bPB.Reads + bPB.Writes,
				TCORPBL2:   tPB.Reads + tPB.Writes,
				TCORHierPJ: tc.MemHierarchyPJ,
			}
			if row.BasePBL2 > 0 {
				row.Decrease = 1 - float64(row.TCORPBL2)/float64(row.BasePBL2)
			}
			if b := base.PPC(); b > 0 {
				row.TCORSpeedup = tc.PPC() / b
			}
			return row, nil
		})
	if err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		t.AddRow(fmt.Sprintf("%d", row.SizeKB),
			fmt.Sprintf("%d", row.BasePBL2), fmt.Sprintf("%d", row.TCORPBL2),
			pct(row.Decrease), fmt.Sprintf("%.3f", row.TCORHierPJ/1e9),
			fmt.Sprintf("%.1fx", row.TCORSpeedup))
	}
	return t, rows, nil
}
