package experiments

import (
	"fmt"
	"math"

	"tcor/internal/dram"
	"tcor/internal/geom"
	"tcor/internal/l2"
	"tcor/internal/mem"
	"tcor/internal/memmap"
)

// TBRvsIMR reproduces the background claim of §II: tile-based rendering
// keeps the color and depth buffers on chip and so cuts external memory
// traffic by roughly 2x versus a traditional immediate-mode renderer
// (Antochi et al. [4] measured a factor of 1.96).
//
// The IMR model rasterizes the same frame in submission order against
// full-screen color and depth buffers that live in DRAM behind the shared
// L2: every shaded quad reads the depth block, conditionally writes it, and
// writes the color block. Texture and geometry traffic are taken from the
// TBR baseline run (the same texels and vertices are needed either way,
// and IMR's texture locality is no better). IMR has no Parameter Buffer:
// binning traffic is TBR-only.
func (r *Runner) TBRvsIMR(alias string) (*Table, error) {
	tbr, err := r.baseline(alias, 64)
	if err != nil {
		return nil, err
	}
	sc, err := r.Scene(alias)
	if err != nil {
		return nil, err
	}

	// --- IMR color/depth traffic through its own L2 + DRAM. ---
	d, err := dram.New(dram.DefaultConfig())
	if err != nil {
		return nil, err
	}
	l2c, err := l2.New(l2.DefaultConfig(false), d)
	if err != nil {
		return nil, err
	}
	screen := r.Screen
	// Full-screen depth buffer (4 B/pixel) after the color buffer region.
	colorBase := memmap.FrameBufferBase
	depthBase := memmap.FrameBufferBase + 64<<20

	w, h := screen.Width, screen.Height
	qw, qh := (w+1)/2, (h+1)/2
	depth := make([]float32, qw*qh)
	var quadsShaded int64
	for f := 0; f < tbr.Frames; f++ {
		for i := range depth {
			depth[i] = math.MaxFloat32
		}
		frame := sc.Frame(f)
		for i := range frame.Prims {
			p := &frame.Prims[i]
			bb := p.BBox()
			x0, y0 := clampI(int(bb.Min.X)/2, 0, qw-1), clampI(int(bb.Min.Y)/2, 0, qh-1)
			x1, y1 := clampI(int(bb.Max.X)/2, 0, qw-1), clampI(int(bb.Max.Y)/2, 0, qh-1)
			z := (p.Depth[0] + p.Depth[1] + p.Depth[2]) / 3
			for qy := y0; qy <= y1; qy++ {
				for qx := x0; qx <= x1; qx++ {
					cx := float32(qx*2) + 1
					cy := float32(qy*2) + 1
					if !geom.PointInTriangle(geom.Vec2{X: cx, Y: cy}, p.Pos[0], p.Pos[1], p.Pos[2]) {
						continue
					}
					// Depth test against the in-memory Z buffer: one block
					// read; survivors write depth and color.
					off := uint64(qy*qw+qx) * 16 // quad = 4 px * 4 B
					l2c.Access(mem.Request{Addr: depthBase + off})
					di := qy*qw + qx
					if z >= depth[di] {
						continue
					}
					depth[di] = z
					quadsShaded++
					l2c.Access(mem.Request{Addr: depthBase + off, Write: true})
					l2c.Access(mem.Request{Addr: colorBase + off, Write: true})
				}
			}
		}
	}

	// IMR totals: its color/depth DRAM traffic plus the traffic classes it
	// shares with TBR (textures, geometry, instructions — everything the
	// baseline's DRAM saw except the Parameter Buffer and the tile flush).
	imrCD := d.Total()
	shared := tbr.DRAM.Reads + tbr.DRAM.Writes -
		(tbr.DRAMIn.PB().Reads + tbr.DRAMIn.PB().Writes) -
		tbr.DRAMIn.Region(memmap.RegionFrameBuffer).Writes
	imrTotal := imrCD + shared
	tbrTotal := tbr.DRAM.Reads + tbr.DRAM.Writes

	t := &Table{
		Title:  fmt.Sprintf("TBR vs immediate-mode rendering, %s: external memory accesses (§II, Antochi et al. report ~1.96x)", alias),
		Header: []string{"Quantity", "Accesses"},
	}
	t.AddRow("IMR color+depth traffic", fmt.Sprintf("%d", imrCD))
	t.AddRow("shared traffic (textures, geometry, shaders)", fmt.Sprintf("%d", shared))
	t.AddRow("IMR total", fmt.Sprintf("%d", imrTotal))
	t.AddRow("TBR total (baseline, incl. Parameter Buffer + tile flush)", fmt.Sprintf("%d", tbrTotal))
	t.AddRow("traffic ratio IMR/TBR", fmt.Sprintf("%.2fx", float64(imrTotal)/float64(tbrTotal)))
	t.AddRow("IMR quads shaded", fmt.Sprintf("%d", quadsShaded))
	return t, nil
}

// IMRRatio returns just the IMR/TBR external-traffic ratio (for tests).
func (r *Runner) IMRRatio(alias string) (float64, error) {
	t, err := r.TBRvsIMR(alias)
	if err != nil {
		return 0, err
	}
	var ratio float64
	if _, err := fmt.Sscanf(t.Rows[4][1], "%fx", &ratio); err != nil {
		return 0, err
	}
	return ratio, nil
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
