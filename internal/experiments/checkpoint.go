package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"tcor/internal/gpu"
	"tcor/internal/stats"
)

// checkpointFormat versions the journal's on-disk shape. Bump it whenever a
// record field changes meaning; an old-format file is a hard error, never a
// silent misread.
const checkpointFormat = "tcor-checkpoint/1"

// checkpointHeader is the journal's first line: the format version plus the
// run fingerprint (screen geometry and frame override). A journal written
// under one fingerprint must never seed a run under another — the restored
// results would be answers to a different question.
type checkpointHeader struct {
	Format string `json:"format"`
	Screen string `json:"screen"` // canonical JSON of the geom.Screen
	Frames int    `json:"frames"`
}

// checkpointRecord is one completed run: the memo key, a hash of the full
// configuration (the memo key alone names but does not pin the config), the
// result, and a hash of the result bytes so a corrupted line is detected
// rather than restored.
type checkpointRecord struct {
	Key    string          `json:"key"`
	CfgSHA string          `json:"cfgSHA"`
	SHA    string          `json:"sha"`
	Result json.RawMessage `json:"result"`
}

// Checkpoint is an append-only journal of completed full-system runs:
// one JSON line per (benchmark, configuration) cell, each self-verifying
// via a content hash. A Runner with a checkpoint attached restores
// journaled cells instead of re-simulating them, so a sweep killed at any
// point — SIGKILL included — resumes by re-executing only the missing
// cells, with byte-identical final output (results are restored from their
// canonical JSON, which round-trips exactly).
//
// Crash safety comes from the format, not fsync discipline: a torn final
// line (the process died mid-write) fails its hash or parse and is
// truncated away on open, sacrificing at most that one cell.
//
// A nil *Checkpoint is a valid no-op, so the Runner's hot path stays
// unconditional.
type Checkpoint struct {
	mu       sync.Mutex
	f        *os.File
	restored map[string]json.RawMessage // key+"\x00"+cfgSHA -> payload JSON

	restoredC  *stats.Counter // cells served from the journal
	journaledC *stats.Counter // cells appended this session
}

// OpenCheckpoint attaches a journal at path to the runner, creating it (with
// a fingerprint header) if absent and otherwise replaying it: valid records
// become restorable cells, and everything from the first torn or corrupt
// line onward is truncated. It returns the number of restorable cells.
//
// The journal is fingerprinted by the runner's Screen and Frames — open it
// after configuring those, and opening a journal written under a different
// fingerprint is an error. Restores and appends are metered in the runner's
// registry as "checkpoint.restored" and "checkpoint.journaled".
func (r *Runner) OpenCheckpoint(path string) (int, error) {
	screenJSON, err := json.Marshal(r.Screen)
	if err != nil {
		return 0, err
	}
	want := checkpointHeader{Format: checkpointFormat, Screen: string(screenJSON), Frames: r.Frames}

	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return 0, err
	}

	cp := &Checkpoint{restored: make(map[string]json.RawMessage)}
	m := r.Metrics()
	cp.restoredC = m.Counter("checkpoint.restored")
	cp.journaledC = m.Counter("checkpoint.journaled")

	valid := 0 // byte offset just past the last intact line
	if len(data) > 0 {
		line, rest, _ := bytes.Cut(data, []byte("\n"))
		var hdr checkpointHeader
		if err := json.Unmarshal(line, &hdr); err != nil || hdr.Format != checkpointFormat {
			return 0, fmt.Errorf("experiments: %s is not a %s journal", path, checkpointFormat)
		}
		if hdr.Screen != want.Screen || hdr.Frames != want.Frames {
			return 0, fmt.Errorf("experiments: checkpoint %s was written for screen=%s frames=%d; this runner is screen=%s frames=%d",
				path, hdr.Screen, hdr.Frames, want.Screen, want.Frames)
		}
		valid = len(line) + 1
		for len(rest) > 0 {
			line, next, full := bytes.Cut(rest, []byte("\n"))
			if !full {
				break // torn tail: no newline means the write never finished
			}
			var rec checkpointRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				break
			}
			sum := sha256.Sum256(rec.Result)
			if hex.EncodeToString(sum[:]) != rec.SHA {
				break
			}
			// Payloads stay raw here: the journal is shared by full-system
			// runs (gpu.Result) and arena cells, and each consumer decodes
			// into its own type at lookup time.
			cp.restored[rec.Key+"\x00"+rec.CfgSHA] = rec.Result
			valid += len(line) + 1
			rest = next
		}
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return 0, err
		}
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	if valid == 0 {
		hdrLine, err := json.Marshal(want)
		if err != nil {
			f.Close()
			return 0, err
		}
		if _, err := f.Write(append(hdrLine, '\n')); err != nil {
			f.Close()
			return 0, err
		}
	}
	cp.f = f
	r.Checkpoint = cp
	return len(cp.restored), nil
}

// lookup returns the restored full-system result for a cell, if the journal
// holds one under the exact configuration hash.
func (cp *Checkpoint) lookup(key, cfgSHA string) (*gpu.Result, bool) {
	raw, ok := cp.Lookup(key, cfgSHA)
	if !ok {
		return nil, false
	}
	res := new(gpu.Result)
	if err := json.Unmarshal(raw, res); err != nil {
		// A record journaled under a different payload type (or by a future
		// format) is a miss, not an error: the cell just recomputes.
		return nil, false
	}
	return res, true
}

// Lookup returns the raw journaled payload for a cell, if present. Callers
// owning other payload types (the arena's per-policy cells) decode it
// themselves; a decode failure should be treated as a cache miss.
func (cp *Checkpoint) Lookup(key, cfgSHA string) (json.RawMessage, bool) {
	if cp == nil {
		return nil, false
	}
	cp.mu.Lock()
	raw, ok := cp.restored[key+"\x00"+cfgSHA]
	cp.mu.Unlock()
	if ok {
		cp.restoredC.Inc()
	}
	return raw, ok
}

// journal appends one completed full-system cell.
func (cp *Checkpoint) journal(key, cfgSHA string, res *gpu.Result) error {
	return cp.Journal(key, cfgSHA, res)
}

// Journal appends one completed cell of any JSON-marshalable payload type.
// The record is a single write of a single line, so a crash leaves at most
// one torn tail for the next open to truncate.
func (cp *Checkpoint) Journal(key, cfgSHA string, payload any) error {
	if cp == nil {
		return nil
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(body)
	line, err := json.Marshal(checkpointRecord{
		Key: key, CfgSHA: cfgSHA, SHA: hex.EncodeToString(sum[:]), Result: body,
	})
	if err != nil {
		return err
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if _, err := cp.f.Write(append(line, '\n')); err != nil {
		return err
	}
	cp.journaledC.Inc()
	return nil
}

// Close closes the journal file. The Runner keeps serving already-restored
// cells; further completions fail to journal.
func (cp *Checkpoint) Close() error {
	if cp == nil || cp.f == nil {
		return nil
	}
	return cp.f.Close()
}

// cfgFingerprint hashes a full configuration. The memo key (alias/cfgName)
// names a cell; this pins what the name meant, so a journal written under
// one tile-cache size can never satisfy a resume under another that reused
// the name.
func cfgFingerprint(cfg gpu.Config) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// gpu.Config is plain data; Marshal cannot fail. Guard anyway so a
		// future unmarshalable field poisons the fingerprint, not the run.
		return "unfingerprintable:" + err.Error()
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
