package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"tcor/internal/gpu"
	"tcor/internal/stats"
)

// checkpointFormat versions the journal's on-disk shape. Bump it whenever a
// record field changes meaning; an old-format file is a hard error, never a
// silent misread. Version 2 widened the record hash from the result payload
// alone to the full (key, cfgSHA, result) triple, so a flipped byte anywhere
// in a record — not just its payload — is detected on open.
const checkpointFormat = "tcor-checkpoint/2"

// checkpointHeader is the journal's first line: the format version plus the
// run fingerprint (screen geometry and frame override). A journal written
// under one fingerprint must never seed a run under another — the restored
// results would be answers to a different question.
type checkpointHeader struct {
	Format string `json:"format"`
	Screen string `json:"screen"` // canonical JSON of the geom.Screen
	Frames int    `json:"frames"`
}

// journalHeader is the first line of a standalone journal opened through
// OpenJournal: the format version plus an opaque caller-owned fingerprint
// (the serving layer uses the job's content address, so a job directory can
// never be resumed under a different request).
type journalHeader struct {
	Format      string `json:"format"`
	Fingerprint string `json:"fingerprint"`
}

// checkpointRecord is one completed run: the memo key, a hash of the full
// configuration (the memo key alone names but does not pin the config), the
// result, and a hash over the whole triple so a corrupted line — whether in
// the key, the config hash, or the payload — is detected rather than
// restored.
type checkpointRecord struct {
	Key    string          `json:"key"`
	CfgSHA string          `json:"cfgSHA"`
	SHA    string          `json:"sha"`
	Result json.RawMessage `json:"result"`
}

// recordSHA hashes the full record triple. Covering the key and config hash
// (not just the result bytes) means a mid-file flip in a record's name can
// never resurface a valid payload under the wrong cell.
func recordSHA(key, cfgSHA string, result []byte) string {
	h := sha256.New()
	io.WriteString(h, key)
	h.Write([]byte{0})
	io.WriteString(h, cfgSHA)
	h.Write([]byte{0})
	h.Write(result)
	return hex.EncodeToString(h.Sum(nil))
}

// Checkpoint is an append-only journal of completed full-system runs:
// one JSON line per (benchmark, configuration) cell, each self-verifying
// via a content hash. A Runner with a checkpoint attached restores
// journaled cells instead of re-simulating them, so a sweep killed at any
// point — SIGKILL included — resumes by re-executing only the missing
// cells, with byte-identical final output (results are restored from their
// canonical JSON, which round-trips exactly).
//
// Crash safety comes from the format, not fsync discipline: a torn final
// line (the process died mid-write) fails its hash or parse, and open
// truncates the journal from the first bad record onward — whether that
// record is a torn tail or a corrupted line in the middle of the file —
// sacrificing only the cells at and after the damage.
//
// A nil *Checkpoint is a valid no-op, so the Runner's hot path stays
// unconditional.
type Checkpoint struct {
	mu       sync.Mutex
	f        *os.File
	restored map[string]json.RawMessage // key+"\x00"+cfgSHA -> payload JSON

	restoredC  *stats.Counter // cells served from the journal
	journaledC *stats.Counter // cells appended this session
}

// openJournal replays the journal at path, validating the header line with
// checkHeader and every record's full-triple hash. Everything from the
// first torn or corrupt line onward is truncated; the file is reopened for
// appends, writing hdrLine if the journal is empty or freshly created.
func openJournal(path string, hdrLine []byte, checkHeader func(line []byte) error, restoredC, journaledC *stats.Counter) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}

	cp := &Checkpoint{
		restored:   make(map[string]json.RawMessage),
		restoredC:  restoredC,
		journaledC: journaledC,
	}

	valid := 0 // byte offset just past the last intact line
	if len(data) > 0 {
		line, rest, _ := bytes.Cut(data, []byte("\n"))
		if err := checkHeader(line); err != nil {
			return nil, err
		}
		valid = len(line) + 1
		for len(rest) > 0 {
			line, next, full := bytes.Cut(rest, []byte("\n"))
			if !full {
				break // torn tail: no newline means the write never finished
			}
			var rec checkpointRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				break
			}
			if recordSHA(rec.Key, rec.CfgSHA, rec.Result) != rec.SHA {
				break
			}
			// Payloads stay raw here: the journal is shared by full-system
			// runs (gpu.Result), arena cells, and async job cells, and each
			// consumer decodes into its own type at lookup time.
			cp.restored[rec.Key+"\x00"+rec.CfgSHA] = rec.Result
			valid += len(line) + 1
			rest = next
		}
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, err
		}
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if valid == 0 {
		if _, err := f.Write(append(append([]byte{}, hdrLine...), '\n')); err != nil {
			f.Close()
			return nil, err
		}
	}
	cp.f = f
	return cp, nil
}

// OpenCheckpoint attaches a journal at path to the runner, creating it (with
// a fingerprint header) if absent and otherwise replaying it: valid records
// become restorable cells, and everything from the first torn or corrupt
// record onward is truncated. It returns the number of restorable cells.
//
// The journal is fingerprinted by the runner's Screen and Frames — open it
// after configuring those, and opening a journal written under a different
// fingerprint is an error. Restores and appends are metered in the runner's
// registry as "checkpoint.restored" and "checkpoint.journaled".
func (r *Runner) OpenCheckpoint(path string) (int, error) {
	screenJSON, err := json.Marshal(r.Screen)
	if err != nil {
		return 0, err
	}
	want := checkpointHeader{Format: checkpointFormat, Screen: string(screenJSON), Frames: r.Frames}
	hdrLine, err := json.Marshal(want)
	if err != nil {
		return 0, err
	}
	check := func(line []byte) error {
		var hdr checkpointHeader
		if err := json.Unmarshal(line, &hdr); err != nil || hdr.Format != checkpointFormat {
			return fmt.Errorf("experiments: %s is not a %s journal", path, checkpointFormat)
		}
		if hdr.Screen != want.Screen || hdr.Frames != want.Frames {
			return fmt.Errorf("experiments: checkpoint %s was written for screen=%s frames=%d; this runner is screen=%s frames=%d",
				path, hdr.Screen, hdr.Frames, want.Screen, want.Frames)
		}
		return nil
	}
	m := r.Metrics()
	cp, err := openJournal(path, hdrLine, check, m.Counter("checkpoint.restored"), m.Counter("checkpoint.journaled"))
	if err != nil {
		return 0, err
	}
	r.Checkpoint = cp
	return len(cp.restored), nil
}

// OpenJournal opens (or creates) a standalone checkpoint journal at path,
// fingerprinted by an arbitrary caller-owned string instead of a Runner's
// screen geometry. The serving layer's durable job store persists sweep
// cells through this: same record format, same torn/corrupt-record
// truncation, same byte-identical restore semantics. It returns the
// checkpoint and the number of restorable cells. Restores and appends are
// metered in reg as "checkpoint.restored" and "checkpoint.journaled"; a nil
// reg meters into a private registry.
func OpenJournal(path, fingerprint string, reg *stats.Registry) (*Checkpoint, int, error) {
	hdrLine, err := json.Marshal(journalHeader{Format: checkpointFormat, Fingerprint: fingerprint})
	if err != nil {
		return nil, 0, err
	}
	check := func(line []byte) error {
		var hdr journalHeader
		if err := json.Unmarshal(line, &hdr); err != nil || hdr.Format != checkpointFormat {
			return fmt.Errorf("experiments: %s is not a %s journal", path, checkpointFormat)
		}
		if hdr.Fingerprint != fingerprint {
			return fmt.Errorf("experiments: journal %s was written for fingerprint %q, not %q", path, hdr.Fingerprint, fingerprint)
		}
		return nil
	}
	if reg == nil {
		reg = stats.NewRegistry()
	}
	cp, err := openJournal(path, hdrLine, check, reg.Counter("checkpoint.restored"), reg.Counter("checkpoint.journaled"))
	if err != nil {
		return nil, 0, err
	}
	return cp, len(cp.restored), nil
}

// lookup returns the restored full-system result for a cell, if the journal
// holds one under the exact configuration hash.
func (cp *Checkpoint) lookup(key, cfgSHA string) (*gpu.Result, bool) {
	raw, ok := cp.Lookup(key, cfgSHA)
	if !ok {
		return nil, false
	}
	res := new(gpu.Result)
	if err := json.Unmarshal(raw, res); err != nil {
		// A record journaled under a different payload type (or by a future
		// format) is a miss, not an error: the cell just recomputes.
		return nil, false
	}
	return res, true
}

// Lookup returns the raw journaled payload for a cell, if present. Callers
// owning other payload types (the arena's per-policy cells, the serving
// layer's job cells) decode it themselves; a decode failure should be
// treated as a cache miss.
func (cp *Checkpoint) Lookup(key, cfgSHA string) (json.RawMessage, bool) {
	if cp == nil {
		return nil, false
	}
	cp.mu.Lock()
	raw, ok := cp.restored[key+"\x00"+cfgSHA]
	cp.mu.Unlock()
	if ok {
		cp.restoredC.Inc()
	}
	return raw, ok
}

// journal appends one completed full-system cell.
func (cp *Checkpoint) journal(key, cfgSHA string, res *gpu.Result) error {
	return cp.Journal(key, cfgSHA, res)
}

// Journal appends one completed cell of any JSON-marshalable payload type.
// The record is a single write of a single line, so a crash leaves at most
// one torn tail for the next open to truncate.
func (cp *Checkpoint) Journal(key, cfgSHA string, payload any) error {
	if cp == nil {
		return nil
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	line, err := json.Marshal(checkpointRecord{
		Key: key, CfgSHA: cfgSHA, SHA: recordSHA(key, cfgSHA, body), Result: body,
	})
	if err != nil {
		return err
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if _, err := cp.f.Write(append(line, '\n')); err != nil {
		return err
	}
	cp.journaledC.Inc()
	return nil
}

// Close closes the journal file. The Runner keeps serving already-restored
// cells; further completions fail to journal.
func (cp *Checkpoint) Close() error {
	if cp == nil || cp.f == nil {
		return nil
	}
	return cp.f.Close()
}

// cfgFingerprint hashes a full configuration. The memo key (alias/cfgName)
// names a cell; this pins what the name meant, so a journal written under
// one tile-cache size can never satisfy a resume under another that reused
// the name.
func cfgFingerprint(cfg gpu.Config) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// gpu.Config is plain data; Marshal cannot fail. Guard anyway so a
		// future unmarshalable field poisons the fingerprint, not the run.
		return "unfingerprintable:" + err.Error()
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
