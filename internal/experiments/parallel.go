package experiments

import (
	"fmt"

	"tcor/internal/gpu"
)

// The paper's conclusion motivates TCOR's Tiling Engine speedup as opening
// "the door to more aggressive Raster Pipeline implementations, including
// the use of Parallel Renderers" (§VII). This experiment models that future
// work: N Raster Pipelines consume tiles concurrently while a single Tile
// Fetcher feeds them, so the raster phase of a frame takes
//
//	max(totalFetchCycles, totalRasterCycles / N)
//
// — the fetcher becomes the serial bottleneck as N grows. A faster Tiling
// Engine raises the knee of the scaling curve.

// ParallelPoint is the frame rate at one renderer count.
type ParallelPoint struct {
	Renderers int
	BaseFPS   float64
	TCORFPS   float64
}

// ParallelResult is the renderer-scaling study for one benchmark.
type ParallelResult struct {
	Benchmark string
	SizeKB    int
	Points    []ParallelPoint
	// BaseKnee and TCORKnee are the renderer counts past which adding
	// renderers yields <10% additional FPS (the scaling limit imposed by
	// the Tiling Engine).
	BaseKnee, TCORKnee int
}

// Table renders the study.
func (p *ParallelResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Parallel renderers (%s, %d KiB Tile Cache): FPS vs renderer count (§VII future work)",
			p.Benchmark, p.SizeKB),
		Header: []string{"Renderers", "Baseline FPS", "TCOR FPS", "TCOR/Base"},
	}
	for _, pt := range p.Points {
		t.AddRow(fmt.Sprintf("%d", pt.Renderers),
			fmt.Sprintf("%.1f", pt.BaseFPS),
			fmt.Sprintf("%.1f", pt.TCORFPS),
			fmt.Sprintf("%.2fx", pt.TCORFPS/pt.BaseFPS))
	}
	t.AddRow("scaling knee", fmt.Sprintf("%d renderers", p.BaseKnee),
		fmt.Sprintf("%d renderers", p.TCORKnee), "")
	return t
}

// fpsWithRenderers projects a run's frame time onto an N-renderer Raster
// Pipeline: geometry and binning stay serial, and the tile phase is bound by
// the slower of the (serial) Tile Fetcher and the N-way raster array.
func fpsWithRenderers(res *gpu.Result, n int, clockHz float64) float64 {
	tilePhase := res.TFCycles
	if r := res.RasterCycles / int64(n); r > tilePhase {
		tilePhase = r
	}
	frame := (res.GeomCycles + res.PLBCycles + tilePhase) / int64(res.Frames)
	if frame <= 0 {
		return 0
	}
	return clockHz / float64(frame)
}

// ParallelRenderers runs the renderer-scaling study for one benchmark.
func (r *Runner) ParallelRenderers(alias string, sizeKB int) (*ParallelResult, error) {
	base, err := r.baseline(alias, sizeKB)
	if err != nil {
		return nil, err
	}
	tc, err := r.tcorFull(alias, sizeKB)
	if err != nil {
		return nil, err
	}
	const clock = 600e6
	out := &ParallelResult{Benchmark: alias, SizeKB: sizeKB}
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	for _, n := range counts {
		out.Points = append(out.Points, ParallelPoint{
			Renderers: n,
			BaseFPS:   fpsWithRenderers(base, n, clock),
			TCORFPS:   fpsWithRenderers(tc, n, clock),
		})
	}
	knee := func(get func(ParallelPoint) float64) int {
		for i := 1; i < len(out.Points); i++ {
			if get(out.Points[i]) < 1.1*get(out.Points[i-1]) {
				return out.Points[i-1].Renderers
			}
		}
		return counts[len(counts)-1]
	}
	out.BaseKnee = knee(func(p ParallelPoint) float64 { return p.BaseFPS })
	out.TCORKnee = knee(func(p ParallelPoint) float64 { return p.TCORFPS })
	return out, nil
}
