package experiments

import (
	"context"
	"fmt"
	"sync"

	"tcor/internal/cache"
	"tcor/internal/geom"
	"tcor/internal/gpu"
	"tcor/internal/stats"
	"tcor/internal/tiling"
	"tcor/internal/trace"
	"tcor/internal/workload"
)

// Runner generates scenes and runs full-system simulations, memoizing both
// so that the figures sharing the same underlying runs (Figs. 14–24 all
// come from six configurations per benchmark) pay for each run once.
//
// Every memoized product — scenes, binnings, traces, stack profiles,
// full-system results — is keyed with per-key singleflight locking (see
// memo.go), so concurrent requests for different benchmarks or
// configurations proceed in parallel while duplicate requests for the same
// key coalesce into one computation. All suite-wide studies fan out through
// the bounded Sweep pool with deterministic result ordering, so a Runner's
// figures are byte-identical at every parallelism level.
type Runner struct {
	Screen geom.Screen
	// Frames overrides the per-spec frame count when positive (tests use 1
	// for speed; the paper harness uses the spec default).
	Frames int
	// Benchmarks restricts the suite (nil = all ten).
	Benchmarks []string
	// Parallel bounds the concurrent simulations in suite-wide sweeps
	// (0 = GOMAXPROCS). Results do not depend on it.
	Parallel int
	// TileParallel, when >1, runs each simulation's per-tile raster
	// planning on that many workers (gpu.Config.TileParallel); results are
	// byte-identical at every level, so memoization and checkpoints ignore
	// it.
	TileParallel int
	// Ctx, when non-nil, cancels in-flight suite sweeps (deadline or
	// cancellation); nil means context.Background(). Configure it once
	// before use, like the other fields.
	Ctx context.Context
	// MemoCap, when positive, bounds each memo table (scenes, runs, traces,
	// binnings, profiles) to that many completed entries with LRU eviction,
	// metered as "memo.<table>.evictions". Zero keeps the figure-harness
	// default: cache forever (the paper grid is finite). Long-running hosts
	// set it — or call PurgeMemo between batches — so an open-ended request
	// stream cannot grow the tables without bound.
	MemoCap int
	// Checkpoint, when non-nil (attach one with OpenCheckpoint), journals
	// every completed Run cell to an append-only file and restores journaled
	// cells instead of re-simulating, so a killed sweep resumes where it
	// died with byte-identical results.
	Checkpoint *Checkpoint

	scenes   memo[*workload.Scene]
	runs     memo[*gpu.Result]
	traces   memo[trace.Trace]
	bins     memo[*tiling.Binning]
	profiles memo[cache.StackProfile]

	// metrics meters the runner itself: memo hit/miss counts per table and
	// simulations completed. Lazily created so the zero-value Runner works.
	metricsOnce sync.Once
	metrics     *stats.Registry

	// testSceneHook, when set, runs inside the memoized scene computation.
	// Tests use it to prove that distinct-alias Scene calls overlap in time
	// (the original coarse-mutex design serialized them).
	testSceneHook func(alias string)
}

// NewRunner returns a Runner over the default screen and full suite.
func NewRunner() *Runner {
	return &Runner{Screen: geom.DefaultScreen()}
}

// Metrics returns the runner's observability registry: memo-table
// hit/miss/eviction counters ("memo.<table>.hits"/".misses"/".evictions")
// and completed-simulation counts. Race-clean; sweeps running through the
// Runner publish into it live.
func (r *Runner) Metrics() *stats.Registry {
	r.metricsOnce.Do(func() { r.metrics = stats.NewRegistry() })
	return r.metrics
}

// meter returns the counters for one memo table.
func (r *Runner) meter(table string) (hits, misses, evictions *stats.Counter) {
	m := r.Metrics()
	return m.Counter("memo." + table + ".hits"),
		m.Counter("memo." + table + ".misses"),
		m.Counter("memo." + table + ".evictions")
}

// PurgeMemo drops every completed entry from every memo table and returns
// the number dropped, metering them as evictions. In-flight computations
// are untouched: their waiters still resolve, and they stay usable until a
// later purge or capacity eviction. Long-running hosts call it between
// batches; combined with MemoCap it keeps a daemon's Runner at a bounded
// footprint over an unbounded request stream.
func (r *Runner) PurgeMemo() int {
	n := 0
	ev := func(table string) *stats.Counter {
		_, _, e := r.meter(table)
		return e
	}
	n += r.scenes.purge(ev("scenes"))
	n += r.runs.purge(ev("runs"))
	n += r.traces.purge(ev("traces"))
	n += r.bins.purge(ev("bins"))
	n += r.profiles.purge(ev("profiles"))
	return n
}

// baseCtx returns the runner's sweep context.
func (r *Runner) baseCtx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// Suite returns the benchmark specs this runner covers, in paper order.
func (r *Runner) Suite() []workload.Spec {
	all := workload.Suite()
	if r.Benchmarks == nil {
		return all
	}
	var out []workload.Spec
	for _, alias := range r.Benchmarks {
		for _, s := range all {
			if s.Alias == alias {
				out = append(out, s)
			}
		}
	}
	return out
}

// Scene returns the calibrated scene for a benchmark.
func (r *Runner) Scene(alias string) (*workload.Scene, error) {
	hits, misses, evictions := r.meter("scenes")
	return r.scenes.get(alias, r.MemoCap, hits, misses, evictions, func() (*workload.Scene, error) {
		if hook := r.testSceneHook; hook != nil {
			hook(alias)
		}
		spec, err := workload.ByAlias(alias)
		if err != nil {
			return nil, err
		}
		if r.Frames > 0 {
			spec.Frames = r.Frames
		}
		return workload.Generate(spec, r.Screen)
	})
}

// Run simulates a benchmark under a configuration, memoized under the given
// configuration name.
func (r *Runner) Run(alias, cfgName string, cfg gpu.Config) (*gpu.Result, error) {
	if r.TileParallel > 0 {
		cfg.TileParallel = r.TileParallel
	}
	hits, misses, evictions := r.meter("runs")
	key := alias + "/" + cfgName
	return r.runs.get(key, r.MemoCap, hits, misses, evictions, func() (*gpu.Result, error) {
		cp := r.Checkpoint
		var fp string
		if cp != nil {
			fp = cfgFingerprint(cfg)
			if res, ok := cp.lookup(key, fp); ok {
				return res, nil
			}
		}
		sc, err := r.Scene(alias)
		if err != nil {
			return nil, err
		}
		res, err := gpu.Simulate(sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s under %s: %w", alias, cfgName, err)
		}
		if err := cp.journal(key, fp, res); err != nil {
			return nil, fmt.Errorf("experiments: journaling %s: %w", key, err)
		}
		return res, nil
	})
}

// prewarmJob is one (benchmark, configuration) cell of the Figs. 14-24 grid.
type prewarmJob struct {
	alias, name string
	cfg         gpu.Config
}

// prewarmConfigs returns the six full-system configurations behind
// Figs. 14-24 for one benchmark.
func prewarmConfigs(alias string) []prewarmJob {
	var jobs []prewarmJob
	for _, sizeKB := range []int{64, 128} {
		jobs = append(jobs,
			prewarmJob{alias, fmt.Sprintf("base%d", sizeKB), gpu.Baseline(sizeKB * 1024)},
			prewarmJob{alias, fmt.Sprintf("tcor%d", sizeKB), gpu.TCOR(sizeKB * 1024)},
			prewarmJob{alias, fmt.Sprintf("nol2-%d", sizeKB), gpu.TCORNoL2(sizeKB * 1024)})
	}
	return jobs
}

// Prewarm runs the six full-system configurations behind Figs. 14-24 for
// every benchmark of the suite concurrently, bounded by par workers, so a
// subsequent figure pass is all cache hits. Results are identical to the
// sequential path (runs are independent and memoized per key).
func (r *Runner) Prewarm(par int) error {
	return r.PrewarmContext(r.baseCtx(), par)
}

// PrewarmContext is Prewarm with explicit cancellation: the context aborts
// simulations between jobs (a started simulation runs to completion, but no
// new work begins once ctx is done). par <= 0 means GOMAXPROCS.
func (r *Runner) PrewarmContext(ctx context.Context, par int) error {
	var jobs []func(context.Context) (struct{}, error)
	for _, spec := range r.Suite() {
		for _, j := range prewarmConfigs(spec.Alias) {
			j := j
			jobs = append(jobs, func(context.Context) (struct{}, error) {
				_, err := r.Run(j.alias, j.name, j.cfg)
				return struct{}{}, err
			})
		}
	}
	_, err := Sweep(ctx, par, jobs)
	return err
}

// Binning returns the memoized frame-0 binning of a benchmark under the
// paper's Z-order traversal.
func (r *Runner) Binning(alias string) (*tiling.Binning, error) {
	hits, misses, evictions := r.meter("bins")
	return r.bins.get(alias, r.MemoCap, hits, misses, evictions, func() (*tiling.Binning, error) {
		sc, err := r.Scene(alias)
		if err != nil {
			return nil, err
		}
		trav, err := tiling.NewTraversal(r.Screen, tiling.OrderZ)
		if err != nil {
			return nil, err
		}
		return tiling.Bin(r.Screen, trav, sc.Frame(0).Prims)
	})
}

// AttributeTrace returns the memoized primitive-granularity access trace to
// PB-Attributes of a benchmark's first frame: one write per primitive in
// program order (the Polygon List Builder), then the Tile Fetcher's reads
// tile by tile in traversal order — the stream behind Figs. 1 and 11–13.
// The trace is annotated with Belady next-use indices.
func (r *Runner) AttributeTrace(alias string) (trace.Trace, error) {
	hits, misses, evictions := r.meter("traces")
	return r.traces.get(alias, r.MemoCap, hits, misses, evictions, func() (trace.Trace, error) {
		b, err := r.Binning(alias)
		if err != nil {
			return nil, err
		}
		var tr trace.Trace
		for p := range b.PrimTiles {
			tr = append(tr, trace.Access{Key: trace.Key(p), Write: true})
		}
		for _, tile := range b.Traversal.Seq {
			for _, e := range b.Lists[tile] {
				tr = append(tr, trace.Access{Key: trace.Key(e.Prim)})
			}
		}
		trace.AnnotateNextUse(tr)
		return tr, nil
	})
}

// LRUProfile returns the memoized Mattson stack-distance profile of a
// benchmark's attribute trace: fully-associative LRU miss ratios at every
// capacity from one pass (reference [27]'s own technique).
func (r *Runner) LRUProfile(alias string) (cache.StackProfile, error) {
	hits, misses, evictions := r.meter("profiles")
	return r.profiles.get(alias, r.MemoCap, hits, misses, evictions, func() (cache.StackProfile, error) {
		tr, err := r.AttributeTrace(alias)
		if err != nil {
			return cache.StackProfile{}, err
		}
		return cache.LRUStackDistances(tr), nil
	})
}

// PrimBytes is the average primitive size used to convert cache byte
// budgets into primitive capacities in the policy studies: ~3 attributes of
// 64 bytes each (§III-C1: "an average primitive has around 3 attributes,
// leading to 192 bytes").
const PrimBytes = 192

// CapacityPrims converts a cache size in KiB to a primitive capacity.
func CapacityPrims(sizeKB float64) int {
	cp := int(sizeKB * 1024 / PrimBytes)
	if cp < 1 {
		cp = 1
	}
	return cp
}

// cacheSimLRU is a test helper: event-driven fully associative LRU misses.
func cacheSimLRU(cp int, tr trace.Trace) (int64, error) {
	st, err := cache.Simulate(cache.Config{Lines: cp, WriteAllocate: true}, cache.NewLRU(), tr)
	if err != nil {
		return 0, err
	}
	return st.Misses, nil
}
