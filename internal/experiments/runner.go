package experiments

import (
	"fmt"
	"sync"

	"tcor/internal/cache"
	"tcor/internal/geom"
	"tcor/internal/gpu"
	"tcor/internal/tiling"
	"tcor/internal/trace"
	"tcor/internal/workload"
)

// Runner generates scenes and runs full-system simulations, memoizing both
// so that the figures sharing the same underlying runs (Figs. 14–24 all
// come from six configurations per benchmark) pay for each run once.
type Runner struct {
	Screen geom.Screen
	// Frames overrides the per-spec frame count when positive (tests use 1
	// for speed; the paper harness uses the spec default).
	Frames int
	// Benchmarks restricts the suite (nil = all ten).
	Benchmarks []string

	mu       sync.Mutex
	scenes   map[string]*workload.Scene
	runs     map[string]*gpu.Result
	traces   map[string]trace.Trace
	bins     map[string]*tiling.Binning
	profiles map[string]cache.StackProfile
}

// NewRunner returns a Runner over the default screen and full suite.
func NewRunner() *Runner {
	return &Runner{Screen: geom.DefaultScreen()}
}

// Suite returns the benchmark specs this runner covers, in paper order.
func (r *Runner) Suite() []workload.Spec {
	all := workload.Suite()
	if r.Benchmarks == nil {
		return all
	}
	var out []workload.Spec
	for _, alias := range r.Benchmarks {
		for _, s := range all {
			if s.Alias == alias {
				out = append(out, s)
			}
		}
	}
	return out
}

// Scene returns the calibrated scene for a benchmark.
func (r *Runner) Scene(alias string) (*workload.Scene, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sc, ok := r.scenes[alias]; ok {
		return sc, nil
	}
	spec, err := workload.ByAlias(alias)
	if err != nil {
		return nil, err
	}
	if r.Frames > 0 {
		spec.Frames = r.Frames
	}
	sc, err := workload.Generate(spec, r.Screen)
	if err != nil {
		return nil, err
	}
	if r.scenes == nil {
		r.scenes = make(map[string]*workload.Scene)
	}
	r.scenes[alias] = sc
	return sc, nil
}

// Run simulates a benchmark under a configuration, memoized under the given
// configuration name.
func (r *Runner) Run(alias, cfgName string, cfg gpu.Config) (*gpu.Result, error) {
	key := alias + "/" + cfgName
	r.mu.Lock()
	if res, ok := r.runs[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()
	sc, err := r.Scene(alias)
	if err != nil {
		return nil, err
	}
	res, err := gpu.Simulate(sc, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s under %s: %w", alias, cfgName, err)
	}
	r.mu.Lock()
	if r.runs == nil {
		r.runs = make(map[string]*gpu.Result)
	}
	r.runs[key] = res
	r.mu.Unlock()
	return res, nil
}

// Prewarm runs the six full-system configurations behind Figs. 14-24 for
// every benchmark of the suite concurrently, bounded by par workers, so a
// subsequent figure pass is all cache hits. Results are identical to the
// sequential path (runs are independent and memoized under a mutex).
func (r *Runner) Prewarm(par int) error {
	if par < 1 {
		par = 1
	}
	type job struct {
		alias, name string
		cfg         gpu.Config
	}
	var jobs []job
	for _, spec := range r.Suite() {
		for _, sizeKB := range []int{64, 128} {
			jobs = append(jobs,
				job{spec.Alias, fmt.Sprintf("base%d", sizeKB), gpu.Baseline(sizeKB * 1024)},
				job{spec.Alias, fmt.Sprintf("tcor%d", sizeKB), gpu.TCOR(sizeKB * 1024)},
				job{spec.Alias, fmt.Sprintf("nol2-%d", sizeKB), gpu.TCORNoL2(sizeKB * 1024)})
		}
	}
	// Generate scenes first (they are shared by the three configs).
	for _, spec := range r.Suite() {
		if _, err := r.Scene(spec.Alias); err != nil {
			return err
		}
	}
	sem := make(chan struct{}, par)
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		sem <- struct{}{}
		go func(j job) {
			defer func() { <-sem }()
			_, err := r.Run(j.alias, j.name, j.cfg)
			errs <- err
		}(j)
	}
	for range jobs {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// Binning returns the memoized frame-0 binning of a benchmark under the
// paper's Z-order traversal.
func (r *Runner) Binning(alias string) (*tiling.Binning, error) {
	r.mu.Lock()
	if b, ok := r.bins[alias]; ok {
		r.mu.Unlock()
		return b, nil
	}
	r.mu.Unlock()
	sc, err := r.Scene(alias)
	if err != nil {
		return nil, err
	}
	trav, err := tiling.NewTraversal(r.Screen, tiling.OrderZ)
	if err != nil {
		return nil, err
	}
	b, err := tiling.Bin(r.Screen, trav, sc.Frame(0).Prims)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.bins == nil {
		r.bins = make(map[string]*tiling.Binning)
	}
	r.bins[alias] = b
	r.mu.Unlock()
	return b, nil
}

// AttributeTrace returns the memoized primitive-granularity access trace to
// PB-Attributes of a benchmark's first frame: one write per primitive in
// program order (the Polygon List Builder), then the Tile Fetcher's reads
// tile by tile in traversal order — the stream behind Figs. 1 and 11–13.
// The trace is annotated with Belady next-use indices.
func (r *Runner) AttributeTrace(alias string) (trace.Trace, error) {
	r.mu.Lock()
	if tr, ok := r.traces[alias]; ok {
		r.mu.Unlock()
		return tr, nil
	}
	r.mu.Unlock()
	b, err := r.Binning(alias)
	if err != nil {
		return nil, err
	}
	var tr trace.Trace
	for p := range b.PrimTiles {
		tr = append(tr, trace.Access{Key: trace.Key(p), Write: true})
	}
	for _, tile := range b.Traversal.Seq {
		for _, e := range b.Lists[tile] {
			tr = append(tr, trace.Access{Key: trace.Key(e.Prim)})
		}
	}
	trace.AnnotateNextUse(tr)
	r.mu.Lock()
	if r.traces == nil {
		r.traces = make(map[string]trace.Trace)
	}
	r.traces[alias] = tr
	r.mu.Unlock()
	return tr, nil
}

// LRUProfile returns the memoized Mattson stack-distance profile of a
// benchmark's attribute trace: fully-associative LRU miss ratios at every
// capacity from one pass (reference [27]'s own technique).
func (r *Runner) LRUProfile(alias string) (cache.StackProfile, error) {
	r.mu.Lock()
	if p, ok := r.profiles[alias]; ok {
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()
	tr, err := r.AttributeTrace(alias)
	if err != nil {
		return cache.StackProfile{}, err
	}
	p := cache.LRUStackDistances(tr)
	r.mu.Lock()
	if r.profiles == nil {
		r.profiles = make(map[string]cache.StackProfile)
	}
	r.profiles[alias] = p
	r.mu.Unlock()
	return p, nil
}

// PrimBytes is the average primitive size used to convert cache byte
// budgets into primitive capacities in the policy studies: ~3 attributes of
// 64 bytes each (§III-C1: "an average primitive has around 3 attributes,
// leading to 192 bytes").
const PrimBytes = 192

// CapacityPrims converts a cache size in KiB to a primitive capacity.
func CapacityPrims(sizeKB float64) int {
	cp := int(sizeKB * 1024 / PrimBytes)
	if cp < 1 {
		cp = 1
	}
	return cp
}

// cacheSimLRU is a test helper: event-driven fully associative LRU misses.
func cacheSimLRU(cp int, tr trace.Trace) (int64, error) {
	st, err := cache.Simulate(cache.Config{Lines: cp, WriteAllocate: true}, cache.NewLRU(), tr)
	if err != nil {
		return 0, err
	}
	return st.Misses, nil
}
