package experiments

import (
	"fmt"

	"tcor/internal/tiling"
)

// FalseOverlap quantifies the cost of bounding-box binning versus the exact
// triangle-tile overlap test (the §VI related work of Antochi et al. [2]
// and Yang et al. [39]): false overlaps inflate every Parameter Buffer
// structure — more PMDs, longer lists, more Tile Fetcher reads of
// primitives the Rasterizer then discards.
func (r *Runner) FalseOverlap(alias string) (*Table, error) {
	sc, err := r.Scene(alias)
	if err != nil {
		return nil, err
	}
	trav, err := tiling.NewTraversal(r.Screen, tiling.OrderZ)
	if err != nil {
		return nil, err
	}
	exact, err := tiling.BinWithOverlap(r.Screen, trav, sc.Frame(0).Prims, tiling.OverlapExact)
	if err != nil {
		return nil, err
	}
	bbox, err := tiling.BinWithOverlap(r.Screen, trav, sc.Frame(0).Prims, tiling.OverlapBBox)
	if err != nil {
		return nil, err
	}

	listBytes := func(b *tiling.Binning) int64 { return int64(b.TotalOverlaps) * 4 }
	t := &Table{
		Title:  fmt.Sprintf("False-overlap study, %s: exact vs bounding-box binning (§VI refs [2], [39])", alias),
		Header: []string{"Quantity", "Exact", "BBox", "Inflation"},
	}
	addI := func(name string, e, b int64) {
		infl := "-"
		if e > 0 {
			infl = pct(float64(b-e) / float64(e))
		}
		t.AddRow(name, fmt.Sprintf("%d", e), fmt.Sprintf("%d", b), infl)
	}
	addI("primitive-tile overlaps (PMDs)", int64(exact.TotalOverlaps), int64(bbox.TotalOverlaps))
	addI("PB-Lists bytes", listBytes(exact), listBytes(bbox))
	addI("Tile Fetcher primitive reads", int64(exact.TotalOverlaps), int64(bbox.TotalOverlaps))
	maxList := func(b *tiling.Binning) int64 {
		m := 0
		for tile := range b.Lists {
			if l := len(b.Lists[tile]); l > m {
				m = l
			}
		}
		return int64(m)
	}
	addI("longest tile list", maxList(exact), maxList(bbox))
	return t, nil
}

// FalseOverlapInflation returns the PMD inflation factor bbox/exact (for
// tests).
func (r *Runner) FalseOverlapInflation(alias string) (float64, error) {
	sc, err := r.Scene(alias)
	if err != nil {
		return 0, err
	}
	trav, err := tiling.NewTraversal(r.Screen, tiling.OrderZ)
	if err != nil {
		return 0, err
	}
	exact, err := tiling.BinWithOverlap(r.Screen, trav, sc.Frame(0).Prims, tiling.OverlapExact)
	if err != nil {
		return 0, err
	}
	bbox, err := tiling.BinWithOverlap(r.Screen, trav, sc.Frame(0).Prims, tiling.OverlapBBox)
	if err != nil {
		return 0, err
	}
	return float64(bbox.TotalOverlaps) / float64(exact.TotalOverlaps), nil
}
