package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// renderSystemFigures renders the Figs. 14-24 tables plus the headline
// aggregate into one string, in paper order.
func renderSystemFigures(t *testing.T, r *Runner) string {
	t.Helper()
	var b strings.Builder
	figs := []struct {
		n     int
		table func() (*Table, error)
	}{
		{14, func() (*Table, error) { f, err := r.Fig14(); return tbl(f, err) }},
		{15, func() (*Table, error) { f, err := r.Fig15(); return tbl(f, err) }},
		{16, func() (*Table, error) { f, err := r.Fig16(); return tbl(f, err) }},
		{17, func() (*Table, error) { f, err := r.Fig17(); return tbl(f, err) }},
		{18, func() (*Table, error) { f, err := r.Fig18(); return tbl(f, err) }},
		{19, func() (*Table, error) { f, err := r.Fig19(); return tbl(f, err) }},
		{20, func() (*Table, error) { f, err := r.Fig20(); return tbl(f, err) }},
		{21, func() (*Table, error) { f, err := r.Fig21(); return tbl(f, err) }},
		{22, func() (*Table, error) { f, err := r.Fig22(); return tbl(f, err) }},
		{23, func() (*Table, error) { f, err := r.Fig23(); return tbl(f, err) }},
		{24, func() (*Table, error) { f, err := r.Fig24(); return tbl(f, err) }},
	}
	for _, fig := range figs {
		tab, err := fig.table()
		if err != nil {
			t.Fatalf("fig %d: %v", fig.n, err)
		}
		fmt.Fprintf(&b, "%s\n", tab)
	}
	h, err := r.Headline()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "%s\n", h.Table())
	return b.String()
}

// tbl adapts a figure's (figure, error) pair to (figure.Table(), error).
func tbl(f interface{ Table() *Table }, err error) (*Table, error) {
	if err != nil {
		return nil, err
	}
	return f.Table(), nil
}

// TestGoldenParallelDeterminism is the reproducibility contract of the sweep
// engine: the full Figs. 14-24 pass (plus the headline aggregate) must be
// byte-identical at -parallel 1, 4 and 8. Each parallelism level uses a
// fresh Runner so nothing is served from a shared memo.
func TestGoldenParallelDeterminism(t *testing.T) {
	render := func(par int) string {
		r := fastRunner("CCS", "GTr")
		r.Parallel = par
		return renderSystemFigures(t, r)
	}
	want := render(1)
	if want == "" {
		t.Fatal("empty reference rendering")
	}
	for _, par := range []int{4, 8} {
		got := render(par)
		if got != want {
			t.Errorf("-parallel %d output differs from -parallel 1:\n%s", par, firstDiff(want, got))
		}
	}
}

// TestGoldenPrewarmDeterminism checks that a prewarmed parallel pass and a
// cold sequential pass render identical figures: the memo contents must not
// depend on which goroutine computed them.
func TestGoldenPrewarmDeterminism(t *testing.T) {
	cold := fastRunner("GTr")
	want := renderSystemFigures(t, cold)

	warm := fastRunner("GTr")
	warm.Parallel = 8
	if err := warm.Prewarm(8); err != nil {
		t.Fatal(err)
	}
	if got := renderSystemFigures(t, warm); got != want {
		t.Errorf("prewarmed rendering differs from cold sequential:\n%s", firstDiff(want, got))
	}
}

// firstDiff reports the first differing line of two renderings.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want %q\n  got  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(wl), len(gl))
}
