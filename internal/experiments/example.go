package experiments

import (
	"fmt"
	"sort"
	"strings"

	"tcor/internal/cache"
	"tcor/internal/mem"
	"tcor/internal/pbuffer"
	"tcor/internal/tcor"
	"tcor/internal/trace"
)

// Fig910 reproduces the paper's illustrative example (§III-C7, Figs. 9/10):
// a frame of 3 primitives and 9 tiles, processed in scanline order, with a
// fully associative cache holding two primitives. The Polygon List Builder
// makes 3 writes and the Tile Fetcher 9 reads (each tile is overlapped by
// exactly one primitive). The table shows the cache contents and the L2
// reads/writes after each access, for LRU and for TCOR's OPT.
//
// The example reproduces the paper's qualitative sequence: the first L2
// write happens at the third PLB write in both policies, but for LRU it is
// a write-back on eviction whereas OPT bypasses; OPT retains the primitive
// that LRU loses and so avoids a refetch; and OPT evicts dead primitives
// (never accessed again) that LRU keeps.
func Fig910() (*Table, error) {
	// The frame: which primitive each tile (in scanline order) uses, and
	// hence each primitive's tile list.
	//	prim 0 ("blue"):   tiles 0, 1, 4
	//	prim 1 ("yellow"): tile 2
	//	prim 2 ("pink"):   tiles 3, 5, 6, 7, 8
	tileToPrim := []uint32{0, 0, 1, 2, 0, 2, 2, 2, 2}
	names := []string{"blue", "yellow", "pink"}

	primTiles := make([][]uint16, 3)
	for t, p := range tileToPrim {
		primTiles[p] = append(primTiles[p], uint16(t))
	}

	// --- OPT: the real Attribute Cache with capacity for two primitives.
	optSink := mem.NewCounter()
	opt, err := tcor.NewAttributeCache(tcor.AttrCacheConfig{
		AttrEntries: 2, PrimEntries: 2, Ways: 2, WriteBypass: true,
	}, optSink)
	if err != nil {
		return nil, err
	}

	// --- LRU: a 2-line fully associative primitive-granularity cache.
	lru := cache.MustNew(cache.Config{Lines: 2, WriteAllocate: true}, cache.NewLRU())
	lruL2Reads, lruL2Writes := 0, 0

	attrs := pbuffer.NewAttrLayout()
	blockOf := func(p uint32) []uint64 { return []uint64{attrs.AttrAddr(p, 0)} }
	nextUse := func(p uint32, after int) uint16 {
		for _, t := range primTiles[p] {
			if int(t) > after {
				return t
			}
		}
		return pbuffer.MaxOPTNumber
	}
	lastUse := func(p uint32) uint16 { return primTiles[p][len(primTiles[p])-1] }

	table := &Table{
		Title:  "Figures 9/10: the 3-primitive / 9-tile example (capacity: 2 primitives)",
		Note:   "LRU ev./wb. = eviction & write-back; OPT byp. = write bypassed to L2",
		Header: []string{"Step", "Access", "LRU cache", "LRU L2", "OPT cache", "OPT L2"},
	}

	resident := func() string {
		var names3 []string
		for p := uint32(0); p < 3; p++ {
			if opt.Contains(p) {
				names3 = append(names3, names[p])
			}
		}
		return strings.Join(names3, ",")
	}
	lruResident := func() string {
		keys := lru.ResidentKeys()
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		var out []string
		for _, k := range keys {
			out = append(out, names[k])
		}
		return strings.Join(out, ",")
	}

	step := 0
	record := func(access string, lruEv, optEv string) {
		step++
		table.AddRow(fmt.Sprintf("%d", step), access, lruResident(), lruEv, resident(), optEv)
	}

	// Phase 1: Polygon List Builder writes.
	for p := uint32(0); p < 3; p++ {
		or0, ow0 := optSink.Reads, optSink.Writes
		opt.Write(p, 1, primTiles[p][0], lastUse(p), blockOf(p))
		optEv := l2Delta(optSink, or0, ow0)
		if opt.Stats().WriteBypasses > 0 && !opt.Contains(p) {
			optEv = "byp. " + optEv
		}

		res := lru.Access(trace.Access{Key: trace.Key(p), Write: true})
		lruEv := ""
		if res.Evicted && res.VictimDirty {
			lruL2Writes++
			lruEv = "wb. W1"
		}
		record("write "+names[p], lruEv, optEv)
	}

	// Phase 2: Tile Fetcher reads in scanline order.
	for t, p := range tileToPrim {
		or0, ow0 := optSink.Reads, optSink.Writes
		res := opt.Read(p, 1, nextUse(p, t), lastUse(p), blockOf(p))
		opt.Unlock(p) // the Rasterizer consumes immediately in this example
		optEv := l2Delta(optSink, or0, ow0)
		if res.Hit {
			optEv = "hit " + optEv
		}

		lres := lru.Access(trace.Access{Key: trace.Key(p)})
		lruEv := ""
		if lres.Hit {
			lruEv = "hit"
		} else {
			lruL2Reads++
			lruEv = "R1"
			if lres.Evicted && lres.VictimDirty {
				lruL2Writes++
				lruEv += " W1"
			}
		}
		record(fmt.Sprintf("tile %d: read %s", t, names[p]), lruEv, strings.TrimSpace(optEv))
	}

	table.AddRow("", "TOTAL",
		"", fmt.Sprintf("%d reads %d writes", lruL2Reads, lruL2Writes),
		"", fmt.Sprintf("%d reads %d writes", optSink.Reads, optSink.Writes))
	return table, nil
}

// Fig910Totals runs the example and returns the L2 totals for both
// policies (used by tests to assert OPT's advantage).
func Fig910Totals() (lruTotal, optTotal int64, err error) {
	t, err := Fig910()
	if err != nil {
		return 0, 0, err
	}
	last := t.Rows[len(t.Rows)-1]
	var lr, lw, or, ow int64
	if _, err := fmt.Sscanf(last[3], "%d reads %d writes", &lr, &lw); err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(last[5], "%d reads %d writes", &or, &ow); err != nil {
		return 0, 0, err
	}
	return lr + lw, or + ow, nil
}

func l2Delta(c *mem.Counter, r0, w0 int64) string {
	var parts []string
	if d := c.Reads - r0; d > 0 {
		parts = append(parts, fmt.Sprintf("R%d", d))
	}
	if d := c.Writes - w0; d > 0 {
		parts = append(parts, fmt.Sprintf("W%d", d))
	}
	return strings.Join(parts, " ")
}
