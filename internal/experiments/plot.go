package experiments

import (
	"fmt"
	"math"
	"strings"
)

// AsciiPlot renders a PolicyFigure's curves as a terminal line chart, so
// `paperfig -fig 1 -plot` reproduces the *figure*, not just its table. Each
// curve gets a marker; the y axis is the miss ratio, the x axis the cache
// size in KB.
func (p *PolicyFigure) AsciiPlot(width, height int) string {
	if len(p.Curves) == 0 || len(p.Curves[0].SizesKB) == 0 {
		return "(no data)\n"
	}
	if width < 20 {
		width = 64
	}
	if height < 5 {
		height = 16
	}
	markers := []byte{'L', 'O', '*', '+', 'x', 'o', '#', '@'}

	// Bounds.
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, c := range p.Curves {
		for _, v := range c.MissRatios {
			minY = math.Min(minY, v)
			maxY = math.Max(maxY, v)
		}
	}
	if maxY == minY {
		maxY = minY + 1e-9
	}
	minX := p.Curves[0].SizesKB[0]
	maxX := p.Curves[0].SizesKB[len(p.Curves[0].SizesKB)-1]
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range p.Curves {
		m := markers[ci%len(markers)]
		for i := range c.SizesKB {
			x := int((c.SizesKB[i] - minX) / (maxX - minX) * float64(width-1))
			y := int((maxY - c.MissRatios[i]) / (maxY - minY) * float64(height-1))
			if x >= 0 && x < width && y >= 0 && y < height {
				grid[y][x] = m
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d (miss ratio vs size in KB)\n", p.Fig)
	for i, row := range grid {
		label := "      "
		if i == 0 {
			label = fmt.Sprintf("%.3f ", maxY)
		} else if i == height-1 {
			label = fmt.Sprintf("%.3f ", minY)
		}
		fmt.Fprintf(&b, "%8s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%8s+%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s %-10.0f%*.0f\n", "", minX, width-10, maxX)
	b.WriteString("legend: ")
	for ci, c := range p.Curves {
		if ci > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s", markers[ci%len(markers)], c.Label)
	}
	b.WriteByte('\n')
	return b.String()
}
