package experiments

import "testing"

// TestGoldenSuiteBands locks the full-suite headline numbers into tolerance
// bands around the committed RESULTS.md values, so a change that silently
// breaks the calibration (workload statistics, cache mechanics, the energy
// model) fails loudly rather than drifting. Runs the whole ten-benchmark
// suite at one frame; skipped under -short.
func TestGoldenSuiteBands(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite golden check skipped in -short mode")
	}
	r := NewRunner()
	r.Frames = 1
	if err := r.Prewarm(4); err != nil {
		t.Fatal(err)
	}

	h, err := r.Headline()
	if err != nil {
		t.Fatal(err)
	}
	band := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s = %.3f outside the golden band [%.3f, %.3f] (paper-matching calibration broken?)",
				name, got, lo, hi)
		}
	}
	// Paper: 13.8% / 5.5% / 3.7% / ~5x. Bands are generous enough for
	// workload tweaks but catch mechanism regressions.
	band("memory hierarchy energy decrease", h.MemHierarchyDecrease, 0.08, 0.20)
	band("total GPU energy decrease", h.GPUEnergyDecrease, 0.03, 0.09)
	band("FPS increase", h.FPSIncrease, 0.01, 0.12)
	band("tiling engine speedup", h.TilingSpeedup, 2.5, 7.0)

	f16, err := r.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	band("PB->memory elimination (Fig. 16)", f16.Average, 0.85, 1.0)
	fullElim := 0
	for _, row := range f16.Rows {
		if row.TCORReads+row.TCORWrites == 0 {
			fullElim++
		}
	}
	if fullElim < 6 {
		t.Errorf("only %d/10 benchmarks fully eliminate PB memory traffic (paper: 7)", fullElim)
	}

	f14, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	band("PB->L2 decrease (Fig. 14)", f14.Average, 0.20, 0.45)
}
