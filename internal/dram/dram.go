// Package dram models main memory: a bank/row-buffer DRAM with an open-page
// policy. It stands in for DRAMSim2 in the paper's toolchain; only the
// properties that feed the results matter — access counts (energy), and
// row-hit vs row-miss latency (Table I: 50–100 cycles).
package dram

import (
	"fmt"

	"tcor/internal/geom"
	"tcor/internal/mem"
	"tcor/internal/memmap"
	"tcor/internal/stats"
)

// Config describes the DRAM geometry and timing.
type Config struct {
	Banks         int
	RowBytes      int
	RowHitCycles  int // latency when the row buffer already holds the row
	RowMissCycles int // latency when a new row must be activated
	// BytesPerCycle is the sustained data-bus bandwidth in bytes per GPU
	// clock cycle; it bounds frame time from below when a frame is
	// memory-bandwidth-bound. 16 B/cycle at 600 MHz is ~9.6 GB/s, a
	// contemporary mobile LPDDR channel.
	BytesPerCycle float64
}

// DefaultConfig returns a contemporary mobile LPDDR-style configuration
// matching Table I's 50–100 cycle main-memory latency.
func DefaultConfig() Config {
	return Config{Banks: 8, RowBytes: 2048, RowHitCycles: 50, RowMissCycles: 100, BytesPerCycle: 16}
}

// Stats counts DRAM events.
type Stats struct {
	Reads, Writes      int64
	RowHits, RowMisses int64
	TotalCycles        int64 // sum of per-access latencies
	// ReadCycles sums the latencies of read accesses only; writes are
	// posted and do not stall the requester.
	ReadCycles int64
	// BusyCycles is the data-bus occupancy: accesses x (64 B / bandwidth).
	// A frame can never finish faster than the DRAM is busy.
	BusyCycles int64
}

// Publish stores the counters into a stats registry under prefix.
func (s Stats) Publish(r *stats.Registry, prefix string) {
	r.Counter(prefix + ".reads").Store(s.Reads)
	r.Counter(prefix + ".writes").Store(s.Writes)
	r.Counter(prefix + ".rowHits").Store(s.RowHits)
	r.Counter(prefix + ".rowMisses").Store(s.RowMisses)
	r.Counter(prefix + ".totalCycles").Store(s.TotalCycles)
	r.Counter(prefix + ".readCycles").Store(s.ReadCycles)
	r.Counter(prefix + ".busyCycles").Store(s.BusyCycles)
}

// RegisterStatsInvariants registers the DRAM consistency checks: every
// access resolves to a row hit or a row miss, and read latency is part of
// total latency.
func RegisterStatsInvariants(r *stats.Registry, prefix string) {
	r.RegisterInvariant(prefix+".rowHits+rowMisses==accesses", func(s stats.Snapshot) error {
		if h, m, a := s.Get(prefix+".rowHits"), s.Get(prefix+".rowMisses"), s.Get(prefix+".reads")+s.Get(prefix+".writes"); h+m != a {
			return fmt.Errorf("%d row hits + %d row misses != %d accesses", h, m, a)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".readCycles<=totalCycles", func(s stats.Snapshot) error {
		if rc, tc := s.Get(prefix+".readCycles"), s.Get(prefix+".totalCycles"); rc > tc {
			return fmt.Errorf("%d read cycles exceed %d total cycles", rc, tc)
		}
		return nil
	})
}

// DRAM is the main-memory model. It is the terminal mem.Sink of the
// hierarchy and embeds a per-region access counter for the figures that
// report main-memory traffic by data type.
type DRAM struct {
	cfg     Config
	rows    []int64 // open row per bank; -1 = closed
	stats   Stats
	Counter *mem.Counter
}

// New builds the DRAM model.
func New(cfg Config) (*DRAM, error) {
	if cfg.Banks <= 0 || cfg.RowBytes <= 0 {
		return nil, fmt.Errorf("dram: bad geometry %+v", cfg)
	}
	if cfg.RowHitCycles <= 0 || cfg.RowMissCycles < cfg.RowHitCycles {
		return nil, fmt.Errorf("dram: bad timing %+v", cfg)
	}
	if cfg.BytesPerCycle <= 0 {
		cfg.BytesPerCycle = 16
	}
	d := &DRAM{cfg: cfg, rows: make([]int64, cfg.Banks), Counter: mem.NewCounter()}
	for i := range d.rows {
		d.rows[i] = -1
	}
	return d, nil
}

// Stats returns a copy of the statistics.
func (d *DRAM) Stats() Stats { return d.stats }

// bankAndRow splits an address into its bank and row. Banks interleave at
// row granularity.
func (d *DRAM) bankAndRow(addr uint64) (int, int64) {
	row := int64(addr / uint64(d.cfg.RowBytes))
	return int(row % int64(d.cfg.Banks)), row / int64(d.cfg.Banks)
}

// Latency returns the access latency for addr and updates the row-buffer
// state (open-page policy).
func (d *DRAM) Latency(addr uint64) int {
	bank, row := d.bankAndRow(addr)
	if d.rows[bank] == row {
		d.stats.RowHits++
		d.stats.TotalCycles += int64(d.cfg.RowHitCycles)
		return d.cfg.RowHitCycles
	}
	d.rows[bank] = row
	d.stats.RowMisses++
	d.stats.TotalCycles += int64(d.cfg.RowMissCycles)
	return d.cfg.RowMissCycles
}

// Access implements mem.Sink.
func (d *DRAM) Access(r mem.Request) {
	lat := d.Latency(r.Addr)
	if r.Write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
		d.stats.ReadCycles += int64(lat)
	}
	d.stats.BusyCycles += int64(float64(64)/d.cfg.BytesPerCycle + 0.5)
	d.Counter.Access(r)
}

// TileRetired implements mem.Sink (no-op).
func (d *DRAM) TileRetired(pos uint16, tile geom.TileID) {}

// EndFrame implements mem.Sink (no-op: DRAM state carries across frames).
func (d *DRAM) EndFrame() {}

// Region returns the per-region access counts.
func (d *DRAM) Region(r memmap.Region) mem.RegionCounts { return d.Counter.Region(r) }

// PB returns the combined Parameter Buffer access counts.
func (d *DRAM) PB() mem.RegionCounts { return d.Counter.PB() }

// Total returns reads+writes.
func (d *DRAM) Total() int64 { return d.stats.Reads + d.stats.Writes }
