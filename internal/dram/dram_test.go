package dram

import (
	"testing"

	"tcor/internal/mem"
	"tcor/internal/memmap"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config must fail")
	}
	if _, err := New(Config{Banks: 8, RowBytes: 2048, RowHitCycles: 100, RowMissCycles: 50}); err == nil {
		t.Error("miss faster than hit must fail")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Error(err)
	}
}

func TestRowBufferHitsAndMisses(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// First access: row miss.
	if lat := d.Latency(0); lat != 100 {
		t.Errorf("cold access latency = %d", lat)
	}
	// Same row: hit.
	if lat := d.Latency(64); lat != 50 {
		t.Errorf("row hit latency = %d", lat)
	}
	// Different row, same bank (stride banks*rowBytes): miss.
	if lat := d.Latency(8 * 2048); lat != 100 {
		t.Errorf("row conflict latency = %d", lat)
	}
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 2 {
		t.Errorf("hits/misses = %d/%d", st.RowHits, st.RowMisses)
	}
	if st.TotalCycles != 250 {
		t.Errorf("total cycles = %d", st.TotalCycles)
	}
}

func TestBankInterleaving(t *testing.T) {
	d, _ := New(DefaultConfig())
	// Consecutive rows land in different banks: both are cold misses but
	// each bank keeps its own open row afterwards.
	d.Latency(0)
	d.Latency(2048)
	if lat := d.Latency(64); lat != 50 {
		t.Error("bank 0 row should still be open")
	}
	if lat := d.Latency(2048 + 64); lat != 50 {
		t.Error("bank 1 row should still be open")
	}
}

func TestAccessCountsByRegion(t *testing.T) {
	d, _ := New(DefaultConfig())
	d.Access(mem.Request{Addr: memmap.PBAttributesBase, Write: true})
	d.Access(mem.Request{Addr: memmap.PBListsBase})
	d.Access(mem.Request{Addr: memmap.TexturesBase})
	if d.Total() != 3 {
		t.Errorf("total = %d", d.Total())
	}
	pb := d.PB()
	if pb.Reads != 1 || pb.Writes != 1 {
		t.Errorf("PB counts = %+v", pb)
	}
	if d.Region(memmap.RegionTextures).Reads != 1 {
		t.Error("texture read not counted")
	}
	st := d.Stats()
	if st.Reads != 2 || st.Writes != 1 {
		t.Errorf("reads/writes = %d/%d", st.Reads, st.Writes)
	}
}

func TestBusyCyclesAccumulate(t *testing.T) {
	d, _ := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		d.Access(mem.Request{Addr: uint64(i) * 64})
	}
	// 64 B at 16 B/cycle = 4 cycles per access.
	if got := d.Stats().BusyCycles; got != 40 {
		t.Errorf("busy cycles = %d, want 40", got)
	}
}

func TestBandwidthDefaultApplied(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BytesPerCycle = 0 // zero means "use the default"
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Access(mem.Request{Addr: 0})
	if d.Stats().BusyCycles == 0 {
		t.Error("bandwidth default not applied")
	}
}
