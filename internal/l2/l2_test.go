package l2

import (
	"math/rand"
	"testing"

	"tcor/internal/mem"
	"tcor/internal/memmap"
)

func newL2(t *testing.T, sizeBytes, ways int, enhanced bool) (*Cache, *mem.Counter) {
	t.Helper()
	sink := mem.NewCounter()
	c, err := New(Config{SizeBytes: sizeBytes, Ways: ways, Enhanced: enhanced}, sink)
	if err != nil {
		t.Fatal(err)
	}
	return c, sink
}

func TestNewErrors(t *testing.T) {
	if _, err := New(DefaultConfig(true), nil); err == nil {
		t.Error("nil sink must fail")
	}
	if _, err := New(Config{SizeBytes: 0, Ways: 8}, mem.NewCounter()); err == nil {
		t.Error("zero size must fail")
	}
	if _, err := New(Config{SizeBytes: 64 * 24, Ways: 8}, mem.NewCounter()); err == nil {
		t.Error("non-pow2 sets must fail")
	}
}

func TestReadMissFetchesFromMemory(t *testing.T) {
	c, sink := newL2(t, 1024, 2, false)
	c.Access(mem.Request{Addr: memmap.TexturesBase})
	if sink.Reads != 1 {
		t.Errorf("memory reads = %d", sink.Reads)
	}
	c.Access(mem.Request{Addr: memmap.TexturesBase})
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", st.Hits, st.Misses)
	}
}

func TestWriteMissAllocatesWithoutFetch(t *testing.T) {
	c, sink := newL2(t, 1024, 2, false)
	c.Access(mem.Request{Addr: memmap.PBAttributesBase, Write: true})
	if sink.Total() != 0 {
		t.Errorf("write allocate must not fetch, saw %d", sink.Total())
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d", st.Misses)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	// 2 lines, 2 ways, 1 set.
	c, sink := newL2(t, 128, 2, false)
	c.Access(mem.Request{Addr: memmap.PBAttributesBase, Write: true})
	c.Access(mem.Request{Addr: memmap.PBAttributesBase + 64, Write: true})
	c.Access(mem.Request{Addr: memmap.PBAttributesBase + 128}) // evicts LRU dirty
	if sink.Writes != 1 {
		t.Errorf("writebacks to memory = %d", sink.Writes)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("stats writebacks = %d", c.Stats().Writebacks)
	}
}

func TestDeadLineDroppedWriteback(t *testing.T) {
	c, sink := newL2(t, 128, 2, true)
	// Dirty PB line whose last tile is position 3.
	c.Access(mem.Request{Addr: memmap.PBAttributesBase, Write: true, LastUse: 3, HasLastUse: true})
	c.Access(mem.Request{Addr: memmap.TexturesBase})
	// Tile 3 retires: the PB line is dead.
	c.TileRetired(3, 0)
	// Force an eviction.
	c.Access(mem.Request{Addr: memmap.TexturesBase + 1024})
	st := c.Stats()
	if st.DeadEvictions != 1 || st.DroppedWritebacks != 1 {
		t.Errorf("dead/dropped = %d/%d, want 1/1", st.DeadEvictions, st.DroppedWritebacks)
	}
	if sink.Writes != 0 {
		t.Errorf("dead dirty line must not be written back, saw %d", sink.Writes)
	}
}

func TestPriorityDeadOverNonPBOverLivePB(t *testing.T) {
	// 3 classes in one set of 4 ways.
	c, _ := newL2(t, 256, 4, true)
	pbDead := memmap.PBAttributesBase       // last tile 1
	tex := memmap.TexturesBase + 64         // non-PB
	pbLive := memmap.PBAttributesBase + 128 // last tile 50
	pbLive2 := memmap.PBListsBase + 192     // last tile 60
	c.Access(mem.Request{Addr: pbDead, Write: true, LastUse: 1, HasLastUse: true})
	c.Access(mem.Request{Addr: tex})
	c.Access(mem.Request{Addr: pbLive, Write: true, LastUse: 50, HasLastUse: true})
	c.Access(mem.Request{Addr: pbLive2, Write: true, LastUse: 60, HasLastUse: true})
	c.TileRetired(2, 0)

	// First eviction: the dead PB line.
	c.Access(mem.Request{Addr: memmap.TexturesBase + 4096})
	if c.Stats().DeadEvictions != 1 {
		t.Fatalf("expected dead line evicted first: %+v", c.Stats())
	}
	// Second eviction: non-PB (the two textures are LRU-ordered; the old
	// one goes; live PB survives).
	c.Access(mem.Request{Addr: memmap.TexturesBase + 8192})
	occ := c.Occupancy()
	if occ[memmap.RegionPBAttributes] != 1 || occ[memmap.RegionPBLists] != 1 {
		t.Errorf("live PB lines must survive, occupancy %v", occ)
	}
	// Third: fill with another texture; victim must again be a texture
	// (non-PB class) not the live PB lines.
	c.Access(mem.Request{Addr: memmap.TexturesBase + 12288})
	occ = c.Occupancy()
	if occ[memmap.RegionPBAttributes] != 1 || occ[memmap.RegionPBLists] != 1 {
		t.Errorf("live PB evicted before non-PB: %v", occ)
	}
}

func TestBaselineLRUIgnoresClasses(t *testing.T) {
	c, sink := newL2(t, 128, 2, false)
	// Dirty dead-taggable PB line and a texture; baseline must evict pure
	// LRU and write the dirty line back.
	c.Access(mem.Request{Addr: memmap.PBAttributesBase, Write: true, LastUse: 0, HasLastUse: true})
	c.TileRetired(0, 0)
	c.Access(mem.Request{Addr: memmap.TexturesBase})
	c.Access(mem.Request{Addr: memmap.TexturesBase + 1024}) // evicts PB line (LRU)
	if c.Stats().DroppedWritebacks != 0 {
		t.Error("baseline must not drop writebacks")
	}
	if sink.Writes != 1 {
		t.Errorf("baseline writeback missing: %d", sink.Writes)
	}
}

func TestEndFrameDropsPBKeepsOthers(t *testing.T) {
	c, sink := newL2(t, 1024, 2, true)
	c.Access(mem.Request{Addr: memmap.PBAttributesBase, Write: true, LastUse: 9, HasLastUse: true})
	c.Access(mem.Request{Addr: memmap.PBListsBase + 64, Write: true, LastUse: 9, HasLastUse: true})
	c.Access(mem.Request{Addr: memmap.TexturesBase + 128})
	c.EndFrame()
	occ := c.Occupancy()
	if occ[memmap.RegionPBAttributes] != 0 || occ[memmap.RegionPBLists] != 0 {
		t.Errorf("PB lines must be dropped at frame end: %v", occ)
	}
	if occ[memmap.RegionTextures] != 1 {
		t.Errorf("texture lines must survive frame end: %v", occ)
	}
	if sink.Writes != 0 {
		t.Error("frame-end recycling must not write back")
	}
	if sink.Frames != 1 {
		t.Error("EndFrame must propagate")
	}
	// The retired counter reset: a new frame's PB line with last tile 0 is
	// NOT dead until tile 0 retires again.
	c.Access(mem.Request{Addr: memmap.PBAttributesBase, Write: true, LastUse: 0, HasLastUse: true})
	c.Access(mem.Request{Addr: memmap.PBAttributesBase + 64, Write: true, LastUse: 5, HasLastUse: true})
	st := c.Stats()
	c.Access(mem.Request{Addr: memmap.TexturesBase + 4096})
	c.Access(mem.Request{Addr: memmap.TexturesBase + 8192})
	if c.Stats().DeadEvictions != st.DeadEvictions {
		t.Error("nothing should be dead before any tile retires in the new frame")
	}
}

func TestTileRetiredPropagates(t *testing.T) {
	c, sink := newL2(t, 1024, 2, true)
	c.TileRetired(5, 3)
	if sink.TileRetirements != 1 {
		t.Error("TileRetired must propagate to the next level")
	}
	// Retirement is monotonic.
	c.TileRetired(2, 1)
	c.Access(mem.Request{Addr: memmap.PBAttributesBase, Write: true, LastUse: 4, HasLastUse: true})
	// Line with last use 4 <= retired 5 is dead even though a lower
	// retirement arrived later.
	for i := 1; i < 40; i++ {
		c.Access(mem.Request{Addr: memmap.TexturesBase + uint64(i)*64})
	}
	if c.Stats().DeadEvictions == 0 {
		t.Error("monotonic retirement lost")
	}
}

// Randomized invariant test: arbitrary interleavings of accesses, tile
// retirements and frame boundaries keep the L2's accounting consistent.
func TestL2InvariantsUnderRandomTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, enhanced := range []bool{false, true} {
		sink := mem.NewCounter()
		c, err := New(Config{SizeBytes: 16 * 1024, Ways: 4, Enhanced: enhanced}, sink)
		if err != nil {
			t.Fatal(err)
		}
		bases := []uint64{
			memmap.PBListsBase, memmap.PBAttributesBase,
			memmap.TexturesBase, memmap.InputGeometryBase,
		}
		retired := -1
		for i := 0; i < 50000; i++ {
			switch rng.Intn(20) {
			case 0:
				pos := uint16(rng.Intn(64))
				if int(pos) > retired {
					retired = int(pos)
				}
				c.TileRetired(pos, 0)
			case 1:
				if rng.Intn(10) == 0 {
					c.EndFrame()
					retired = -1
				}
			default:
				base := bases[rng.Intn(len(bases))]
				r := mem.Request{
					Addr:  base + uint64(rng.Intn(2048))*64,
					Write: rng.Intn(3) == 0,
				}
				if memmap.RegionOf(r.Addr).IsParameterBuffer() && rng.Intn(2) == 0 {
					r.LastUse = uint16(rng.Intn(64))
					r.HasLastUse = true
				}
				// Textures and geometry are read-only in the real machine.
				if !memmap.RegionOf(r.Addr).IsParameterBuffer() {
					r.Write = false
				}
				c.Access(r)
			}
		}
		st := c.Stats()
		if st.Hits+st.Misses != st.Reads+st.Writes {
			t.Errorf("enhanced=%v: hits+misses != accesses", enhanced)
		}
		if sink.Writes != st.Writebacks {
			t.Errorf("enhanced=%v: memory writes %d != writebacks %d",
				enhanced, sink.Writes, st.Writebacks)
		}
		if sink.Reads != st.MemReads {
			t.Errorf("enhanced=%v: memory reads %d != fills %d",
				enhanced, sink.Reads, st.MemReads)
		}
		if !enhanced && (st.DroppedWritebacks != 0 || st.DeadEvictions != 0) {
			t.Errorf("baseline used dead-line machinery: %+v", st)
		}
		// Occupancy never exceeds capacity.
		total := 0
		for _, n := range c.Occupancy() {
			total += n
		}
		if total > 16*1024/64 {
			t.Errorf("occupancy %d exceeds capacity", total)
		}
	}
}

// The enhanced L2 never evicts a live PB line while a dead one exists in
// the same set (spot-checked on a crafted stream).
func TestEnhancedNeverEvictsLiveOverDead(t *testing.T) {
	sink := mem.NewCounter()
	c, err := New(Config{SizeBytes: 128, Ways: 2, Enhanced: true}, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Live PB line (last tile 50) and dead PB line (last tile 1).
	c.Access(mem.Request{Addr: memmap.PBAttributesBase, Write: true, LastUse: 50, HasLastUse: true})
	c.Access(mem.Request{Addr: memmap.PBAttributesBase + 64, Write: true, LastUse: 1, HasLastUse: true})
	c.TileRetired(10, 0)
	c.Access(mem.Request{Addr: memmap.TexturesBase}) // forces one eviction
	occ := c.Occupancy()
	if occ[memmap.RegionPBAttributes] != 1 {
		t.Fatalf("occupancy %v", occ)
	}
	if c.Stats().DeadEvictions != 1 || sink.Writes != 0 {
		t.Errorf("dead line not chosen or written back: %+v writes=%d", c.Stats(), sink.Writes)
	}
}
