// Package l2 models the shared L2 cache with TCOR's enhancements
// (paper §III-D): every line is tagged with the Parameter Buffer section it
// belongs to (2-bit field) and, for PB data, the traversal position of the
// last tile that will use it (12-bit field). As the Tile Fetcher retires
// tiles, lines whose last-use tile has already been processed become dead;
// the replacement policy evicts dead lines first — dropping their write-back
// even when dirty — then non-PB lines, then live PB lines, with LRU inside
// each priority class.
package l2

import (
	"fmt"

	"tcor/internal/geom"
	"tcor/internal/mem"
	"tcor/internal/memmap"
	"tcor/internal/stats"
)

// Config describes the L2.
type Config struct {
	SizeBytes int
	Ways      int
	// Enhanced enables the TCOR dead-line replacement policy; when false
	// the cache is plain LRU (the baseline and the "TCOR without L2
	// enhancements" ablation).
	Enhanced bool
}

// DefaultConfig returns the Table I configuration: 1 MiB, 8-way.
func DefaultConfig(enhanced bool) Config {
	return Config{SizeBytes: 1 << 20, Ways: 8, Enhanced: enhanced}
}

// Stats counts L2 events. The counters satisfy, by construction:
//
//	Hits + Misses == Reads + Writes
//	MemReads <= Misses                 (write misses allocate without fetch)
//	DeadEvictions + LiveEvictions == Evictions
//	DroppedWritebacks <= DeadEvictions (only dead lines drop write-backs)
//	Writebacks + DroppedWritebacks <= Evictions
//	Enhanced == false => DeadEvictions == DroppedWritebacks == 0
//
// RegisterStatsInvariants enforces these on a published registry.
type Stats struct {
	Reads, Writes     int64
	Hits, Misses      int64
	Evictions         int64 // valid lines displaced by fills (not frame-end invalidations)
	Writebacks        int64 // dirty evictions written to memory
	DroppedWritebacks int64 // dirty dead lines evicted without write-back
	DeadEvictions     int64 // evictions that found a dead line
	MemReads          int64 // fills requested from memory
}

// LiveEvictions returns the evictions that displaced a line still alive.
func (s Stats) LiveEvictions() int64 { return s.Evictions - s.DeadEvictions }

// Publish stores the counters into a stats registry under prefix.
func (s Stats) Publish(r *stats.Registry, prefix string) {
	r.Counter(prefix + ".reads").Store(s.Reads)
	r.Counter(prefix + ".writes").Store(s.Writes)
	r.Counter(prefix + ".hits").Store(s.Hits)
	r.Counter(prefix + ".misses").Store(s.Misses)
	r.Counter(prefix + ".evictions").Store(s.Evictions)
	r.Counter(prefix + ".writebacks").Store(s.Writebacks)
	r.Counter(prefix + ".droppedWritebacks").Store(s.DroppedWritebacks)
	r.Counter(prefix + ".deadEvictions").Store(s.DeadEvictions)
	r.Counter(prefix + ".memReads").Store(s.MemReads)
}

// RegisterStatsInvariants registers the Stats consistency identities listed
// on the type. enhanced mirrors Config.Enhanced: the baseline L2 must never
// report dead-line activity.
func RegisterStatsInvariants(r *stats.Registry, prefix string, enhanced bool) {
	r.RegisterInvariant(prefix+".hits+misses==accesses", func(s stats.Snapshot) error {
		if h, m, a := s.Get(prefix+".hits"), s.Get(prefix+".misses"), s.Get(prefix+".reads")+s.Get(prefix+".writes"); h+m != a {
			return fmt.Errorf("%d hits + %d misses != %d reads+writes", h, m, a)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".memReads<=misses", func(s stats.Snapshot) error {
		if mr, m := s.Get(prefix+".memReads"), s.Get(prefix+".misses"); mr > m {
			return fmt.Errorf("%d memory fills exceed %d misses", mr, m)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".droppedWritebacks<=deadEvictions", func(s stats.Snapshot) error {
		if d, de := s.Get(prefix+".droppedWritebacks"), s.Get(prefix+".deadEvictions"); d > de {
			return fmt.Errorf("%d dropped write-backs exceed %d dead evictions", d, de)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".deadEvictions<=evictions", func(s stats.Snapshot) error {
		if de, e := s.Get(prefix+".deadEvictions"), s.Get(prefix+".evictions"); de > e {
			return fmt.Errorf("%d dead evictions exceed %d total evictions", de, e)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".writebacks+dropped<=evictions", func(s stats.Snapshot) error {
		if wb, d, e := s.Get(prefix+".writebacks"), s.Get(prefix+".droppedWritebacks"), s.Get(prefix+".evictions"); wb+d > e {
			return fmt.Errorf("%d write-backs + %d dropped exceed %d evictions", wb, d, e)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".baselineNeverDropsWritebacks", func(s stats.Snapshot) error {
		if enhanced {
			return nil
		}
		if d, de := s.Get(prefix+".droppedWritebacks"), s.Get(prefix+".deadEvictions"); d != 0 || de != 0 {
			return fmt.Errorf("baseline L2 reported %d dropped write-backs, %d dead evictions", d, de)
		}
		return nil
	})
}

type line struct {
	key     uint64 // block index
	valid   bool
	dirty   bool
	lastUse int64
	region  memmap.Region
	// lastTile is the traversal position of the last tile using this line;
	// tagged is whether it is known (PB lines in enhanced mode).
	lastTile uint16
	tagged   bool
}

// Cache is the shared L2.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	clock   int64
	stats   Stats
	next    mem.Sink
	// retired is the traversal position of the last tile the Tile Fetcher
	// finished; -1 before any tile retires.
	retired int
	// trace, when non-nil, records every eviction decision (nil = off; a
	// nil Ring is a no-op recorder, so the hot path pays one nil check).
	trace *stats.Ring
}

// New builds the L2; next receives main-memory traffic.
func New(cfg Config, next mem.Sink) (*Cache, error) {
	if next == nil {
		return nil, fmt.Errorf("l2: needs a next-level sink")
	}
	lines := cfg.SizeBytes / memmap.BlockBytes
	if cfg.Ways <= 0 || lines <= 0 || lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("l2: bad geometry %d bytes %d ways", cfg.SizeBytes, cfg.Ways)
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("l2: %d sets is not a power of two", sets)
	}
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, sets),
		setMask: uint64(sets - 1),
		next:    next,
		retired: -1,
	}
	backing := make([]line, lines)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return c, nil
}

// Stats returns a copy of the statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetEvictionTrace attaches a bounded event ring that records the last N
// eviction decisions (priority class, set, victim key, last-use tile tag,
// dropped-write-back flag). Pass nil to disable. For debugging replacement
// behaviour; it does not affect simulation results.
func (c *Cache) SetEvictionTrace(r *stats.Ring) { c.trace = r }

// className names a replacement priority class for the event trace.
func className(cl int) string {
	switch cl {
	case 0:
		return "dead"
	case 1:
		return "non-PB"
	default:
		return "live-PB"
	}
}

// isDead reports whether a line's data can never be read again: it belongs
// to the Parameter Buffer, its last-use tile is known, and that tile has
// retired (§III-D1).
func (c *Cache) isDead(l *line) bool {
	return c.cfg.Enhanced && l.tagged && l.region.IsParameterBuffer() &&
		c.retired >= 0 && int(l.lastTile) <= c.retired
}

// Access implements mem.Sink.
func (c *Cache) Access(r mem.Request) {
	c.clock++
	if r.Write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	key := memmap.Block(r.Addr)
	set := c.sets[key&c.setMask]
	for w := range set {
		if set[w].valid && set[w].key == key {
			c.stats.Hits++
			l := &set[w]
			l.lastUse = c.clock
			if r.Write {
				l.dirty = true
			}
			if r.HasLastUse {
				l.lastTile = r.LastUse
				l.tagged = true
			}
			return
		}
	}
	c.stats.Misses++
	// Fill. Reads fetch the block from memory; writes from the L1s are
	// full-block transfers (whole attribute blocks or full-line
	// write-backs), so write misses allocate without a fetch.
	if !r.Write {
		c.stats.MemReads++
		c.next.Access(mem.Request{Addr: memmap.BlockAddr(key)})
	}
	w := c.victim(set)
	if set[w].valid {
		c.evict(int(key&c.setMask), &set[w])
	}
	set[w] = line{
		key:      key,
		valid:    true,
		dirty:    r.Write,
		lastUse:  c.clock,
		region:   r.Region(),
		lastTile: r.LastUse,
		tagged:   r.HasLastUse,
	}
}

// victim selects a way: an invalid line if any; otherwise, in enhanced
// mode, the best line by priority class (dead > non-PB > live PB) with LRU
// inside the class (§III-D2); plain LRU otherwise.
func (c *Cache) victim(set []line) int {
	for w := range set {
		if !set[w].valid {
			return w
		}
	}
	if !c.cfg.Enhanced {
		return lruVictim(set)
	}
	best := 0
	bestClass := c.class(&set[0])
	for w := 1; w < len(set); w++ {
		cl := c.class(&set[w])
		if cl < bestClass || (cl == bestClass && set[w].lastUse < set[best].lastUse) {
			best, bestClass = w, cl
		}
	}
	return best
}

// class returns the replacement priority class: 0 dead, 1 non-PB, 2 live
// PB. Lower evicts first.
func (c *Cache) class(l *line) int {
	if c.isDead(l) {
		return 0
	}
	if !l.region.IsParameterBuffer() {
		return 1
	}
	return 2
}

func lruVictim(set []line) int {
	best := 0
	for w := 1; w < len(set); w++ {
		if set[w].lastUse < set[best].lastUse {
			best = w
		}
	}
	return best
}

// evict writes a dirty victim back to memory — unless it is dead, in which
// case the write-back is dropped (§III-D2: "it does not have to be written
// back to Main Memory even if it is dirty").
func (c *Cache) evict(set int, l *line) {
	c.stats.Evictions++
	dead := c.isDead(l)
	if c.trace != nil {
		c.trace.Record(stats.Event{
			Kind:    "evict",
			Class:   className(c.class(l)),
			Set:     set,
			Key:     l.key,
			Tile:    int(l.lastTile),
			Dirty:   l.dirty,
			Dropped: dead && l.dirty,
		})
	}
	if dead {
		c.stats.DeadEvictions++
		if l.dirty {
			c.stats.DroppedWritebacks++
		}
		return
	}
	if l.dirty {
		c.stats.Writebacks++
		c.next.Access(mem.Request{Addr: memmap.BlockAddr(l.key), Write: true})
	}
}

// TileRetired implements mem.Sink: the Tile Fetcher finished the tile at
// traversal position pos, so every PB line tagged with a last-use position
// <= pos is now dead.
func (c *Cache) TileRetired(pos uint16, tile geom.TileID) {
	if int(pos) > c.retired {
		c.retired = int(pos)
	}
	c.next.TileRetired(pos, tile)
}

// EndFrame implements mem.Sink: the Parameter Buffer is recycled, so PB
// lines are invalidated without write-back in *both* modes (the driver
// reclaims the buffer; this is not part of the TCOR enhancement). The
// retired-tile counter resets for the next frame.
func (c *Cache) EndFrame() {
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && l.region.IsParameterBuffer() {
				*l = line{}
			}
		}
	}
	c.retired = -1
	c.next.EndFrame()
}

// Occupancy returns how many valid lines currently hold data of each
// region; for tests and reports.
func (c *Cache) Occupancy() map[memmap.Region]int {
	out := make(map[memmap.Region]int)
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				out[c.sets[s][w].region]++
			}
		}
	}
	return out
}
