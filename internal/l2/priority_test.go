package l2

import (
	"testing"

	"tcor/internal/mem"
	"tcor/internal/memmap"
	"tcor/internal/stats"
)

// These tests pin the §III-D2 replacement policy step by step: victims are
// chosen dead-first, then non-PB, then live PB, with LRU inside each class,
// and a dirty dead victim drops its write-back. The eviction trace ring
// records every decision, so each test asserts the exact victim sequence.

// step is one stimulus to the L2 under test.
type step struct {
	addr    uint64
	write   bool
	last    uint16 // LastUse tag (tagged when hasLast)
	hasLast bool
	retire  int // when >= 0, retire this traversal position instead of accessing
}

func access(addr uint64) step { return step{addr: addr, retire: -1} }
func pbWrite(addr uint64, last uint16) step {
	return step{addr: addr, write: true, last: last, hasLast: true, retire: -1}
}
func retire(pos int) step { return step{retire: pos} }

// wantEvict is one expected entry of the eviction trace.
type wantEvict struct {
	addr    uint64
	class   string
	dirty   bool
	dropped bool
}

func TestEvictionPrioritySequences(t *testing.T) {
	const (
		pba = memmap.PBAttributesBase
		tex = memmap.TexturesBase
		blk = memmap.BlockBytes
	)
	cases := []struct {
		name      string
		enhanced  bool
		steps     []step
		want      []wantEvict
		wantDrops int64 // expected Stats.DroppedWritebacks
		wantMemWB int64 // expected write-backs reaching memory
	}{
		{
			// Class dominates recency: the dead line goes first even though
			// newer lines exist, then non-PB lines in LRU order; the live PB
			// line outlives them all and finally drops its own write-back
			// once its tile retires.
			name:     "dead then non-PB in LRU order, live PB last",
			enhanced: true,
			steps: []step{
				pbWrite(pba, 1),     // A: PB, dirty, last tile 1
				pbWrite(pba+blk, 5), // B: PB, dirty, last tile 5
				access(tex),         // C: non-PB
				access(tex + blk),   // D: non-PB
				retire(1),           // A is now dead
				access(tex + 2*blk), // evicts A (dead beats non-PB LRU)
				access(tex + 3*blk), // evicts C (non-PB LRU)
				access(tex + 4*blk), // evicts D
				access(tex + 5*blk), // evicts the tex+2*blk line
				retire(5),           // B is now dead
				access(tex + 6*blk), // evicts B, dropping its write-back
			},
			want: []wantEvict{
				{pba, "dead", true, true},
				{tex, "non-PB", false, false},
				{tex + blk, "non-PB", false, false},
				{tex + 2*blk, "non-PB", false, false},
				{pba + blk, "dead", true, true},
			},
			wantDrops: 2,
			wantMemWB: 0,
		},
		{
			// With no dead lines, non-PB beats live PB even when the non-PB
			// line is the most recently used; once the set is all live PB,
			// the LRU live line is evicted with a real write-back.
			name:     "live PB evicted only when nothing else remains",
			enhanced: true,
			steps: []step{
				pbWrite(pba, 7),        // A: live PB, dirty
				pbWrite(pba+blk, 8),    // B
				access(tex),            // C: non-PB
				pbWrite(pba+2*blk, 9),  // D
				access(tex + blk),      // evicts C (only non-PB, despite MRU-adjacent)
				pbWrite(pba+3*blk, 10), // evicts tex+blk (again the only non-PB)
				access(tex + 2*blk),    // all live PB: evicts A (LRU), write-back
			},
			want: []wantEvict{
				{tex, "non-PB", false, false},
				{tex + blk, "non-PB", false, false},
				{pba, "live-PB", true, false},
			},
			wantDrops: 0,
			wantMemWB: 1,
		},
		{
			// LRU breaks ties inside the dead class too.
			name:     "LRU within the dead class",
			enhanced: true,
			steps: []step{
				pbWrite(pba, 1),     // A
				pbWrite(pba+blk, 2), // B
				access(tex),
				access(tex + blk),
				retire(2),           // A and B both dead; A is older
				access(tex + 2*blk), // evicts A
				access(tex + 3*blk), // evicts B
			},
			want: []wantEvict{
				{pba, "dead", true, true},
				{pba + blk, "dead", true, true},
			},
			wantDrops: 2,
			wantMemWB: 0,
		},
		{
			// Regression: the baseline (Enhanced=false) must never invoke the
			// dead-line machinery — the same stimulus that drops write-backs
			// under TCOR writes every dirty victim back under plain LRU.
			name:     "baseline never drops write-backs",
			enhanced: false,
			steps: []step{
				pbWrite(pba, 1),
				pbWrite(pba+blk, 5),
				access(tex),
				access(tex + blk),
				retire(1),
				access(tex + 2*blk), // plain LRU: evicts A, writes it back
				access(tex + 3*blk), // evicts B, writes it back
			},
			want: []wantEvict{
				{pba, "non-PB", true, false}, // baseline classes are reported non-PB/live-PB by region only
				{pba + blk, "non-PB", true, false},
			},
			wantDrops: 0,
			wantMemWB: 2,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// 256 bytes / 4 ways = 4 lines, 1 set: every access contends.
			c, sink := newL2(t, 256, 4, tc.enhanced)
			ring := stats.NewRing(64)
			c.SetEvictionTrace(ring)
			for _, s := range tc.steps {
				if s.retire >= 0 {
					c.TileRetired(uint16(s.retire), 0)
					continue
				}
				c.Access(mem.Request{Addr: s.addr, Write: s.write, LastUse: s.last, HasLastUse: s.hasLast})
			}

			evs := ring.Events()
			if len(evs) != len(tc.want) {
				t.Fatalf("eviction count = %d, want %d: %+v", len(evs), len(tc.want), evs)
			}
			for i, w := range tc.want {
				e := evs[i]
				if e.Key != memmap.Block(w.addr) {
					t.Errorf("eviction %d: victim block %#x, want %#x", i, e.Key, memmap.Block(w.addr))
				}
				if tc.enhanced && e.Class != w.class {
					t.Errorf("eviction %d: class %q, want %q", i, e.Class, w.class)
				}
				if e.Dirty != w.dirty || e.Dropped != w.dropped {
					t.Errorf("eviction %d: dirty/dropped = %v/%v, want %v/%v",
						i, e.Dirty, e.Dropped, w.dirty, w.dropped)
				}
			}

			st := c.Stats()
			if st.DroppedWritebacks != tc.wantDrops {
				t.Errorf("DroppedWritebacks = %d, want %d", st.DroppedWritebacks, tc.wantDrops)
			}
			if st.Writebacks != tc.wantMemWB || sink.Writes != tc.wantMemWB {
				t.Errorf("write-backs = %d (stats) / %d (memory), want %d",
					st.Writebacks, sink.Writes, tc.wantMemWB)
			}
			if !tc.enhanced && (st.DeadEvictions != 0 || st.DroppedWritebacks != 0) {
				t.Errorf("baseline used dead-line machinery: %+v", st)
			}
			if st.Evictions != int64(len(tc.want)) {
				t.Errorf("Evictions = %d, want %d", st.Evictions, len(tc.want))
			}

			// The published registry must satisfy every Stats identity.
			reg := stats.NewRegistry()
			st.Publish(reg, "l2")
			RegisterStatsInvariants(reg, "l2", tc.enhanced)
			if err := reg.Check(); err != nil {
				t.Errorf("invariants violated: %v", err)
			}
		})
	}
}
