package mem

import (
	"testing"

	"tcor/internal/memmap"
)

func TestRequestRegion(t *testing.T) {
	r := Request{Addr: memmap.PBListsBase + 123}
	if r.Region() != memmap.RegionPBLists {
		t.Errorf("region = %v", r.Region())
	}
}

func TestCounterTallies(t *testing.T) {
	c := NewCounter()
	c.Access(Request{Addr: memmap.PBListsBase})
	c.Access(Request{Addr: memmap.PBListsBase + 64, Write: true})
	c.Access(Request{Addr: memmap.PBAttributesBase})
	c.Access(Request{Addr: memmap.TexturesBase})
	if c.Reads != 3 || c.Writes != 1 || c.Total() != 4 {
		t.Errorf("reads/writes/total = %d/%d/%d", c.Reads, c.Writes, c.Total())
	}
	lists := c.Region(memmap.RegionPBLists)
	if lists.Reads != 1 || lists.Writes != 1 {
		t.Errorf("lists = %+v", lists)
	}
	pb := c.PB()
	if pb.Reads != 2 || pb.Writes != 1 {
		t.Errorf("PB = %+v", pb)
	}
	// Untouched region is zero, not a panic.
	if got := c.Region(memmap.RegionFrameBuffer); got != (RegionCounts{}) {
		t.Errorf("untouched region = %+v", got)
	}
}

func TestCounterSignals(t *testing.T) {
	c := NewCounter()
	c.TileRetired(5, 3)
	c.TileRetired(6, 4)
	c.EndFrame()
	if c.TileRetirements != 2 || c.Frames != 1 {
		t.Errorf("retirements/frames = %d/%d", c.TileRetirements, c.Frames)
	}
}
