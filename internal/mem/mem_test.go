package mem

import (
	"encoding/json"
	"testing"

	"tcor/internal/memmap"
)

func TestRequestRegion(t *testing.T) {
	r := Request{Addr: memmap.PBListsBase + 123}
	if r.Region() != memmap.RegionPBLists {
		t.Errorf("region = %v", r.Region())
	}
}

func TestCounterTallies(t *testing.T) {
	c := NewCounter()
	c.Access(Request{Addr: memmap.PBListsBase})
	c.Access(Request{Addr: memmap.PBListsBase + 64, Write: true})
	c.Access(Request{Addr: memmap.PBAttributesBase})
	c.Access(Request{Addr: memmap.TexturesBase})
	if c.Reads != 3 || c.Writes != 1 || c.Total() != 4 {
		t.Errorf("reads/writes/total = %d/%d/%d", c.Reads, c.Writes, c.Total())
	}
	lists := c.Region(memmap.RegionPBLists)
	if lists.Reads != 1 || lists.Writes != 1 {
		t.Errorf("lists = %+v", lists)
	}
	pb := c.PB()
	if pb.Reads != 2 || pb.Writes != 1 {
		t.Errorf("PB = %+v", pb)
	}
	// Untouched region is zero, not a panic.
	if got := c.Region(memmap.RegionFrameBuffer); got != (RegionCounts{}) {
		t.Errorf("untouched region = %+v", got)
	}
}

func TestCounterSignals(t *testing.T) {
	c := NewCounter()
	c.TileRetired(5, 3)
	c.TileRetired(6, 4)
	c.EndFrame()
	if c.TileRetirements != 2 || c.Frames != 1 {
		t.Errorf("retirements/frames = %d/%d", c.TileRetirements, c.Frames)
	}
}

// TestCounterJSONCompat pins the counter's JSON encoding to the byte shape
// of its pre-array representation (a ByRegion object holding only touched
// regions), which golden results and persisted checkpoints depend on, and
// checks the round trip through UnmarshalJSON.
func TestCounterJSONCompat(t *testing.T) {
	c := NewCounter()
	c.Access(Request{Addr: memmap.PBListsBase})
	c.Access(Request{Addr: memmap.PBListsBase + 64, Write: true})
	c.Access(Request{Addr: memmap.TexturesBase})
	c.TileRetired(1, 2)
	c.EndFrame()
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"Reads":2,"Writes":1,"ByRegion":{` +
		`"2":{"Reads":1,"Writes":1},"4":{"Reads":1,"Writes":0}},` +
		`"TileRetirements":1,"Frames":1}`
	if string(data) != want {
		t.Fatalf("encoding drifted:\n got %s\nwant %s", data, want)
	}
	var back Counter
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != *c {
		t.Fatalf("round trip: %+v != %+v", back, *c)
	}
	empty, err := json.Marshal(NewCounter())
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != `{"Reads":0,"Writes":0,"ByRegion":{},"TileRetirements":0,"Frames":0}` {
		t.Fatalf("empty encoding drifted: %s", empty)
	}
}
