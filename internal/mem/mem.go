// Package mem defines the request plumbing between levels of the simulated
// memory hierarchy: a Request (block address + metadata) and the Sink
// interface implemented by every level that can service requests from the
// level above (the shared L2, the DRAM model, and counting stubs in tests).
package mem

import (
	"bytes"
	"encoding/json"
	"fmt"

	"tcor/internal/geom"
	"tcor/internal/memmap"
	"tcor/internal/stats"
)

// Request is one block-granularity access travelling down the hierarchy.
type Request struct {
	// Block is the byte address of the 64-byte block (aligned or not; the
	// receiver normalizes with memmap.Block).
	Addr uint64
	// Write distinguishes write(-back) requests from reads.
	Write bool
	// LastUse is the traversal position of the last tile that will use this
	// block. Only meaningful for Parameter Buffer data; TCOR's Polygon List
	// Builder stores it in the spare bits of PB-Attributes blocks and the
	// L2 derives it from the address for PB-Lists blocks (§III-D1).
	// memmap-region classification decides whether it is consulted.
	LastUse uint16
	// HasLastUse reports whether LastUse carries information (TCOR
	// configurations set it; the baseline never does).
	HasLastUse bool
}

// Region classifies the request's address.
func (r Request) Region() memmap.Region { return memmap.RegionOf(r.Addr) }

// Sink is a memory hierarchy level that accepts requests from above.
type Sink interface {
	// Access services one request.
	Access(r Request)
	// TileRetired tells the level that the Tile Fetcher finished the tile
	// at the given traversal position (dead-line bookkeeping, §III-D1).
	// Levels that don't care ignore it.
	TileRetired(pos uint16, tile geom.TileID)
	// EndFrame marks a frame boundary: the Parameter Buffer is recycled by
	// the driver, so PB lines are invalidated without write-back.
	EndFrame()
}

// Counter is a Sink that tallies requests by region and direction. It is the
// terminal level in unit tests and doubles as the access meter in front of
// DRAM. Per-region tallies live in a fixed array indexed by region — the
// counter sits on the per-access hot path of every simulation, where the
// former map lookup (hash + pointer chase per access) was measurable.
type Counter struct {
	Reads, Writes   int64
	byRegion        [memmap.NumRegions]RegionCounts
	TileRetirements int
	Frames          int
}

// RegionCounts holds per-region read/write tallies.
type RegionCounts struct {
	Reads, Writes int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{}
}

// Access implements Sink.
func (c *Counter) Access(r Request) {
	rc := &c.byRegion[r.Region()]
	if r.Write {
		c.Writes++
		rc.Writes++
	} else {
		c.Reads++
		rc.Reads++
	}
}

// TileRetired implements Sink.
func (c *Counter) TileRetired(pos uint16, tile geom.TileID) { c.TileRetirements++ }

// EndFrame implements Sink.
func (c *Counter) EndFrame() { c.Frames++ }

// Total returns reads+writes.
func (c *Counter) Total() int64 { return c.Reads + c.Writes }

// Region returns the counts for one region (zero value if untouched).
func (c *Counter) Region(r memmap.Region) RegionCounts {
	if int(r) >= len(c.byRegion) {
		return RegionCounts{}
	}
	return c.byRegion[r]
}

// MarshalJSON reproduces the byte shape of the counter's former
// map-of-pointers representation: a "ByRegion" object holding only the
// touched regions, keyed by the region's decimal value in ascending order
// (single-digit keys, so numeric order and encoding/json's sorted-string
// map order coincide). Golden results, content-addressed caches and sweep
// checkpoints serialized before the array conversion keep matching.
func (c *Counter) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"Reads":%d,"Writes":%d,"ByRegion":{`, c.Reads, c.Writes)
	first := true
	for i := range c.byRegion {
		rc := &c.byRegion[i]
		if rc.Reads == 0 && rc.Writes == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, `"%d":{"Reads":%d,"Writes":%d}`, i, rc.Reads, rc.Writes)
	}
	fmt.Fprintf(&b, `},"TileRetirements":%d,"Frames":%d}`, c.TileRetirements, c.Frames)
	return b.Bytes(), nil
}

// UnmarshalJSON accepts the same shape MarshalJSON emits (which is also the
// pre-conversion encoding), so persisted results round-trip.
func (c *Counter) UnmarshalJSON(data []byte) error {
	var aux struct {
		Reads, Writes   int64
		ByRegion        map[memmap.Region]RegionCounts
		TileRetirements int
		Frames          int
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	*c = Counter{Reads: aux.Reads, Writes: aux.Writes,
		TileRetirements: aux.TileRetirements, Frames: aux.Frames}
	for r, rc := range aux.ByRegion {
		if int(r) < len(c.byRegion) {
			c.byRegion[r] = rc
		}
	}
	return nil
}

// PB returns combined Parameter Buffer reads and writes (both sections).
func (c *Counter) PB() RegionCounts {
	l := c.Region(memmap.RegionPBLists)
	a := c.Region(memmap.RegionPBAttributes)
	return RegionCounts{Reads: l.Reads + a.Reads, Writes: l.Writes + a.Writes}
}

// Publish stores the counter's totals and per-region tallies into a stats
// registry under prefix (e.g. "l2.in.region.PB-Lists.reads"). Every region
// is published — touched or not — so the JSON schema is stable across runs.
func (c *Counter) Publish(r *stats.Registry, prefix string) {
	r.Counter(prefix + ".reads").Store(c.Reads)
	r.Counter(prefix + ".writes").Store(c.Writes)
	r.Counter(prefix + ".tileRetirements").Store(int64(c.TileRetirements))
	r.Counter(prefix + ".frames").Store(int64(c.Frames))
	for reg := memmap.RegionOther; reg <= memmap.RegionFragShaderInstr; reg++ {
		rc := c.Region(reg)
		r.Counter(prefix + ".region." + reg.String() + ".reads").Store(rc.Reads)
		r.Counter(prefix + ".region." + reg.String() + ".writes").Store(rc.Writes)
	}
}

// RegisterStatsInvariants registers the counter's consistency check: the
// per-region tallies partition the totals exactly.
func RegisterStatsInvariants(r *stats.Registry, prefix string) {
	r.RegisterInvariant(prefix+".regionsPartitionTotals", func(s stats.Snapshot) error {
		var reads, writes int64
		for reg := memmap.RegionOther; reg <= memmap.RegionFragShaderInstr; reg++ {
			reads += s.Get(prefix + ".region." + reg.String() + ".reads")
			writes += s.Get(prefix + ".region." + reg.String() + ".writes")
		}
		if tr, tw := s.Get(prefix+".reads"), s.Get(prefix+".writes"); reads != tr || writes != tw {
			return fmt.Errorf("region sums %d/%d != totals %d/%d", reads, writes, tr, tw)
		}
		return nil
	})
}
