// Package mem defines the request plumbing between levels of the simulated
// memory hierarchy: a Request (block address + metadata) and the Sink
// interface implemented by every level that can service requests from the
// level above (the shared L2, the DRAM model, and counting stubs in tests).
package mem

import (
	"fmt"

	"tcor/internal/geom"
	"tcor/internal/memmap"
	"tcor/internal/stats"
)

// Request is one block-granularity access travelling down the hierarchy.
type Request struct {
	// Block is the byte address of the 64-byte block (aligned or not; the
	// receiver normalizes with memmap.Block).
	Addr uint64
	// Write distinguishes write(-back) requests from reads.
	Write bool
	// LastUse is the traversal position of the last tile that will use this
	// block. Only meaningful for Parameter Buffer data; TCOR's Polygon List
	// Builder stores it in the spare bits of PB-Attributes blocks and the
	// L2 derives it from the address for PB-Lists blocks (§III-D1).
	// memmap-region classification decides whether it is consulted.
	LastUse uint16
	// HasLastUse reports whether LastUse carries information (TCOR
	// configurations set it; the baseline never does).
	HasLastUse bool
}

// Region classifies the request's address.
func (r Request) Region() memmap.Region { return memmap.RegionOf(r.Addr) }

// Sink is a memory hierarchy level that accepts requests from above.
type Sink interface {
	// Access services one request.
	Access(r Request)
	// TileRetired tells the level that the Tile Fetcher finished the tile
	// at the given traversal position (dead-line bookkeeping, §III-D1).
	// Levels that don't care ignore it.
	TileRetired(pos uint16, tile geom.TileID)
	// EndFrame marks a frame boundary: the Parameter Buffer is recycled by
	// the driver, so PB lines are invalidated without write-back.
	EndFrame()
}

// Counter is a Sink that tallies requests by region and direction. It is the
// terminal level in unit tests and doubles as the access meter in front of
// DRAM.
type Counter struct {
	Reads, Writes   int64
	ByRegion        map[memmap.Region]*RegionCounts
	TileRetirements int
	Frames          int
}

// RegionCounts holds per-region read/write tallies.
type RegionCounts struct {
	Reads, Writes int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{ByRegion: make(map[memmap.Region]*RegionCounts)}
}

// Access implements Sink.
func (c *Counter) Access(r Request) {
	rc := c.ByRegion[r.Region()]
	if rc == nil {
		rc = &RegionCounts{}
		c.ByRegion[r.Region()] = rc
	}
	if r.Write {
		c.Writes++
		rc.Writes++
	} else {
		c.Reads++
		rc.Reads++
	}
}

// TileRetired implements Sink.
func (c *Counter) TileRetired(pos uint16, tile geom.TileID) { c.TileRetirements++ }

// EndFrame implements Sink.
func (c *Counter) EndFrame() { c.Frames++ }

// Total returns reads+writes.
func (c *Counter) Total() int64 { return c.Reads + c.Writes }

// Region returns the counts for one region (zero value if untouched).
func (c *Counter) Region(r memmap.Region) RegionCounts {
	if rc := c.ByRegion[r]; rc != nil {
		return *rc
	}
	return RegionCounts{}
}

// PB returns combined Parameter Buffer reads and writes (both sections).
func (c *Counter) PB() RegionCounts {
	l := c.Region(memmap.RegionPBLists)
	a := c.Region(memmap.RegionPBAttributes)
	return RegionCounts{Reads: l.Reads + a.Reads, Writes: l.Writes + a.Writes}
}

// Publish stores the counter's totals and per-region tallies into a stats
// registry under prefix (e.g. "l2.in.region.PB-Lists.reads"). Every region
// is published — touched or not — so the JSON schema is stable across runs.
func (c *Counter) Publish(r *stats.Registry, prefix string) {
	r.Counter(prefix + ".reads").Store(c.Reads)
	r.Counter(prefix + ".writes").Store(c.Writes)
	r.Counter(prefix + ".tileRetirements").Store(int64(c.TileRetirements))
	r.Counter(prefix + ".frames").Store(int64(c.Frames))
	for reg := memmap.RegionOther; reg <= memmap.RegionFragShaderInstr; reg++ {
		rc := c.Region(reg)
		r.Counter(prefix + ".region." + reg.String() + ".reads").Store(rc.Reads)
		r.Counter(prefix + ".region." + reg.String() + ".writes").Store(rc.Writes)
	}
}

// RegisterStatsInvariants registers the counter's consistency check: the
// per-region tallies partition the totals exactly.
func RegisterStatsInvariants(r *stats.Registry, prefix string) {
	r.RegisterInvariant(prefix+".regionsPartitionTotals", func(s stats.Snapshot) error {
		var reads, writes int64
		for reg := memmap.RegionOther; reg <= memmap.RegionFragShaderInstr; reg++ {
			reads += s.Get(prefix + ".region." + reg.String() + ".reads")
			writes += s.Get(prefix + ".region." + reg.String() + ".writes")
		}
		if tr, tw := s.Get(prefix+".reads"), s.Get(prefix+".writes"); reads != tr || writes != tw {
			return fmt.Errorf("region sums %d/%d != totals %d/%d", reads, writes, tr, tw)
		}
		return nil
	})
}
