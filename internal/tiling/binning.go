package tiling

import (
	"fmt"

	"tcor/internal/geom"
	"tcor/internal/pbuffer"
)

// BinEntry is one element of a tile's primitive list: the primitive index
// (into the frame's program-order slice) plus the OPT Number the Polygon
// List Builder computed for this (primitive, tile) occurrence — the
// traversal position of the *next* tile that will use this primitive, or
// pbuffer.MaxOPTNumber if this is the last use.
type BinEntry struct {
	Prim   uint32
	OPTNum uint16
}

// Binning is the output of the Polygon List Builder for one frame: the
// per-tile primitive lists plus the per-primitive future-use information
// TCOR threads through the Parameter Buffer.
type Binning struct {
	Screen    geom.Screen
	Traversal *Traversal

	// Lists holds, for each tile ID, the primitives overlapping it in
	// program order (the order the PLB appended them).
	Lists [][]BinEntry

	// PrimTiles holds, for each primitive, the traversal positions of the
	// tiles it overlaps, sorted ascending (i.e. in fetch order).
	PrimTiles [][]uint16

	// AttrBase assigns each primitive the global index of its first
	// attribute in PB-Attributes (the paper uses this address as the
	// Primitive ID).
	AttrBase []uint32

	// NumAttrs caches each primitive's attribute count.
	NumAttrs []uint8

	// FirstUse and LastUse are per-primitive traversal positions of the
	// first and last tiles that read the primitive. FirstUse is the OPT
	// Number carried by PLB write requests (§III-C4); LastUse feeds the L2
	// dead-line tagging (§III-D1).
	FirstUse []uint16
	LastUse  []uint16

	// TotalAttrs is the number of attribute blocks in PB-Attributes.
	TotalAttrs uint32
	// TotalOverlaps is the number of PMDs across all lists.
	TotalOverlaps int
	// Overflowed counts primitive-tile pairs dropped because a tile list
	// reached pbuffer.MaxPrimsPerTile.
	Overflowed int
}

// OverlapTest selects the Polygon List Builder's tile-overlap test.
type OverlapTest int

const (
	// OverlapExact uses the exact triangle-rectangle test (the paper's
	// baseline and TCOR both bin exactly; cf. Antochi et al. [2]).
	OverlapExact OverlapTest = iota
	// OverlapBBox bins by bounding box only: cheaper logic, but thin and
	// diagonal primitives appear in tile lists they never touch, inflating
	// the Parameter Buffer (the false-overlap problem of [39]).
	OverlapBBox
)

// Bin runs the Polygon List Builder's binning pass over a frame: it
// identifies the tiles each primitive overlaps (exact triangle-tile test),
// appends the primitive to each list, and computes OPT Numbers, first-use
// and last-use positions from the fixed traversal order.
func Bin(screen geom.Screen, trav *Traversal, prims []geom.Primitive) (*Binning, error) {
	return BinWithOverlap(screen, trav, prims, OverlapExact)
}

// BinWithOverlap is Bin with an explicit overlap test.
func BinWithOverlap(screen geom.Screen, trav *Traversal, prims []geom.Primitive, ot OverlapTest) (*Binning, error) {
	if trav.NumTiles() != screen.NumTiles() {
		return nil, fmt.Errorf("tiling: traversal covers %d tiles, screen has %d",
			trav.NumTiles(), screen.NumTiles())
	}
	n := len(prims)
	b := &Binning{
		Screen:    screen,
		Traversal: trav,
		Lists:     make([][]BinEntry, screen.NumTiles()),
		PrimTiles: make([][]uint16, n),
		AttrBase:  make([]uint32, n),
		NumAttrs:  make([]uint8, n),
		FirstUse:  make([]uint16, n),
		LastUse:   make([]uint16, n),
	}

	var tilesBuf []geom.TileID
	var attrCursor uint32
	for i := range prims {
		p := &prims[i]
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if p.ID != uint32(i) {
			return nil, fmt.Errorf("tiling: primitive %d has ID %d; expected program order", i, p.ID)
		}
		b.AttrBase[i] = attrCursor
		b.NumAttrs[i] = uint8(len(p.Attrs))
		attrCursor += uint32(len(p.Attrs))

		if ot == OverlapBBox {
			tilesBuf = screen.OverlappedTilesBBox(p, tilesBuf[:0])
		} else {
			tilesBuf = screen.OverlappedTiles(p, tilesBuf[:0])
		}
		if len(tilesBuf) == 0 {
			// Culled: overlaps nothing; never read.
			b.FirstUse[i] = pbuffer.MaxOPTNumber
			b.LastUse[i] = pbuffer.MaxOPTNumber
			continue
		}
		// Map to traversal positions and sort ascending (insertion sort;
		// overlap counts are small).
		pos := make([]uint16, 0, len(tilesBuf))
		for _, t := range tilesBuf {
			pos = append(pos, trav.Pos[t])
		}
		sortU16(pos)
		b.PrimTiles[i] = pos
		b.FirstUse[i] = pos[0]
		b.LastUse[i] = pos[len(pos)-1]

		// Append one PMD per overlapped tile, carrying the position of the
		// *next* tile to use this primitive.
		for k, tp := range pos {
			next := uint16(pbuffer.MaxOPTNumber)
			if k+1 < len(pos) {
				next = pos[k+1]
			}
			tile := trav.Seq[tp]
			if len(b.Lists[tile]) >= pbuffer.MaxPrimsPerTile {
				b.Overflowed++
				continue
			}
			b.Lists[tile] = append(b.Lists[tile], BinEntry{Prim: uint32(i), OPTNum: next})
			b.TotalOverlaps++
		}
	}
	b.TotalAttrs = attrCursor
	return b, nil
}

// ListLen returns the number of PMDs in tile t's list.
func (b *Binning) ListLen(t geom.TileID) int { return len(b.Lists[t]) }

// ListBlocks returns the number of PB-Lists blocks tile t's list occupies.
func (b *Binning) ListBlocks(t geom.TileID) int {
	return (len(b.Lists[t]) + pbuffer.PMDsPerBlock - 1) / pbuffer.PMDsPerBlock
}

func sortU16(s []uint16) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
