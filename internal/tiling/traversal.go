// Package tiling implements the Tiling Engine of the TBR pipeline: the
// Polygon List Builder, which bins primitives into per-tile lists and — in
// TCOR — derives the OPT Numbers and last-tile information from the binning
// (paper §III-A), and the Tile Fetcher, which walks the tiles in a fixed
// traversal order and replays each tile's primitives to the Raster Pipeline.
package tiling

import (
	"fmt"
	"sort"

	"tcor/internal/geom"
)

// Order selects the tile traversal order of the Tile Fetcher.
type Order int

// Supported traversal orders. Table I uses Z-order.
const (
	// OrderScanline walks tiles row-major, left to right, top to bottom.
	OrderScanline Order = iota
	// OrderZ walks tiles along a Morton (Z-order) curve, the paper's
	// configuration.
	OrderZ
	// OrderHilbert walks tiles along a Hilbert curve: strictly adjacent
	// steps, the best tile-to-tile locality of the three orders (an
	// extension beyond the paper's Table I; see the ablation).
	OrderHilbert
)

// String returns the order name.
func (o Order) String() string {
	switch o {
	case OrderScanline:
		return "scanline"
	case OrderZ:
		return "z-order"
	case OrderHilbert:
		return "hilbert"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Traversal is a fixed tile processing order: the sequence of tiles and the
// inverse map from tile ID to traversal position. OPT Numbers are traversal
// positions, because "accessed farther in the future" is only meaningful
// along this sequence.
type Traversal struct {
	Seq []geom.TileID // position -> tile
	Pos []uint16      // tile -> position
}

// NewTraversal builds the traversal for a screen.
func NewTraversal(screen geom.Screen, order Order) (*Traversal, error) {
	if err := screen.Validate(); err != nil {
		return nil, err
	}
	n := screen.NumTiles()
	t := &Traversal{
		Seq: make([]geom.TileID, n),
		Pos: make([]uint16, n),
	}
	switch order {
	case OrderScanline:
		for i := 0; i < n; i++ {
			t.Seq[i] = geom.TileID(i)
		}
	case OrderHilbert:
		for i := 0; i < n; i++ {
			t.Seq[i] = geom.TileID(i)
		}
		tx := screen.TilesX()
		// Hilbert order on the smallest power-of-two square covering the
		// grid; sorting preserves the relative curve order for the real
		// (possibly non-square) grid.
		side := 1
		for side < tx || side < screen.TilesY() {
			side <<= 1
		}
		sort.Slice(t.Seq, func(a, b int) bool {
			ia, ib := int(t.Seq[a]), int(t.Seq[b])
			ha := hilbertD(side, ia%tx, ia/tx)
			hb := hilbertD(side, ib%tx, ib/tx)
			if ha != hb {
				return ha < hb
			}
			return ia < ib
		})
	case OrderZ:
		// Sort tiles by Morton code of their (x, y) tile coordinates. For
		// non-power-of-two grids this is the standard "sorted Morton"
		// construction: the relative Z ordering is preserved and every
		// tile appears exactly once.
		for i := 0; i < n; i++ {
			t.Seq[i] = geom.TileID(i)
		}
		tx := screen.TilesX()
		sort.Slice(t.Seq, func(a, b int) bool {
			ia, ib := int(t.Seq[a]), int(t.Seq[b])
			ma := morton(uint32(ia%tx), uint32(ia/tx))
			mb := morton(uint32(ib%tx), uint32(ib/tx))
			if ma != mb {
				return ma < mb
			}
			return ia < ib
		})
	default:
		return nil, fmt.Errorf("tiling: unknown traversal order %d", order)
	}
	for p, id := range t.Seq {
		t.Pos[id] = uint16(p)
	}
	return t, nil
}

// NumTiles returns the number of tiles in the traversal.
func (t *Traversal) NumTiles() int { return len(t.Seq) }

// hilbertD converts (x, y) on a side-by-side grid (side a power of two) to
// its distance along the Hilbert curve (the classic rotate-and-flip
// iteration).
func hilbertD(side, x, y int) int {
	d := 0
	for s := side / 2; s > 0; s /= 2 {
		rx, ry := 0, 0
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		if ry == 0 { // rotate the quadrant
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// morton interleaves the low 16 bits of x and y into a 32-bit Z-order code.
func morton(x, y uint32) uint64 {
	return uint64(spread(x)) | uint64(spread(y))<<1
}

// spread inserts a zero bit between each of the low 16 bits of v.
func spread(v uint32) uint32 {
	v &= 0xFFFF
	v = (v | v<<8) & 0x00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}
