package tiling_test

import (
	"fmt"

	"tcor/internal/geom"
	"tcor/internal/tiling"
)

// Bin a single primitive overlapping two tiles and inspect the OPT Numbers
// the Polygon List Builder derives: the first occurrence points at the next
// tile's traversal position, the last carries the "never again" sentinel.
func ExampleBin() {
	screen := geom.Screen{Width: 64, Height: 32, TileSize: 32} // tiles 0 and 1
	trav, _ := tiling.NewTraversal(screen, tiling.OrderScanline)
	prims := []geom.Primitive{{
		ID:    0,
		Pos:   [3]geom.Vec2{{X: 4, Y: 4}, {X: 60, Y: 4}, {X: 4, Y: 28}},
		Attrs: []geom.Attribute{{}},
	}}
	b, _ := tiling.Bin(screen, trav, prims)
	for tile := 0; tile < 2; tile++ {
		e := b.Lists[tile][0]
		fmt.Printf("tile %d: prim %d, OPT number %#x\n", tile, e.Prim, e.OPTNum)
	}
	// Output:
	// tile 0: prim 0, OPT number 0x1
	// tile 1: prim 0, OPT number 0xfff
}
