package tiling

import (
	"sync"

	"tcor/internal/geom"
	"tcor/internal/pbuffer"
)

// Handler receives the Tiling Engine's Parameter Buffer access stream in
// program order. The two pipeline phases are delivered strictly in sequence
// — all Polygon List Builder writes, then the Tile Fetcher's tile-by-tile
// reads — because the Parameter Buffer is built and used up in consecutive
// pipeline stages within a frame (paper §I, §II-B).
//
// Block-granularity events carry byte-addressable block addresses so
// handlers can feed conventional caches; primitive-granularity events carry
// the decoded PMD content so handlers can feed TCOR's Attribute Cache.
type Handler interface {
	// ListWrite reports the PLB appending one PMD; addr is the byte address
	// of the PMD slot. tile is the list's tile.
	ListWrite(addr uint64, tile geom.TileID)
	// AttrWrite reports the PLB writing one whole primitive into
	// PB-Attributes. firstUse is the traversal position of the first tile
	// that will read the primitive (the OPT Number of write requests,
	// §III-C4); lastUse feeds the L2 dead-line tag. attrBlocks lists the
	// block addresses of the primitive's attributes.
	AttrWrite(prim uint32, numAttrs uint8, firstUse, lastUse uint16, attrBlocks []uint64)
	// ListRead reports the Tile Fetcher reading one PB-Lists block of the
	// given tile.
	ListRead(addr uint64, tile geom.TileID)
	// PrimRead reports the Tile Fetcher requesting one primitive's
	// attributes while processing the given tile. optNum is the traversal
	// position of the next tile that uses this primitive
	// (pbuffer.MaxOPTNumber when dead); lastUse is the primitive's overall
	// last-use position; attrBlocks as in AttrWrite.
	PrimRead(prim uint32, numAttrs uint8, optNum, lastUse uint16, attrBlocks []uint64, tile geom.TileID)
	// TileDone reports the Tile Fetcher finishing a tile; pos is its
	// traversal position. The L2 uses this signal to advance its retired-
	// tile counter (§III-D1).
	TileDone(tile geom.TileID, pos uint16)
}

// Replay drives a handler with the full Tiling Engine access stream of a
// binned frame under the given PB-Lists layout.
func Replay(b *Binning, lists pbuffer.ListLayout, attrs pbuffer.AttrLayout, h Handler) {
	replayPLB(b, lists, attrs, h)
	replayTF(b, lists, attrs, h)
}

// cursorPool recycles replayPLB's per-tile append cursors across frames:
// with ~1500 tiles per default screen and one Replay per frame per
// configuration, the cursor slice is the replay path's only recurring
// allocation. Replay may run concurrently across simulations, hence a pool
// rather than a package-level buffer.
var cursorPool = sync.Pool{New: func() any { return new([]int) }}

// replayPLB generates the Polygon List Builder phase: for each primitive in
// program order, append its PMD to every overlapped tile's list, then write
// its attributes.
func replayPLB(b *Binning, lists pbuffer.ListLayout, attrs pbuffer.AttrLayout, h Handler) {
	// Per-tile append cursors, pooled and zeroed on reuse.
	cp := cursorPool.Get().(*[]int)
	defer cursorPool.Put(cp)
	if cap(*cp) < len(b.Lists) {
		*cp = make([]int, len(b.Lists))
	}
	cursor := (*cp)[:len(b.Lists)]
	for i := range cursor {
		cursor[i] = 0
	}
	// The per-primitive PMD appends must be replayed in primitive order;
	// Lists stores them per tile, so walk primitives via PrimTiles.
	blocksBuf := make([]uint64, 0, 8)
	for prim := range b.PrimTiles {
		for _, pos := range b.PrimTiles[prim] {
			tile := b.Traversal.Seq[pos]
			slot := cursor[tile]
			if slot >= pbuffer.MaxPrimsPerTile {
				continue // overflowed during binning; dropped
			}
			cursor[tile]++
			h.ListWrite(lists.PMDAddr(tile, slot), tile)
		}
		blocksBuf = blocksBuf[:0]
		for a := 0; a < int(b.NumAttrs[prim]); a++ {
			blocksBuf = append(blocksBuf, attrs.AttrAddr(b.AttrBase[prim], a))
		}
		h.AttrWrite(uint32(prim), b.NumAttrs[prim], b.FirstUse[prim], b.LastUse[prim], blocksBuf)
	}
}

// replayTF generates the Tile Fetcher phase: walk tiles in traversal order;
// for each tile read its list blocks and, per PMD, request the primitive's
// attributes.
func replayTF(b *Binning, lists pbuffer.ListLayout, attrs pbuffer.AttrLayout, h Handler) {
	blocksBuf := make([]uint64, 0, 8)
	for pos, tile := range b.Traversal.Seq {
		list := b.Lists[tile]
		for slot, e := range list {
			if slot%pbuffer.PMDsPerBlock == 0 {
				h.ListRead(lists.PMDAddr(tile, slot), tile)
			}
			blocksBuf = blocksBuf[:0]
			for a := 0; a < int(b.NumAttrs[e.Prim]); a++ {
				blocksBuf = append(blocksBuf, attrs.AttrAddr(b.AttrBase[e.Prim], a))
			}
			h.PrimRead(e.Prim, b.NumAttrs[e.Prim], e.OPTNum, b.LastUse[e.Prim], blocksBuf, tile)
		}
		h.TileDone(tile, uint16(pos))
	}
}

// CountingHandler tallies the event stream; useful as a base for tests and
// for handlers that only care about a subset of events.
type CountingHandler struct {
	ListWrites, AttrWrites, ListReads, PrimReads, TilesDone int
	AttrBlockWrites, AttrBlockReads                         int
}

// ListWrite implements Handler.
func (c *CountingHandler) ListWrite(addr uint64, tile geom.TileID) { c.ListWrites++ }

// AttrWrite implements Handler.
func (c *CountingHandler) AttrWrite(prim uint32, n uint8, first, last uint16, blocks []uint64) {
	c.AttrWrites++
	c.AttrBlockWrites += len(blocks)
}

// ListRead implements Handler.
func (c *CountingHandler) ListRead(addr uint64, tile geom.TileID) { c.ListReads++ }

// PrimRead implements Handler.
func (c *CountingHandler) PrimRead(prim uint32, n uint8, opt, last uint16, blocks []uint64, tile geom.TileID) {
	c.PrimReads++
	c.AttrBlockReads += len(blocks)
}

// TileDone implements Handler.
func (c *CountingHandler) TileDone(tile geom.TileID, pos uint16) { c.TilesDone++ }
