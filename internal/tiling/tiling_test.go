package tiling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcor/internal/geom"
	"tcor/internal/memmap"
	"tcor/internal/pbuffer"
	"tcor/internal/workload"
)

func testScreen() geom.Screen {
	return geom.Screen{Width: 96, Height: 96, TileSize: 32} // 3x3 tiles
}

func TestTraversalScanline(t *testing.T) {
	trav, err := NewTraversal(testScreen(), OrderScanline)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range trav.Seq {
		if int(id) != i {
			t.Fatalf("scanline Seq[%d] = %d", i, id)
		}
		if int(trav.Pos[id]) != i {
			t.Fatalf("Pos inverse broken at %d", i)
		}
	}
}

func TestTraversalZOrderIsPermutation(t *testing.T) {
	screen := geom.DefaultScreen() // 62x24, not powers of two
	trav, err := NewTraversal(screen, OrderZ)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, screen.NumTiles())
	for _, id := range trav.Seq {
		if seen[id] {
			t.Fatalf("tile %d visited twice", id)
		}
		seen[id] = true
	}
	for id, s := range seen {
		if !s {
			t.Fatalf("tile %d never visited", id)
		}
	}
	// Pos must invert Seq.
	for p, id := range trav.Seq {
		if int(trav.Pos[id]) != p {
			t.Fatalf("Pos[%d] = %d, want %d", id, trav.Pos[id], p)
		}
	}
}

func TestTraversalZOrderLocality(t *testing.T) {
	// Z-order on a 4x4 grid starts 0,1,4,5 (row-major IDs).
	screen := geom.Screen{Width: 128, Height: 128, TileSize: 32}
	trav, err := NewTraversal(screen, OrderZ)
	if err != nil {
		t.Fatal(err)
	}
	want := []geom.TileID{0, 1, 4, 5, 2, 3, 6, 7}
	for i, w := range want {
		if trav.Seq[i] != w {
			t.Fatalf("z-order Seq[%d] = %d, want %d (full: %v)", i, trav.Seq[i], w, trav.Seq[:8])
		}
	}
}

func TestTraversalErrors(t *testing.T) {
	if _, err := NewTraversal(geom.Screen{}, OrderZ); err == nil {
		t.Error("expected error for invalid screen")
	}
	if _, err := NewTraversal(testScreen(), Order(99)); err == nil {
		t.Error("expected error for unknown order")
	}
	if Order(99).String() == "" || OrderZ.String() != "z-order" || OrderScanline.String() != "scanline" {
		t.Error("order names")
	}
}

// paperFrame reproduces the 3-primitive, 9-tile example of paper Fig. 9:
// prim 0 covers tiles 0,1,3; prim 1 covers tiles 2,5; prim 2 covers tiles
// 3,4,6,7,8 (approximately — the figure shows prim0 top-left L, prim1 right
// column top, prim2 bottom region).
func paperFrame() (geom.Screen, []geom.Primitive) {
	screen := testScreen()
	attrs := []geom.Attribute{{}}
	mk := func(id uint32, a, b, c geom.Vec2) geom.Primitive {
		return geom.Primitive{ID: id, Pos: [3]geom.Vec2{a, b, c}, Attrs: attrs}
	}
	return screen, []geom.Primitive{
		// Tiles are 32px. Prim 0: tiles 0,1,3 (an L in the top-left).
		mk(0, geom.Vec2{X: 2, Y: 2}, geom.Vec2{X: 60, Y: 8}, geom.Vec2{X: 8, Y: 60}),
		// Prim 1: tiles 2,5 (right column, top two).
		mk(1, geom.Vec2{X: 70, Y: 2}, geom.Vec2{X: 90, Y: 60}, geom.Vec2{X: 68, Y: 60}),
		// Prim 2: tiles 3..8 area (bottom two rows).
		mk(2, geom.Vec2{X: 2, Y: 40}, geom.Vec2{X: 90, Y: 90}, geom.Vec2{X: 2, Y: 90}),
	}
}

func TestBinComputesOPTNumbers(t *testing.T) {
	screen, prims := paperFrame()
	trav, _ := NewTraversal(screen, OrderScanline)
	b, err := Bin(screen, trav, prims)
	if err != nil {
		t.Fatal(err)
	}
	// Every list entry's OPT number is either MaxOPTNumber or a later
	// traversal position that really contains the primitive.
	for tile := range b.Lists {
		pos := trav.Pos[geom.TileID(tile)]
		for _, e := range b.Lists[tile] {
			if e.OPTNum == pbuffer.MaxOPTNumber {
				continue
			}
			if e.OPTNum <= pos {
				t.Fatalf("tile %d prim %d: OPT number %d not in the future (pos %d)",
					tile, e.Prim, e.OPTNum, pos)
			}
			found := false
			for _, q := range b.Lists[trav.Seq[e.OPTNum]] {
				if q.Prim == e.Prim {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("tile %d prim %d: OPT number %d does not contain the primitive",
					tile, e.Prim, e.OPTNum)
			}
		}
	}
	// First/last use bracket all occurrences.
	for p := range prims {
		tiles := b.PrimTiles[p]
		if len(tiles) == 0 {
			t.Fatalf("prim %d overlaps nothing", p)
		}
		if b.FirstUse[p] != tiles[0] || b.LastUse[p] != tiles[len(tiles)-1] {
			t.Fatalf("prim %d first/last = %d/%d, tiles %v",
				p, b.FirstUse[p], b.LastUse[p], tiles)
		}
	}
	// Prim 0 in its last tile must carry the sentinel.
	last := b.LastUse[0]
	found := false
	for _, e := range b.Lists[trav.Seq[last]] {
		if e.Prim == 0 {
			found = true
			if e.OPTNum != pbuffer.MaxOPTNumber {
				t.Errorf("last occurrence OPT number = %d, want sentinel", e.OPTNum)
			}
		}
	}
	if !found {
		t.Error("prim 0 missing from its last tile")
	}
}

func TestBinRejectsBadPrims(t *testing.T) {
	screen := testScreen()
	trav, _ := NewTraversal(screen, OrderScanline)
	// Wrong ID order.
	prims := []geom.Primitive{{ID: 5, Attrs: []geom.Attribute{{}},
		Pos: [3]geom.Vec2{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 1, Y: 2}}}}
	if _, err := Bin(screen, trav, prims); err == nil {
		t.Error("expected error for out-of-order IDs")
	}
	// No attributes.
	prims = []geom.Primitive{{ID: 0, Pos: [3]geom.Vec2{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 1, Y: 2}}}}
	if _, err := Bin(screen, trav, prims); err == nil {
		t.Error("expected error for attribute-less primitive")
	}
	// Mismatched traversal.
	other, _ := NewTraversal(geom.Screen{Width: 64, Height: 64, TileSize: 32}, OrderScanline)
	prims = []geom.Primitive{{ID: 0, Attrs: []geom.Attribute{{}},
		Pos: [3]geom.Vec2{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 1, Y: 2}}}}
	if _, err := Bin(screen, other, prims); err == nil {
		t.Error("expected error for traversal/screen mismatch")
	}
}

func TestBinAttrBasesAreCumulative(t *testing.T) {
	screen, prims := paperFrame()
	prims[1].Attrs = make([]geom.Attribute, 3)
	trav, _ := NewTraversal(screen, OrderZ)
	b, err := Bin(screen, trav, prims)
	if err != nil {
		t.Fatal(err)
	}
	if b.AttrBase[0] != 0 || b.AttrBase[1] != 1 || b.AttrBase[2] != 4 {
		t.Errorf("attr bases = %v", b.AttrBase[:3])
	}
	if b.TotalAttrs != 5 {
		t.Errorf("total attrs = %d", b.TotalAttrs)
	}
}

func TestReplayEventCounts(t *testing.T) {
	screen, prims := paperFrame()
	trav, _ := NewTraversal(screen, OrderScanline)
	b, err := Bin(screen, trav, prims)
	if err != nil {
		t.Fatal(err)
	}
	lists := pbuffer.NewInterleavedListLayout(screen.NumTiles())
	attrs := pbuffer.NewAttrLayout()
	var c CountingHandler
	Replay(b, lists, attrs, &c)
	if c.ListWrites != b.TotalOverlaps {
		t.Errorf("list writes = %d, want %d", c.ListWrites, b.TotalOverlaps)
	}
	if c.AttrWrites != len(prims) {
		t.Errorf("attr writes = %d, want %d", c.AttrWrites, len(prims))
	}
	if c.PrimReads != b.TotalOverlaps {
		t.Errorf("prim reads = %d, want %d", c.PrimReads, b.TotalOverlaps)
	}
	if c.TilesDone != screen.NumTiles() {
		t.Errorf("tiles done = %d", c.TilesDone)
	}
	if c.AttrBlockWrites != int(b.TotalAttrs) {
		t.Errorf("attr block writes = %d, want %d", c.AttrBlockWrites, b.TotalAttrs)
	}
	// Each tile's list of n PMDs needs ceil(n/16) block reads.
	wantListReads := 0
	for tile := range b.Lists {
		wantListReads += b.ListBlocks(geom.TileID(tile))
	}
	if c.ListReads != wantListReads {
		t.Errorf("list reads = %d, want %d", c.ListReads, wantListReads)
	}
}

// orderCheck asserts the stream's phase and ordering invariants.
type orderCheck struct {
	CountingHandler
	t           *testing.T
	readPhase   bool
	lastTilePos int
}

func (o *orderCheck) ListWrite(addr uint64, tile geom.TileID) {
	if o.readPhase {
		o.t.Error("PLB write after TF read began")
	}
	if memmap.RegionOf(addr) != memmap.RegionPBLists {
		o.t.Errorf("list write to %v region", memmap.RegionOf(addr))
	}
	o.CountingHandler.ListWrite(addr, tile)
}

func (o *orderCheck) ListRead(addr uint64, tile geom.TileID) {
	o.readPhase = true
	o.CountingHandler.ListRead(addr, tile)
}

func (o *orderCheck) PrimRead(prim uint32, n uint8, opt, last uint16, blocks []uint64, tile geom.TileID) {
	o.readPhase = true
	for _, a := range blocks {
		if memmap.RegionOf(a) != memmap.RegionPBAttributes {
			o.t.Errorf("attr block in %v region", memmap.RegionOf(a))
		}
	}
	o.CountingHandler.PrimRead(prim, n, opt, last, blocks, tile)
}

func (o *orderCheck) TileDone(tile geom.TileID, pos uint16) {
	if int(pos) != o.lastTilePos {
		o.t.Errorf("TileDone pos %d, want %d (strict traversal order)", pos, o.lastTilePos)
	}
	o.lastTilePos++
	o.CountingHandler.TileDone(tile, pos)
}

func TestReplayPhaseAndRegionInvariants(t *testing.T) {
	spec, _ := workload.ByAlias("CCS")
	spec.Frames = 1
	screen := geom.DefaultScreen()
	sc, err := workload.Generate(spec, screen)
	if err != nil {
		t.Fatal(err)
	}
	trav, _ := NewTraversal(screen, OrderZ)
	b, err := Bin(screen, trav, sc.Frame(0).Prims)
	if err != nil {
		t.Fatal(err)
	}
	o := &orderCheck{t: t}
	Replay(b, pbuffer.NewInterleavedListLayout(screen.NumTiles()), pbuffer.NewAttrLayout(), o)
	if o.TilesDone != screen.NumTiles() {
		t.Errorf("tiles done = %d", o.TilesDone)
	}
	if o.PrimReads == 0 || o.ListWrites == 0 {
		t.Error("degenerate replay")
	}
}

// Property: on random small frames, every PMD's OPT number chain walks the
// primitive's tile positions exactly.
func TestBinOPTChainProperty(t *testing.T) {
	screen := testScreen()
	trav, _ := NewTraversal(screen, OrderScanline)
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 12 {
			seeds = seeds[:12]
		}
		prims := make([]geom.Primitive, len(seeds))
		for i, s := range seeds {
			x := float32(s % 90)
			y := float32((s / 3) % 90)
			prims[i] = geom.Primitive{
				ID:    uint32(i),
				Pos:   [3]geom.Vec2{{X: x, Y: y}, {X: x + 20, Y: y}, {X: x, Y: y + 20}},
				Attrs: []geom.Attribute{{}},
			}
		}
		b, err := Bin(screen, trav, prims)
		if err != nil {
			return false
		}
		for p := range prims {
			positions := b.PrimTiles[p]
			// Follow the OPT chain from the first occurrence.
			for k, pos := range positions {
				tile := trav.Seq[pos]
				var entry *BinEntry
				for i := range b.Lists[tile] {
					if b.Lists[tile][i].Prim == uint32(p) {
						entry = &b.Lists[tile][i]
						break
					}
				}
				if entry == nil {
					return false
				}
				want := uint16(pbuffer.MaxOPTNumber)
				if k+1 < len(positions) {
					want = positions[k+1]
				}
				if entry.OPTNum != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestBinOverflowCap(t *testing.T) {
	// More than MaxPrimsPerTile primitives all in one tile: list is capped.
	screen := testScreen()
	trav, _ := NewTraversal(screen, OrderScanline)
	n := pbuffer.MaxPrimsPerTile + 10
	prims := make([]geom.Primitive, n)
	for i := range prims {
		prims[i] = geom.Primitive{
			ID:    uint32(i),
			Pos:   [3]geom.Vec2{{X: 5, Y: 5}, {X: 10, Y: 5}, {X: 5, Y: 10}},
			Attrs: []geom.Attribute{{}},
		}
	}
	b, err := Bin(screen, trav, prims)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Lists[0]) != pbuffer.MaxPrimsPerTile {
		t.Errorf("list length = %d, want cap %d", len(b.Lists[0]), pbuffer.MaxPrimsPerTile)
	}
	if b.Overflowed != 10 {
		t.Errorf("overflowed = %d, want 10", b.Overflowed)
	}
	// Replay must agree with the capped lists.
	var c CountingHandler
	Replay(b, pbuffer.NewBaselineListLayout(screen.NumTiles()), pbuffer.NewAttrLayout(), &c)
	if c.ListWrites != pbuffer.MaxPrimsPerTile {
		t.Errorf("replayed %d list writes, want %d", c.ListWrites, pbuffer.MaxPrimsPerTile)
	}
}

func TestBBoxBinningIsSupersetOfExact(t *testing.T) {
	screen, prims := paperFrame()
	trav, _ := NewTraversal(screen, OrderScanline)
	exact, err := BinWithOverlap(screen, trav, prims, OverlapExact)
	if err != nil {
		t.Fatal(err)
	}
	bbox, err := BinWithOverlap(screen, trav, prims, OverlapBBox)
	if err != nil {
		t.Fatal(err)
	}
	if bbox.TotalOverlaps < exact.TotalOverlaps {
		t.Fatalf("bbox %d overlaps < exact %d", bbox.TotalOverlaps, exact.TotalOverlaps)
	}
	// Every exact (prim, tile) pair must appear under bbox binning too.
	for tile := range exact.Lists {
		for _, e := range exact.Lists[tile] {
			found := false
			for _, q := range bbox.Lists[tile] {
				if q.Prim == e.Prim {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("bbox binning lost prim %d in tile %d", e.Prim, tile)
			}
		}
	}
}

func TestTraversalHilbert(t *testing.T) {
	// Permutation property on the paper's non-power-of-two grid.
	screen := geom.DefaultScreen()
	trav, err := NewTraversal(screen, OrderHilbert)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, screen.NumTiles())
	for _, id := range trav.Seq {
		if seen[id] {
			t.Fatalf("tile %d visited twice", id)
		}
		seen[id] = true
	}
	for p, id := range trav.Seq {
		if int(trav.Pos[id]) != p {
			t.Fatal("Pos inverse broken")
		}
	}
	if OrderHilbert.String() != "hilbert" {
		t.Error("name")
	}
	// Locality: on a power-of-two square grid every consecutive pair of
	// tiles is 4-adjacent (the Hilbert property; Z-order violates this).
	sq := geom.Screen{Width: 256, Height: 256, TileSize: 32} // 8x8
	h, _ := NewTraversal(sq, OrderHilbert)
	for i := 1; i < len(h.Seq); i++ {
		ax, ay := sq.TileCoord(h.Seq[i-1])
		bx, by := sq.TileCoord(h.Seq[i])
		manhattan := abs(ax-bx) + abs(ay-by)
		if manhattan != 1 {
			t.Fatalf("hilbert step %d: tiles %d->%d are %d apart", i, h.Seq[i-1], h.Seq[i], manhattan)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
