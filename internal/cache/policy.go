package cache

import (
	"math/rand"

	"tcor/internal/trace"
)

// Policy selects victims and maintains per-line replacement state. The cache
// calls Touch on every hit and Insert on every fill; Victim is called only
// when a set is full. Victim must return the way index of the line to evict.
//
// Implementations may keep global state (e.g. DRRIP's set-dueling counter);
// Reset is called once by cache.New with the final geometry.
type Policy interface {
	Name() string
	Reset(sets, ways int)
	Touch(set, way int, line *Line, acc trace.Access)
	Insert(set, way int, line *Line, acc trace.Access)
	Victim(set int, lines []Line) int
}

// --- LRU ---

type lru struct{}

// NewLRU returns the least-recently-used policy.
func NewLRU() Policy { return lru{} }

func (lru) Name() string                                    { return "LRU" }
func (lru) Reset(sets, ways int)                            {}
func (lru) Touch(set, way int, line *Line, a trace.Access)  {}
func (lru) Insert(set, way int, line *Line, a trace.Access) {}

func (lru) Victim(set int, lines []Line) int {
	v, best := 0, lines[0].LastUse
	for w := 1; w < len(lines); w++ {
		if lines[w].LastUse < best {
			v, best = w, lines[w].LastUse
		}
	}
	return v
}

// --- MRU ---

type mru struct{}

// NewMRU returns the most-recently-used policy (evicts the newest line;
// useful for cyclic access patterns, shown as the worst performer in the
// paper's Fig. 13).
func NewMRU() Policy { return mru{} }

func (mru) Name() string                                    { return "MRU" }
func (mru) Reset(sets, ways int)                            {}
func (mru) Touch(set, way int, line *Line, a trace.Access)  {}
func (mru) Insert(set, way int, line *Line, a trace.Access) {}

func (mru) Victim(set int, lines []Line) int {
	v, best := 0, lines[0].LastUse
	for w := 1; w < len(lines); w++ {
		if lines[w].LastUse > best {
			v, best = w, lines[w].LastUse
		}
	}
	return v
}

// --- FIFO ---

type fifo struct{}

// NewFIFO returns the first-in-first-out policy.
func NewFIFO() Policy { return fifo{} }

func (fifo) Name() string                                    { return "FIFO" }
func (fifo) Reset(sets, ways int)                            {}
func (fifo) Touch(set, way int, line *Line, a trace.Access)  {}
func (fifo) Insert(set, way int, line *Line, a trace.Access) {}

func (fifo) Victim(set int, lines []Line) int {
	v, best := 0, lines[0].Seq
	for w := 1; w < len(lines); w++ {
		if lines[w].Seq < best {
			v, best = w, lines[w].Seq
		}
	}
	return v
}

// --- Random ---

type random struct{ rng *rand.Rand }

// NewRandom returns a seeded random replacement policy. Determinism matters
// for reproducibility, so the seed is explicit.
func NewRandom(seed int64) Policy {
	return &random{rng: rand.New(rand.NewSource(seed))}
}

func (*random) Name() string                                    { return "Random" }
func (*random) Reset(sets, ways int)                            {}
func (*random) Touch(set, way int, line *Line, a trace.Access)  {}
func (*random) Insert(set, way int, line *Line, a trace.Access) {}

func (r *random) Victim(set int, lines []Line) int {
	return r.rng.Intn(len(lines))
}

// --- Tree-PLRU ---

type plru struct {
	ways int
	// bits[set] holds the ways-1 internal nodes of the binary tree in heap
	// order; false points left, true points right.
	bits [][]bool
}

// NewPLRU returns the binary-tree pseudo-LRU policy. Ways must be a power of
// two; Reset panics otherwise.
func NewPLRU() Policy { return &plru{} }

func (*plru) Name() string { return "PLRU" }

func (p *plru) Reset(sets, ways int) {
	if ways&(ways-1) != 0 {
		panic("cache: tree-PLRU requires power-of-two associativity")
	}
	p.ways = ways
	p.bits = make([][]bool, sets)
	for i := range p.bits {
		p.bits[i] = make([]bool, ways) // node 0 unused; nodes 1..ways-1
	}
}

// touchWay flips the tree nodes on the path to way so they point away from
// it (marking it most recently used).
func (p *plru) touchWay(set, way int) {
	node := 1
	for depth := p.ways >> 1; depth >= 1; depth >>= 1 {
		right := way&depth != 0
		p.bits[set][node] = !right // point away from the accessed half
		node = node<<1 | boolBit(right)
	}
}

func (p *plru) Touch(set, way int, line *Line, a trace.Access)  { p.touchWay(set, way) }
func (p *plru) Insert(set, way int, line *Line, a trace.Access) { p.touchWay(set, way) }

func (p *plru) Victim(set int, lines []Line) int {
	node := 1
	way := 0
	for depth := p.ways >> 1; depth >= 1; depth >>= 1 {
		right := p.bits[set][node]
		if right {
			way |= depth
		}
		node = node<<1 | boolBit(right)
	}
	return way
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// --- OPT (Belady) ---

type opt struct{}

// NewOPT returns the offline optimal policy driven by trace next-use
// annotations (Mattson et al. [27]; the paper's yardstick). The victim is
// the resident line whose next use lies farthest in the future; lines that
// are never used again are preferred unconditionally.
func NewOPT() Policy { return opt{} }

func (opt) Name() string                                    { return "OPT" }
func (opt) Reset(sets, ways int)                            {}
func (opt) Touch(set, way int, line *Line, a trace.Access)  {}
func (opt) Insert(set, way int, line *Line, a trace.Access) {}

func (opt) Victim(set int, lines []Line) int {
	v, best := 0, lines[0].NextUse
	for w := 1; w < len(lines); w++ {
		if lines[w].NextUse > best {
			v, best = w, lines[w].NextUse
		}
	}
	return v
}
