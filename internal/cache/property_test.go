package cache

import (
	"math/rand"
	"testing"

	"tcor/internal/trace"
)

// pbShapedTrace builds a randomized trace with the Parameter Buffer's
// structure (§V-A): every one of tp primitives is written exactly once, in
// shuffled program order (the Polygon List Builder), then read back over
// `passes` shuffled full passes with occasional short re-read bursts (the
// Tile Fetcher walking tile lists). The shape is what makes the analytic
// lower bound LB = TP + (TP - CP) applicable.
func pbShapedTrace(rng *rand.Rand, tp, passes int) trace.Trace {
	var tr trace.Trace
	for _, p := range rng.Perm(tp) {
		tr = append(tr, trace.Access{Key: trace.Key(p), Write: true})
	}
	for pass := 0; pass < passes; pass++ {
		for _, p := range rng.Perm(tp) {
			for n := 1 + rng.Intn(3); n > 0; n-- {
				tr = append(tr, trace.Access{Key: trace.Key(p)})
			}
		}
	}
	trace.AnnotateNextUse(tr)
	return tr
}

// TestOPTBeladySandwich is the Belady sandwich on randomized PB-shaped
// traces: for every seed and capacity, OPT's misses are bounded below by
// the paper's analytic lower bound and above by every online policy
// (extending cache_test.go's TestOPTOptimalityProperty to the full policy
// roster). The model has no bypass (every miss fills), so
// mandatory-allocation Belady is provably optimal here — any violation is
// an implementation bug, not a statistical fluke.
func TestOPTBeladySandwich(t *testing.T) {
	// Every registered policy duels OPT, so a new contender joins the
	// sandwich the moment it joins the registry. OPT itself is the left
	// side of the inequality, not a rival.
	var rivals []PolicyInfo
	for _, e := range Policies() {
		if e.Name != "OPT" {
			rivals = append(rivals, e)
		}
	}

	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tp := 40 + rng.Intn(160)
		passes := 1 + rng.Intn(3)
		tr := pbShapedTrace(rng, tp, passes)

		for _, cp := range []int{tp / 5, tp / 2, tp - 1, tp, tp + 16} {
			if cp < 2 {
				cp = 2
			}
			cfg := Config{Lines: cp, WriteAllocate: true} // fully associative
			optStats, err := Simulate(cfg, NewOPT(), tr)
			if err != nil {
				t.Fatalf("seed %d cp %d: %v", seed, cp, err)
			}
			if lb := LowerBoundMisses(tp, cp); optStats.Misses < lb {
				t.Errorf("seed %d tp %d cp %d: OPT misses %d below analytic bound %d",
					seed, tp, cp, optStats.Misses, lb)
			}
			for _, rival := range rivals {
				// Tree-PLRU only works with power-of-two associativity, so
				// clamp its fully-associative capacity down to one. OPT's
				// miss count is monotone in capacity (stack property), so
				// OPT@cp <= OPT@cp' <= rival@cp' keeps the sandwich valid.
				rcfg := cfg
				if rival.Name == "PLRU" {
					pow2 := 2
					for pow2*2 <= cp {
						pow2 *= 2
					}
					rcfg = Config{Lines: pow2, WriteAllocate: true}
				}
				st, err := Simulate(rcfg, rival.Make(), tr)
				if err != nil {
					t.Fatalf("seed %d cp %d %s: %v", seed, cp, rival.Name, err)
				}
				if optStats.Misses > st.Misses {
					t.Errorf("seed %d tp %d cp %d: OPT misses %d exceed %s's %d",
						seed, tp, cp, optStats.Misses, rival.Name, st.Misses)
				}
				if st.Accesses != int64(len(tr)) || optStats.Accesses != st.Accesses {
					t.Errorf("seed %d cp %d %s: access counts diverge (%d vs %d)",
						seed, cp, rival.Name, optStats.Accesses, st.Accesses)
				}
			}
		}
	}
}

// TestOPTMatchesLowerBoundSinglePass checks the tight case the paper draws
// in Fig. 11: on a single sequential write pass followed by one sequential
// read pass, OPT achieves the analytic bound exactly.
func TestOPTMatchesLowerBoundSinglePass(t *testing.T) {
	const tp = 120
	var tr trace.Trace
	for p := 0; p < tp; p++ {
		tr = append(tr, trace.Access{Key: trace.Key(p), Write: true})
	}
	for p := 0; p < tp; p++ {
		tr = append(tr, trace.Access{Key: trace.Key(p)})
	}
	trace.AnnotateNextUse(tr)

	for _, cp := range []int{10, 30, 60, 119, 120, 200} {
		st, err := Simulate(Config{Lines: cp, WriteAllocate: true}, NewOPT(), tr)
		if err != nil {
			t.Fatal(err)
		}
		if lb := LowerBoundMisses(tp, cp); st.Misses != lb {
			t.Errorf("cp %d: OPT misses %d, analytic bound %d", cp, st.Misses, lb)
		}
	}
}
