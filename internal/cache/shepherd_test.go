package cache

import (
	"math/rand"
	"testing"

	"tcor/internal/trace"
)

func TestShepherdBasicVictimChoice(t *testing.T) {
	// 4 fully associative lines, 1 shepherd way. Fill 1,2,3,4 (4 is the
	// shepherd... actually the newest insert is always the newest SC; with
	// capacity 1 the SC is {4}). Then touch 1 and 2 — they gain imminence
	// ranks relative to 4. Key 3 is never touched, so when 5 misses, the
	// victim must be 3 (unseen since 4's insertion).
	c := MustNew(Config{Lines: 4, WriteAllocate: true}, NewShepherd(1))
	for _, k := range []trace.Key{1, 2, 3, 4} {
		c.Access(trace.Access{Key: k})
	}
	c.Access(trace.Access{Key: 1})
	c.Access(trace.Access{Key: 2})
	res := c.Access(trace.Access{Key: 5})
	if !res.Evicted || res.Victim != 3 {
		t.Errorf("victim = %+v, want key 3 (never re-accessed)", res)
	}
}

func TestShepherdEvictsFarthestObserved(t *testing.T) {
	// Same setup but every line (including the shepherd itself) is
	// re-accessed while 4 shepherds; the victim must be the one
	// re-accessed LAST (farthest imminence).
	c := MustNew(Config{Lines: 4, WriteAllocate: true}, NewShepherd(1))
	for _, k := range []trace.Key{1, 2, 3, 4} {
		c.Access(trace.Access{Key: k})
	}
	for _, k := range []trace.Key{3, 4, 1, 2} { // imminence order after 4's insert
		c.Access(trace.Access{Key: k})
	}
	res := c.Access(trace.Access{Key: 5})
	if !res.Evicted || res.Victim != 2 {
		t.Errorf("victim = %+v, want key 2 (observed farthest)", res)
	}
}

func TestShepherdClampsSCWays(t *testing.T) {
	// scWays larger than ways-1 must clamp rather than consume the set.
	c := MustNew(Config{Lines: 4, Ways: 2, WriteAllocate: true}, NewShepherd(10))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		c.Access(trace.Access{Key: trace.Key(rng.Intn(32))})
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("degenerate run: %+v", st)
	}
}

func TestShepherdDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := make(trace.Trace, 20000)
	for i := range tr {
		tr[i].Key = trace.Key(rng.Intn(300))
	}
	trace.AnnotateNextUse(tr)
	cfg := Config{Lines: 64, Ways: 4, WriteAllocate: true}
	a, err := Simulate(cfg, NewShepherd(1), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(cfg, NewShepherd(1), tr)
	if a != b {
		t.Error("shepherd not deterministic")
	}
}

// Shepherd detects dead blocks within its lookahead window: a line never
// re-referenced while it shepherds is the preferred victim.
func TestShepherdEvictsDeadStreamingBlocks(t *testing.T) {
	// Hot keys H={1,2,3} plus a stream of single-use keys, cache of 4:
	// every stream block stays "unseen" during its shepherding and evicts
	// itself, keeping H resident. (The hot set must stay under capacity-1:
	// with H as large as the cache, any policy must sacrifice a hot line.)
	var tr trace.Trace
	for i := 0; i < 300; i++ {
		for _, k := range []trace.Key{1, 2, 3} {
			tr = append(tr, trace.Access{Key: k})
		}
		tr = append(tr, trace.Access{Key: trace.Key(1000 + i)})
	}
	trace.AnnotateNextUse(tr)
	st, err := Simulate(Config{Lines: 4, WriteAllocate: true}, NewShepherd(1), tr)
	if err != nil {
		t.Fatal(err)
	}
	// 3 compulsory + 300 stream misses; the hot set never misses again.
	if st.Misses != 303 {
		t.Errorf("misses = %d, want 303 (hot set retained)", st.Misses)
	}
}

// On the Tile Cache's Parameter Buffer stream the shepherding window (a
// handful of misses per set) is far shorter than the reuse distances, so
// Shepherd degenerates to roughly LRU — the honest result that motivates
// TCOR's exact future knowledge over lookahead-based OPT emulation (§VI).
func TestShepherdNearLRUOnShortWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var tr trace.Trace
	for i := 0; i < 4000; i++ {
		if i%3 == 0 {
			tr = append(tr, trace.Access{Key: trace.Key(5000 + rng.Intn(3000))})
		}
		tr = append(tr, trace.Access{Key: trace.Key(i % 40)})
	}
	trace.AnnotateNextUse(tr)
	cfg := Config{Lines: 32, Ways: 4, WriteAllocate: true}
	lruS, _ := Simulate(cfg, NewLRU(), tr)
	shS, _ := Simulate(cfg, NewShepherd(1), tr)
	optS, _ := Simulate(cfg, NewOPT(), tr)
	if optS.Misses > shS.Misses {
		t.Fatalf("OPT %d > Shepherd %d: optimality broken", optS.Misses, shS.Misses)
	}
	if ratio := float64(shS.Misses) / float64(lruS.Misses); ratio > 1.05 {
		t.Errorf("Shepherd %.2fx LRU misses; should stay near LRU when the window is short", ratio)
	}
}
