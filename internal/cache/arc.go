package cache

import "tcor/internal/trace"

// ARC (Megiddo & Modha, FAST 2003): adaptive replacement cache. Each set
// splits its resident lines into T1 (seen once) and T2 (seen at least
// twice) and remembers recently evicted keys in the ghost lists B1/B2. A
// hit in a ghost list is evidence that the corresponding resident list was
// sized too small, so the adaptation target p — the desired size of T1 —
// moves toward it. ARC therefore tunes itself between recency (pure LRU,
// p = ways) and frequency (p = 0) per set with no configuration knob.
//
// The original formulation owns the whole lookup path; here it is adapted
// to the Policy interface: residency changes arrive via Insert (fill) and
// Victim (eviction), hits via Touch, and the directory state lives inside
// the policy. One deviation is forced by the interface: the REPLACE(x)
// tie-break "evict from T1 when |T1| == p and x is in B2" needs the
// incoming key, which Victim does not see, so the tie goes to T2. The
// adaptation behaviour is unchanged.

type arcSet struct {
	t1, t2 []trace.Key // resident keys, LRU first
	b1, b2 []trace.Key // ghost keys, LRU first
	p      int         // target |T1|
}

type arc struct {
	ways int
	sets []arcSet
}

// NewARC returns the adaptive replacement cache policy.
func NewARC() Policy { return &arc{} }

func (*arc) Name() string { return "ARC" }

func (a *arc) Reset(sets, ways int) {
	a.ways = ways
	a.sets = make([]arcSet, sets)
}

// removeKey deletes key from list if present, reporting whether it was.
func removeKey(list []trace.Key, key trace.Key) ([]trace.Key, bool) {
	for i, k := range list {
		if k == key {
			return append(list[:i], list[i+1:]...), true
		}
	}
	return list, false
}

func (a *arc) Touch(set, way int, line *Line, acc trace.Access) {
	s := &a.sets[set]
	var hit bool
	if s.t1, hit = removeKey(s.t1, acc.Key); !hit {
		s.t2, _ = removeKey(s.t2, acc.Key)
	}
	s.t2 = append(s.t2, acc.Key) // any hit promotes to T2-MRU
}

func (a *arc) Insert(set, way int, line *Line, acc trace.Access) {
	s := &a.sets[set]
	if _, inB1 := removeKey2(&s.b1, acc.Key); inB1 {
		// B1 hit: recency list was too small; grow p.
		delta := 1
		if len(s.b1) > 0 && len(s.b2)/len(s.b1) > 1 {
			delta = len(s.b2) / len(s.b1)
		}
		s.p = min(s.p+delta, a.ways)
		s.t2 = append(s.t2, acc.Key)
	} else if _, inB2 := removeKey2(&s.b2, acc.Key); inB2 {
		// B2 hit: frequency list was too small; shrink p.
		delta := 1
		if len(s.b2) > 0 && len(s.b1)/len(s.b2) > 1 {
			delta = len(s.b1) / len(s.b2)
		}
		s.p = max(s.p-delta, 0)
		s.t2 = append(s.t2, acc.Key)
	} else {
		// Genuinely new key: enters the recency list.
		s.t1, _ = removeKey(s.t1, acc.Key) // drop any stale residue
		s.t2, _ = removeKey(s.t2, acc.Key)
		s.t1 = append(s.t1, acc.Key)
	}
	// Ghosts hold at most one set's worth of history each.
	if len(s.b1) > a.ways {
		s.b1 = s.b1[len(s.b1)-a.ways:]
	}
	if len(s.b2) > a.ways {
		s.b2 = s.b2[len(s.b2)-a.ways:]
	}
}

// removeKey2 is removeKey operating in place.
func removeKey2(list *[]trace.Key, key trace.Key) (trace.Key, bool) {
	out, ok := removeKey(*list, key)
	*list = out
	return key, ok
}

func (a *arc) Victim(set int, lines []Line) int {
	s := &a.sets[set]
	for len(s.t1) > 0 || len(s.t2) > 0 {
		var key trace.Key
		fromT1 := len(s.t1) > 0 && (len(s.t1) > s.p || len(s.t2) == 0)
		if fromT1 {
			key, s.t1 = s.t1[0], s.t1[1:]
		} else {
			key, s.t2 = s.t2[0], s.t2[1:]
		}
		for w := range lines {
			if lines[w].Valid && lines[w].Key == key {
				if fromT1 {
					s.b1 = append(s.b1, key)
				} else {
					s.b2 = append(s.b2, key)
				}
				return w
			}
		}
		// Stale directory entry (line invalidated externally): drop and retry.
	}
	// Directory empty: degenerate to LRU rather than fail.
	return lru{}.Victim(set, lines)
}
