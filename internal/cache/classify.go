package cache

import "tcor/internal/trace"

// Breakdown3C is the classic three-C decomposition of cache misses.
type Breakdown3C struct {
	Compulsory int64 // first-touch misses: unavoidable at any size
	Capacity   int64 // misses a fully-associative LRU cache of equal size also takes
	Conflict   int64 // extra misses caused by the set mapping
	Total      int64
}

// Classify3C decomposes the misses of a cache configuration on a trace into
// compulsory, capacity and conflict components by Hill's standard method:
// compulsory misses are first touches, capacity misses are the non-compulsory
// misses of a fully associative LRU cache with the same line count, and
// conflict misses are whatever the real configuration takes beyond that.
//
// The decomposition is what quantifies the paper's §III-B claim: the
// baseline contiguous PB-Lists layout turns a large fraction of list
// accesses into conflict misses, and the interleaved layout (or an
// XOR-based index) removes them.
func Classify3C(cfg Config, policy Policy, tr trace.Trace) (Breakdown3C, error) {
	var out Breakdown3C
	real, err := Simulate(cfg, policy, tr)
	if err != nil {
		return out, err
	}
	fa := cfg
	fa.Ways = 0 // fully associative
	fa.Index = nil
	faStats, err := Simulate(fa, NewLRU(), tr)
	if err != nil {
		return out, err
	}
	return Classify3CFromCounts(real, faStats.Misses, faStats.Compulsory), nil
}

// Classify3CFromCounts is the normalization core of Classify3C, decomposing
// already-measured miss counts: real is the configuration under study,
// faMisses/faCompulsory the fully-associative LRU reference at the same
// line count. Callers that already hold a Mattson stack profile (the arena:
// faMisses = StackProfile.MissesAt(lines), faCompulsory = Cold) decompose
// without re-running either simulation — the profile and the event-driven
// simulator agree exactly, as the stackdist tests prove.
func Classify3CFromCounts(real Stats, faMisses, faCompulsory int64) Breakdown3C {
	var out Breakdown3C
	out.Total = real.Misses
	out.Compulsory = real.Compulsory
	out.Capacity = faMisses - faCompulsory
	if out.Capacity < 0 {
		out.Capacity = 0
	}
	out.Conflict = real.Misses - faMisses
	if out.Conflict < 0 {
		// Bélády anomalies can make the set-associative cache *beat* the
		// fully associative one on some traces; report zero conflicts
		// rather than a negative count and fold the difference into
		// capacity so the components still sum to the total.
		out.Conflict = 0
		out.Capacity = out.Total - out.Compulsory
	}
	// Normalize so components sum to Total even when the FA run's
	// compulsory count differs (it cannot — first touches are
	// configuration-independent — but keep the invariant explicit).
	out.Capacity = out.Total - out.Compulsory - out.Conflict
	if out.Capacity < 0 {
		out.Capacity = 0
		out.Conflict = out.Total - out.Compulsory
	}
	return out
}
