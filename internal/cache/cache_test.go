package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tcor/internal/stats"
	"tcor/internal/trace"
)

func reads(keys ...trace.Key) trace.Trace {
	tr := make(trace.Trace, len(keys))
	for i, k := range keys {
		tr[i] = trace.Access{Key: k}
	}
	trace.AnnotateNextUse(tr)
	return tr
}

func TestConfigValidate(t *testing.T) {
	_, err := Config{Lines: 0}.Validate()
	if err == nil {
		t.Error("expected error for zero lines")
	}
	_, err = Config{Lines: 8, Ways: -1}.Validate()
	if err == nil {
		t.Error("expected error for negative ways")
	}
	_, err = Config{Lines: 9, Ways: 2}.Validate()
	if err == nil {
		t.Error("expected error for non-divisible ways")
	}
	if c, err := (Config{Lines: 24, Ways: 2}).Validate(); err != nil || c.Lines != 24 {
		t.Errorf("non-power-of-two set counts are allowed: %v %v", c, err)
	}
	c, err := Config{Lines: 8}.Validate()
	if err != nil || c.Ways != 8 {
		t.Errorf("fully associative default: ways=%d err=%v", c.Ways, err)
	}
	_, err = Config{Lines: 8, Ways: 16}.Validate()
	if err == nil {
		t.Error("ways>lines must be a hard error, not clamp to fully associative")
	}
}

func TestConfigValidateGeometryBoundaries(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"ways==lines is fully associative", Config{Lines: 8, Ways: 8}, true},
		{"ways one above lines", Config{Lines: 8, Ways: 9}, false},
		{"direct mapped", Config{Lines: 8, Ways: 1}, true},
		{"single line", Config{Lines: 1}, true},
		{"single line, one way", Config{Lines: 1, Ways: 1}, true},
		{"single line, two ways", Config{Lines: 1, Ways: 2}, false},
		{"xor index, pow2 sets", Config{Lines: 64, Ways: 4, Index: XORIndex}, true},
		{"xor index, non-pow2 sets", Config{Lines: 24, Ways: 2, Index: XORIndex}, false},
		{"xor index, single set", Config{Lines: 4, Ways: 4, Index: XORIndex}, true},
		{"modulo index, non-pow2 sets", Config{Lines: 24, Ways: 2, Index: ModuloIndex}, true},
		{"custom index, non-pow2 sets", Config{Lines: 24, Ways: 2,
			Index: func(k trace.Key, sets int) int { return 0 }}, true},
	}
	for _, tc := range cases {
		_, err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid geometry must be a hard error", tc.name)
		}
	}
}

func TestXORIndexDegenerateSetCounts(t *testing.T) {
	// sets == 1 historically looped forever (zero shift); it must return 0
	// for every key.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, k := range []trace.Key{0, 1, 0xdeadbeef, 1 << 40} {
			if got := XORIndex(k, 1); got != 0 {
				t.Errorf("XORIndex(%d, 1) = %d, want 0", k, got)
			}
			if got := XORIndex(k, 0); got != 0 {
				t.Errorf("XORIndex(%d, 0) = %d, want 0", k, got)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("XORIndex with a single set did not terminate")
	}
	// Direct calls with a non-power-of-two count stay in range.
	for k := trace.Key(0); k < 1000; k++ {
		if got := XORIndex(k*2654435761+k, 24); got < 0 || got >= 24 {
			t.Fatalf("XORIndex out of range: %d", got)
		}
	}
}

func TestStatsPublishAndInvariants(t *testing.T) {
	c := MustNew(Config{Lines: 4, Ways: 2, WriteAllocate: true}, NewLRU())
	for _, a := range reads(1, 2, 1, 3, 2, 5, 6, 7) {
		c.Access(a)
	}
	reg := stats.NewRegistry()
	c.Stats().Publish(reg, "l1.test")
	RegisterStatsInvariants(reg, "l1.test")
	if err := reg.Check(); err != nil {
		t.Fatalf("published cache stats violate invariants: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Get("l1.test.accesses") != 8 {
		t.Errorf("accesses = %d, want 8", snap.Get("l1.test.accesses"))
	}
	if snap.Get("l1.test.hits")+snap.Get("l1.test.misses") != 8 {
		t.Error("hit/miss split does not cover all accesses")
	}
	// Corrupt one counter: the named invariant must trip.
	reg.Counter("l1.test.hits").Add(1)
	if err := reg.Check(); err == nil {
		t.Error("corrupted counters must fail the invariant check")
	}
}

func TestLinesFor(t *testing.T) {
	if got := LinesFor(64*1024, 64); got != 1024 {
		t.Errorf("LinesFor(64KiB, 64) = %d", got)
	}
	if got := LinesFor(100, 0); got != 0 {
		t.Errorf("LinesFor with zero line size = %d", got)
	}
}

func TestLRUBasics(t *testing.T) {
	c := MustNew(Config{Lines: 2, WriteAllocate: true}, NewLRU())
	tr := reads(1, 2, 1, 3, 2)
	// 1 miss, 2 miss, 1 hit, 3 miss (evicts 2), 2 miss (evicts 1)
	var hits int64
	for _, a := range tr {
		if c.Access(a).Hit {
			hits++
		}
	}
	s := c.Stats()
	if hits != 1 || s.Misses != 4 {
		t.Errorf("hits=%d misses=%d, want 1/4", hits, s.Misses)
	}
	if s.Compulsory != 3 {
		t.Errorf("compulsory=%d, want 3", s.Compulsory)
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := MustNew(Config{Lines: 2, WriteAllocate: true}, NewLRU())
	c.Access(trace.Access{Key: 10})
	c.Access(trace.Access{Key: 20})
	c.Access(trace.Access{Key: 10})        // 20 is now LRU
	res := c.Access(trace.Access{Key: 30}) // evicts 20
	if !res.Evicted || res.Victim != 20 {
		t.Errorf("victim = %+v, want key 20", res)
	}
	if !c.Contains(10) || !c.Contains(30) || c.Contains(20) {
		t.Errorf("resident = %v", c.ResidentKeys())
	}
}

func TestMRUEvictsMostRecent(t *testing.T) {
	c := MustNew(Config{Lines: 2, WriteAllocate: true}, NewMRU())
	c.Access(trace.Access{Key: 10})
	c.Access(trace.Access{Key: 20})
	res := c.Access(trace.Access{Key: 30}) // evicts 20 (most recent)
	if !res.Evicted || res.Victim != 20 {
		t.Errorf("victim = %+v, want key 20", res)
	}
}

func TestFIFOIgnoresTouches(t *testing.T) {
	c := MustNew(Config{Lines: 2, WriteAllocate: true}, NewFIFO())
	c.Access(trace.Access{Key: 10})
	c.Access(trace.Access{Key: 20})
	c.Access(trace.Access{Key: 10}) // hit; does not change insertion order
	res := c.Access(trace.Access{Key: 30})
	if !res.Evicted || res.Victim != 10 {
		t.Errorf("victim = %+v, want key 10 (first in)", res)
	}
}

func TestOPTBeladyExample(t *testing.T) {
	// Classic example: with capacity 2 and trace 1 2 3 1 2, OPT keeps 1 and
	// 2 by evicting... wait, all lines are candidates: on access 3, OPT
	// evicts the line used farthest in future (2 at index 4 vs 1 at index
	// 3): evicts 2? No: 1 is next used at 3, 2 at 4, so 2 is farther and is
	// evicted. Then 1 hits, 2 misses: 3 misses total +1 = 4 accesses miss.
	tr := reads(1, 2, 3, 1, 2)
	st, err := Simulate(Config{Lines: 2, WriteAllocate: true}, NewOPT(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 4 {
		t.Errorf("OPT misses = %d, want 4", st.Misses)
	}
	// LRU on the same trace: 1m 2m 3m(evict 1) 1m(evict 2) 2m = 5 misses.
	st, err = Simulate(Config{Lines: 2, WriteAllocate: true}, NewLRU(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 5 {
		t.Errorf("LRU misses = %d, want 5", st.Misses)
	}
}

func TestOPTPrefersDeadLines(t *testing.T) {
	c := MustNew(Config{Lines: 2, WriteAllocate: true}, NewOPT())
	tr := reads(1, 2, 3, 2) // key 1 never used again
	c.Access(tr[0])
	c.Access(tr[1])
	res := c.Access(tr[2])
	if !res.Evicted || res.Victim != 1 {
		t.Errorf("OPT should evict dead key 1, got %+v", res)
	}
}

func TestWriteNoAllocateBypass(t *testing.T) {
	c := MustNew(Config{Lines: 2, WriteAllocate: false}, NewLRU())
	res := c.Access(trace.Access{Key: 1, Write: true})
	if !res.Bypassed || res.Fill {
		t.Errorf("write miss should bypass: %+v", res)
	}
	if c.Stats().Bypasses != 1 {
		t.Errorf("bypasses = %d", c.Stats().Bypasses)
	}
	// Read fills; then a write to the same key hits and dirties.
	c.Access(trace.Access{Key: 2})
	res = c.Access(trace.Access{Key: 2, Write: true})
	if !res.Hit {
		t.Errorf("write to resident line should hit: %+v", res)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := MustNew(Config{Lines: 1, WriteAllocate: true}, NewLRU())
	c.Access(trace.Access{Key: 1, Write: true})
	res := c.Access(trace.Access{Key: 2})
	if !res.Evicted || !res.VictimDirty {
		t.Errorf("expected dirty eviction, got %+v", res)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := MustNew(Config{Lines: 4, WriteAllocate: true}, NewLRU())
	c.Access(trace.Access{Key: 1, Write: true})
	c.Access(trace.Access{Key: 2})
	present, dirty := c.Invalidate(1)
	if !present || !dirty {
		t.Errorf("Invalidate(1) = %v,%v", present, dirty)
	}
	if c.Contains(1) {
		t.Error("key 1 still resident after invalidate")
	}
	present, _ = c.Invalidate(99)
	if present {
		t.Error("Invalidate of absent key reported present")
	}
	c.Access(trace.Access{Key: 3, Write: true})
	dirtyKeys := c.FlushAll()
	if len(dirtyKeys) != 1 || dirtyKeys[0] != 3 {
		t.Errorf("FlushAll dirty = %v, want [3]", dirtyKeys)
	}
	if len(c.ResidentKeys()) != 0 {
		t.Error("cache not empty after FlushAll")
	}
}

func TestSetMappingSeparatesKeys(t *testing.T) {
	// 4 lines, 2 ways => 2 sets. Keys 0,2,4 map to set 0; 1,3 to set 1.
	c := MustNew(Config{Lines: 4, Ways: 2, WriteAllocate: true}, NewLRU())
	for _, k := range []trace.Key{0, 2, 4} {
		c.Access(trace.Access{Key: k})
	}
	// Set 0 holds {2,4} (0 evicted); set 1 untouched.
	if c.Contains(0) {
		t.Error("key 0 should have been evicted from set 0")
	}
	if !c.Contains(2) || !c.Contains(4) {
		t.Errorf("resident = %v", c.ResidentKeys())
	}
	c.Access(trace.Access{Key: 1})
	if !c.Contains(1) || !c.Contains(2) || !c.Contains(4) {
		t.Error("set 1 fill must not disturb set 0")
	}
}

func TestXORIndexInRangeAndSpreads(t *testing.T) {
	sets := 64
	seen := map[int]bool{}
	for k := trace.Key(0); k < 4096; k += 64 { // stride of 64: modulo maps all to set 0
		idx := XORIndex(k, sets)
		if idx < 0 || idx >= sets {
			t.Fatalf("XORIndex out of range: %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) < sets/2 {
		t.Errorf("XOR indexing spread %d/%d sets for strided keys; want wide spread", len(seen), sets)
	}
	// Modulo, by contrast, puts them all in one set.
	mseen := map[int]bool{}
	for k := trace.Key(0); k < 4096; k += 64 {
		mseen[ModuloIndex(k, sets)] = true
	}
	if len(mseen) != 1 {
		t.Errorf("expected modulo to collapse strided keys, got %d sets", len(mseen))
	}
}

func TestPLRUVictimChasesBits(t *testing.T) {
	c := MustNew(Config{Lines: 4, Ways: 4, WriteAllocate: true}, NewPLRU())
	for k := trace.Key(1); k <= 4; k++ {
		c.Access(trace.Access{Key: k})
	}
	// After filling 1,2,3,4 in order, PLRU points at way 0 (key 1).
	res := c.Access(trace.Access{Key: 5})
	if !res.Evicted || res.Victim != 1 {
		t.Errorf("PLRU victim = %+v, want key 1", res)
	}
	// Touching a line protects it.
	c.Access(trace.Access{Key: 2})
	res = c.Access(trace.Access{Key: 6})
	if res.Victim == 2 {
		t.Error("PLRU evicted just-touched line")
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	tr := reads(1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3)
	a, _ := Simulate(Config{Lines: 3, WriteAllocate: true}, NewRandom(7), tr)
	b, _ := Simulate(Config{Lines: 3, WriteAllocate: true}, NewRandom(7), tr)
	if a != b {
		t.Errorf("same seed gave different stats: %+v vs %+v", a, b)
	}
}

func TestSRRIPPromotesOnHit(t *testing.T) {
	c := MustNew(Config{Lines: 2, WriteAllocate: true}, NewSRRIP())
	c.Access(trace.Access{Key: 1})
	c.Access(trace.Access{Key: 2})
	c.Access(trace.Access{Key: 1}) // promote key 1 to RRPV 0
	res := c.Access(trace.Access{Key: 3})
	if res.Victim != 2 {
		t.Errorf("SRRIP victim = %v, want 2 (not-promoted)", res.Victim)
	}
}

func TestRRIPAgingTerminates(t *testing.T) {
	// All lines at RRPV 0 must still yield a victim via aging.
	lines := []Line{{Valid: true}, {Valid: true}}
	w := rripVictim(lines)
	if w != 0 && w != 1 {
		t.Errorf("victim = %d", w)
	}
	if lines[w].RRPV != rrpvMax {
		t.Errorf("aging should raise RRPV to max, got %d", lines[w].RRPV)
	}
}

func TestDRRIPRunsAndIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := make(trace.Trace, 20000)
	for i := range tr {
		tr[i].Key = trace.Key(rng.Intn(512))
	}
	trace.AnnotateNextUse(tr)
	cfg := Config{Lines: 256, Ways: 4, WriteAllocate: true}
	a, err := Simulate(cfg, NewDRRIP(1), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(cfg, NewDRRIP(1), tr)
	if a != b {
		t.Error("DRRIP not deterministic with fixed seed")
	}
	if a.Hits == 0 || a.Misses == 0 {
		t.Errorf("degenerate stats: %+v", a)
	}
}

// Property: OPT never has more misses than any other policy on the same
// fully-associative configuration (Belady/Mattson optimality).
func TestOPTOptimalityProperty(t *testing.T) {
	policies := []func() Policy{
		NewLRU, NewMRU, NewFIFO,
		func() Policy { return NewRandom(3) },
		NewSRRIP,
	}
	f := func(seed int64, capExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 2 + int(capExp%6) // 2..7 lines
		tr := make(trace.Trace, 300)
		for i := range tr {
			tr[i].Key = trace.Key(rng.Intn(20))
		}
		trace.AnnotateNextUse(tr)
		cfg := Config{Lines: capacity, WriteAllocate: true}
		// Round capacity down to keep "sets power of two" trivially true
		// (fully associative => 1 set, always fine).
		optStats, err := Simulate(cfg, NewOPT(), tr)
		if err != nil {
			return false
		}
		for _, np := range policies {
			st, err := Simulate(cfg, np(), tr)
			if err != nil {
				return false
			}
			if optStats.Misses > st.Misses {
				t.Logf("OPT %d misses > %s %d misses (cap %d)",
					optStats.Misses, np().Name(), st.Misses, capacity)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: LRU stack inclusion — a larger fully-associative LRU cache never
// misses more than a smaller one on the same trace.
func TestLRUInclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := make(trace.Trace, 400)
		for i := range tr {
			tr[i].Key = trace.Key(rng.Intn(30))
		}
		trace.AnnotateNextUse(tr)
		prev := int64(1 << 62)
		for _, lines := range []int{2, 4, 8, 16, 32} {
			st, err := Simulate(Config{Lines: lines, WriteAllocate: true}, NewLRU(), tr)
			if err != nil {
				return false
			}
			if st.Misses > prev {
				return false
			}
			prev = st.Misses
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: OPT misses never fall below the paper's lower bound on the
// write-once/read-many primitive pattern.
func TestOPTRespectsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tp := 20 + rng.Intn(50)
		// Build a PB-like trace: each primitive written once, then read in
		// one or more "tiles".
		var tr trace.Trace
		for p := 0; p < tp; p++ {
			tr = append(tr, trace.Access{Key: trace.Key(p), Write: true})
		}
		for r := 0; r < 3; r++ {
			for p := 0; p < tp; p++ {
				if rng.Intn(2) == 0 {
					tr = append(tr, trace.Access{Key: trace.Key(p)})
				}
			}
		}
		// Ensure every primitive read at least once.
		for p := 0; p < tp; p++ {
			tr = append(tr, trace.Access{Key: trace.Key(p)})
		}
		trace.AnnotateNextUse(tr)
		cp := 4 + rng.Intn(tp)
		st, err := Simulate(Config{Lines: cp, WriteAllocate: true}, NewOPT(), tr)
		if err != nil {
			return false
		}
		return st.Misses >= LowerBoundMisses(tp, cp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestLowerBound(t *testing.T) {
	if got := LowerBoundMisses(1000, 128); got != 1872 {
		t.Errorf("LB(1000,128) = %d, want 1872 (paper example)", got)
	}
	if got := LowerBoundMisses(100, 100); got != 100 {
		t.Errorf("LB(100,100) = %d, want 100", got)
	}
	if got := LowerBoundMisses(100, 500); got != 100 {
		t.Errorf("LB(100,500) = %d, want 100", got)
	}
	if got := LowerBoundMissRatio(100, 500, 0); got != 0 {
		t.Errorf("LB ratio with zero accesses = %v", got)
	}
	tr := reads(0, 1, 2, 0, 1, 2)
	if got := TraceLowerBoundMissRatio(tr, 1); got != float64(3+2)/6 {
		t.Errorf("TraceLowerBoundMissRatio = %v", got)
	}
}

func TestStatsRatios(t *testing.T) {
	s := Stats{Accesses: 10, Hits: 7, Misses: 3}
	if s.MissRatio() != 0.3 || s.HitRatio() != 0.7 {
		t.Errorf("ratios = %v/%v", s.MissRatio(), s.HitRatio())
	}
	var z Stats
	if z.MissRatio() != 0 || z.HitRatio() != 0 {
		t.Error("zero-access ratios should be 0")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{Lines: 4}, nil); err == nil {
		t.Error("expected error for nil policy")
	}
	if _, err := New(Config{Lines: 0}, NewLRU()); err == nil {
		t.Error("expected error for bad config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad config")
		}
	}()
	MustNew(Config{Lines: 0}, NewLRU())
}

func TestFullyAssociativeFastPathConsistent(t *testing.T) {
	// The whereIs fast path (single set) must agree with the generic scan.
	rng := rand.New(rand.NewSource(5))
	tr := make(trace.Trace, 5000)
	for i := range tr {
		tr[i].Key = trace.Key(rng.Intn(100))
		tr[i].Write = rng.Intn(4) == 0
	}
	trace.AnnotateNextUse(tr)
	fa, _ := Simulate(Config{Lines: 32, WriteAllocate: true}, NewLRU(), tr)
	// 32 ways spread over 1 set == 32 lines fully associative; compare with
	// explicit Ways = Lines.
	fb, _ := Simulate(Config{Lines: 32, Ways: 32, WriteAllocate: true}, NewLRU(), tr)
	if fa != fb {
		t.Errorf("fast path diverges: %+v vs %+v", fa, fb)
	}
}
