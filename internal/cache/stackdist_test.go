package cache

import (
	"math/rand"
	"testing"

	"tcor/internal/trace"
)

func TestLRUStackDistancesSimple(t *testing.T) {
	// Trace: A B A C B A
	// A: cold; B: cold; A: dist 1; C: cold; B: dist 2; A: dist 2.
	tr := reads(1, 2, 1, 3, 2, 1)
	p := LRUStackDistances(tr)
	if p.Cold != 3 {
		t.Errorf("cold = %d, want 3", p.Cold)
	}
	if p.Distances[1] != 1 {
		t.Errorf("dist-1 count = %d, want 1", p.Distances[1])
	}
	if p.Distances[2] != 2 {
		t.Errorf("dist-2 count = %d, want 2", p.Distances[2])
	}
	// Capacity 2: misses = 3 cold + 2 at distance >= 2 = 5.
	if got := p.MissesAt(2); got != 5 {
		t.Errorf("MissesAt(2) = %d, want 5", got)
	}
	// Capacity 3: everything with distance <= 2 hits: misses = 3.
	if got := p.MissesAt(3); got != 3 {
		t.Errorf("MissesAt(3) = %d, want 3", got)
	}
}

// The inclusion cross-check: the one-pass profile must agree EXACTLY with
// the event-driven fully-associative LRU simulator at every capacity.
func TestStackProfileMatchesSimulatorExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr := make(trace.Trace, 20000)
	for i := range tr {
		// Zipf-ish mixture: hot keys plus a long tail.
		if rng.Intn(3) == 0 {
			tr[i].Key = trace.Key(rng.Intn(2000))
		} else {
			tr[i].Key = trace.Key(rng.Intn(40))
		}
	}
	trace.AnnotateNextUse(tr)
	p := LRUStackDistances(tr)
	for _, capacity := range []int{1, 2, 3, 7, 16, 33, 64, 200, 1000} {
		st, err := Simulate(Config{Lines: capacity, WriteAllocate: true}, NewLRU(), tr)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.MissesAt(capacity); got != st.Misses {
			t.Errorf("capacity %d: stack profile %d misses, simulator %d",
				capacity, got, st.Misses)
		}
	}
}

// Mattson inclusion: the miss curve is non-increasing in capacity.
func TestStackProfileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := make(trace.Trace, 5000)
	for i := range tr {
		tr[i].Key = trace.Key(rng.Intn(300))
	}
	p := LRUStackDistances(tr)
	prev := p.MissesAt(1)
	for c := 2; c < 400; c++ {
		cur := p.MissesAt(c)
		if cur > prev {
			t.Fatalf("misses increased from capacity %d to %d", c-1, c)
		}
		prev = cur
	}
	// At capacity >= working set only cold misses remain.
	if p.MissesAt(300) != p.Cold {
		t.Errorf("misses at full capacity = %d, want cold %d", p.MissesAt(300), p.Cold)
	}
}

func TestStackProfileHelpers(t *testing.T) {
	tr := reads(1, 2, 1, 3, 2, 1)
	p := LRUStackDistances(tr)
	curve := p.Curve([]int{1, 2, 3})
	if len(curve) != 3 || curve[0] < curve[1] || curve[1] < curve[2] {
		t.Errorf("curve = %v", curve)
	}
	if p.MissRatioAt(3) != 0.5 {
		t.Errorf("ratio at 3 = %v", p.MissRatioAt(3))
	}
	var zero StackProfile
	if zero.MissRatioAt(4) != 0 {
		t.Error("empty profile ratio")
	}
	if d := p.Percentile(0.5); d < 1 || d > 2 {
		t.Errorf("median reuse distance = %d", d)
	}
	if (StackProfile{}).Percentile(0.5) != 0 {
		t.Error("empty percentile")
	}
}

// OPT inclusion: the OPT miss counts are monotone in capacity and never
// exceed LRU's at the same capacity.
func TestOPTStackDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := make(trace.Trace, 8000)
	for i := range tr {
		tr[i].Key = trace.Key(rng.Intn(250))
	}
	trace.AnnotateNextUse(tr)
	caps := []int{4, 8, 16, 32, 64, 128}
	opt, err := OPTStackDistances(tr, caps)
	if err != nil {
		t.Fatal(err)
	}
	lru := LRUStackDistances(tr)
	prev := int64(1 << 62)
	for _, c := range caps {
		if opt[c] > prev {
			t.Errorf("OPT misses increased at capacity %d", c)
		}
		prev = opt[c]
		if opt[c] > lru.MissesAt(c) {
			t.Errorf("capacity %d: OPT %d > LRU %d", c, opt[c], lru.MissesAt(c))
		}
	}
}
