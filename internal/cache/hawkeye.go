package cache

import "tcor/internal/trace"

// Hawkeye (Jain & Lin, ISCA 2016 — the paper's reference [21]): learn
// Belady's decisions from the past. Sampled sets reconstruct what OPT
// *would have done* over a sliding window of history (the OPTgen occupancy
// vector); each reconstructed decision trains a predictor indexed by the
// access's signature (for CPUs the load PC; for the Parameter Buffer stream
// the natural analogue is the mesh a primitive belongs to — primitives of
// one draw call behave alike, so the signature is key>>5 unless the caller
// provides one). Insertions predicted cache-friendly enter with high
// priority; predicted cache-averse lines are marked for immediate eviction.
//
// TCOR's §VI argument applies here too: Hawkeye can only mimic OPT where
// the past predicts the future. The Tiling Engine *knows* the future, so it
// doesn't have to learn it — but Hawkeye is the strongest history-based
// baseline to measure that claim against.

const (
	hawkeyeRRPVBits   = 3
	hawkeyeRRPVMax    = 1<<hawkeyeRRPVBits - 1
	hawkeyeCtrMax     = 7 // 3-bit saturating counters
	hawkeyeSampleMask = 7 // sample every 8th set (all sets when few)
	hawkeyeHistory    = 8 // OPTgen window, in multiples of the associativity
)

// SignatureFunc derives the training signature of an access.
type SignatureFunc func(acc trace.Access) uint32

// DefaultSignature groups keys into runs of 32 — for primitive-granularity
// Parameter Buffer traces this approximates "the mesh the primitive belongs
// to", the closest analogue of a load PC.
func DefaultSignature(acc trace.Access) uint32 {
	return uint32(acc.Key >> 5)
}

// hawkeyeSample is one sampler entry: a past access awaiting its reuse.
type hawkeyeSample struct {
	key  trace.Key
	sig  uint32
	time int
}

// hawkeyeSampler reconstructs OPT decisions for one sampled set.
type hawkeyeSampler struct {
	entries []hawkeyeSample // ring, oldest first
	// occupancy[i] counts the liveness intervals crossing entry i's slot,
	// maintained lazily during queries.
	clock int
	cap   int // cache capacity this sampler models (the associativity)
}

// access processes one access in the sampler: if the key was seen within
// the window, decide whether OPT would have hit (the occupancy vector never
// saturated between the two uses) and return the training outcome.
func (s *hawkeyeSampler) access(key trace.Key, sig uint32) (trainSig uint32, hit, decided bool) {
	s.clock++
	// Find the most recent prior access to key.
	idx := -1
	for i := len(s.entries) - 1; i >= 0; i-- {
		if s.entries[i].key == key {
			idx = i
			break
		}
	}
	if idx >= 0 {
		prev := s.entries[idx]
		// OPTgen: count how many distinct liveness intervals overlap the
		// span (prev.time, now). The simplified occupancy check: the number
		// of other entries whose NEXT reuse falls inside the span. We
		// approximate with the number of distinct keys accessed in between;
		// OPT hits iff that stays below capacity.
		distinct := make(map[trace.Key]struct{})
		for _, e := range s.entries[idx+1:] {
			if e.key != key {
				distinct[e.key] = struct{}{}
			}
		}
		decided = true
		trainSig = prev.sig
		hit = len(distinct) < s.cap
	}
	// Record this access.
	s.entries = append(s.entries, hawkeyeSample{key: key, sig: sig, time: s.clock})
	if max := s.cap * hawkeyeHistory; len(s.entries) > max {
		s.entries = s.entries[len(s.entries)-max:]
	}
	return trainSig, hit, decided
}

type hawkeye struct {
	sig     SignatureFunc
	ways    int
	sampler map[int]*hawkeyeSampler
	// predictor: 3-bit saturating counters per signature; >= 4 predicts
	// cache-friendly.
	predictor map[uint32]int8
}

// NewHawkeye returns the Hawkeye policy with the given signature extractor
// (nil uses DefaultSignature).
func NewHawkeye(sig SignatureFunc) Policy {
	if sig == nil {
		sig = DefaultSignature
	}
	return &hawkeye{sig: sig}
}

func (*hawkeye) Name() string { return "Hawkeye" }

func (h *hawkeye) Reset(sets, ways int) {
	h.ways = ways
	h.sampler = make(map[int]*hawkeyeSampler)
	h.predictor = make(map[uint32]int8)
	for s := 0; s < sets; s++ {
		if s&hawkeyeSampleMask == 0 || sets <= 8 {
			h.sampler[s] = &hawkeyeSampler{cap: ways}
		}
	}
}

func (h *hawkeye) train(set int, acc trace.Access) bool {
	sig := h.sig(acc)
	if sam := h.sampler[set]; sam != nil {
		if trainSig, hit, ok := sam.access(acc.Key, sig); ok {
			c := h.predictor[trainSig]
			if hit && c < hawkeyeCtrMax {
				h.predictor[trainSig] = c + 1
			} else if !hit && c > 0 {
				h.predictor[trainSig] = c - 1
			}
		}
	}
	return h.predictor[sig] >= 4
}

func (h *hawkeye) Touch(set, way int, line *Line, acc trace.Access) {
	if h.train(set, acc) {
		line.RRPV = 0
	} else {
		line.RRPV = hawkeyeRRPVMax
	}
}

func (h *hawkeye) Insert(set, way int, line *Line, acc trace.Access) {
	if h.train(set, acc) {
		line.RRPV = 0
	} else {
		line.RRPV = hawkeyeRRPVMax
	}
}

func (h *hawkeye) Victim(set int, lines []Line) int {
	// Prefer a predicted-averse line (RRPV max); otherwise the oldest
	// friendly line (Hawkeye ages friendly lines; LRU stamp approximates).
	for w := range lines {
		if lines[w].RRPV >= hawkeyeRRPVMax {
			return w
		}
	}
	v := 0
	for w := 1; w < len(lines); w++ {
		if lines[w].LastUse < lines[v].LastUse {
			v = w
		}
	}
	return v
}
