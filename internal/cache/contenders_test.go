package cache

import (
	"math/rand"
	"testing"

	"tcor/internal/trace"
)

// scanPollutedTrace interleaves a small hot working set with a long stream
// of one-hit wonders: the classic workload where pure recency caches bleed
// (every scan key evicts a hot key) and scan-resistant designs shine.
func scanPollutedTrace(hot, scan, rounds int) trace.Trace {
	var tr trace.Trace
	next := hot
	for r := 0; r < rounds; r++ {
		for h := 0; h < hot; h++ {
			tr = append(tr, trace.Access{Key: trace.Key(h)})
			tr = append(tr, trace.Access{Key: trace.Key(next)})
			next++
			_ = scan
		}
	}
	trace.AnnotateNextUse(tr)
	return tr
}

func mustSimulate(t *testing.T, cfg Config, p Policy, tr trace.Trace) Stats {
	t.Helper()
	st, err := Simulate(cfg, p, tr)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return st
}

func TestARCScanResistance(t *testing.T) {
	tr := scanPollutedTrace(24, 0, 40)
	cfg := Config{Lines: 32, WriteAllocate: true}
	arcSt := mustSimulate(t, cfg, NewARC(), tr)
	lruSt := mustSimulate(t, cfg, NewLRU(), tr)
	if arcSt.Misses >= lruSt.Misses {
		t.Errorf("ARC should beat LRU under scan pollution: ARC %d misses, LRU %d", arcSt.Misses, lruSt.Misses)
	}
}

func TestS3FIFOScanResistance(t *testing.T) {
	tr := scanPollutedTrace(24, 0, 40)
	cfg := Config{Lines: 32, WriteAllocate: true}
	s3St := mustSimulate(t, cfg, NewS3FIFO(), tr)
	lruSt := mustSimulate(t, cfg, NewLRU(), tr)
	if s3St.Misses >= lruSt.Misses {
		t.Errorf("S3-FIFO should beat LRU under scan pollution: S3-FIFO %d misses, LRU %d", s3St.Misses, lruSt.Misses)
	}
}

func TestS3FIFOSetAssociative(t *testing.T) {
	// Exercise the queue bookkeeping across many small sets, where the
	// probationary queue degenerates to a single entry.
	rng := rand.New(rand.NewSource(3))
	tr := pbShapedTrace(rng, 200, 3)
	cfg := Config{Lines: 64, Ways: 4, WriteAllocate: true}
	st := mustSimulate(t, cfg, NewS3FIFO(), tr)
	if st.Accesses != int64(len(tr)) {
		t.Fatalf("accesses %d != trace length %d", st.Accesses, len(tr))
	}
	if st.Hits == 0 {
		t.Error("S3-FIFO produced zero hits on a reuse-heavy trace")
	}
}

// TestLearnedBetweenLRUAndOPT is the synthetic version of the arena's
// acceptance criterion: on PB-shaped traces the learned predictor must land
// in the [OPT, LRU] miss band — it approximates the oracle, so it beats
// recency, but it can never beat the oracle itself.
func TestLearnedBetweenLRUAndOPT(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tp := 80 + rng.Intn(120)
		tr := pbShapedTrace(rng, tp, 2)
		for _, cp := range []int{tp / 4, tp / 2, 3 * tp / 4} {
			if cp < 4 {
				cp = 4
			}
			cfg := Config{Lines: cp, WriteAllocate: true}
			opt := mustSimulate(t, cfg, NewOPT(), tr)
			lruSt := mustSimulate(t, cfg, NewLRU(), tr)
			learnedSt := mustSimulate(t, cfg, NewLearned(), tr)
			if learnedSt.Misses < opt.Misses {
				t.Errorf("seed %d cp %d: Learned %d misses beats OPT %d — impossible, simulator bug",
					seed, cp, learnedSt.Misses, opt.Misses)
			}
			if learnedSt.Misses > lruSt.Misses {
				t.Errorf("seed %d cp %d: Learned %d misses worse than LRU %d",
					seed, cp, learnedSt.Misses, lruSt.Misses)
			}
		}
	}
}

// TestLearnedDegradesToSRRIP feeds the learned policy a trace with no
// next-use annotations: every access is an ungradable label, confidence
// collapses before the first eviction, and from then on the policy must
// behave exactly like the SRRIP whose state it shadows.
func TestLearnedDegradesToSRRIP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var tr trace.Trace
	for i := 0; i < 4000; i++ {
		tr = append(tr, trace.Access{Key: trace.Key(rng.Intn(300))})
	}
	// Deliberately NOT annotated: NextUse stays zero everywhere.
	cfg := Config{Lines: 64, Ways: 4, WriteAllocate: true}
	learnedSt := mustSimulate(t, cfg, NewLearned(), tr)
	srripSt := mustSimulate(t, cfg, NewSRRIP(), tr)
	if learnedSt != srripSt {
		t.Errorf("stale learned policy diverged from SRRIP: learned %+v, srrip %+v", learnedSt, srripSt)
	}
}
