package cache

import (
	"math/rand"

	"tcor/internal/trace"
)

// The RRIP family (Jaleel et al. [22], the paper's DRRIP comparison point,
// Fig. 13). Each line carries an M-bit Re-Reference Prediction Value; 0
// means "re-referenced soon", 2^M-1 means "re-referenced in the distant
// future". Victims are lines with the maximum RRPV; if none exists all
// RRPVs are aged until one does.

const rripBits = 2 // M=2, as in the paper ("DRRIP (M=2)")

const (
	rrpvMax  = 1<<rripBits - 1 // 3: distant
	rrpvLong = rrpvMax - 1     // 2: long (SRRIP insertion)
)

func rripVictim(lines []Line) int {
	for {
		for w := range lines {
			if lines[w].RRPV >= rrpvMax {
				return w
			}
		}
		for w := range lines {
			lines[w].RRPV++
		}
	}
}

// --- SRRIP ---

type srrip struct{}

// NewSRRIP returns Static RRIP with hit-priority promotion: hits reset RRPV
// to 0, fills insert with RRPV=2 (long re-reference interval).
func NewSRRIP() Policy { return srrip{} }

func (srrip) Name() string         { return "SRRIP" }
func (srrip) Reset(sets, ways int) {}

func (srrip) Touch(set, way int, line *Line, a trace.Access) { line.RRPV = 0 }

func (srrip) Insert(set, way int, line *Line, a trace.Access) { line.RRPV = rrpvLong }

func (srrip) Victim(set int, lines []Line) int { return rripVictim(lines) }

// --- BRRIP ---

type brrip struct{ rng *rand.Rand }

// NewBRRIP returns Bimodal RRIP: most fills insert with RRPV=3 (distant),
// and with low probability (1/32) with RRPV=2. Thrash-resistant.
func NewBRRIP(seed int64) Policy {
	return &brrip{rng: rand.New(rand.NewSource(seed))}
}

func (*brrip) Name() string         { return "BRRIP" }
func (*brrip) Reset(sets, ways int) {}

func (*brrip) Touch(set, way int, line *Line, a trace.Access) { line.RRPV = 0 }

func (b *brrip) Insert(set, way int, line *Line, a trace.Access) {
	if b.rng.Intn(32) == 0 {
		line.RRPV = rrpvLong
	} else {
		line.RRPV = rrpvMax
	}
}

func (*brrip) Victim(set int, lines []Line) int { return rripVictim(lines) }

// --- DRRIP ---

// drrip implements Dynamic RRIP with set dueling: a few leader sets always
// use the SRRIP insertion policy, a few always use BRRIP, and a saturating
// counter (PSEL) tracks which leader group misses less; follower sets adopt
// the winner.
type drrip struct {
	rng        *rand.Rand
	sets       int
	psel       int
	pselMax    int
	leaderMask int // leader sets are chosen as set % leaderStride
}

const (
	drripPselBits     = 10
	drripLeaderStride = 32 // 1 SRRIP leader + 1 BRRIP leader per 32 sets
)

// NewDRRIP returns Dynamic RRIP (M=2) with set dueling, the configuration
// compared against OPT in the paper's Fig. 13.
func NewDRRIP(seed int64) Policy {
	return &drrip{rng: rand.New(rand.NewSource(seed))}
}

func (*drrip) Name() string { return "DRRIP" }

func (d *drrip) Reset(sets, ways int) {
	d.sets = sets
	d.pselMax = 1<<drripPselBits - 1
	d.psel = d.pselMax / 2
}

// leaderKind returns 0 for SRRIP leaders, 1 for BRRIP leaders, -1 for
// follower sets. With few sets every set duels in alternation.
func (d *drrip) leaderKind(set int) int {
	stride := drripLeaderStride
	if d.sets < 2*stride {
		// Small caches: odd sets duel for BRRIP, even for SRRIP.
		return set & 1
	}
	switch set % stride {
	case 0:
		return 0
	case stride / 2:
		return 1
	default:
		return -1
	}
}

func (d *drrip) Touch(set, way int, line *Line, a trace.Access) { line.RRPV = 0 }

func (d *drrip) Insert(set, way int, line *Line, a trace.Access) {
	useBRRIP := false
	switch d.leaderKind(set) {
	case 0: // SRRIP leader: a miss here is evidence against SRRIP
		if d.psel < d.pselMax {
			d.psel++
		}
	case 1: // BRRIP leader: a miss here is evidence against BRRIP
		useBRRIP = true
		if d.psel > 0 {
			d.psel--
		}
	default:
		useBRRIP = d.psel > d.pselMax/2
	}
	if useBRRIP {
		if d.rng.Intn(32) == 0 {
			line.RRPV = rrpvLong
		} else {
			line.RRPV = rrpvMax
		}
	} else {
		line.RRPV = rrpvLong
	}
}

func (*drrip) Victim(set int, lines []Line) int { return rripVictim(lines) }
