package cache_test

import (
	"fmt"

	"tcor/internal/cache"
	"tcor/internal/trace"
)

// Simulate a short trace under LRU and under the optimal policy. OPT needs
// the Belady next-use annotation; LRU ignores it.
func ExampleSimulate() {
	tr := trace.Trace{
		{Key: 1}, {Key: 2}, {Key: 3}, {Key: 1}, {Key: 2},
	}
	trace.AnnotateNextUse(tr)

	cfg := cache.Config{Lines: 2, WriteAllocate: true}
	lru, _ := cache.Simulate(cfg, cache.NewLRU(), tr)
	opt, _ := cache.Simulate(cfg, cache.NewOPT(), tr)
	fmt.Printf("LRU misses: %d\n", lru.Misses)
	fmt.Printf("OPT misses: %d\n", opt.Misses)
	// Output:
	// LRU misses: 5
	// OPT misses: 4
}

// The one-pass Mattson stack-distance profile yields the fully associative
// LRU miss count at every capacity simultaneously.
func ExampleLRUStackDistances() {
	tr := trace.Trace{
		{Key: 1}, {Key: 2}, {Key: 1}, {Key: 3}, {Key: 2}, {Key: 1},
	}
	p := cache.LRUStackDistances(tr)
	for _, capacity := range []int{1, 2, 3} {
		fmt.Printf("capacity %d: %d misses\n", capacity, p.MissesAt(capacity))
	}
	// Output:
	// capacity 1: 6 misses
	// capacity 2: 5 misses
	// capacity 3: 3 misses
}

// The analytic lower bound of the paper's §V-A: with TP primitives and room
// for CP, at least TP + (TP-CP) accesses must miss.
func ExampleLowerBoundMisses() {
	fmt.Println(cache.LowerBoundMisses(1000, 128)) // the paper's own example
	// Output:
	// 1872
}

// Decompose a conflict-heavy trace with the 3C model: two keys that alias
// in a direct-mapped cache produce pure conflict misses.
func ExampleClassify3C() {
	var tr trace.Trace
	for i := 0; i < 4; i++ {
		tr = append(tr, trace.Access{Key: 0}, trace.Access{Key: 64})
	}
	b, _ := cache.Classify3C(cache.Config{Lines: 64, Ways: 1, WriteAllocate: true}, cache.NewLRU(), tr)
	fmt.Printf("compulsory=%d capacity=%d conflict=%d\n", b.Compulsory, b.Capacity, b.Conflict)
	// Output:
	// compulsory=2 capacity=0 conflict=6
}
