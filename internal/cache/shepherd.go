package cache

import "tcor/internal/trace"

// Shepherd Cache (Rajan & Govindarajan, MICRO 2007 — the paper's reference
// [31]): emulate OPT over a short future window by splitting each set into
// a Main Cache (MC) and a small FIFO Shepherd Cache (SC). New lines enter
// the SC; while a line shepherds, the set records the *imminence order* in
// which existing lines are re-accessed. When the oldest SC line must
// graduate into the MC, the replacement victim is the line whose next
// access was observed farthest in that order — or never observed at all —
// which is exactly Belady's choice restricted to the lookahead the SC
// provided. The original paper reports this bridges 30–52% of the LRU–OPT
// gap; TCOR §VI cites it as the prior practical OPT emulation.
//
// This implementation emulates the design on top of the generic set array:
// SC membership is tracked per way index inside the policy, and "the new
// block takes the graduating line's SC slot" becomes "the new block fills
// the victim's way and becomes the newest SC member".

type shepherdSet struct {
	// scOrder lists the way indices currently acting as shepherd entries,
	// oldest first.
	scOrder []int
	// rank[s][w] is the imminence order of way w relative to SC way s:
	// the position of w's first access after s was inserted. nextRank[s]
	// is the next position to hand out.
	rank     map[int]map[int]int
	nextRank map[int]int
}

type shepherd struct {
	// scWays is the number of shepherd ways per set.
	scWays int
	sets   []shepherdSet
}

// NewShepherd returns a Shepherd Cache policy with scWays shepherd entries
// per set (clamped to at least 1 and at most ways-1 at Reset).
func NewShepherd(scWays int) Policy {
	return &shepherd{scWays: scWays}
}

func (*shepherd) Name() string { return "Shepherd" }

func (s *shepherd) Reset(sets, ways int) {
	if s.scWays < 1 {
		s.scWays = 1
	}
	if ways > 1 && s.scWays > ways-1 {
		s.scWays = ways - 1
	}
	s.sets = make([]shepherdSet, sets)
	for i := range s.sets {
		s.sets[i] = shepherdSet{
			rank:     make(map[int]map[int]int),
			nextRank: make(map[int]int),
		}
	}
}

// observe records an access to way w in every shepherd's imminence order.
func (s *shepherd) observe(set, w int) {
	st := &s.sets[set]
	for _, sc := range st.scOrder {
		if _, seen := st.rank[sc][w]; !seen {
			st.rank[sc][w] = st.nextRank[sc]
			st.nextRank[sc]++
		}
	}
}

func (s *shepherd) Touch(set, way int, line *Line, a trace.Access) {
	s.observe(set, way)
}

func (s *shepherd) Insert(set, way int, line *Line, a trace.Access) {
	st := &s.sets[set]
	// The way's previous identity disappears from all bookkeeping — it may
	// itself have been a shepherd entry (the victim can be an SC way when
	// its imminence is the worst in the set).
	for i, sc := range st.scOrder {
		if sc == way {
			st.scOrder = append(st.scOrder[:i], st.scOrder[i+1:]...)
			delete(st.rank, way)
			delete(st.nextRank, way)
			break
		}
	}
	for _, sc := range st.scOrder {
		delete(st.rank[sc], way)
	}
	// The oldest shepherd graduates once the SC is at capacity (its slot
	// is conceptually handed to the new line).
	if len(st.scOrder) >= s.scWays {
		old := st.scOrder[0]
		st.scOrder = st.scOrder[1:]
		delete(st.rank, old)
		delete(st.nextRank, old)
	}
	// The insertion access counts toward the *older* shepherds' windows.
	s.observe(set, way)
	// The new line becomes the newest shepherd. Its own window starts
	// empty: the insertion itself is not a re-reference, so a line that is
	// never touched again stays "unseen" and is the preferred victim when
	// it graduates (dead streaming blocks evict themselves).
	st.scOrder = append(st.scOrder, way)
	st.rank[way] = map[int]int{}
	st.nextRank[way] = 0
}

func (s *shepherd) Victim(set int, lines []Line) int {
	st := &s.sets[set]
	if len(st.scOrder) == 0 {
		// No lookahead gathered yet: fall back to LRU.
		return lru{}.Victim(set, lines)
	}
	e := st.scOrder[0] // the shepherd about to graduate
	ranks := st.rank[e]
	// Prefer a line never accessed since e was inserted (farthest possible
	// next use); tie-break LRU. Otherwise the largest recorded rank.
	bestUnseen, bestSeen := -1, -1
	for w := range lines {
		if r, seen := ranks[w]; seen {
			if bestSeen < 0 || r > ranks[bestSeen] {
				bestSeen = w
			}
		} else {
			if bestUnseen < 0 || lines[w].LastUse < lines[bestUnseen].LastUse {
				bestUnseen = w
			}
		}
	}
	if bestUnseen >= 0 {
		return bestUnseen
	}
	return bestSeen
}
