package cache

import "tcor/internal/trace"

// Learned reuse-distance policy (in the spirit of "Toward Robust and
// Efficient ML-Based GPU Caching for Modern Inference"): an online
// predictor that tries to approximate the OPT information TCOR's Tiling
// Engine gets for free. Every access carries the PLB-visible next-use
// annotation, so the true forward reuse distance of the current key is the
// training label; the policy learns a per-key EMA of those distances (plus
// a global fallback for cold keys) and replaces with "evict the line whose
// *predicted* next use lies farthest in the future" — Belady's rule driven
// by the model instead of the oracle.
//
// The predictor also grades itself on every label: a prediction within a
// factor of two of the observed distance bumps a saturating confidence
// counter, a miss by more than that decays it. While confidence holds, the
// learned victim rule applies; when predictions go stale — the workload
// shifted faster than the EMA tracks, or the trace carries no next-use
// annotations at all — the policy degrades gracefully to plain SRRIP,
// whose RRPV state it maintains in parallel at all times.

const (
	learnedConfMax   = 63                 // saturating confidence counter
	learnedConfStart = learnedConfMax / 2 // also the learned-mode threshold
	learnedDead      = int64(1) << 40     // interval assigned to never-reused keys
	learnedEMAShift  = 2                  // EMA weight: new sample counts 1/4
)

type learned struct {
	ways int
	now  int64 // mirror of the cache clock (lines are stamped before we run)

	ema    map[trace.Key]int64 // predicted reuse interval per key
	global int64               // fallback interval for never-seen keys
	conf   int

	// pred[set][way] is the predicted next-use time of the resident line.
	pred [][]int64
}

// NewLearned returns the learned reuse-distance classifier policy.
func NewLearned() Policy { return &learned{} }

func (*learned) Name() string { return "Learned" }

func (l *learned) Reset(sets, ways int) {
	l.ways = ways
	l.now = 0
	l.ema = make(map[trace.Key]int64)
	l.global = 1
	l.conf = learnedConfStart
	l.pred = make([][]int64, sets)
	for i := range l.pred {
		l.pred[i] = make([]int64, ways)
	}
}

func (l *learned) learnedMode() bool { return l.conf >= learnedConfStart }

// observe trains on one access and records the line's predicted next use.
// line.LastUse was stamped with the cache clock just before the policy ran,
// so it doubles as the current time.
func (l *learned) observe(set, way int, line *Line, acc trace.Access) {
	l.now = line.LastUse
	var actual int64
	switch {
	case acc.NextUse == trace.Never:
		actual = learnedDead
	case acc.NextUse > l.now:
		actual = acc.NextUse - l.now
	default:
		// NextUse at or before now: the trace carries no (or inconsistent)
		// annotations. There is no label to train on; every such access is
		// evidence the model cannot be trusted.
		if l.conf > 0 {
			l.conf--
		}
		l.pred[set][way] = l.now + l.lookup(acc.Key)
		return
	}

	// Grade the prediction the model would have made before seeing the label.
	predicted := l.lookup(acc.Key)
	if predicted >= actual/2 && predicted <= actual*2 {
		if l.conf < learnedConfMax {
			l.conf++
		}
	} else if l.conf > 0 {
		l.conf--
	}

	// Train: move the per-key and global EMAs toward the label.
	if old, ok := l.ema[acc.Key]; ok {
		l.ema[acc.Key] = old + (actual-old)>>learnedEMAShift
	} else {
		l.ema[acc.Key] = actual
	}
	if actual < learnedDead {
		l.global += (actual - l.global) >> learnedEMAShift
	}
	l.pred[set][way] = l.now + l.ema[acc.Key]
}

// lookup returns the model's predicted reuse interval for key.
func (l *learned) lookup(key trace.Key) int64 {
	if v, ok := l.ema[key]; ok {
		return v
	}
	return l.global
}

func (l *learned) Touch(set, way int, line *Line, acc trace.Access) {
	line.RRPV = 0 // SRRIP shadow state
	l.observe(set, way, line, acc)
}

func (l *learned) Insert(set, way int, line *Line, acc trace.Access) {
	line.RRPV = rrpvLong // SRRIP shadow state
	l.observe(set, way, line, acc)
}

func (l *learned) Victim(set int, lines []Line) int {
	if !l.learnedMode() {
		return rripVictim(lines)
	}
	// Belady over predictions. A line whose predicted reuse already passed
	// without a hit is overdue — likely dead — and outranks any prediction
	// still in the future, most-overdue first.
	v, best := 0, l.score(set, 0)
	for w := 1; w < len(lines); w++ {
		if s := l.score(set, w); s > best {
			v, best = w, s
		}
	}
	return v
}

func (l *learned) score(set, way int) int64 {
	p := l.pred[set][way]
	if p < l.now {
		return learnedDead + (l.now - p)
	}
	return p
}
