package cache

import (
	"math/rand"

	"tcor/internal/trace"
)

// Insertion-policy family (Qureshi et al. [30], "Adaptive insertion policies
// for high performance caching"): LRU replacement with a modified insertion
// point. LIP inserts new lines at the LRU position (they must prove
// themselves with a hit before gaining recency), BIP inserts at MRU with a
// small probability and at LRU otherwise, and DIP set-duels between
// classic LRU and BIP. These are the classic thrash-resistant baselines the
// dead-block literature in the paper's related-work section builds on.

// lipStamp is the recency value given to LRU-position inserts: older than
// every real access (the cache clock is strictly positive).
const lipStamp = int64(-1)

// --- NRU ---

type nru struct{}

// NewNRU returns the not-recently-used policy: a single reference bit per
// line; victims are lines with the bit clear, and when every line is
// referenced all bits reset. This is the hardware-cheap policy many GPUs
// actually ship.
func NewNRU() Policy { return nru{} }

func (nru) Name() string         { return "NRU" }
func (nru) Reset(sets, ways int) {}

// Touch marks the line referenced (reusing the RRPV field as the NRU bit:
// 0 = referenced, 1 = not).
func (nru) Touch(set, way int, line *Line, a trace.Access) { line.RRPV = 0 }

func (nru) Insert(set, way int, line *Line, a trace.Access) { line.RRPV = 0 }

func (nru) Victim(set int, lines []Line) int {
	for w := range lines {
		if lines[w].RRPV != 0 {
			return w
		}
	}
	// Everyone referenced: clear all bits, evict way 0.
	for w := range lines {
		lines[w].RRPV = 1
	}
	lines[0].RRPV = 0
	return 0
}

// --- LIP ---

type lip struct{}

// NewLIP returns the LRU-insertion policy: misses insert at the LRU
// position, so streaming data that is never reused evicts itself instead of
// flushing the working set.
func NewLIP() Policy { return lip{} }

func (lip) Name() string                                   { return "LIP" }
func (lip) Reset(sets, ways int)                           {}
func (lip) Touch(set, way int, line *Line, a trace.Access) {}

func (lip) Insert(set, way int, line *Line, a trace.Access) {
	line.LastUse = lipStamp
}

func (lip) Victim(set int, lines []Line) int { return lru{}.Victim(set, lines) }

// --- BIP ---

type bip struct {
	rng *rand.Rand
	// epsilon is the MRU-insertion probability denominator (1/epsilon).
	epsilon int
}

// NewBIP returns the bimodal insertion policy: LIP, except that with
// probability 1/32 a miss inserts at MRU, letting the policy adapt when the
// working set changes.
func NewBIP(seed int64) Policy {
	return &bip{rng: rand.New(rand.NewSource(seed)), epsilon: 32}
}

func (*bip) Name() string                                   { return "BIP" }
func (*bip) Reset(sets, ways int)                           {}
func (*bip) Touch(set, way int, line *Line, a trace.Access) {}

func (b *bip) Insert(set, way int, line *Line, a trace.Access) {
	if b.rng.Intn(b.epsilon) != 0 {
		line.LastUse = lipStamp
	}
}

func (*bip) Victim(set int, lines []Line) int { return lru{}.Victim(set, lines) }

// --- DIP ---

type dip struct {
	rng     *rand.Rand
	sets    int
	psel    int
	pselMax int
}

// NewDIP returns dynamic insertion (DIP-SD): set dueling between LRU and
// BIP insertion, follower sets adopting whichever leader group misses less.
func NewDIP(seed int64) Policy {
	return &dip{rng: rand.New(rand.NewSource(seed))}
}

func (*dip) Name() string { return "DIP" }

func (d *dip) Reset(sets, ways int) {
	d.sets = sets
	d.pselMax = 1<<drripPselBits - 1
	d.psel = d.pselMax / 2
}

// leaderKind mirrors the DRRIP dueling layout: 0 = LRU leader, 1 = BIP
// leader, -1 = follower.
func (d *dip) leaderKind(set int) int {
	if d.sets < 2*drripLeaderStride {
		return set & 1
	}
	switch set % drripLeaderStride {
	case 0:
		return 0
	case drripLeaderStride / 2:
		return 1
	default:
		return -1
	}
}

func (d *dip) Touch(set, way int, line *Line, a trace.Access) {}

func (d *dip) Insert(set, way int, line *Line, a trace.Access) {
	useBIP := false
	switch d.leaderKind(set) {
	case 0: // LRU leader missing: evidence against LRU insertion
		if d.psel < d.pselMax {
			d.psel++
		}
	case 1: // BIP leader missing: evidence against BIP insertion
		useBIP = true
		if d.psel > 0 {
			d.psel--
		}
	default:
		useBIP = d.psel > d.pselMax/2
	}
	if useBIP && d.rng.Intn(32) != 0 {
		line.LastUse = lipStamp
	}
}

func (*dip) Victim(set int, lines []Line) int { return lru{}.Victim(set, lines) }
