package cache

import (
	"fmt"
	"sort"
	"strings"
)

// The policy registry maps stable string names to fresh policy instances so
// every binary — tcorsim -policy, paperfig -arena, the /v1/arena endpoint —
// selects policies the same way. Seeded policies use a fixed seed (1):
// reproducibility across runs and processes outranks seed variety here, and
// the determinism test in registry_test.go depends on it.

// registrySeed is the fixed seed given to stochastic policies.
const registrySeed = 1

// PolicyInfo describes one registered policy.
type PolicyInfo struct {
	// Name is the canonical registry name (matches Policy.Name()).
	Name string
	// Summary is a one-line description for help text and docs.
	Summary string
	// Make builds a fresh, unshared instance.
	Make func() Policy
}

var policyRegistry = []PolicyInfo{
	{"LRU", "least recently used (the paper's baseline)", NewLRU},
	{"MRU", "most recently used (cyclic-pattern specialist)", NewMRU},
	{"FIFO", "first in, first out", NewFIFO},
	{"Random", "uniform random victim (seeded)", func() Policy { return NewRandom(registrySeed) }},
	{"PLRU", "binary-tree pseudo-LRU (power-of-two ways)", NewPLRU},
	{"NRU", "not recently used (single reference bit)", NewNRU},
	{"LIP", "LRU-insertion policy (thrash-resistant)", NewLIP},
	{"BIP", "bimodal insertion (seeded)", func() Policy { return NewBIP(registrySeed) }},
	{"DIP", "dynamic insertion via set dueling (seeded)", func() Policy { return NewDIP(registrySeed) }},
	{"SRRIP", "static re-reference interval prediction", NewSRRIP},
	{"BRRIP", "bimodal RRIP (seeded)", func() Policy { return NewBRRIP(registrySeed) }},
	{"DRRIP", "dynamic RRIP via set dueling (seeded, M=2)", func() Policy { return NewDRRIP(registrySeed) }},
	{"Shepherd", "Shepherd Cache: bounded-lookahead OPT emulation", func() Policy { return NewShepherd(1) }},
	{"Hawkeye", "learns Belady's decisions from past windows", func() Policy { return NewHawkeye(nil) }},
	{"SHiP", "signature-based hit prediction over RRIP", func() Policy { return NewSHiP(nil) }},
	{"ARC", "adaptive replacement cache (recency/frequency balance)", NewARC},
	{"S3-FIFO", "three static FIFO queues with ghost readmission", NewS3FIFO},
	{"Learned", "online reuse-distance predictor, SRRIP fallback", NewLearned},
	{"OPT", "Belady's offline optimal (needs next-use annotations)", NewOPT},
}

// PolicyNames returns the canonical names of every registered policy,
// sorted case-insensitively. The slice is fresh on every call.
func PolicyNames() []string {
	names := make([]string, len(policyRegistry))
	for i, e := range policyRegistry {
		names[i] = e.Name
	}
	sort.Slice(names, func(i, j int) bool {
		return strings.ToLower(names[i]) < strings.ToLower(names[j])
	})
	return names
}

// Policies returns the registry entries in sorted-name order.
func Policies() []PolicyInfo {
	out := make([]PolicyInfo, len(policyRegistry))
	copy(out, policyRegistry)
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i].Name) < strings.ToLower(out[j].Name)
	})
	return out
}

// LookupPolicy finds a registry entry by name, case-insensitively. "s3fifo"
// and "2q" are accepted as spellings of S3-FIFO for CLI convenience.
func LookupPolicy(name string) (PolicyInfo, bool) {
	n := strings.ToLower(strings.TrimSpace(name))
	if n == "s3fifo" || n == "2q" {
		n = "s3-fifo"
	}
	for _, e := range policyRegistry {
		if strings.ToLower(e.Name) == n {
			return e, true
		}
	}
	return PolicyInfo{}, false
}

// NewPolicy builds a fresh instance of the named policy, or an error naming
// the valid choices.
func NewPolicy(name string) (Policy, error) {
	if e, ok := LookupPolicy(name); ok {
		return e.Make(), nil
	}
	return nil, fmt.Errorf("cache: unknown policy %q (valid: %s)", name, strings.Join(PolicyNames(), ", "))
}

// CanonicalPolicyName resolves name to its registry spelling, or an error.
func CanonicalPolicyName(name string) (string, error) {
	if e, ok := LookupPolicy(name); ok {
		return e.Name, nil
	}
	return "", fmt.Errorf("cache: unknown policy %q (valid: %s)", name, strings.Join(PolicyNames(), ", "))
}
