package cache

import "tcor/internal/trace"

// SHiP (Wu et al., MICRO 2011 — the paper's reference [38]): a
// Signature-based Hit Predictor over RRIP. Every line remembers the
// signature it was inserted under and whether it was ever re-referenced; an
// eviction without reuse decrements the signature's counter, a hit
// increments it. Insertions under a zero counter are predicted dead and
// enter at the distant RRPV.
type ship struct {
	sig  SignatureFunc
	shct map[uint32]int8 // signature hit counters, saturating at shipCtrMax
}

const shipCtrMax = 7

// NewSHiP returns the SHiP-RRIP policy (nil signature = DefaultSignature,
// grouping primitives by mesh as in NewHawkeye).
func NewSHiP(sig SignatureFunc) Policy {
	if sig == nil {
		sig = DefaultSignature
	}
	return &ship{sig: sig}
}

func (*ship) Name() string { return "SHiP" }

func (s *ship) Reset(sets, ways int) {
	s.shct = make(map[uint32]int8)
}

func (s *ship) Touch(set, way int, line *Line, acc trace.Access) {
	line.RRPV = 0
	if !line.Reused {
		line.Reused = true
		if c := s.shct[line.Sig]; c < shipCtrMax {
			s.shct[line.Sig] = c + 1
		}
	}
}

func (s *ship) Insert(set, way int, line *Line, acc trace.Access) {
	line.Sig = s.sig(acc)
	line.Reused = false
	if s.shct[line.Sig] == 0 {
		line.RRPV = rrpvMax // predicted dead on arrival
	} else {
		line.RRPV = rrpvLong
	}
}

func (s *ship) Victim(set int, lines []Line) int {
	w := rripVictim(lines)
	// Train on the outcome: an eviction without reuse is evidence the
	// signature's lines are dead on arrival.
	if lines[w].Valid && !lines[w].Reused {
		if c := s.shct[lines[w].Sig]; c > 0 {
			s.shct[lines[w].Sig] = c - 1
		}
	}
	return w
}
