package cache

import "tcor/internal/trace"

// LowerBoundMisses computes the paper's lower bound on total misses for the
// PB-Attributes access stream (§V-A): every one of the TP primitives is
// written exactly once (TP compulsory write misses), and the primitives that
// cannot fit in the cache when the Polygon List Builder finishes must miss
// at least once when first read, giving
//
//	LB = TP + (TP - CP)  when CP < TP
//	LB = TP              when CP >= TP
//
// where CP is the cache capacity in primitives.
func LowerBoundMisses(totalPrimitives, capacityPrimitives int) int64 {
	tp, cp := int64(totalPrimitives), int64(capacityPrimitives)
	if cp >= tp {
		return tp
	}
	return tp + (tp - cp)
}

// LowerBoundMissRatio converts the miss lower bound into a miss ratio for a
// trace with the given total number of accesses.
func LowerBoundMissRatio(totalPrimitives, capacityPrimitives int, totalAccesses int64) float64 {
	if totalAccesses == 0 {
		return 0
	}
	return float64(LowerBoundMisses(totalPrimitives, capacityPrimitives)) / float64(totalAccesses)
}

// TraceLowerBoundMissRatio derives the lower bound directly from a
// primitive-granularity trace (writes happen exactly once per primitive).
func TraceLowerBoundMissRatio(tr trace.Trace, capacityPrimitives int) float64 {
	tp := trace.UniqueKeys(tr)
	return LowerBoundMissRatio(tp, capacityPrimitives, int64(len(tr)))
}
