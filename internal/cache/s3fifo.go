package cache

import "tcor/internal/trace"

// S3-FIFO (Yang et al., SOSP 2023): three static FIFO queues. New keys
// enter a small probationary queue sized at ~10% of the set; keys that
// prove reuse while probationary are promoted into the main queue, one-hit
// wonders fall out through a ghost queue. Main-queue evictions give each
// line as many second chances as it earned hits (capped), which
// approximates LRU-like retention with FIFO-cheap bookkeeping — the design
// point is scan resistance without per-access reordering.
//
// Adapted to the Policy interface the same way as ARC: the queues shadow
// residency, Insert/Victim keep them synchronized with the set, and hit
// counts live in a per-set map rather than in the lines.

const (
	s3FreqMax   = 3  // saturating per-key hit counter
	s3SmallFrac = 10 // small queue target: ways / s3SmallFrac, min 1
)

type s3fifoSet struct {
	small, main []trace.Key // FIFO order, head first
	ghost       []trace.Key
	freq        map[trace.Key]uint8
}

type s3fifo struct {
	ways     int
	smallCap int
	sets     []s3fifoSet
}

// NewS3FIFO returns the S3-FIFO policy.
func NewS3FIFO() Policy { return &s3fifo{} }

func (*s3fifo) Name() string { return "S3-FIFO" }

func (s *s3fifo) Reset(sets, ways int) {
	s.ways = ways
	s.smallCap = max(1, ways/s3SmallFrac)
	s.sets = make([]s3fifoSet, sets)
	for i := range s.sets {
		s.sets[i].freq = make(map[trace.Key]uint8, ways)
	}
}

func (s *s3fifo) Touch(set, way int, line *Line, acc trace.Access) {
	st := &s.sets[set]
	if f := st.freq[acc.Key]; f < s3FreqMax {
		st.freq[acc.Key] = f + 1
	}
}

func (s *s3fifo) Insert(set, way int, line *Line, acc trace.Access) {
	st := &s.sets[set]
	st.small, _ = removeKey(st.small, acc.Key) // drop stale residue
	st.main, _ = removeKey(st.main, acc.Key)
	if _, wasGhost := removeKey2(&st.ghost, acc.Key); wasGhost {
		// A ghost hit means the key was evicted too hastily: readmit
		// straight into the main queue.
		st.main = append(st.main, acc.Key)
	} else {
		st.small = append(st.small, acc.Key)
	}
	st.freq[acc.Key] = 0
	if len(st.ghost) > s.ways {
		st.ghost = st.ghost[len(st.ghost)-s.ways:]
	}
}

func (s *s3fifo) Victim(set int, lines []Line) int {
	st := &s.sets[set]
	for len(st.small) > 0 || len(st.main) > 0 {
		if len(st.small) >= s.smallCap || len(st.main) == 0 {
			// Evict from the probationary queue.
			var key trace.Key
			key, st.small = st.small[0], st.small[1:]
			if st.freq[key] > 0 {
				// Earned reuse while probationary: promote, keep looking.
				st.main = append(st.main, key)
				st.freq[key] = 0
				continue
			}
			if w, ok := findWay(lines, key); ok {
				delete(st.freq, key)
				st.ghost = append(st.ghost, key)
				return w
			}
			delete(st.freq, key) // stale entry: drop and retry
			continue
		}
		// Evict from the main queue with frequency-funded second chances.
		var key trace.Key
		key, st.main = st.main[0], st.main[1:]
		if f := st.freq[key]; f > 0 {
			st.freq[key] = f - 1
			st.main = append(st.main, key)
			continue
		}
		if w, ok := findWay(lines, key); ok {
			delete(st.freq, key)
			return w
		}
		delete(st.freq, key)
	}
	return fifo{}.Victim(set, lines)
}

func findWay(lines []Line, key trace.Key) (int, bool) {
	for w := range lines {
		if lines[w].Valid && lines[w].Key == key {
			return w, true
		}
	}
	return -1, false
}
