package cache

import (
	"reflect"

	"tcor/internal/trace"
)

// IndexFunc maps a key to a set index in [0, sets).
type IndexFunc func(key trace.Key, sets int) int

// ModuloIndex is the conventional set mapping: the key modulo the set count
// (the low-order bits when the set count is a power of two).
func ModuloIndex(key trace.Key, sets int) int {
	return int(key % trace.Key(sets))
}

// XORIndex implements an XOR-based placement function (González et al. [12],
// Topham & González [36]): the set is the XOR of consecutive bit fields of
// the key. Folding several tag fields into the index spreads
// power-of-two-strided data across all sets, which is exactly the conflict
// pattern the baseline PB-Lists layout suffers from (paper §III-B).
//
// Bit folding only works for power-of-two set counts; Config.Validate
// rejects XOR-indexed geometries whose set count is not. Called directly
// with a non-power-of-two count, it degrades to a multiplicative hash.
func XORIndex(key trace.Key, sets int) int {
	if sets <= 1 {
		// A single set leaves no index bits to fold (the shift below would
		// be zero and the fold loop would never terminate).
		return 0
	}
	if sets&(sets-1) != 0 {
		// Bit folding needs a power-of-two set count; degrade to a
		// multiplicative hash otherwise.
		return int((key * 2654435761) % trace.Key(sets))
	}
	mask := trace.Key(sets - 1)
	shift := uint(0)
	for s := sets; s > 1; s >>= 1 {
		shift++
	}
	x := trace.Key(0)
	for k := key; k != 0; k >>= shift {
		x ^= k & mask
	}
	return int(x)
}

// isXORIndex reports whether f is the package's XORIndex function, so
// Config.Validate can reject geometries whose set count defeats the bit
// folding. Function values are not comparable in Go; identity via the code
// pointer is the standard workaround.
func isXORIndex(f IndexFunc) bool {
	return f != nil && reflect.ValueOf(f).Pointer() == reflect.ValueOf(XORIndex).Pointer()
}
