package cache

import "tcor/internal/trace"

// IndexFunc maps a key to a set index in [0, sets).
type IndexFunc func(key trace.Key, sets int) int

// ModuloIndex is the conventional set mapping: the key modulo the set count
// (the low-order bits when the set count is a power of two).
func ModuloIndex(key trace.Key, sets int) int {
	return int(key % trace.Key(sets))
}

// XORIndex implements an XOR-based placement function (González et al. [12],
// Topham & González [36]): the set is the XOR of consecutive bit fields of
// the key. Folding several tag fields into the index spreads
// power-of-two-strided data across all sets, which is exactly the conflict
// pattern the baseline PB-Lists layout suffers from (paper §III-B).
func XORIndex(key trace.Key, sets int) int {
	if sets&(sets-1) != 0 {
		// Bit folding needs a power-of-two set count; degrade to a
		// multiplicative hash otherwise.
		return int((key * 2654435761) % trace.Key(sets))
	}
	mask := trace.Key(sets - 1)
	shift := uint(0)
	for s := sets; s > 1; s >>= 1 {
		shift++
	}
	x := trace.Key(0)
	for k := key; k != 0; k >>= shift {
		x ^= k & mask
	}
	return int(x)
}
