// Package cache implements a trace-driven set-associative cache model with
// pluggable replacement policies — LRU, MRU, FIFO, Random, NRU, tree-PLRU,
// the insertion family (LIP/BIP/DIP), the RRIP family (SRRIP/BRRIP/DRRIP),
// Shepherd Cache, Hawkeye, SHiP and offline OPT/Belady — plus pluggable
// set-index functions (modulo and XOR-based placement), Mattson one-pass
// stack-distance profiles, 3C miss classification and the paper's analytic
// miss lower bound.
//
// The model is deliberately structural rather than byte-accurate: a cache is
// a collection of sets of lines, each line holding one Key (a line address
// or, for the paper's Attribute Cache studies, a primitive ID). The cost of
// a miss — fetching data, writing back a victim — is reported to the caller
// through AccessResult so that multi-level hierarchies can propagate
// traffic downward.
package cache

import (
	"fmt"

	"tcor/internal/stats"
	"tcor/internal/trace"
)

// Config describes a cache's geometry.
type Config struct {
	// Lines is the total number of lines in the cache. Use LinesFor to
	// derive it from a byte capacity.
	Lines int
	// Ways is the set associativity. 0 or Lines means fully associative;
	// 1 means direct-mapped.
	Ways int
	// Index chooses the set for a key. Nil means ModuloIndex.
	Index IndexFunc
	// WriteAllocate controls whether write misses allocate a line (default
	// true, write-allocate write-back, as in the paper's hierarchy).
	WriteAllocate bool
}

// LinesFor returns the number of lineBytes-sized lines in a cache of
// sizeBytes capacity.
func LinesFor(sizeBytes, lineBytes int) int {
	if lineBytes <= 0 {
		return 0
	}
	return sizeBytes / lineBytes
}

// Validate checks the geometry and returns a normalized copy with defaults
// applied. Invalid geometries are hard errors, never silent adjustments:
// Ways > Lines describes a set wider than the cache (historically this
// clamped to fully associative, masking sizing bugs in sweep code), and an
// XOR-based index with a non-power-of-two set count silently degrades to a
// different hash than the one asked for.
func (c Config) Validate() (Config, error) {
	if c.Lines <= 0 {
		return c, fmt.Errorf("cache: config needs at least one line, got %d", c.Lines)
	}
	if c.Ways < 0 {
		return c, fmt.Errorf("cache: negative associativity %d", c.Ways)
	}
	if c.Ways > c.Lines {
		return c, fmt.Errorf("cache: %d ways exceed %d lines (use Ways=0 or Ways=Lines for fully associative)", c.Ways, c.Lines)
	}
	if c.Ways == 0 {
		c.Ways = c.Lines // fully associative
	}
	if c.Lines%c.Ways != 0 {
		return c, fmt.Errorf("cache: %d lines not divisible by %d ways", c.Lines, c.Ways)
	}
	if sets := c.Lines / c.Ways; isXORIndex(c.Index) && sets&(sets-1) != 0 {
		return c, fmt.Errorf("cache: XOR index needs a power-of-two set count, got %d sets (%d lines / %d ways)", sets, c.Lines, c.Ways)
	}
	if c.Index == nil {
		c.Index = ModuloIndex
	}
	return c, nil
}

// Line is one cache line.
type Line struct {
	Key   trace.Key
	Valid bool
	Dirty bool
	// Replacement metadata, shared by the policies that need them.
	LastUse int64 // recency timestamp (LRU/MRU)
	Seq     int64 // fill order (FIFO)
	RRPV    uint8 // re-reference prediction value (RRIP family)
	NextUse int64 // Belady next-use index (OPT)
	// Sig and Reused are scratch state for signature-trained policies
	// (SHiP): the signature the line was inserted under, and whether it has
	// been re-referenced since.
	Sig    uint32
	Reused bool
}

// AccessResult describes the consequences of one access.
type AccessResult struct {
	Hit bool
	// Fill reports whether a line was allocated for the key.
	Fill bool
	// Bypassed reports that a miss did not allocate (write-no-allocate or a
	// policy bypass) and the access must be serviced by the next level.
	Bypassed bool
	// Evicted reports that a valid victim was displaced; Victim holds its
	// key and VictimDirty whether it must be written back.
	Evicted     bool
	Victim      trace.Key
	VictimDirty bool
}

// Stats accumulates access statistics.
type Stats struct {
	Accesses    int64
	Hits        int64
	Misses      int64
	ReadMisses  int64
	WriteMisses int64
	Compulsory  int64 // first-touch misses
	Writebacks  int64
	Bypasses    int64
	Fills       int64
}

// MissRatio returns Misses/Accesses (0 for an untouched cache).
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRatio returns Hits/Accesses (0 for an untouched cache).
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Publish stores the counters into a stats registry under prefix (e.g.
// "l1.vertex" yields "l1.vertex.hits").
func (s Stats) Publish(r *stats.Registry, prefix string) {
	r.Counter(prefix + ".accesses").Store(s.Accesses)
	r.Counter(prefix + ".hits").Store(s.Hits)
	r.Counter(prefix + ".misses").Store(s.Misses)
	r.Counter(prefix + ".readMisses").Store(s.ReadMisses)
	r.Counter(prefix + ".writeMisses").Store(s.WriteMisses)
	r.Counter(prefix + ".compulsory").Store(s.Compulsory)
	r.Counter(prefix + ".writebacks").Store(s.Writebacks)
	r.Counter(prefix + ".bypasses").Store(s.Bypasses)
	r.Counter(prefix + ".fills").Store(s.Fills)
}

// RegisterStatsInvariants registers the self-consistency checks every cache
// published under prefix must satisfy: every access is a hit or a miss,
// every miss is a read or a write miss, and every miss either fills a line
// or bypasses.
func RegisterStatsInvariants(r *stats.Registry, prefix string) {
	r.RegisterInvariant(prefix+".hits+misses==accesses", func(s stats.Snapshot) error {
		if h, m, a := s.Get(prefix+".hits"), s.Get(prefix+".misses"), s.Get(prefix+".accesses"); h+m != a {
			return fmt.Errorf("%d hits + %d misses != %d accesses", h, m, a)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".readMisses+writeMisses==misses", func(s stats.Snapshot) error {
		if rm, wm, m := s.Get(prefix+".readMisses"), s.Get(prefix+".writeMisses"), s.Get(prefix+".misses"); rm+wm != m {
			return fmt.Errorf("%d read + %d write misses != %d misses", rm, wm, m)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".fills+bypasses==misses", func(s stats.Snapshot) error {
		if f, b, m := s.Get(prefix+".fills"), s.Get(prefix+".bypasses"), s.Get(prefix+".misses"); f+b != m {
			return fmt.Errorf("%d fills + %d bypasses != %d misses", f, b, m)
		}
		return nil
	})
	r.RegisterInvariant(prefix+".compulsory<=misses", func(s stats.Snapshot) error {
		if c, m := s.Get(prefix+".compulsory"), s.Get(prefix+".misses"); c > m {
			return fmt.Errorf("%d compulsory misses exceed %d total misses", c, m)
		}
		return nil
	})
}

// Cache is a set-associative cache with a replacement policy.
type Cache struct {
	cfg    Config
	sets   [][]Line
	policy Policy
	stats  Stats
	clock  int64
	seen   map[trace.Key]struct{} // for compulsory-miss classification
	// whereIs accelerates lookup for fully-associative configurations where
	// a linear scan of the single huge set would dominate runtime.
	whereIs map[trace.Key]int
}

// New builds a cache with the given geometry and replacement policy.
func New(cfg Config, policy Policy) (*Cache, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("cache: nil policy")
	}
	numSets := cfg.Lines / cfg.Ways
	sets := make([][]Line, numSets)
	backing := make([]Line, cfg.Lines)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	c := &Cache{
		cfg:    cfg,
		sets:   sets,
		policy: policy,
		seen:   make(map[trace.Key]struct{}, cfg.Lines*4),
	}
	if numSets == 1 {
		c.whereIs = make(map[trace.Key]int, cfg.Ways*2)
	}
	policy.Reset(numSets, cfg.Ways)
	return c, nil
}

// MustNew is New that panics on configuration errors; for tests and tables
// of known-good configurations.
func MustNew(cfg Config, policy Policy) *Cache {
	c, err := New(cfg, policy)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the normalized configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Policy returns the cache's replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Contains reports whether key is currently resident.
func (c *Cache) Contains(key trace.Key) bool {
	_, _, ok := c.find(key)
	return ok
}

func (c *Cache) setIndex(key trace.Key) int {
	return c.cfg.Index(key, len(c.sets))
}

func (c *Cache) find(key trace.Key) (set, way int, ok bool) {
	set = c.setIndex(key)
	if c.whereIs != nil {
		if w, hit := c.whereIs[key]; hit {
			return set, w, true
		}
		return set, -1, false
	}
	lines := c.sets[set]
	for w := range lines {
		if lines[w].Valid && lines[w].Key == key {
			return set, w, true
		}
	}
	return set, -1, false
}

// Access performs one access and returns its consequences. The NextUse field
// of acc is consulted only by the OPT policy.
func (c *Cache) Access(acc trace.Access) AccessResult {
	c.clock++
	c.stats.Accesses++
	set, way, ok := c.find(acc.Key)
	if ok {
		c.stats.Hits++
		line := &c.sets[set][way]
		line.LastUse = c.clock
		line.NextUse = acc.NextUse
		if acc.Write {
			line.Dirty = true
		}
		c.policy.Touch(set, way, &c.sets[set][way], acc)
		return AccessResult{Hit: true}
	}

	c.stats.Misses++
	if acc.Write {
		c.stats.WriteMisses++
	} else {
		c.stats.ReadMisses++
	}
	if _, touched := c.seen[acc.Key]; !touched {
		c.stats.Compulsory++
		c.seen[acc.Key] = struct{}{}
	}
	if acc.Write && !c.cfg.WriteAllocate {
		c.stats.Bypasses++
		return AccessResult{Bypassed: true}
	}
	return c.fill(set, acc)
}

// fill allocates a line for acc in set, evicting if necessary.
func (c *Cache) fill(set int, acc trace.Access) AccessResult {
	res := AccessResult{Fill: true}
	lines := c.sets[set]
	way := -1
	for w := range lines {
		if !lines[w].Valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.policy.Victim(set, lines)
		victim := &lines[way]
		res.Evicted = true
		res.Victim = victim.Key
		res.VictimDirty = victim.Dirty
		if victim.Dirty {
			c.stats.Writebacks++
		}
		if c.whereIs != nil {
			delete(c.whereIs, victim.Key)
		}
	}
	c.stats.Fills++
	lines[way] = Line{
		Key:     acc.Key,
		Valid:   true,
		Dirty:   acc.Write,
		LastUse: c.clock,
		Seq:     c.clock,
		NextUse: acc.NextUse,
	}
	if c.whereIs != nil {
		c.whereIs[acc.Key] = way
	}
	c.policy.Insert(set, way, &lines[way], acc)
	return res
}

// Invalidate removes key from the cache if present, returning whether it was
// dirty. Used by flush-style operations.
func (c *Cache) Invalidate(key trace.Key) (present, dirty bool) {
	set, way, ok := c.find(key)
	if !ok {
		return false, false
	}
	dirty = c.sets[set][way].Dirty
	c.sets[set][way] = Line{}
	if c.whereIs != nil {
		delete(c.whereIs, key)
	}
	return true, dirty
}

// FlushAll invalidates every line, returning the dirty keys that would be
// written back. The seen-set (compulsory classification) is preserved.
func (c *Cache) FlushAll() []trace.Key {
	var dirty []trace.Key
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.Valid && l.Dirty {
				dirty = append(dirty, l.Key)
				c.stats.Writebacks++
			}
			*l = Line{}
		}
	}
	if c.whereIs != nil {
		clear(c.whereIs)
	}
	return dirty
}

// ResidentKeys returns the keys currently stored, in set/way order. Intended
// for tests and debugging.
func (c *Cache) ResidentKeys() []trace.Key {
	var keys []trace.Key
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Valid {
				keys = append(keys, c.sets[s][w].Key)
			}
		}
	}
	return keys
}

// Simulate runs an entire annotated trace through a fresh cache with the
// given configuration and policy and returns the final statistics.
func Simulate(cfg Config, policy Policy, tr trace.Trace) (Stats, error) {
	c, err := New(cfg, policy)
	if err != nil {
		return Stats{}, err
	}
	for _, a := range tr {
		c.Access(a)
	}
	return c.Stats(), nil
}
