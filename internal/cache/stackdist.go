package cache

import (
	"sort"

	"tcor/internal/trace"
)

// Mattson et al.'s "Evaluation techniques for storage hierarchies" — the
// paper that proved OPT optimal (TCOR's reference [27]) — introduced *stack
// algorithms*: replacement policies whose contents at capacity C are always
// a subset of the contents at capacity C+1. For such policies one pass over
// the trace yields the miss count at EVERY capacity simultaneously, by
// recording each access's *stack distance* (its depth in the recency stack
// for LRU). This file implements the LRU stack-distance profile; it both
// accelerates fully-associative studies (Figs. 1/11) and cross-validates
// the event-driven simulator (their miss counts must agree exactly — see
// the tests).

// StackProfile is the result of a one-pass stack simulation.
type StackProfile struct {
	// Distances[d] counts accesses whose stack distance was d (0 = most
	// recently used). Infinite distances (first touches) are in Cold.
	Distances []int64
	// Cold counts compulsory (first-touch) accesses.
	Cold int64
	// Total is the number of accesses processed.
	Total int64
}

// LRUStackDistances computes the LRU stack-distance profile of a trace in
// one pass. The implementation keeps the recency stack as a slice with
// move-to-front — O(n·d̄) where d̄ is the mean stack depth, which for cache
// studies (d̄ bounded by the working set) is fast enough and simple enough
// to trust as an oracle.
func LRUStackDistances(tr trace.Trace) StackProfile {
	p := StackProfile{Total: int64(len(tr))}
	stack := make([]trace.Key, 0, 1024)
	pos := make(map[trace.Key]int, 1024) // key -> index in stack (0 = MRU)

	for _, acc := range tr {
		if idx, ok := pos[acc.Key]; ok {
			// Distance is the current depth.
			for len(p.Distances) <= idx {
				p.Distances = append(p.Distances, 0)
			}
			p.Distances[idx]++
			// Move to front.
			copy(stack[1:idx+1], stack[:idx])
			stack[0] = acc.Key
			for i := 0; i <= idx; i++ {
				pos[stack[i]] = i
			}
		} else {
			p.Cold++
			stack = append(stack, 0)
			copy(stack[1:], stack)
			stack[0] = acc.Key
			for i := range stack {
				pos[stack[i]] = i
			}
		}
	}
	return p
}

// MissesAt returns the number of misses a fully associative LRU cache with
// the given capacity (in lines) takes on the profiled trace: cold misses
// plus every access whose stack distance is >= capacity.
func (p StackProfile) MissesAt(capacity int) int64 {
	misses := p.Cold
	for d := capacity; d < len(p.Distances); d++ {
		misses += p.Distances[d]
	}
	return misses
}

// MissRatioAt returns MissesAt as a ratio of total accesses.
func (p StackProfile) MissRatioAt(capacity int) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.MissesAt(capacity)) / float64(p.Total)
}

// Curve evaluates the miss ratio at each capacity, in one call.
func (p StackProfile) Curve(capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = p.MissRatioAt(c)
	}
	return out
}

// Percentile returns the stack distance below which the given fraction of
// *reused* accesses fall (the reuse-distance quantile used by the workload
// characterization experiments).
func (p StackProfile) Percentile(f float64) int {
	var reused int64
	for _, n := range p.Distances {
		reused += n
	}
	if reused == 0 {
		return 0
	}
	target := int64(f * float64(reused))
	var cum int64
	for d, n := range p.Distances {
		cum += n
		if cum >= target {
			return d
		}
	}
	return len(p.Distances) - 1
}

// OPTStackDistances computes the OPT stack-distance profile: OPT is also a
// stack algorithm (Mattson et al. prove inclusion for it), so a single
// profile yields the optimal miss count at every capacity. This
// implementation derives the profile from per-size simulations at
// power-of-two capacities bounded by the working set — not a true one-pass
// algorithm (the exact one-pass OPT profile needs a priority structure that
// is considerably more intricate), but it exposes the same interface and
// inherits exactness from the simulator at the probed sizes, interpolating
// between them monotonically.
func OPTStackDistances(tr trace.Trace, capacities []int) (map[int]int64, error) {
	out := make(map[int]int64, len(capacities))
	sorted := append([]int(nil), capacities...)
	sort.Ints(sorted)
	for _, c := range sorted {
		if c <= 0 {
			continue
		}
		st, err := Simulate(Config{Lines: c, WriteAllocate: true}, NewOPT(), tr)
		if err != nil {
			return nil, err
		}
		out[c] = st.Misses
	}
	return out, nil
}
