package cache

import (
	"math/rand"
	"testing"

	"tcor/internal/trace"
)

func TestHawkeyeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := make(trace.Trace, 30000)
	for i := range tr {
		tr[i].Key = trace.Key(rng.Intn(500))
	}
	trace.AnnotateNextUse(tr)
	cfg := Config{Lines: 128, Ways: 4, WriteAllocate: true}
	a, err := Simulate(cfg, NewHawkeye(nil), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(cfg, NewHawkeye(nil), tr)
	if a != b {
		t.Error("hawkeye not deterministic")
	}
	if a.Hits == 0 || a.Misses == 0 {
		t.Errorf("degenerate: %+v", a)
	}
}

// Hawkeye learns to bypass a streaming signature mixed into a hot loop:
// the scan's signature trains cache-averse and stops evicting the loop.
func TestHawkeyeLearnsScanResistance(t *testing.T) {
	// Signatures: keys < 32 are "loop" (one signature group of 32), keys
	// >= 1<<20 are "scan" (each group of 32 distinct, but all far from the
	// loop's). Loop of 24 keys in a 32-line cache + heavy scan traffic.
	var tr trace.Trace
	scan := trace.Key(1 << 20)
	for round := 0; round < 400; round++ {
		for k := trace.Key(0); k < 24; k++ {
			tr = append(tr, trace.Access{Key: k})
		}
		for j := 0; j < 12; j++ {
			tr = append(tr, trace.Access{Key: scan})
			scan++
		}
	}
	trace.AnnotateNextUse(tr)
	cfg := Config{Lines: 32, WriteAllocate: true}
	lruS, _ := Simulate(cfg, NewLRU(), tr)
	hkS, err := Simulate(cfg, NewHawkeye(nil), tr)
	if err != nil {
		t.Fatal(err)
	}
	optS, _ := Simulate(cfg, NewOPT(), tr)
	if optS.Misses > hkS.Misses {
		t.Fatalf("OPT %d > Hawkeye %d: optimality broken", optS.Misses, hkS.Misses)
	}
	if hkS.Misses >= lruS.Misses {
		t.Errorf("Hawkeye %d misses >= LRU %d on the scan mix", hkS.Misses, lruS.Misses)
	}
	gap := float64(lruS.Misses-hkS.Misses) / float64(lruS.Misses-optS.Misses)
	t.Logf("LRU %d, Hawkeye %d, OPT %d: %.0f%% of the gap bridged",
		lruS.Misses, hkS.Misses, optS.Misses, 100*gap)
	if gap < 0.3 {
		t.Errorf("Hawkeye bridged only %.0f%% of the gap on its home turf", 100*gap)
	}
}

func TestHawkeyeCustomSignature(t *testing.T) {
	// A custom signature that isolates the scan perfectly.
	sig := func(acc trace.Access) uint32 {
		if acc.Key >= 1000 {
			return 1
		}
		return 0
	}
	var tr trace.Trace
	for round := 0; round < 300; round++ {
		for k := trace.Key(0); k < 6; k++ {
			tr = append(tr, trace.Access{Key: k})
		}
		tr = append(tr, trace.Access{Key: trace.Key(1000 + round)})
	}
	trace.AnnotateNextUse(tr)
	st, err := Simulate(Config{Lines: 8, WriteAllocate: true}, NewHawkeye(sig), tr)
	if err != nil {
		t.Fatal(err)
	}
	// After warmup the loop should hit and only the scan misses:
	// 6 + 300 + warmup transients.
	if st.Misses > 400 {
		t.Errorf("misses = %d; scan signature apparently not learned", st.Misses)
	}
}

func TestDefaultSignatureGroupsKeys(t *testing.T) {
	a := DefaultSignature(trace.Access{Key: 0})
	b := DefaultSignature(trace.Access{Key: 31})
	c := DefaultSignature(trace.Access{Key: 32})
	if a != b || b == c {
		t.Errorf("signature grouping broken: %d %d %d", a, b, c)
	}
}
