package cache

import (
	"math/rand"
	"testing"

	"tcor/internal/trace"
)

func TestSHiPDeterministicAndSane(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := make(trace.Trace, 25000)
	for i := range tr {
		tr[i].Key = trace.Key(rng.Intn(400))
	}
	trace.AnnotateNextUse(tr)
	cfg := Config{Lines: 128, Ways: 4, WriteAllocate: true}
	a, err := Simulate(cfg, NewSHiP(nil), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(cfg, NewSHiP(nil), tr)
	if a != b {
		t.Error("SHiP not deterministic")
	}
	opt, _ := Simulate(cfg, NewOPT(), tr)
	if opt.Misses > a.Misses {
		t.Error("OPT optimality violated by SHiP")
	}
}

// SHiP learns to insert a never-reused stream at distant RRPV, protecting a
// hot loop that LRU would thrash.
func TestSHiPScanResistance(t *testing.T) {
	var tr trace.Trace
	scan := trace.Key(1 << 20)
	for round := 0; round < 400; round++ {
		for k := trace.Key(0); k < 24; k++ {
			tr = append(tr, trace.Access{Key: k})
		}
		for j := 0; j < 12; j++ {
			tr = append(tr, trace.Access{Key: scan})
			scan++
		}
	}
	trace.AnnotateNextUse(tr)
	cfg := Config{Lines: 32, WriteAllocate: true}
	lruS, _ := Simulate(cfg, NewLRU(), tr)
	shipS, err := Simulate(cfg, NewSHiP(nil), tr)
	if err != nil {
		t.Fatal(err)
	}
	if shipS.Misses >= lruS.Misses {
		t.Errorf("SHiP %d misses >= LRU %d on the scan mix", shipS.Misses, lruS.Misses)
	}
}
