package cache

import (
	"math/rand"
	"testing"

	"tcor/internal/trace"
)

func TestNRUBasics(t *testing.T) {
	c := MustNew(Config{Lines: 2, WriteAllocate: true}, NewNRU())
	c.Access(trace.Access{Key: 1})
	c.Access(trace.Access{Key: 2})
	// Both referenced: inserting 3 resets bits and evicts way 0 (key 1).
	res := c.Access(trace.Access{Key: 3})
	if !res.Evicted || res.Victim != 1 {
		t.Errorf("victim = %+v, want key 1", res)
	}
	// Key 2 now has its bit clear (reset); it is the next victim even
	// though key 3 was inserted later.
	res = c.Access(trace.Access{Key: 4})
	if res.Victim != 2 {
		t.Errorf("victim = %v, want key 2 (unreferenced)", res.Victim)
	}
}

func TestLIPStreamingResistance(t *testing.T) {
	// The textbook LIP case: a cyclic working set larger than the cache.
	// LRU misses on every access (the next victim is always the next key
	// needed); LIP pins a prefix of the loop and hits on it every lap.
	var tr trace.Trace
	for i := 0; i < 200; i++ {
		for k := trace.Key(0); k < 8; k++ {
			tr = append(tr, trace.Access{Key: k})
		}
	}
	trace.AnnotateNextUse(tr)
	cfg := Config{Lines: 4, WriteAllocate: true}
	lipStats, err := Simulate(cfg, NewLIP(), tr)
	if err != nil {
		t.Fatal(err)
	}
	lruStats, _ := Simulate(cfg, NewLRU(), tr)
	if lruStats.Hits != 0 {
		t.Errorf("LRU should thrash the cyclic loop, got %d hits", lruStats.Hits)
	}
	// LIP retains 3 of the 8 loop keys (cache minus the churn slot).
	if lipStats.Hits < int64(150*3) {
		t.Errorf("LIP hits = %d; loop prefix apparently not retained", lipStats.Hits)
	}
}

func TestBIPAdaptsAfterPhaseChange(t *testing.T) {
	// Phase 1: working set A (keys 0-3). Phase 2: working set B (10-13).
	// BIP's occasional MRU insert lets B eventually displace A.
	var tr trace.Trace
	for i := 0; i < 100; i++ {
		tr = append(tr, trace.Access{Key: trace.Key(i % 4)})
	}
	for i := 0; i < 2000; i++ {
		tr = append(tr, trace.Access{Key: trace.Key(10 + i%4)})
	}
	trace.AnnotateNextUse(tr)
	st, err := Simulate(Config{Lines: 4, WriteAllocate: true}, NewBIP(1), tr)
	if err != nil {
		t.Fatal(err)
	}
	// If BIP never adapted, phase 2 would miss ~2000 times.
	if st.Misses > 500 {
		t.Errorf("BIP failed to adapt: %d misses", st.Misses)
	}
}

func TestDIPDeterministicAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := make(trace.Trace, 30000)
	for i := range tr {
		tr[i].Key = trace.Key(rng.Intn(700))
	}
	trace.AnnotateNextUse(tr)
	cfg := Config{Lines: 512, Ways: 4, WriteAllocate: true}
	a, err := Simulate(cfg, NewDIP(3), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(cfg, NewDIP(3), tr)
	if a != b {
		t.Error("DIP not deterministic")
	}
	// DIP should land within a whisker of the better of LRU and BIP.
	lruStats, _ := Simulate(cfg, NewLRU(), tr)
	bipStats, _ := Simulate(cfg, NewBIP(3), tr)
	best := lruStats.Misses
	if bipStats.Misses < best {
		best = bipStats.Misses
	}
	if float64(a.Misses) > 1.15*float64(best) {
		t.Errorf("DIP misses %d, best single policy %d", a.Misses, best)
	}
}

func TestOPTStillOptimalAgainstNewPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := make(trace.Trace, 2000)
	for i := range tr {
		tr[i].Key = trace.Key(rng.Intn(60))
	}
	trace.AnnotateNextUse(tr)
	cfg := Config{Lines: 16, WriteAllocate: true}
	opt, err := Simulate(cfg, NewOPT(), tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []func() Policy{
		NewNRU, NewLIP,
		func() Policy { return NewBIP(1) },
		func() Policy { return NewDIP(1) },
	} {
		st, err := Simulate(cfg, np(), tr)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Misses > st.Misses {
			t.Errorf("OPT %d misses > %s %d", opt.Misses, np().Name(), st.Misses)
		}
	}
}

func TestClassify3CBasic(t *testing.T) {
	// Keys 0 and 64 conflict in a direct-mapped 64-line modulo cache but
	// fit easily in the fully associative one.
	var tr trace.Trace
	for i := 0; i < 50; i++ {
		tr = append(tr, trace.Access{Key: 0}, trace.Access{Key: 64})
	}
	trace.AnnotateNextUse(tr)
	b, err := Classify3C(Config{Lines: 64, Ways: 1, WriteAllocate: true}, NewLRU(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if b.Compulsory != 2 {
		t.Errorf("compulsory = %d", b.Compulsory)
	}
	if b.Capacity != 0 {
		t.Errorf("capacity = %d, want 0 (working set of 2)", b.Capacity)
	}
	if b.Conflict != 98 {
		t.Errorf("conflict = %d, want 98", b.Conflict)
	}
	if b.Compulsory+b.Capacity+b.Conflict != b.Total {
		t.Error("components do not sum to total")
	}
}

func TestClassify3CCapacityDominated(t *testing.T) {
	// Cyclic sweep over 4x the cache: all non-compulsory misses are
	// capacity, none conflict (fully associative config).
	var tr trace.Trace
	for r := 0; r < 5; r++ {
		for k := trace.Key(0); k < 64; k++ {
			tr = append(tr, trace.Access{Key: k})
		}
	}
	trace.AnnotateNextUse(tr)
	b, err := Classify3C(Config{Lines: 16, WriteAllocate: true}, NewLRU(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if b.Conflict != 0 {
		t.Errorf("conflict = %d in a fully associative cache", b.Conflict)
	}
	if b.Capacity == 0 {
		t.Error("expected capacity misses on a sweeping trace")
	}
	if b.Compulsory != 64 {
		t.Errorf("compulsory = %d", b.Compulsory)
	}
}

func TestClassify3CInvariantOnRandomTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		tr := make(trace.Trace, 1500)
		for i := range tr {
			tr[i].Key = trace.Key(rng.Intn(200))
		}
		trace.AnnotateNextUse(tr)
		b, err := Classify3C(Config{Lines: 32, Ways: 2, WriteAllocate: true}, NewLRU(), tr)
		if err != nil {
			t.Fatal(err)
		}
		if b.Compulsory+b.Capacity+b.Conflict != b.Total {
			t.Fatalf("trial %d: 3C components %d+%d+%d != %d",
				trial, b.Compulsory, b.Capacity, b.Conflict, b.Total)
		}
		if b.Compulsory < 0 || b.Capacity < 0 || b.Conflict < 0 {
			t.Fatalf("trial %d: negative component: %+v", trial, b)
		}
	}
}
