package cache

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"tcor/internal/trace"
)

func TestRegistryNamesSortedAndUnique(t *testing.T) {
	names := PolicyNames()
	if len(names) < 15 {
		t.Fatalf("registry suspiciously small: %d policies", len(names))
	}
	if !sort.SliceIsSorted(names, func(i, j int) bool {
		return strings.ToLower(names[i]) < strings.ToLower(names[j])
	}) {
		t.Errorf("PolicyNames not sorted: %v", names)
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[strings.ToLower(n)] {
			t.Errorf("duplicate registry name %q", n)
		}
		seen[strings.ToLower(n)] = true
	}
}

func TestRegistryRoundTrips(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q; registry name and policy name must agree", name, p.Name())
		}
		lower, err := NewPolicy(strings.ToLower(name))
		if err != nil {
			t.Errorf("NewPolicy(%q) (lower case): %v", strings.ToLower(name), err)
		} else if lower.Name() != name {
			t.Errorf("case-insensitive lookup of %q resolved to %q", name, lower.Name())
		}
	}
	if _, err := NewPolicy("no-such-policy"); err == nil {
		t.Error("NewPolicy accepted an unknown name")
	}
	if p, err := NewPolicy("s3fifo"); err != nil || p.Name() != "S3-FIFO" {
		t.Errorf("alias s3fifo: got %v, %v", p, err)
	}
	if name, err := CanonicalPolicyName("opt"); err != nil || name != "OPT" {
		t.Errorf("CanonicalPolicyName(opt) = %q, %v", name, err)
	}
}

func TestRegistryInstancesUnshared(t *testing.T) {
	// Two instances from the same entry must not share mutable state: the
	// arena runs one instance per (benchmark, policy) job concurrently.
	a, _ := NewPolicy("DRRIP")
	b, _ := NewPolicy("DRRIP")
	if a == b {
		t.Fatal("NewPolicy returned a shared instance")
	}
}

// missSequence simulates tr and records one byte per access: 'H' or 'M'.
func missSequence(t *testing.T, cfg Config, p Policy, tr trace.Trace) []byte {
	t.Helper()
	c, err := New(cfg, p)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	seq := make([]byte, len(tr))
	for i, a := range tr {
		if c.Access(a).Hit {
			seq[i] = 'H'
		} else {
			seq[i] = 'M'
		}
	}
	return seq
}

// TestPolicyDeterminism runs every registered policy twice over the same
// fixed-seed trace and asserts byte-identical miss sequences. This is the
// arena's foundation: map-iteration nondeterminism or shared-instance state
// in any policy would make ranked reports irreproducible, and this catches
// it at the policy level before the arena amplifies it.
func TestPolicyDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tp := 96
	tr := pbShapedTrace(rng, tp, 2)

	for _, e := range Policies() {
		for _, cfg := range []Config{
			{Lines: 32, WriteAllocate: true},          // fully associative (power of two for PLRU)
			{Lines: 64, Ways: 4, WriteAllocate: true}, // set associative
		} {
			first := missSequence(t, cfg, e.Make(), tr)
			second := missSequence(t, cfg, e.Make(), tr)
			if !bytes.Equal(first, second) {
				t.Errorf("%s (lines=%d ways=%d): miss sequences differ between identical runs",
					e.Name, cfg.Lines, cfg.Ways)
			}
		}
	}
}
