package stats

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	c.Store(7)
	if c.Load() != 0 {
		t.Error("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Load() != 0 {
		t.Error("nil gauge must read 0")
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("l2.hits").Add(10)
	r.Counter("l2.hits").Inc()
	r.Counter("l2.misses").Store(4)
	r.Gauge("attr.free").Set(32)
	if got := r.Counter("l2.hits").Load(); got != 11 {
		t.Errorf("hits = %d, want 11", got)
	}
	s := r.Snapshot()
	if s.Get("l2.hits") != 11 || s.Get("l2.misses") != 4 || s.Get("attr.free") != 32 {
		t.Errorf("snapshot %v", s)
	}
	if s.Get("absent") != 0 {
		t.Error("absent metric must read 0")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	// The registry must be race-clean under the sweep engine's concurrency:
	// many goroutines hammering overlapping names (run with -race).
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("own.%d", i)).Inc()
				r.Gauge("depth").Set(int64(j))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Errorf("shared = %d, want 8000", got)
	}
}

func TestSnapshotJSONSchemaStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.second").Store(2)
	r.Counter("a.first").Store(1)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("JSON output must end in a newline")
	}
	// Keys must appear sorted regardless of insertion order.
	if ia, ib := strings.Index(out, "a.first"), strings.Index(out, "b.second"); ia < 0 || ib < 0 || ia > ib {
		t.Errorf("keys not sorted: %s", out)
	}
	var back map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back["a.first"] != 1 || back["b.second"] != 2 {
		t.Errorf("round trip: %v", back)
	}
}

func TestInvariants(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.hits").Store(6)
	r.Counter("c.misses").Store(4)
	r.Counter("c.accesses").Store(10)
	r.RegisterInvariant("c.conservation", func(s Snapshot) error {
		if s.Get("c.hits")+s.Get("c.misses") != s.Get("c.accesses") {
			return fmt.Errorf("hits+misses != accesses")
		}
		return nil
	})
	if err := r.Check(); err != nil {
		t.Fatalf("invariant must hold: %v", err)
	}
	r.Counter("c.accesses").Store(11)
	err := r.Check()
	if err == nil {
		t.Fatal("violated invariant must fail Check")
	}
	if !strings.Contains(err.Error(), "c.conservation") {
		t.Errorf("violation must name the invariant: %v", err)
	}
	// Re-registering under the same name replaces, not duplicates.
	r.RegisterInvariant("c.conservation", func(Snapshot) error { return nil })
	if err := r.Check(); err != nil {
		t.Errorf("replaced invariant must pass: %v", err)
	}
	if n := len(r.InvariantNames()); n != 1 {
		t.Errorf("expected 1 invariant, got %d", n)
	}
}

func TestCheckDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z.last", "a.first", "m.middle"} {
		n := n
		r.RegisterInvariant(n, func(Snapshot) error { return fmt.Errorf("boom") })
	}
	err := r.Check()
	if err == nil {
		t.Fatal("expected violations")
	}
	msg := err.Error()
	ia, im, iz := strings.Index(msg, "a.first"), strings.Index(msg, "m.middle"), strings.Index(msg, "z.last")
	if !(ia < im && im < iz) {
		t.Errorf("violations not in sorted order: %q", msg)
	}
}

func TestRing(t *testing.T) {
	if r := NewRing(0); r != nil {
		t.Error("NewRing(0) must return the nil no-op ring")
	}
	var nilRing *Ring
	nilRing.Record(Event{Kind: "x"}) // must not panic
	if nilRing.Events() != nil || nilRing.Total() != 0 {
		t.Error("nil ring must be empty")
	}

	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: "evict", Key: uint64(i)})
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(ev))
	}
	for i, e := range ev {
		if want := uint64(i + 2); e.Key != want || e.Seq != int64(i+2) {
			t.Errorf("event %d = key %d seq %d, want key/seq %d", i, e.Key, e.Seq, want)
		}
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Record(Event{Kind: "e"})
				_ = r.Events()
			}
		}()
	}
	wg.Wait()
	if r.Total() != 2000 {
		t.Errorf("total = %d, want 2000", r.Total())
	}
}

func TestPublishExpvar(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("x").Store(1)
	PublishExpvar("tcor-test", r1)
	v := expvar.Get("tcor-test")
	if v == nil {
		t.Fatal("expvar not published")
	}
	if !strings.Contains(v.String(), `"x":1`) {
		t.Errorf("expvar = %s", v.String())
	}
	// Republishing under the same name must swap, not panic.
	r2 := NewRegistry()
	r2.Counter("x").Store(2)
	PublishExpvar("tcor-test", r2)
	if !strings.Contains(expvar.Get("tcor-test").String(), `"x":2`) {
		t.Errorf("expvar after swap = %s", expvar.Get("tcor-test").String())
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.test").Store(7)
	PublishExpvar("serve-debug-test", r)
	addr, stop, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	blob, ok := vars["serve-debug-test"]
	if !ok {
		t.Fatal("published registry missing from /debug/vars")
	}
	var snap map[string]int64
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	if snap["serve.test"] != 7 {
		t.Errorf("serve.test = %d, want 7", snap["serve.test"])
	}
	resp2, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp2.StatusCode)
	}
}
