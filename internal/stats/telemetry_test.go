package stats

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Histogram ---

func TestHistogramNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.ObserveSince(time.Now())
	h.Merge(nil)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram must read 0")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Error("nil histogram snapshot must be empty")
	}
	if NewTracer(0) != nil || NewTracer(-1) != nil {
		t.Error("NewTracer(<=0) must return the nil no-op recorder")
	}
}

func TestHistogramBucketScheme(t *testing.T) {
	// Bucket 0 holds <= 0; bucket i holds [2^(i-1), 2^i - 1].
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, HistogramBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Every value must lie within its bucket's bounds.
	for _, v := range []int64{1, 2, 3, 100, 1e6, 1e12, math.MaxInt64} {
		i := bucketIndex(v)
		if v > BucketUpper(i) {
			t.Errorf("value %d above its bucket %d upper %d", v, i, BucketUpper(i))
		}
		if i > 0 && v <= BucketUpper(i-1) {
			t.Errorf("value %d fits bucket %d already", v, i-1)
		}
	}
}

func TestHistogramQuantileVsReference(t *testing.T) {
	// Against an exact order statistic over a deterministic sample, the
	// log-2 histogram estimate must stay within a factor of two — the
	// documented resolution of the bucket scheme.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	values := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform over ~6 decades, like a latency distribution.
		v := int64(math.Exp(rng.Float64()*14)) + 1
		values = append(values, v)
		h.Observe(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	snap := h.Snapshot()
	if snap.Count != 5000 {
		t.Fatalf("count = %d, want 5000", snap.Count)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		idx := int(q*float64(len(values))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := float64(values[idx])
		est := snap.Quantile(q)
		if est < exact/2 || est > exact*2 {
			t.Errorf("q%.2f estimate %.0f outside factor-2 of exact %.0f", q, est, exact)
		}
	}
	// The mean is exact (running sum), not bucket-resolution.
	var sum int64
	for _, v := range values {
		sum += v
	}
	if got, want := snap.Mean(), float64(sum)/5000; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(1); i <= 10; i++ {
		a.Observe(i)
		b.Observe(i * 100)
	}
	a.Merge(&b)
	if a.Count() != 20 {
		t.Errorf("merged count = %d, want 20", a.Count())
	}
	if want := int64(55 + 5500); a.Sum() != want {
		t.Errorf("merged sum = %d, want %d", a.Sum(), want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	// Exact totals under concurrent Observe (run with -race).
	var h Histogram
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	n := int64(goroutines * perG)
	if h.Count() != n {
		t.Errorf("count = %d, want %d", h.Count(), n)
	}
	if want := n * (n - 1) / 2; h.Sum() != want {
		t.Errorf("sum = %d, want %d", h.Sum(), want)
	}
	var inBuckets int64
	for _, b := range h.Snapshot().Buckets {
		inBuckets += b
	}
	if inBuckets != n {
		t.Errorf("bucket total = %d, want %d", inBuckets, n)
	}
}

func TestRegistryHistogramDerivedKeys(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("serve.lat")
	if r.Histogram("serve.lat") != h {
		t.Fatal("same name must return the same histogram")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := r.Snapshot()
	if s.Get("serve.lat.count") != 100 || s.Get("serve.lat.sum") != 5050 {
		t.Errorf("derived count/sum wrong: %v", s)
	}
	for _, k := range []string{"serve.lat.p50", "serve.lat.p90", "serve.lat.p99"} {
		if s.Get(k) <= 0 {
			t.Errorf("derived %s missing from snapshot", k)
		}
	}
	if len(r.Histograms()) != 1 {
		t.Errorf("Histograms() = %v", r.Histograms())
	}
}

// --- Prometheus exposition ---

func TestPrometheusGolden(t *testing.T) {
	// The exposition format is a wire contract; pin it byte for byte.
	r := NewRegistry()
	r.Counter("l2.hits").Store(42)
	r.Gauge("queue.depth").Set(3)
	h := r.Histogram("http.latency")
	h.Observe(1) // bucket le=1
	h.Observe(3) // bucket le=3
	h.Observe(3)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b, "tcor"); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE tcor_http_latency histogram`,
		`tcor_http_latency_bucket{le="0"} 0`,
		`tcor_http_latency_bucket{le="1"} 1`,
		`tcor_http_latency_bucket{le="3"} 3`,
		`tcor_http_latency_bucket{le="+Inf"} 3`,
		`tcor_http_latency_sum 7`,
		`tcor_http_latency_count 3`,
		`# TYPE tcor_l2_hits counter`,
		`tcor_l2_hits 42`,
		`# TYPE tcor_queue_depth gauge`,
		`tcor_queue_depth 3`,
	}, "\n") + "\n"
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	rec := httptest.NewRecorder()
	MetricsHandler("ns", r).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ns_hits 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

// --- Tracer ---

func TestTracerSpans(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Begin("req", "serve")
	child := root.Child("sim", "gpu")
	child.SetAttr("bench", "CCS")
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("len = %d, want 2", len(spans))
	}
	// Spans() sorts by start: root began first.
	if spans[0].Name != "req" || spans[1].Name != "sim" {
		t.Fatalf("order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[1].Parent != spans[0].ID || spans[1].Root != spans[0].ID {
		t.Error("child must link to its root ancestor")
	}
	if spans[1].Attrs["bench"] != "CCS" {
		t.Errorf("attrs = %v", spans[1].Attrs)
	}

	// Overflow drops and counts instead of growing.
	for i := 0; i < 5; i++ {
		tr.Begin("x", "t").End()
	}
	if tr.Len() != 4 || tr.Dropped() != 3 {
		t.Errorf("len = %d dropped = %d, want 4 and 3", tr.Len(), tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("Reset must clear spans and the dropped count")
	}

	// Nil-safe no-op chain.
	var nilTr *Tracer
	sp := nilTr.Begin("a", "b")
	sp.SetAttr("k", "v")
	sp.Child("c", "d").End()
	sp.End()
	if nilTr.Len() != 0 || nilTr.Spans() != nil {
		t.Error("nil tracer must record nothing")
	}
}

func TestTracerConcurrent(t *testing.T) {
	// Race-clean concurrent span recording with exact drop accounting
	// (run with -race).
	tr := NewTracer(500)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := tr.Begin("op", "test")
				sp.SetAttr("g", strconv.Itoa(g))
				sp.Child("inner", "test").End()
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	total := int64(goroutines * perG * 2)
	if got := int64(tr.Len()) + tr.Dropped(); got != total {
		t.Errorf("len+dropped = %d, want %d", got, total)
	}
	if tr.Len() != 500 {
		t.Errorf("len = %d, want the full capacity 500", tr.Len())
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Begin("frame", "gpu")
	child := root.Child("tile", "gpu")
	child.SetAttr("tile", "7")
	child.End()
	root.End()

	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int64             `json:"pid"`
			Tid  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Ts < 0 || e.Dur < 0 {
			t.Errorf("bad event %+v", e)
		}
	}
	// Parent and child share the root's track; the child names its parent.
	if doc.TraceEvents[0].Tid != doc.TraceEvents[1].Tid {
		t.Error("parent and child must share a tid (track)")
	}
	if doc.TraceEvents[1].Args["parent"] == "" || doc.TraceEvents[1].Args["tile"] != "7" {
		t.Errorf("child args = %v", doc.TraceEvents[1].Args)
	}

	// A nil tracer exports the valid empty document.
	b.Reset()
	var nilTr *Tracer
	if err := nilTr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != `{"traceEvents":[]}` {
		t.Errorf("nil trace = %q", b.String())
	}
}

func TestStartSpanContext(t *testing.T) {
	// No tracer in context: everything no-ops and the context is unchanged.
	ctx := context.Background()
	sp, ctx2 := StartSpan(ctx, "a", "t")
	if sp != nil || ctx2 != ctx {
		t.Error("StartSpan without a tracer must return nil and the input ctx")
	}

	tr := NewTracer(8)
	ctx = ContextWithTracer(ctx, tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("TracerFrom lost the tracer")
	}
	root, ctx := StartSpan(ctx, "outer", "t")
	child, _ := StartSpan(ctx, "inner", "t")
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	var inner SpanRecord
	for _, s := range spans {
		if s.Name == "inner" {
			inner = s
		}
	}
	if inner.Parent == 0 {
		t.Error("inner span must be parented under outer via the context")
	}
}

// --- debug HTTP surface ---

func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Store(9)
	reg.Histogram("lat").Observe(100)
	PublishExpvar("dbgtest", reg)
	defer PublishExpvar("dbgtest", nil)

	ring := NewRing(4)
	ring.Record(Event{Kind: "evict", Class: "dead", Set: 3, Key: 0xabc})
	PublishEvents("dbgtest.ring", ring)
	defer PublishEvents("dbgtest.ring", nil)

	tr := NewTracer(8)
	tr.Begin("op", "test").End()
	PublishTrace("dbgtest.trace", tr)
	defer PublishTrace("dbgtest.trace", nil)

	addr, stop, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// /metrics renders every published registry, publish name as namespace.
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "dbgtest_hits 9") ||
		!strings.Contains(body, "dbgtest_lat_count 1") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}

	// /debug/events serves each published ring's retained events.
	code, body := get("/debug/events?name=dbgtest.ring")
	if code != http.StatusOK {
		t.Fatalf("/debug/events code %d", code)
	}
	var pages map[string]struct {
		Total  int64   `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &pages); err != nil {
		t.Fatalf("/debug/events not JSON: %v", err)
	}
	pg, ok := pages["dbgtest.ring"]
	if !ok || pg.Total != 1 || len(pg.Events) != 1 || pg.Events[0].Kind != "evict" {
		t.Errorf("/debug/events page = %+v", pages)
	}
	if code, _ := get("/debug/events?name=no.such.ring"); code != http.StatusNotFound {
		t.Errorf("unknown ring answered %d, want 404", code)
	}

	// /debug/trace serves the published tracer as a Chrome trace.
	code, body = get("/debug/trace?name=dbgtest.trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace code %d", code)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.TraceEvents) != 1 {
		t.Errorf("/debug/trace body %q err %v", body, err)
	}
	if code, _ := get("/debug/trace?name=no.such.trace"); code != http.StatusNotFound {
		t.Errorf("unknown trace answered %d, want 404", code)
	}
}
