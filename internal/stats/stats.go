// Package stats is the simulator's observability layer: a typed, atomic
// counter/gauge/histogram registry shared by every level of the memory
// hierarchy, a named-invariant checker that cross-validates the counters, a
// bounded event-trace ring for debugging replacement decisions, a bounded
// span tracer with Chrome trace_event export, and JSON/expvar/Prometheus
// export for long-running sweeps and the tcord daemon.
//
// The registry is race-clean by construction — counters and gauges are
// single atomic words, and the name table is mutex-protected — so
// concurrent simulations driven by the experiments.Sweep worker pool can
// publish into one registry without synchronizing with each other. All
// exported views (Snapshot, JSON, expvar) are deterministic: names are
// emitted in sorted order.
package stats

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically written atomic int64 metric. The zero value is
// ready to use; all methods are nil-safe so instrumentation points can be
// left unconditional while the registry wiring stays optional.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Store overwrites the counter (levels that accumulate into their own Stats
// structs publish final values with Store).
func (c *Counter) Store(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic int64 metric that moves in both directions (queue
// depths, free-list occupancy). Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Snapshot is a point-in-time copy of every metric in a registry, keyed by
// dotted metric name. encoding/json marshals map keys in sorted order, so a
// marshalled Snapshot is schema-stable across runs.
type Snapshot map[string]int64

// Get returns the value of a metric (0 if absent).
func (s Snapshot) Get(name string) int64 { return s[name] }

// WriteJSON writes the snapshot as indented JSON with sorted keys.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Invariant is a named consistency check over a snapshot.
type Invariant struct {
	Name  string
	Check func(Snapshot) error
}

// Violation describes one failed invariant.
type Violation struct {
	Name string
	Err  error
}

// Error implements error.
func (v Violation) Error() string { return fmt.Sprintf("invariant %s: %v", v.Name, v.Err) }

// Unwrap exposes the underlying cause.
func (v Violation) Unwrap() error { return v.Err }

// Registry is a set of named counters and gauges plus the invariants that
// relate them. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	invariants map[string]func(Snapshot) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		invariants: make(map[string]func(Snapshot) error),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. The same *Counter is returned to every caller of the same name, so
// hierarchy levels can share counters by naming convention alone.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Like Counter/Gauge, the same *Histogram is returned to every
// caller of the same name.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Histograms snapshots every registered histogram, keyed by name. The
// Prometheus encoder reads buckets through this; Snapshot only carries the
// derived scalars.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(r.histograms))
	for n, h := range r.histograms {
		out[n] = h.Snapshot()
	}
	return out
}

// RegisterInvariant registers (or replaces) a named invariant. Re-publishing
// a level into the same registry therefore does not duplicate its checks.
func (r *Registry) RegisterInvariant(name string, check func(Snapshot) error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.invariants[name] = check
}

// InvariantNames returns the registered invariant names in sorted order.
func (r *Registry) InvariantNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.invariants))
	for n := range r.invariants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot copies every metric into a Snapshot. Gauges and counters share
// the namespace; registering both kinds under one name is a programming
// error and the counter wins deterministically. Histograms contribute their
// derived scalars — "<name>.count", "<name>.sum", "<name>.p50"/".p90"/".p99"
// (quantiles rounded to int64) — so the flat int64 view stays schema-stable
// while full buckets remain reachable via Histograms and the Prometheus
// encoder.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := make(Snapshot, len(r.counters)+len(r.gauges)+5*len(r.histograms))
	for n, g := range r.gauges {
		s[n] = g.Load()
	}
	for n, c := range r.counters {
		s[n] = c.Load()
	}
	for n, h := range r.histograms {
		hs := h.Snapshot()
		s[n+".count"] = hs.Count
		s[n+".sum"] = hs.Sum
		s[n+".p50"] = int64(hs.Quantile(0.50))
		s[n+".p90"] = int64(hs.Quantile(0.90))
		s[n+".p99"] = int64(hs.Quantile(0.99))
	}
	return s
}

// Check evaluates every registered invariant against one consistent
// snapshot and returns the joined violations (nil if all hold). Invariants
// run in sorted name order so the error text is deterministic.
func (r *Registry) Check() error {
	snap := r.Snapshot()
	r.mu.RLock()
	checks := make([]Invariant, 0, len(r.invariants))
	for n, f := range r.invariants {
		checks = append(checks, Invariant{Name: n, Check: f})
	}
	r.mu.RUnlock()
	sort.Slice(checks, func(i, j int) bool { return checks[i].Name < checks[j].Name })
	var errs []error
	for _, iv := range checks {
		if err := iv.Check(snap); err != nil {
			errs = append(errs, Violation{Name: iv.Name, Err: err})
		}
	}
	return errors.Join(errs...)
}

// WriteJSON writes the registry's current snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }
