package stats

import (
	"math"
	"testing"
)

func TestObserveNMatchesLoopedObserve(t *testing.T) {
	var a, b Histogram
	values := []int64{0, 1, 3, 7, 100, 1 << 20}
	for _, v := range values {
		for i := 0; i < 5; i++ {
			a.Observe(v)
		}
		b.ObserveN(v, 5)
	}
	b.ObserveN(42, 0)  // no-op
	b.ObserveN(42, -3) // no-op
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa != sb {
		t.Errorf("ObserveN diverged from looped Observe:\n%+v\n%+v", sa, sb)
	}
}

func TestReuseDistHistogram(t *testing.T) {
	// counts[d]: 10 accesses at distance 0, 6 at distance 5, 4 at distance 200.
	counts := make([]int64, 201)
	counts[0] = 10
	counts[5] = 6
	counts[200] = 4
	h := ReuseDistHistogram(counts)
	if h.Count() != 20 {
		t.Fatalf("count = %d, want 20", h.Count())
	}
	if h.Sum() != 5*6+200*4 {
		t.Fatalf("sum = %d, want %d", h.Sum(), 5*6+200*4)
	}
	snap := h.Snapshot()
	if snap.Buckets[0] != 10 { // distance 0 lands in the <=0 bucket
		t.Errorf("bucket 0 = %d, want 10", snap.Buckets[0])
	}
}

func TestSummarizeReuseDist(t *testing.T) {
	counts := make([]int64, 64)
	for d := 1; d <= 32; d++ {
		counts[d] = 2 // uniform mass: exact mean 16.5
	}
	s := SummarizeReuseDist(counts, 36)
	if s.Reused != 64 || s.Cold != 36 {
		t.Fatalf("reused/cold = %d/%d, want 64/36", s.Reused, s.Cold)
	}
	if math.Abs(s.ColdShare-0.36) > 1e-12 {
		t.Errorf("coldShare = %v, want 0.36", s.ColdShare)
	}
	if math.Abs(s.Mean-16.5) > 1e-9 {
		t.Errorf("mean = %v, want 16.5", s.Mean)
	}
	if s.P50 <= 0 || s.P90 < s.P50 || s.P99 < s.P90 {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", s.P50, s.P90, s.P99)
	}
	empty := SummarizeReuseDist(nil, 0)
	if empty.ColdShare != 0 || empty.Reused != 0 {
		t.Errorf("empty summary: %+v", empty)
	}
}
