package stats

import (
	"testing"
	"time"
)

// The disabled (nil) telemetry paths are the cost every simulation pays when
// tracing and histograms are off, so they are pinned by benchmark alongside
// the live paths: compare BenchmarkNil* against their enabled counterparts
// to see the overhead gap.

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1000)
		}
	})
}

func BenchmarkTracerSpan(b *testing.B) {
	tr := NewTracer(b.N + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("op", "bench")
		sp.End()
	}
}

func BenchmarkNilTracerSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("op", "bench")
		sp.SetAttr("k", "v")
		sp.End()
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := int64(0); i < 10000; i++ {
		h.Observe(i * 37)
	}
	s := h.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.99)
	}
}

func BenchmarkObserveSince(b *testing.B) {
	var h Histogram
	t0 := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(t0)
	}
}
