package stats

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// The disabled (nil) telemetry paths are the cost every simulation pays when
// tracing and histograms are off, so they are pinned by benchmark alongside
// the live paths: compare BenchmarkNil* against their enabled counterparts
// to see the overhead gap.

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1000)
		}
	})
}

func BenchmarkTracerSpan(b *testing.B) {
	tr := NewTracer(b.N + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("op", "bench")
		sp.End()
	}
}

func BenchmarkNilTracerSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("op", "bench")
		sp.SetAttr("k", "v")
		sp.End()
	}
}

// BenchmarkTraceparentInjectExtract is the per-hop propagation cost with
// tracing ON: format the header on the way out, parse it on the way in.
// Gated in cmd/benchcmp against BENCH_baseline.json.
func BenchmarkTraceparentInjectExtract(b *testing.B) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: 1}
	h := make(http.Header)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InjectTraceparent(h, tc)
		got, ok := ExtractTraceparent(h)
		if !ok || got.TraceID != tc.TraceID {
			b.Fatal("round trip lost the context")
		}
	}
}

// BenchmarkTracePropagationDisabled is the whole middleware propagation
// path with tracing OFF — the nil-cost contract every request pays when
// -trace-spans 0: header extract on empty headers, a nil span from the
// nil tracer, context plumbing, and the (skipped) outbound injection.
// Gated in cmd/benchcmp so the disabled path stays allocation-free of
// tracing work.
func BenchmarkTracePropagationDisabled(b *testing.B) {
	var tr *Tracer
	in := make(http.Header)  // no traceparent inbound
	out := make(http.Header) // response/outbound headers
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc, ok := ExtractTraceparent(in)
		var sp *Span
		if ok {
			sp = tr.BeginRemote("http.request", "bench", tc)
		} else {
			sp = tr.Begin("http.request", "bench")
		}
		InjectTraceparent(out, sp.Context())
		sctx := ContextWithSpan(ContextWithTracer(ctx, tr), sp)
		if next := SpanFrom(sctx); next != nil {
			b.Fatal("nil tracer produced a live span")
		}
		sp.End()
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := int64(0); i < 10000; i++ {
		h.Observe(i * 37)
	}
	s := h.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.99)
	}
}

func BenchmarkObserveSince(b *testing.B) {
	var h Histogram
	t0 := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(t0)
	}
}
