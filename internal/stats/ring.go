package stats

import (
	"encoding/json"
	"sync"
)

// Event is one entry of a debug event-trace ring: a replacement decision
// (or any other per-line occurrence) annotated with where it happened and
// why. Field meaning is owner-defined; the L2 records its priority class
// ("dead", "non-PB", "live-PB"), the set index, the victim's block key, the
// last-use tile tag and whether a dirty write-back was dropped.
type Event struct {
	Seq     int64  `json:"seq"`
	Kind    string `json:"kind"`
	Class   string `json:"class,omitempty"`
	Set     int    `json:"set"`
	Key     uint64 `json:"key"`
	Tile    int    `json:"tile,omitempty"`
	Dirty   bool   `json:"dirty,omitempty"`
	Dropped bool   `json:"dropped,omitempty"`
}

// Ring is a bounded, mutex-protected event buffer that keeps the last N
// recorded events. A nil *Ring is a valid no-op recorder, so hot paths can
// call Record unconditionally and pay one nil check when tracing is off.
type Ring struct {
	mu  sync.Mutex
	buf []Event
	n   int   // events currently held
	w   int   // next write position
	seq int64 // total events ever recorded
}

// NewRing returns a ring holding the last n events; n <= 0 returns nil (the
// no-op recorder).
func NewRing(n int) *Ring {
	if n <= 0 {
		return nil
	}
	return &Ring{buf: make([]Event, n)}
}

// Record appends an event, overwriting the oldest once full. The ring
// assigns Seq (events ever recorded, starting at 0).
func (r *Ring) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.Seq = r.seq
	r.seq++
	r.buf[r.w] = e
	r.w = (r.w + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n)
	start := (r.w - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// ringJSON is the wire form of a Ring: capacity, lifetime count and the
// retained events oldest-first. It exists so results holding a debug trace
// survive a JSON round-trip (the sweep checkpoint journal).
type ringJSON struct {
	Cap    int     `json:"cap"`
	Seq    int64   `json:"seq"`
	Events []Event `json:"events,omitempty"`
}

// MarshalJSON encodes the ring's capacity, lifetime count and retained
// events. A nil ring encodes as null.
func (r *Ring) MarshalJSON() ([]byte, error) {
	if r == nil {
		return []byte("null"), nil
	}
	r.mu.Lock()
	cap, seq := len(r.buf), r.seq
	r.mu.Unlock()
	return json.Marshal(ringJSON{Cap: cap, Seq: seq, Events: r.Events()})
}

// UnmarshalJSON restores a ring encoded by MarshalJSON, replacing the
// receiver's contents. Restored events keep their original Seq values; the
// next Record continues from the recorded lifetime count.
func (r *Ring) UnmarshalJSON(b []byte) error {
	var w ringJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.Cap <= 0 {
		w.Cap = len(w.Events)
		if w.Cap == 0 {
			w.Cap = 1
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = make([]Event, w.Cap)
	r.n = copy(r.buf, w.Events)
	r.w = r.n % len(r.buf)
	r.seq = w.Seq
	return nil
}

// Total returns how many events were ever recorded (including overwritten
// ones); 0 for a nil ring.
func (r *Ring) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}
