package stats

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistogramBuckets is the fixed bucket count of every Histogram: one bucket
// per power of two over the non-negative int64 range. Bucket 0 holds values
// <= 0, bucket i (1 <= i < 63) holds [2^(i-1), 2^i - 1], and the last bucket
// absorbs everything larger. A fixed log-2 scheme keeps Observe to a handful
// of instructions (bits.Len64 + one atomic add) with no configuration to
// mismatch when histograms merge.
const HistogramBuckets = 64

// Histogram is a lock-free latency/size distribution: log-2 scaled buckets
// of atomic counters plus an atomic running sum. The zero value is ready to
// use and all methods are nil-safe, so instrumentation points can stay
// unconditional while the wiring remains optional — a nil histogram costs
// one branch.
//
// Concurrent Observe calls never block each other; Snapshot reads the
// buckets without stopping writers, so a snapshot taken mid-storm is
// per-bucket consistent rather than globally instantaneous (counts can be
// off by the handful of observations that landed mid-copy). That is the
// usual Prometheus trade and is fine for percentiles.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistogramBuckets]atomic.Int64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(v))
	if idx >= HistogramBuckets {
		idx = HistogramBuckets - 1
	}
	return idx
}

// BucketUpper returns the inclusive upper bound of bucket i
// (math.MaxInt64 for the last bucket).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= HistogramBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveN records n occurrences of value v in one shot. Analyzers folding
// an already-counted distribution (a stack-distance profile, a bucketed
// trace) use this instead of looping Observe n times.
func (h *Histogram) ObserveN(v, n int64) {
	if h == nil || n <= 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(v * n)
	h.buckets[bucketIndex(v)].Add(n)
}

// ObserveSince records the elapsed time since t0 in nanoseconds. The
// convention of the repo's latency histograms is nanosecond values; the
// Prometheus encoder converts to seconds at the edge.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Merge folds a snapshot of other into h (both sides keep running). Sweep
// workers aggregate per-worker histograms into a shared one with this.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	s := other.Snapshot()
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for i, n := range s.Buckets {
		if n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// HistogramFromSnapshot reconstructs a live Histogram holding s's counts —
// the inverse of Snapshot. The cluster metrics rollup parses shard
// histograms back out of their text exposition and rebuilds them with this
// so fleet aggregates go through the same Merge path live histograms use.
func HistogramFromSnapshot(s HistogramSnapshot) *Histogram {
	var h Histogram
	h.count.Store(s.Count)
	h.sum.Store(s.Sum)
	for i, n := range s.Buckets {
		if n != 0 {
			h.buckets[i].Store(n)
		}
	}
	return &h
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile of the histogram's current state (0 on
// nil or empty). One-off reads — a server sizing a Retry-After hint from
// its observed p50 — use this; callers reading several quantiles should
// take one Snapshot and query that instead, so the reads agree.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// HistogramSnapshot is a point-in-time copy of a Histogram; quantiles are
// computed from it so repeated reads agree with each other.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [HistogramBuckets]int64
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket that crosses the target rank. With log-2 buckets the
// estimate is within a factor of two of the true order statistic, which is
// the usual resolution for latency percentiles. Returns 0 on an empty
// snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if seen+float64(n) >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(int64(1) << uint(i-1))
			}
			hi := float64(BucketUpper(i))
			if i == HistogramBuckets-1 {
				hi = lo * 2 // the overflow bucket has no finite top; clamp
			}
			frac := (rank - seen) / float64(n)
			return lo + (hi-lo)*frac
		}
		seen += float64(n)
	}
	return float64(BucketUpper(HistogramBuckets - 1))
}

// Mean returns the arithmetic mean of observations (exact, from the running
// sum). 0 on an empty snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
