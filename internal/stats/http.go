package stats

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts an HTTP server exposing the process's expvar variables
// at /debug/vars and the pprof profiles under /debug/pprof/ on addr
// (host:port; ":0" picks a free port). It returns the bound address and a
// stop function that shuts the server down. Both CLIs use it behind their
// -http flag so a long sweep can be inspected live.
func ServeDebug(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
