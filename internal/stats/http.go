package stats

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// debugShutdownTimeout bounds the graceful drain of a debug server's stop
// function: debug requests are short (a snapshot, a trace download), so a
// couple of seconds covers them without stalling CLI exit.
const debugShutdownTimeout = 2 * time.Second

// ServeDebug starts an HTTP server on addr (host:port; ":0" picks a free
// port) exposing the process's observability surface:
//
//	/debug/vars     expvar JSON (every PublishExpvar registry)
//	/debug/pprof/   the usual pprof profiles
//	/metrics        Prometheus text exposition of every published registry
//	/debug/events   retained events of every PublishEvents ring (JSON)
//	/debug/trace    Chrome trace_event JSON of a PublishTrace tracer
//
// It returns the bound address and a stop function. Stop drains gracefully
// (in-flight debug requests finish, bounded by a short timeout) and falls
// back to an immediate close; serve errors are logged instead of discarded.
// Both CLIs use it behind their -http flag so a long sweep can be inspected
// live.
func ServeDebug(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", publishedMetricsHandler)
	mux.HandleFunc("/debug/events", publishedEventsHandler)
	mux.HandleFunc("/debug/trace", publishedTraceHandler)
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Error("stats: debug server failed", "addr", ln.Addr().String(), "err", err)
		}
	}()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), debugShutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Stragglers (a long pprof profile, a slow reader) get cut off.
			srv.Close()
		}
	}
	return ln.Addr().String(), stop, nil
}

// publishedMetricsHandler renders every PublishExpvar registry in Prometheus
// text format, the publish name as the metric namespace. Registries emit in
// sorted name order so the page is deterministic.
func publishedMetricsHandler(w http.ResponseWriter, _ *http.Request) {
	regs := publishedRegistries()
	names := make([]string, 0, len(regs))
	for n := range regs {
		names = append(names, n)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, n := range names {
		regs[n].WritePrometheus(w, n) //nolint:errcheck // best-effort over HTTP
	}
}

// eventsPage is the JSON shape of /debug/events: one entry per published
// ring with its retained (oldest-first) events and the ever-recorded total.
type eventsPage struct {
	Total  int64   `json:"total"`
	Events []Event `json:"events"`
}

// publishedEventsHandler serves every PublishEvents ring as JSON, optionally
// filtered to one ring with ?name=.
func publishedEventsHandler(w http.ResponseWriter, r *http.Request) {
	rings := publishedRingsView()
	if want := r.URL.Query().Get("name"); want != "" {
		ring, ok := rings[want]
		if !ok {
			http.Error(w, "unknown ring "+want, http.StatusNotFound)
			return
		}
		rings = map[string]*Ring{want: ring}
	}
	out := make(map[string]eventsPage, len(rings))
	for name, ring := range rings {
		ev := ring.Events()
		if ev == nil {
			ev = []Event{}
		}
		out[name] = eventsPage{Total: ring.Total(), Events: ev}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // best-effort over HTTP
}

// publishedTraceHandler serves one PublishTrace tracer as Chrome trace_event
// JSON: the one named by ?name=, or the only published one. With several
// tracers and no name it answers 400 listing the choices.
func publishedTraceHandler(w http.ResponseWriter, r *http.Request) {
	tracers := publishedTracersView()
	name := r.URL.Query().Get("name")
	if name == "" {
		if len(tracers) == 1 {
			for n := range tracers {
				name = n
			}
		} else {
			names := make([]string, 0, len(tracers))
			for n := range tracers {
				names = append(names, n)
			}
			sort.Strings(names)
			blob, _ := json.Marshal(names)
			http.Error(w, "pass ?name= to pick a trace; published: "+string(blob),
				http.StatusBadRequest)
			return
		}
	}
	t, ok := tracers[name]
	if !ok {
		http.Error(w, "unknown trace "+name, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	t.WriteChromeTrace(w) //nolint:errcheck // best-effort over HTTP
}
