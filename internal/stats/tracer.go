package stats

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records a bounded in-memory trace of Spans for one process or one
// simulation run. A nil *Tracer is the disabled recorder: Begin returns a
// nil *Span and every Span method no-ops, so instrumentation points stay
// unconditional and cost one branch when tracing is off — the same
// convention as Counter, Gauge, Histogram and Ring.
//
// Completed spans land in a bounded buffer; once full, further spans are
// dropped and counted, never blocking the instrumented path. The buffer
// exports as Chrome trace_event JSON (WriteChromeTrace), loadable in
// chrome://tracing and Perfetto.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	spans   []SpanRecord
	dropped int64

	// droppedCounter, when set via MeterDropped, publishes the drop count
	// through a registry so silent span loss is visible on /metrics.
	droppedCounter *Counter

	nextID atomic.Int64
	epoch  time.Time
}

// NewTracer returns a tracer retaining up to capacity completed spans;
// capacity <= 0 returns nil (the disabled recorder).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		return nil
	}
	return &Tracer{cap: capacity, epoch: time.Now()}
}

// SpanRecord is one completed span as the tracer retains it. The int64
// ID/Parent/Root triple is the process-local lineage (cheap, dense, used as
// Chrome track IDs); TraceID/SpanID/ParentSpan are the W3C-style identity
// that survives process hops — ParentSpan with Remote=true points at a span
// recorded by another process's tracer.
type SpanRecord struct {
	Name   string
	Cat    string
	ID     int64
	Parent int64 // 0 = root
	Root   int64 // the root ancestor's ID; trace viewers use it as the track
	Start  time.Time
	Dur    time.Duration
	Attrs  map[string]string

	TraceID    TraceID
	SpanID     SpanID
	ParentSpan SpanID // zero = no parent anywhere
	Remote     bool   // ParentSpan lives in another process
}

// spanRecordWire is SpanRecord's JSON shape: IDs in hex, the start as
// RFC3339Nano wall time (cross-process skew is the stitcher's problem), the
// duration in integer nanoseconds.
type spanRecordWire struct {
	Name       string            `json:"name"`
	Cat        string            `json:"cat,omitempty"`
	ID         int64             `json:"id"`
	Parent     int64             `json:"parent,omitempty"`
	Root       int64             `json:"root"`
	Start      time.Time         `json:"start"`
	DurNs      int64             `json:"durNs"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	TraceID    string            `json:"traceId,omitempty"`
	SpanID     string            `json:"spanId,omitempty"`
	ParentSpan string            `json:"parentSpanId,omitempty"`
	Remote     bool              `json:"remote,omitempty"`
}

// MarshalJSON renders the record with hex trace identity — the shape the
// shard-side /debug/trace?trace=<id> pull path serves.
func (r SpanRecord) MarshalJSON() ([]byte, error) {
	w := spanRecordWire{
		Name: r.Name, Cat: r.Cat, ID: r.ID, Parent: r.Parent, Root: r.Root,
		Start: r.Start, DurNs: int64(r.Dur), Attrs: r.Attrs, Remote: r.Remote,
	}
	if !r.TraceID.IsZero() {
		w.TraceID = r.TraceID.String()
	}
	if !r.SpanID.IsZero() {
		w.SpanID = r.SpanID.String()
	}
	if !r.ParentSpan.IsZero() {
		w.ParentSpan = r.ParentSpan.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON is MarshalJSON's inverse; the gateway's trace collector
// decodes shard span sets with it.
func (r *SpanRecord) UnmarshalJSON(data []byte) error {
	var w spanRecordWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = SpanRecord{
		Name: w.Name, Cat: w.Cat, ID: w.ID, Parent: w.Parent, Root: w.Root,
		Start: w.Start, Dur: time.Duration(w.DurNs), Attrs: w.Attrs, Remote: w.Remote,
	}
	if w.TraceID != "" {
		id, err := ParseTraceID(w.TraceID)
		if err != nil {
			return err
		}
		r.TraceID = id
	}
	if w.SpanID != "" {
		id, err := ParseSpanID(w.SpanID)
		if err != nil {
			return err
		}
		r.SpanID = id
	}
	if w.ParentSpan != "" {
		id, err := ParseSpanID(w.ParentSpan)
		if err != nil {
			return err
		}
		r.ParentSpan = id
	}
	return nil
}

// TraceSet is one process's contribution to a distributed trace: the spans
// it retained for one trace ID. Process is informational ("tcord" on a
// standalone daemon); the cluster trace collector overrides it with the
// shard's ring name when stitching.
type TraceSet struct {
	Process string       `json:"process,omitempty"`
	Spans   []SpanRecord `json:"spans"`
}

// Span is one in-flight timed operation. Begin/Child start it, SetAttr
// annotates it, End records it. A Span belongs to one goroutine between
// Begin and End (the tracer itself is concurrency-safe; a single span's
// attrs are not).
type Span struct {
	t      *Tracer
	name   string
	cat    string
	id     int64
	parent int64
	root   int64
	start  time.Time
	attrs  map[string]string

	traceID    TraceID
	spanID     SpanID
	parentSpan SpanID
	remote     bool
}

// Begin starts a root span, minting a fresh trace ID. Nil-safe: a nil
// tracer returns a nil span.
func (t *Tracer) Begin(name, cat string) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID.Add(1)
	return &Span{t: t, name: name, cat: cat, id: id, root: id, start: time.Now(),
		traceID: NewTraceID(), spanID: NewSpanID()}
}

// BeginRemote starts a root-of-process span continuing the trace a remote
// caller propagated: the span joins parent's trace and links back to the
// caller's span ID as its remote parent. An invalid parent context falls
// back to Begin (fresh trace). Nil-safe.
func (t *Tracer) BeginRemote(name, cat string, parent TraceContext) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.Begin(name, cat)
	}
	id := t.nextID.Add(1)
	return &Span{t: t, name: name, cat: cat, id: id, root: id, start: time.Now(),
		traceID: parent.TraceID, spanID: NewSpanID(),
		parentSpan: parent.SpanID, remote: true}
}

// Child starts a span parented under s (same tracer, same trace, same
// track). Nil-safe: a nil span returns a nil span.
func (s *Span) Child(name, cat string) *Span {
	if s == nil {
		return nil
	}
	id := s.t.nextID.Add(1)
	return &Span{t: s.t, name: name, cat: cat, id: id, parent: s.id, root: s.root,
		start: time.Now(), traceID: s.traceID, spanID: NewSpanID(),
		parentSpan: s.spanID}
}

// Context returns the span's propagable identity — inject it on outbound
// requests so the callee's spans link back here. The nil span returns the
// zero (invalid) context, which InjectTraceparent ignores.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.traceID, SpanID: s.spanID, Flags: 1}
}

// SetAttr attaches a key/value annotation (exported into the trace's args).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
}

// End completes the span and hands it to the tracer. Ending a span twice
// records it twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		Name: s.name, Cat: s.cat, ID: s.id, Parent: s.parent, Root: s.root,
		Start: s.start, Dur: time.Since(s.start), Attrs: s.attrs,
		TraceID: s.traceID, SpanID: s.spanID, ParentSpan: s.parentSpan,
		Remote: s.remote,
	}
	t := s.t
	t.mu.Lock()
	var dropped *Counter
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, rec)
	} else {
		t.dropped++
		dropped = t.droppedCounter
	}
	t.mu.Unlock()
	dropped.Inc() // nil-safe; outside the lock so metering never serializes End
}

// MeterDropped publishes the tracer's span-loss count through c (typically
// reg.Counter("trace.dropped")): every span discarded because the buffer
// was full increments it, so a scrape shows silent loss instead of a trace
// that merely looks quiet. Nil-safe on both sides; call before tracing
// starts.
func (t *Tracer) MeterDropped(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.droppedCounter = c
	t.mu.Unlock()
}

// Len returns the number of retained spans (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were discarded because the buffer was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the retained spans in start order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceSpans returns the retained spans belonging to one trace, in start
// order. This is the pull path behind /debug/trace?trace=<id>: a collector
// asks each process for its slice of a distributed trace and stitches the
// slices by their remote-parent links.
func (t *Tracer) TraceSpans(id TraceID) []SpanRecord {
	if t == nil || id.IsZero() {
		return nil
	}
	t.mu.Lock()
	var out []SpanRecord
	for _, s := range t.spans {
		if s.TraceID == id {
			out = append(out, s)
		}
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceSet bundles TraceSpans(id) under a process name for the wire.
func (t *Tracer) TraceSet(process string, id TraceID) TraceSet {
	spans := t.TraceSpans(id)
	if spans == nil {
		spans = []SpanRecord{}
	}
	return TraceSet{Process: process, Spans: spans}
}

// Reset drops every retained span and the dropped count, keeping the buffer
// capacity. Long-lived daemons reset between inspections so /debug/trace
// shows recent activity instead of startup.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// chromeEvent is one trace_event entry ("ph":"X" complete events; ts/dur in
// microseconds). Pid is constant; tid is the span's root ID, which puts each
// request/frame on its own track so concurrent spans don't interleave.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int64             `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container ({"traceEvents": [...]}),
// which both chrome://tracing and Perfetto load.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports the retained spans as Chrome trace_event JSON.
// Timestamps are microseconds since the tracer's creation.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}}
	if t != nil {
		spans := t.Spans()
		doc.TraceEvents = make([]chromeEvent, 0, len(spans))
		for _, s := range spans {
			args := s.Attrs
			if s.Parent != 0 {
				if args == nil {
					args = make(map[string]string, 1)
				} else {
					// Copy so the retained record's attrs stay untouched.
					cp := make(map[string]string, len(args)+1)
					for k, v := range args {
						cp[k] = v
					}
					args = cp
				}
				args["parent"] = strconv.FormatInt(s.Parent, 10)
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X",
				Ts:  float64(s.Start.Sub(t.epoch)) / float64(time.Microsecond),
				Dur: float64(s.Dur) / float64(time.Microsecond),
				Pid: 1, Tid: s.Root, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// tracerKey and spanKey thread telemetry through context without forcing
// every layer to grow parameters.
type tracerKey struct{}
type spanKey struct{}

// ContextWithTracer returns a context carrying t.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil (the disabled recorder).
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// ContextWithSpan returns a context carrying s as the current span, so
// deeper layers can parent their spans correctly.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a span as a child of the context's current span when one
// exists, else as a root span of the context's tracer. It returns the span
// and a derived context carrying it. With no tracer in ctx both returns are
// the inputs' no-op forms.
func StartSpan(ctx context.Context, name, cat string) (*Span, context.Context) {
	if parent := SpanFrom(ctx); parent != nil {
		s := parent.Child(name, cat)
		return s, ContextWithSpan(ctx, s)
	}
	s := TracerFrom(ctx).Begin(name, cat)
	if s == nil {
		return nil, ctx
	}
	return s, ContextWithSpan(ctx, s)
}
