package stats

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records a bounded in-memory trace of Spans for one process or one
// simulation run. A nil *Tracer is the disabled recorder: Begin returns a
// nil *Span and every Span method no-ops, so instrumentation points stay
// unconditional and cost one branch when tracing is off — the same
// convention as Counter, Gauge, Histogram and Ring.
//
// Completed spans land in a bounded buffer; once full, further spans are
// dropped and counted, never blocking the instrumented path. The buffer
// exports as Chrome trace_event JSON (WriteChromeTrace), loadable in
// chrome://tracing and Perfetto.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	spans   []SpanRecord
	dropped int64

	nextID atomic.Int64
	epoch  time.Time
}

// NewTracer returns a tracer retaining up to capacity completed spans;
// capacity <= 0 returns nil (the disabled recorder).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		return nil
	}
	return &Tracer{cap: capacity, epoch: time.Now()}
}

// SpanRecord is one completed span as the tracer retains it.
type SpanRecord struct {
	Name   string
	Cat    string
	ID     int64
	Parent int64 // 0 = root
	Root   int64 // the root ancestor's ID; trace viewers use it as the track
	Start  time.Time
	Dur    time.Duration
	Attrs  map[string]string
}

// Span is one in-flight timed operation. Begin/Child start it, SetAttr
// annotates it, End records it. A Span belongs to one goroutine between
// Begin and End (the tracer itself is concurrency-safe; a single span's
// attrs are not).
type Span struct {
	t      *Tracer
	name   string
	cat    string
	id     int64
	parent int64
	root   int64
	start  time.Time
	attrs  map[string]string
}

// Begin starts a root span. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Begin(name, cat string) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID.Add(1)
	return &Span{t: t, name: name, cat: cat, id: id, root: id, start: time.Now()}
}

// Child starts a span parented under s (same tracer, same track). Nil-safe:
// a nil span returns a nil span.
func (s *Span) Child(name, cat string) *Span {
	if s == nil {
		return nil
	}
	id := s.t.nextID.Add(1)
	return &Span{t: s.t, name: name, cat: cat, id: id, parent: s.id, root: s.root,
		start: time.Now()}
}

// SetAttr attaches a key/value annotation (exported into the trace's args).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
}

// End completes the span and hands it to the tracer. Ending a span twice
// records it twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		Name: s.name, Cat: s.cat, ID: s.id, Parent: s.parent, Root: s.root,
		Start: s.start, Dur: time.Since(s.start), Attrs: s.attrs,
	}
	t := s.t
	t.mu.Lock()
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, rec)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of retained spans (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans were discarded because the buffer was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the retained spans in start order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Reset drops every retained span and the dropped count, keeping the buffer
// capacity. Long-lived daemons reset between inspections so /debug/trace
// shows recent activity instead of startup.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// chromeEvent is one trace_event entry ("ph":"X" complete events; ts/dur in
// microseconds). Pid is constant; tid is the span's root ID, which puts each
// request/frame on its own track so concurrent spans don't interleave.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int64             `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container ({"traceEvents": [...]}),
// which both chrome://tracing and Perfetto load.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports the retained spans as Chrome trace_event JSON.
// Timestamps are microseconds since the tracer's creation.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}}
	if t != nil {
		spans := t.Spans()
		doc.TraceEvents = make([]chromeEvent, 0, len(spans))
		for _, s := range spans {
			args := s.Attrs
			if s.Parent != 0 {
				if args == nil {
					args = make(map[string]string, 1)
				} else {
					// Copy so the retained record's attrs stay untouched.
					cp := make(map[string]string, len(args)+1)
					for k, v := range args {
						cp[k] = v
					}
					args = cp
				}
				args["parent"] = strconv.FormatInt(s.Parent, 10)
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X",
				Ts:   float64(s.Start.Sub(t.epoch)) / float64(time.Microsecond),
				Dur:  float64(s.Dur) / float64(time.Microsecond),
				Pid:  1, Tid: s.Root, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// tracerKey and spanKey thread telemetry through context without forcing
// every layer to grow parameters.
type tracerKey struct{}
type spanKey struct{}

// ContextWithTracer returns a context carrying t.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil (the disabled recorder).
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// ContextWithSpan returns a context carrying s as the current span, so
// deeper layers can parent their spans correctly.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a span as a child of the context's current span when one
// exists, else as a root span of the context's tracer. It returns the span
// and a derived context carrying it. With no tracer in ctx both returns are
// the inputs' no-op forms.
func StartSpan(ctx context.Context, name, cat string) (*Span, context.Context) {
	if parent := SpanFrom(ctx); parent != nil {
		s := parent.Child(name, cat)
		return s, ContextWithSpan(ctx, s)
	}
	s := TracerFrom(ctx).Begin(name, cat)
	if s == nil {
		return nil, ctx
	}
	return s, ContextWithSpan(ctx, s)
}
