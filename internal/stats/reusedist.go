package stats

// Reuse-distance analysis: the arena's explanation layer. A Mattson stack
// profile (internal/cache.StackProfile) counts, for every access, how many
// distinct keys intervened since the previous touch of the same key — the
// reuse (stack) distance. The shape of that distribution is what decides
// which replacement policy wins: a mass of short distances below the
// capacity rewards recency (LRU), a bimodal split rewards scan resistance
// (ARC, S3-FIFO), and mass beyond every plausible capacity is compulsory
// territory where only OPT's dead-line knowledge helps.
//
// This package cannot import internal/cache (the dependency points the
// other way), so the analyzer takes the dense count array the profile
// exposes: counts[d] is the number of accesses observed at distance d.

// ReuseDistHistogram folds a dense distance-count array into a log-2
// Histogram, one ObserveN per non-empty distance. Distance 0 (immediate
// re-reference) lands in bucket 0; cold first touches have no distance and
// are accounted separately by the summary.
func ReuseDistHistogram(counts []int64) *Histogram {
	h := &Histogram{}
	for d, n := range counts {
		h.ObserveN(int64(d), n)
	}
	return h
}

// ReuseDistSummary condenses a reuse-distance distribution to the numbers
// the arena report prints per benchmark.
type ReuseDistSummary struct {
	// Reused counts accesses with a finite reuse distance; Cold counts
	// first touches (infinite distance).
	Reused int64 `json:"reused"`
	Cold   int64 `json:"cold"`
	// ColdShare is Cold / (Cold + Reused): the compulsory floor no policy
	// can beat.
	ColdShare float64 `json:"coldShare"`
	// Mean is the exact mean finite distance; P50/P90/P99 are log-2 bucket
	// estimates (within 2x, same resolution as the latency histograms).
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
}

// SummarizeReuseDist builds the histogram for counts and condenses it,
// attributing cold first touches to the summary's compulsory share.
func SummarizeReuseDist(counts []int64, cold int64) ReuseDistSummary {
	h := ReuseDistHistogram(counts)
	snap := h.Snapshot()
	s := ReuseDistSummary{
		Reused: snap.Count,
		Cold:   cold,
		Mean:   snap.Mean(),
		P50:    snap.Quantile(0.50),
		P90:    snap.Quantile(0.90),
		P99:    snap.Quantile(0.99),
	}
	if total := s.Reused + s.Cold; total > 0 {
		s.ColdShare = float64(s.Cold) / float64(total)
	}
	return s
}
